// Sharded out-of-core pipeline driver.
//
//   sva_pipeline --corpus pubmed --size-mb 8 --procs 4
//                --shards 4 --mem-budget-mb 2 --checkpoint-dir ckpt/
//   # ...killed?  restart where it left off:
//   sva_pipeline --corpus pubmed --size-mb 8 --procs 4
//                --checkpoint-dir ckpt/ --resume
//
// The corpus is synthesized document-by-document (never resident as a
// whole); ingestion runs shard by shard under the memory budget; a
// checkpoint lands after every completed stage.  The EngineResult
// checksum printed at the end is byte-identical for any shard count,
// processor count, or resume point — that is the contract the test
// suite enforces.
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>

#include "sva/corpus/generator.hpp"
#include "sva/corpus/reader.hpp"
#include "sva/engine/digest.hpp"
#include "sva/engine/engine.hpp"
#include "sva/util/error.hpp"
#include "sva/util/parse.hpp"

namespace {

void print_usage() {
  std::cout <<
      "usage: sva_pipeline [options]\n"
      "\n"
      "corpus:\n"
      "  --corpus pubmed|trec   synthetic corpus family (default pubmed)\n"
      "  --size-mb N            corpus size in MiB (default 4)\n"
      "  --seed N               generator seed (default 20070326)\n"
      "\n"
      "execution:\n"
      "  --procs P              SPMD ranks (default 4)\n"
      "  --shards N             ingestion shard count (default: from budget, else 1)\n"
      "  --mem-budget-mb M      max resident raw corpus MiB per shard\n"
      "  --major-terms N        topicality N (default 800)\n"
      "  --clusters K           k-means clusters (default 16)\n"
      "\n"
      "durability:\n"
      "  --checkpoint-dir D     persist a checkpoint after every stage\n"
      "  --resume               restart from the last completed stage in D\n"
      "  --stop-after STAGE     halt after STAGE's checkpoint (ingest|signatures|cluster);\n"
      "                         simulates a kill for testing resume\n"
      "\n"
      "output:\n"
      "  --out FILE             write a JSON summary (checksum, counts, timings)\n"
      "  --export-bundle FILE   export a serving model bundle (open with sva_query)\n";
}

/// Strict flag-value parser (shared sva::parse_u64): rejects signs,
/// non-digits, and overflow instead of silently wrapping them.
std::uint64_t parse_u64(const std::string& arg, const char* flag) {
  const auto v = sva::parse_u64(arg);
  if (!v.has_value()) {
    std::cerr << "sva_pipeline: bad value '" << arg << "' for " << flag
              << " (expected an unsigned integer within 64 bits)\n";
    std::exit(2);
  }
  return *v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sva;

  corpus::CorpusKind kind = corpus::CorpusKind::kPubMedLike;
  std::size_t size_mb = 4;
  std::uint64_t seed = 20070326;
  int procs = 4;
  engine::PipelineOptions options;
  bool resume = false;
  std::size_t major_terms = 800;
  std::size_t clusters = 16;
  std::string out_path;
  std::string bundle_path;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "sva_pipeline: " << arg << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--corpus") {
      const std::string v = next();
      if (v == "pubmed") {
        kind = corpus::CorpusKind::kPubMedLike;
      } else if (v == "trec") {
        kind = corpus::CorpusKind::kTrecLike;
      } else {
        std::cerr << "sva_pipeline: --corpus must be pubmed or trec\n";
        return 2;
      }
    } else if (arg == "--size-mb") {
      size_mb = static_cast<std::size_t>(parse_u64(next(), "--size-mb"));
    } else if (arg == "--seed") {
      seed = parse_u64(next(), "--seed");
    } else if (arg == "--procs") {
      const std::uint64_t v = parse_u64(next(), "--procs");
      if (v > static_cast<std::uint64_t>(INT32_MAX)) {
        std::cerr << "sva_pipeline: value for --procs is too large\n";
        return 2;
      }
      procs = static_cast<int>(v);
    } else if (arg == "--shards") {
      options.sharding.num_shards = static_cast<std::size_t>(parse_u64(next(), "--shards"));
    } else if (arg == "--mem-budget-mb") {
      options.sharding.mem_budget_bytes =
          static_cast<std::size_t>(parse_u64(next(), "--mem-budget-mb")) << 20;
    } else if (arg == "--major-terms") {
      major_terms = static_cast<std::size_t>(parse_u64(next(), "--major-terms"));
    } else if (arg == "--clusters") {
      clusters = static_cast<std::size_t>(parse_u64(next(), "--clusters"));
    } else if (arg == "--checkpoint-dir") {
      options.checkpoint_dir = next();
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--stop-after") {
      const std::string v = next();
      options.stop_after = engine::parse_stage(v);
      if (!options.stop_after || *options.stop_after == engine::Stage::kFinal) {
        std::cerr << "sva_pipeline: --stop-after must be ingest, signatures or cluster\n";
        return 2;
      }
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--export-bundle") {
      bundle_path = next();
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else {
      std::cerr << "sva_pipeline: unknown argument " << arg << "\n";
      print_usage();
      return 2;
    }
  }
  if (procs < 1) {
    std::cerr << "sva_pipeline: --procs must be >= 1\n";
    return 2;
  }
  if (resume && options.checkpoint_dir.empty()) {
    std::cerr << "sva_pipeline: --resume needs --checkpoint-dir\n";
    return 2;
  }
  if (resume && options.stop_after) {
    std::cerr << "sva_pipeline: --stop-after only applies to fresh runs; a resumed run "
                 "always completes\n";
    return 2;
  }
  if (!bundle_path.empty() && options.stop_after) {
    std::cerr << "sva_pipeline: --export-bundle needs a completed run; drop --stop-after\n";
    return 2;
  }
  if (resume &&
      (options.sharding.num_shards > 0 || options.sharding.mem_budget_bytes > 0)) {
    std::cout << "note: --shards/--mem-budget-mb are ignored on --resume (ingestion is "
                 "already checkpointed)\n";
  }

  try {
    corpus::CorpusSpec spec =
        kind == corpus::CorpusKind::kPubMedLike
            ? corpus::pubmed_like_spec(0, size_mb << 20)
            : corpus::trec_like_spec(0, size_mb << 20);
    spec.seed = seed;

    std::cout << "synthesizing " << corpus::corpus_kind_name(kind)
              << " corpus metadata (" << size_mb << " MiB target, streamed)...\n";
    const corpus::GeneratedReader reader(spec);
    std::cout << "  " << reader.size() << " documents, " << reader.total_bytes()
              << " bytes\n";

    engine::EngineConfig config;
    config.topicality.num_major_terms = major_terms;
    config.kmeans.k = clusters;
    engine::Engine eng(config);

    options.export_bundle = bundle_path;
    std::optional<engine::EngineResult> result;
    bool stopped = false;
    const ga::SpmdResult spmd = ga::spmd_run(procs, ga::CommModel{}, [&](ga::Context& ctx) {
      std::optional<engine::EngineResult> r;
      if (resume) {
        r = eng.resume(ctx, options.checkpoint_dir, options.export_bundle);
      } else {
        r = eng.run(ctx, reader, options);
      }
      if (ctx.rank() == 0) {
        if (r) {
          result = std::move(r);
        } else {
          stopped = true;
        }
      }
    });

    if (stopped) {
      std::cout << "stopped after stage '" << engine::stage_name(*options.stop_after)
                << "' (checkpoint written to " << options.checkpoint_dir.string()
                << "); rerun with --resume to continue\n";
      return 0;
    }

    const std::uint64_t checksum = engine::result_checksum(*result);
    const auto& t = result->timings;
    std::cout << "pipeline complete:\n"
              << "  records            " << result->num_records << "\n"
              << "  terms              " << result->num_terms << "\n"
              << "  occurrences        " << result->total_term_occurrences << "\n"
              << "  dimension          " << result->dimension << " ("
              << result->signature_rounds << " adaptive round(s))\n"
              << "  clusters           " << result->clustering.centroids.rows() << "\n"
              << "  modeled seconds    " << t.total() << "  (scan " << t.scan << ", index "
              << t.index << ", topic " << t.topic << ", AM " << t.am << ", DocVec "
              << t.docvec << ", ClusProj " << t.clusproj << ")\n"
              << "  wall seconds       " << spmd.wall_seconds << "\n"
              << "  result checksum    " << engine::checksum_hex(checksum) << "\n";
    if (!bundle_path.empty()) {
      std::cout << "exported model bundle to " << bundle_path
                << " (open with sva_query --bundle)\n";
    }

    if (!out_path.empty()) {
      std::filesystem::path p(out_path);
      if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
      std::ofstream out(p);
      if (!out) {
        std::cerr << "sva_pipeline: cannot open " << out_path << "\n";
        return 1;
      }
      out << "{\n"
          << "  \"corpus\": \"" << corpus::corpus_kind_name(kind) << "\",\n"
          << "  \"procs\": " << procs << ",\n"
          << "  \"records\": " << result->num_records << ",\n"
          << "  \"terms\": " << result->num_terms << ",\n"
          << "  \"occurrences\": " << result->total_term_occurrences << ",\n"
          << "  \"dimension\": " << result->dimension << ",\n"
          << "  \"modeled_s\": " << t.total() << ",\n"
          << "  \"wall_s\": " << spmd.wall_seconds << ",\n"
          << "  \"checksum\": \"" << engine::checksum_hex(checksum) << "\"\n"
          << "}\n";
      std::cout << "wrote " << out_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "sva_pipeline: " << e.what() << "\n";
    return 1;
  }
}
