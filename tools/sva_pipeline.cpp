// Sharded out-of-core pipeline driver.
//
//   sva_pipeline --corpus pubmed --size-mb 8 --procs 4
//                --shards 4 --mem-budget-mb 2 --checkpoint-dir ckpt/
//   # ...killed?  restart where it left off:
//   sva_pipeline --corpus pubmed --size-mb 8 --procs 4
//                --checkpoint-dir ckpt/ --resume
//
// The corpus is synthesized document-by-document (never resident as a
// whole); ingestion runs shard by shard under the memory budget; a
// checkpoint lands after every completed stage.  The EngineResult
// checksum printed at the end is byte-identical for any shard count,
// processor count, transport backend, or resume point — that is the
// contract the test suite enforces.
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "sva/corpus/generator.hpp"
#include "sva/corpus/reader.hpp"
#include "sva/engine/digest.hpp"
#include "sva/engine/engine.hpp"
#include "sva/util/cli_options.hpp"
#include "sva/util/error.hpp"

int main(int argc, char** argv) {
  using namespace sva;

  corpus::CorpusKind kind = corpus::CorpusKind::kPubMedLike;
  std::uint64_t size_mb = 4;
  std::uint64_t seed = 20070326;
  ga::SpmdOptions world;
  world.nprocs = 4;
  engine::PipelineOptions options;
  bool resume = false;
  std::uint64_t major_terms = 800;
  std::uint64_t clusters = 16;
  std::string out_path;
  std::string bundle_path;
  std::uint64_t shards = 0;
  std::size_t mem_budget_bytes = 0;

  cli::Parser p("sva_pipeline", "usage: sva_pipeline [options]");
  p.section("corpus");
  p.option("--corpus", "pubmed|trec", "synthetic corpus family (default pubmed)",
           [&](const std::string& v) {
             if (v == "pubmed") {
               kind = corpus::CorpusKind::kPubMedLike;
             } else if (v == "trec") {
               kind = corpus::CorpusKind::kTrecLike;
             } else {
               p.die("--corpus must be pubmed or trec");
             }
           });
  p.u64("--size-mb", "N", "corpus size in MiB (default 4)", &size_mb);
  p.u64("--seed", "N", "generator seed (default 20070326)", &seed);
  p.section("execution");
  p.bounded_int("--procs", "P", "SPMD ranks (default 4)", &world.nprocs, 1, 4096);
  p.option("--backend", "B", "transport backend: thread|process (default thread)",
           [&](const std::string& v) {
             const auto b = ga::parse_backend(v);
             if (!b) p.die("--backend must be thread or process");
             world.backend = *b;
           });
  p.u64("--shards", "N", "ingestion shard count (default: from budget, else 1)", &shards);
  p.size("--mem-budget-mb", "M", "max resident raw corpus MiB per shard",
         &mem_budget_bytes, 20);
  p.u64("--major-terms", "N", "topicality N (default 800)", &major_terms);
  p.u64("--clusters", "K", "k-means clusters (default 16)", &clusters);
  p.section("durability");
  p.option("--checkpoint-dir", "D", "persist a checkpoint after every stage",
           [&](const std::string& v) { options.checkpoint_dir = v; });
  p.flag("--resume", "restart from the last completed stage in D", [&] { resume = true; });
  p.option("--stop-after", "STAGE",
           "halt after STAGE's checkpoint (ingest|signatures|cluster)",
           [&](const std::string& v) {
             options.stop_after = engine::parse_stage(v);
             if (!options.stop_after || *options.stop_after == engine::Stage::kFinal) {
               p.die("--stop-after must be ingest, signatures or cluster");
             }
           });
  p.section("output");
  p.option("--out", "FILE", "write a JSON summary (checksum, counts, timings)",
           [&](const std::string& v) { out_path = v; });
  p.option("--export-bundle", "FILE",
           "export a serving model bundle (open with sva_query)",
           [&](const std::string& v) { bundle_path = v; });
  p.parse(argc, argv);

  options.sharding.num_shards = static_cast<std::size_t>(shards);
  options.sharding.mem_budget_bytes = mem_budget_bytes;
  if (resume && options.checkpoint_dir.empty()) p.die("--resume needs --checkpoint-dir");
  if (resume && options.stop_after) {
    p.die("--stop-after only applies to fresh runs; a resumed run always completes");
  }
  if (!bundle_path.empty() && options.stop_after) {
    p.die("--export-bundle needs a completed run; drop --stop-after");
  }
  if (resume &&
      (options.sharding.num_shards > 0 || options.sharding.mem_budget_bytes > 0)) {
    std::cout << "note: --shards/--mem-budget-mb are ignored on --resume (ingestion is "
                 "already checkpointed)\n";
  }

  try {
    corpus::CorpusSpec spec =
        kind == corpus::CorpusKind::kPubMedLike
            ? corpus::pubmed_like_spec(0, static_cast<std::size_t>(size_mb) << 20)
            : corpus::trec_like_spec(0, static_cast<std::size_t>(size_mb) << 20);
    spec.seed = seed;

    std::cout << "synthesizing " << corpus::corpus_kind_name(kind)
              << " corpus metadata (" << size_mb << " MiB target, streamed)...\n";
    const corpus::GeneratedReader reader(spec);
    std::cout << "  " << reader.size() << " documents, " << reader.total_bytes()
              << " bytes\n";

    engine::EngineConfig config;
    config.topicality.num_major_terms = static_cast<std::size_t>(major_terms);
    config.kmeans.k = static_cast<std::size_t>(clusters);
    engine::Engine eng(config);

    options.export_bundle = bundle_path;
    std::optional<engine::EngineResult> result;
    bool stopped = false;
    const ga::SpmdResult spmd = ga::spmd_run(world, [&](ga::Context& ctx) {
      std::optional<engine::EngineResult> r;
      if (resume) {
        r = eng.resume(ctx, options.checkpoint_dir, options.export_bundle);
      } else {
        r = eng.run(ctx, reader, options);
      }
      if (ctx.rank() == 0) {
        if (r) {
          result = std::move(r);
        } else {
          stopped = true;
        }
      }
    });

    if (stopped) {
      std::cout << "stopped after stage '" << engine::stage_name(*options.stop_after)
                << "' (checkpoint written to " << options.checkpoint_dir.string()
                << "); rerun with --resume to continue\n";
      return 0;
    }

    const std::uint64_t checksum = engine::result_checksum(*result);
    const auto& t = result->timings;
    std::cout << "pipeline complete:\n"
              << "  records            " << result->num_records << "\n"
              << "  terms              " << result->num_terms << "\n"
              << "  occurrences        " << result->total_term_occurrences << "\n"
              << "  dimension          " << result->dimension << " ("
              << result->signature_rounds << " adaptive round(s))\n"
              << "  clusters           " << result->clustering.centroids.rows() << "\n"
              << "  backend            " << ga::backend_name(world.backend) << "\n"
              << "  modeled seconds    " << t.total() << "  (scan " << t.scan << ", index "
              << t.index << ", topic " << t.topic << ", AM " << t.am << ", DocVec "
              << t.docvec << ", ClusProj " << t.clusproj << ")\n"
              << "  wall seconds       " << spmd.wall_seconds << "\n"
              << "  result checksum    " << engine::checksum_hex(checksum) << "\n";
    if (!bundle_path.empty()) {
      std::cout << "exported model bundle to " << bundle_path
                << " (open with sva_query --bundle)\n";
    }

    if (!out_path.empty()) {
      std::filesystem::path fp(out_path);
      if (fp.has_parent_path()) std::filesystem::create_directories(fp.parent_path());
      std::ofstream out(fp);
      if (!out) {
        std::cerr << "sva_pipeline: cannot open " << out_path << "\n";
        return 1;
      }
      out << "{\n"
          << "  \"corpus\": \"" << corpus::corpus_kind_name(kind) << "\",\n"
          << "  \"procs\": " << world.nprocs << ",\n"
          << "  \"backend\": \"" << ga::backend_name(world.backend) << "\",\n"
          << "  \"records\": " << result->num_records << ",\n"
          << "  \"terms\": " << result->num_terms << ",\n"
          << "  \"occurrences\": " << result->total_term_occurrences << ",\n"
          << "  \"dimension\": " << result->dimension << ",\n"
          << "  \"modeled_s\": " << t.total() << ",\n"
          << "  \"wall_s\": " << spmd.wall_seconds << ",\n"
          << "  \"checksum\": \"" << engine::checksum_hex(checksum) << "\"\n"
          << "}\n";
      std::cout << "wrote " << out_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "sva_pipeline: " << e.what() << "\n";
    return 1;
  }
}
