// Sharded out-of-core pipeline driver.
//
//   sva_pipeline --corpus pubmed --size-mb 8 --procs 4
//                --shards 4 --mem-budget-mb 2 --checkpoint-dir ckpt/
//   # ...killed?  restart where it left off:
//   sva_pipeline --corpus pubmed --size-mb 8 --procs 4
//                --checkpoint-dir ckpt/ --resume
//
// The corpus is synthesized document-by-document (never resident as a
// whole); ingestion runs shard by shard under the memory budget; a
// checkpoint lands after every completed stage.  The EngineResult
// checksum printed at the end is byte-identical for any shard count,
// processor count, transport backend, or resume point — that is the
// contract the test suite enforces.
//
// Incremental ingestion rides the same synthesis: build a base bundle
// from a corpus prefix, then delta-ingest the tail into it — only the
// new documents are scanned:
//
//   sva_pipeline --size-mb 8 --head-docs 9000 --export-bundle base.bundle
//   sva_pipeline --size-mb 8 --delta base.bundle --export-bundle gen1.bundle
//   # equivalence reference (full recompute under the frozen model):
//   sva_pipeline --size-mb 8 --delta base.bundle --delta-recompute
//                --export-bundle full.bundle
//
// The two output bundles are byte-identical (the printed bundle digest
// compares them directly) for any --procs / --backend — the CI
// delta-equivalence job enforces exactly that.
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "sva/corpus/generator.hpp"
#include "sva/corpus/reader.hpp"
#include "sva/engine/bundle.hpp"
#include "sva/engine/delta.hpp"
#include "sva/engine/digest.hpp"
#include "sva/engine/engine.hpp"
#include "sva/util/cli_options.hpp"
#include "sva/util/error.hpp"

namespace {

/// FNV-1a digest of a file's bytes — the delta-equivalence comparator.
std::uint64_t file_digest(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  sva::require(in.good(), "cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  return sva::engine::fnv1a64(bytes.data(), bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sva;

  corpus::CorpusKind kind = corpus::CorpusKind::kPubMedLike;
  std::uint64_t size_mb = 4;
  std::uint64_t seed = 20070326;
  ga::SpmdOptions world;
  world.nprocs = 4;
  engine::PipelineOptions options;
  bool resume = false;
  std::uint64_t major_terms = 800;
  std::uint64_t clusters = 16;
  std::string out_path;
  std::string bundle_path;
  std::uint64_t shards = 0;
  std::size_t mem_budget_bytes = 0;
  std::uint64_t head_docs = 0;
  std::string delta_base;
  bool delta_recompute = false;
  engine::DeltaOptions delta_options;

  const auto parse_f64 = [](cli::Parser& parser, const std::string& flag,
                            const std::string& v, double* out) {
    char* end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (end == nullptr || *end != '\0' || v.empty() || !(parsed >= 0.0)) {
      parser.die(flag + " needs a non-negative number, got '" + v + "'");
    }
    *out = parsed;
  };

  cli::Parser p("sva_pipeline", "usage: sva_pipeline [options]");
  p.section("corpus");
  p.option("--corpus", "pubmed|trec", "synthetic corpus family (default pubmed)",
           [&](const std::string& v) {
             if (v == "pubmed") {
               kind = corpus::CorpusKind::kPubMedLike;
             } else if (v == "trec") {
               kind = corpus::CorpusKind::kTrecLike;
             } else {
               p.die("--corpus must be pubmed or trec");
             }
           });
  p.u64("--size-mb", "N", "corpus size in MiB (default 4)", &size_mb);
  p.u64("--seed", "N", "generator seed (default 20070326)", &seed);
  p.u64("--head-docs", "N", "use only the first N documents (base for a later --delta)",
        &head_docs);
  p.section("execution");
  p.bounded_int("--procs", "P", "SPMD ranks (default 4)", &world.nprocs, 1, 4096);
  p.option("--backend", "B",
           "transport backend: thread|process|socket (default thread)",
           [&](const std::string& v) {
             const auto b = ga::parse_backend(v);
             if (!b) p.die("--backend must be thread, process or socket");
             world.backend = *b;
           });
  p.option("--rendezvous", "HOST:PORT",
           "socket backend: rendezvous address ranks meet at (default: an "
           "ephemeral loopback listener, single-node)",
           [&](const std::string& v) { world.socket_rendezvous = v; });
  p.bounded_int("--node", "N", "socket backend: this launcher's node slot (default 0)",
                &world.socket_node, 0, 4095);
  p.bounded_int("--nodes", "N", "socket backend: total launcher count (default 1)",
                &world.socket_nodes, 1, 4096);
  p.u64("--shards", "N", "ingestion shard count (default: from budget, else 1)", &shards);
  p.size("--mem-budget-mb", "M", "max resident raw corpus MiB per shard",
         &mem_budget_bytes, 20);
  p.u64("--major-terms", "N", "topicality N (default 800)", &major_terms);
  p.u64("--clusters", "K", "k-means clusters (default 16)", &clusters);
  p.section("delta ingestion");
  p.option("--delta", "BUNDLE",
           "delta-ingest: extend BUNDLE with the corpus documents beyond its "
           "record count (needs --export-bundle)",
           [&](const std::string& v) { delta_base = v; });
  p.flag("--delta-recompute",
         "with --delta: recompute the generation from the combined corpus under "
         "the frozen model (equivalence reference)",
         [&] { delta_recompute = true; });
  p.option("--max-inertia-rise", "F",
           "drift threshold: per-doc inertia rise flagging a re-cluster (default 0.25)",
           [&](const std::string& v) {
             parse_f64(p, "--max-inertia-rise", v, &delta_options.max_inertia_rise);
           });
  p.option("--max-size-skew-rise", "F",
           "drift threshold: cluster-size skew rise flagging a re-cluster (default 0.5)",
           [&](const std::string& v) {
             parse_f64(p, "--max-size-skew-rise", v, &delta_options.max_size_skew_rise);
           });
  p.section("durability");
  p.option("--checkpoint-dir", "D", "persist a checkpoint after every stage",
           [&](const std::string& v) { options.checkpoint_dir = v; });
  p.flag("--resume", "restart from the last completed stage in D", [&] { resume = true; });
  p.option("--stop-after", "STAGE",
           "halt after STAGE's checkpoint (ingest|signatures|cluster)",
           [&](const std::string& v) {
             options.stop_after = engine::parse_stage(v);
             if (!options.stop_after || *options.stop_after == engine::Stage::kFinal) {
               p.die("--stop-after must be ingest, signatures or cluster");
             }
           });
  p.section("output");
  p.option("--out", "FILE", "write a JSON summary (checksum, counts, timings)",
           [&](const std::string& v) { out_path = v; });
  p.option("--export-bundle", "FILE",
           "export a serving model bundle (open with sva_query)",
           [&](const std::string& v) { bundle_path = v; });
  p.parse(argc, argv);

  options.sharding.num_shards = static_cast<std::size_t>(shards);
  options.sharding.mem_budget_bytes = mem_budget_bytes;
  delta_options.sharding = options.sharding;
  if (!delta_base.empty()) {
    if (bundle_path.empty()) p.die("--delta needs --export-bundle");
    if (resume || !options.checkpoint_dir.empty() || options.stop_after) {
      p.die("--delta is incompatible with --resume/--checkpoint-dir/--stop-after");
    }
    if (head_docs > 0) p.die("--head-docs applies to fresh runs, not --delta");
  } else if (delta_recompute) {
    p.die("--delta-recompute needs --delta");
  }
  if (resume && options.checkpoint_dir.empty()) p.die("--resume needs --checkpoint-dir");
  if (resume && options.stop_after) {
    p.die("--stop-after only applies to fresh runs; a resumed run always completes");
  }
  if (!bundle_path.empty() && options.stop_after) {
    p.die("--export-bundle needs a completed run; drop --stop-after");
  }
  if (resume &&
      (options.sharding.num_shards > 0 || options.sharding.mem_budget_bytes > 0)) {
    std::cout << "note: --shards/--mem-budget-mb are ignored on --resume (ingestion is "
                 "already checkpointed)\n";
  }

  try {
    corpus::CorpusSpec spec =
        kind == corpus::CorpusKind::kPubMedLike
            ? corpus::pubmed_like_spec(0, static_cast<std::size_t>(size_mb) << 20)
            : corpus::trec_like_spec(0, static_cast<std::size_t>(size_mb) << 20);
    spec.seed = seed;

    std::cout << "synthesizing " << corpus::corpus_kind_name(kind)
              << " corpus metadata (" << size_mb << " MiB target, streamed)...\n";
    const corpus::GeneratedReader reader(spec);
    std::cout << "  " << reader.size() << " documents, " << reader.total_bytes()
              << " bytes\n";

    if (!delta_base.empty()) {
      // Probe the base bundle for its record count — the documents beyond
      // it are the delta.  A throwaway one-rank world keeps load_bundle on
      // its collective path.
      std::uint64_t base_records = 0;
      ga::SpmdOptions probe;
      probe.nprocs = 1;
      ga::spmd_run(probe, [&](ga::Context& ctx) {
        base_records = engine::load_bundle(ctx, delta_base).num_records;
      });
      if (base_records > reader.size()) {
        throw Error("base bundle holds " + std::to_string(base_records) +
                    " records but the corpus has only " + std::to_string(reader.size()) +
                    " documents; base must be a prefix of the combined corpus");
      }
      std::cout << "delta: base " << delta_base << " covers " << base_records << " of "
                << reader.size() << " documents ("
                << (reader.size() - static_cast<std::size_t>(base_records)) << " new)\n";

      const corpus::SliceReader tail(reader, static_cast<std::size_t>(base_records),
                                     reader.size());
      std::optional<engine::DeltaReport> report;
      const ga::SpmdResult spmd = ga::spmd_run(world, [&](ga::Context& ctx) {
        const auto r =
            delta_recompute
                ? engine::recompute_generation(ctx, delta_base, reader, bundle_path,
                                               delta_options)
                : engine::ingest_delta(ctx, delta_base, tail, bundle_path, delta_options);
        if (ctx.rank() == 0) report = r;
      });

      const std::uint64_t digest = file_digest(bundle_path);
      std::cout << (delta_recompute ? "recompute" : "delta ingest") << " complete:\n"
                << "  generation         " << report->generation << "\n"
                << "  base records       " << report->base_records << "\n"
                << "  new records        " << report->new_records << "\n"
                << "  inertia rise       " << report->inertia_rise << "\n"
                << "  size skew          " << report->size_skew << " (rise "
                << report->size_skew_rise << ")\n"
                << "  recluster          "
                << (report->recluster_recommended ? "recommended" : "not needed") << "\n"
                << "  lineage            " << engine::checksum_hex(report->lineage) << "\n"
                << "  backend            " << ga::backend_name(world.backend) << "\n"
                << "  wall seconds       " << spmd.wall_seconds << "\n"
                << "  bundle digest      " << engine::checksum_hex(digest) << "\n";

      if (!out_path.empty()) {
        std::filesystem::path fp(out_path);
        if (fp.has_parent_path()) std::filesystem::create_directories(fp.parent_path());
        std::ofstream out(fp);
        if (!out) {
          std::cerr << "sva_pipeline: cannot open " << out_path << "\n";
          return 1;
        }
        out << "{\n"
            << "  \"mode\": \"" << (delta_recompute ? "delta-recompute" : "delta-ingest")
            << "\",\n"
            << "  \"procs\": " << world.nprocs << ",\n"
            << "  \"backend\": \"" << ga::backend_name(world.backend) << "\",\n"
            << "  \"generation\": " << report->generation << ",\n"
            << "  \"base_records\": " << report->base_records << ",\n"
            << "  \"new_records\": " << report->new_records << ",\n"
            << "  \"inertia_rise\": " << report->inertia_rise << ",\n"
            << "  \"size_skew_rise\": " << report->size_skew_rise << ",\n"
            << "  \"recluster\": " << (report->recluster_recommended ? "true" : "false")
            << ",\n"
            << "  \"wall_s\": " << spmd.wall_seconds << ",\n"
            << "  \"bundle_digest\": \"" << engine::checksum_hex(digest) << "\"\n"
            << "}\n";
        std::cout << "wrote " << out_path << "\n";
      }
      return 0;
    }

    std::optional<corpus::SliceReader> head;
    const corpus::CorpusReader* run_reader = &reader;
    if (head_docs > 0) {
      if (head_docs > reader.size()) {
        throw Error("--head-docs " + std::to_string(head_docs) + " exceeds the corpus (" +
                    std::to_string(reader.size()) + " documents)");
      }
      head.emplace(reader, 0, static_cast<std::size_t>(head_docs));
      run_reader = &*head;
      std::cout << "  restricting to the first " << head_docs << " documents\n";
    }

    engine::EngineConfig config;
    config.topicality.num_major_terms = static_cast<std::size_t>(major_terms);
    config.kmeans.k = static_cast<std::size_t>(clusters);
    engine::Engine eng(config);

    options.export_bundle = bundle_path;
    std::optional<engine::EngineResult> result;
    bool stopped = false;
    const ga::SpmdResult spmd = ga::spmd_run(world, [&](ga::Context& ctx) {
      std::optional<engine::EngineResult> r;
      if (resume) {
        r = eng.resume(ctx, options.checkpoint_dir, options.export_bundle);
      } else {
        r = eng.run(ctx, *run_reader, options);
      }
      if (ctx.rank() == 0) {
        if (r) {
          result = std::move(r);
        } else {
          stopped = true;
        }
      }
    });

    if (stopped) {
      std::cout << "stopped after stage '" << engine::stage_name(*options.stop_after)
                << "' (checkpoint written to " << options.checkpoint_dir.string()
                << "); rerun with --resume to continue\n";
      return 0;
    }

    const std::uint64_t checksum = engine::result_checksum(*result);
    const auto& t = result->timings;
    std::cout << "pipeline complete:\n"
              << "  records            " << result->num_records << "\n"
              << "  terms              " << result->num_terms << "\n"
              << "  occurrences        " << result->total_term_occurrences << "\n"
              << "  dimension          " << result->dimension << " ("
              << result->signature_rounds << " adaptive round(s))\n"
              << "  clusters           " << result->clustering.centroids.rows() << "\n"
              << "  backend            " << ga::backend_name(world.backend) << "\n"
              << "  modeled seconds    " << t.total() << "  (scan " << t.scan << ", index "
              << t.index << ", topic " << t.topic << ", AM " << t.am << ", DocVec "
              << t.docvec << ", ClusProj " << t.clusproj << ")\n"
              << "  wall seconds       " << spmd.wall_seconds << "\n"
              << "  result checksum    " << engine::checksum_hex(checksum) << "\n";
    if (!bundle_path.empty()) {
      std::cout << "exported model bundle to " << bundle_path
                << " (open with sva_query --bundle)\n";
    }

    if (!out_path.empty()) {
      std::filesystem::path fp(out_path);
      if (fp.has_parent_path()) std::filesystem::create_directories(fp.parent_path());
      std::ofstream out(fp);
      if (!out) {
        std::cerr << "sva_pipeline: cannot open " << out_path << "\n";
        return 1;
      }
      out << "{\n"
          << "  \"corpus\": \"" << corpus::corpus_kind_name(kind) << "\",\n"
          << "  \"procs\": " << world.nprocs << ",\n"
          << "  \"backend\": \"" << ga::backend_name(world.backend) << "\",\n"
          << "  \"records\": " << result->num_records << ",\n"
          << "  \"terms\": " << result->num_terms << ",\n"
          << "  \"occurrences\": " << result->total_term_occurrences << ",\n"
          << "  \"dimension\": " << result->dimension << ",\n"
          << "  \"modeled_s\": " << t.total() << ",\n"
          << "  \"wall_s\": " << spmd.wall_seconds << ",\n"
          << "  \"checksum\": \"" << engine::checksum_hex(checksum) << "\"\n"
          << "}\n";
      std::cout << "wrote " << out_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "sva_pipeline: " << e.what() << "\n";
    return 1;
  }
}
