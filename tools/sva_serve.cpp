// Long-lived serving daemon: opens one Session over a model bundle and
// answers protocol lines from a Unix domain socket (or a file-queue
// spool), coalescing concurrent queries into batched collective sweeps.
//
//   sva_serve --bundle corpus.svab --socket /tmp/sva.sock --procs 4
//   sva_serve --bundle corpus.svab --spool /tmp/sva-spool
//
// Talk to it with anything that speaks newline-delimited text:
//
//   printf 'similar 42 8\nstats\n' | nc -U /tmp/sva.sock
//
// One response line per request line ("ok ..." / "error ..."); see
// serve/protocol.hpp for the grammar.  `shutdown` (or SIGINT/SIGTERM)
// drains in-flight queries and exits cleanly.
//
// Single-query mode sends one request over the socket of an already
// running daemon and prints the response — handy for scripting:
//
//   sva_serve --socket /tmp/sva.sock --send 'summary 3'
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "sva/serve/ingress.hpp"
#include "sva/serve/server.hpp"
#include "sva/util/parse.hpp"

namespace {

void print_usage() {
  std::cout <<
      "usage: sva_serve --bundle FILE [options]\n"
      "       sva_serve --socket PATH --send LINE\n"
      "\n"
      "  --bundle FILE        model bundle to serve (required for the daemon)\n"
      "  --procs P            SPMD ranks to serve with (default 2)\n"
      "  --socket PATH        Unix domain socket to listen on\n"
      "                       (default <bundle>.sock next to the bundle)\n"
      "  --spool DIR          also poll DIR for *.req file-queue requests\n"
      "                       (fallback transport; responses land as *.resp)\n"
      "\n"
      "admission scheduler:\n"
      "  --batch-max N        flush a sweep at N pending queries (default 16)\n"
      "  --deadline-us U      ...or once the oldest has waited U us (default 2000)\n"
      "  --cache N            result-cache entries, 0 disables (default 1024)\n"
      "\n"
      "client mode:\n"
      "  --send LINE          send one protocol line to --socket and print\n"
      "                       the response (requires a running daemon)\n";
}

std::uint64_t parse_u64(const std::string& arg, const char* flag) {
  const auto v = sva::parse_u64(arg);
  if (!v.has_value()) {
    std::cerr << "sva_serve: bad value '" << arg << "' for " << flag
              << " (expected an unsigned integer within 64 bits)\n";
    std::exit(2);
  }
  return *v;
}

// Signal flag: the main loop polls it and turns it into a graceful stop.
volatile std::sig_atomic_t g_signalled = 0;
void on_signal(int) { g_signalled = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace sva;

  std::string bundle_path;
  std::string socket_path;
  std::string spool_dir;
  std::string send_line;
  serve::ServeOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "sva_serve: " << arg << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--bundle") {
      bundle_path = next();
    } else if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--spool") {
      spool_dir = next();
    } else if (arg == "--send") {
      send_line = next();
    } else if (arg == "--procs") {
      const std::uint64_t v = parse_u64(next(), "--procs");
      if (v < 1 || v > 1024) {
        std::cerr << "sva_serve: --procs must be in [1, 1024]\n";
        return 2;
      }
      options.procs = static_cast<int>(v);
    } else if (arg == "--batch-max") {
      options.batch_max = static_cast<std::size_t>(parse_u64(next(), "--batch-max"));
      if (options.batch_max < 1) {
        std::cerr << "sva_serve: --batch-max must be >= 1\n";
        return 2;
      }
    } else if (arg == "--deadline-us") {
      options.batch_deadline =
          std::chrono::microseconds(parse_u64(next(), "--deadline-us"));
    } else if (arg == "--cache") {
      options.cache_capacity = static_cast<std::size_t>(parse_u64(next(), "--cache"));
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else {
      std::cerr << "sva_serve: unknown argument " << arg << "\n";
      print_usage();
      return 2;
    }
  }

  // Client mode: one round trip against a running daemon.
  if (!send_line.empty()) {
    if (socket_path.empty()) {
      std::cerr << "sva_serve: --send needs --socket\n";
      return 2;
    }
    try {
      const auto responses = serve::client_roundtrip(socket_path, {send_line});
      for (const auto& r : responses) std::cout << r << "\n";
      return (responses.empty() || responses[0].rfind("error", 0) == 0) ? 1 : 0;
    } catch (const std::exception& e) {
      std::cerr << "sva_serve: " << e.what() << "\n";
      return 1;
    }
  }

  if (bundle_path.empty()) {
    std::cerr << "sva_serve: --bundle is required\n";
    print_usage();
    return 2;
  }
  if (socket_path.empty() && spool_dir.empty()) socket_path = bundle_path + ".sock";

  try {
    serve::Server server(bundle_path, options);
    server.start();
    std::cerr << "sva_serve: serving " << bundle_path << " ("
              << server.num_documents() << " documents, " << server.num_clusters()
              << " clusters) with " << options.procs << " ranks\n";

    std::optional<serve::SocketIngress> socket_ingress;
    if (!socket_path.empty()) {
      socket_ingress.emplace(server, socket_path);
      socket_ingress->start();
      std::cerr << "sva_serve: listening on " << socket_path << "\n";
    }
    std::optional<serve::FileQueueIngress> spool_ingress;
    if (!spool_dir.empty()) {
      spool_ingress.emplace(server, spool_dir);
      spool_ingress->start();
      std::cerr << "sva_serve: polling spool " << spool_dir << "\n";
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    // Run until a `shutdown` request lands on either transport, a signal
    // arrives, or the serving world dies.
    while (server.running()) {
      if (g_signalled != 0) {
        std::cerr << "sva_serve: signal received, draining\n";
        server.stop();
        break;
      }
      if ((socket_ingress && socket_ingress->shutdown_requested()) ||
          (spool_ingress && spool_ingress->shutdown_requested())) {
        break;  // `shutdown` already called server.stop()
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    server.join();  // drains; rethrows a fatal world error
    if (socket_ingress) socket_ingress->stop();
    if (spool_ingress) spool_ingress->stop();

    const auto stats = server.stats();
    std::cerr << "sva_serve: served " << stats.scheduler.submitted + stats.cache.hits
              << " queries (" << stats.queries_swept << " swept in " << stats.sweeps
              << " sweeps, " << stats.cache.hits << " cache hits)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "sva_serve: " << e.what() << "\n";
    return 1;
  }
}
