// Long-lived serving daemon: opens one Session over a model bundle and
// answers protocol lines from a Unix domain socket (or a file-queue
// spool), coalescing concurrent queries into batched collective sweeps.
//
//   sva_serve --bundle corpus.svab --socket /tmp/sva.sock --procs 4
//   sva_serve --bundle corpus.svab --spool /tmp/sva-spool
//
// Talk to it with anything that speaks newline-delimited text:
//
//   printf 'similar 42 8\nstats\n' | nc -U /tmp/sva.sock
//
// One response line per request line ("ok ..." / "error ..."); see
// serve/protocol.hpp for the grammar.  `shutdown` (or SIGINT/SIGTERM)
// drains in-flight queries and exits cleanly.
//
// Single-query mode sends one request over the socket of an already
// running daemon and prints the response — handy for scripting:
//
//   sva_serve --socket /tmp/sva.sock --send 'summary 3'
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "sva/fault/fault.hpp"
#include "sva/serve/ingress.hpp"
#include "sva/serve/server.hpp"
#include "sva/util/cli_options.hpp"

namespace {

// Signal flag: the main loop polls it and turns it into a graceful stop.
volatile std::sig_atomic_t g_signalled = 0;
void on_signal(int) { g_signalled = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace sva;

  std::string bundle_path;
  std::string socket_path;
  std::string spool_dir;
  std::string send_line;
  serve::ServeOptions options;
  std::uint64_t batch_max = options.batch_max;
  std::uint64_t deadline_us =
      static_cast<std::uint64_t>(options.batch_deadline.count());
  std::uint64_t cache_capacity = options.cache_capacity;
  std::uint64_t admission_deadline_ms =
      static_cast<std::uint64_t>(options.admission_deadline.count());
  std::uint64_t client_idle_s = 30;
  std::string fault_spec;

  cli::Parser p("sva_serve",
                "usage: sva_serve --bundle FILE [options]\n"
                "       sva_serve --socket PATH --send LINE");
  p.option("--bundle", "FILE", "model bundle to serve (required for the daemon)",
           [&](const std::string& v) { bundle_path = v; });
  p.bounded_int("--procs", "P", "SPMD ranks to serve with (default 2)", &options.procs,
                1, 1024);
  p.option("--backend", "B",
           "transport backend: thread|process|socket (default thread)",
           [&](const std::string& v) {
             const auto b = ga::parse_backend(v);
             if (!b) p.die("--backend must be thread, process or socket");
             options.backend = *b;
           });
  p.option("--rendezvous", "HOST:PORT",
           "socket backend: rendezvous address ranks meet at (default: an "
           "ephemeral loopback listener, single-node)",
           [&](const std::string& v) { options.socket_rendezvous = v; });
  p.bounded_int("--node", "N", "socket backend: this daemon's node slot (default 0)",
                &options.socket_node, 0, 4095);
  p.bounded_int("--nodes", "N", "socket backend: total launcher count (default 1)",
                &options.socket_nodes, 1, 4096);
  p.option("--socket", "PATH",
           "Unix domain socket to listen on (default <bundle>.sock)",
           [&](const std::string& v) { socket_path = v; });
  p.option("--spool", "DIR", "also poll DIR for *.req file-queue requests",
           [&](const std::string& v) { spool_dir = v; });
  p.section("admission scheduler");
  p.u64("--batch-max", "N", "flush a sweep at N pending queries (default 16)",
        &batch_max);
  p.u64("--deadline-us", "U", "...or once the oldest has waited U us (default 2000)",
        &deadline_us);
  p.u64("--cache", "N", "result-cache entries, 0 disables (default 1024)",
        &cache_capacity);
  p.section("failure plane");
  p.bounded_int("--max-respawns", "N",
                "give up after N consecutive failed respawns (default 5)",
                &options.max_respawn_attempts, 0, 1000);
  p.u64("--admission-deadline-ms", "MS",
        "fail a queued query after waiting MS ms, 0 disables (default 30000)",
        &admission_deadline_ms);
  p.u64("--client-idle-timeout", "S",
        "close a socket connection silent for S seconds, 0 disables (default 30)",
        &client_idle_s);
  p.option("--fault", "SPEC",
           "arm fault injection (same grammar as SVA_FAULT; see sva/fault/fault.hpp)",
           [&](const std::string& v) { fault_spec = v; });
  p.section("client mode");
  p.option("--send", "LINE",
           "send one protocol line to --socket and print the response",
           [&](const std::string& v) { send_line = v; });
  p.parse(argc, argv);

  if (batch_max < 1) p.die("--batch-max must be >= 1");
  options.batch_max = static_cast<std::size_t>(batch_max);
  options.batch_deadline = std::chrono::microseconds(deadline_us);
  options.cache_capacity = static_cast<std::size_t>(cache_capacity);
  options.admission_deadline = std::chrono::milliseconds(admission_deadline_ms);
  if (!fault_spec.empty()) {
    try {
      fault::configure(fault_spec);
    } catch (const std::exception& e) {
      p.die(e.what());
    }
  }

  // Client mode: one round trip against a running daemon.
  if (!send_line.empty()) {
    if (socket_path.empty()) p.die("--send needs --socket");
    try {
      const auto responses = serve::client_roundtrip(socket_path, {send_line});
      for (const auto& r : responses) std::cout << r << "\n";
      return (responses.empty() || responses[0].rfind("error", 0) == 0) ? 1 : 0;
    } catch (const std::exception& e) {
      std::cerr << "sva_serve: " << e.what() << "\n";
      return 1;
    }
  }

  if (bundle_path.empty()) {
    std::cerr << "sva_serve: --bundle is required\n";
    p.print_usage(std::cerr);
    return 2;
  }
  if (socket_path.empty() && spool_dir.empty()) socket_path = bundle_path + ".sock";

  try {
    serve::Server server(bundle_path, options);
    server.start();
    std::cerr << "sva_serve: serving " << bundle_path << " ("
              << server.num_documents() << " documents, " << server.num_clusters()
              << " clusters) with " << options.procs << " "
              << ga::backend_name(options.backend) << " ranks\n";

    std::optional<serve::SocketIngress> socket_ingress;
    if (!socket_path.empty()) {
      socket_ingress.emplace(server, socket_path,
                             std::chrono::seconds(client_idle_s));
      socket_ingress->start();
      std::cerr << "sva_serve: listening on " << socket_path << "\n";
    }
    std::optional<serve::FileQueueIngress> spool_ingress;
    if (!spool_dir.empty()) {
      spool_ingress.emplace(server, spool_dir);
      spool_ingress->start();
      std::cerr << "sva_serve: polling spool " << spool_dir << "\n";
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    // Run until a `shutdown` request lands on either transport, a signal
    // arrives, or the serving world dies.
    while (server.running()) {
      if (g_signalled != 0) {
        std::cerr << "sva_serve: signal received, draining\n";
        server.stop();
        break;
      }
      if ((socket_ingress && socket_ingress->shutdown_requested()) ||
          (spool_ingress && spool_ingress->shutdown_requested())) {
        break;  // `shutdown` already called server.stop()
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    server.join();  // drains; rethrows a fatal world error
    if (socket_ingress) socket_ingress->stop();
    if (spool_ingress) spool_ingress->stop();

    const auto stats = server.stats();
    std::cerr << "sva_serve: served " << stats.scheduler.submitted + stats.cache.hits
              << " queries (" << stats.queries_swept << " swept in " << stats.sweeps
              << " sweeps, " << stats.cache.hits << " cache hits)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "sva_serve: " << e.what() << "\n";
    return 1;
  }
}
