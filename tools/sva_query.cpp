// Serving-side query driver: opens a persisted model bundle (written by
// `sva_pipeline --export-bundle` or Engine::run) and answers queries
// against it — no engine, no corpus, any processor count.
//
//   sva_query --bundle corpus.svab --info
//   sva_query --bundle corpus.svab --similar-doc 42 --topk 8
//   sva_query --bundle corpus.svab --summary 3
//   sva_query --bundle corpus.svab --drill 3 --k 4
//   sva_query --bundle corpus.svab --batch queries.txt --procs 4
//
// The batch file holds one query per line (the batched plane executes
// the whole file in one collective sweep).  The grammar is strict —
// every field is required unless bracketed, anything after the last
// field is an error, and a malformed line aborts with its file:line:
//
//   similar <doc_id> <k>             exactly two fields
//   summary <cluster> [reps]         reps defaults to 5
//
// Blank lines and lines whose first field starts with '#' are skipped.
// The same grammar is served by the sva_serve daemon (serve/protocol).
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "sva/cluster/projection.hpp"
#include "sva/query/session.hpp"
#include "sva/serve/protocol.hpp"
#include "sva/util/cli_options.hpp"
#include "sva/util/error.hpp"
#include "sva/util/table.hpp"

namespace {

/// Parses the batch file via the shared protocol grammar; exits with
/// `path:lineno` on the first malformed line (trailing garbage included).
std::vector<sva::query::Query> parse_batch_file(const sva::cli::Parser& p,
                                                const std::string& path) {
  std::ifstream in(path);
  if (!in) p.die("cannot open batch file " + path);
  std::vector<sva::query::Query> queries;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string error;
    const auto request = sva::serve::parse_query_line(line, error);
    if (!request.has_value()) {
      p.die(path + ":" + std::to_string(lineno) + ": " + error + ": " + line);
    }
    if (request->kind == sva::serve::Request::Kind::kQuery) {
      queries.push_back(request->query);
    }
  }
  if (in.bad()) p.die("I/O error reading batch file " + path);
  if (queries.empty()) p.die("batch file " + path + " holds no queries");
  return queries;
}

void print_hits(const std::string& headline, const std::vector<sva::query::SimilarDoc>& hits) {
  sva::Table table({"doc", "cosine"});
  for (const auto& h : hits) {
    table.add_row({sva::Table::num(static_cast<long long>(h.doc_id)),
                   sva::Table::num(h.similarity, 4)});
  }
  std::cout << headline << ":\n" << table.to_ascii() << '\n';
}

void print_summary(const sva::query::ClusterSummary& s) {
  std::string label;
  for (const auto& t : s.top_terms) label += (label.empty() ? "" : "/") + t;
  std::string reps;
  for (const auto d : s.representatives) {
    if (!reps.empty()) reps += ',';
    reps += std::to_string(d);
  }
  sva::Table table({"cluster", "docs", "cohesion", "theme", "read-first"});
  table.add_row({sva::Table::num(static_cast<long long>(s.cluster)),
                 sva::Table::num(static_cast<long long>(s.size)),
                 sva::Table::num(s.cohesion, 3), label, reps});
  std::cout << table.to_ascii() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sva;

  std::string bundle_path;
  std::string batch_path;
  ga::SpmdOptions world;
  world.nprocs = 2;
  enum class Mode { kInfo, kSimilarDoc, kSummary, kDrill, kLandscape, kBatch };
  Mode mode = Mode::kInfo;
  std::uint64_t similar_doc = 0;
  int cluster = 0;
  std::uint64_t topk = 10;
  std::uint64_t reps = 5;
  std::uint64_t drill_k = 4;

  cli::Parser p("sva_query", "usage: sva_query --bundle FILE [options] [query]");
  p.option("--bundle", "FILE", "model bundle to open (required)",
           [&](const std::string& v) { bundle_path = v; });
  p.bounded_int("--procs", "P", "SPMD ranks to serve with (default 2)", &world.nprocs, 1,
                4096);
  p.option("--backend", "B",
           "transport backend: thread|process|socket (default thread)",
           [&](const std::string& v) {
             const auto b = ga::parse_backend(v);
             if (!b) p.die("--backend must be thread, process or socket");
             world.backend = *b;
           });
  p.option("--rendezvous", "HOST:PORT",
           "socket backend: rendezvous address ranks meet at (default: an "
           "ephemeral loopback listener, single-node)",
           [&](const std::string& v) { world.socket_rendezvous = v; });
  p.bounded_int("--node", "N", "socket backend: this launcher's node slot (default 0)",
                &world.socket_node, 0, 4095);
  p.bounded_int("--nodes", "N", "socket backend: total launcher count (default 1)",
                &world.socket_nodes, 1, 4096);
  p.section("one-shot queries (pick one; default --info)");
  p.flag("--info", "bundle contents and theme overview", [&] { mode = Mode::kInfo; });
  p.u64("--similar-doc", "ID", "documents most similar to document ID", &similar_doc);
  p.bounded_int("--summary", "C", "digest of theme cluster C", &cluster, 0, INT32_MAX);
  p.bounded_int("--drill", "C", "drill into theme cluster C (re-cluster + re-project)",
                &cluster, 0, INT32_MAX);
  p.flag("--landscape", "render the ASCII ThemeView terrain",
         [&] { mode = Mode::kLandscape; });
  p.section("query knobs");
  p.u64("--topk", "K", "similarity hits to return (default 10)", &topk);
  p.u64("--reps", "N", "summary representatives (default 5)", &reps);
  p.u64("--k", "K", "drill-down sub-clusters (default 4)", &drill_k);
  p.section("batched plane");
  p.option("--batch", "FILE", "run every query in FILE in one collective sweep",
           [&](const std::string& v) {
             mode = Mode::kBatch;
             batch_path = v;
           });
  // Mode flags that also carry a value are declared above through their
  // value handler; record which mode the last one selected.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--similar-doc") mode = Mode::kSimilarDoc;
    if (arg == "--summary") mode = Mode::kSummary;
    if (arg == "--drill") mode = Mode::kDrill;
  }
  p.parse(argc, argv);

  if (bundle_path.empty()) {
    std::cerr << "sva_query: --bundle is required\n";
    p.print_usage(std::cerr);
    return 2;
  }

  std::vector<query::Query> batch;
  if (mode == Mode::kBatch) batch = parse_batch_file(p, batch_path);

  try {
    ga::spmd_run(world, [&](ga::Context& ctx) {
      auto session = query::Session::open(ctx, bundle_path);
      const bool print = ctx.rank() == 0;

      switch (mode) {
        case Mode::kInfo: {
          // One batched sweep summarizes every theme.
          std::vector<query::Query> overview;
          for (std::size_t c = 0; c < session.num_clusters(); ++c) {
            overview.push_back(query::Query::cluster_summary(
                static_cast<int>(c), static_cast<std::size_t>(reps)));
          }
          const auto results = session.run_batch(overview);
          if (print) {
            std::cout << "bundle " << bundle_path << ":\n"
                      << "  documents   " << session.num_documents() << "\n"
                      << "  dimension   " << session.dimension() << "\n"
                      << "  clusters    " << session.num_clusters() << "\n"
                      << "  fingerprint 0x" << std::hex << session.config_fingerprint()
                      << std::dec << "\n\n";
            sva::Table table({"cluster", "docs", "cohesion", "theme", "read-first"});
            for (const auto& r : results) {
              const auto& s = r.summary;
              std::string label;
              for (const auto& t : s.top_terms) label += (label.empty() ? "" : "/") + t;
              std::string rep_list;
              for (const auto d : s.representatives) {
                if (!rep_list.empty()) rep_list += ',';
                rep_list += std::to_string(d);
              }
              table.add_row({sva::Table::num(static_cast<long long>(s.cluster)),
                             sva::Table::num(static_cast<long long>(s.size)),
                             sva::Table::num(s.cohesion, 3), label, rep_list});
            }
            std::cout << "theme overview:\n" << table.to_ascii();
          }
          break;
        }
        case Mode::kSimilarDoc: {
          const auto hits = session.similar(similar_doc, static_cast<std::size_t>(topk));
          if (print) {
            print_hits("documents most similar to doc " + std::to_string(similar_doc), hits);
          }
          break;
        }
        case Mode::kSummary: {
          const auto summary =
              session.cluster_summary(cluster, static_cast<std::size_t>(reps));
          if (print) print_summary(summary);
          break;
        }
        case Mode::kDrill: {
          cluster::KMeansConfig sub;
          sub.k = static_cast<std::size_t>(drill_k);
          const auto drill = session.drill_down(cluster, sub);
          const auto labels = session.sub_theme_labels(drill.clustering);
          if (print) {
            std::cout << "drill-down into theme " << cluster << ": " << drill.subset_size
                      << " documents, " << drill.clustering.centroids.rows()
                      << " sub-themes\n";
            for (std::size_t c = 0; c < labels.size(); ++c) {
              std::cout << "  sub-theme " << c << " ("
                        << drill.clustering.cluster_sizes[c] << " docs):";
              for (const auto& t : labels[c]) std::cout << ' ' << t;
              std::cout << '\n';
            }
            const auto terrain =
                cluster::ThemeViewTerrain::from_points(drill.projection.all_xy, 40);
            std::cout << "sub-landscape:\n" << terrain.to_ascii();
          }
          break;
        }
        case Mode::kLandscape: {
          const auto land = session.landscape();
          if (print) {
            const auto terrain = cluster::ThemeViewTerrain::from_points(land.xy, 48);
            std::cout << "landscape (" << land.doc_ids.size() << " documents):\n"
                      << terrain.to_ascii();
          }
          break;
        }
        case Mode::kBatch: {
          const auto results = session.run_batch(batch);
          if (print) {
            for (std::size_t i = 0; i < results.size(); ++i) {
              std::cout << "-- query " << i << " --\n";
              if (results[i].kind == query::Query::Kind::kClusterSummary) {
                print_summary(results[i].summary);
              } else {
                print_hits("documents most similar to doc " +
                               std::to_string(batch[i].doc_id),
                           results[i].hits);
              }
            }
            std::cout << results.size() << " queries answered in one batched sweep\n";
          }
          break;
        }
      }
    });
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "sva_query: " << e.what() << "\n";
    return 1;
  }
}
