# Helper for declaring one src/ module as a static library with the
# canonical sva:: alias, public include dir, and warning flags.
#
#   sva_add_module(<name>
#     SOURCES <files...>
#     [DEPS <sva::dep...>]
#     [PRIVATE_DEPS <targets...>])
function(sva_add_module name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS;PRIVATE_DEPS" ${ARGN})
  add_library(sva_${name} STATIC ${ARG_SOURCES})
  add_library(sva::${name} ALIAS sva_${name})
  target_include_directories(sva_${name} PUBLIC
    $<BUILD_INTERFACE:${CMAKE_CURRENT_SOURCE_DIR}/include>)
  target_compile_features(sva_${name} PUBLIC cxx_std_20)
  target_link_libraries(sva_${name}
    PUBLIC ${ARG_DEPS}
    PRIVATE sva::warnings ${ARG_PRIVATE_DEPS})
endfunction()
