// Interactive analysis session: the paper's "next frontier".
//
// §6 names interaction with massive datasets as the follow-on problem to
// the parallel engine itself.  This example plays one analyst session on
// top of a single engine pass, entirely through collective queries that
// scale with the number of simulated processes:
//
//   1. run the engine on a TREC-like corpus;
//   2. summarize every theme cluster (size, label, cohesion, the
//      documents worth reading first);
//   3. pick the largest theme and run "more like this" from its top
//      representative;
//   4. drill into that theme: re-cluster + re-project its documents and
//      print the sub-landscape, the visual analog of query refinement.
//
//   ./interactive_analysis [nprocs] [megabytes]
#include <cstdlib>
#include <iostream>

#include "sva/cluster/projection.hpp"
#include "sva/corpus/generator.hpp"
#include "sva/engine/pipeline.hpp"
#include "sva/ga/runtime.hpp"
#include "sva/query/explore.hpp"
#include "sva/query/similarity.hpp"
#include "sva/util/stringutil.hpp"
#include "sva/util/table.hpp"

int main(int argc, char** argv) {
  const int nprocs = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::size_t megabytes = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2;

  const auto spec = sva::corpus::trec_like_spec(0, megabytes << 20);
  const auto sources = sva::corpus::generate_corpus(spec);
  std::cout << "TREC-like corpus: " << sources.size() << " documents, "
            << sva::format_bytes(sources.total_bytes()) << ", " << nprocs
            << " simulated processes\n\n";

  sva::engine::EngineConfig config;
  config.kmeans.k = 8;

  sva::ga::spmd_run(nprocs, sva::ga::itanium_cluster_model(), [&](sva::ga::Context& ctx) {
    const auto r = sva::engine::run_text_engine(ctx, sources, config);

    // ---- 2. theme overview ---------------------------------------------
    std::vector<sva::query::ClusterSummary> summaries;
    for (std::size_t c = 0; c < r.clustering.centroids.rows(); ++c) {
      summaries.push_back(sva::query::summarize_cluster(ctx, r.signatures,
                                                        r.clustering.assignment, r.clustering,
                                                        r.theme_labels, static_cast<int>(c)));
    }

    int biggest = 0;
    if (ctx.rank() == 0) {
      sva::Table overview({"cluster", "docs", "cohesion", "theme", "read-first"});
      for (const auto& s : summaries) {
        std::string label;
        for (const auto& t : s.top_terms) label += (label.empty() ? "" : "/") + t;
        std::string reps;
        for (const auto d : s.representatives) {
          if (!reps.empty()) reps += ',';
          reps += std::to_string(d);
        }
        overview.add_row({sva::Table::num(static_cast<long long>(s.cluster)),
                          sva::Table::num(static_cast<long long>(s.size)),
                          sva::Table::num(s.cohesion, 3), label, reps});
        if (s.size > summaries[static_cast<std::size_t>(biggest)].size) biggest = s.cluster;
      }
      std::cout << "theme overview:\n" << overview.to_ascii() << '\n';
    }
    // Everyone agrees on the largest cluster (summaries are replicated).
    for (std::size_t c = 1; c < summaries.size(); ++c) {
      if (summaries[c].size > summaries[static_cast<std::size_t>(biggest)].size) {
        biggest = static_cast<int>(c);
      }
    }

    // ---- 3. "more like this" -------------------------------------------
    const auto& focus = summaries[static_cast<std::size_t>(biggest)];
    if (!focus.representatives.empty()) {
      const auto probe = focus.representatives.front();
      const auto hits = sva::query::similar_to_document(ctx, r.signatures, probe, 8);
      if (ctx.rank() == 0) {
        sva::Table similar({"doc", "cosine"});
        for (const auto& h : hits) {
          similar.add_row({sva::Table::num(static_cast<long long>(h.doc_id)),
                           sva::Table::num(h.similarity, 4)});
        }
        std::cout << "documents most similar to doc " << probe << " (theme " << biggest
                  << "):\n"
                  << similar.to_ascii() << '\n';
      }
    }

    // ---- 4. drill-down ----------------------------------------------------
    sva::cluster::KMeansConfig sub;
    sub.k = 4;
    const auto drill = sva::query::drill_down_cluster(ctx, r.signatures,
                                                      r.clustering.assignment, biggest, sub);
    if (ctx.rank() == 0) {
      std::cout << "drill-down into theme " << biggest << ": " << drill.subset_size
                << " documents, re-clustered into " << drill.clustering.centroids.rows()
                << " sub-themes\n\n";
      const auto terrain =
          sva::cluster::ThemeViewTerrain::from_points(drill.projection.all_xy, 40);
      std::cout << "sub-landscape of theme " << biggest << ":\n" << terrain.to_ascii();
    }
  });
  return 0;
}
