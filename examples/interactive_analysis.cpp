// Interactive analysis session: the paper's "next frontier", served
// through the sessionized query API.
//
// §6 names interaction with massive datasets as the follow-on problem to
// the parallel engine itself.  This example plays one analyst session in
// the serving shape: build once, persist the analysis products, answer
// every query off the persisted bundle:
//
//   1. run the engine on a TREC-like corpus;
//   2. export the model bundle (the serving artifact);
//   3. open a Session over it and summarize every theme cluster in ONE
//      batched collective sweep (size, label, cohesion, the documents
//      worth reading first);
//   4. pick the largest theme and run "more like this" from its top
//      representative;
//   5. drill into that theme: re-cluster + re-project its documents,
//      label the sub-themes from the bundle's topic vocabulary, and
//      print the sub-landscape — the visual analog of query refinement.
//
//   ./interactive_analysis [nprocs] [megabytes]
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "sva/cluster/projection.hpp"
#include "sva/corpus/generator.hpp"
#include "sva/engine/bundle.hpp"
#include "sva/engine/pipeline.hpp"
#include "sva/ga/runtime.hpp"
#include "sva/query/session.hpp"
#include "sva/util/stringutil.hpp"
#include "sva/util/table.hpp"

namespace {

void run_session(int nprocs, const sva::corpus::SourceSet& sources,
                 const sva::engine::EngineConfig& config,
                 const std::filesystem::path& bundle) {
  sva::ga::spmd_run(nprocs, sva::ga::itanium_cluster_model(), [&](sva::ga::Context& ctx) {
    // ---- 1-2. engine pass + bundle export -------------------------------
    const auto r = sva::engine::run_text_engine(ctx, sources, config);
    sva::engine::export_bundle(ctx, r, config, bundle);
    if (ctx.rank() == 0) {
      std::cout << "exported model bundle to " << bundle.string() << "\n\n";
    }

    // ---- 3. theme overview: one batched sweep ----------------------------
    auto session = sva::query::Session::open(ctx, bundle);
    std::vector<sva::query::Query> overview;
    for (std::size_t c = 0; c < session.num_clusters(); ++c) {
      overview.push_back(sva::query::Query::cluster_summary(static_cast<int>(c)));
    }
    const auto summaries = session.run_batch(overview);

    int biggest = 0;
    if (ctx.rank() == 0) {
      sva::Table table({"cluster", "docs", "cohesion", "theme", "read-first"});
      for (const auto& result : summaries) {
        const auto& s = result.summary;
        std::string label;
        for (const auto& t : s.top_terms) label += (label.empty() ? "" : "/") + t;
        std::string reps;
        for (const auto d : s.representatives) {
          if (!reps.empty()) reps += ',';
          reps += std::to_string(d);
        }
        table.add_row({sva::Table::num(static_cast<long long>(s.cluster)),
                       sva::Table::num(static_cast<long long>(s.size)),
                       sva::Table::num(s.cohesion, 3), label, reps});
      }
      std::cout << "theme overview (" << summaries.size()
                << " summaries, one batched sweep):\n"
                << table.to_ascii() << '\n';
    }
    // Everyone agrees on the largest cluster (results are replicated).
    for (std::size_t c = 1; c < summaries.size(); ++c) {
      if (summaries[c].summary.size >
          summaries[static_cast<std::size_t>(biggest)].summary.size) {
        biggest = static_cast<int>(c);
      }
    }

    // ---- 4. "more like this" -------------------------------------------
    const auto& focus = summaries[static_cast<std::size_t>(biggest)].summary;
    if (!focus.representatives.empty()) {
      const auto probe = focus.representatives.front();
      const auto hits = session.similar(probe, 8);
      if (ctx.rank() == 0) {
        sva::Table similar({"doc", "cosine"});
        for (const auto& h : hits) {
          similar.add_row({sva::Table::num(static_cast<long long>(h.doc_id)),
                           sva::Table::num(h.similarity, 4)});
        }
        std::cout << "documents most similar to doc " << probe << " (theme " << biggest
                  << "):\n"
                  << similar.to_ascii() << '\n';
      }
    }

    // ---- 5. drill-down ----------------------------------------------------
    sva::cluster::KMeansConfig sub;
    sub.k = 4;
    const auto drill = session.drill_down(biggest, sub);
    const auto sub_labels = session.sub_theme_labels(drill.clustering, 3);
    if (ctx.rank() == 0) {
      std::cout << "drill-down into theme " << biggest << ": " << drill.subset_size
                << " documents, re-clustered into " << drill.clustering.centroids.rows()
                << " sub-themes\n";
      for (std::size_t c = 0; c < sub_labels.size(); ++c) {
        std::cout << "  sub-theme " << c << " (" << drill.clustering.cluster_sizes[c]
                  << " docs):";
        for (const auto& t : sub_labels[c]) std::cout << ' ' << t;
        std::cout << '\n';
      }
      const auto terrain =
          sva::cluster::ThemeViewTerrain::from_points(drill.projection.all_xy, 40);
      std::cout << "\nsub-landscape of theme " << biggest << ":\n" << terrain.to_ascii();
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  const int nprocs = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::size_t megabytes = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2;

  const auto spec = sva::corpus::trec_like_spec(0, megabytes << 20);
  const auto sources = sva::corpus::generate_corpus(spec);
  std::cout << "TREC-like corpus: " << sources.size() << " documents, "
            << sva::format_bytes(sources.total_bytes()) << ", " << nprocs
            << " simulated processes\n\n";

  sva::engine::EngineConfig config;
  config.kmeans.k = 8;
  // Per-process name: concurrent runs must not swap bundles under each
  // other between export and open.
  const std::filesystem::path bundle =
      std::filesystem::temp_directory_path() /
      ("interactive_analysis_" + std::to_string(::getpid()) + ".svab");

  // The bundle name embeds this pid, so a stranded file would never be
  // reclaimed by a later run: remove it on the failure path too.
  int rc = 0;
  try {
    run_session(nprocs, sources, config, bundle);
  } catch (const std::exception& e) {
    std::cerr << "interactive_analysis: " << e.what() << "\n";
    rc = 1;
  }
  std::filesystem::remove(bundle);
  return rc;
}
