// Scaling demo: one corpus, processor counts 1..32, the speedup table —
// a miniature of the paper's evaluation you can run in seconds.
//
// Also demonstrates the virtual-time instrumentation: the modeled time
// is per-rank measured compute plus LogGP-modeled communication, so the
// curve is meaningful even when all simulated processes share one core.
//
//   ./scaling_demo [megabytes]
#include <cstdlib>
#include <iostream>

#include "sva/corpus/generator.hpp"
#include "sva/engine/pipeline.hpp"
#include "sva/util/stringutil.hpp"
#include "sva/util/table.hpp"

int main(int argc, char** argv) {
  const std::size_t megabytes = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 3;

  const auto spec = sva::corpus::pubmed_like_spec(0, megabytes << 20);
  const auto sources = sva::corpus::generate_corpus(spec);
  std::cout << "corpus: " << sources.size() << " records, "
            << sva::format_bytes(sources.total_bytes()) << "\n\n";

  sva::engine::EngineConfig config;
  config.topicality.num_major_terms = 600;
  config.kmeans.k = 12;

  sva::Table table({"procs", "modeled_s", "speedup", "efficiency_pct", "scan_s", "index_s",
                    "siggen_s", "clusproj_s"});
  double p1_time = 0.0;
  for (int nprocs : {1, 2, 4, 8, 16, 32}) {
    const auto run =
        sva::engine::run_pipeline(nprocs, sva::ga::itanium_cluster_model(), sources, config);
    const auto& t = run.result.timings;
    if (nprocs == 1) p1_time = run.modeled_seconds;
    const double speedup = p1_time / run.modeled_seconds;
    table.add_row({sva::Table::num(static_cast<long long>(nprocs)),
                   sva::Table::num(run.modeled_seconds, 3), sva::Table::num(speedup, 2),
                   sva::Table::num(100.0 * speedup / nprocs, 1),
                   sva::Table::num(t.scan, 3), sva::Table::num(t.index, 3),
                   sva::Table::num(t.signature_generation(), 3),
                   sva::Table::num(t.clusproj, 3)});
  }
  std::cout << table.to_ascii();
  std::cout << "\n(virtually linear scaling is the paper's headline claim; efficiency\n"
               " erodes slightly at P=32 from collective latencies, as in Figure 6a)\n";
  return 0;
}
