// Signature persistence round trip: the engine's "valuable intermediate
// product" (§2.1 step 7) plus the compressed inverted index.
//
// The session that *builds* an analysis is rarely the session that
// *reads* it: signatures and indexes are written once by the parallel
// engine and reopened later (possibly on an analyst workstation) for
// querying without re-running the pipeline.  This example:
//
//   1. runs the engine on a PubMed-like corpus (P simulated processes);
//   2. persists the knowledge signatures and the varbyte-compressed
//      term→record index, reporting the compression ratio;
//   3. reopens the signature store serially (no SPMD world at all) and
//      answers "more like this" from disk, verifying it agrees with the
//      engine's in-memory signatures.
//
//   ./signature_store [nprocs] [megabytes] [output_dir]
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "sva/corpus/generator.hpp"
#include "sva/engine/pipeline.hpp"
#include "sva/ga/runtime.hpp"
#include "sva/index/codec.hpp"
#include "sva/index/inverted_index.hpp"
#include "sva/query/similarity.hpp"
#include "sva/sig/persist.hpp"
#include "sva/text/scanner.hpp"
#include "sva/util/stringutil.hpp"
#include "sva/util/table.hpp"

int main(int argc, char** argv) {
  const int nprocs = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::size_t megabytes = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2;
  const std::string out_dir = argc > 3 ? argv[3] : "signature_store_out";
  const std::string sig_path = out_dir + "/signatures.bin";

  const auto sources =
      sva::corpus::generate_corpus(sva::corpus::pubmed_like_spec(0, megabytes << 20));
  std::cout << "corpus: " << sources.size() << " abstracts, "
            << sva::format_bytes(sources.total_bytes()) << "\n\n";
  std::filesystem::create_directories(out_dir);

  // ---- 1+2: build once, persist ----------------------------------------
  sva::engine::EngineConfig config;
  sva::ga::spmd_run(nprocs, sva::ga::itanium_cluster_model(), [&](sva::ga::Context& ctx) {
    const auto r = sva::engine::run_text_engine(ctx, sources, config);

    // Dimension labels: the topic terms' strings.
    std::vector<std::string> topic_names;
    topic_names.reserve(r.selection.m());
    for (const auto t : r.selection.topic_terms) {
      topic_names.push_back(r.vocabulary->terms[static_cast<std::size_t>(t)]);
    }
    sva::sig::write_signatures(ctx, sig_path, r.signatures, topic_names);

    // Compressed index: rebuilt here from the scan products to show the
    // standalone API (the engine does not keep the raw index around).
    const auto scan = sva::text::scan_sources(ctx, sources, config.tokenizer);
    const auto idx =
        sva::index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    const auto compressed = sva::index::compress_record_index(ctx, idx.index);
    if (ctx.rank() == 0) {
      sva::Table t({"artifact", "value"});
      t.add_row({"signature rows", sva::Table::num(static_cast<long long>(r.num_records))});
      t.add_row({"signature dims (M)", sva::Table::num(r.dimension)});
      t.add_row({"raw postings", sva::Table::num(static_cast<long long>(
                                     compressed.total_postings))});
      t.add_row({"raw bytes (8B/posting)",
                 sva::format_bytes(compressed.total_postings * 8)});
      t.add_row({"compressed bytes", sva::format_bytes(compressed.bytes.size())});
      t.add_row({"compression ratio", sva::Table::num(compressed.compression_ratio(), 2)});
      std::cout << "persisted products:\n" << t.to_ascii() << '\n';
    }
  });

  // ---- 3: serial reopen --------------------------------------------------
  const auto store = sva::sig::read_signatures(sig_path);
  std::cout << "reopened " << sig_path << ": " << store.size() << " signatures, M = "
            << store.dimension() << "\n";
  std::cout << "dimension labels:";
  for (std::size_t d = 0; d < std::min<std::size_t>(6, store.topic_terms.size()); ++d) {
    std::cout << ' ' << store.topic_terms[d];
  }
  std::cout << " ...\n\n";

  // Serial "more like this" straight off the store: cosine against one
  // probe row, no SPMD world involved.
  const std::size_t probe_row = store.size() / 2;
  struct Hit {
    std::uint64_t doc;
    double cos;
  };
  std::vector<Hit> hits;
  for (std::size_t i = 0; i < store.size(); ++i) {
    if (i == probe_row || store.is_null[i]) continue;
    hits.push_back({store.doc_ids[i], sva::query::cosine_similarity(
                                          store.docvecs.row(i), store.docvecs.row(probe_row))});
  }
  std::partial_sort(hits.begin(), hits.begin() + std::min<std::size_t>(5, hits.size()),
                    hits.end(), [](const Hit& a, const Hit& b) { return a.cos > b.cos; });
  std::cout << "documents most similar to doc " << store.doc_ids[probe_row]
            << " (served from the store):\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, hits.size()); ++i) {
    std::cout << "  doc " << hits[i].doc << "  cosine " << hits[i].cos << '\n';
  }
  return 0;
}
