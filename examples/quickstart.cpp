// Quickstart: the whole engine in one page.
//
// Generates a small PubMed-like corpus, runs the parallel text engine on
// 4 simulated processes, and prints the products an analyst would see:
// corpus statistics, the discovered topic terms, theme labels per
// cluster, and the ThemeView terrain built from the 2-D projection.
//
//   ./quickstart [nprocs] [megabytes]
#include <cstdlib>
#include <iostream>

#include "sva/cluster/projection.hpp"
#include "sva/corpus/generator.hpp"
#include "sva/engine/pipeline.hpp"
#include "sva/util/stringutil.hpp"

int main(int argc, char** argv) {
  const int nprocs = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::size_t megabytes = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2;

  // 1. A corpus (stand-in for a PubMed slice).
  sva::corpus::CorpusSpec spec = sva::corpus::pubmed_like_spec(0, megabytes << 20);
  const sva::corpus::SourceSet sources = sva::corpus::generate_corpus(spec);
  std::cout << "corpus: " << sources.size() << " records, "
            << sva::format_bytes(sources.total_bytes()) << "\n";

  // 2. Engine configuration: defaults are sensible; shrink the topic
  //    space a little for a small corpus.
  sva::engine::EngineConfig config;
  config.topicality.num_major_terms = 600;
  config.kmeans.k = 12;

  // 3. Run on an SPMD world of `nprocs` simulated processes.
  const sva::engine::PipelineRun run =
      sva::engine::run_pipeline(nprocs, sva::ga::itanium_cluster_model(), sources, config);
  const sva::engine::EngineResult& r = run.result;

  std::cout << "vocabulary: " << r.num_terms << " unique terms, "
            << r.total_term_occurrences << " occurrences\n";
  std::cout << "signature space: N=" << r.selection.n() << " major terms, M=" << r.dimension
            << " dimensions (" << r.signature_rounds << " adaptive round(s))\n";

  std::cout << "\ntop topic terms:";
  for (std::size_t i = 0; i < std::min<std::size_t>(10, r.selection.topic_terms.size()); ++i) {
    std::cout << ' '
              << r.vocabulary->terms[static_cast<std::size_t>(r.selection.topic_terms[i])];
  }
  std::cout << "\n\nthemes (cluster size -> label terms):\n";
  for (std::size_t c = 0; c < r.theme_labels.size(); ++c) {
    std::cout << "  [" << r.clustering.cluster_sizes[c] << "] ";
    for (const auto& term : r.theme_labels[c]) std::cout << term << ' ';
    std::cout << '\n';
  }

  // 4. The final primary product: 2-D coordinates per document, rendered
  //    as a ThemeView-style terrain.
  const auto terrain = sva::cluster::ThemeViewTerrain::from_points(r.projection.all_xy, 40);
  std::cout << "\nThemeView terrain (" << r.projection.all_doc_ids.size()
            << " documents):\n"
            << terrain.to_ascii();

  std::cout << "\nmodeled time: " << run.modeled_seconds << " s on " << nprocs
            << " processes (wall " << run.wall_seconds << " s)\n";
  std::cout << "components: scan=" << r.timings.scan << " index=" << r.timings.index
            << " topic=" << r.timings.topic << " AM=" << r.timings.am
            << " DocVec=" << r.timings.docvec << " ClusProj=" << r.timings.clusproj << "\n";
  return 0;
}
