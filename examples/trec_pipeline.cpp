// TREC-like pipeline: noisy web data with a customized tokenizer.
//
// The GOV2-analog corpus carries markup residue, URLs and numeric noise,
// plus a heavy-tailed document-length distribution.  This example shows
// the knobs a downstream user actually turns: tokenizer hygiene, the
// association-matrix weighting, and the indexing scheduler — and prints
// the indexing load-balance telemetry that motivates the paper's dynamic
// chunking.
//
//   ./trec_pipeline [nprocs] [megabytes]
#include <cstdlib>
#include <iostream>

#include "sva/corpus/generator.hpp"
#include "sva/engine/pipeline.hpp"
#include "sva/util/stringutil.hpp"
#include "sva/util/table.hpp"

int main(int argc, char** argv) {
  const int nprocs = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::size_t megabytes = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;

  const auto spec = sva::corpus::trec_like_spec(0, megabytes << 20);
  const auto sources = sva::corpus::generate_corpus(spec);
  std::cout << "TREC-like corpus: " << sources.size() << " pages, "
            << sva::format_bytes(sources.total_bytes()) << "\n";

  sva::engine::EngineConfig config;
  // Web-corpus hygiene: kill residue tokens and very long junk tokens.
  config.tokenizer.drop_numeric = true;
  config.tokenizer.max_length = 24;
  config.tokenizer.extra_stopwords = {"href", "nbsp", "http", "html", "pdf", "img", "gov",
                                      "www"};
  // The paper's scheduler; try kStatic here to see the imbalance yourself.
  config.indexing.scheduling = sva::ga::Scheduling::kOwnerFirst;
  config.indexing.chunk_fields = 64;
  config.association.weighting = sva::sig::AssociationWeighting::kLiftSubtract;
  config.topicality.num_major_terms = 700;
  config.kmeans.k = 14;

  const auto run =
      sva::engine::run_pipeline(nprocs, sva::ga::itanium_cluster_model(), sources, config);
  const auto& r = run.result;

  std::cout << "vocabulary " << r.num_terms << " terms; N=" << r.selection.n()
            << " M=" << r.dimension << "; modeled " << run.modeled_seconds << " s on "
            << nprocs << " procs\n\n";

  // Indexing load balance: the telemetry behind Figure 9.
  sva::Table lb({"rank", "busy_s", "loads"});
  for (std::size_t rank = 0; rank < r.index_load_balance.busy_seconds.size(); ++rank) {
    lb.add_row({sva::Table::num(static_cast<long long>(rank)),
                sva::Table::num(r.index_load_balance.busy_seconds[rank], 4),
                sva::Table::num(
                    static_cast<long long>(r.index_load_balance.loads_claimed[rank]))});
  }
  std::cout << "indexing load balance (imbalance = "
            << sva::Table::num(r.index_load_balance.imbalance(), 3) << "):\n"
            << lb.to_ascii() << '\n';

  // Cluster summaries: sizes and label terms.
  sva::Table themes({"cluster", "docs", "label terms"});
  for (std::size_t c = 0; c < r.theme_labels.size(); ++c) {
    themes.add_row({sva::Table::num(static_cast<long long>(c)),
                    sva::Table::num(static_cast<long long>(r.clustering.cluster_sizes[c])),
                    sva::join(r.theme_labels[c], " ")});
  }
  std::cout << themes.to_ascii();
  return 0;
}
