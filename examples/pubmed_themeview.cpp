// PubMed-like ThemeView workflow: the paper's flagship scenario.
//
// Generates a PubMed-analog corpus (structured biomedical-abstract
// records), runs the engine on a configurable number of simulated
// processes, writes the 2-D document coordinates to disk — the engine's
// "final primary product" — and renders the ThemeView terrain together
// with per-theme statistics an analyst would start from.
//
//   ./pubmed_themeview [nprocs] [megabytes] [output_dir]
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "sva/cluster/projection.hpp"
#include "sva/corpus/generator.hpp"
#include "sva/engine/pipeline.hpp"
#include "sva/util/stringutil.hpp"
#include "sva/util/table.hpp"
#include "sva/viz/contour.hpp"
#include "sva/viz/peaks.hpp"
#include "sva/viz/render.hpp"

int main(int argc, char** argv) {
  const int nprocs = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::size_t megabytes = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;
  const std::string out_dir = argc > 3 ? argv[3] : "themeview_out";

  const auto spec = sva::corpus::pubmed_like_spec(0, megabytes << 20);
  const auto sources = sva::corpus::generate_corpus(spec);
  std::cout << "PubMed-like corpus: " << sources.size() << " abstracts, "
            << sva::format_bytes(sources.total_bytes()) << "\n";

  sva::engine::EngineConfig config;
  config.topicality.num_major_terms = 900;
  config.kmeans.k = 18;
  // Biomedical corpora carry ID-ish fields; keep numerics out of the
  // vocabulary and drop boilerplate.
  config.tokenizer.drop_numeric = true;
  config.tokenizer.use_stopwords = true;

  const auto run =
      sva::engine::run_pipeline(nprocs, sva::ga::itanium_cluster_model(), sources, config);
  const auto& r = run.result;

  // ---- persist the products -------------------------------------------
  std::filesystem::create_directories(out_dir);
  sva::cluster::write_coordinates(out_dir + "/coordinates.csv", r.projection.all_doc_ids,
                                  r.projection.all_xy);

  {
    std::ofstream themes(out_dir + "/themes.txt");
    for (std::size_t c = 0; c < r.theme_labels.size(); ++c) {
      themes << "theme " << c << " (" << r.clustering.cluster_sizes[c] << " docs):";
      for (const auto& term : r.theme_labels[c]) themes << ' ' << term;
      themes << '\n';
    }
  }

  // ---- report ----------------------------------------------------------
  sva::Table summary({"metric", "value"});
  summary.add_row({"records", sva::Table::num(static_cast<long long>(r.num_records))});
  summary.add_row({"vocabulary", sva::Table::num(static_cast<long long>(r.num_terms))});
  summary.add_row({"major terms (N)", sva::Table::num(r.selection.n())});
  summary.add_row({"signature dims (M)", sva::Table::num(r.dimension)});
  summary.add_row(
      {"adaptive rounds", sva::Table::num(static_cast<long long>(r.signature_rounds))});
  summary.add_row({"null signatures",
                   sva::Table::num(static_cast<long long>(r.signatures.global_null_count))});
  summary.add_row({"clusters", sva::Table::num(r.clustering.centroids.rows())});
  summary.add_row({"kmeans iterations",
                   sva::Table::num(static_cast<long long>(r.clustering.iterations))});
  summary.add_row({"modeled time (s)", sva::Table::num(run.modeled_seconds, 3)});
  summary.add_row({"wall time (s)", sva::Table::num(run.wall_seconds, 3)});
  std::cout << summary.to_ascii() << '\n';

  sva::Table comps({"component", "modeled_s", "pct"});
  for (const auto& label : sva::engine::ComponentTimings::labels()) {
    const double v = r.timings.by_label(label);
    comps.add_row({label, sva::Table::num(v, 3),
                   sva::Table::num(100.0 * v / r.timings.total(), 1)});
  }
  std::cout << comps.to_ascii() << '\n';

  // ---- the annotated landscape ------------------------------------------
  const auto terrain = sva::cluster::ThemeViewTerrain::from_points(r.projection.all_xy, 56);

  // 2-D cluster centers from the gathered projection (rank 0 holds the
  // full assignment), used to label the terrain's peaks with themes.
  std::vector<double> centroid_xy(2 * r.theme_labels.size(), 0.0);
  {
    std::vector<double> count(r.theme_labels.size(), 0.0);
    for (std::size_t i = 0; i < r.all_assignment.size(); ++i) {
      const auto c = static_cast<std::size_t>(r.all_assignment[i]);
      centroid_xy[2 * c] += r.projection.all_xy[2 * i];
      centroid_xy[2 * c + 1] += r.projection.all_xy[2 * i + 1];
      count[c] += 1.0;
    }
    for (std::size_t c = 0; c < count.size(); ++c) {
      if (count[c] > 0.0) {
        centroid_xy[2 * c] /= count[c];
        centroid_xy[2 * c + 1] /= count[c];
      }
    }
  }

  auto peaks = sva::viz::find_peaks(terrain);
  sva::viz::label_peaks(peaks, centroid_xy, r.theme_labels);

  std::vector<sva::viz::Contour> contours;
  for (const double level : sva::viz::contour_levels(terrain, 6)) {
    for (auto& c : sva::viz::extract_contours(terrain, level)) contours.push_back(std::move(c));
  }
  sva::viz::write_ppm(terrain, out_dir + "/themeview.ppm");
  sva::viz::write_svg(terrain, contours, peaks, r.projection.all_xy,
                      out_dir + "/themeview.svg");

  std::cout << "ThemeView terrain (numbered peaks = themes):\n"
            << sva::viz::ascii_with_peaks(terrain, peaks);
  std::cout << "\nwrote " << out_dir << "/coordinates.csv, themes.txt, themeview.ppm, "
            << "themeview.svg\n";
  return 0;
}
