// PubMed-like ThemeView workflow: the paper's flagship scenario, in the
// serving shape.
//
// Generates a PubMed-analog corpus (structured biomedical-abstract
// records), runs the engine on a configurable number of simulated
// processes and exports the model bundle — the servable successor of the
// paper's "final primary product" coordinate file.  Everything an
// analyst then sees comes through a query::Session opened over that
// bundle: the gathered 2-D landscape, and a per-theme statistics table
// answered in one batched query sweep.
//
//   ./pubmed_themeview [nprocs] [megabytes] [output_dir]
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "sva/cluster/projection.hpp"
#include "sva/corpus/generator.hpp"
#include "sva/engine/bundle.hpp"
#include "sva/engine/pipeline.hpp"
#include "sva/query/session.hpp"
#include "sva/util/stringutil.hpp"
#include "sva/util/table.hpp"
#include "sva/viz/contour.hpp"
#include "sva/viz/peaks.hpp"
#include "sva/viz/render.hpp"

int main(int argc, char** argv) {
  const int nprocs = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::size_t megabytes = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;
  const std::string out_dir = argc > 3 ? argv[3] : "themeview_out";

  const auto spec = sva::corpus::pubmed_like_spec(0, megabytes << 20);
  const auto sources = sva::corpus::generate_corpus(spec);
  std::cout << "PubMed-like corpus: " << sources.size() << " abstracts, "
            << sva::format_bytes(sources.total_bytes()) << "\n";

  sva::engine::EngineConfig config;
  config.topicality.num_major_terms = 900;
  config.kmeans.k = 18;
  // Biomedical corpora carry ID-ish fields; keep numerics out of the
  // vocabulary and drop boilerplate.
  config.tokenizer.drop_numeric = true;
  config.tokenizer.use_stopwords = true;

  std::filesystem::create_directories(out_dir);
  const std::filesystem::path bundle = std::filesystem::path(out_dir) / "pubmed.svab";

  const auto spmd = sva::ga::spmd_run(
      nprocs, sva::ga::itanium_cluster_model(), [&](sva::ga::Context& ctx) {
        const auto r = sva::engine::run_text_engine(ctx, sources, config);

        // ---- persist the servable artifact, serve everything off it -----
        sva::engine::export_bundle(ctx, r, config, bundle);
        auto session = sva::query::Session::open(ctx, bundle);

        const auto land = session.landscape();
        std::vector<sva::query::Query> overview;
        for (std::size_t c = 0; c < session.num_clusters(); ++c) {
          overview.push_back(sva::query::Query::cluster_summary(static_cast<int>(c), 3));
        }
        const auto themes = session.run_batch(overview);

        // 2-D theme centers from the session's row slices (local partial
        // sums, one exact integer + one coordinate allreduce).
        const std::size_t k = session.num_clusters();
        const auto& view = session.bundle();
        std::vector<double> centroid_xy(2 * k, 0.0);
        std::vector<std::int64_t> counts(k, 0);
        for (std::size_t i = 0; i < view.clustering.assignment.size(); ++i) {
          const auto c = static_cast<std::size_t>(view.clustering.assignment[i]);
          centroid_xy[2 * c] += view.projection_xy[2 * i];
          centroid_xy[2 * c + 1] += view.projection_xy[2 * i + 1];
          ++counts[c];
        }
        ctx.allreduce_sum(centroid_xy.data(), centroid_xy.size());
        ctx.allreduce_sum(counts.data(), counts.size());
        for (std::size_t c = 0; c < k; ++c) {
          if (counts[c] > 0) {
            centroid_xy[2 * c] /= static_cast<double>(counts[c]);
            centroid_xy[2 * c + 1] /= static_cast<double>(counts[c]);
          }
        }

        if (ctx.rank() != 0) return;

        sva::cluster::write_coordinates(out_dir + "/coordinates.csv", land.doc_ids,
                                        land.xy);
        {
          std::ofstream out(out_dir + "/themes.txt");
          for (const auto& result : themes) {
            const auto& s = result.summary;
            out << "theme " << s.cluster << " (" << s.size
                << " docs, cohesion " << s.cohesion << "):";
            for (const auto& term : s.top_terms) out << ' ' << term;
            out << "  read-first:";
            for (const auto d : s.representatives) out << ' ' << d;
            out << '\n';
          }
        }

        // ---- report -----------------------------------------------------
        sva::Table summary({"metric", "value"});
        summary.add_row({"records", sva::Table::num(static_cast<long long>(r.num_records))});
        summary.add_row(
            {"vocabulary", sva::Table::num(static_cast<long long>(r.num_terms))});
        summary.add_row({"major terms (N)", sva::Table::num(r.selection.n())});
        summary.add_row({"signature dims (M)", sva::Table::num(session.dimension())});
        summary.add_row({"adaptive rounds",
                         sva::Table::num(static_cast<long long>(r.signature_rounds))});
        summary.add_row(
            {"null signatures",
             sva::Table::num(static_cast<long long>(r.signatures.global_null_count))});
        summary.add_row({"clusters", sva::Table::num(session.num_clusters())});
        summary.add_row({"kmeans iterations",
                         sva::Table::num(static_cast<long long>(r.clustering.iterations))});
        summary.add_row({"modeled time (s)", sva::Table::num(r.timings.total(), 3)});
        std::cout << summary.to_ascii() << '\n';

        sva::Table comps({"component", "modeled_s", "pct"});
        for (const auto& label : sva::engine::ComponentTimings::labels()) {
          const double v = r.timings.by_label(label);
          comps.add_row({label, sva::Table::num(v, 3),
                         sva::Table::num(100.0 * v / r.timings.total(), 1)});
        }
        std::cout << comps.to_ascii() << '\n';

        // ---- the annotated landscape ------------------------------------
        const auto terrain = sva::cluster::ThemeViewTerrain::from_points(land.xy, 56);
        std::vector<std::vector<std::string>> labels;
        for (const auto& result : themes) labels.push_back(result.summary.top_terms);
        auto peaks = sva::viz::find_peaks(terrain);
        sva::viz::label_peaks(peaks, centroid_xy, labels);

        std::vector<sva::viz::Contour> contours;
        for (const double level : sva::viz::contour_levels(terrain, 6)) {
          for (auto& c : sva::viz::extract_contours(terrain, level)) {
            contours.push_back(std::move(c));
          }
        }
        sva::viz::write_ppm(terrain, out_dir + "/themeview.ppm");
        sva::viz::write_svg(terrain, contours, peaks, land.xy, out_dir + "/themeview.svg");

        std::cout << "ThemeView terrain (numbered peaks = themes):\n"
                  << sva::viz::ascii_with_peaks(terrain, peaks);
        std::cout << "\nwrote " << out_dir << "/pubmed.svab (model bundle), "
                  << "coordinates.csv, themes.txt, themeview.ppm, themeview.svg\n"
                  << "serve more queries with: sva_query --bundle " << bundle.string()
                  << " --info\n";
      });
  std::cout << "wall time: " << spmd.wall_seconds << " s\n";
  return 0;
}
