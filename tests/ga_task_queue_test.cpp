// Tests for the dynamic load-balancing task queues: every strategy must
// hand out each task exactly once; the owner-first queue must honor its
// priority; the master-worker queue must serialize in virtual time.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <vector>

#include "sva/ga/task_queue.hpp"

#include "test_models.hpp"

namespace sva::ga {
namespace {

struct SweepParam {
  int nprocs;
  Scheduling scheduling;
};

class QueueSweepTest : public ::testing::TestWithParam<SweepParam> {};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name = std::string(scheduling_name(info.param.scheduling)) + "_p" +
                     std::to_string(info.param.nprocs);
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

TEST_P(QueueSweepTest, EveryTaskClaimedExactlyOnce) {
  const auto [nprocs, scheduling] = GetParam();
  constexpr std::size_t kTasks = 337;
  std::vector<std::atomic<int>> claims(kTasks);
  spmd_run(nprocs, [&](Context& ctx) {
    auto queue = make_task_queue(ctx, scheduling, kTasks, 16);
    while (auto chunk = queue->next(ctx)) {
      for (std::size_t t = chunk->begin; t < chunk->end; ++t) claims[t].fetch_add(1);
    }
    ctx.barrier();
  });
  for (std::size_t t = 0; t < kTasks; ++t) EXPECT_EQ(claims[t].load(), 1) << "task " << t;
}

TEST_P(QueueSweepTest, DrainedQueueStaysDrained) {
  const auto [nprocs, scheduling] = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    auto queue = make_task_queue(ctx, scheduling, 10, 4);
    while (queue->next(ctx)) {
    }
    EXPECT_FALSE(queue->next(ctx).has_value());
    EXPECT_FALSE(queue->next(ctx).has_value());
    ctx.barrier();
  });
}

TEST_P(QueueSweepTest, ChunksAreWithinBoundsAndNonEmpty) {
  const auto [nprocs, scheduling] = GetParam();
  constexpr std::size_t kTasks = 100;
  spmd_run(nprocs, [&](Context& ctx) {
    auto queue = make_task_queue(ctx, scheduling, kTasks, 7);
    while (auto chunk = queue->next(ctx)) {
      EXPECT_LT(chunk->begin, chunk->end);
      EXPECT_LE(chunk->end, kTasks);
    }
    ctx.barrier();
  });
}

TEST_P(QueueSweepTest, ReportsTaskCount) {
  const auto [nprocs, scheduling] = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    auto queue = make_task_queue(ctx, scheduling, 55, 8);
    EXPECT_EQ(queue->num_tasks(), 55u);
    while (queue->next(ctx)) {
    }
    ctx.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, QueueSweepTest,
    ::testing::Values(SweepParam{1, Scheduling::kStatic}, SweepParam{4, Scheduling::kStatic},
                      SweepParam{1, Scheduling::kOwnerFirst},
                      SweepParam{3, Scheduling::kOwnerFirst},
                      SweepParam{8, Scheduling::kOwnerFirst},
                      SweepParam{1, Scheduling::kAtomicCounter},
                      SweepParam{4, Scheduling::kAtomicCounter},
                      SweepParam{8, Scheduling::kAtomicCounter},
                      SweepParam{1, Scheduling::kMasterWorker},
                      SweepParam{4, Scheduling::kMasterWorker}),
    param_name);

// ---- strategy-specific properties ------------------------------------------

TEST(StaticQueueTest, RankGetsItsContiguousShareOnce) {
  spmd_run(4, [](Context& ctx) {
    auto queue = StaticPartitionQueue::create(ctx, 100);
    auto chunk = queue->next(ctx);
    ASSERT_TRUE(chunk.has_value());
    EXPECT_EQ(chunk->begin, static_cast<std::size_t>(ctx.rank()) * 25);
    EXPECT_EQ(chunk->end, static_cast<std::size_t>(ctx.rank() + 1) * 25);
    EXPECT_FALSE(queue->next(ctx).has_value());
    ctx.barrier();
  });
}

TEST(StaticQueueTest, MoreRanksThanTasks) {
  std::vector<std::atomic<int>> claims(3);
  spmd_run(8, [&](Context& ctx) {
    auto queue = StaticPartitionQueue::create(ctx, 3);
    while (auto chunk = queue->next(ctx)) {
      for (std::size_t t = chunk->begin; t < chunk->end; ++t) claims[t].fetch_add(1);
    }
    ctx.barrier();
  });
  for (auto& c : claims) EXPECT_EQ(c.load(), 1);
}

TEST(OwnerFirstQueueTest, FirstClaimComesFromOwnRange) {
  // Assertions happen outside the SPMD region: a fatal assertion inside a
  // rank lambda would return early, skip the collective protocol, and
  // deadlock the remaining ranks.  The barrier between the first claim and
  // the drain loop keeps fast ranks from stealing a slow rank's entire
  // range before its first (owner-priority) claim.
  std::vector<std::pair<std::size_t, std::size_t>> ranges = {{0, 40}, {40, 60}, {60, 100}};
  std::vector<std::optional<TaskChunk>> first(3);
  spmd_run(3, [&](Context& ctx) {
    auto queue = OwnerFirstChunkQueue::create(ctx, ranges, 10);
    first[static_cast<std::size_t>(ctx.rank())] = queue->next(ctx);
    ctx.barrier();
    while (queue->next(ctx)) {
    }
    ctx.barrier();
  });
  for (std::size_t r = 0; r < 3; ++r) {
    ASSERT_TRUE(first[r].has_value()) << "rank " << r;
    const auto [b, e] = ranges[r];
    EXPECT_GE(first[r]->begin, b) << "rank " << r;
    EXPECT_LE(first[r]->end, e) << "rank " << r;
  }
}

TEST(OwnerFirstQueueTest, IdleRanksStealFromBusyOnes) {
  // Rank 1 owns everything; ranks 0 and 2 must still get work.  The
  // vtime-ordered gate makes the claim schedule follow virtual time, so
  // the steals happen deterministically even though the host OS may run
  // the three rank threads in any real-time order.
  std::vector<std::pair<std::size_t, std::size_t>> ranges = {{0, 0}, {0, 90}, {90, 90}};
  std::vector<std::atomic<int>> claimed_by(3);
  spmd_run(3, [&](Context& ctx) {
    auto queue = OwnerFirstChunkQueue::create(ctx, ranges, 5, /*vtime_ordered=*/true);
    int chunks = 0;
    while (queue->next(ctx)) ++chunks;
    claimed_by[static_cast<std::size_t>(ctx.rank())] = chunks;
    ctx.barrier();
  });
  EXPECT_GT(claimed_by[0].load(), 0);
  EXPECT_GT(claimed_by[2].load(), 0);
  EXPECT_EQ(claimed_by[0].load() + claimed_by[1].load() + claimed_by[2].load(), 90 / 5);
}

TEST(OwnerFirstQueueTest, WrongRangeCountThrows) {
  EXPECT_THROW(spmd_run(3,
                        [](Context& ctx) {
                          (void)OwnerFirstChunkQueue::create(ctx, {{0, 10}}, 2);
                        }),
               Error);
}

TEST(MasterWorkerQueueTest, RequestsSerializeOnMasterClock) {
  // With many workers each making one request, replies must be spaced by
  // at least the master's service time: the later reply arrives no
  // earlier than (n_requests - 1) * service after the first.
  constexpr int kProcs = 8;
  // Modeled-cost comparison only: see test_models.hpp.
  const CommModel model = sva::testing::zero_compute_model();
  auto replies = std::make_shared<std::vector<double>>(kProcs, 0.0);
  spmd_run(kProcs, model, [&](Context& ctx) {
    auto queue = MasterWorkerQueue::create(ctx, 1000, 1);
    ctx.barrier();
    (void)queue->next(ctx);
    (*replies)[static_cast<std::size_t>(ctx.rank())] = ctx.vtime();
    ctx.barrier();
  });
  std::sort(replies->begin(), replies->end());
  // 0.9 slack for FP accumulation order in the modeled clocks.
  EXPECT_GE(replies->back() - replies->front(), model.rpc_service * (kProcs - 2) * 0.9);
}

TEST(MasterWorkerQueueTest, MasterPaysLowerLatencyThanWorkers) {
  // Modeled-cost comparison only: see test_models.hpp.
  const CommModel model = sva::testing::zero_compute_model();
  auto costs = std::make_shared<std::vector<double>>(2, 0.0);
  spmd_run(2, model, [&](Context& ctx) {
    auto queue = MasterWorkerQueue::create(ctx, 100, 1);
    ctx.barrier();
    // Barrier-separated service windows: rank 0's request completes (in
    // both real and virtual time) before rank 1 requests, so queueing at
    // the master cannot mask the latency difference.
    if (ctx.rank() == 0) {
      const double t0 = ctx.vtime();
      (void)queue->next(ctx);
      (*costs)[0] = ctx.vtime() - t0;
    }
    ctx.barrier();
    if (ctx.rank() == 1) {
      const double t0 = ctx.vtime();
      (void)queue->next(ctx);
      (*costs)[1] = ctx.vtime() - t0;
    }
    ctx.barrier();
  });
  EXPECT_LT((*costs)[0], (*costs)[1]);
}

TEST(AtomicCounterQueueTest, ChunkSizeRespected) {
  spmd_run(2, [](Context& ctx) {
    auto queue = AtomicCounterQueue::create(ctx, 100, 30);
    std::size_t total = 0;
    while (auto chunk = queue->next(ctx)) {
      EXPECT_LE(chunk->size(), 30u);
      total += chunk->size();
    }
    const auto sum = ctx.allreduce_sum(static_cast<std::int64_t>(total));
    EXPECT_EQ(sum, 100);
  });
}

TEST(AtomicCounterQueueTest, ZeroChunkSizeThrows) {
  EXPECT_THROW(
      spmd_run(1, [](Context& ctx) { (void)AtomicCounterQueue::create(ctx, 10, 0); }),
      Error);
}


// ---- virtual-time claim ordering (ClaimGate) --------------------------------

TEST(ClaimGateTest, ClaimsFollowVirtualTimeNotThreadOrder) {
  // Rank 2 charges a large virtual-time head start to ranks 0/1... i.e.
  // rank 2's clock is far AHEAD, so regardless of which thread the OS
  // runs first, ranks 0 and 1 must drain the whole queue before rank 2
  // gets a single chunk.
  constexpr int kProcs = 3;
  std::vector<std::atomic<int>> claimed(kProcs);
  spmd_run(kProcs, [&](Context& ctx) {
    auto queue =
        AtomicCounterQueue::create(ctx, 40, 4, /*vtime_ordered=*/true);
    ctx.barrier();
    if (ctx.rank() == 2) ctx.charge(100.0);  // way in the future
    int chunks = 0;
    while (queue->next(ctx)) ++chunks;
    claimed[static_cast<std::size_t>(ctx.rank())] = chunks;
    ctx.barrier();
  });
  EXPECT_EQ(claimed[2].load(), 0) << "the far-future rank must never win a claim";
  EXPECT_EQ(claimed[0].load() + claimed[1].load(), 10);
  EXPECT_GT(claimed[0].load(), 0);
  EXPECT_GT(claimed[1].load(), 0);
}

TEST(ClaimGateTest, CounterLocalityFavorsTheOwnerRank) {
  // The shared counter is a 1-row GlobalArray hosted on rank 0, so rank
  // 0's fetch-and-add costs alpha_local while peers pay the remote
  // alpha_rmw — in virtual time the owner claims fastest.  Under the
  // gate this locality advantage must show up deterministically: rank 0
  // claims at least as many chunks as any peer, everyone gets work, and
  // every chunk is claimed.
  constexpr int kProcs = 4;
  // Modeled-cost comparison only: see test_models.hpp.
  const CommModel model = sva::testing::zero_compute_model();
  std::vector<std::atomic<int>> claimed(kProcs);
  spmd_run(kProcs, model, [&](Context& ctx) {
    auto queue =
        AtomicCounterQueue::create(ctx, 64, 4, /*vtime_ordered=*/true);
    ctx.barrier();
    int chunks = 0;
    while (queue->next(ctx)) ++chunks;
    claimed[static_cast<std::size_t>(ctx.rank())] = chunks;
    ctx.barrier();
  });
  int total = 0;
  for (int r = 0; r < kProcs; ++r) {
    total += claimed[static_cast<std::size_t>(r)].load();
    EXPECT_GT(claimed[static_cast<std::size_t>(r)].load(), 0) << "rank " << r;
    EXPECT_GE(claimed[0].load(), claimed[static_cast<std::size_t>(r)].load())
        << "counter owner must claim fastest in virtual time";
  }
  EXPECT_EQ(total, 16);
}

TEST(ClaimGateTest, GatedQueueStillClaimsEveryTaskOnce) {
  constexpr std::size_t kTasks = 101;
  std::vector<std::atomic<int>> claims(kTasks);
  spmd_run(5, [&](Context& ctx) {
    auto queue = make_task_queue(ctx, Scheduling::kOwnerFirst, kTasks, 7, {},
                                 /*vtime_ordered=*/true);
    while (auto chunk = queue->next(ctx)) {
      for (std::size_t t = chunk->begin; t < chunk->end; ++t) claims[t].fetch_add(1);
    }
    ctx.barrier();
  });
  for (std::size_t t = 0; t < kTasks; ++t) EXPECT_EQ(claims[t].load(), 1) << "task " << t;
}

TEST(ClaimGateTest, AbortWhileWaitingDoesNotDeadlock) {
  // Rank 1 throws between its first and second claim; ranks waiting at
  // the gate must observe the abort and unwind instead of hanging.
  EXPECT_THROW(
      spmd_run(3,
               [](Context& ctx) {
                 auto queue = AtomicCounterQueue::create(ctx, 1000, 1,
                                                         /*vtime_ordered=*/true);
                 ctx.barrier();
                 if (ctx.rank() == 1) {
                   (void)queue->next(ctx);
                   throw InvalidArgument("injected failure");
                 }
                 while (queue->next(ctx)) {
                 }
                 ctx.barrier();
               }),
      Error);
}

TEST(TaskQueueTest, SchedulingNamesAreDistinct) {
  EXPECT_STRNE(scheduling_name(Scheduling::kStatic), scheduling_name(Scheduling::kOwnerFirst));
  EXPECT_STRNE(scheduling_name(Scheduling::kAtomicCounter),
               scheduling_name(Scheduling::kMasterWorker));
}

}  // namespace
}  // namespace sva::ga
