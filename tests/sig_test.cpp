// Tests for signature generation: Bookstein topicality, the global
// top-N merge, the association matrix against a serial co-occurrence
// oracle, signature normalization, and the adaptive-dimensionality loop.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "sva/corpus/generator.hpp"
#include "sva/index/inverted_index.hpp"
#include "sva/sig/signature.hpp"
#include "test_oracles.hpp"

namespace sva::sig {
namespace {

text::TokenizerConfig test_tokenizer() {
  text::TokenizerConfig c;
  c.min_length = 2;
  c.use_stopwords = false;
  return c;
}

corpus::SourceSet themed_corpus(std::size_t bytes = 128 << 10) {
  corpus::CorpusSpec spec;
  spec.target_bytes = bytes;
  spec.core_vocabulary = 1200;
  spec.num_themes = 5;
  spec.theme_vocabulary = 90;
  spec.theme_token_fraction = 0.35;
  return corpus::generate_corpus(spec);
}

// ---- bookstein_score ---------------------------------------------------------

TEST(BooksteinTest, ClumpedTermScoresHigherThanScattered) {
  // 100 occurrences in 5 docs (clumped) vs in 95 docs (scattered).
  const double clumped = bookstein_score(100, 5, 1000);
  const double scattered = bookstein_score(100, 95, 1000);
  EXPECT_GT(clumped, scattered);
  EXPECT_GT(clumped, 0.0);
}

TEST(BooksteinTest, PerfectScatterScoresNearZero) {
  // tf == df means every occurrence hit a distinct document — close to
  // the random expectation for tf << R.
  const double s = bookstein_score(10, 10, 100000);
  EXPECT_NEAR(s, 0.0, 0.05);
}

TEST(BooksteinTest, DegenerateInputsScoreZero) {
  EXPECT_DOUBLE_EQ(bookstein_score(0, 0, 100), 0.0);
  EXPECT_DOUBLE_EQ(bookstein_score(10, 5, 0), 0.0);
  EXPECT_DOUBLE_EQ(bookstein_score(-1, 1, 100), 0.0);
}

TEST(BooksteinTest, ScoreGrowsWithClumping) {
  const std::uint64_t r = 10000;
  double prev = -1e9;
  for (std::int64_t df : {500, 100, 20, 5, 1}) {
    const double s = bookstein_score(500, df, r);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

// ---- select_topics -----------------------------------------------------------

class TopicSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(TopicSweepTest, SelectionIsIdenticalOnAllRanksAndAllP) {
  const int nprocs = GetParam();
  const auto sources = themed_corpus();
  auto p1_terms = std::make_shared<std::vector<std::int64_t>>();

  // Serial reference.
  ga::spmd_run(1, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
    const auto idx = index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    TopicalityConfig config;
    config.num_major_terms = 150;
    *p1_terms = select_topics(ctx, idx.stats, config).major_terms;
  });

  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
    const auto idx = index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    TopicalityConfig config;
    config.num_major_terms = 150;
    const TopicSelection sel = select_topics(ctx, idx.stats, config);
    EXPECT_EQ(sel.major_terms, *p1_terms);
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, TopicSweepTest, ::testing::Values(2, 3, 4, 8));

TEST(TopicTest, ScoresAreDescending) {
  const auto sources = themed_corpus();
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
    const auto idx = index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    const TopicSelection sel = select_topics(ctx, idx.stats, {});
    for (std::size_t i = 1; i < sel.scores.size(); ++i) {
      EXPECT_LE(sel.scores[i], sel.scores[i - 1] + 1e-12);
    }
  });
}

TEST(TopicTest, TopicsArePrefixOfMajors) {
  const auto sources = themed_corpus();
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
    const auto idx = index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    TopicalityConfig config;
    config.num_major_terms = 100;
    config.topic_fraction = 0.1;
    const TopicSelection sel = select_topics(ctx, idx.stats, config);
    ASSERT_LE(sel.m(), sel.n());
    for (std::size_t j = 0; j < sel.m(); ++j) {
      EXPECT_EQ(sel.topic_terms[j], sel.major_terms[j]);
    }
    EXPECT_NEAR(static_cast<double>(sel.m()), 0.1 * static_cast<double>(sel.n()),
                2.0);
  });
}

TEST(TopicTest, IndexMapsAreConsistent) {
  const auto sources = themed_corpus();
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
    const auto idx = index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    const TopicSelection sel = select_topics(ctx, idx.stats, {});
    for (std::size_t i = 0; i < sel.n(); ++i) {
      EXPECT_EQ(sel.major_index.at(sel.major_terms[i]), i);
    }
    for (std::size_t j = 0; j < sel.m(); ++j) {
      EXPECT_EQ(sel.topic_index.at(sel.topic_terms[j]), j);
    }
  });
}

TEST(TopicTest, ThemeWordsDominateSelection) {
  // Theme vocabulary clumps by construction; most selected topics should
  // be theme words (ids >= core_vocabulary in generator word-id space
  // translate to specific lexicon words — instead check df selectivity).
  const auto sources = themed_corpus();
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
    const auto idx = index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    TopicalityConfig config;
    config.num_major_terms = 50;
    const TopicSelection sel = select_topics(ctx, idx.stats, config);
    ASSERT_GT(sel.n(), 0u);
    // Selected terms cannot be ubiquitous: df <= max_df_fraction * R.
    const auto df = idx.stats.doc_frequency.to_vector(ctx);
    for (auto t : sel.major_terms) {
      EXPECT_LE(df[static_cast<std::size_t>(t)],
                static_cast<std::int64_t>(0.25 * static_cast<double>(sources.size())) + 1);
      EXPECT_GE(df[static_cast<std::size_t>(t)], 2);
    }
  });
}

TEST(TopicTest, InvalidConfigThrows) {
  const auto sources = sva::testing::tiny_corpus();
  ga::spmd_run(1, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
    const auto idx = index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    TopicalityConfig bad;
    bad.num_major_terms = 1;
    EXPECT_THROW((void)select_topics(ctx, idx.stats, bad), InvalidArgument);
    bad.num_major_terms = 10;
    bad.topic_fraction = 0.0;
    EXPECT_THROW((void)select_topics(ctx, idx.stats, bad), InvalidArgument);
  });
}

// ---- association matrix --------------------------------------------------------

TEST(AssociationTest, ConditionalEntriesMatchSerialCoOccurrence) {
  const auto sources = themed_corpus(64 << 10);
  const auto oracle = sva::testing::serial_scan(sources, test_tokenizer());

  for (int nprocs : {1, 3}) {
    ga::spmd_run(nprocs, [&](ga::Context& ctx) {
      const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
      const auto idx = index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
      TopicalityConfig tconfig;
      tconfig.num_major_terms = 60;
      const TopicSelection sel = select_topics(ctx, idx.stats, tconfig);
      AssociationConfig aconfig;
      aconfig.weighting = AssociationWeighting::kConditional;
      const AssociationMatrix am =
          build_association_matrix(ctx, scan.records, sel, idx.stats.num_records, aconfig);

      // Serial oracle: P(i|j) = |docs(i) ∩ docs(j)| / |docs(j)|.
      for (std::size_t i = 0; i < std::min<std::size_t>(sel.n(), 12); ++i) {
        for (std::size_t j = 0; j < sel.m(); ++j) {
          const auto& docs_i = oracle.term_documents.at(sel.major_terms[i]);
          const auto& docs_j = oracle.term_documents.at(sel.topic_terms[j]);
          std::size_t both = 0;
          for (auto d : docs_j) both += docs_i.count(d);
          const double expected =
              static_cast<double>(both) / static_cast<double>(docs_j.size());
          EXPECT_NEAR(am.weights.at(i, j), expected, 1e-9)
              << "entry (" << i << ", " << j << ") at P=" << nprocs;
        }
      }
    });
  }
}

TEST(AssociationTest, DiagonalOfConditionalIsOne) {
  // P(t|t) = 1 for every topic term against itself.
  const auto sources = themed_corpus(64 << 10);
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
    const auto idx = index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    TopicalityConfig tconfig;
    tconfig.num_major_terms = 40;
    const TopicSelection sel = select_topics(ctx, idx.stats, tconfig);
    AssociationConfig aconfig;
    aconfig.weighting = AssociationWeighting::kConditional;
    const auto am =
        build_association_matrix(ctx, scan.records, sel, idx.stats.num_records, aconfig);
    for (std::size_t j = 0; j < sel.m(); ++j) {
      EXPECT_NEAR(am.weights.at(j, j), 1.0, 1e-9);
    }
  });
}

TEST(AssociationTest, LiftSubtractIsNonNegativeAndBounded) {
  const auto sources = themed_corpus(64 << 10);
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
    const auto idx = index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    const TopicSelection sel = select_topics(ctx, idx.stats, {});
    const auto am = build_association_matrix(ctx, scan.records, sel, idx.stats.num_records,
                                             {AssociationWeighting::kLiftSubtract});
    for (double v : am.weights.flat()) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  });
}

TEST(AssociationTest, MergeIsIndependentOfProcessorCount) {
  const auto sources = themed_corpus(64 << 10);
  auto reference = std::make_shared<std::vector<double>>();
  for (int nprocs : {1, 4}) {
    ga::spmd_run(nprocs, [&](ga::Context& ctx) {
      const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
      const auto idx = index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
      TopicalityConfig tconfig;
      tconfig.num_major_terms = 80;
      const TopicSelection sel = select_topics(ctx, idx.stats, tconfig);
      const auto am =
          build_association_matrix(ctx, scan.records, sel, idx.stats.num_records, {});
      if (ctx.rank() == 0) {
        if (reference->empty()) {
          reference->assign(am.weights.flat().begin(), am.weights.flat().end());
        } else {
          ASSERT_EQ(reference->size(), am.weights.flat().size());
          for (std::size_t i = 0; i < reference->size(); ++i) {
            EXPECT_NEAR((*reference)[i], am.weights.flat()[i], 1e-9);
          }
        }
      }
    });
  }
}

TEST(AssociationTest, WeightingNames) {
  EXPECT_STREQ(weighting_name(AssociationWeighting::kConditional), "conditional");
  EXPECT_STREQ(weighting_name(AssociationWeighting::kLiftSubtract), "lift-subtract");
  EXPECT_STREQ(weighting_name(AssociationWeighting::kLiftRatio), "lift-ratio");
}

// ---- signatures ------------------------------------------------------------------

class SignatureSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SignatureSweepTest, SignaturesAreL1NormalizedOrNull) {
  const int nprocs = GetParam();
  const auto sources = themed_corpus();
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
    const auto idx = index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    const TopicSelection sel = select_topics(ctx, idx.stats, {});
    const auto am = build_association_matrix(ctx, scan.records, sel, idx.stats.num_records);
    const SignatureSet sigs = compute_signatures(ctx, scan.records, sel, am);

    ASSERT_EQ(sigs.docvecs.rows(), scan.records.size());
    ASSERT_EQ(sigs.doc_ids.size(), scan.records.size());
    for (std::size_t i = 0; i < sigs.docvecs.rows(); ++i) {
      const double norm = l1_norm(sigs.docvecs.row(i));
      if (sigs.is_null[i]) {
        EXPECT_DOUBLE_EQ(norm, 0.0);
      } else {
        EXPECT_NEAR(norm, 1.0, 1e-9);
      }
    }
  });
}

TEST_P(SignatureSweepTest, GlobalNullCountAgreesWithLocalFlags) {
  const int nprocs = GetParam();
  const auto sources = themed_corpus();
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
    const auto idx = index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    const TopicSelection sel = select_topics(ctx, idx.stats, {});
    const auto am = build_association_matrix(ctx, scan.records, sel, idx.stats.num_records);
    const SignatureSet sigs = compute_signatures(ctx, scan.records, sel, am);
    std::int64_t local = 0;
    for (bool b : sigs.is_null) local += b ? 1 : 0;
    EXPECT_EQ(static_cast<std::int64_t>(sigs.global_null_count), ctx.allreduce_sum(local));
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, SignatureSweepTest, ::testing::Values(1, 2, 4));

TEST(SignatureTest, DocWithNoMajorTermsIsNull) {
  // Craft a corpus where one doc shares no vocabulary with the others.
  corpus::SourceSet s;
  auto add = [&](std::uint64_t id, const std::string& text) {
    corpus::RawDocument d;
    d.id = id;
    d.fields.push_back({"body", text});
    s.add(std::move(d));
  };
  // 20 docs sharing clumped vocabulary; 1 orphan doc.
  for (std::uint64_t i = 0; i < 20; ++i) {
    add(i, i % 2 == 0 ? "alpha beta gamma alpha beta" : "delta epsilon zeta delta");
  }
  add(20, "orphan words nobody shares");

  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, s, test_tokenizer());
    const auto idx = index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    TopicalityConfig tconfig;
    tconfig.num_major_terms = 8;
    tconfig.min_doc_frequency = 2;
    tconfig.max_df_fraction = 0.8;
    const TopicSelection sel = select_topics(ctx, idx.stats, tconfig);
    const auto am = build_association_matrix(ctx, scan.records, sel, idx.stats.num_records);
    SignatureConfig sconfig;
    const SignatureSet sigs = compute_signatures(ctx, scan.records, sel, am, sconfig);
    for (std::size_t i = 0; i < sigs.doc_ids.size(); ++i) {
      if (sigs.doc_ids[i] == 20) {
        EXPECT_TRUE(sigs.is_null[i]);
      }
    }
    EXPECT_GE(sigs.global_null_count, 1u);
  });
}

TEST(SignatureTest, AdaptiveLoopGrowsDimensionality) {
  const auto sources = themed_corpus();
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
    const auto idx = index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    TopicalityConfig tconfig;
    tconfig.num_major_terms = 20;  // deliberately too small
    SignatureConfig sconfig;
    sconfig.adaptive = true;
    sconfig.max_null_fraction = 0.0;  // force growth while nulls exist
    sconfig.max_rounds = 3;
    const auto result =
        generate_signatures(ctx, scan.records, idx.stats, tconfig, {}, sconfig);
    EXPECT_GE(result.rounds_used, 1);
    EXPECT_EQ(result.null_fraction_per_round.size(),
              static_cast<std::size_t>(result.rounds_used));
    if (result.rounds_used > 1) {
      // Null fraction must not get worse as N grows.
      EXPECT_LE(result.null_fraction_per_round.back(),
                result.null_fraction_per_round.front() + 1e-12);
    }
  });
}

TEST(SignatureTest, NonAdaptiveRunsExactlyOneRound) {
  const auto sources = themed_corpus(32 << 10);
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
    const auto idx = index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    SignatureConfig sconfig;
    sconfig.adaptive = false;
    const auto result = generate_signatures(ctx, scan.records, idx.stats, {}, {}, sconfig);
    EXPECT_EQ(result.rounds_used, 1);
  });
}

TEST(SignatureTest, SignaturesDependOnTermFrequency) {
  // Two docs with the same terms but different frequencies must differ.
  corpus::SourceSet s;
  auto add = [&](std::uint64_t id, const std::string& text) {
    corpus::RawDocument d;
    d.id = id;
    d.fields.push_back({"body", text});
    s.add(std::move(d));
  };
  for (std::uint64_t i = 0; i < 8; ++i) add(i, "alpha beta gamma");
  for (std::uint64_t i = 8; i < 16; ++i) add(i, "alpha delta epsilon");
  add(16, "alpha alpha alpha alpha beta delta");
  add(17, "alpha beta beta beta beta delta");

  ga::spmd_run(1, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, s, test_tokenizer());
    const auto idx = index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    TopicalityConfig tconfig;
    tconfig.num_major_terms = 6;
    tconfig.max_df_fraction = 1.0;
    tconfig.min_doc_frequency = 1;
    const auto sel = select_topics(ctx, idx.stats, tconfig);
    const auto am = build_association_matrix(ctx, scan.records, sel, idx.stats.num_records,
                                             {AssociationWeighting::kConditional});
    const auto sigs = compute_signatures(ctx, scan.records, sel, am);
    // Find rows of docs 16 and 17.
    std::span<const double> sig16, sig17;
    for (std::size_t i = 0; i < sigs.doc_ids.size(); ++i) {
      if (sigs.doc_ids[i] == 16) sig16 = sigs.docvecs.row(i);
      if (sigs.doc_ids[i] == 17) sig17 = sigs.docvecs.row(i);
    }
    ASSERT_FALSE(sig16.empty());
    ASSERT_FALSE(sig17.empty());
    double max_diff = 0.0;
    for (std::size_t d = 0; d < sig16.size(); ++d) {
      max_diff = std::max(max_diff, std::abs(sig16[d] - sig17[d]));
    }
    EXPECT_GT(max_diff, 1e-6);
  });
}

}  // namespace
}  // namespace sva::sig
