// Tests for corpus synthesis: determinism, structural properties, Zipf
// behaviour, and byte-balanced partitioning.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sva/corpus/document.hpp"
#include "sva/corpus/generator.hpp"
#include "sva/corpus/lexicon.hpp"
#include "sva/corpus/zipf.hpp"
#include "sva/util/rng.hpp"

namespace sva::corpus {
namespace {

CorpusSpec small_spec(CorpusKind kind, std::size_t bytes = 64 << 10) {
  CorpusSpec spec;
  spec.kind = kind;
  spec.seed = 77;
  spec.target_bytes = bytes;
  spec.core_vocabulary = 2000;
  spec.num_themes = 6;
  spec.theme_vocabulary = 100;
  return spec;
}

// ---- Lexicon ----------------------------------------------------------------

TEST(LexiconTest, WordsAreUnique) {
  std::set<std::string> seen;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const auto w = Lexicon::word(i);
    EXPECT_TRUE(seen.insert(w).second) << "duplicate word for id " << i;
  }
}

TEST(LexiconTest, WordsAreDeterministic) {
  EXPECT_EQ(Lexicon::word(12345), Lexicon::word(12345));
}

TEST(LexiconTest, WordsHaveAtLeastTwoSyllables) {
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_GE(Lexicon::word(i).size(), 4u);
}

TEST(LexiconTest, WordsAreLowercaseAlpha) {
  for (std::uint64_t i = 0; i < 5000; ++i) {
    for (char c : Lexicon::word(i)) {
      EXPECT_TRUE(c >= 'a' && c <= 'z');
    }
  }
}

TEST(LexiconTest, AuthorsLookLikeNames) {
  const auto a = Lexicon::author(42);
  EXPECT_TRUE(a[0] >= 'A' && a[0] <= 'Z');
  EXPECT_NE(a.find(' '), std::string::npos);
  EXPECT_EQ(a, Lexicon::author(42));
}

// ---- ZipfSampler -------------------------------------------------------------

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler z(100, 1.1);
  double total = 0.0;
  for (std::size_t i = 0; i < 100; ++i) total += z.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, LowerRanksMoreProbable) {
  ZipfSampler z(1000, 1.0);
  EXPECT_GT(z.pmf(0), z.pmf(1));
  EXPECT_GT(z.pmf(1), z.pmf(10));
  EXPECT_GT(z.pmf(10), z.pmf(500));
}

TEST(ZipfTest, SamplesInRange) {
  ZipfSampler z(50, 1.2);
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.sample(rng), 50u);
}

TEST(ZipfTest, EmpiricalFrequencyMatchesPmf) {
  ZipfSampler z(20, 1.0);
  Xoshiro256 rng(2);
  std::vector<int> hist(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++hist[z.sample(rng)];
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(static_cast<double>(hist[r]) / n, z.pmf(r), 0.01);
  }
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  for (std::size_t r = 0; r < 10; ++r) EXPECT_NEAR(z.pmf(r), 0.1, 1e-9);
}

TEST(ZipfTest, SingleItemAlwaysSampled) {
  ZipfSampler z(1, 2.0);
  Xoshiro256 rng(3);
  EXPECT_EQ(z.sample(rng), 0u);
}

TEST(ZipfTest, InvalidArgsThrow) {
  EXPECT_THROW(ZipfSampler(0, 1.0), InvalidArgument);
  EXPECT_THROW(ZipfSampler(10, -1.0), InvalidArgument);
}

// ---- generators ---------------------------------------------------------------

class GeneratorKindTest : public ::testing::TestWithParam<CorpusKind> {};

TEST_P(GeneratorKindTest, ReachesTargetBytes) {
  const auto spec = small_spec(GetParam());
  const SourceSet s = generate_corpus(spec);
  EXPECT_GE(s.total_bytes(), spec.target_bytes);
  // Should not drastically overshoot (one document at most).
  EXPECT_LT(s.total_bytes(), spec.target_bytes + (64 << 10));
  EXPECT_GT(s.size(), 10u);
}

TEST_P(GeneratorKindTest, IsDeterministic) {
  const auto spec = small_spec(GetParam());
  const SourceSet a = generate_corpus(spec);
  const SourceSet b = generate_corpus(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].fields.size(), b[i].fields.size());
    for (std::size_t f = 0; f < a[i].fields.size(); ++f) {
      EXPECT_EQ(a[i].fields[f].text, b[i].fields[f].text);
    }
  }
}

TEST_P(GeneratorKindTest, SeedChangesContent) {
  auto spec = small_spec(GetParam());
  const SourceSet a = generate_corpus(spec);
  spec.seed = spec.seed + 1;
  const SourceSet b = generate_corpus(spec);
  // Compare first doc's first field text.
  EXPECT_NE(a[0].fields.back().text, b[0].fields.back().text);
}

TEST_P(GeneratorKindTest, DocIdsAreSequential) {
  const auto spec = small_spec(GetParam());
  const SourceSet s = generate_corpus(spec);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s[i].id, i);
}

TEST_P(GeneratorKindTest, GroundTruthThemeIsStable) {
  const auto spec = small_spec(GetParam());
  for (std::uint64_t d = 0; d < 50; ++d) {
    const auto t = ground_truth_theme(spec, d);
    EXPECT_LT(t, spec.num_themes);
    EXPECT_EQ(t, ground_truth_theme(spec, d));
  }
}

TEST_P(GeneratorKindTest, ThemesAreDiverse) {
  const auto spec = small_spec(GetParam());
  std::set<std::size_t> seen;
  for (std::uint64_t d = 0; d < 500; ++d) seen.insert(ground_truth_theme(spec, d));
  EXPECT_GE(seen.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, GeneratorKindTest,
                         ::testing::Values(CorpusKind::kPubMedLike, CorpusKind::kTrecLike),
                         [](const auto& info) {
                           return info.param == CorpusKind::kPubMedLike ? "pubmed" : "trec";
                         });

TEST(GeneratorTest, PubmedHasExpectedFields) {
  const SourceSet s = generate_corpus(small_spec(CorpusKind::kPubMedLike));
  const auto& doc = s[0];
  ASSERT_EQ(doc.fields.size(), 5u);
  EXPECT_EQ(doc.fields[0].name, "PMID");
  EXPECT_EQ(doc.fields[1].name, "TI");
  EXPECT_EQ(doc.fields[2].name, "AB");
  EXPECT_EQ(doc.fields[3].name, "AU");
  EXPECT_EQ(doc.fields[4].name, "MH");
}

TEST(GeneratorTest, TrecHasTitleAndBody) {
  const SourceSet s = generate_corpus(small_spec(CorpusKind::kTrecLike));
  const auto& doc = s[0];
  ASSERT_EQ(doc.fields.size(), 2u);
  EXPECT_EQ(doc.fields[0].name, "title");
  EXPECT_EQ(doc.fields[1].name, "body");
}

TEST(GeneratorTest, PubmedSizesAreRegular) {
  const SourceSet s = generate_corpus(small_spec(CorpusKind::kPubMedLike, 256 << 10));
  double mean = 0.0;
  for (const auto& d : s.docs()) mean += static_cast<double>(d.bytes());
  mean /= static_cast<double>(s.size());
  double var = 0.0;
  for (const auto& d : s.docs()) {
    const double delta = static_cast<double>(d.bytes()) - mean;
    var += delta * delta;
  }
  var /= static_cast<double>(s.size());
  // Coefficient of variation is modest for abstracts.
  EXPECT_LT(std::sqrt(var) / mean, 0.35);
}

TEST(GeneratorTest, TrecSizesHaveHeavyTail) {
  auto spec = small_spec(CorpusKind::kTrecLike, 1 << 20);
  spec.giant_doc_fraction = 0.01;
  const SourceSet s = generate_corpus(spec);
  std::size_t max_bytes = 0;
  double mean = 0.0;
  for (const auto& d : s.docs()) {
    max_bytes = std::max(max_bytes, d.bytes());
    mean += static_cast<double>(d.bytes());
  }
  mean /= static_cast<double>(s.size());
  EXPECT_GT(static_cast<double>(max_bytes), 8.0 * mean);
}

TEST(GeneratorTest, PresetRatiosMatchThePaper) {
  const std::size_t s1 = 1 << 20;
  EXPECT_EQ(pubmed_like_spec(0, s1).target_bytes, s1);
  EXPECT_NEAR(static_cast<double>(pubmed_like_spec(1, s1).target_bytes) / s1, 6.67 / 2.75,
              0.01);
  EXPECT_NEAR(static_cast<double>(pubmed_like_spec(2, s1).target_bytes) / s1, 16.44 / 2.75,
              0.01);
  EXPECT_NEAR(static_cast<double>(trec_like_spec(1, s1).target_bytes) / s1, 4.0, 0.01);
  EXPECT_NEAR(static_cast<double>(trec_like_spec(2, s1).target_bytes) / s1, 8.21, 0.01);
}

TEST(GeneratorTest, PresetIndexValidation) {
  EXPECT_THROW(pubmed_like_spec(3, 1024), InvalidArgument);
  EXPECT_THROW(trec_like_spec(-1, 1024), InvalidArgument);
}

TEST(GeneratorTest, KindNames) {
  EXPECT_EQ(corpus_kind_name(CorpusKind::kPubMedLike), "pubmed-like");
  EXPECT_EQ(corpus_kind_name(CorpusKind::kTrecLike), "trec-like");
}

// ---- partition_by_bytes -------------------------------------------------------

class PartitionSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionSweepTest, CoversAllDocumentsContiguously) {
  const int nprocs = GetParam();
  const SourceSet s = generate_corpus(small_spec(CorpusKind::kTrecLike));
  const auto parts = partition_by_bytes(s, nprocs);
  ASSERT_EQ(parts.size(), static_cast<std::size_t>(nprocs));
  std::size_t expected_begin = 0;
  for (const auto& [b, e] : parts) {
    EXPECT_EQ(b, expected_begin);
    EXPECT_LE(b, e);
    expected_begin = e;
  }
  EXPECT_EQ(parts.back().second, s.size());
}

TEST_P(PartitionSweepTest, BytesAreBalanced) {
  const int nprocs = GetParam();
  const SourceSet s = generate_corpus(small_spec(CorpusKind::kPubMedLike, 512 << 10));
  const auto parts = partition_by_bytes(s, nprocs);
  const double ideal = static_cast<double>(s.total_bytes()) / nprocs;
  for (const auto& [b, e] : parts) {
    double bytes = 0.0;
    for (std::size_t d = b; d < e; ++d) bytes += static_cast<double>(s[d].bytes());
    // Within one max-document of the ideal share.
    EXPECT_NEAR(bytes, ideal, ideal * 0.5 + 4096.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, PartitionSweepTest, ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(PartitionTest, MoreRanksThanDocs) {
  SourceSet s;
  for (int i = 0; i < 3; ++i) {
    RawDocument d;
    d.id = static_cast<std::uint64_t>(i);
    d.fields.push_back({"body", "alpha beta"});
    s.add(std::move(d));
  }
  const auto parts = partition_by_bytes(s, 8);
  std::size_t total = 0;
  for (const auto& [b, e] : parts) total += e - b;
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(parts.back().second, 3u);
}

TEST(PartitionTest, InvalidNprocsThrows) {
  SourceSet s;
  EXPECT_THROW(partition_by_bytes(s, 0), InvalidArgument);
}

}  // namespace
}  // namespace sva::corpus
