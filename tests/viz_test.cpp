// Tests for the ThemeView visualization package: peak detection on known
// density fields, marching-squares contour correctness, and the raster /
// vector writers' formats.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sva/cluster/projection.hpp"
#include "sva/viz/contour.hpp"
#include "sva/viz/peaks.hpp"
#include "sva/viz/render.hpp"

namespace sva::viz {
namespace {

/// Two well-separated point clouds: the terrain must show two mountains.
cluster::ThemeViewTerrain two_bump_terrain(std::size_t per_cloud = 300) {
  std::vector<double> xy;
  xy.reserve(per_cloud * 4);
  // Deterministic low-discrepancy-ish scatter around two centers.
  for (std::size_t i = 0; i < per_cloud; ++i) {
    const double a = static_cast<double>(i) * 0.61803398875;
    const double r = 0.08 * std::fmod(a * 7.0, 1.0);
    const double t = 6.28318 * std::fmod(a, 1.0);
    xy.push_back(0.25 + r * std::cos(t));
    xy.push_back(0.30 + r * std::sin(t));
    xy.push_back(0.75 + r * std::cos(t + 1.0));
    xy.push_back(0.70 + r * std::sin(t + 1.0));
  }
  return cluster::ThemeViewTerrain::from_points(xy, 64, 1.5);
}

std::filesystem::path temp_file(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

TEST(PeakTest, TwoCloudsYieldTwoDominantPeaks) {
  const auto terrain = two_bump_terrain();
  PeakConfig config;
  config.min_height_fraction = 0.3;
  config.min_separation = 6;
  const auto peaks = find_peaks(terrain, config);
  ASSERT_GE(peaks.size(), 2u);
  // The two highest peaks must be far apart (different mountains).
  const auto dr = static_cast<double>(peaks[0].row) - static_cast<double>(peaks[1].row);
  const auto dc = static_cast<double>(peaks[0].col) - static_cast<double>(peaks[1].col);
  EXPECT_GT(std::hypot(dr, dc), 12.0);
}

TEST(PeakTest, PeaksSortedByHeight) {
  const auto peaks = find_peaks(two_bump_terrain());
  for (std::size_t i = 1; i < peaks.size(); ++i) {
    EXPECT_GE(peaks[i - 1].height, peaks[i].height);
  }
}

TEST(PeakTest, MinSeparationSuppressesRidgeNeighbours) {
  const auto terrain = two_bump_terrain();
  PeakConfig tight;
  tight.min_separation = 1;
  PeakConfig loose;
  loose.min_separation = 10;
  EXPECT_GE(find_peaks(terrain, tight).size(), find_peaks(terrain, loose).size());
}

TEST(PeakTest, MaxPeaksCapsOutput) {
  PeakConfig config;
  config.max_peaks = 1;
  config.min_height_fraction = 0.01;
  config.min_separation = 0;
  const auto peaks = find_peaks(two_bump_terrain(), config);
  EXPECT_EQ(peaks.size(), 1u);
}

TEST(PeakTest, HeightFloorFiltersNoise) {
  PeakConfig strict;
  strict.min_height_fraction = 0.99;
  const auto peaks = find_peaks(two_bump_terrain(), strict);
  for (const auto& p : peaks) {
    EXPECT_GE(p.height, 0.99 * two_bump_terrain().peak() * 0.99);
  }
}

TEST(PeakTest, EmptyTerrainYieldsNoPeaks) {
  const cluster::ThemeViewTerrain empty =
      cluster::ThemeViewTerrain::from_points({}, 16, 1.0);
  EXPECT_TRUE(find_peaks(empty).empty());
}

TEST(PeakTest, WorldCoordinatesMatchGridPosition) {
  const auto terrain = two_bump_terrain();
  for (const auto& p : find_peaks(terrain)) {
    const auto [col, row] = terrain.to_grid(p.x, p.y);
    EXPECT_NEAR(col, static_cast<double>(p.col), 0.51);
    EXPECT_NEAR(row, static_cast<double>(p.row), 0.51);
  }
}

TEST(PeakTest, LabelsComeFromNearestCentroid) {
  auto peaks = find_peaks(two_bump_terrain());
  ASSERT_GE(peaks.size(), 2u);
  // Centroids at the two cloud centers, in world coordinates.
  const std::vector<double> centroids = {0.25, 0.30, 0.75, 0.70};
  const std::vector<std::vector<std::string>> labels = {{"alpha", "beta", "gamma"},
                                                        {"delta", "epsilon"}};
  label_peaks(peaks, centroids, labels, 2);
  for (const auto& p : peaks) {
    ASSERT_GE(p.cluster, 0);
    ASSERT_LT(p.cluster, 2);
    if (p.cluster == 0) {
      EXPECT_EQ(p.label, "alpha/beta");
    }
    if (p.cluster == 1) {
      EXPECT_EQ(p.label, "delta/epsilon");
    }
  }
  // The two top peaks belong to different clusters.
  EXPECT_NE(peaks[0].cluster, peaks[1].cluster);
}

TEST(PeakTest, NoCentroidsLeavesPeaksUnlabeled) {
  auto peaks = find_peaks(two_bump_terrain());
  label_peaks(peaks, {}, {});
  for (const auto& p : peaks) EXPECT_EQ(p.cluster, -1);
}

// ---- contours ---------------------------------------------------------------

TEST(ContourTest, LevelAboveMaxYieldsNothing) {
  const auto terrain = two_bump_terrain();
  EXPECT_TRUE(extract_contours(terrain, terrain.peak() * 1.1).empty());
}

TEST(ContourTest, MidLevelProducesClosedLoopsAroundBumps) {
  const auto terrain = two_bump_terrain();
  const auto contours = extract_contours(terrain, terrain.peak() * 0.5);
  ASSERT_GE(contours.size(), 2u);
  std::size_t closed = 0;
  for (const auto& c : contours) {
    if (c.closed) ++closed;
  }
  EXPECT_GE(closed, 2u);
}

TEST(ContourTest, VerticesLieOnTheLevel) {
  // Every contour vertex, when the field is sampled bilinearly at it,
  // must be close to the iso level (vertices come from edge
  // interpolation, so exact on grid edges).
  const auto terrain = two_bump_terrain();
  const double level = terrain.peak() * 0.4;
  for (const auto& contour : extract_contours(terrain, level)) {
    for (const auto& [col, row] : contour.points) {
      const auto c0 = static_cast<std::size_t>(col);
      const auto r0 = static_cast<std::size_t>(row);
      const std::size_t c1 = std::min(c0 + 1, terrain.grid() - 1);
      const std::size_t r1 = std::min(r0 + 1, terrain.grid() - 1);
      const double fc = col - static_cast<double>(c0);
      const double fr = row - static_cast<double>(r0);
      const double v = (1 - fr) * ((1 - fc) * terrain.at(r0, c0) + fc * terrain.at(r0, c1)) +
                       fr * ((1 - fc) * terrain.at(r1, c0) + fc * terrain.at(r1, c1));
      EXPECT_NEAR(v, level, level * 0.02);
    }
  }
}

TEST(ContourTest, LevelsAreMonotoneAndWithinRange) {
  const auto terrain = two_bump_terrain();
  const auto levels = contour_levels(terrain, 6);
  ASSERT_EQ(levels.size(), 6u);
  for (std::size_t i = 1; i < levels.size(); ++i) EXPECT_GT(levels[i], levels[i - 1]);
  EXPECT_GT(levels.front(), 0.0);
  EXPECT_LT(levels.back(), terrain.peak());
}

TEST(ContourTest, SingleBandUsesMidFraction) {
  const auto terrain = two_bump_terrain();
  const auto levels = contour_levels(terrain, 1, 0.2, 0.8);
  ASSERT_EQ(levels.size(), 1u);
  EXPECT_NEAR(levels[0], terrain.peak() * 0.5, terrain.peak() * 1e-9);
}

// ---- writers ----------------------------------------------------------------

TEST(RenderTest, PgmHeaderAndDimensions) {
  const auto terrain = two_bump_terrain();
  const auto path = temp_file("sva_viz_test.pgm");
  write_pgm(terrain, path.string(), 2);
  std::ifstream in(path);
  std::string magic;
  std::size_t w = 0, h = 0, maxv = 0;
  in >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P2");
  EXPECT_EQ(w, terrain.grid() * 2);
  EXPECT_EQ(h, terrain.grid() * 2);
  EXPECT_EQ(maxv, 255u);
  // All pixel values must parse and stay within range.
  int v = 0;
  std::size_t count = 0;
  while (in >> v) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 255);
    ++count;
  }
  EXPECT_EQ(count, w * h);
  std::filesystem::remove(path);
}

TEST(RenderTest, PpmContainsPeakWhitePixel) {
  const auto terrain = two_bump_terrain();
  const auto path = temp_file("sva_viz_test.ppm");
  write_ppm(terrain, path.string(), 1);
  std::ifstream in(path);
  std::string magic;
  std::size_t w = 0, h = 0, maxv = 0;
  in >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P3");
  EXPECT_EQ(w, terrain.grid());
  int r = 0, g = 0, b = 0;
  bool snow = false;
  while (in >> r >> g >> b) {
    if (r > 230 && g > 230 && b > 230) snow = true;
  }
  EXPECT_TRUE(snow) << "the density maximum should render as the snow color";
  std::filesystem::remove(path);
}

TEST(RenderTest, SvgContainsContoursPointsAndLabels) {
  const auto terrain = two_bump_terrain();
  auto peaks = find_peaks(terrain);
  const std::vector<double> centroids = {0.25, 0.30, 0.75, 0.70};
  label_peaks(peaks, centroids, {{"metabolism"}, {"genome"}});
  std::vector<Contour> contours;
  for (double level : contour_levels(terrain, 4)) {
    for (auto& c : extract_contours(terrain, level)) contours.push_back(std::move(c));
  }
  const std::vector<double> points = {0.25, 0.30, 0.75, 0.70, 0.5, 0.5};
  const auto path = temp_file("sva_viz_test.svg");
  write_svg(terrain, contours, peaks, points, path.string());

  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string svg = ss.str();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find("metabolism"), std::string::npos);
  EXPECT_NE(svg.find("genome"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(RenderTest, AsciiWithPeaksMarksAndLegends) {
  const auto terrain = two_bump_terrain();
  auto peaks = find_peaks(terrain);
  ASSERT_GE(peaks.size(), 2u);
  peaks[0].label = "first-theme";
  const std::string art = ascii_with_peaks(terrain, peaks);
  EXPECT_NE(art.find('1'), std::string::npos);
  EXPECT_NE(art.find('2'), std::string::npos);
  EXPECT_NE(art.find("1: first-theme"), std::string::npos);
  EXPECT_NE(art.find("2: (unlabeled)"), std::string::npos);
}

TEST(RenderTest, InvalidScaleThrows) {
  const auto terrain = two_bump_terrain();
  EXPECT_THROW(write_pgm(terrain, temp_file("x.pgm").string(), 0), Error);
}

}  // namespace
}  // namespace sva::viz
