// Tests for the parallel scanner: the forward index and vocabulary must
// match the serial oracle for every processor count.
#include <gtest/gtest.h>

#include "sva/corpus/generator.hpp"
#include "sva/text/scanner.hpp"
#include "test_oracles.hpp"

namespace sva::text {
namespace {

TokenizerConfig test_tokenizer() {
  TokenizerConfig c;
  c.min_length = 2;
  c.use_stopwords = false;
  return c;
}

class ScannerSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ScannerSweepTest, VocabularyMatchesSerialOracle) {
  const int nprocs = GetParam();
  const auto sources = sva::testing::tiny_corpus();
  const auto oracle = sva::testing::serial_scan(sources, test_tokenizer());

  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const ScanResult r = scan_sources(ctx, sources, test_tokenizer());
    ASSERT_EQ(r.vocabulary->terms, oracle.vocabulary);
    EXPECT_EQ(r.field_type_names, oracle.field_type_names);
    EXPECT_EQ(r.forward.total_terms, oracle.total_terms);
    EXPECT_EQ(r.forward.num_records, sources.size());
  });
}

TEST_P(ScannerSweepTest, LocalRecordsCarryCanonicalIds) {
  const int nprocs = GetParam();
  const auto sources = sva::testing::tiny_corpus();
  const auto oracle = sva::testing::serial_scan(sources, test_tokenizer());

  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const ScanResult r = scan_sources(ctx, sources, test_tokenizer());
    for (const auto& rec : r.records) {
      const auto d = static_cast<std::size_t>(rec.doc_id);
      ASSERT_EQ(rec.fields.size(), oracle.doc_field_terms[d].size());
      for (std::size_t f = 0; f < rec.fields.size(); ++f) {
        EXPECT_EQ(rec.fields[f].terms, oracle.doc_field_terms[d][f]);
        EXPECT_EQ(rec.fields[f].type, oracle.doc_field_types[d][f]);
      }
    }
  });
}

TEST_P(ScannerSweepTest, EveryRecordScannedExactlyOnce) {
  const int nprocs = GetParam();
  const auto sources = sva::testing::tiny_corpus();
  std::vector<std::atomic<int>> seen(sources.size());
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const ScanResult r = scan_sources(ctx, sources, test_tokenizer());
    for (const auto& rec : r.records) seen[static_cast<std::size_t>(rec.doc_id)].fetch_add(1);
  });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST_P(ScannerSweepTest, ForwardIndexCsrMatchesOracle) {
  const int nprocs = GetParam();
  const auto sources = sva::testing::tiny_corpus();
  const auto oracle = sva::testing::serial_scan(sources, test_tokenizer());

  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    ScanResult r = scan_sources(ctx, sources, test_tokenizer());
    const auto offsets = r.forward.field_offsets.to_vector(ctx);
    const auto terms = r.forward.field_terms.to_vector(ctx);
    const auto records = r.forward.field_record.to_vector(ctx);
    const auto types = r.forward.field_type.to_vector(ctx);

    // Reconstruct field-by-field and compare with the oracle, walking
    // documents in order (fields are laid out doc-major because the
    // partitioning is contiguous).
    std::size_t field_gid = 0;
    for (std::size_t d = 0; d < oracle.doc_field_terms.size(); ++d) {
      for (std::size_t f = 0; f < oracle.doc_field_terms[d].size(); ++f, ++field_gid) {
        EXPECT_EQ(records[field_gid], static_cast<std::int64_t>(d));
        EXPECT_EQ(types[field_gid], oracle.doc_field_types[d][f]);
        const auto begin = static_cast<std::size_t>(offsets[field_gid]);
        const auto end = static_cast<std::size_t>(offsets[field_gid + 1]);
        const std::vector<std::int64_t> got(terms.begin() + begin, terms.begin() + end);
        EXPECT_EQ(got, oracle.doc_field_terms[d][f]) << "doc " << d << " field " << f;
      }
    }
    EXPECT_EQ(field_gid, r.forward.num_fields);
  });
}

TEST_P(ScannerSweepTest, RankFieldRangesPartitionAllFields) {
  const int nprocs = GetParam();
  const auto sources = sva::testing::tiny_corpus();
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const ScanResult r = scan_sources(ctx, sources, test_tokenizer());
    ASSERT_EQ(r.forward.rank_field_ranges.size(), static_cast<std::size_t>(nprocs));
    std::size_t expected = 0;
    for (const auto& [b, e] : r.forward.rank_field_ranges) {
      EXPECT_EQ(b, expected);
      expected = e;
    }
    EXPECT_EQ(expected, r.forward.num_fields);
  });
}

TEST_P(ScannerSweepTest, SyntheticCorpusStatsAreConsistent) {
  const int nprocs = GetParam();
  corpus::CorpusSpec spec;
  spec.target_bytes = 96 << 10;
  spec.core_vocabulary = 1500;
  spec.num_themes = 4;
  spec.theme_vocabulary = 80;
  const auto sources = corpus::generate_corpus(spec);

  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const ScanResult r = scan_sources(ctx, sources, test_tokenizer());
    const auto local_tokens = static_cast<std::int64_t>(r.stats.tokens.emitted);
    const auto global_tokens = ctx.allreduce_sum(local_tokens);
    EXPECT_EQ(static_cast<std::uint64_t>(global_tokens), r.forward.total_terms);

    const auto local_bytes = static_cast<std::int64_t>(r.stats.bytes_scanned);
    EXPECT_EQ(static_cast<std::size_t>(ctx.allreduce_sum(local_bytes)),
              sources.total_bytes());
    EXPECT_GT(r.vocabulary->size(), 100u);
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, ScannerSweepTest, ::testing::Values(1, 2, 3, 4, 8));

TEST(ScannerTest, EmptyFieldsCounted) {
  corpus::SourceSet s;
  corpus::RawDocument d;
  d.id = 0;
  d.fields.push_back({"TI", "real tokens here"});
  d.fields.push_back({"AB", "..."});  // tokenizes to nothing
  s.add(std::move(d));

  ga::spmd_run(2, [&](ga::Context& ctx) {
    const ScanResult r = scan_sources(ctx, s, test_tokenizer());
    const auto empties = ctx.allreduce_sum(static_cast<std::int64_t>(r.stats.empty_fields));
    EXPECT_EQ(empties, 1);
  });
}

TEST(ScannerTest, StopwordConfigPropagates) {
  corpus::SourceSet s;
  corpus::RawDocument d;
  d.id = 0;
  d.fields.push_back({"body", "the parallel engine and the index"});
  s.add(std::move(d));

  TokenizerConfig with_stop;
  with_stop.use_stopwords = true;
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const ScanResult r = scan_sources(ctx, s, with_stop);
    EXPECT_EQ(r.vocabulary->id_of("the"), -1);
    EXPECT_GE(r.vocabulary->id_of("parallel"), 0);
  });
}

TEST(ScannerTest, VocabularyIdsAreLexicographic) {
  const auto sources = sva::testing::tiny_corpus();
  ga::spmd_run(3, [&](ga::Context& ctx) {
    const ScanResult r = scan_sources(ctx, sources, test_tokenizer());
    for (std::size_t i = 1; i < r.vocabulary->terms.size(); ++i) {
      EXPECT_LT(r.vocabulary->terms[i - 1], r.vocabulary->terms[i]);
    }
    for (std::size_t i = 0; i < r.vocabulary->terms.size(); ++i) {
      EXPECT_EQ(r.vocabulary->id_of(r.vocabulary->terms[i]), static_cast<std::int64_t>(i));
    }
  });
}

TEST(ScannerTest, SingleDocumentSingleRank) {
  corpus::SourceSet s;
  corpus::RawDocument d;
  d.id = 0;
  d.fields.push_back({"body", "unique tokens only once"});
  s.add(std::move(d));
  ga::spmd_run(1, [&](ga::Context& ctx) {
    const ScanResult r = scan_sources(ctx, s, test_tokenizer());
    EXPECT_EQ(r.vocabulary->size(), 4u);
    EXPECT_EQ(r.forward.total_terms, 4u);
    EXPECT_EQ(r.records.size(), 1u);
  });
}

}  // namespace
}  // namespace sva::text
