// Failure injection and adversarial inputs for the full engine: the
// degenerate corpora a production deployment will eventually meet must
// produce defined behavior (a result or a clean error), never a hang or
// a crash — in SPMD code the extra risk is one rank erroring while the
// others wait at a collective, which the runtime must turn into a clean
// rethrow.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sva/engine/pipeline.hpp"

namespace sva::engine {
namespace {

corpus::SourceSet docs_from(const std::vector<std::string>& bodies) {
  corpus::SourceSet s;
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    corpus::RawDocument d;
    d.id = i;
    d.fields.push_back({"body", bodies[i]});
    s.add(std::move(d));
  }
  return s;
}

EngineConfig tiny_config() {
  EngineConfig config;
  config.topicality.num_major_terms = 16;
  config.topicality.min_doc_frequency = 1;
  config.topicality.max_df_fraction = 1.0;
  config.kmeans.k = 2;
  config.tokenizer.use_stopwords = false;
  return config;
}

class EdgeProcsTest : public ::testing::TestWithParam<int> {};

TEST_P(EdgeProcsTest, SingleDocumentCorpus) {
  const auto sources = docs_from({"lonely document with several distinct words"});
  ga::spmd_run(GetParam(), [&](ga::Context& ctx) {
    const EngineResult r = run_text_engine(ctx, sources, tiny_config());
    EXPECT_EQ(r.num_records, 1u);
    if (ctx.rank() == 0) {
      EXPECT_EQ(r.projection.all_doc_ids.size(), 1u);
    }
  });
}

TEST_P(EdgeProcsTest, IdenticalDocuments) {
  // Zero variance anywhere: PCA of identical signatures must not blow up.
  const auto sources =
      docs_from(std::vector<std::string>(12, "identical tokens everywhere always"));
  ga::spmd_run(GetParam(), [&](ga::Context& ctx) {
    const EngineResult r = run_text_engine(ctx, sources, tiny_config());
    EXPECT_EQ(r.num_records, 12u);
  });
}

TEST_P(EdgeProcsTest, SingleTermCorpus) {
  const auto sources = docs_from({"word", "word word", "word word word", "word"});
  ga::spmd_run(GetParam(), [&](ga::Context& ctx) {
    const EngineResult r = run_text_engine(ctx, sources, tiny_config());
    EXPECT_EQ(r.num_terms, 1u);
    EXPECT_GE(r.selection.n(), 1u);
  });
}

TEST_P(EdgeProcsTest, EmptyAndWhitespaceDocumentsSurvive) {
  const auto sources = docs_from({"", "   \t\n  ", "actual content here once",
                                  "more actual content again twice", ""});
  ga::spmd_run(GetParam(), [&](ga::Context& ctx) {
    const EngineResult r = run_text_engine(ctx, sources, tiny_config());
    EXPECT_EQ(r.num_records, 5u);
    if (ctx.rank() == 0) {
      // Every record gets coordinates, even token-free ones (null
      // signatures land at the origin of the projection).
      EXPECT_EQ(r.projection.all_doc_ids.size(), 5u);
    }
  });
}

TEST_P(EdgeProcsTest, GiantDocumentAmongTiny) {
  // The byte-balanced partitioner gives the giant to one rank; dynamic
  // indexing must still terminate and count every posting exactly once.
  std::string giant;
  for (int i = 0; i < 20000; ++i) {
    giant += "gwork" + std::to_string(i % 300) + " ";
  }
  std::vector<std::string> bodies = {giant};
  for (int i = 0; i < 40; ++i) bodies.push_back("small doc body number " + std::to_string(i));
  const auto sources = docs_from(bodies);
  ga::spmd_run(GetParam(), [&](ga::Context& ctx) {
    const EngineResult r = run_text_engine(ctx, sources, tiny_config());
    EXPECT_EQ(r.num_records, 41u);
  });
}

TEST_P(EdgeProcsTest, MoreRanksThanDocuments) {
  const auto sources = docs_from({"alpha beta gamma", "delta epsilon zeta"});
  ga::spmd_run(GetParam(), [&](ga::Context& ctx) {
    const EngineResult r = run_text_engine(ctx, sources, tiny_config());
    EXPECT_EQ(r.num_records, 2u);
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, EdgeProcsTest, ::testing::Values(1, 2, 4, 8));

TEST(EngineEdgeTest, EmptyCorpusThrowsCleanly) {
  const corpus::SourceSet empty;
  EXPECT_THROW(ga::spmd_run(2,
                            [&](ga::Context& ctx) {
                              (void)run_text_engine(ctx, empty, tiny_config());
                            }),
               Error);
}

TEST(EngineEdgeTest, AllStopwordCorpusThrowsCleanly) {
  // Every token filtered: the vocabulary is empty, which the engine must
  // report as an error on every rank (not deadlock).
  auto config = tiny_config();
  config.tokenizer.use_stopwords = true;
  const auto sources = docs_from({"the and of to", "a an is are the", "of of the and"});
  EXPECT_THROW(ga::spmd_run(3,
                            [&](ga::Context& ctx) {
                              (void)run_text_engine(ctx, sources, config);
                            }),
               Error);
}

TEST(EngineEdgeTest, StemmingChangesVocabularyNotStability) {
  // Same corpus with and without stemming: stemming must shrink the
  // vocabulary while the pipeline still runs to completion with
  // P-invariant record counts.
  const auto sources = docs_from({
      "connected connections connecting connects",
      "clustering clustered clusters cluster",
      "projection projections projected projecting",
      "analytics analytic analysis",
      "document documents documented documenting",
      "scaling scaled scales scale",
  });
  auto plain = tiny_config();
  auto stemmed = tiny_config();
  stemmed.tokenizer.stem = true;

  auto vocab_plain = std::make_shared<std::uint64_t>(0);
  auto vocab_stemmed = std::make_shared<std::uint64_t>(0);
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto r = run_text_engine(ctx, sources, plain);
    if (ctx.rank() == 0) *vocab_plain = r.num_terms;
  });
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto r = run_text_engine(ctx, sources, stemmed);
    if (ctx.rank() == 0) *vocab_stemmed = r.num_terms;
  });
  EXPECT_LT(*vocab_stemmed, *vocab_plain);
  EXPECT_LE(*vocab_stemmed, 8u);  // one stem per family (plus slack)
}

TEST(EngineEdgeTest, HierarchicalBackendRunsEndToEnd) {
  const auto sources = docs_from({
      "red crimson scarlet ruby", "red crimson ruby wine", "scarlet red wine crimson",
      "blue azure navy cobalt", "azure blue cobalt sky", "navy blue sky azure",
  });
  auto config = tiny_config();
  config.clustering = ClusteringBackend::kHierarchical;
  config.hierarchical.k = 2;
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const EngineResult r = run_text_engine(ctx, sources, config);
    EXPECT_EQ(r.clustering.centroids.rows(), 2u);
    EXPECT_EQ(r.theme_labels.size(), 2u);
  });
}

}  // namespace
}  // namespace sva::engine
