// Tests for the distributed hashmap / global vocabulary map.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "sva/ga/dist_hashmap.hpp"

namespace sva::ga {
namespace {

std::vector<std::string> make_terms(int count, int salt = 0) {
  std::vector<std::string> terms;
  terms.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    terms.push_back("term" + std::to_string(salt) + "_" + std::to_string(i));
  }
  return terms;
}

class HashmapSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(HashmapSweepTest, InsertAssignsStableIds) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    auto map = DistHashmap::create(ctx);
    const auto id1 = map.insert_or_get(ctx, "hello");
    const auto id2 = map.insert_or_get(ctx, "hello");
    EXPECT_EQ(id1, id2);
    ctx.barrier();
    // Every rank resolved the same id for the same term.
    const auto ids = ctx.allgather(id1);
    for (auto v : ids) EXPECT_EQ(v, ids[0]);
  });
}

TEST_P(HashmapSweepTest, DistinctTermsGetDistinctIds) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    auto map = DistHashmap::create(ctx);
    // All ranks insert an overlapping but shuffled set.
    const auto terms = make_terms(200);
    std::vector<std::int64_t> ids;
    for (std::size_t i = 0; i < terms.size(); ++i) {
      const std::size_t j = (i * 37 + static_cast<std::size_t>(ctx.rank()) * 11) % terms.size();
      ids.push_back(map.insert_or_get(ctx, terms[j]));
    }
    ctx.barrier();
    EXPECT_EQ(map.size_estimate(), terms.size());
    // Lookup agrees and ids are unique per term.
    std::set<std::int64_t> unique;
    for (const auto& t : terms) {
      const auto found = map.find(ctx, t);
      ASSERT_TRUE(found.has_value());
      unique.insert(*found);
    }
    EXPECT_EQ(unique.size(), terms.size());
  });
}

TEST_P(HashmapSweepTest, BatchMatchesScalarInsert) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    auto map = DistHashmap::create(ctx);
    const auto terms = make_terms(64, ctx.rank());
    const auto batch_ids = map.insert_batch(ctx, terms);
    ASSERT_EQ(batch_ids.size(), terms.size());
    for (std::size_t i = 0; i < terms.size(); ++i) {
      EXPECT_EQ(map.insert_or_get(ctx, terms[i]), batch_ids[i]);
    }
  });
}

TEST_P(HashmapSweepTest, FindMissingReturnsNullopt) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    auto map = DistHashmap::create(ctx);
    EXPECT_FALSE(map.find(ctx, "never-inserted").has_value());
  });
}

TEST_P(HashmapSweepTest, FinalizeSortsVocabulary) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    auto map = DistHashmap::create(ctx);
    const std::vector<std::string> terms = {"pear", "apple", "zebra", "mango", "fig"};
    // Insert in rank-dependent order to scramble provisional ids.
    for (std::size_t i = 0; i < terms.size(); ++i) {
      (void)map.insert_or_get(ctx, terms[(i + static_cast<std::size_t>(ctx.rank())) %
                                         terms.size()]);
    }
    ctx.barrier();
    const auto fin = map.finalize(ctx);
    ASSERT_EQ(fin.vocabulary->size(), terms.size());
    EXPECT_EQ(fin.vocabulary->terms.front(), "apple");
    EXPECT_EQ(fin.vocabulary->terms.back(), "zebra");
    EXPECT_TRUE(std::is_sorted(fin.vocabulary->terms.begin(), fin.vocabulary->terms.end()));
  });
}

TEST_P(HashmapSweepTest, RemapTranslatesProvisionalToCanonical) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    auto map = DistHashmap::create(ctx);
    const auto terms = make_terms(100, 3);
    const auto provisional = map.insert_batch(ctx, terms);
    ctx.barrier();
    const auto fin = map.finalize(ctx);
    for (std::size_t i = 0; i < terms.size(); ++i) {
      const auto canonical = fin.remap_id(provisional[i]);
      ASSERT_GE(canonical, 0);
      EXPECT_EQ(fin.vocabulary->terms[static_cast<std::size_t>(canonical)], terms[i]);
      EXPECT_EQ(fin.vocabulary->id_of(terms[i]), canonical);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, HashmapSweepTest, ::testing::Values(1, 2, 3, 4, 8));

TEST(HashmapTest, CanonicalIdsIndependentOfProcessorCount) {
  // The central reproducibility property: same term set -> same canonical
  // vocabulary for any P.
  const auto terms = make_terms(150, 9);
  std::vector<std::vector<std::string>> vocabularies;
  for (int nprocs : {1, 2, 4}) {
    auto out = std::make_shared<std::vector<std::string>>();
    spmd_run(nprocs, [&](Context& ctx) {
      auto map = DistHashmap::create(ctx);
      // Spread insertion across ranks.
      std::vector<std::string> mine;
      for (std::size_t i = static_cast<std::size_t>(ctx.rank()); i < terms.size();
           i += static_cast<std::size_t>(ctx.nprocs())) {
        mine.push_back(terms[i]);
      }
      (void)map.insert_batch(ctx, mine);
      ctx.barrier();
      const auto fin = map.finalize(ctx);
      if (ctx.rank() == 0) *out = fin.vocabulary->terms;
    });
    vocabularies.push_back(*out);
  }
  EXPECT_EQ(vocabularies[0], vocabularies[1]);
  EXPECT_EQ(vocabularies[0], vocabularies[2]);
}

TEST(HashmapTest, AdversarialSamePartitionKeys) {
  // Keys engineered to hash to few partitions must still work (collision
  // storm on one partition's lock).
  spmd_run(4, [](Context& ctx) {
    auto map = DistHashmap::create(ctx);
    std::vector<std::string> keys;
    for (int i = 0; i < 500; ++i) keys.push_back("collide_" + std::to_string(i % 17));
    const auto ids = map.insert_batch(ctx, keys);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(ids[i], ids[i % 17]);
    }
    ctx.barrier();
    EXPECT_EQ(map.size_estimate(), 17u);
  });
}

TEST(HashmapTest, EmptyMapFinalizes) {
  spmd_run(3, [](Context& ctx) {
    auto map = DistHashmap::create(ctx);
    ctx.barrier();
    const auto fin = map.finalize(ctx);
    EXPECT_EQ(fin.vocabulary->size(), 0u);
    EXPECT_EQ(fin.vocabulary->id_of("anything"), -1);
  });
}

TEST(HashmapTest, EmptyStringIsAValidKey) {
  spmd_run(2, [](Context& ctx) {
    auto map = DistHashmap::create(ctx);
    const auto id = map.insert_or_get(ctx, "");
    EXPECT_GE(id, 0);
    EXPECT_EQ(map.find(ctx, "").value(), id);
  });
}

TEST(HashmapTest, OwnerIsStable) {
  spmd_run(4, [](Context& ctx) {
    auto map = DistHashmap::create(ctx);
    const int o1 = map.owner_of("stable-key");
    const int o2 = map.owner_of("stable-key");
    EXPECT_EQ(o1, o2);
    EXPECT_GE(o1, 0);
    EXPECT_LT(o1, 4);
  });
}

}  // namespace
}  // namespace sva::ga
