// Tests for the Scan & Map tokenizer.
#include <gtest/gtest.h>

#include "sva/text/tokenizer.hpp"

namespace sva::text {
namespace {

TokenizerConfig plain_config() {
  TokenizerConfig c;
  c.min_length = 1;
  c.use_stopwords = false;
  c.drop_numeric = false;
  return c;
}

TEST(TokenizerTest, SplitsOnWhitespace) {
  Tokenizer t(plain_config());
  const auto tokens = t.tokenize("alpha beta\tgamma\ndelta");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "alpha");
  EXPECT_EQ(tokens[3], "delta");
}

TEST(TokenizerTest, SplitsOnPunctuation) {
  Tokenizer t(plain_config());
  const auto tokens = t.tokenize("alpha,beta;gamma.delta(eps)");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[4], "eps");
}

TEST(TokenizerTest, CustomDelimiters) {
  TokenizerConfig c = plain_config();
  c.delimiters = "|";
  Tokenizer t(c);
  const auto tokens = t.tokenize("a b|c d");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "a b");
  EXPECT_EQ(tokens[1], "c d");
}

TEST(TokenizerTest, LowercasesByDefault) {
  Tokenizer t(plain_config());
  const auto tokens = t.tokenize("AlPhA BETA");
  EXPECT_EQ(tokens[0], "alpha");
  EXPECT_EQ(tokens[1], "beta");
}

TEST(TokenizerTest, LowercaseCanBeDisabled) {
  TokenizerConfig c = plain_config();
  c.lowercase = false;
  Tokenizer t(c);
  EXPECT_EQ(t.tokenize("MixedCase")[0], "MixedCase");
}

TEST(TokenizerTest, MinLengthFilter) {
  TokenizerConfig c = plain_config();
  c.min_length = 3;
  Tokenizer t(c);
  TokenStats stats;
  const auto tokens = t.tokenize("a ab abc abcd", &stats);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(stats.dropped_short, 2u);
  EXPECT_EQ(stats.emitted, 2u);
}

TEST(TokenizerTest, MaxLengthFilter) {
  TokenizerConfig c = plain_config();
  c.max_length = 4;
  Tokenizer t(c);
  TokenStats stats;
  const auto tokens = t.tokenize("ab abcde", &stats);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(stats.dropped_long, 1u);
}

TEST(TokenizerTest, NumericFilter) {
  TokenizerConfig c = plain_config();
  c.drop_numeric = true;
  Tokenizer t(c);
  TokenStats stats;
  const auto tokens = t.tokenize("123 x9 42 alpha", &stats);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(stats.dropped_numeric, 2u);
  EXPECT_EQ(tokens[0], "x9");
}

TEST(TokenizerTest, StopwordsDropped) {
  TokenizerConfig c;
  c.min_length = 1;
  c.use_stopwords = true;
  Tokenizer t(c);
  TokenStats stats;
  const auto tokens = t.tokenize("the cat and the hat", &stats);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "cat");
  EXPECT_EQ(tokens[1], "hat");
  EXPECT_EQ(stats.dropped_stopword, 3u);
}

TEST(TokenizerTest, ExtraStopwordsMerge) {
  TokenizerConfig c;
  c.min_length = 1;
  c.use_stopwords = true;
  c.extra_stopwords = {"CAT"};  // case-normalized
  Tokenizer t(c);
  const auto tokens = t.tokenize("the cat sat");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "sat");
}

TEST(TokenizerTest, StopwordsDisabledKeepsEverything) {
  Tokenizer t(plain_config());
  EXPECT_EQ(t.tokenize("the cat and the hat").size(), 5u);
}

TEST(TokenizerTest, EmptyInput) {
  Tokenizer t(plain_config());
  EXPECT_TRUE(t.tokenize("").empty());
}

TEST(TokenizerTest, OnlyDelimiters) {
  Tokenizer t(plain_config());
  EXPECT_TRUE(t.tokenize("  ,,; .. ").empty());
}

TEST(TokenizerTest, TrailingTokenEmitted) {
  Tokenizer t(plain_config());
  const auto tokens = t.tokenize("alpha beta");
  EXPECT_EQ(tokens.back(), "beta");
}

TEST(TokenizerTest, TokenizeIntoAppends) {
  Tokenizer t(plain_config());
  std::vector<std::string> out = {"pre"};
  t.tokenize_into("alpha", out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "pre");
  EXPECT_EQ(out[1], "alpha");
}

TEST(TokenizerTest, StatsAccumulateAcrossCalls) {
  Tokenizer t(plain_config());
  TokenStats stats;
  (void)t.tokenize("a b", &stats);
  (void)t.tokenize("c d e", &stats);
  EXPECT_EQ(stats.emitted, 5u);
}

TEST(TokenizerTest, HighBitBytesAreTokenChars) {
  // Non-ASCII bytes must not crash and are treated as token characters.
  Tokenizer t(plain_config());
  const std::string input = "caf\xC3\xA9 bar";
  const auto tokens = t.tokenize(input);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1], "bar");
}

TEST(TokenizerTest, BuiltinStopwordListIsLowercaseAndNonEmpty) {
  const auto& sw = Tokenizer::builtin_stopwords();
  EXPECT_GT(sw.size(), 20u);
  for (const auto& w : sw) {
    for (char c : w) EXPECT_TRUE(c >= 'a' && c <= 'z');
  }
}

TEST(TokenizerTest, DefaultConfigDropsShortTokens) {
  Tokenizer t;  // defaults: min_length = 2
  const auto tokens = t.tokenize("x yz");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "yz");
}

TEST(TokenStatsTest, PlusEqualsAggregates) {
  TokenStats a, b;
  a.emitted = 1;
  a.dropped_short = 2;
  b.emitted = 10;
  b.dropped_stopword = 5;
  a += b;
  EXPECT_EQ(a.emitted, 11u);
  EXPECT_EQ(a.dropped_short, 2u);
  EXPECT_EQ(a.dropped_stopword, 5u);
}

}  // namespace
}  // namespace sva::text
