// Tests for the fault-injection substrate (fault/): spec grammar
// rejection, the hit/every/prob triggers and their determinism, count
// caps, rank scoping, the delay and short-read actions, environment
// arming, and the SectionedFile integration (an injected format/torn
// read surfaces as the same FormatError a real corruption would).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "sva/engine/section_file.hpp"
#include "sva/fault/fault.hpp"
#include "sva/util/error.hpp"

namespace sva::fault {
namespace {

/// The substrate is process-global; every test starts and ends disarmed.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
};

TEST_F(FaultTest, MalformedSpecsAreRejectedWithInvalidArgument) {
  const char* bad[] = {
      "no-action-here",                    // missing :action
      ":error",                            // empty site
      "site:explode",                      // unknown action
      "site:error:hit=0",                  // hit is 1-based
      "site:error:every=0",                // every is 1-based
      "site:error:hit=1,every=2",          // two triggers
      "site:error:prob=1.5",               // out of [0, 1]
      "site:error:prob=abc",               // not a number
      "site:error:frequency=2",            // unknown option
      "site:delay:ms=soon",                // not an integer
      "site:error:hit",                    // option is not key=value
  };
  for (const char* spec : bad) {
    EXPECT_THROW(configure(spec), InvalidArgument) << spec;
    EXPECT_FALSE(armed()) << spec;  // a rejected spec must not half-arm
  }
}

TEST_F(FaultTest, DisarmedPointIsANoOp) {
  EXPECT_FALSE(armed());
  EXPECT_EQ(point("t.anything"), Hint::kNone);
  EXPECT_EQ(hits("t.anything"), 0u);
  EXPECT_TRUE(sites_seen().empty());
}

TEST_F(FaultTest, HitFiresOnExactlyTheNthTraversal) {
  configure("t.site:error:hit=3");
  EXPECT_EQ(point("t.site"), Hint::kNone);
  EXPECT_EQ(point("t.site"), Hint::kNone);
  try {
    point("t.site");
    FAIL() << "third traversal did not fire";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("t.site"), std::string::npos) << e.what();
  }
  // hit= implies count=1: the rule is spent.
  EXPECT_EQ(point("t.site"), Hint::kNone);
  EXPECT_EQ(hits("t.site"), 4u);
  EXPECT_EQ(fired("t.site"), 1u);
}

TEST_F(FaultTest, EveryFiresPeriodicallyUpToTheCountCap) {
  configure("t.site:error:every=2,count=2");
  std::vector<int> fired_at;
  for (int i = 1; i <= 8; ++i) {
    try {
      point("t.site");
    } catch (const Error&) {
      fired_at.push_back(i);
    }
  }
  EXPECT_EQ(fired_at, (std::vector<int>{2, 4}));
  EXPECT_EQ(fired("t.site"), 2u);
}

TEST_F(FaultTest, UnarmedSiteTraversalsAreStillCounted) {
  configure("t.other:error:hit=1");
  EXPECT_EQ(point("t.quiet"), Hint::kNone);
  EXPECT_EQ(hits("t.quiet"), 1u);
  const auto seen = sites_seen();
  EXPECT_EQ(seen, (std::vector<std::string>{"t.quiet"}));
}

std::vector<int> prob_fire_pattern(const std::string& spec, int traversals) {
  configure(spec);
  std::vector<int> pattern;
  for (int i = 1; i <= traversals; ++i) {
    try {
      point("t.prob");
    } catch (const Error&) {
      pattern.push_back(i);
    }
  }
  return pattern;
}

TEST_F(FaultTest, ProbabilityTriggerIsDeterministicPerSeed) {
  const auto first = prob_fire_pattern("t.prob:error:prob=0.3,seed=7,count=1000", 200);
  const auto again = prob_fire_pattern("t.prob:error:prob=0.3,seed=7,count=1000", 200);
  EXPECT_EQ(first, again);  // same spec, same traversals, same firings
  EXPECT_FALSE(first.empty());
  EXPECT_LT(first.size(), 200u);  // actually probabilistic, not always-on

  const auto reseeded = prob_fire_pattern("t.prob:error:prob=0.3,seed=8,count=1000", 200);
  EXPECT_NE(first, reseeded);  // the seed is load-bearing
}

TEST_F(FaultTest, RankFilterScopesARuleToOneRank) {
  configure("t.site:error:rank=2");
  // This thread has no published rank: the rule never matches.
  EXPECT_EQ(point("t.site"), Hint::kNone);
  set_thread_rank(2);
  EXPECT_EQ(thread_rank(), 2);
  EXPECT_THROW(point("t.site"), Error);
  set_thread_rank(1);
  EXPECT_EQ(point("t.site"), Hint::kNone);
  set_thread_rank(-1);
}

TEST_F(FaultTest, DelayActionSleepsThenContinues) {
  configure("t.site:delay:ms=50,hit=1");
  const auto before = std::chrono::steady_clock::now();
  EXPECT_EQ(point("t.site"), Hint::kNone);
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_GE(elapsed, std::chrono::milliseconds(45));
  EXPECT_EQ(fired("t.site"), 1u);
}

TEST_F(FaultTest, ShortActionReturnsTheHintInsteadOfThrowing) {
  configure("t.site:short:hit=2");
  EXPECT_EQ(point("t.site"), Hint::kNone);
  EXPECT_EQ(point("t.site"), Hint::kShortRead);
  EXPECT_EQ(point("t.site"), Hint::kNone);
}

TEST_F(FaultTest, FormatActionThrowsFormatError) {
  configure("t.site:format:hit=1");
  EXPECT_THROW(point("t.site"), FormatError);
}

TEST_F(FaultTest, ConfigureFromEnvArmsAndDisarms) {
  ASSERT_EQ(::setenv("SVA_FAULT", "t.env:error:hit=1", 1), 0);
  configure_from_env();
  EXPECT_TRUE(armed());
  EXPECT_THROW(point("t.env"), Error);
  ASSERT_EQ(::unsetenv("SVA_FAULT"), 0);
  configure_from_env();
  EXPECT_FALSE(armed());
}

TEST_F(FaultTest, ConfigureReplacesRulesAndResetsCounters) {
  configure("t.site:error:hit=1");
  EXPECT_THROW(point("t.site"), Error);
  configure("t.site:error:hit=1");  // fresh counters: fires again
  EXPECT_THROW(point("t.site"), Error);
  reset();
  EXPECT_EQ(point("t.site"), Hint::kNone);
  EXPECT_EQ(hits("t.site"), 0u);  // reset forgets history
}

// ---- SectionedFile integration -----------------------------------------

constexpr char kMagic[8] = {'T', 'E', 'S', 'T', 'F', 'L', 'T', '1'};
constexpr std::uint64_t kVersion = 1;

std::filesystem::path write_test_file(const std::string& name) {
  const auto path = std::filesystem::path(::testing::TempDir()) /
                    ("sva_fault_" + name + "_" + std::to_string(::getpid()) + ".bin");
  std::filesystem::remove(path);
  engine::SectionedFile f;
  f.tag = 1;
  f.add("payload", std::vector<std::uint8_t>(512, 0xAB));
  f.write(path, kMagic, kVersion);
  return path;
}

TEST_F(FaultTest, InjectedFormatFaultSurfacesThroughSectionedFileRead) {
  const auto path = write_test_file("format");
  configure(std::string(sites::kSectionFileRead) + ":format:hit=1");
  try {
    (void)engine::SectionedFile::read(path, kMagic, kVersion, "test");
    FAIL() << "injected format fault did not surface";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("fault injected"), std::string::npos);
  }
  // The rule is spent: the same file now reads clean.
  const auto loaded = engine::SectionedFile::read(path, kMagic, kVersion, "test");
  EXPECT_EQ(loaded.tag, 1u);
}

TEST_F(FaultTest, InjectedShortReadIsRejectedLikeRealTruncation) {
  const auto path = write_test_file("short");
  configure(std::string(sites::kSectionFileRead) + ":short:hit=1");
  // The torn image must be caught by the same validation that rejects a
  // genuinely truncated file — FormatError, never silently-decoded junk.
  EXPECT_THROW((void)engine::SectionedFile::read(path, kMagic, kVersion, "test"),
               FormatError);
  const auto loaded = engine::SectionedFile::read(path, kMagic, kVersion, "test");
  EXPECT_EQ(loaded.tag, 1u);
}

TEST_F(FaultTest, InjectedWriteFaultLeavesNoArtifactBehind) {
  const auto path = std::filesystem::path(::testing::TempDir()) /
                    ("sva_fault_wr_" + std::to_string(::getpid()) + ".bin");
  std::filesystem::remove(path);
  configure(std::string(sites::kSectionFileWrite) + ":error:hit=1");
  engine::SectionedFile f;
  f.add("payload", std::vector<std::uint8_t>(64, 1));
  EXPECT_THROW(f.write(path, kMagic, kVersion), Error);
  EXPECT_FALSE(std::filesystem::exists(path));  // nothing half-published
  f.write(path, kMagic, kVersion);  // rule spent: publish succeeds
  EXPECT_TRUE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace sva::fault
