// Robustness tests for the serving daemon under injected faults: a
// SIGKILLed process-backend rank mid-batch fails in-flight futures with
// WorldFailure (never a hang), the supervisor respawns a fresh world
// over the last-good bundle and post-respawn answers are byte-identical
// to the never-failed path; thread-backend worlds recover the same way;
// a daemon whose bundle vanishes gives up after bounded respawn
// attempts; reload faults fail the request while the old session keeps
// serving; queued queries expire at the admission deadline; the client
// helper retries idempotent batches across a respawn; and both ingress
// transports degrade per-request (socket) or per-file (spool, including
// the stale-claim sweep) instead of dying.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "backend_testutil.hpp"
#include "sva/cluster/kmeans.hpp"
#include "sva/cluster/pca.hpp"
#include "sva/cluster/projection.hpp"
#include "sva/engine/bundle.hpp"
#include "sva/engine/engine.hpp"
#include "sva/fault/fault.hpp"
#include "sva/serve/ingress.hpp"
#include "sva/serve/protocol.hpp"
#include "sva/serve/scheduler.hpp"
#include "sva/serve/server.hpp"

namespace sva::serve {
namespace {

// ---- fixture: the same small exported bundle serve_test uses -----------

sig::SignatureSet make_signatures(ga::Context& ctx, std::size_t n, std::size_t dim) {
  const auto nprocs = static_cast<std::size_t>(ctx.nprocs());
  const std::size_t per = (n + nprocs - 1) / nprocs;
  const std::size_t begin = std::min(n, static_cast<std::size_t>(ctx.rank()) * per);
  const std::size_t end = std::min(n, begin + per);

  sig::SignatureSet s;
  s.dimension = dim;
  s.docvecs = Matrix(end - begin, dim);
  for (std::size_t g = begin; g < end; ++g) {
    const std::size_t i = g - begin;
    const std::size_t group = g % 3;
    for (std::size_t d = 0; d < dim; ++d) {
      const double base = (d % 3 == group) ? 1.0 : 0.05;
      s.docvecs.at(i, d) = base + 0.01 * static_cast<double>((g * 7 + d * 13) % 10);
    }
    s.doc_ids.push_back(static_cast<std::uint64_t>(g));
    s.is_null.push_back(false);
  }
  return s;
}

engine::EngineResult make_result(ga::Context& ctx, std::size_t n, std::size_t dim,
                                 std::size_t k) {
  engine::EngineResult r;
  r.signatures = make_signatures(ctx, n, dim);
  r.dimension = dim;
  r.num_records = n;

  cluster::KMeansConfig config;
  config.k = k;
  r.clustering = cluster::kmeans_cluster(ctx, r.signatures.docvecs, config);

  const auto pca = cluster::pca_fit(r.clustering.centroids, 2);
  r.projection =
      cluster::project_documents(ctx, r.signatures.docvecs, r.signatures.doc_ids, pca);

  auto vocab = std::make_shared<ga::Vocabulary>();
  for (std::size_t d = 0; d < dim; ++d) {
    vocab->terms.push_back("term" + std::to_string(d));
    r.selection.topic_terms.push_back(static_cast<std::int64_t>(d));
  }
  r.num_terms = dim;
  r.vocabulary = std::move(vocab);
  for (std::size_t c = 0; c < r.clustering.centroids.rows(); ++c) {
    r.theme_labels.push_back({"label" + std::to_string(c)});
  }
  return r;
}

constexpr std::size_t kDocs = 48;
constexpr std::size_t kDim = 9;
constexpr std::size_t kClusters = 3;

std::filesystem::path fresh_path(const std::string& name, const char* ext) {
  const auto path = std::filesystem::path(::testing::TempDir()) /
                    ("sva_servefault_" + name + "_" + std::to_string(::getpid()) + ext);
  std::filesystem::remove(path);
  return path;
}

std::filesystem::path make_bundle(const std::string& name) {
  const auto path = fresh_path(name, ".svab");
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto r = make_result(ctx, kDocs, kDim, kClusters);
    engine::export_bundle(ctx, r, engine::EngineConfig{}, path);
  });
  return path;
}

/// One-shot reference answer over a never-failed world.
std::string oneshot_answer(const std::filesystem::path& bundle, const query::Query& q) {
  auto out = std::make_shared<std::string>();
  ga::spmd_run(2, [&](ga::Context& ctx) {
    auto session = query::Session::open(ctx, bundle);
    const auto results = session.run_batch(std::vector<query::Query>{q});
    if (ctx.rank() == 0) *out = format_result(results[0]);
  });
  return *out;
}

/// Re-submits `q` until a world answers it (WorldFailure rides the
/// respawn window); fails the test if no world recovers in time.
std::string submit_until_served(Server& server, const query::Query& q) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    auto future = server.submit(q);
    if (future.wait_for(std::chrono::seconds(30)) != std::future_status::ready) {
      ADD_FAILURE() << "future hung: a dead world must fail its clients";
      return {};
    }
    try {
      return format_result(future.get());
    } catch (const Error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  ADD_FAILURE() << "no respawned world ever answered";
  return {};
}

/// Every test starts and ends with the substrate disarmed.
class ServeFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

// ---- the acceptance invariant: rank death -> respawn -> same answer ----

TEST_F(ServeFaultTest, ProcessRankDeathFailsInFlightRespawnsAndAnswersIdentically) {
  SVA_REQUIRE_PROCESS_BACKEND();
  const auto bundle = make_bundle("rankdeath");
  const auto q = query::Query::similar_doc(4, 3);
  const auto expected = oneshot_answer(bundle, q);

  // Child rank 1 SIGKILLs itself at its first sweep — after the batch
  // broadcast, squarely mid-flight.  The config is inherited at fork, so
  // it must be armed before start(); the parent (rank 0) never matches
  // the rank filter.
  fault::configure(std::string(fault::sites::kServeSweep) + ":kill:rank=1,hit=1");

  ServeOptions options;
  options.procs = 2;
  options.backend = ga::Backend::kProcess;
  options.batch_deadline = std::chrono::milliseconds(1);
  options.cache_capacity = 0;  // every answer must come from a real sweep
  options.respawn_backoff = std::chrono::milliseconds(10);
  Server server(bundle, options);
  server.start();

  auto doomed = server.submit(q);
  ASSERT_EQ(doomed.wait_for(std::chrono::seconds(60)), std::future_status::ready)
      << "in-flight future hung across a rank death";
  try {
    (void)doomed.get();
    FAIL() << "in-flight query survived a SIGKILLed rank";
  } catch (const WorldFailure& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.rfind(kWorldFailureMark, 0), 0u) << what;
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
  }

  // Disarm before the next world forks: respawned children re-inherit
  // the parent's config, and this fault should strike exactly one era.
  fault::reset();

  EXPECT_TRUE(server.running()) << "supervisor gave up instead of respawning";
  EXPECT_EQ(submit_until_served(server, q), expected)
      << "post-respawn answer must be byte-identical to the never-failed path";

  const auto stats = server.stats();
  EXPECT_GE(stats.failures.world_failures, 1u);
  EXPECT_GE(stats.failures.respawns, 1u);
  EXPECT_GE(stats.failures.in_flight_failed, 1u);
  EXPECT_NE(stats.failures.last_failure.find("rank 1"), std::string::npos)
      << stats.failures.last_failure;

  server.stop();
  server.join();  // clean: the respawned world exits gracefully
  EXPECT_FALSE(server.running());
}

TEST_F(ServeFaultTest, ThreadWorldErrorRespawnsAndKeepsServing) {
  const auto bundle = make_bundle("threadrespawn");
  const auto q = query::Query::cluster_summary(1, 3);
  const auto expected = oneshot_answer(bundle, q);

  ServeOptions options;
  options.procs = 2;
  options.batch_deadline = std::chrono::milliseconds(1);
  options.cache_capacity = 0;
  options.respawn_backoff = std::chrono::milliseconds(10);
  Server server(bundle, options);
  server.start();

  // First sweep dies on an injected error (thread backend shares the
  // substrate, so arming after start() is race-free: hit=1 counts from
  // here).
  fault::configure(std::string(fault::sites::kServeSweep) + ":error:hit=1");

  auto doomed = server.submit(q);
  ASSERT_EQ(doomed.wait_for(std::chrono::seconds(60)), std::future_status::ready);
  EXPECT_THROW((void)doomed.get(), WorldFailure);

  EXPECT_EQ(submit_until_served(server, q), expected);
  EXPECT_GE(server.stats().failures.respawns, 1u);

  server.stop();
  server.join();
}

TEST_F(ServeFaultTest, SupervisorGivesUpWhenTheBundleNeverRevalidates) {
  const auto bundle = make_bundle("giveup");
  ServeOptions options;
  options.procs = 2;
  options.batch_deadline = std::chrono::milliseconds(1);
  options.cache_capacity = 0;
  options.max_respawn_attempts = 2;
  options.respawn_backoff = std::chrono::milliseconds(5);
  Server server(bundle, options);
  server.start();

  ASSERT_NO_THROW((void)server.submit(query::Query::similar_doc(1, 2)).get());

  // The bundle vanishes, then the world dies: every respawn attempt now
  // fails pre-validation, so the supervisor must give up fatally instead
  // of spinning forever.
  std::filesystem::remove(bundle);
  fault::configure(std::string(fault::sites::kServeSweep) + ":error:hit=1");
  auto doomed = server.submit(query::Query::similar_doc(1, 2));
  ASSERT_EQ(doomed.wait_for(std::chrono::seconds(60)), std::future_status::ready);
  EXPECT_THROW((void)doomed.get(), WorldFailure);

  for (int i = 0; i < 1200 && server.running(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(server.running()) << "supervisor kept respawning a dead bundle";
  try {
    server.join();
    FAIL() << "join() swallowed the give-up";
  } catch (const WorldFailure& e) {
    EXPECT_NE(std::string(e.what()).find("giving up"), std::string::npos) << e.what();
  }
  EXPECT_EQ(server.stats().failures.respawns, 0u);  // no world ever respawned
}

TEST_F(ServeFaultTest, ReloadFaultFailsTheRequestAndTheOldSessionKeepsServing) {
  const auto bundle = make_bundle("reloadfault");
  const auto next = make_bundle("reloadfault_next");
  const auto q = query::Query::similar_doc(7, 4);
  const auto expected = oneshot_answer(bundle, q);

  ServeOptions options;
  options.procs = 2;
  options.batch_deadline = std::chrono::milliseconds(1);
  options.cache_capacity = 0;
  Server server(bundle, options);
  server.start();
  ASSERT_EQ(format_result(server.submit(q).get()), expected);

  // The reload's serial pre-validation trips the injected read fault;
  // the request fails, the world survives, the old bundle keeps serving.
  fault::configure(std::string(fault::sites::kSectionFileRead) + ":error:hit=1");
  try {
    server.reload(next).get();
    FAIL() << "reload survived an injected read fault";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("fault injected"), std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(server.running());
  EXPECT_EQ(format_result(server.submit(q).get()), expected);
  EXPECT_EQ(server.stats().failures.world_failures, 0u);  // request-level only

  // The rule is spent: the same reload now lands.
  ASSERT_NO_THROW(server.reload(next).get());

  server.stop();
  server.join();
}

TEST_F(ServeFaultTest, QueuedQueriesExpireAtTheAdmissionDeadline) {
  AdmissionScheduler scheduler(4, std::chrono::microseconds(500),
                               std::chrono::milliseconds(30));
  auto future = scheduler.submit(query::Query::similar_doc(0, 1), 0, {});
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  // Nothing is calling take_batch (the world is "down"); the supervisor's
  // backoff loop calls fail_expired instead.
  EXPECT_EQ(scheduler.fail_expired(), 1u);
  try {
    (void)future.get();
    FAIL() << "expired query did not fail";
  } catch (const DeadlineExceeded& e) {
    EXPECT_NE(std::string(e.what()).find("admission deadline"), std::string::npos);
  }
  EXPECT_EQ(scheduler.stats().expired, 1u);
  EXPECT_EQ(scheduler.fail_expired(), 0u);  // nothing left to expire
}

// ---- client retry across a respawn -------------------------------------

TEST_F(ServeFaultTest, ClientRoundtripRetriesAcrossARespawn) {
  const auto bundle = make_bundle("clientretry");
  const auto q = query::Query::similar_doc(9, 3);
  const auto expected = oneshot_answer(bundle, q);

  ServeOptions options;
  options.procs = 2;
  options.batch_deadline = std::chrono::milliseconds(1);
  options.cache_capacity = 0;
  options.respawn_backoff = std::chrono::milliseconds(10);
  Server server(bundle, options);
  server.start();
  SocketIngress ingress(server, fresh_path("retrysock", ".sock"));
  ingress.start();

  fault::configure(std::string(fault::sites::kServeSweep) + ":error:hit=1");

  // The first attempt's sweep dies; the batch is all-idempotent, so the
  // helper retries with a "# retry" marker and the respawned world
  // answers — the caller never sees the failure.
  ClientRetryPolicy retry;
  retry.attempts = 8;
  retry.backoff = std::chrono::milliseconds(50);
  const auto responses = client_roundtrip(ingress.path(), {"similar 9 3"}, retry);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0], expected);
  EXPECT_GE(server.stats().failures.client_retries, 1u);
  EXPECT_GE(server.stats().failures.respawns, 1u);

  // A batch carrying a control verb must NOT retry: the world-failure
  // response surfaces instead.
  EXPECT_FALSE(retry_safe_line("reload /tmp/x.svab"));
  EXPECT_FALSE(retry_safe_line("shutdown"));
  EXPECT_TRUE(retry_safe_line("similar 9 3"));
  EXPECT_TRUE(retry_safe_line("stats"));

  ingress.stop();
  server.stop();
  server.join();
}

// ---- ingress degradation ------------------------------------------------

TEST_F(ServeFaultTest, SocketLineFaultAnswersErrorAndTheConnectionSurvives) {
  const auto bundle = make_bundle("sockline");
  ServeOptions options;
  options.procs = 2;
  options.batch_deadline = std::chrono::milliseconds(1);
  Server server(bundle, options);
  server.start();
  SocketIngress ingress(server, fresh_path("linesock", ".sock"));
  ingress.start();

  fault::configure(std::string(fault::sites::kServeSocketLine) + ":error:hit=1");
  // No retry: the injected per-line fault is not a world failure.
  const auto responses = client_roundtrip(ingress.path(), {"ping", "ping"},
                                          ClientRetryPolicy{.attempts = 1});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].rfind("error ", 0), 0u) << responses[0];
  EXPECT_NE(responses[0].find("fault injected"), std::string::npos) << responses[0];
  EXPECT_EQ(responses[1], "ok pong");  // same connection, next line is fine

  ingress.stop();
  server.stop();
  server.join();
}

TEST_F(ServeFaultTest, SpoolFaultHandsTheClaimBackAndTheFileIsStillAnswered) {
  const auto bundle = make_bundle("spoolfault");
  ServeOptions options;
  options.procs = 2;
  options.batch_deadline = std::chrono::milliseconds(1);
  Server server(bundle, options);
  server.start();

  const auto spool = std::filesystem::path(::testing::TempDir()) /
                     ("sva_servefault_spool_" + std::to_string(::getpid()));
  std::filesystem::remove_all(spool);
  FileQueueIngress ingress(server, spool, std::chrono::milliseconds(5));
  ingress.start();

  // First claim aborts on the injected fault and is handed back as .req;
  // the next poll pass answers it.
  fault::configure(std::string(fault::sites::kServeSpoolFile) + ":error:hit=1");
  {
    std::ofstream out(spool / "job.part");
    out << "ping\n";
  }
  std::filesystem::rename(spool / "job.part", spool / "job.req");

  const auto resp = spool / "job.resp";
  for (int i = 0; i < 400 && !std::filesystem::exists(resp); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(std::filesystem::exists(resp)) << "abandoned claim was never re-served";
  std::ifstream in(resp);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "ok pong");
  EXPECT_GE(fault::fired(fault::sites::kServeSpoolFile), 1u);

  ingress.stop();
  server.stop();
  server.join();
}

TEST_F(ServeFaultTest, StaleClaimsFromADeadPollerAreSweptBackAndServed) {
  const auto bundle = make_bundle("staleclaim");
  ServeOptions options;
  options.procs = 2;
  options.batch_deadline = std::chrono::milliseconds(1);
  Server server(bundle, options);

  const auto spool = std::filesystem::path(::testing::TempDir()) /
                     ("sva_servefault_stale_" + std::to_string(::getpid()));
  std::filesystem::remove_all(spool);
  std::filesystem::create_directories(spool);

  // A request claimed by a poller that no longer exists.  A pid near the
  // kernel's pid_max ceiling is almost certainly unused; the test skips
  // in the freak case it is alive.
  const pid_t dead = 2999999;
  {
    std::ofstream out(spool / ("stuck.req.claimed." + std::to_string(dead)));
    out << "ping\n";
  }
  // A claim held by a live process (us) must be left alone.
  {
    std::ofstream out(spool / ("live.req.claimed." + std::to_string(::getpid())));
    out << "ping\n";
  }

  FileQueueIngress ingress(server, spool, std::chrono::milliseconds(5));
  const std::size_t recovered = ingress.recover_stale_claims();
  if (::kill(dead, 0) == 0) {
    GTEST_SKIP() << "improbable: pid " << dead << " is alive on this machine";
  }
  EXPECT_EQ(recovered, 1u);
  EXPECT_TRUE(std::filesystem::exists(spool / "stuck.req"));
  EXPECT_TRUE(std::filesystem::exists(
      spool / ("live.req.claimed." + std::to_string(::getpid()))));

  // start() runs the same sweep, then the poll loop serves the recovered
  // request end to end.
  server.start();
  ingress.start();
  const auto resp = spool / "stuck.resp";
  for (int i = 0; i < 400 && !std::filesystem::exists(resp); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(std::filesystem::exists(resp)) << "recovered request was never served";
  std::ifstream in(resp);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "ok pong");

  ingress.stop();
  server.stop();
  server.join();
}

}  // namespace
}  // namespace sva::serve
