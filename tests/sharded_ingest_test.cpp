// Sharded out-of-core ingestion: the non-negotiable invariant is that
// the sharded pipeline's EngineResult checksum is byte-identical to the
// single-pass engine for every shard count and processor count, and that
// every merged stage-1-2 product (vocabulary, term statistics, record
// streams, term→record postings) equals its single-pass counterpart.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sva/corpus/generator.hpp"
#include "sva/corpus/reader.hpp"
#include "sva/engine/digest.hpp"
#include "sva/engine/engine.hpp"
#include "sva/engine/ingest.hpp"
#include "sva/engine/pipeline.hpp"

namespace sva::engine {
namespace {

corpus::CorpusSpec small_spec(corpus::CorpusKind kind) {
  corpus::CorpusSpec spec;
  spec.kind = kind;
  spec.seed = 4321;
  spec.target_bytes = 96 << 10;
  spec.core_vocabulary = 1200;
  spec.num_themes = 5;
  spec.theme_vocabulary = 80;
  spec.theme_token_fraction = 0.3;
  return spec;
}

EngineConfig small_config() {
  EngineConfig config;
  config.topicality.num_major_terms = 150;
  config.kmeans.k = 5;
  return config;
}

std::uint64_t sharded_checksum(const corpus::CorpusReader& reader, const EngineConfig& config,
                               int nprocs, std::size_t shards) {
  Engine engine(config);
  PipelineOptions options;
  options.sharding.num_shards = shards;
  std::uint64_t checksum = 0;
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    auto result = engine.run(ctx, reader, options);
    ASSERT_TRUE(result.has_value());
    if (ctx.rank() == 0) checksum = result_checksum(*result);
  });
  return checksum;
}

// ---- readers ----------------------------------------------------------

TEST(ReaderTest, GeneratedReaderMatchesGenerateCorpus) {
  const auto spec = small_spec(corpus::CorpusKind::kTrecLike);
  const auto sources = corpus::generate_corpus(spec);
  const corpus::GeneratedReader reader(spec);

  ASSERT_EQ(reader.size(), sources.size());
  EXPECT_EQ(reader.total_bytes(), sources.total_bytes());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(reader.doc_bytes(i), sources[i].bytes());
    const corpus::RawDocument doc = reader.read(i);
    EXPECT_EQ(doc.id, sources[i].id);
    ASSERT_EQ(doc.fields.size(), sources[i].fields.size());
    for (std::size_t f = 0; f < doc.fields.size(); ++f) {
      EXPECT_EQ(doc.fields[f].name, sources[i].fields[f].name);
      EXPECT_EQ(doc.fields[f].text, sources[i].fields[f].text);
    }
  }
}

TEST(ReaderTest, InMemoryReaderBorrowsWithoutCopy) {
  const auto sources = corpus::generate_corpus(small_spec(corpus::CorpusKind::kPubMedLike));
  const corpus::InMemoryReader reader(sources);
  ASSERT_EQ(reader.size(), sources.size());
  corpus::RawDocument scratch;
  const corpus::RawDocument* doc = reader.fetch(3, scratch);
  EXPECT_EQ(doc, &sources[3]);  // resident storage, no copy
}

TEST(ReaderTest, PlanShardsCoversCorpusContiguously) {
  const auto sources = corpus::generate_corpus(small_spec(corpus::CorpusKind::kPubMedLike));
  const corpus::InMemoryReader reader(sources);
  for (const std::size_t shards : {1u, 2u, 5u, 13u}) {
    const auto plan = corpus::plan_shards(reader, {.num_shards = shards});
    ASSERT_EQ(plan.size(), shards);
    EXPECT_EQ(plan.front().first, 0u);
    EXPECT_EQ(plan.back().second, reader.size());
    for (std::size_t s = 1; s < plan.size(); ++s) {
      EXPECT_EQ(plan[s].first, plan[s - 1].second);
    }
  }
}

TEST(ReaderTest, PlanShardsHonorsMemoryBudget) {
  const auto sources = corpus::generate_corpus(small_spec(corpus::CorpusKind::kPubMedLike));
  const corpus::InMemoryReader reader(sources);
  const std::size_t budget = reader.total_bytes() / 7;
  const auto plan = corpus::plan_shards(reader, {.mem_budget_bytes = budget});
  EXPECT_GE(plan.size(), 7u);
  // Byte-balanced contiguous cuts: every shard stays within ~a document
  // of the budget.
  std::size_t max_doc = 0;
  for (std::size_t i = 0; i < reader.size(); ++i) {
    max_doc = std::max(max_doc, reader.doc_bytes(i));
  }
  for (const auto& [begin, end] : plan) {
    std::size_t bytes = 0;
    for (std::size_t i = begin; i < end; ++i) bytes += reader.doc_bytes(i);
    EXPECT_LE(bytes, budget + max_doc);
  }
}

// ---- merged stage-1-2 products ----------------------------------------

TEST(ShardedIngestTest, MergedProductsMatchSinglePass) {
  const auto sources = corpus::generate_corpus(small_spec(corpus::CorpusKind::kPubMedLike));
  const corpus::InMemoryReader reader(sources);
  const EngineConfig config = small_config();

  ga::spmd_run(2, [&](ga::Context& ctx) {
    ga::StageTimer timer_a(ctx);
    IngestState single =
        ingest_single_pass(ctx, sources, config.tokenizer, config.indexing, timer_a);
    ga::StageTimer timer_b(ctx);
    IngestState sharded = ingest_sharded(ctx, reader, config.tokenizer, config.indexing,
                                         {.num_shards = 3}, timer_b);

    ASSERT_EQ(sharded.shards_used, 3u);
    EXPECT_EQ(sharded.num_records, single.num_records);
    EXPECT_EQ(sharded.num_terms, single.num_terms);
    EXPECT_EQ(sharded.total_term_occurrences, single.total_term_occurrences);
    EXPECT_EQ(sharded.vocabulary->terms, single.vocabulary->terms);
    EXPECT_EQ(sharded.field_type_names, single.field_type_names);

    // Per-rank record streams (ownership follows the same partition).
    ASSERT_EQ(sharded.records.size(), single.records.size());
    for (std::size_t i = 0; i < single.records.size(); ++i) {
      EXPECT_EQ(sharded.records[i].doc_id, single.records[i].doc_id);
      EXPECT_EQ(sharded.records[i].raw_bytes, single.records[i].raw_bytes);
      ASSERT_EQ(sharded.records[i].fields.size(), single.records[i].fields.size());
      for (std::size_t f = 0; f < single.records[i].fields.size(); ++f) {
        EXPECT_EQ(sharded.records[i].fields[f].type, single.records[i].fields[f].type);
        EXPECT_EQ(sharded.records[i].fields[f].terms, single.records[i].fields[f].terms);
      }
    }

    // Exact global term statistics.
    EXPECT_EQ(sharded.stats.term_frequency.to_vector(ctx),
              single.stats.term_frequency.to_vector(ctx));
    EXPECT_EQ(sharded.stats.doc_frequency.to_vector(ctx),
              single.stats.doc_frequency.to_vector(ctx));

    // Merged term→record postings.
    EXPECT_EQ(sharded.index.total_record_postings, single.index.total_record_postings);
    EXPECT_EQ(sharded.index.record_offsets.to_vector(ctx),
              single.index.record_offsets.to_vector(ctx));
    EXPECT_EQ(sharded.index.record_postings.to_vector(ctx),
              single.index.record_postings.to_vector(ctx));

    // Merged forward product.
    EXPECT_EQ(sharded.forward.num_fields, single.forward.num_fields);
    EXPECT_EQ(sharded.forward.total_terms, single.forward.total_terms);
    EXPECT_EQ(sharded.forward.field_terms.to_vector(ctx),
              single.forward.field_terms.to_vector(ctx));
    EXPECT_EQ(sharded.forward.field_record.to_vector(ctx),
              single.forward.field_record.to_vector(ctx));
  });
}

// ---- the acceptance invariant -----------------------------------------

class ShardedKindTest : public ::testing::TestWithParam<corpus::CorpusKind> {};

TEST_P(ShardedKindTest, ChecksumIdenticalToSinglePassAcrossShardAndProcCounts) {
  const auto spec = small_spec(GetParam());
  const auto sources = corpus::generate_corpus(spec);
  const corpus::GeneratedReader reader(spec);
  const EngineConfig config = small_config();

  // Single-pass baseline through the classic entry point.
  const std::uint64_t baseline =
      result_checksum(run_pipeline(1, ga::CommModel{}, sources, config).result);

  for (const std::size_t shards : {1u, 2u, 5u}) {
    for (const int nprocs : {1, 4}) {
      EXPECT_EQ(sharded_checksum(reader, config, nprocs, shards), baseline)
          << "diverged at shards=" << shards << " nprocs=" << nprocs;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, ShardedKindTest,
                         ::testing::Values(corpus::CorpusKind::kPubMedLike,
                                           corpus::CorpusKind::kTrecLike),
                         [](const auto& info) {
                           return info.param == corpus::CorpusKind::kPubMedLike ? "PubMedLike"
                                                                                : "TrecLike";
                         });

}  // namespace
}  // namespace sva::engine
