// Delta-ingestion equivalence gate (the PR's acceptance invariant):
// extending a base bundle with new documents via engine::ingest_delta
// produces a bundle BYTE-IDENTICAL to recompute_generation — the full
// frozen-model recompute over the combined corpus — at every processor
// count and on both transport backends; queries over the two bundles are
// therefore digest-identical.  CI runs this suite as its own shard
// (`ctest -L delta`).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "backend_testutil.hpp"
#include "sva/corpus/generator.hpp"
#include "sva/corpus/reader.hpp"
#include "sva/engine/bundle.hpp"
#include "sva/engine/delta.hpp"
#include "sva/engine/engine.hpp"
#include "sva/query/session.hpp"
#include "sva/util/error.hpp"

namespace sva::engine {
namespace {

corpus::CorpusSpec delta_spec() {
  corpus::CorpusSpec spec;
  spec.kind = corpus::CorpusKind::kPubMedLike;
  spec.seed = 20070326;
  spec.target_bytes = 64 << 10;
  spec.core_vocabulary = 700;
  spec.num_themes = 4;
  spec.theme_vocabulary = 50;
  spec.theme_token_fraction = 0.3;
  return spec;
}

EngineConfig delta_config() {
  EngineConfig config;
  config.topicality.num_major_terms = 100;
  config.kmeans.k = 4;
  return config;
}

std::filesystem::path fresh_path(const std::string& name) {
  const auto path = std::filesystem::path(::testing::TempDir()) /
                    ("sva_delta_" + name + "_" + std::to_string(::getpid()) + ".svab");
  std::filesystem::remove(path);
  return path;
}

std::vector<std::uint8_t> slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  in.seekg(0, std::ios::end);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

bool same_bits(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

/// Base bundle from the first 90% of the corpus, plus the reference
/// next-generation bundle recomputed from the combined corpus under the
/// frozen model (at P=1 — the P-independence of recompute itself is a
/// test below).
struct Fixture {
  corpus::CorpusSpec spec = delta_spec();
  corpus::GeneratedReader reader{spec};
  std::size_t n_base = 0;
  std::filesystem::path base = fresh_path("base");
  std::filesystem::path reference = fresh_path("reference");
  std::vector<std::uint8_t> reference_bytes;
  DeltaReport reference_report;
  std::vector<query::SimilarDoc> reference_hits;
  std::uint64_t probe_doc = 0;

  Fixture() {
    n_base = reader.size() * 9 / 10;
    // Base built at P=3 over 2 shards — unlike every world the deltas run
    // in, so equivalence cannot lean on matching build geometry.
    const corpus::SliceReader head(reader, 0, n_base);
    Engine engine(delta_config());
    PipelineOptions options;
    options.sharding.num_shards = 2;
    options.export_bundle = base;
    ga::spmd_run(3, [&](ga::Context& ctx) {
      ASSERT_TRUE(engine.run(ctx, head, options).has_value());
    });

    ga::spmd_run(1, [&](ga::Context& ctx) {
      reference_report = recompute_generation(ctx, base, reader, reference);
    });
    reference_bytes = slurp(reference);

    probe_doc = n_base + (reader.size() - n_base) / 2;  // a *new* document
    ga::spmd_run(2, [&](ga::Context& ctx) {
      auto session = query::Session::open(ctx, reference);
      auto hits = session.similar(probe_doc, 8);
      if (ctx.rank() == 0) reference_hits = std::move(hits);
    });
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

// ---- delta == recompute, across P and backends ---------------------------

struct DeltaCase {
  int nprocs;
  ga::Backend backend;
};

class DeltaEquivalenceTest : public ::testing::TestWithParam<DeltaCase> {};

TEST_P(DeltaEquivalenceTest, DeltaBundleIsByteIdenticalToRecompute) {
  const auto [nprocs, backend] = GetParam();
  if (backend == ga::Backend::kProcess) SVA_REQUIRE_PROCESS_BACKEND();
  const Fixture& f = fixture();

  const auto out = fresh_path("ingest_p" + std::to_string(nprocs) + "_" +
                              std::string(ga::backend_name(backend)));
  const corpus::SliceReader tail(f.reader, f.n_base, f.reader.size());
  DeltaReport report;
  ga::SpmdOptions world;
  world.nprocs = nprocs;
  world.backend = backend;
  ga::spmd_run(world, [&](ga::Context& ctx) {
    const auto r = ingest_delta(ctx, f.base, tail, out);
    if (ctx.rank() == 0) report = r;
  });

  EXPECT_EQ(report.generation, 1u);
  EXPECT_EQ(report.base_records, f.n_base);
  EXPECT_EQ(report.new_records, f.reader.size() - f.n_base);
  EXPECT_EQ(report.generation, f.reference_report.generation);
  EXPECT_EQ(report.lineage, f.reference_report.lineage);
  EXPECT_TRUE(same_bits(report.inertia_rise, f.reference_report.inertia_rise));
  EXPECT_TRUE(same_bits(report.size_skew_rise, f.reference_report.size_skew_rise));

  EXPECT_EQ(slurp(out), f.reference_bytes) << "delta bundle at P=" << nprocs
                                           << " differs from the frozen-model recompute";
  std::filesystem::remove(out);
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, DeltaEquivalenceTest,
    ::testing::Values(DeltaCase{1, ga::Backend::kThread}, DeltaCase{2, ga::Backend::kThread},
                      DeltaCase{4, ga::Backend::kThread}, DeltaCase{1, ga::Backend::kProcess},
                      DeltaCase{2, ga::Backend::kProcess},
                      DeltaCase{4, ga::Backend::kProcess}),
    [](const ::testing::TestParamInfo<DeltaCase>& info) {
      return "P" + std::to_string(info.param.nprocs) + "_" +
             std::string(ga::backend_name(info.param.backend));
    });

TEST(DeltaTest, RecomputeItselfIsProcessorCountIndependent) {
  const Fixture& f = fixture();
  const auto out = fresh_path("recompute_p4");
  ga::spmd_run(4, [&](ga::Context& ctx) {
    (void)recompute_generation(ctx, f.base, f.reader, out);
  });
  EXPECT_EQ(slurp(out), f.reference_bytes);
  std::filesystem::remove(out);
}

// ---- query equivalence over the new generation ---------------------------

TEST(DeltaTest, QueriesOverTheDeltaGenerationMatchTheRecompute) {
  const Fixture& f = fixture();
  const auto out = fresh_path("query_equiv");
  const corpus::SliceReader tail(f.reader, f.n_base, f.reader.size());
  ga::spmd_run(2, [&](ga::Context& ctx) {
    (void)ingest_delta(ctx, f.base, tail, out);
  });
  ga::spmd_run(4, [&](ga::Context& ctx) {
    auto session = query::Session::open(ctx, out);
    EXPECT_EQ(session.num_documents(), f.reader.size());
    EXPECT_EQ(session.generation(), 1u);
    EXPECT_EQ(session.lineage(), f.reference_report.lineage);
    const auto hits = session.similar(f.probe_doc, 8);
    if (ctx.rank() != 0) return;
    ASSERT_EQ(hits.size(), f.reference_hits.size());
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].doc_id, f.reference_hits[i].doc_id) << i;
      EXPECT_TRUE(same_bits(hits[i].similarity, f.reference_hits[i].similarity)) << i;
    }
  });
  std::filesystem::remove(out);
}

// ---- generation chain and drift ------------------------------------------

TEST(DeltaTest, SecondDeltaAdvancesTheChain) {
  const Fixture& f = fixture();
  // Split the tail in two: gen1 takes the first half, gen2 the rest.
  const std::size_t mid = f.n_base + (f.reader.size() - f.n_base) / 2;
  const auto gen1 = fresh_path("chain_gen1");
  const auto gen2 = fresh_path("chain_gen2");
  const corpus::SliceReader first(f.reader, f.n_base, mid);
  const corpus::SliceReader second(f.reader, mid, f.reader.size());
  DeltaReport r1, r2;
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto a = ingest_delta(ctx, f.base, first, gen1);
    const auto b = ingest_delta(ctx, gen1, second, gen2);
    if (ctx.rank() == 0) {
      r1 = a;
      r2 = b;
    }
  });
  EXPECT_EQ(r1.generation, 1u);
  EXPECT_EQ(r2.generation, 2u);
  EXPECT_EQ(r2.base_records, mid);

  // gen2 holds the whole corpus and answers exactly like the one-shot
  // next generation over the same documents (same frozen model, same
  // final point set — only the generation metadata differs).
  ga::spmd_run(1, [&](ga::Context& ctx) {
    BundleView base_view = load_bundle(ctx, f.base);
    BundleView v1 = load_bundle(ctx, gen1);
    BundleView v2 = load_bundle(ctx, gen2);
    require_extends(base_view, v1);  // must not throw
    require_extends(v1, v2);
    sva::require(v2.num_records == f.reader.size(), "gen2 must hold the whole corpus");
    sva::require(v2.generation.parent_lineage == v1.generation.lineage,
                 "gen2 must link to gen1");
  });
  std::filesystem::remove(gen1);
  std::filesystem::remove(gen2);
}

TEST(DeltaTest, DriftThresholdsFlagRecluster) {
  const Fixture& f = fixture();
  const auto out = fresh_path("drift");
  const corpus::SliceReader tail(f.reader, f.n_base, f.reader.size());
  // Impossible-to-satisfy thresholds: any measured drift (even negative
  // rise) exceeds them, so the flag must be set — and must travel through
  // the written generation section into the reopened view and Session.
  DeltaOptions options;
  options.max_inertia_rise = -1.0;
  options.max_size_skew_rise = -1.0;
  DeltaReport report;
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto r = ingest_delta(ctx, f.base, tail, out, options);
    if (ctx.rank() == 0) report = r;
  });
  EXPECT_TRUE(report.recluster_recommended);
  ga::spmd_run(1, [&](ga::Context& ctx) {
    const BundleView view = load_bundle(ctx, out);
    sva::require(view.generation.recluster_recommended,
                 "recluster flag must persist in the bundle");
    sva::require(same_bits(view.generation.max_inertia_rise, -1.0),
                 "judged thresholds must persist in the bundle");
    auto session = query::Session::open(ctx, out);
    sva::require(session.recluster_recommended(), "Session must surface the flag");
  });
  std::filesystem::remove(out);
}

TEST(DeltaTest, BaseWithoutEmbeddedConfigIsRejected) {
  // A bundle exported through the fingerprint-only overload carries no
  // serialized engine configuration and cannot be extended; the error
  // must say why.
  const Fixture& f = fixture();
  const auto bare = fresh_path("bare");
  const auto sources = corpus::generate_corpus(delta_spec());
  ga::spmd_run(1, [&](ga::Context& ctx) {
    const auto result = run_text_engine(ctx, sources, delta_config());
    export_bundle(ctx, result, Engine::config_fingerprint(delta_config()), bare);
  });
  const corpus::SliceReader tail(f.reader, f.n_base, f.reader.size());
  const auto out = fresh_path("bare_out");
  try {
    ga::spmd_run(1, [&](ga::Context& ctx) {
      (void)ingest_delta(ctx, bare, tail, out);
    });
    FAIL() << "ingest over an inextensible base must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("base bundle"), std::string::npos) << e.what();
  }
  std::filesystem::remove(bare);
}

}  // namespace
}  // namespace sva::engine
