// Checkpoint/resume: a run killed after any stage resumes to a
// byte-identical EngineResult (even at a different processor count), and
// a corrupted checkpoint — truncated or bit-flipped anywhere — raises
// FormatError rather than loading garbage.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sva/corpus/generator.hpp"
#include "sva/corpus/reader.hpp"
#include "sva/engine/checkpoint.hpp"
#include "sva/engine/digest.hpp"
#include "sva/engine/engine.hpp"
#include "sva/engine/pipeline.hpp"
#include "sva/util/error.hpp"

namespace sva::engine {
namespace {

corpus::CorpusSpec tiny_spec() {
  corpus::CorpusSpec spec;
  spec.kind = corpus::CorpusKind::kPubMedLike;
  spec.seed = 777;
  spec.target_bytes = 64 << 10;
  spec.core_vocabulary = 900;
  spec.num_themes = 4;
  spec.theme_vocabulary = 60;
  spec.theme_token_fraction = 0.3;
  return spec;
}

EngineConfig tiny_config() {
  EngineConfig config;
  config.topicality.num_major_terms = 120;
  config.kmeans.k = 4;
  return config;
}

std::filesystem::path fresh_dir(const std::string& name) {
  // Suffixed by pid: ctest runs discovered cases as parallel processes.
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("sva_ckpt_" + name + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<std::uint8_t> slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  in.seekg(0, std::ios::end);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void spew(const std::filesystem::path& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

struct Fixture {
  corpus::CorpusSpec spec = tiny_spec();
  corpus::GeneratedReader reader{spec};
  EngineConfig config = tiny_config();
  std::uint64_t baseline = 0;

  Fixture() {
    const auto sources = corpus::generate_corpus(spec);
    baseline = result_checksum(run_pipeline(1, ga::CommModel{}, sources, config).result);
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

std::uint64_t resume_checksum(const std::filesystem::path& dir, int nprocs,
                              const EngineConfig& config) {
  Engine engine(config);
  std::uint64_t checksum = 0;
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const EngineResult result = engine.resume(ctx, dir);
    if (ctx.rank() == 0) checksum = result_checksum(result);
  });
  return checksum;
}

// ---- kill-and-resume ---------------------------------------------------

class StopStageTest : public ::testing::TestWithParam<Stage> {};

TEST_P(StopStageTest, KilledRunResumesToIdenticalChecksum) {
  const Fixture& f = fixture();
  const auto dir = fresh_dir(std::string("stop_") + stage_name(GetParam()));

  Engine engine(f.config);
  PipelineOptions options;
  options.sharding.num_shards = 2;
  options.checkpoint_dir = dir;
  options.stop_after = GetParam();
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto result = engine.run(ctx, f.reader, options);
    EXPECT_FALSE(result.has_value());  // the simulated kill
  });
  ASSERT_EQ(last_completed_stage(dir), GetParam());

  EXPECT_EQ(resume_checksum(dir, 2, f.config), f.baseline);
  // The resume filled in the remaining stage files.
  EXPECT_EQ(last_completed_stage(dir), Stage::kFinal);
}

INSTANTIATE_TEST_SUITE_P(Stages, StopStageTest,
                         ::testing::Values(Stage::kIngest, Stage::kSignatures,
                                           Stage::kCluster),
                         [](const auto& info) { return stage_name(info.param); });

TEST(CheckpointTest, ResumeAtDifferentProcessorCountMatches) {
  // Every restore path reslices its gathered state by the stored
  // per-record byte sizes, so each stop point must survive a resume at a
  // different processor count than the one that wrote the checkpoint.
  const Fixture& f = fixture();
  for (const Stage stop : {Stage::kIngest, Stage::kSignatures, Stage::kCluster}) {
    const auto dir = fresh_dir(std::string("procs_") + stage_name(stop));
    Engine engine(f.config);
    PipelineOptions options;
    options.sharding.num_shards = 3;
    options.checkpoint_dir = dir;
    options.stop_after = stop;
    ga::spmd_run(4, [&](ga::Context& ctx) { (void)engine.run(ctx, f.reader, options); });

    EXPECT_EQ(resume_checksum(dir, 3, f.config), f.baseline)
        << "diverged resuming after " << stage_name(stop) << " at a different P";
  }
}

TEST(CheckpointTest, ResumeFromCompletedRunReloadsWithoutRecompute) {
  const Fixture& f = fixture();
  const auto dir = fresh_dir("final");
  Engine engine(f.config);
  PipelineOptions options;
  options.checkpoint_dir = dir;
  std::uint64_t direct = 0;
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto result = engine.run(ctx, f.reader, options);
    ASSERT_TRUE(result.has_value());
    if (ctx.rank() == 0) direct = result_checksum(*result);
  });
  EXPECT_EQ(direct, f.baseline);
  EXPECT_EQ(last_completed_stage(dir), Stage::kFinal);
  // Full-restore path, including at a different processor count than the
  // run that wrote the checkpoints.
  EXPECT_EQ(resume_checksum(dir, 2, f.config), f.baseline);
  EXPECT_EQ(resume_checksum(dir, 3, f.config), f.baseline);
}

TEST(CheckpointTest, ResumeRefusesDifferentConfiguration) {
  const Fixture& f = fixture();
  const auto dir = fresh_dir("config");
  Engine engine(f.config);
  PipelineOptions options;
  options.checkpoint_dir = dir;
  options.stop_after = Stage::kIngest;
  ga::spmd_run(2, [&](ga::Context& ctx) { (void)engine.run(ctx, f.reader, options); });

  EngineConfig other = f.config;
  other.kmeans.k += 1;
  EXPECT_NE(Engine::config_fingerprint(other), Engine::config_fingerprint(f.config));
  Engine wrong(other);
  EXPECT_THROW(ga::spmd_run(2, [&](ga::Context& ctx) { (void)wrong.resume(ctx, dir); }),
               InvalidArgument);
}

TEST(CheckpointTest, ResumeWithoutCheckpointRefused) {
  const auto dir = fresh_dir("empty");
  Engine engine(fixture().config);
  EXPECT_THROW(ga::spmd_run(1, [&](ga::Context& ctx) { (void)engine.resume(ctx, dir); }),
               InvalidArgument);
}

// ---- corruption fuzzing ------------------------------------------------

class CheckpointFuzz : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::filesystem::path(fresh_dir("fuzz"));
    const Fixture& f = fixture();
    Engine engine(f.config);
    PipelineOptions options;
    options.sharding.num_shards = 2;
    options.checkpoint_dir = *dir_;
    ga::spmd_run(2, [&](ga::Context& ctx) { (void)engine.run(ctx, f.reader, options); });
  }
  static void TearDownTestSuite() {
    delete dir_;
    dir_ = nullptr;
  }
  static std::filesystem::path* dir_;
};

std::filesystem::path* CheckpointFuzz::dir_ = nullptr;

TEST_F(CheckpointFuzz, EveryStageFileRoundTrips) {
  for (int s = 0; s < 4; ++s) {
    const auto stage = static_cast<Stage>(s);
    const CheckpointFile file = CheckpointFile::read(stage_path(*dir_, stage));
    EXPECT_EQ(file.stage, stage);
  }
}

TEST_F(CheckpointFuzz, TruncationAlwaysRaisesFormatError) {
  for (int s = 0; s < 4; ++s) {
    const auto bytes = slurp(stage_path(*dir_, static_cast<Stage>(s)));
    ASSERT_GT(bytes.size(), 16u);
    const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 97);
    for (std::size_t len = 0; len < bytes.size(); len += stride) {
      std::vector<std::uint8_t> cut(bytes.begin(),
                                    bytes.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_THROW((void)CheckpointFile::parse(cut), FormatError)
          << "stage " << s << " truncated to " << len << " bytes parsed";
    }
    // One byte short of valid.
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.end() - 1);
    EXPECT_THROW((void)CheckpointFile::parse(cut), FormatError);
  }
}

TEST_F(CheckpointFuzz, BitFlipsAlwaysRaiseFormatError) {
  for (int s = 0; s < 4; ++s) {
    auto bytes = slurp(stage_path(*dir_, static_cast<Stage>(s)));
    const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 211);
    for (std::size_t pos = 0; pos < bytes.size(); pos += stride) {
      const std::uint8_t mask = static_cast<std::uint8_t>(1u << (pos % 8));
      bytes[pos] ^= mask;
      EXPECT_THROW((void)CheckpointFile::parse(bytes), FormatError)
          << "stage " << s << " flip at byte " << pos << " parsed";
      bytes[pos] ^= mask;  // restore
    }
  }
}

TEST_F(CheckpointFuzz, CorruptTailFileEndsTheCompletedChain) {
  // Copy the checkpoint dir, then corrupt final.svack: the chain must
  // stop at kCluster and resume must still reproduce the baseline.
  const Fixture& f = fixture();
  const auto dir = fresh_dir("fuzz_tail");
  for (int s = 0; s < 4; ++s) {
    const auto stage = static_cast<Stage>(s);
    std::filesystem::copy_file(stage_path(*dir_, stage), stage_path(dir, stage),
                               std::filesystem::copy_options::overwrite_existing);
  }
  auto bytes = slurp(stage_path(dir, Stage::kFinal));
  bytes[bytes.size() / 2] ^= 0x10;
  spew(stage_path(dir, Stage::kFinal), bytes);

  EXPECT_EQ(last_completed_stage(dir), Stage::kCluster);
  EXPECT_EQ(resume_checksum(dir, 2, f.config), f.baseline);
}

TEST_F(CheckpointFuzz, EmptyAndGarbageFilesRaiseFormatError) {
  EXPECT_THROW((void)CheckpointFile::parse({}), FormatError);
  const std::vector<std::uint8_t> garbage(64, 0xAB);
  EXPECT_THROW((void)CheckpointFile::parse(garbage), FormatError);
}

}  // namespace
}  // namespace sva::engine
