// Unit + property tests for dense math helpers and the Jacobi eigensolver.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "sva/util/error.hpp"
#include "sva/util/mathutil.hpp"
#include "sva/util/rng.hpp"

namespace sva {
namespace {

TEST(VectorOpsTest, L1Norm) {
  const std::vector<double> v = {1.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(l1_norm(v), 6.0);
}

TEST(VectorOpsTest, L2Norm) {
  const std::vector<double> v = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(l2_norm(v), 5.0);
}

TEST(VectorOpsTest, Dot) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

TEST(VectorOpsTest, DotDimensionMismatchThrows) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW((void)dot(a, b), InvalidArgument);
}

TEST(VectorOpsTest, Axpy) {
  const std::vector<double> x = {1.0, 2.0};
  std::vector<double> y = {10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(VectorOpsTest, SquaredDistance) {
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
}

TEST(VectorOpsTest, L1NormalizeMakesUnitMass) {
  std::vector<double> v = {2.0, 2.0, -4.0};
  EXPECT_TRUE(l1_normalize(v));
  EXPECT_NEAR(l1_norm(v), 1.0, 1e-12);
}

TEST(VectorOpsTest, L1NormalizeZeroVectorReturnsFalse) {
  std::vector<double> v = {0.0, 0.0};
  EXPECT_FALSE(l1_normalize(v));
  EXPECT_DOUBLE_EQ(v[0], 0.0);
}

// ---- Matrix -----------------------------------------------------------------

TEST(MatrixTest, ShapeAndAccess) {
  Matrix m(2, 3);
  m.at(1, 2) = 5.0;
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.row(1)[2], 5.0);
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 3);
  for (double v : m.flat()) EXPECT_DOUBLE_EQ(v, 0.0);
}

// ---- column_mean / covariance ------------------------------------------------

TEST(StatsTest, ColumnMean) {
  Matrix m(2, 2);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 2.0;
  m.at(1, 0) = 3.0;
  m.at(1, 1) = 4.0;
  const auto mean = column_mean(m);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 3.0);
}

TEST(StatsTest, CovarianceOfIndependentColumns) {
  // x in {0, 2}, y constant -> var(x) = 2, cov(x,y) = 0.
  Matrix m(2, 2);
  m.at(0, 0) = 0.0;
  m.at(1, 0) = 2.0;
  m.at(0, 1) = 5.0;
  m.at(1, 1) = 5.0;
  const auto mean = column_mean(m);
  const Matrix cov = covariance(m, mean);
  EXPECT_DOUBLE_EQ(cov.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(cov.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(cov.at(1, 1), 0.0);
}

TEST(StatsTest, CovarianceIsSymmetric) {
  Xoshiro256 rng(3);
  Matrix m(10, 4);
  for (double& v : m.flat()) v = rng.uniform();
  const Matrix cov = covariance(m, column_mean(m));
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(cov.at(i, j), cov.at(j, i));
  }
}

// ---- jacobi_eigen -------------------------------------------------------------

TEST(JacobiTest, DiagonalMatrix) {
  Matrix a(3, 3);
  a.at(0, 0) = 1.0;
  a.at(1, 1) = 5.0;
  a.at(2, 2) = 3.0;
  const EigenResult r = jacobi_eigen(a);
  EXPECT_NEAR(r.values[0], 5.0, 1e-10);
  EXPECT_NEAR(r.values[1], 3.0, 1e-10);
  EXPECT_NEAR(r.values[2], 1.0, 1e-10);
}

TEST(JacobiTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 2.0;
  const EigenResult r = jacobi_eigen(a);
  EXPECT_NEAR(r.values[0], 3.0, 1e-10);
  EXPECT_NEAR(r.values[1], 1.0, 1e-10);
  // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(r.vectors.at(0, 0)), 1.0 / std::sqrt(2.0), 1e-8);
  EXPECT_NEAR(std::abs(r.vectors.at(0, 1)), 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(JacobiTest, NonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW((void)jacobi_eigen(a), InvalidArgument);
}

class JacobiPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(JacobiPropertyTest, EigenpairsSatisfyDefinition) {
  const int n = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(n) * 77);
  // Random symmetric matrix.
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const double v = rng.uniform() * 2.0 - 1.0;
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
  }
  const EigenResult r = jacobi_eigen(a);

  // A v = lambda v for every pair.
  for (int k = 0; k < n; ++k) {
    const auto v = r.vectors.row(k);
    for (int i = 0; i < n; ++i) {
      double av = 0.0;
      for (int j = 0; j < n; ++j) av += a.at(i, j) * v[j];
      EXPECT_NEAR(av, r.values[static_cast<std::size_t>(k)] * v[i], 1e-7);
    }
  }
}

TEST_P(JacobiPropertyTest, EigenvectorsOrthonormal) {
  const int n = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(n) * 191);
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const double v = rng.uniform();
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
  }
  const EigenResult r = jacobi_eigen(a);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const double d = dot(r.vectors.row(i), r.vectors.row(j));
      EXPECT_NEAR(d, i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST_P(JacobiPropertyTest, EigenvaluesDescendAndTraceIsPreserved) {
  const int n = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(n) * 311);
  Matrix a(n, n);
  double trace = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const double v = rng.uniform();
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
    trace += a.at(i, i);
  }
  const EigenResult r = jacobi_eigen(a);
  double sum = 0.0;
  for (std::size_t k = 0; k < r.values.size(); ++k) {
    sum += r.values[k];
    if (k > 0) {
      EXPECT_LE(r.values[k], r.values[k - 1] + 1e-12);
    }
  }
  EXPECT_NEAR(sum, trace, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiPropertyTest, ::testing::Values(1, 2, 3, 5, 8, 16, 32));

}  // namespace
}  // namespace sva
