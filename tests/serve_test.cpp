// Tests for the serving daemon stack (serve/): protocol grammar, result
// cache, admission coalescing, cache-hit bit-identity against the
// uncached path, deadline flushes, bundle reload invalidation, clean
// shutdown mid-batch, and the socket ingress end to end.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sva/cluster/kmeans.hpp"
#include "sva/cluster/pca.hpp"
#include "sva/cluster/projection.hpp"
#include "sva/corpus/generator.hpp"
#include "sva/corpus/reader.hpp"
#include "sva/engine/bundle.hpp"
#include "sva/engine/engine.hpp"
#include "sva/serve/cache.hpp"
#include "sva/serve/ingress.hpp"
#include "sva/serve/protocol.hpp"
#include "sva/serve/server.hpp"

namespace sva::serve {
namespace {

// ---- fixture: a small exported bundle ----------------------------------

/// Deterministic block-distributed signature set (three angular groups),
/// the same construction session_test uses.
sig::SignatureSet make_signatures(ga::Context& ctx, std::size_t n, std::size_t dim) {
  const auto nprocs = static_cast<std::size_t>(ctx.nprocs());
  const std::size_t per = (n + nprocs - 1) / nprocs;
  const std::size_t begin = std::min(n, static_cast<std::size_t>(ctx.rank()) * per);
  const std::size_t end = std::min(n, begin + per);

  sig::SignatureSet s;
  s.dimension = dim;
  s.docvecs = Matrix(end - begin, dim);
  for (std::size_t g = begin; g < end; ++g) {
    const std::size_t i = g - begin;
    const std::size_t group = g % 3;
    for (std::size_t d = 0; d < dim; ++d) {
      const double base = (d % 3 == group) ? 1.0 : 0.05;
      s.docvecs.at(i, d) = base + 0.01 * static_cast<double>((g * 7 + d * 13) % 10);
    }
    s.doc_ids.push_back(static_cast<std::uint64_t>(g));
    s.is_null.push_back(false);
  }
  return s;
}

engine::EngineResult make_result(ga::Context& ctx, std::size_t n, std::size_t dim,
                                 std::size_t k) {
  engine::EngineResult r;
  r.signatures = make_signatures(ctx, n, dim);
  r.dimension = dim;
  r.num_records = n;

  cluster::KMeansConfig config;
  config.k = k;
  r.clustering = cluster::kmeans_cluster(ctx, r.signatures.docvecs, config);

  const auto pca = cluster::pca_fit(r.clustering.centroids, 2);
  r.projection =
      cluster::project_documents(ctx, r.signatures.docvecs, r.signatures.doc_ids, pca);

  auto vocab = std::make_shared<ga::Vocabulary>();
  for (std::size_t d = 0; d < dim; ++d) {
    vocab->terms.push_back("term" + std::to_string(d));
    r.selection.topic_terms.push_back(static_cast<std::int64_t>(d));
  }
  r.num_terms = dim;
  r.vocabulary = std::move(vocab);
  for (std::size_t c = 0; c < r.clustering.centroids.rows(); ++c) {
    r.theme_labels.push_back({"label" + std::to_string(c)});
  }
  return r;
}

constexpr std::size_t kDocs = 48;
constexpr std::size_t kDim = 9;
constexpr std::size_t kClusters = 3;

std::filesystem::path fresh_path(const std::string& name, const char* ext) {
  const auto path = std::filesystem::path(::testing::TempDir()) /
                    ("sva_serve_" + name + "_" + std::to_string(::getpid()) + ext);
  std::filesystem::remove(path);
  return path;
}

/// Exports the standard test bundle (written at P=2) and returns its path.
std::filesystem::path make_bundle(const std::string& name) {
  const auto path = fresh_path(name, ".svab");
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto r = make_result(ctx, kDocs, kDim, kClusters);
    engine::export_bundle(ctx, r, engine::EngineConfig{}, path);
  });
  return path;
}

/// One-shot reference: answers `queries` over a fresh Session at `procs`
/// ranks (the sva_query code path) and returns rank 0's rendered lines.
std::vector<std::string> oneshot_answers(const std::filesystem::path& bundle,
                                         const std::vector<query::Query>& queries,
                                         int procs) {
  auto out = std::make_shared<std::vector<std::string>>();
  ga::spmd_run(procs, [&](ga::Context& ctx) {
    auto session = query::Session::open(ctx, bundle);
    const auto results = session.run_batch(queries);
    if (ctx.rank() == 0) {
      for (const auto& r : results) out->push_back(format_result(r));
    }
  });
  return *out;
}

std::vector<query::Query> mixed_queries(std::size_t n) {
  std::vector<query::Query> qs;
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 3) {
      case 0:
        qs.push_back(query::Query::similar_doc(i % kDocs, 3 + i % 5));
        break;
      case 1:
        qs.push_back(query::Query::cluster_summary(static_cast<int>(i % kClusters),
                                                   2 + i % 3));
        break;
      default:
        qs.push_back(query::Query::similar_probe(
            std::vector<double>(kDim, 0.1 + 0.05 * static_cast<double>(i % 7)),
            2 + i % 4));
        break;
    }
  }
  return qs;
}

// ---- protocol ----------------------------------------------------------

TEST(ProtocolTest, ParsesStrictQueryGrammar) {
  std::string error;
  auto r = parse_query_line("similar 7 4", error);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->kind, Request::Kind::kQuery);
  EXPECT_EQ(r->query.kind, query::Query::Kind::kSimilarByDoc);
  EXPECT_EQ(r->query.doc_id, 7u);
  EXPECT_EQ(r->query.k, 4u);

  r = parse_query_line("summary 2", error);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->query.kind, query::Query::Kind::kClusterSummary);
  EXPECT_EQ(r->query.cluster, 2);
  EXPECT_EQ(r->query.k, 5u);  // default reps

  r = parse_query_line("  summary 1 3  ", error);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->query.k, 3u);

  EXPECT_TRUE(parse_query_line("", error)->kind == Request::Kind::kBlank);
  EXPECT_TRUE(parse_query_line("  # comment", error)->kind == Request::Kind::kBlank);
}

TEST(ProtocolTest, RejectsTrailingGarbageAndBadNumbers) {
  std::string error;
  // The historic bug: trailing fields were silently ignored.
  EXPECT_FALSE(parse_query_line("similar 3 5 oops", error).has_value());
  EXPECT_FALSE(parse_query_line("similar 3", error).has_value());
  EXPECT_FALSE(parse_query_line("similar -3 5", error).has_value());
  EXPECT_FALSE(parse_query_line("similar 3 0", error).has_value());
  EXPECT_FALSE(parse_query_line("similar 99999999999999999999 5", error).has_value());
  EXPECT_FALSE(parse_query_line("summary", error).has_value());
  EXPECT_FALSE(parse_query_line("summary 1 2 3", error).has_value());
  EXPECT_FALSE(parse_query_line("drill 1", error).has_value());
  // Control verbs are not part of the batch-file grammar...
  EXPECT_FALSE(parse_query_line("shutdown", error).has_value());
  // ...but are part of the ingress grammar.
  EXPECT_TRUE(parse_request_line("shutdown", error).has_value());
  EXPECT_FALSE(parse_request_line("shutdown now", error).has_value());
  EXPECT_TRUE(parse_request_line("reload /tmp/b.svab", error).has_value());
  EXPECT_FALSE(parse_request_line("reload", error).has_value());
}

TEST(ProtocolTest, ParsesIngestVerbStrictly) {
  std::string error;
  const auto r = parse_request_line("ingest new.txt gen1.svab", error);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->kind, Request::Kind::kIngest);
  EXPECT_EQ(r->ingest_docs, "new.txt");
  EXPECT_EQ(r->ingest_out, "gen1.svab");
  // Strict arity on both sides, and not part of the batch-file grammar.
  EXPECT_FALSE(parse_request_line("ingest new.txt", error).has_value());
  EXPECT_FALSE(parse_request_line("ingest a b c", error).has_value());
  EXPECT_FALSE(parse_query_line("ingest new.txt gen1.svab", error).has_value());
}

TEST(ProtocolTest, QueryDigestDistinguishesQueries) {
  const auto a = query::Query::similar_doc(7, 4);
  const auto b = query::Query::similar_doc(7, 5);
  const auto c = query::Query::cluster_summary(0, 4);
  EXPECT_EQ(query_digest(a), query_digest(query::Query::similar_doc(7, 4)));
  EXPECT_NE(query_digest(a), query_digest(b));
  EXPECT_NE(query_digest(a), query_digest(c));
  EXPECT_NE(query_key_bytes(a), query_key_bytes(b));
}

TEST(ProtocolTest, EncodeDecodeRoundTrips) {
  ByteWriter w;
  const auto probe = query::Query::similar_probe({0.25, -1.5, 3.0}, 6);
  encode_query(w, probe);
  encode_query(w, query::Query::cluster_summary(2, 3));
  ByteReader in(w.bytes);
  const auto p2 = decode_query(in);
  EXPECT_EQ(p2.kind, query::Query::Kind::kSimilarByProbe);
  EXPECT_EQ(p2.probe, probe.probe);
  EXPECT_EQ(p2.k, 6u);
  const auto s2 = decode_query(in);
  EXPECT_EQ(s2.cluster, 2);
  EXPECT_EQ(s2.k, 3u);
}

// ---- result cache ------------------------------------------------------

TEST(CacheTest, LruEvictionAndCounters) {
  ResultCache cache(2);
  auto key_of = [](std::uint64_t doc) {
    return query_key_bytes(query::Query::similar_doc(doc, 3));
  };
  query::QueryResult result;
  result.kind = query::Query::Kind::kSimilarByDoc;

  EXPECT_FALSE(cache.lookup(1, key_of(1)).has_value());
  cache.insert(1, key_of(1), result);
  cache.insert(2, key_of(2), result);
  EXPECT_TRUE(cache.lookup(1, key_of(1)).has_value());  // 1 now most recent
  cache.insert(3, key_of(3), result);                   // evicts 2
  EXPECT_FALSE(cache.lookup(2, key_of(2)).has_value());
  EXPECT_TRUE(cache.lookup(1, key_of(1)).has_value());
  EXPECT_TRUE(cache.lookup(3, key_of(3)).has_value());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);

  cache.invalidate_all();
  EXPECT_FALSE(cache.lookup(1, key_of(1)).has_value());
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(CacheTest, DigestCollisionDegradesToMiss) {
  ResultCache cache(4);
  query::QueryResult result;
  const auto key_a = query_key_bytes(query::Query::similar_doc(1, 3));
  const auto key_b = query_key_bytes(query::Query::similar_doc(2, 3));
  cache.insert(42, key_a, result);           // same digest, different key:
  EXPECT_FALSE(cache.lookup(42, key_b).has_value());  // must not serve key_a
  EXPECT_TRUE(cache.lookup(42, key_a).has_value());
}

TEST(CacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  const auto key = query_key_bytes(query::Query::similar_doc(1, 3));
  cache.insert(1, key, query::QueryResult{});
  EXPECT_FALSE(cache.lookup(1, key).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ---- the daemon --------------------------------------------------------

TEST(ServeTest, CoalescesConcurrentQueriesIntoFewerSweeps) {
  const auto bundle = make_bundle("coalesce");
  const auto queries = mixed_queries(32);
  const auto expected = oneshot_answers(bundle, queries, 1);

  ServeOptions options;
  options.procs = 2;
  options.batch_max = 8;
  options.batch_deadline = std::chrono::milliseconds(10);
  options.cache_capacity = 0;  // count every query as a sweep rider
  Server server(bundle, options);
  server.start();

  std::vector<std::future<query::QueryResult>> futures;
  futures.reserve(queries.size());
  for (const auto& q : queries) futures.push_back(server.submit(q));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto result = futures[i].get();
    EXPECT_EQ(format_result(result), expected[i]) << "query " << i;
  }

  const auto stats = server.stats();
  EXPECT_EQ(stats.scheduler.submitted, queries.size());
  EXPECT_EQ(stats.queries_swept, queries.size());
  // The acceptance bar: concurrent in-flight queries ride shared sweeps.
  EXPECT_LE(stats.sweeps * 2, queries.size())
      << "expected >= 2x coalescing, got " << stats.sweeps << " sweeps for "
      << queries.size() << " queries";
  EXPECT_GE(stats.scheduler.max_batch, 2u);

  server.stop();
  server.join();
  EXPECT_FALSE(server.running());
}

TEST(ServeTest, CacheHitIsBitIdenticalToUncachedAnswer) {
  const auto bundle = make_bundle("cachehit");
  // Six pairwise-distinct queries (mixed_queries may repeat, which would
  // turn first-pass submissions into hits and skew the counters).
  const std::vector<query::Query> queries = {
      query::Query::similar_doc(0, 3),
      query::Query::similar_doc(1, 4),
      query::Query::cluster_summary(0, 3),
      query::Query::cluster_summary(1, 4),
      query::Query::similar_probe(std::vector<double>(kDim, 0.2), 5),
      query::Query::similar_probe(std::vector<double>(kDim, 0.7), 3),
  };
  const auto expected = oneshot_answers(bundle, queries, 1);

  ServeOptions options;
  options.procs = 2;
  options.batch_max = 4;
  options.batch_deadline = std::chrono::milliseconds(1);
  options.cache_capacity = 64;
  Server server(bundle, options);
  server.start();

  // First pass: misses, answered by sweeps.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(format_result(server.submit(queries[i]).get()), expected[i]);
  }
  const auto mid = server.stats();
  EXPECT_EQ(mid.cache.hits, 0u);
  EXPECT_EQ(mid.cache.misses, queries.size());

  // Second pass: every answer must come from the cache, bit-identical.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(format_result(server.submit(queries[i]).get()), expected[i]);
  }
  const auto after = server.stats();
  EXPECT_EQ(after.cache.hits, queries.size());
  EXPECT_EQ(after.queries_swept, queries.size());  // no extra sweeps

  server.stop();
  server.join();
}

TEST(ServeTest, DeadlineFlushesALoneQuery) {
  const auto bundle = make_bundle("deadline");
  ServeOptions options;
  options.procs = 2;
  options.batch_max = 1024;  // size trigger unreachable
  options.batch_deadline = std::chrono::milliseconds(2);
  Server server(bundle, options);
  server.start();

  // A lone query must not wait for a full batch: the deadline flushes it.
  const auto result = server.submit(query::Query::similar_doc(5, 4)).get();
  EXPECT_EQ(result.hits.size(), 4u);
  const auto stats = server.stats();
  EXPECT_GE(stats.scheduler.deadline_flushes, 1u);
  EXPECT_EQ(stats.scheduler.size_flushes, 0u);

  server.stop();
  server.join();
}

TEST(ServeTest, RejectsInadmissibleQueriesWithoutPoisoningTheWorld) {
  const auto bundle = make_bundle("reject");
  ServeOptions options;
  options.procs = 2;
  options.batch_deadline = std::chrono::milliseconds(1);
  Server server(bundle, options);
  server.start();

  EXPECT_THROW(server.submit(query::Query::similar_doc(9999, 3)).get(), InvalidArgument);
  EXPECT_THROW(server.submit(query::Query::cluster_summary(42, 3)).get(),
               InvalidArgument);
  EXPECT_THROW(
      server.submit(query::Query::similar_probe(std::vector<double>(3, 1.0), 3)).get(),
      InvalidArgument);
  EXPECT_EQ(server.stats().rejected, 3u);

  // The world is still healthy and answers a valid query.
  EXPECT_EQ(server.submit(query::Query::similar_doc(5, 4)).get().hits.size(), 4u);

  server.stop();
  server.join();
}

TEST(ServeTest, ReloadInvalidatesCacheAndKeepsAnswersIdentical) {
  const auto bundle = make_bundle("reload");
  const auto q = query::Query::similar_doc(7, 5);
  const auto expected = oneshot_answers(bundle, {q}, 1)[0];

  ServeOptions options;
  options.procs = 2;
  options.batch_deadline = std::chrono::milliseconds(1);
  Server server(bundle, options);
  server.start();

  EXPECT_EQ(format_result(server.submit(q).get()), expected);
  EXPECT_EQ(format_result(server.submit(q).get()), expected);  // cache hit
  EXPECT_EQ(server.stats().cache.hits, 1u);

  server.reload(bundle).get();  // same bundle; the cache must still flush
  const auto stats = server.stats();
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_GE(stats.cache.invalidations, 1u);
  EXPECT_EQ(stats.cache.entries, 0u);

  // Re-answered by a fresh sweep, still bit-identical.
  EXPECT_EQ(format_result(server.submit(q).get()), expected);
  EXPECT_EQ(server.stats().cache.misses, 2u);

  server.stop();
  server.join();
}

TEST(ServeTest, ReloadOfMissingBundleFailsWithoutKillingTheDaemon) {
  const auto bundle = make_bundle("reloadbad");
  ServeOptions options;
  options.procs = 2;
  options.batch_deadline = std::chrono::milliseconds(1);
  Server server(bundle, options);
  server.start();

  EXPECT_THROW(server.reload(fresh_path("nonexistent", ".svab")).get(), Error);
  EXPECT_EQ(server.stats().reloads, 0u);
  // Still serving off the original bundle.
  EXPECT_EQ(server.submit(query::Query::similar_doc(3, 2)).get().hits.size(), 2u);

  server.stop();
  server.join();
}

TEST(ServeTest, CleanShutdownMidBatch) {
  const auto bundle = make_bundle("shutdown");
  ServeOptions options;
  options.procs = 2;
  options.batch_max = 4;
  options.batch_deadline = std::chrono::milliseconds(20);
  options.cache_capacity = 0;
  Server server(bundle, options);
  server.start();

  // Flood, then yank the world out mid-flight: every future must resolve
  // (answer or clean failure) and join() must not report a fault.
  const auto queries = mixed_queries(64);
  std::vector<std::future<query::QueryResult>> futures;
  futures.reserve(queries.size());
  for (const auto& q : queries) futures.push_back(server.submit(q));
  server.stop_now();

  std::size_t answered = 0;
  std::size_t failed = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++answered;
    } catch (const Error&) {
      ++failed;
    }
  }
  EXPECT_EQ(answered + failed, queries.size());
  EXPECT_NO_THROW(server.join());
  EXPECT_FALSE(server.running());

  // Late submissions fail fast instead of hanging.
  EXPECT_THROW(server.submit(query::Query::similar_doc(1, 2)).get(), Error);
}

TEST(ServeTest, GracefulStopDrainsQueuedQueries) {
  const auto bundle = make_bundle("drain");
  ServeOptions options;
  options.procs = 2;
  options.batch_max = 8;
  options.batch_deadline = std::chrono::milliseconds(50);
  options.cache_capacity = 0;  // a repeated query must still be swept
  Server server(bundle, options);
  server.start();

  const auto queries = mixed_queries(12);
  std::vector<std::future<query::QueryResult>> futures;
  for (const auto& q : queries) futures.push_back(server.submit(q));
  server.stop();   // graceful: everything already admitted must answer
  server.join();

  for (auto& f : futures) EXPECT_NO_THROW((void)f.get());
  EXPECT_EQ(server.stats().queries_swept, queries.size());
}

// ---- socket ingress end to end -----------------------------------------

TEST(ServeTest, SocketIngressAnswersProtocolLines) {
  const auto bundle = make_bundle("socket");
  const auto q = query::Query::similar_doc(4, 3);
  const auto expected = oneshot_answers(bundle, {q}, 1)[0];

  ServeOptions options;
  options.procs = 2;
  options.batch_deadline = std::chrono::milliseconds(1);
  Server server(bundle, options);
  server.start();
  SocketIngress ingress(server, fresh_path("sock", ".sock"));
  ingress.start();

  const auto responses = client_roundtrip(
      ingress.path(), {"ping", "similar 4 3", "similar 4 3", "# comment", "",
                       "similar 3 5 oops", "stats"});
  ASSERT_EQ(responses.size(), 5u);  // blank + comment get no response
  EXPECT_EQ(responses[0], "ok pong");
  EXPECT_EQ(responses[1], expected);
  EXPECT_EQ(responses[2], expected);  // served from cache, bit-identical
  EXPECT_EQ(responses[3].rfind("error ", 0), 0u);
  EXPECT_EQ(responses[4].rfind("ok stats ", 0), 0u);
  EXPECT_NE(responses[4].find("cache_hits=1"), std::string::npos);

  // Concurrent clients coalesce through the same admission scheduler.
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      const auto r = client_roundtrip(
          ingress.path(), {"similar " + std::to_string(10 + c) + " 4"});
      if (r.size() == 1 && r[0].rfind("ok ", 0) == 0) ok.fetch_add(1);
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), 4);

  const auto shutdown = client_roundtrip(ingress.path(), {"shutdown"});
  EXPECT_EQ(shutdown[0], "ok shutting-down");
  EXPECT_TRUE(ingress.shutdown_requested());
  server.join();
  ingress.stop();
}

// ---- delta ingest through the daemon ------------------------------------

/// A bundle carrying the frozen model/vocab/config sections (a real
/// Engine::run, unlike the synthetic make_bundle exports) — the kind
/// `ingest` can extend — plus a docs file with a few extra documents of
/// the same family, one per line.
struct IngestFixture {
  std::filesystem::path bundle = fresh_path("ingestbase", ".svab");
  std::filesystem::path docs = fresh_path("newdocs", ".txt");
  std::uint64_t base_records = 0;
  std::size_t num_new = 0;

  IngestFixture() {
    corpus::CorpusSpec spec;
    spec.kind = corpus::CorpusKind::kPubMedLike;
    spec.seed = 555;
    spec.target_bytes = 32 << 10;
    spec.core_vocabulary = 700;
    spec.num_themes = 4;
    spec.theme_vocabulary = 50;
    spec.theme_token_fraction = 0.3;
    const corpus::GeneratedReader reader(spec);
    engine::EngineConfig config;
    config.topicality.num_major_terms = 100;
    config.kmeans.k = 4;
    engine::Engine engine(config);
    engine::PipelineOptions options;
    options.export_bundle = bundle;
    ga::spmd_run(2, [&](ga::Context& ctx) {
      const auto r = engine.run(ctx, reader, options);
      if (ctx.rank() == 0) base_records = r->num_records;
    });

    corpus::CorpusSpec extra = spec;
    extra.seed = 556;
    extra.target_bytes = 3 << 10;
    const auto docs_set = corpus::generate_corpus(extra);
    num_new = docs_set.size();
    std::ofstream out(docs);
    for (std::size_t i = 0; i < docs_set.size(); ++i) {
      std::string line;
      for (const auto& field : docs_set[i].fields) {
        line += field.text;
        line += ' ';
      }
      for (char& ch : line) {
        if (ch == '\n' || ch == '\r') ch = ' ';
      }
      out << line << "\n";
    }
  }
};

const IngestFixture& ingest_fixture() {
  static const IngestFixture f;
  return f;
}

TEST(ServeTest, StatsResponseCarriesReloadAndGenerationCounters) {
  const auto bundle = make_bundle("statsgen");
  ServeOptions options;
  options.procs = 2;
  options.batch_deadline = std::chrono::milliseconds(1);
  Server server(bundle, options);
  server.start();

  const auto before = format_stats(server.stats());
  // The world identity leads the line: which transport backend is
  // serving and at what world size.
  EXPECT_NE(before.find(" backend=thread"), std::string::npos) << before;
  EXPECT_NE(before.find(" world_size=2"), std::string::npos) << before;
  EXPECT_NE(before.find(" reloads=0"), std::string::npos) << before;
  EXPECT_NE(before.find(" ingests=0"), std::string::npos) << before;
  EXPECT_NE(before.find(" generation=0"), std::string::npos) << before;
  // The failure plane reports even when nothing has failed.
  EXPECT_NE(before.find(" world_failures=0"), std::string::npos) << before;
  EXPECT_NE(before.find(" respawns=0"), std::string::npos) << before;
  EXPECT_NE(before.find(" in_flight_failed=0"), std::string::npos) << before;
  EXPECT_NE(before.find(" deadline_expired=0"), std::string::npos) << before;
  EXPECT_NE(before.find(" client_retries=0"), std::string::npos) << before;
  EXPECT_NE(before.find(" last_failure=none"), std::string::npos) << before;

  // A client announcing a retry bumps the counter through either ingress.
  bool shutdown = false;
  EXPECT_EQ(process_request_line(server, "# retry 1", &shutdown), "");
  const auto retried = format_stats(server.stats());
  EXPECT_NE(retried.find(" client_retries=1"), std::string::npos) << retried;

  server.reload(bundle).get();
  const auto after = format_stats(server.stats());
  EXPECT_NE(after.find(" reloads=1"), std::string::npos) << after;
  EXPECT_NE(after.find(" generation=0"), std::string::npos) << after;  // still gen 0

  server.stop();
  server.join();
}

TEST(ServeTest, IngestVerbAdvancesTheGenerationOverTheWire) {
  const IngestFixture& f = ingest_fixture();
  ServeOptions options;
  options.procs = 2;
  options.batch_deadline = std::chrono::milliseconds(1);
  Server server(f.bundle, options);
  server.start();
  EXPECT_EQ(server.num_documents(), f.base_records);
  SocketIngress ingress(server, fresh_path("ingest_sock", ".sock"));
  ingress.start();

  const auto out = fresh_path("ingest_gen1", ".svab");
  const auto responses = client_roundtrip(
      ingress.path(),
      {"stats", "ingest " + f.docs.string() + " " + out.string(), "stats",
       // The first NEW document must be queryable after the swap.
       "similar " + std::to_string(f.base_records) + " 3"});
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_NE(responses[0].find(" generation=0"), std::string::npos) << responses[0];
  EXPECT_EQ(responses[1].rfind("ok ingested generation=1 added=" +
                                   std::to_string(f.num_new) + " recluster=",
                               0),
            0u)
      << responses[1];
  EXPECT_NE(responses[2].find(" ingests=1"), std::string::npos) << responses[2];
  EXPECT_NE(responses[2].find(" generation=1"), std::string::npos) << responses[2];
  EXPECT_EQ(responses[3].rfind("ok similar", 0), 0u) << responses[3];
  EXPECT_EQ(server.num_documents(), f.base_records + f.num_new);
  EXPECT_TRUE(std::filesystem::exists(out));

  ingress.stop();
  server.stop();
  server.join();
  std::filesystem::remove(out);
}

TEST(ServeTest, IngestOfMissingDocsFileFailsWithoutKillingTheDaemon) {
  const IngestFixture& f = ingest_fixture();
  ServeOptions options;
  options.procs = 2;
  options.batch_deadline = std::chrono::milliseconds(1);
  Server server(f.bundle, options);
  server.start();

  EXPECT_THROW(
      server.ingest(fresh_path("nodocs", ".txt"), fresh_path("noout", ".svab")).get(),
      Error);
  EXPECT_EQ(server.stats().ingests, 0u);
  EXPECT_EQ(server.stats().generation, 0u);
  // Still serving the old generation.
  EXPECT_EQ(server.submit(query::Query::similar_doc(3, 2)).get().hits.size(), 2u);

  server.stop();
  server.join();
}

TEST(ServeTest, FileQueueIngressAnswersRequestFiles) {
  const auto bundle = make_bundle("spool");
  const auto q = query::Query::similar_doc(2, 3);
  const auto expected = oneshot_answers(bundle, {q}, 1)[0];

  ServeOptions options;
  options.procs = 2;
  options.batch_deadline = std::chrono::milliseconds(1);
  Server server(bundle, options);
  server.start();

  const auto spool = std::filesystem::path(::testing::TempDir()) /
                     ("sva_serve_spool_" + std::to_string(::getpid()));
  std::filesystem::remove_all(spool);
  FileQueueIngress ingress(server, spool, std::chrono::milliseconds(5));
  ingress.start();

  // Drop a request file (write-then-rename, as a client would).
  const auto req = spool / "job1.req";
  {
    std::ofstream out(spool / "job1.part");
    out << "similar 2 3\nping\n";
  }
  std::filesystem::rename(spool / "job1.part", req);

  const auto resp = spool / "job1.resp";
  for (int i = 0; i < 400 && !std::filesystem::exists(resp); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(std::filesystem::exists(resp)) << "spool response never appeared";
  std::ifstream in(resp);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, expected);
  EXPECT_EQ(line2, "ok pong");
  EXPECT_FALSE(std::filesystem::exists(req));  // consumed

  ingress.stop();
  server.stop();
  server.join();
}

}  // namespace
}  // namespace sva::serve
