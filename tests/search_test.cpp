// Tests for the TermSearcher query facade: postings lookups, conjunctive
// intersection and tf-idf ranking against a hand-built corpus whose
// correct answers are known by construction, across processor counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "sva/index/search.hpp"
#include "sva/text/scanner.hpp"

namespace sva::index {
namespace {

/// Six tiny documents with a fully known term/record incidence.
corpus::SourceSet search_corpus() {
  corpus::SourceSet s;
  const std::vector<std::string> bodies = {
      "parallel visual analytics engine",          // 0
      "parallel text engine scaling",              // 1
      "visual landscape of themes",                // 2
      "text clustering and projection engine",     // 3
      "parallel clustering at terabyte scaling",   // 4
      "landscape projection themes parallel",      // 5
  };
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    corpus::RawDocument d;
    d.id = i;
    d.fields.push_back({"body", bodies[i]});
    s.add(std::move(d));
  }
  return s;
}

text::TokenizerConfig plain_tokenizer() {
  text::TokenizerConfig c;
  c.use_stopwords = true;  // "of", "and", "at" drop out
  c.min_length = 2;
  return c;
}

/// Builds the searcher inside an SPMD region and hands it to `probe`.
void with_searcher(int nprocs,
                   const std::function<void(ga::Context&, const TermSearcher&)>& probe) {
  const auto sources = search_corpus();
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, plain_tokenizer());
    auto r = build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    const TermSearcher searcher(std::move(r.index), std::move(r.stats), scan.vocabulary);
    probe(ctx, searcher);
    ctx.barrier();
  });
}

class SearchProcsTest : public ::testing::TestWithParam<int> {};

TEST_P(SearchProcsTest, PostingsMatchIncidence) {
  with_searcher(GetParam(), [](ga::Context& ctx, const TermSearcher& s) {
    EXPECT_EQ(s.postings(ctx, "parallel"), (std::vector<std::int64_t>{0, 1, 4, 5}));
    EXPECT_EQ(s.postings(ctx, "visual"), (std::vector<std::int64_t>{0, 2}));
    EXPECT_EQ(s.postings(ctx, "engine"), (std::vector<std::int64_t>{0, 1, 3}));
    EXPECT_EQ(s.postings(ctx, "themes"), (std::vector<std::int64_t>{2, 5}));
  });
}

TEST_P(SearchProcsTest, UnknownTermIsEmptyNotError) {
  with_searcher(GetParam(), [](ga::Context& ctx, const TermSearcher& s) {
    EXPECT_TRUE(s.postings(ctx, "nonexistent").empty());
    EXPECT_EQ(s.doc_frequency(ctx, "nonexistent"), 0);
  });
}

TEST_P(SearchProcsTest, DocFrequencyMatchesPostingsSize) {
  with_searcher(GetParam(), [](ga::Context& ctx, const TermSearcher& s) {
    for (const char* term : {"parallel", "visual", "engine", "scaling", "landscape"}) {
      EXPECT_EQ(static_cast<std::size_t>(s.doc_frequency(ctx, term)),
                s.postings(ctx, term).size())
          << term;
    }
  });
}

TEST_P(SearchProcsTest, ConjunctiveIntersects) {
  with_searcher(GetParam(), [](ga::Context& ctx, const TermSearcher& s) {
    EXPECT_EQ(s.conjunctive(ctx, {"parallel", "engine"}),
              (std::vector<std::int64_t>{0, 1}));
    EXPECT_EQ(s.conjunctive(ctx, {"landscape", "themes", "projection"}),
              (std::vector<std::int64_t>{5}));
    EXPECT_TRUE(s.conjunctive(ctx, {"visual", "terabyte"}).empty());
  });
}

TEST_P(SearchProcsTest, ConjunctiveWithUnknownTermIsEmpty) {
  with_searcher(GetParam(), [](ga::Context& ctx, const TermSearcher& s) {
    EXPECT_TRUE(s.conjunctive(ctx, {"parallel", "nonexistent"}).empty());
  });
}

TEST_P(SearchProcsTest, RankedPrefersRareTerms) {
  with_searcher(GetParam(), [](ga::Context& ctx, const TermSearcher& s) {
    // "terabyte" appears only in doc 4; "parallel" is common.  Doc 4
    // matches both, so it must outrank docs matching "parallel" alone.
    const auto hits = s.ranked(ctx, {"parallel", "terabyte"}, 6);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits[0].record, 4);
    for (std::size_t i = 1; i < hits.size(); ++i) {
      EXPECT_GE(hits[i - 1].score, hits[i].score);
    }
  });
}

TEST_P(SearchProcsTest, RankedHonorsTopK) {
  with_searcher(GetParam(), [](ga::Context& ctx, const TermSearcher& s) {
    EXPECT_LE(s.ranked(ctx, {"parallel", "engine", "themes"}, 2).size(), 2u);
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, SearchProcsTest, ::testing::Values(1, 2, 3));

TEST(SearchTest, AnyRankCanServeQueriesIdentically) {
  // One-sided GA reads mean every rank can answer without coordination —
  // the "multiple concurrent users" story.  All ranks must agree.
  const auto sources = search_corpus();
  auto per_rank = std::make_shared<std::vector<std::vector<std::int64_t>>>(4);
  ga::spmd_run(4, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, plain_tokenizer());
    auto r = build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    const TermSearcher s(std::move(r.index), std::move(r.stats), scan.vocabulary);
    ctx.barrier();
    (*per_rank)[static_cast<std::size_t>(ctx.rank())] = s.conjunctive(ctx, {"parallel"});
    ctx.barrier();
  });
  for (int r = 1; r < 4; ++r) {
    EXPECT_EQ((*per_rank)[0], (*per_rank)[static_cast<std::size_t>(r)]);
  }
}

}  // namespace
}  // namespace sva::index
