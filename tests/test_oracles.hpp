// Serial reference implementations ("oracles") the parallel pipeline is
// validated against.  Deliberately naive and obviously correct.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sva/corpus/document.hpp"
#include "sva/text/tokenizer.hpp"

namespace sva::testing {

/// Serial scan: canonical (sorted) vocabulary plus per-document/field term
/// ids and global statistics.
struct SerialScan {
  std::vector<std::string> vocabulary;                 // sorted
  std::map<std::string, std::int64_t> term_to_id;     // canonical
  // doc -> field -> canonical term ids in occurrence order
  std::vector<std::vector<std::vector<std::int64_t>>> doc_field_terms;
  std::vector<std::string> field_type_names;           // sorted
  std::vector<std::vector<std::int32_t>> doc_field_types;
  std::map<std::int64_t, std::int64_t> term_frequency;
  std::map<std::int64_t, std::set<std::int64_t>> term_documents;   // df sets
  std::map<std::int64_t, std::set<std::int64_t>> term_fields;      // global field ids
  std::uint64_t total_terms = 0;
};

inline SerialScan serial_scan(const corpus::SourceSet& sources,
                              const text::TokenizerConfig& config) {
  const text::Tokenizer tokenizer(config);
  SerialScan out;

  // Pass 1: tokenize, collect vocab + field names.
  std::vector<std::vector<std::vector<std::string>>> doc_field_tokens;
  std::set<std::string> vocab_set;
  std::set<std::string> field_set;
  for (const auto& doc : sources.docs()) {
    std::vector<std::vector<std::string>> fields;
    for (const auto& field : doc.fields) {
      auto tokens = tokenizer.tokenize(field.text);
      for (const auto& tok : tokens) vocab_set.insert(tok);
      field_set.insert(field.name);
      fields.push_back(std::move(tokens));
    }
    doc_field_tokens.push_back(std::move(fields));
  }

  out.vocabulary.assign(vocab_set.begin(), vocab_set.end());
  for (std::size_t i = 0; i < out.vocabulary.size(); ++i) {
    out.term_to_id[out.vocabulary[i]] = static_cast<std::int64_t>(i);
  }
  out.field_type_names.assign(field_set.begin(), field_set.end());
  std::map<std::string, std::int32_t> field_type_id;
  for (std::size_t i = 0; i < out.field_type_names.size(); ++i) {
    field_type_id[out.field_type_names[i]] = static_cast<std::int32_t>(i);
  }

  // Pass 2: ids + statistics.
  std::int64_t global_field = 0;
  for (std::size_t d = 0; d < doc_field_tokens.size(); ++d) {
    std::vector<std::vector<std::int64_t>> fields_ids;
    std::vector<std::int32_t> fields_types;
    for (std::size_t f = 0; f < doc_field_tokens[d].size(); ++f) {
      std::vector<std::int64_t> ids;
      for (const auto& tok : doc_field_tokens[d][f]) {
        const auto id = out.term_to_id.at(tok);
        ids.push_back(id);
        ++out.term_frequency[id];
        out.term_documents[id].insert(static_cast<std::int64_t>(d));
        out.term_fields[id].insert(global_field);
        ++out.total_terms;
      }
      fields_types.push_back(field_type_id.at(sources[d].fields[f].name));
      fields_ids.push_back(std::move(ids));
      ++global_field;
    }
    out.doc_field_terms.push_back(std::move(fields_ids));
    out.doc_field_types.push_back(std::move(fields_types));
  }
  return out;
}

/// A tiny hand-written corpus for precise assertions.
inline corpus::SourceSet tiny_corpus() {
  corpus::SourceSet s;
  auto add = [&](std::uint64_t id, std::vector<std::pair<std::string, std::string>> fields) {
    corpus::RawDocument d;
    d.id = id;
    for (auto& [name, text] : fields) d.fields.push_back({name, text});
    s.add(std::move(d));
  };
  add(0, {{"TI", "parallel visual analytics"}, {"AB", "scalable parallel text engine text"}});
  add(1, {{"TI", "clustering documents"}, {"AB", "kmeans clustering projects documents fast"}});
  add(2, {{"TI", "inverted file indexing"}, {"AB", "fastinv builds inverted index tables"}});
  add(3, {{"TI", "visual terrain themes"}, {"AB", "themeview terrain shows visual themes"}});
  return s;
}

}  // namespace sva::testing
