// Black-box CLI tests for the tools' argument/batch-file validation —
// the regression suite for the strtoull bugs: negative values wrapping
// to huge u64s, ERANGE silently saturating, and batch lines with
// trailing garbage being silently accepted.  Each case asserts on the
// process exit code (2 = usage error) without needing a real bundle,
// because flag and batch parsing run before anything is opened.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

/// Runs `cmd` with stdout/stderr discarded; returns the exit code
/// (-1 when the child did not exit normally).
int run(const std::string& cmd) {
  const int status = std::system((cmd + " >/dev/null 2>&1").c_str());
  if (status == -1 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

std::filesystem::path write_batch(const std::string& name, const std::string& text) {
  const auto path = std::filesystem::path(::testing::TempDir()) /
                    ("sva_cli_" + name + "_" + std::to_string(::getpid()) + ".txt");
  std::ofstream out(path);
  out << text;
  return path;
}

const std::string kQuery = SVA_QUERY_BIN;
const std::string kPipeline = SVA_PIPELINE_BIN;
const std::string kServe = SVA_SERVE_BIN;

// A bundle path is required before batch parsing; it need not exist for
// cases that must fail during argument/batch validation.
const std::string kQueryBase = kQuery + " --bundle /nonexistent.svab";

// ---- flag value parsing ------------------------------------------------

TEST(CliTest, QueryRejectsNegativeFlagValues) {
  // strtoull would have wrapped -1 to 18446744073709551615 and happily
  // queried for that document.
  EXPECT_EQ(run(kQueryBase + " --similar-doc -1"), 2);
  EXPECT_EQ(run(kQueryBase + " --topk -5 --similar-doc 1"), 2);
  EXPECT_EQ(run(kQueryBase + " --procs -2"), 2);
}

TEST(CliTest, QueryRejectsOverflowingFlagValues) {
  // One past UINT64_MAX: strtoull sets ERANGE, which was ignored.
  EXPECT_EQ(run(kQueryBase + " --similar-doc 18446744073709551616"), 2);
  // Within u64 but far past int: flags consumed as int are bounded too.
  EXPECT_EQ(run(kQueryBase + " --procs 4294967298"), 2);
  EXPECT_EQ(run(kQueryBase + " --summary 99999999999"), 2);
}

TEST(CliTest, QueryRejectsNonNumericFlagValues) {
  EXPECT_EQ(run(kQueryBase + " --topk ten --similar-doc 1"), 2);
  EXPECT_EQ(run(kQueryBase + " --similar-doc 12abc"), 2);
  EXPECT_EQ(run(kQueryBase + " --similar-doc +3"), 2);
  EXPECT_EQ(run(kQueryBase + " --similar-doc ''"), 2);
}

TEST(CliTest, PipelineRejectsBadFlagValues) {
  EXPECT_EQ(run(kPipeline + " --size-mb -4"), 2);
  EXPECT_EQ(run(kPipeline + " --seed 18446744073709551616"), 2);
  EXPECT_EQ(run(kPipeline + " --procs 4294967298"), 2);
  EXPECT_EQ(run(kPipeline + " --shards two"), 2);
}

TEST(CliTest, ServeRejectsBadFlagValues) {
  EXPECT_EQ(run(kServe + " --bundle /nonexistent.svab --batch-max -1"), 2);
  EXPECT_EQ(run(kServe + " --bundle /nonexistent.svab --batch-max 0"), 2);
  EXPECT_EQ(run(kServe + " --bundle /nonexistent.svab --deadline-us junk"), 2);
  EXPECT_EQ(run(kServe + " --bundle /nonexistent.svab --procs 0"), 2);
}

// ---- batch files -------------------------------------------------------

TEST(CliTest, BatchRejectsTrailingGarbage) {
  // The historic bug: `similar 3 5 oops` parsed as `similar 3 5`.
  const auto batch = write_batch("trailing", "similar 3 5 oops\n");
  EXPECT_EQ(run(kQueryBase + " --batch " + batch.string()), 2);
}

TEST(CliTest, BatchRejectsMalformedLinesAfterGoodOnes) {
  const auto batch = write_batch("midfile",
                                 "# fine so far\n"
                                 "similar 3 5\n"
                                 "summary 1 2 3\n");
  EXPECT_EQ(run(kQueryBase + " --batch " + batch.string()), 2);
}

TEST(CliTest, BatchRejectsNegativeAndOverflowingNumbers) {
  EXPECT_EQ(run(kQueryBase + " --batch " +
                write_batch("neg", "similar -3 5\n").string()),
            2);
  EXPECT_EQ(run(kQueryBase + " --batch " +
                write_batch("ovf", "similar 18446744073709551616 5\n").string()),
            2);
  EXPECT_EQ(run(kQueryBase + " --batch " +
                write_batch("zerok", "similar 3 0\n").string()),
            2);
}

TEST(CliTest, BatchRejectsUnknownVerbsAndEmptyFiles) {
  EXPECT_EQ(run(kQueryBase + " --batch " +
                write_batch("verb", "drill 3\n").string()),
            2);
  EXPECT_EQ(run(kQueryBase + " --batch " +
                write_batch("empty", "# only comments\n\n").string()),
            2);
  EXPECT_EQ(run(kQueryBase + " --batch /nonexistent-batch-file"), 2);
}

TEST(CliTest, HelpExitsZero) {
  EXPECT_EQ(run(kQuery + " --help"), 0);
  EXPECT_EQ(run(kPipeline + " --help"), 0);
  EXPECT_EQ(run(kServe + " --help"), 0);
}

}  // namespace
