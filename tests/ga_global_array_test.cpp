// Tests for GlobalArray: distribution arithmetic, one-sided semantics,
// atomics, and locality introspection across processor counts.
#include <gtest/gtest.h>

#include <numeric>

#include "sva/ga/global_array.hpp"

#include "test_models.hpp"

namespace sva::ga {
namespace {

class GlobalArraySweepTest : public ::testing::TestWithParam<int> {};

TEST_P(GlobalArraySweepTest, RowRangesPartitionTheArray) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    auto ga = GlobalArray<std::int64_t>::create(ctx, 103);
    std::size_t covered = 0;
    std::size_t prev_end = 0;
    for (int r = 0; r < nprocs; ++r) {
      const auto [b, e] = ga.row_range(r);
      EXPECT_EQ(b, prev_end);
      EXPECT_LE(b, e);
      covered += e - b;
      prev_end = e;
    }
    EXPECT_EQ(covered, 103u);
    EXPECT_EQ(prev_end, 103u);
  });
}

TEST_P(GlobalArraySweepTest, OwnerOfMatchesRowRange) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    auto ga = GlobalArray<double>::create(ctx, 57, 3);
    for (std::size_t i = 0; i < ga.size(); ++i) {
      const int owner = ga.owner_of(i);
      const auto [b, e] = ga.row_range(owner);
      const std::size_t row = i / 3;
      EXPECT_GE(row, b);
      EXPECT_LT(row, e);
    }
  });
}

TEST_P(GlobalArraySweepTest, PutGetRoundTripAnywhere) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    auto ga = GlobalArray<std::int64_t>::create(ctx, 200);
    // Each rank writes a disjoint strided region covering the array.
    std::vector<std::int64_t> mine;
    std::vector<std::size_t> offsets;
    for (std::size_t i = static_cast<std::size_t>(ctx.rank()); i < 200;
         i += static_cast<std::size_t>(nprocs)) {
      offsets.push_back(i);
    }
    for (std::size_t i : offsets) {
      const auto v = static_cast<std::int64_t>(i * 7 + 1);
      ga.put_value(ctx, i, v);
    }
    ctx.barrier();
    // Everyone verifies the whole array.
    const auto all = ga.to_vector(ctx);
    for (std::size_t i = 0; i < 200; ++i) {
      EXPECT_EQ(all[i], static_cast<std::int64_t>(i * 7 + 1)) << "index " << i;
    }
  });
}

TEST_P(GlobalArraySweepTest, BulkPutSpanningBlocks) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    auto ga = GlobalArray<std::int32_t>::create(ctx, 64);
    if (ctx.rank() == 0) {
      std::vector<std::int32_t> data(64);
      std::iota(data.begin(), data.end(), 0);
      ga.put(ctx, 0, data);  // spans every block
    }
    ctx.barrier();
    std::vector<std::int32_t> out(64);
    ga.get(ctx, 0, out);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  });
}

TEST_P(GlobalArraySweepTest, AccumulateSumsContributionsFromAllRanks) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    auto ga = GlobalArray<std::int64_t>::create(ctx, 40);
    std::vector<std::int64_t> ones(40, 1);
    ga.accumulate(ctx, 0, ones);
    ctx.barrier();
    const auto all = ga.to_vector(ctx);
    for (std::int64_t v : all) EXPECT_EQ(v, nprocs);
  });
}

TEST_P(GlobalArraySweepTest, FetchAddIsAtomicAcrossRanks) {
  const int nprocs = GetParam();
  constexpr int kIncrementsPerRank = 200;
  spmd_run(nprocs, [&](Context& ctx) {
    auto ga = GlobalArray<std::int64_t>::create(ctx, 1);
    std::vector<std::int64_t> seen;
    for (int i = 0; i < kIncrementsPerRank; ++i) seen.push_back(ga.fetch_add(ctx, 0, 1));
    ctx.barrier();
    EXPECT_EQ(ga.get_value(ctx, 0),
              static_cast<std::int64_t>(nprocs) * kIncrementsPerRank);
    // Claims observed by one rank are strictly increasing.
    for (std::size_t i = 1; i < seen.size(); ++i) EXPECT_GT(seen[i], seen[i - 1]);
  });
}

TEST_P(GlobalArraySweepTest, LocalSpanCoversOwnBlockExactly) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    auto ga = GlobalArray<double>::create(ctx, 31, 2);
    const auto [b, e] = ga.local_row_range(ctx);
    auto span = ga.local_span(ctx);
    EXPECT_EQ(span.size(), (e - b) * 2);
    // Local writes are visible to one-sided reads.
    for (std::size_t i = 0; i < span.size(); ++i) span[i] = static_cast<double>(ctx.rank());
    ctx.barrier();
    if (ctx.rank() == 0) {
      for (int r = 0; r < nprocs; ++r) {
        const auto [rb, re] = ga.row_range(r);
        if (rb == re) continue;
        std::vector<double> probe(2);
        ga.get(ctx, rb * 2, probe);
        EXPECT_DOUBLE_EQ(probe[0], static_cast<double>(r));
      }
    }
    ctx.barrier();
  });
}

TEST_P(GlobalArraySweepTest, MoreRanksThanRows) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    auto ga = GlobalArray<std::int64_t>::create(ctx, 2);
    if (ctx.rank() == 0) {
      ga.put_value(ctx, 0, 11);
      ga.put_value(ctx, 1, 22);
    }
    ctx.barrier();
    EXPECT_EQ(ga.get_value(ctx, 0), 11);
    EXPECT_EQ(ga.get_value(ctx, 1), 22);
    // Trailing ranks own empty blocks.
    const auto [b, e] = ga.row_range(nprocs - 1);
    if (nprocs > 2) {
      EXPECT_EQ(b, e);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, GlobalArraySweepTest, ::testing::Values(1, 2, 3, 4, 8));

TEST(GlobalArrayTest, OutOfRangeAccessThrows) {
  spmd_run(2, [](Context& ctx) {
    auto ga = GlobalArray<std::int64_t>::create(ctx, 10);
    std::vector<std::int64_t> buf(5);
    EXPECT_THROW(ga.get(ctx, 8, buf), InvalidArgument);
    EXPECT_THROW(ga.put(ctx, 11, buf), InvalidArgument);
    EXPECT_THROW((void)ga.fetch_add(ctx, 10, 1), InvalidArgument);
    ctx.barrier();
  });
}

TEST(GlobalArrayTest, TwoDimensionalShape) {
  spmd_run(2, [](Context& ctx) {
    auto ga = GlobalArray<double>::create(ctx, 6, 4);
    EXPECT_EQ(ga.rows(), 6u);
    EXPECT_EQ(ga.cols(), 4u);
    EXPECT_EQ(ga.size(), 24u);
  });
}

TEST(GlobalArrayTest, FillLocalClearsOwnBlock) {
  spmd_run(2, [](Context& ctx) {
    auto ga = GlobalArray<std::int64_t>::create(ctx, 16);
    ga.fill_local(ctx, 9);
    ctx.barrier();
    const auto all = ga.to_vector(ctx);
    for (std::int64_t v : all) EXPECT_EQ(v, 9);
  });
}

TEST(GlobalArrayTest, RemoteAccessCostsMoreVirtualTime) {
  // Modeled-cost comparison only: see test_models.hpp.
  const CommModel model = sva::testing::zero_compute_model();
  spmd_run(2, model, [](Context& ctx) {
    auto ga = GlobalArray<std::int64_t>::create(ctx, 64);
    ctx.barrier();
    if (ctx.rank() == 0) {
      const auto [b, e] = ga.row_range(0);
      const auto [rb, re] = ga.row_range(1);
      std::vector<std::int64_t> buf(4);
      const double t0 = ctx.vtime();
      ga.get(ctx, b, buf);
      const double local_cost = ctx.vtime() - t0;
      const double t1 = ctx.vtime();
      ga.get(ctx, rb, buf);
      const double remote_cost = ctx.vtime() - t1;
      EXPECT_GT(remote_cost, local_cost);
      (void)e;
      (void)re;
    }
    ctx.barrier();
  });
}


// ---- element-list operations (NGA_Gather / NGA_Scatter / Scatter_acc) ------

class ElementListSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ElementListSweepTest, GatherReadsArbitraryElements) {
  spmd_run(GetParam(), [](Context& ctx) {
    auto a = GlobalArray<std::int64_t>::create(ctx, 100);
    // Every rank writes its own block as identity values.
    auto span = a.local_span(ctx);
    const auto [b, e] = a.local_row_range(ctx);
    for (std::size_t i = 0; i < span.size(); ++i) span[i] = static_cast<std::int64_t>(b + i);
    ctx.barrier();

    // Strided, unordered, cross-block index list.
    const std::vector<std::size_t> idx = {99, 0, 57, 3, 42, 42, 88, 11};
    std::vector<std::int64_t> out(idx.size());
    a.gather(ctx, idx, out);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<std::int64_t>(idx[i]));
    }
    ctx.barrier();
  });
}

TEST_P(ElementListSweepTest, ScatterWritesArbitraryElements) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    auto a = GlobalArray<std::int64_t>::create(ctx, 64);
    ctx.barrier();
    // Each rank scatters to a disjoint index set: value = 1000*rank + i.
    std::vector<std::size_t> idx;
    std::vector<std::int64_t> val;
    for (std::size_t i = static_cast<std::size_t>(ctx.rank()); i < 64;
         i += static_cast<std::size_t>(ctx.nprocs())) {
      idx.push_back(i);
      val.push_back(static_cast<std::int64_t>(1000 * ctx.rank() + static_cast<int>(i)));
    }
    a.scatter(ctx, idx, val);
    ctx.barrier();
    const auto all = a.to_vector(ctx);
    for (std::size_t i = 0; i < 64; ++i) {
      const auto owner = static_cast<std::int64_t>(i % static_cast<std::size_t>(nprocs));
      EXPECT_EQ(all[i], 1000 * owner + static_cast<std::int64_t>(i));
    }
    ctx.barrier();
  });
}

TEST_P(ElementListSweepTest, ScatterAccSumsAcrossRanks) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [](Context& ctx) {
    auto a = GlobalArray<std::int64_t>::create(ctx, 40);
    ctx.barrier();
    // Every rank accumulates +1 into every element, with duplicates: the
    // index list hits each element twice.
    std::vector<std::size_t> idx;
    std::vector<std::int64_t> val;
    for (std::size_t pass = 0; pass < 2; ++pass) {
      for (std::size_t i = 0; i < 40; ++i) {
        idx.push_back(i);
        val.push_back(1);
      }
    }
    a.scatter_acc(ctx, idx, val);
    ctx.barrier();
    const auto all = a.to_vector(ctx);
    for (std::size_t i = 0; i < 40; ++i) {
      EXPECT_EQ(all[i], 2 * ctx.nprocs()) << "element " << i;
    }
    ctx.barrier();
  });
}

TEST_P(ElementListSweepTest, FetchAddBatchReservesDisjointSlots) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [](Context& ctx) {
    constexpr std::size_t kCounters = 8;
    constexpr std::int64_t kPerRank = 5;
    auto a = GlobalArray<std::int64_t>::create(ctx, kCounters);
    ctx.barrier();
    std::vector<std::size_t> idx(kCounters);
    std::iota(idx.begin(), idx.end(), 0);
    const std::vector<std::int64_t> delta(kCounters, kPerRank);
    const auto prev = a.fetch_add_batch(ctx, idx, delta);
    // Every reservation must be a multiple of kPerRank (slots disjoint).
    for (const auto p : prev) EXPECT_EQ(p % kPerRank, 0);
    ctx.barrier();
    const auto all = a.to_vector(ctx);
    for (const auto v : all) EXPECT_EQ(v, kPerRank * ctx.nprocs());
    ctx.barrier();
  });
}

TEST_P(ElementListSweepTest, FetchAddBatchDuplicatesObserveEachOther) {
  spmd_run(GetParam(), [](Context& ctx) {
    auto a = GlobalArray<std::int64_t>::create(ctx, 4);
    ctx.barrier();
    if (ctx.rank() == 0) {
      // Same index three times in one batch: prev values must step.
      const std::vector<std::size_t> idx = {2, 2, 2};
      const std::vector<std::int64_t> delta = {10, 10, 10};
      const auto prev = a.fetch_add_batch(ctx, idx, delta);
      EXPECT_EQ(prev[0], 0);
      EXPECT_EQ(prev[1], 10);
      EXPECT_EQ(prev[2], 20);
    }
    ctx.barrier();
    EXPECT_EQ(a.get_value(ctx, 2), 30);
    ctx.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, ElementListSweepTest, ::testing::Values(1, 2, 3, 4, 8));

TEST(ElementListTest, SizeMismatchThrows) {
  spmd_run(1, [](Context& ctx) {
    auto a = GlobalArray<std::int64_t>::create(ctx, 10);
    const std::vector<std::size_t> idx = {1, 2};
    std::vector<std::int64_t> one(1);
    EXPECT_THROW(a.gather(ctx, idx, one), Error);
    EXPECT_THROW(a.scatter(ctx, idx, one), Error);
    EXPECT_THROW((void)a.fetch_add_batch(ctx, idx, one), Error);
  });
}

TEST(ElementListTest, OutOfRangeIndexThrows) {
  spmd_run(1, [](Context& ctx) {
    auto a = GlobalArray<std::int64_t>::create(ctx, 10);
    const std::vector<std::size_t> idx = {10};
    std::vector<std::int64_t> out(1);
    EXPECT_THROW(a.gather(ctx, idx, out), Error);
  });
}

TEST(ElementListTest, EmptyListsAreNoOps) {
  spmd_run(1, [](Context& ctx) {
    auto a = GlobalArray<std::int64_t>::create(ctx, 10);
    const double t0 = ctx.vtime();
    a.gather(ctx, {}, {});
    a.scatter(ctx, {}, {});
    (void)a.fetch_add_batch(ctx, {}, {});
    EXPECT_LE(ctx.vtime() - t0, 1e-3);  // no per-owner messages charged
  });
}

TEST(ElementListTest, RemoteBatchCostsOneMessagePerOwner) {
  // A batch touching two remote blocks must cost ~2 RMW latencies, far
  // less than one per element.  Zero compute_scale so the bound sees only
  // the modeled charges (measured CPU is sanitizer-inflated).
  CommModel model;
  model.compute_scale = 0.0;
  spmd_run(4, model, [](Context& ctx) {
    auto a = GlobalArray<std::int64_t>::create(ctx, 400);
    ctx.barrier();
    if (ctx.rank() == 0) {
      // 200 indices spread over blocks owned by ranks 2 and 3.
      std::vector<std::size_t> idx;
      std::vector<std::int64_t> delta;
      for (std::size_t i = 200; i < 400; ++i) {
        idx.push_back(i);
        delta.push_back(1);
      }
      ctx.sample_compute();
      const double t0 = ctx.vtime_raw();
      (void)a.fetch_add_batch(ctx, idx, delta);
      ctx.sample_compute();
      const double elapsed = ctx.vtime_raw() - t0;
      const CommModel& m = ctx.model();
      // Lower bound: the two RMW latencies.  Upper bound: well under the
      // 200 x alpha_rmw a per-element implementation would charge.
      EXPECT_GE(elapsed, 2.0 * m.alpha_rmw * 0.99);
      EXPECT_LT(elapsed, 50.0 * m.alpha_rmw);
    }
    ctx.barrier();
  });
}

}  // namespace
}  // namespace sva::ga
