// Report-layer coverage: ComponentTimings label accounting, JSON
// emit→parse round-trips, run_record telemetry and the determinism
// ledger — including checksum stability of the EngineResult across rank
// counts, which is the property the perf-smoke CI gate enforces from the
// emitted BENCH_*.json.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "report.hpp"
#include "sva/corpus/generator.hpp"
#include "sva/engine/digest.hpp"
#include "sva/engine/pipeline.hpp"
#include "sva/util/error.hpp"

namespace svabench {
namespace {

// ---- ComponentTimings ---------------------------------------------------

TEST(ComponentTimingsTest, StageSumsEqualTotal) {
  sva::engine::ComponentTimings t;
  t.scan = 1.25;
  t.index = 0.5;
  t.topic = 0.125;
  t.am = 2.0;
  t.docvec = 0.75;
  t.clusproj = 4.5;
  double by_labels = 0.0;
  for (const auto& label : sva::engine::ComponentTimings::labels()) {
    by_labels += t.by_label(label);
  }
  EXPECT_DOUBLE_EQ(by_labels, t.total());
  EXPECT_DOUBLE_EQ(t.signature_generation(), t.topic + t.am + t.docvec);
  EXPECT_EQ(sva::engine::ComponentTimings::labels().size(), 6u);
  EXPECT_THROW((void)t.by_label("nonsense"), sva::InvalidArgument);
}

TEST(ComponentTimingsTest, RunRecordStagesSumToModeledTotal) {
  sva::corpus::CorpusSpec spec;
  spec.target_bytes = 64 << 10;
  spec.core_vocabulary = 800;
  spec.num_themes = 4;
  spec.theme_vocabulary = 60;
  const auto sources = sva::corpus::generate_corpus(spec);
  sva::engine::EngineConfig config;
  config.topicality.num_major_terms = 100;
  config.kmeans.k = 4;
  const auto run = sva::engine::run_pipeline(2, sva::ga::CommModel{}, sources, config);

  report::Report report;
  report.name = "probe";
  report.kind = "micro";
  report.title = "probe";
  const json::Value record = report::run_record(report, "probe", 2, run, sources.total_bytes());
  double stage_sum = 0.0;
  for (const auto& [label, seconds] : record.at("stages").members()) {
    stage_sum += seconds.as_double();
  }
  EXPECT_DOUBLE_EQ(stage_sum, run.result.timings.total());
  EXPECT_DOUBLE_EQ(record.at("modeled_s").as_double(), run.modeled_seconds);
  EXPECT_EQ(record.at("checksum").as_string(),
            sva::engine::checksum_hex(sva::engine::result_checksum(run.result)));
}

// ---- JSON ---------------------------------------------------------------

TEST(JsonTest, EmitParseRoundTripPreservesStructure) {
  json::Value doc = json::Value::object();
  doc["string"] = "plain";
  doc["escaped"] = std::string("quote\" slash\\ tab\t newline\n ctl\x01");
  doc["int"] = std::int64_t{-1234567890123};
  doc["double"] = 0.1;
  doc["big"] = 1.0e300;
  doc["small_int_as_double"] = 5.0;
  doc["bool_t"] = true;
  doc["bool_f"] = false;
  doc["null"] = nullptr;
  json::Value arr = json::Value::array();
  arr.push_back(1);
  arr.push_back("two");
  json::Value nested = json::Value::object();
  nested["k"] = 3.5;
  arr.push_back(std::move(nested));
  doc["arr"] = std::move(arr);

  for (const int indent : {0, 2}) {
    const std::string text = doc.dump(indent);
    const json::Value parsed = json::Value::parse(text);
    EXPECT_EQ(parsed, doc) << text;
  }
}

TEST(JsonTest, DoublesRoundTripExactly) {
  for (const double v : {0.1, 1.0 / 3.0, 6.02214076e23, -2.5e-10, 42.0}) {
    json::Value doc = json::Value::object();
    doc["v"] = v;
    const json::Value parsed = json::Value::parse(doc.dump());
    ASSERT_TRUE(parsed.at("v").is_double());
    EXPECT_EQ(parsed.at("v").as_double(), v);
  }
}

TEST(JsonTest, IntegersStayIntegers) {
  json::Value doc = json::Value::object();
  doc["v"] = std::int64_t{9007199254740993};  // not representable as double
  const json::Value parsed = json::Value::parse(doc.dump());
  ASSERT_TRUE(parsed.at("v").is_int());
  EXPECT_EQ(parsed.at("v").as_int(), 9007199254740993);
}

TEST(JsonTest, ObjectOrderIsPreserved) {
  json::Value doc = json::Value::object();
  doc["zebra"] = 1;
  doc["alpha"] = 2;
  doc["mid"] = 3;
  const json::Value parsed = json::Value::parse(doc.dump());
  ASSERT_EQ(parsed.members().size(), 3u);
  EXPECT_EQ(parsed.members()[0].first, "zebra");
  EXPECT_EQ(parsed.members()[1].first, "alpha");
  EXPECT_EQ(parsed.members()[2].first, "mid");
}

TEST(JsonTest, MalformedInputThrowsFormatError) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated",
                          "{\"a\":1} trailing", "01x", "nan", "{\"a\" 1}", "\"\\u12G4\""}) {
    EXPECT_THROW((void)json::Value::parse(bad), sva::FormatError) << bad;
  }
}

TEST(JsonTest, ParsesWhitespaceAndEscapes) {
  const json::Value v = json::Value::parse(
      " { \"a\" : [ 1 , -2.5e1 , \"x\\u0041y\" , null , true ] } ");
  const auto& arr = v.at("a").items();
  ASSERT_EQ(arr.size(), 5u);
  EXPECT_EQ(arr[0].as_int(), 1);
  EXPECT_EQ(arr[1].as_double(), -25.0);
  EXPECT_EQ(arr[2].as_string(), "xAy");
  EXPECT_TRUE(arr[3].is_null());
  EXPECT_TRUE(arr[4].as_bool());
}

// ---- Report + determinism ledger ---------------------------------------

TEST(ReportTest, DeterminismLedgerFlagsMismatches) {
  report::Report report;
  report.name = "r";
  report.kind = "figure";
  report.title = "r";
  report.record_checksum("a", 1, 7);
  report.record_checksum("a", 4, 7);
  report.record_checksum("b", 1, 1);
  EXPECT_TRUE(report.determinism_violations().empty());
  EXPECT_TRUE(report.to_json().at("determinism").at("consistent").as_bool());

  report.record_checksum("b", 4, 2);
  const auto violations = report.determinism_violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0], "b");
  EXPECT_FALSE(report.to_json().at("determinism").at("consistent").as_bool());
}

TEST(ReportTest, WriteReportEmitsParseableSchemaVersionedJson) {
  report::Report report;
  report.name = "unit_probe";
  report.kind = "micro";
  report.title = "probe";
  report.meta["smoke"] = true;
  report.data["series"] = json::Value::array();
  report.record_checksum("cfg", 1, 0xdeadbeefULL);

  const auto dir = std::filesystem::temp_directory_path() / "sva_bench_report_test";
  std::filesystem::remove_all(dir);
  const auto path = report::write_report(report, dir);
  EXPECT_EQ(path.filename().string(), "BENCH_unit_probe.json");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const json::Value doc = json::Value::parse(buffer.str());
  EXPECT_EQ(doc.at("schema_version").as_int(), report::kSchemaVersion);
  EXPECT_EQ(doc.at("name").as_string(), "unit_probe");
  EXPECT_EQ(doc.at("determinism").at("series").items().size(), 1u);
  std::filesystem::remove_all(dir);
}

// ---- checksum stability across rank counts ------------------------------

TEST(ChecksumTest, Fnv1aMatchesKnownVectors) {
  // Standard FNV-1a 64 test vectors.
  EXPECT_EQ(sva::engine::fnv1a64("", 0), 0xcbf29ce484222325ULL);
  EXPECT_EQ(sva::engine::fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(sva::engine::fnv1a64("foobar", 6), 0x85944171f73967e8ULL);
  EXPECT_EQ(sva::engine::checksum_hex(0xdeadbeefULL), "0x00000000deadbeef");
}

TEST(ChecksumTest, EngineResultChecksumStableAcrossRankCounts) {
  sva::corpus::CorpusSpec spec;
  spec.seed = 99;
  spec.target_bytes = 96 << 10;
  spec.core_vocabulary = 1000;
  spec.num_themes = 5;
  spec.theme_vocabulary = 70;
  const auto sources = sva::corpus::generate_corpus(spec);
  sva::engine::EngineConfig config;
  config.topicality.num_major_terms = 120;
  config.kmeans.k = 5;

  std::uint64_t baseline = 0;
  for (const int nprocs : {1, 2, 4}) {
    const auto run = sva::engine::run_pipeline(nprocs, sva::ga::CommModel{}, sources, config);
    const std::uint64_t checksum = sva::engine::result_checksum(run.result);
    if (nprocs == 1) {
      baseline = checksum;
    } else {
      EXPECT_EQ(checksum, baseline) << "checksum diverged at nprocs=" << nprocs;
    }
  }
  EXPECT_NE(baseline, 0u);
}

}  // namespace
}  // namespace svabench
