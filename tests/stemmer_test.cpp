// Porter stemmer conformance: the classic examples from Porter (1980)
// plus the edge conditions of each step, and integration with the
// tokenizer's stem option.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "sva/text/stemmer.hpp"
#include "sva/text/tokenizer.hpp"

namespace sva::text {
namespace {

struct Pair {
  const char* in;
  const char* out;
};

class PorterPairTest : public ::testing::TestWithParam<Pair> {};

TEST_P(PorterPairTest, StemsToExpected) {
  const auto [in, out] = GetParam();
  EXPECT_EQ(porter_stem(in), out) << "input: " << in;
}

// Step 1a (plural handling) — examples straight from the paper.
INSTANTIATE_TEST_SUITE_P(Step1a, PorterPairTest,
                         ::testing::Values(Pair{"caresses", "caress"}, Pair{"ponies", "poni"},
                                           Pair{"ties", "ti"}, Pair{"caress", "caress"},
                                           Pair{"cats", "cat"}));

// Step 1b (-eed/-ed/-ing) with the e-restoration / undoubling cleanups.
INSTANTIATE_TEST_SUITE_P(Step1b, PorterPairTest,
                         ::testing::Values(Pair{"feed", "feed"}, Pair{"agreed", "agre"},
                                           Pair{"plastered", "plaster"}, Pair{"bled", "bled"},
                                           Pair{"motoring", "motor"}, Pair{"sing", "sing"},
                                           Pair{"conflated", "conflat"},
                                           Pair{"troubled", "troubl"}, Pair{"sized", "size"},
                                           Pair{"hopping", "hop"}, Pair{"tanned", "tan"},
                                           Pair{"falling", "fall"}, Pair{"hissing", "hiss"},
                                           Pair{"fizzed", "fizz"}, Pair{"failing", "fail"},
                                           Pair{"filing", "file"}));

// Step 1c (y -> i after a vowel-bearing stem).
INSTANTIATE_TEST_SUITE_P(Step1c, PorterPairTest,
                         ::testing::Values(Pair{"happy", "happi"}, Pair{"sky", "sky"}));

// Step 2 (double-suffix conflation; fires only when m > 0).
INSTANTIATE_TEST_SUITE_P(
    Step2, PorterPairTest,
    ::testing::Values(Pair{"relational", "relat"}, Pair{"conditional", "condit"},
                      Pair{"rational", "ration"}, Pair{"valenci", "valenc"},
                      Pair{"hesitanci", "hesit"}, Pair{"digitizer", "digit"},
                      Pair{"conformabli", "conform"}, Pair{"radicalli", "radic"},
                      Pair{"differentli", "differ"}, Pair{"vileli", "vile"},
                      Pair{"analogousli", "analog"}, Pair{"vietnamization", "vietnam"},
                      Pair{"predication", "predic"}, Pair{"operator", "oper"},
                      Pair{"feudalism", "feudal"}, Pair{"decisiveness", "decis"},
                      Pair{"hopefulness", "hope"}, Pair{"callousness", "callous"},
                      Pair{"formaliti", "formal"}, Pair{"sensitiviti", "sensit"},
                      Pair{"sensibiliti", "sensibl"}));

// Step 3.
INSTANTIATE_TEST_SUITE_P(Step3, PorterPairTest,
                         ::testing::Values(Pair{"triplicate", "triplic"},
                                           Pair{"formative", "form"},
                                           Pair{"formalize", "formal"},
                                           Pair{"electriciti", "electr"},
                                           Pair{"electrical", "electr"},
                                           Pair{"hopeful", "hope"},
                                           Pair{"goodness", "good"}));

// Step 4 (single suffixes, m > 1).
INSTANTIATE_TEST_SUITE_P(
    Step4, PorterPairTest,
    ::testing::Values(Pair{"revival", "reviv"}, Pair{"allowance", "allow"},
                      Pair{"inference", "infer"}, Pair{"airliner", "airlin"},
                      Pair{"gyroscopic", "gyroscop"}, Pair{"adjustable", "adjust"},
                      Pair{"defensible", "defens"}, Pair{"irritant", "irrit"},
                      Pair{"replacement", "replac"}, Pair{"adjustment", "adjust"},
                      Pair{"dependent", "depend"}, Pair{"adoption", "adopt"},
                      Pair{"homologou", "homolog"}, Pair{"communism", "commun"},
                      Pair{"activate", "activ"}, Pair{"angulariti", "angular"},
                      Pair{"homologous", "homolog"}, Pair{"effective", "effect"},
                      Pair{"bowdlerize", "bowdler"}));

// Step 5.
INSTANTIATE_TEST_SUITE_P(Step5, PorterPairTest,
                         ::testing::Values(Pair{"probate", "probat"}, Pair{"rate", "rate"},
                                           Pair{"cease", "ceas"}, Pair{"controll", "control"},
                                           Pair{"roll", "roll"}));

// Full-word conflation classes: the motivating example of the paper.
INSTANTIATE_TEST_SUITE_P(ConnectFamily, PorterPairTest,
                         ::testing::Values(Pair{"connect", "connect"},
                                           Pair{"connected", "connect"},
                                           Pair{"connecting", "connect"},
                                           Pair{"connection", "connect"},
                                           Pair{"connections", "connect"}));

// Domain-ish vocabulary a PubMed corpus would exercise.
INSTANTIATE_TEST_SUITE_P(Medical, PorterPairTest,
                         ::testing::Values(Pair{"cellular", "cellular"},
                                           Pair{"receptors", "receptor"},
                                           Pair{"inhibition", "inhibit"},
                                           Pair{"expressed", "express"},
                                           Pair{"signaling", "signal"},
                                           Pair{"mutations", "mutat"}));

TEST(StemmerTest, ShortWordsUnchanged) {
  EXPECT_EQ(porter_stem("a"), "a");
  EXPECT_EQ(porter_stem("as"), "as");
  EXPECT_EQ(porter_stem("is"), "is");
}

TEST(StemmerTest, NonAlphaTokensUnchanged) {
  EXPECT_EQ(porter_stem("x86_64"), "x86_64");
  EXPECT_EQ(porter_stem("covid-19"), "covid-19");
  EXPECT_EQ(porter_stem("3engines"), "3engines");
}

TEST(StemmerTest, EmptyStringUnchanged) { EXPECT_EQ(porter_stem(""), ""); }

TEST(StemmerTest, IdempotentOnCommonVocabulary) {
  // Stemming a stem must be stable for conflation to be well-defined.
  const std::vector<std::string> words = {
      "connection", "relational", "adjustment", "caresses", "motoring",
      "happiness",  "electrical", "dependent",  "activate", "formalize"};
  for (const auto& w : words) {
    const std::string once = porter_stem(w);
    EXPECT_EQ(porter_stem(once), once) << "not idempotent for " << w;
  }
}

TEST(StemmerTest, InplaceMatchesCopying) {
  std::string w = "connections";
  porter_stem_inplace(w);
  EXPECT_EQ(w, porter_stem("connections"));
}

TEST(TokenizerStemTest, StemOptionConflatesVariants) {
  TokenizerConfig config;
  config.stem = true;
  const Tokenizer t(config);
  const auto tokens = t.tokenize("connected connections connecting");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "connect");
  EXPECT_EQ(tokens[1], "connect");
  EXPECT_EQ(tokens[2], "connect");
}

TEST(TokenizerStemTest, StopwordsMatchedBeforeStemming) {
  // "this" must be dropped as a stopword, not stemmed into a new term.
  TokenizerConfig config;
  config.stem = true;
  const Tokenizer t(config);
  const auto tokens = t.tokenize("this bonding");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "bond");
}

TEST(TokenizerStemTest, DisabledByDefault) {
  const Tokenizer t;
  const auto tokens = t.tokenize("connections");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "connections");
}

}  // namespace
}  // namespace sva::text
