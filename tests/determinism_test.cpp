// P-invariance determinism tests (§3, "identical products regardless of
// processor count"): the same seed and corpus spec must yield a
// byte-identical EngineResult across spmd_run rank counts {1, 2, 4, 8},
// and corpus generation itself must be a pure function of its spec.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "backend_testutil.hpp"
#include "sva/corpus/generator.hpp"
#include "sva/engine/digest.hpp"
#include "sva/engine/pipeline.hpp"

namespace sva::engine {
namespace {

corpus::CorpusSpec small_spec(corpus::CorpusKind kind) {
  corpus::CorpusSpec spec;
  spec.kind = kind;
  spec.seed = 1234;
  spec.target_bytes = 96 << 10;
  spec.core_vocabulary = 1200;
  spec.num_themes = 5;
  spec.theme_vocabulary = 80;
  spec.theme_token_fraction = 0.3;
  return spec;
}

EngineConfig small_config() {
  EngineConfig config;
  config.topicality.num_major_terms = 150;
  config.kmeans.k = 5;
  return config;
}

/// Canonical byte serialization of the deterministic products (telemetry
/// excluded); shared with the bench reports via sva/engine/digest.hpp.
std::string snapshot(const EngineResult& r) { return result_snapshot(r); }

class KindTest : public ::testing::TestWithParam<corpus::CorpusKind> {};

TEST_P(KindTest, CorpusGenerationIsDeterministic) {
  const auto spec = small_spec(GetParam());
  const auto a = corpus::generate_corpus(spec);
  const auto b = corpus::generate_corpus(spec);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    ASSERT_EQ(a[i].fields.size(), b[i].fields.size());
    for (std::size_t f = 0; f < a[i].fields.size(); ++f) {
      EXPECT_EQ(a[i].fields[f].name, b[i].fields[f].name);
      EXPECT_EQ(a[i].fields[f].text, b[i].fields[f].text);
    }
  }
}

TEST_P(KindTest, CorpusGenerationDependsOnSeed) {
  auto spec = small_spec(GetParam());
  const auto a = corpus::generate_corpus(spec);
  spec.seed += 1;
  const auto b = corpus::generate_corpus(spec);
  ASSERT_GT(a.size(), 0u);
  bool any_difference = a.size() != b.size();
  for (std::size_t i = 0; !any_difference && i < std::min(a.size(), b.size()); ++i) {
    for (std::size_t f = 0; !any_difference && f < a[i].fields.size(); ++f) {
      any_difference = f >= b[i].fields.size() || a[i].fields[f].text != b[i].fields[f].text;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST_P(KindTest, EngineResultIsByteIdenticalAcrossRankCounts) {
  const auto sources = corpus::generate_corpus(small_spec(GetParam()));
  const auto config = small_config();
  const ga::CommModel model;

  std::string baseline;
  for (const int nprocs : {1, 2, 4, 8}) {
    const PipelineRun run = run_pipeline(nprocs, model, sources, config);
    const std::string snap = snapshot(run.result);
    ASSERT_FALSE(snap.empty());
    if (nprocs == 1) {
      baseline = snap;
    } else {
      EXPECT_EQ(snap, baseline) << "EngineResult diverged at nprocs=" << nprocs;
    }
  }
}

TEST_P(KindTest, HierarchicalBackendIsByteIdenticalAcrossRankCounts) {
  const auto sources = corpus::generate_corpus(small_spec(GetParam()));
  auto config = small_config();
  config.clustering = ClusteringBackend::kHierarchical;
  config.hierarchical.k = 5;
  const ga::CommModel model;
  const std::string baseline = snapshot(run_pipeline(1, model, sources, config).result);
  ASSERT_FALSE(baseline.empty());
  for (const int nprocs : {2, 4}) {
    EXPECT_EQ(snapshot(run_pipeline(nprocs, model, sources, config).result), baseline)
        << "hierarchical EngineResult diverged at nprocs=" << nprocs;
  }
}

TEST_P(KindTest, ProcessBackendIsByteIdenticalToThreadBackend) {
  // The transport seam's acceptance bar: the same corpus through the same
  // engine must yield byte-identical products whether the ranks are
  // threads sharing a heap (ThreadTransport) or forked processes over
  // POSIX shm (ShmTransport), at every processor count.
  SVA_REQUIRE_PROCESS_BACKEND();
  const auto sources = corpus::generate_corpus(small_spec(GetParam()));
  const auto config = small_config();

  ga::SpmdOptions thread_world;
  thread_world.nprocs = 1;
  const std::string baseline = snapshot(run_pipeline(thread_world, sources, config).result);
  ASSERT_FALSE(baseline.empty());

  for (const int nprocs : {1, 2, 4}) {
    ga::SpmdOptions world;
    world.nprocs = nprocs;
    world.backend = ga::Backend::kProcess;
    EXPECT_EQ(snapshot(run_pipeline(world, sources, config).result), baseline)
        << "process-backend EngineResult diverged at nprocs=" << nprocs;
  }
}

TEST_P(KindTest, SocketBackendIsByteIdenticalToThreadBackend) {
  // Same acceptance bar for the TCP transport: byte-identical
  // EngineResults whether the ranks share a heap, fork over shm, or
  // exchange frames over loopback sockets.
  SVA_REQUIRE_SOCKET_BACKEND();
  const auto sources = corpus::generate_corpus(small_spec(GetParam()));
  const auto config = small_config();

  ga::SpmdOptions thread_world;
  thread_world.nprocs = 1;
  const std::string baseline = snapshot(run_pipeline(thread_world, sources, config).result);
  ASSERT_FALSE(baseline.empty());

  for (const int nprocs : {1, 2, 4}) {
    ga::SpmdOptions world;
    world.nprocs = nprocs;
    world.backend = ga::Backend::kSocket;
    EXPECT_EQ(snapshot(run_pipeline(world, sources, config).result), baseline)
        << "socket-backend EngineResult diverged at nprocs=" << nprocs;
  }
}

TEST_P(KindTest, EngineResultIsByteIdenticalAcrossRepeatedRuns) {
  const auto sources = corpus::generate_corpus(small_spec(GetParam()));
  const auto config = small_config();
  const ga::CommModel model;
  const std::string first = snapshot(run_pipeline(4, model, sources, config).result);
  const std::string second = snapshot(run_pipeline(4, model, sources, config).result);
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(Kinds, KindTest,
                         ::testing::Values(corpus::CorpusKind::kPubMedLike,
                                           corpus::CorpusKind::kTrecLike),
                         [](const auto& info) {
                           return info.param == corpus::CorpusKind::kPubMedLike ? "PubMedLike"
                                                                                : "TrecLike";
                         });

}  // namespace
}  // namespace sva::engine
