// Shared guard for tests that spin up Backend::kProcess (ShmTransport)
// worlds.  The process backend forks ranks, which is Linux-only and
// fundamentally incompatible with ThreadSanitizer (TSan's runtime does
// not follow fork() into a multi-threaded world) — such tests skip
// instead of failing on those configurations.
//
// Note for authors of process-backend tests: gtest EXPECT/ASSERT failures
// raised inside a non-zero rank happen in a forked child and are lost at
// its _exit.  Make in-world checks throw (sva::require) so they abort the
// world and surface in the parent; keep EXPECTs on rank 0 or outside the
// world.
#pragma once

#include <gtest/gtest.h>

#if defined(__SANITIZE_THREAD__)
#define SVA_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SVA_TEST_TSAN 1
#endif
#endif

namespace sva::testutil {

inline bool process_backend_supported() {
#if defined(__linux__) && !defined(SVA_TEST_TSAN)
  return true;
#else
  return false;
#endif
}

// The socket backend forks ranks exactly like the process backend (they
// just exchange over TCP instead of shm), so it shares the same
// platform envelope.
inline bool socket_backend_supported() { return process_backend_supported(); }

}  // namespace sva::testutil

#define SVA_REQUIRE_PROCESS_BACKEND()                                       \
  do {                                                                      \
    if (!sva::testutil::process_backend_supported()) {                      \
      GTEST_SKIP() << "Backend::kProcess requires Linux without TSan";      \
    }                                                                       \
  } while (0)

#define SVA_REQUIRE_SOCKET_BACKEND()                                        \
  do {                                                                      \
    if (!sva::testutil::socket_backend_supported()) {                       \
      GTEST_SKIP() << "Backend::kSocket requires Linux without TSan";       \
    }                                                                       \
  } while (0)
