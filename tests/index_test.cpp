// Tests for parallel FAST-INV: the inverted index must equal the
// transpose of the forward index for every processor count and every
// scheduling strategy, and term statistics must match serial counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "sva/corpus/generator.hpp"
#include "sva/corpus/lexicon.hpp"
#include "sva/index/inverted_index.hpp"
#include "test_oracles.hpp"

namespace sva::index {
namespace {

text::TokenizerConfig test_tokenizer() {
  text::TokenizerConfig c;
  c.min_length = 2;
  c.use_stopwords = false;
  return c;
}

corpus::SourceSet synthetic_corpus(std::size_t bytes = 64 << 10) {
  corpus::CorpusSpec spec;
  spec.kind = corpus::CorpusKind::kTrecLike;  // irregular docs stress LB
  spec.target_bytes = bytes;
  spec.core_vocabulary = 800;
  spec.num_themes = 4;
  spec.theme_vocabulary = 60;
  spec.giant_doc_fraction = 0.02;
  return corpus::generate_corpus(spec);
}

struct Param {
  int nprocs;
  ga::Scheduling scheduling;
};

class IndexSweepTest : public ::testing::TestWithParam<Param> {};

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string name = std::string(ga::scheduling_name(info.param.scheduling)) + "_p" +
                     std::to_string(info.param.nprocs);
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

TEST_P(IndexSweepTest, RecordPostingsMatchOracle) {
  const auto [nprocs, scheduling] = GetParam();
  const auto sources = sva::testing::tiny_corpus();
  const auto oracle = sva::testing::serial_scan(sources, test_tokenizer());

  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
    IndexingConfig config;
    config.scheduling = scheduling;
    config.chunk_fields = 2;
    const IndexingResult r =
        build_inverted_index(ctx, scan.forward, scan.vocabulary->size(), config);

    const auto offsets = r.index.record_offsets.to_vector(ctx);
    const auto postings = r.index.record_postings.to_vector(ctx);
    for (const auto& [term, docs] : oracle.term_documents) {
      const auto t = static_cast<std::size_t>(term);
      const auto begin = static_cast<std::size_t>(offsets[t]);
      const auto end = static_cast<std::size_t>(offsets[t + 1]);
      const std::set<std::int64_t> got(postings.begin() + begin, postings.begin() + end);
      EXPECT_EQ(got, docs) << "term " << scan.vocabulary->terms[t];
      EXPECT_EQ(end - begin, docs.size());  // dedup: no repeats
    }
  });
}

TEST_P(IndexSweepTest, FieldPostingsMatchOracle) {
  const auto [nprocs, scheduling] = GetParam();
  const auto sources = sva::testing::tiny_corpus();
  const auto oracle = sva::testing::serial_scan(sources, test_tokenizer());

  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
    IndexingConfig config;
    config.scheduling = scheduling;
    config.chunk_fields = 3;
    const IndexingResult r =
        build_inverted_index(ctx, scan.forward, scan.vocabulary->size(), config);

    const auto offsets = r.index.field_offsets.to_vector(ctx);
    const auto postings = r.index.field_postings.to_vector(ctx);
    for (const auto& [term, fields] : oracle.term_fields) {
      const auto t = static_cast<std::size_t>(term);
      const auto begin = static_cast<std::size_t>(offsets[t]);
      const auto end = static_cast<std::size_t>(offsets[t + 1]);
      const std::set<std::int64_t> got(postings.begin() + begin, postings.begin() + end);
      EXPECT_EQ(got, fields);
      // Postings were canonicalized (sorted) after placement.
      EXPECT_TRUE(std::is_sorted(postings.begin() + begin, postings.begin() + end));
    }
  });
}

TEST_P(IndexSweepTest, TermStatsMatchOracle) {
  const auto [nprocs, scheduling] = GetParam();
  const auto sources = sva::testing::tiny_corpus();
  const auto oracle = sva::testing::serial_scan(sources, test_tokenizer());

  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
    IndexingConfig config;
    config.scheduling = scheduling;
    const IndexingResult r =
        build_inverted_index(ctx, scan.forward, scan.vocabulary->size(), config);

    const auto tf = r.stats.term_frequency.to_vector(ctx);
    const auto df = r.stats.doc_frequency.to_vector(ctx);
    for (const auto& [term, freq] : oracle.term_frequency) {
      EXPECT_EQ(tf[static_cast<std::size_t>(term)], freq);
    }
    for (const auto& [term, docs] : oracle.term_documents) {
      EXPECT_EQ(df[static_cast<std::size_t>(term)],
                static_cast<std::int64_t>(docs.size()));
    }
    EXPECT_EQ(r.stats.num_records, sources.size());
    EXPECT_EQ(r.stats.total_occurrences, oracle.total_terms);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndexSweepTest,
    ::testing::Values(Param{1, ga::Scheduling::kOwnerFirst},
                      Param{2, ga::Scheduling::kOwnerFirst},
                      Param{3, ga::Scheduling::kOwnerFirst},
                      Param{4, ga::Scheduling::kOwnerFirst},
                      Param{8, ga::Scheduling::kOwnerFirst},
                      Param{4, ga::Scheduling::kStatic},
                      Param{4, ga::Scheduling::kAtomicCounter},
                      Param{4, ga::Scheduling::kMasterWorker}),
    param_name);

class IndexSyntheticTest : public ::testing::TestWithParam<int> {};

TEST_P(IndexSyntheticTest, PostingCountsConsistentOnSyntheticCorpus) {
  const int nprocs = GetParam();
  const auto sources = synthetic_corpus();
  const auto oracle = sva::testing::serial_scan(sources, test_tokenizer());

  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
    const IndexingResult r =
        build_inverted_index(ctx, scan.forward, scan.vocabulary->size(), {});

    std::size_t expected_record_postings = 0;
    for (const auto& [term, docs] : oracle.term_documents) {
      expected_record_postings += docs.size();
    }
    std::size_t expected_field_postings = 0;
    for (const auto& [term, fields] : oracle.term_fields) {
      expected_field_postings += fields.size();
    }
    EXPECT_EQ(r.index.total_record_postings, expected_record_postings);
    EXPECT_EQ(r.index.total_field_postings, expected_field_postings);
  });
}

TEST_P(IndexSyntheticTest, LoadBalanceReportIsComplete) {
  const int nprocs = GetParam();
  const auto sources = synthetic_corpus();
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const auto scan = text::scan_sources(ctx, sources, test_tokenizer());
    const IndexingResult r =
        build_inverted_index(ctx, scan.forward, scan.vocabulary->size(), {});
    ASSERT_EQ(r.load_balance.busy_seconds.size(), static_cast<std::size_t>(nprocs));
    ASSERT_EQ(r.load_balance.loads_claimed.size(), static_cast<std::size_t>(nprocs));
    std::int64_t total_loads = 0;
    for (auto l : r.load_balance.loads_claimed) total_loads += l;
    // The owner-first queue chunks each rank's owned range separately, so
    // the total is the sum of per-range ceilings (default chunk = 128).
    std::uint64_t expected = 0;
    for (const auto& [fb, fe] : scan.forward.rank_field_ranges) {
      expected += (fe - fb + 127) / 128;
    }
    EXPECT_EQ(static_cast<std::uint64_t>(total_loads), expected);
    EXPECT_GE(r.load_balance.imbalance(), 1.0 - 1e-9);
    EXPECT_GE(r.load_balance.max_busy(), r.load_balance.mean_busy() - 1e-12);
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, IndexSyntheticTest, ::testing::Values(1, 2, 4));

TEST(IndexTest, DynamicBeatsStaticOnSkewedLoad) {
  // With an extremely skewed corpus (one rank owns a giant document), the
  // dynamic queue's modeled placement imbalance must not exceed static's.
  corpus::SourceSet s;
  {
    corpus::RawDocument giant;
    giant.id = 0;
    std::string body;
    for (int i = 0; i < 30000; ++i) {
      body += corpus::Lexicon::word(static_cast<std::uint64_t>(i % 700));
      body += ' ';
    }
    giant.fields.push_back({"body", body});
    s.add(std::move(giant));
    for (int d = 1; d < 60; ++d) {
      corpus::RawDocument small;
      small.id = static_cast<std::uint64_t>(d);
      std::string body;
      for (int i = 0; i < 50; ++i) {
        body += corpus::Lexicon::word(static_cast<std::uint64_t>((i * d) % 700));
        body += ' ';
      }
      small.fields.push_back({"body", body});
      s.add(std::move(small));
    }
  }

  auto run = [&](ga::Scheduling scheduling) {
    auto imbalance = std::make_shared<double>(0.0);
    ga::spmd_run(4, [&](ga::Context& ctx) {
      const auto scan = text::scan_sources(ctx, s, test_tokenizer());
      IndexingConfig config;
      config.scheduling = scheduling;
      config.chunk_fields = 1;
      const auto r = build_inverted_index(ctx, scan.forward, scan.vocabulary->size(), config);
      if (ctx.rank() == 0) *imbalance = r.load_balance.imbalance();
    });
    return *imbalance;
  };

  const double dynamic_imbalance = run(ga::Scheduling::kOwnerFirst);
  const double static_imbalance = run(ga::Scheduling::kStatic);
  EXPECT_LE(dynamic_imbalance, static_imbalance + 0.05);
}

TEST(IndexTest, EmptyVocabularyThrows) {
  ga::spmd_run(1, [](ga::Context& ctx) {
    text::ForwardIndex fwd;
    EXPECT_THROW((void)build_inverted_index(ctx, fwd, 0, {}), InvalidArgument);
  });
}

}  // namespace
}  // namespace sva::index
