// Tests for knowledge-signature persistence: round trips across
// processor counts, header validation, and corruption handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "sva/sig/persist.hpp"

namespace sva::sig {
namespace {

std::filesystem::path temp_file(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

/// Builds a small deterministic SignatureSet on each rank.
SignatureSet make_set(ga::Context& ctx, std::size_t n_total, std::size_t dim) {
  const auto nprocs = static_cast<std::size_t>(ctx.nprocs());
  const std::size_t per = (n_total + nprocs - 1) / nprocs;
  const std::size_t begin = std::min(n_total, static_cast<std::size_t>(ctx.rank()) * per);
  const std::size_t end = std::min(n_total, begin + per);

  SignatureSet s;
  s.dimension = dim;
  s.docvecs = Matrix(end - begin, dim);
  for (std::size_t g = begin; g < end; ++g) {
    for (std::size_t d = 0; d < dim; ++d) {
      s.docvecs.at(g - begin, d) = static_cast<double>(g * 100 + d) * 0.25;
    }
    s.doc_ids.push_back(g);
    s.is_null.push_back(g % 7 == 3);
  }
  return s;
}

class PersistProcsTest : public ::testing::TestWithParam<int> {};

TEST_P(PersistProcsTest, RoundTripPreservesEverything) {
  const int nprocs = GetParam();
  const auto path = temp_file("sva_persist_test.bin");
  const std::vector<std::string> names = {"alpha", "beta", "gamma", "delta"};

  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const auto s = make_set(ctx, 23, 4);
    write_signatures(ctx, path.string(), s, names);
    ctx.barrier();
  });

  const PersistedSignatures store = read_signatures(path.string());
  EXPECT_EQ(store.topic_terms, names);
  EXPECT_EQ(store.size(), 23u);
  EXPECT_EQ(store.dimension(), 4u);
  // Rows are gathered rank-ordered, so global ids 0..22 in order.
  for (std::size_t g = 0; g < 23; ++g) {
    EXPECT_EQ(store.doc_ids[g], g);
    EXPECT_EQ(store.is_null[g], g % 7 == 3);
    for (std::size_t d = 0; d < 4; ++d) {
      EXPECT_DOUBLE_EQ(store.docvecs.at(g, d), static_cast<double>(g * 100 + d) * 0.25);
    }
  }
  std::filesystem::remove(path);
}

TEST_P(PersistProcsTest, FileIsIdenticalForEveryP) {
  const int nprocs = GetParam();
  const auto path_p = temp_file("sva_persist_p.bin");
  const auto path_1 = temp_file("sva_persist_1.bin");
  const std::vector<std::string> names = {"t0", "t1", "t2"};

  ga::spmd_run(1, [&](ga::Context& ctx) {
    write_signatures(ctx, path_1.string(), make_set(ctx, 17, 3), names);
  });
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    write_signatures(ctx, path_p.string(), make_set(ctx, 17, 3), names);
    ctx.barrier();
  });

  std::ifstream a(path_1, std::ios::binary);
  std::ifstream b(path_p, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)), {});
  const std::string bytes_b((std::istreambuf_iterator<char>(b)), {});
  EXPECT_EQ(bytes_a, bytes_b) << "persisted artifact must be P-invariant";
  std::filesystem::remove(path_1);
  std::filesystem::remove(path_p);
}

INSTANTIATE_TEST_SUITE_P(Procs, PersistProcsTest, ::testing::Values(1, 2, 3, 4));

TEST(PersistTest, MissingFileThrows) {
  EXPECT_THROW((void)read_signatures("/nonexistent/dir/sigs.bin"), Error);
}

TEST(PersistTest, CorruptMagicThrows) {
  const auto path = temp_file("sva_persist_corrupt.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTSIGSFILE_____garbage";
  }
  EXPECT_THROW((void)read_signatures(path.string()), Error);
  std::filesystem::remove(path);
}

TEST(PersistTest, TruncatedFileThrows) {
  const auto path = temp_file("sva_persist_trunc.bin");
  ga::spmd_run(1, [&](ga::Context& ctx) {
    write_signatures(ctx, path.string(), make_set(ctx, 9, 3), {"a", "b", "c"});
  });
  // Chop the tail off.
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  EXPECT_THROW((void)read_signatures(path.string()), Error);
  std::filesystem::remove(path);
}

TEST(PersistTest, EmptySignatureSetRoundTrips) {
  const auto path = temp_file("sva_persist_empty.bin");
  ga::spmd_run(1, [&](ga::Context& ctx) {
    SignatureSet s;
    s.dimension = 5;
    s.docvecs = Matrix(0, 5);
    write_signatures(ctx, path.string(), s, {"a", "b", "c", "d", "e"});
  });
  const auto store = read_signatures(path.string());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.dimension(), 5u);
  EXPECT_EQ(store.topic_terms.size(), 5u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sva::sig
