// The perf-regression gate (bench/compare): identical trajectories pass;
// a doctored baseline — throughput drop beyond tolerance, any modeled_s
// rise, or a determinism-checksum change — fails.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "compare.hpp"

namespace svabench::compare {
namespace {

json::Value micro_text_doc(double arena_mb_s, double scan_mb_s) {
  json::Value doc = json::Value::object();
  doc["schema_version"] = report::kSchemaVersion;
  doc["name"] = "micro_text";
  json::Value tok = json::Value::object();
  tok["arena_path_mb_s"] = arena_mb_s;
  tok["arena_speedup"] = 1.9;
  json::Value scan = json::Value::array();
  json::Value rec = json::Value::object();
  rec["procs"] = 1;
  rec["mb_s"] = scan_mb_s;
  scan.push_back(std::move(rec));
  json::Value data = json::Value::object();
  data["tokenizer"] = std::move(tok);
  data["scan"] = std::move(scan);
  doc["data"] = std::move(data);
  return doc;
}

json::Value figure_doc(double modeled_s, const std::string& checksum,
                       double modeled_throughput = 10.0) {
  json::Value doc = json::Value::object();
  doc["name"] = "fig5_overall";
  json::Value run = json::Value::object();
  run["procs"] = 4;
  run["modeled_s"] = modeled_s;
  run["throughput_mb_s"] = modeled_throughput;  // modeled, not a wall metric
  json::Value runs = json::Value::array();
  runs.push_back(std::move(run));
  json::Value data = json::Value::object();
  data["runs"] = std::move(runs);
  doc["data"] = std::move(data);

  json::Value by_procs = json::Value::object();
  by_procs["4"] = checksum;
  json::Value entry = json::Value::object();
  entry["key"] = "pubmed/S1";
  entry["checksums"] = std::move(by_procs);
  json::Value series = json::Value::array();
  series.push_back(std::move(entry));
  json::Value det = json::Value::object();
  det["consistent"] = true;
  det["series"] = std::move(series);
  doc["determinism"] = std::move(det);
  return doc;
}

TEST(CompareTest, IdenticalReportsPass) {
  CompareResult out;
  const auto doc = figure_doc(1.25, "0x0123456789abcdef");
  compare_report_documents("fig5_overall", doc, doc, {}, out);
  EXPECT_FALSE(out.failed());
  EXPECT_EQ(out.benchmarks_compared, 1);
}

TEST(CompareTest, AnyModeledRegressionFailsByDefault) {
  CompareResult out;
  compare_report_documents("fig5_overall", figure_doc(1.25, "0xaa"),
                           figure_doc(1.26, "0xaa"), {}, out);
  EXPECT_TRUE(out.failed());
}

TEST(CompareTest, ModeledToleranceAbsorbsSmallRises) {
  CompareResult out;
  CompareOptions options;
  options.modeled_tolerance = 0.05;
  compare_report_documents("fig5_overall", figure_doc(1.25, "0xaa"),
                           figure_doc(1.26, "0xaa"), options, out);
  EXPECT_FALSE(out.failed());
}

TEST(CompareTest, ModeledImprovementPasses) {
  CompareResult out;
  compare_report_documents("fig5_overall", figure_doc(1.25, "0xaa"),
                           figure_doc(1.10, "0xaa"), {}, out);
  EXPECT_FALSE(out.failed());
}

TEST(CompareTest, ChecksumChangeFails) {
  CompareResult out;
  compare_report_documents("fig5_overall", figure_doc(1.25, "0xaa"),
                           figure_doc(1.25, "0xbb"), {}, out);
  EXPECT_TRUE(out.failed());
}

TEST(CompareTest, ChecksumChangeDowngradesWhenAllowed) {
  CompareResult out;
  CompareOptions options;
  options.allow_checksum_change = true;
  compare_report_documents("fig5_overall", figure_doc(1.25, "0xaa"),
                           figure_doc(1.25, "0xbb"), options, out);
  EXPECT_FALSE(out.failed());
  EXPECT_FALSE(out.findings.empty());  // still reported
}

json::Value micro_ga_doc(double barrier_best_s, double allreduce_best_s,
                         bool with_allreduce = true) {
  json::Value doc = json::Value::object();
  doc["name"] = "micro_ga";
  json::Value series = json::Value::array();
  auto entry = [](const std::string& primitive, const std::string& config, double best_s) {
    json::Value e = json::Value::object();
    e["primitive"] = primitive;
    e["config"] = config;
    e["best_s"] = best_s;
    e["ops"] = 64.0;
    e["per_op_us"] = 1.0e6 * best_s / 64.0;
    return e;
  };
  series.push_back(entry("barrier", "P=4", barrier_best_s));
  if (with_allreduce) {
    series.push_back(entry("allreduce_sum", "P=4 n=1024", allreduce_best_s));
  }
  json::Value data = json::Value::object();
  data["series"] = std::move(series);
  doc["data"] = std::move(data);
  return doc;
}

TEST(CompareTest, MicroGaWallRiseBeyondToleranceFails) {
  CompareResult out;
  compare_report_documents("micro_ga", micro_ga_doc(1.0e-3, 1.0e-3),
                           micro_ga_doc(1.2e-3, 1.0e-3), {}, out);
  EXPECT_TRUE(out.failed());
}

TEST(CompareTest, MicroGaWallRiseWithinToleranceIsNoise) {
  CompareResult out;
  compare_report_documents("micro_ga", micro_ga_doc(1.0e-3, 1.0e-3),
                           micro_ga_doc(1.05e-3, 1.0e-3), {}, out);
  EXPECT_FALSE(out.failed());
}

TEST(CompareTest, MicroGaWallMatchesByKeyNotPosition) {
  // The current run reorders the series (allreduce first): matching by
  // (primitive, config) must not misattribute a regression.
  CompareResult out;
  json::Value cur = json::Value::object();
  cur["name"] = "micro_ga";
  json::Value series = json::Value::array();
  json::Value a = json::Value::object();
  a["primitive"] = "allreduce_sum";
  a["config"] = "P=4 n=1024";
  a["best_s"] = 1.0e-3;
  series.push_back(std::move(a));
  json::Value b = json::Value::object();
  b["primitive"] = "barrier";
  b["config"] = "P=4";
  b["best_s"] = 1.0e-3;
  series.push_back(std::move(b));
  json::Value data = json::Value::object();
  data["series"] = std::move(series);
  cur["data"] = std::move(data);
  compare_report_documents("micro_ga", micro_ga_doc(1.0e-3, 1.0e-3), cur, {}, out);
  EXPECT_FALSE(out.failed());
}

TEST(CompareTest, MicroGaConfigAbsentFromCurrentIsInformational) {
  CompareResult out;
  compare_report_documents("micro_ga", micro_ga_doc(1.0e-3, 1.0e-3),
                           micro_ga_doc(1.0e-3, 0.0, /*with_allreduce=*/false), {}, out);
  EXPECT_FALSE(out.failed());
  EXPECT_FALSE(out.findings.empty());  // still noted
}

TEST(CompareTest, MicroGaInformationalEntryReportsButNeverGates) {
  // Entries flagged informational in the baseline (the process-backend
  // axis) report their drift without failing the build.
  CompareResult out;
  auto base = micro_ga_doc(1.0e-3, 1.0e-3);
  auto cur = micro_ga_doc(1.0e-3, 1.0e-3);
  auto shm_entry = [](double best_s, bool informational) {
    json::Value e = json::Value::object();
    e["primitive"] = "barrier";
    e["config"] = "P=4 backend=process";
    e["best_s"] = best_s;
    if (informational) e["informational"] = true;
    return e;
  };
  base["data"]["series"].push_back(shm_entry(1.0e-3, true));
  cur["data"]["series"].push_back(shm_entry(5.0e-3, false));  // 5x slower
  compare_report_documents("micro_ga", base, cur, {}, out);
  EXPECT_FALSE(out.failed());
  EXPECT_FALSE(out.findings.empty());  // drift is still reported
}

TEST(CompareTest, MicroGaWallImprovementPasses) {
  CompareResult out;
  compare_report_documents("micro_ga", micro_ga_doc(1.0e-3, 1.0e-3),
                           micro_ga_doc(0.4e-3, 0.5e-3), {}, out);
  EXPECT_FALSE(out.failed());
}

json::Value micro_query_doc(double single_best_s, double batch_best_s) {
  json::Value doc = json::Value::object();
  doc["name"] = "micro_query";
  json::Value series = json::Value::array();
  auto entry = [](const std::string& plane, double best_s) {
    json::Value e = json::Value::object();
    e["primitive"] = plane;
    e["config"] = "P=2 Q=16";
    e["best_s"] = best_s;
    e["queries"] = 16.0;
    return e;
  };
  series.push_back(entry("single_queries", single_best_s));
  series.push_back(entry("batched", batch_best_s));
  json::Value data = json::Value::object();
  data["series"] = std::move(series);
  doc["data"] = std::move(data);
  return doc;
}

TEST(CompareTest, MicroQueryWallRiseBeyondToleranceFails) {
  // The serving-plane micro rides the same keyed wall gate as micro_ga.
  CompareResult out;
  compare_report_documents("micro_query", micro_query_doc(4.0e-3, 1.0e-3),
                           micro_query_doc(4.0e-3, 1.5e-3), {}, out);
  EXPECT_TRUE(out.failed());
}

TEST(CompareTest, MicroQueryWallWithinToleranceIsNoise) {
  CompareResult out;
  compare_report_documents("micro_query", micro_query_doc(4.0e-3, 1.0e-3),
                           micro_query_doc(4.1e-3, 1.05e-3), {}, out);
  EXPECT_FALSE(out.failed());
}

json::Value micro_serve_doc(double p50_s, double p95_s, double p99_s,
                            double cached_elapsed_s) {
  json::Value doc = json::Value::object();
  doc["name"] = "micro_serve";
  json::Value series = json::Value::array();
  json::Value gated = json::Value::object();
  gated["primitive"] = "coalesced";
  gated["config"] = "P=2 C=8 Q=64";
  gated["best_s"] = 2.0e-3;
  gated["p50_s"] = p50_s;
  gated["p95_s"] = p95_s;
  gated["p99_s"] = p99_s;
  series.push_back(std::move(gated));
  // The cache plane deliberately reports elapsed_s instead of best_s:
  // a few map lookups' wall time is scheduler jitter, not serving cost.
  json::Value cached = json::Value::object();
  cached["primitive"] = "cached";
  cached["config"] = "P=2 C=8 Q=64";
  cached["elapsed_s"] = cached_elapsed_s;
  series.push_back(std::move(cached));
  json::Value data = json::Value::object();
  data["series"] = std::move(series);
  doc["data"] = std::move(data);
  return doc;
}

TEST(CompareTest, MicroServeLatencyQuantileRiseBeyondToleranceFails) {
  CompareResult out;
  compare_report_documents("micro_serve", micro_serve_doc(1.0e-3, 2.0e-3, 3.0e-3, 1.0e-4),
                           micro_serve_doc(1.3e-3, 2.0e-3, 3.0e-3, 1.0e-4), {}, out);
  EXPECT_TRUE(out.failed());
}

TEST(CompareTest, MicroServeP99RiseIsInformationalOnly) {
  CompareResult out;
  compare_report_documents("micro_serve", micro_serve_doc(1.0e-3, 2.0e-3, 3.0e-3, 1.0e-4),
                           micro_serve_doc(1.0e-3, 2.0e-3, 9.0e-3, 1.0e-4), {}, out);
  EXPECT_FALSE(out.failed());
  EXPECT_FALSE(out.findings.empty());  // the tail drift is still noted
}

TEST(CompareTest, MicroServeCachedPlaneElapsedIsNotGated) {
  CompareResult out;
  compare_report_documents("micro_serve", micro_serve_doc(1.0e-3, 2.0e-3, 3.0e-3, 1.0e-4),
                           micro_serve_doc(1.0e-3, 2.0e-3, 3.0e-3, 9.0e-4), {}, out);
  EXPECT_FALSE(out.failed());
}

TEST(CompareTest, ModeledRegressionDowngradesWhenAllowed) {
  CompareResult out;
  CompareOptions options;
  options.allow_modeled_change = true;
  compare_report_documents("fig5_overall", figure_doc(1.25, "0xaa"),
                           figure_doc(1.50, "0xaa"), options, out);
  EXPECT_FALSE(out.failed());
  EXPECT_FALSE(out.findings.empty());  // still reported
}

TEST(CompareTest, ThroughputDropBeyondToleranceFails) {
  CompareResult out;
  compare_report_documents("micro_text", micro_text_doc(100.0, 50.0),
                           micro_text_doc(85.0, 50.0), {}, out);
  EXPECT_TRUE(out.failed());
}

TEST(CompareTest, ThroughputDropWithinToleranceIsNoise) {
  CompareResult out;
  compare_report_documents("micro_text", micro_text_doc(100.0, 50.0),
                           micro_text_doc(92.0, 50.0), {}, out);
  EXPECT_FALSE(out.failed());
}

TEST(CompareTest, ScanThroughputIsGatedToo) {
  CompareResult out;
  compare_report_documents("micro_text", micro_text_doc(100.0, 50.0),
                           micro_text_doc(100.0, 30.0), {}, out);
  EXPECT_TRUE(out.failed());
}

TEST(CompareTest, ModeledThroughputOutsideMicroTextIsNotWallGated) {
  // throughput_mb_s in figure reports derives from modeled time; the
  // 10% wall tolerance must not apply there (modeled_s itself is gated).
  CompareResult out;
  const auto base = figure_doc(1.25, "0xaa", 10.0);
  const auto cur = figure_doc(1.25, "0xaa", 5.0);  // -50% modeled throughput
  compare_report_documents("fig5_overall", base, cur, {}, out);
  EXPECT_FALSE(out.failed());
}

// ---- directory-level behaviour ----------------------------------------

class CompareDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs discovered cases as parallel processes.
    const std::string test =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    base_ = std::filesystem::path(::testing::TempDir()) / ("cmp_base_" + test);
    cur_ = std::filesystem::path(::testing::TempDir()) / ("cmp_cur_" + test);
    std::filesystem::remove_all(base_);
    std::filesystem::remove_all(cur_);
    std::filesystem::create_directories(base_);
    std::filesystem::create_directories(cur_);
  }

  static void write(const std::filesystem::path& dir, const std::string& name,
                    const json::Value& doc) {
    std::ofstream out(dir / ("BENCH_" + name + ".json"));
    out << doc.dump() << "\n";
  }

  std::filesystem::path base_;
  std::filesystem::path cur_;
};

TEST_F(CompareDirTest, EmptyBaselineIsBootstrapNotFailure) {
  write(cur_, "fig5_overall", figure_doc(1.0, "0xaa"));
  const CompareResult out = compare_directories(base_, cur_, {});
  EXPECT_FALSE(out.failed());
  EXPECT_EQ(out.benchmarks_compared, 0);
  ASSERT_EQ(out.findings.size(), 1u);  // the informational note
}

TEST_F(CompareDirTest, MissingCurrentBenchmarkFails) {
  write(base_, "fig5_overall", figure_doc(1.0, "0xaa"));
  const CompareResult out = compare_directories(base_, cur_, {});
  EXPECT_TRUE(out.failed());
}

TEST_F(CompareDirTest, NewCurrentBenchmarkIsIgnored) {
  write(base_, "fig5_overall", figure_doc(1.0, "0xaa"));
  write(cur_, "fig5_overall", figure_doc(1.0, "0xaa"));
  write(cur_, "ingest_sharded", figure_doc(2.0, "0xcc"));
  const CompareResult out = compare_directories(base_, cur_, {});
  EXPECT_FALSE(out.failed());
  EXPECT_EQ(out.benchmarks_compared, 1);
}

TEST_F(CompareDirTest, MalformedCurrentReportFails) {
  write(base_, "fig5_overall", figure_doc(1.0, "0xaa"));
  std::ofstream(cur_ / "BENCH_fig5_overall.json") << "{not json";
  const CompareResult out = compare_directories(base_, cur_, {});
  EXPECT_TRUE(out.failed());
}

TEST_F(CompareDirTest, DoctoredBaselineFiresTheGate) {
  // The acceptance scenario: a baseline doctored to make the current run
  // look regressed on all three axes must fail.
  write(base_, "fig5_overall", figure_doc(0.80, "0xdeadbeef"));
  write(base_, "micro_text", micro_text_doc(200.0, 100.0));
  write(cur_, "fig5_overall", figure_doc(1.0, "0xaa"));
  write(cur_, "micro_text", micro_text_doc(100.0, 100.0));
  const CompareResult out = compare_directories(base_, cur_, {});
  EXPECT_TRUE(out.failed());
  int fails = 0;
  for (const auto& f : out.findings) fails += f.fail ? 1 : 0;
  EXPECT_GE(fails, 3);  // modeled_s + checksum + throughput
}

}  // namespace
}  // namespace svabench::compare
