// Tests for agglomerative clustering (§3.5's "other types of clustering
// ... single-link, complete, and various adaptive cutting approaches")
// and the external quality metrics used by the ablation benches.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "sva/cluster/hierarchical.hpp"
#include "sva/cluster/quality.hpp"

namespace sva::cluster {
namespace {

/// Three tight, well-separated 2-D blobs with 8 points each.
Matrix three_blobs() {
  Matrix m(24, 2);
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (std::size_t i = 0; i < 24; ++i) {
    const std::size_t blob = i / 8;
    const double jitter_x = 0.1 * static_cast<double>(i % 8) / 8.0;
    const double jitter_y = 0.1 * static_cast<double>((i * 3) % 8) / 8.0;
    m.at(i, 0) = centers[blob][0] + jitter_x;
    m.at(i, 1) = centers[blob][1] + jitter_y;
  }
  return m;
}

std::vector<std::int32_t> blob_truth() {
  std::vector<std::int32_t> t(24);
  for (std::size_t i = 0; i < 24; ++i) t[i] = static_cast<std::int32_t>(i / 8);
  return t;
}

class LinkageTest : public ::testing::TestWithParam<Linkage> {};

TEST_P(LinkageTest, DendrogramHasFullMergeHistory) {
  const auto dendro = agglomerate(three_blobs(), GetParam());
  EXPECT_EQ(dendro.num_leaves, 24u);
  EXPECT_EQ(dendro.merges.size(), 23u);
}

TEST_P(LinkageTest, MergeDistancesAreMonotoneForBlobs) {
  // For well-separated blobs every linkage yields (near) monotone merge
  // distances; the cross-blob merges come last and are far larger.
  const auto dendro = agglomerate(three_blobs(), GetParam());
  const double intra_max = dendro.merges[20].distance;   // last intra-blob merge
  const double inter_min = dendro.merges[21].distance;   // first cross-blob merge
  EXPECT_GT(inter_min, 5.0 * intra_max);
}

TEST_P(LinkageTest, CutAtThreeRecoversTheBlobs) {
  const auto dendro = agglomerate(three_blobs(), GetParam());
  const auto labels = dendro.cut_to_clusters(3);
  EXPECT_NEAR(purity(labels, blob_truth()), 1.0, 1e-12);
}

TEST_P(LinkageTest, AdaptiveCutFindsThree) {
  const auto dendro = agglomerate(three_blobs(), GetParam());
  EXPECT_EQ(dendro.adaptive_cut_k(2, 12), 3u);
}

INSTANTIATE_TEST_SUITE_P(Linkages, LinkageTest,
                         ::testing::Values(Linkage::kSingle, Linkage::kComplete,
                                           Linkage::kAverage),
                         [](const ::testing::TestParamInfo<Linkage>& info) {
                           return linkage_name(info.param);
                         });

TEST(DendrogramTest, CutToOneClusterIsAllSame) {
  const auto dendro = agglomerate(three_blobs(), Linkage::kAverage);
  const auto labels = dendro.cut_to_clusters(1);
  for (const auto l : labels) EXPECT_EQ(l, labels[0]);
}

TEST(DendrogramTest, CutToNClustersIsAllDistinct) {
  const auto dendro = agglomerate(three_blobs(), Linkage::kAverage);
  auto labels = dendro.cut_to_clusters(24);
  std::sort(labels.begin(), labels.end());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(labels[i], static_cast<std::int32_t>(i));
  }
}

TEST(DendrogramTest, BadCutThrows) {
  const auto dendro = agglomerate(three_blobs(), Linkage::kAverage);
  EXPECT_THROW((void)dendro.cut_to_clusters(0), Error);
  EXPECT_THROW((void)dendro.cut_to_clusters(25), Error);
}

TEST(DendrogramTest, SinglePointDendrogram) {
  Matrix one(1, 2);
  const auto dendro = agglomerate(one, Linkage::kSingle);
  EXPECT_EQ(dendro.num_leaves, 1u);
  EXPECT_TRUE(dendro.merges.empty());
  EXPECT_EQ(dendro.cut_to_clusters(1), std::vector<std::int32_t>{0});
}

TEST(DendrogramTest, SingleVsCompleteDifferOnChains) {
  // A chain of points: single-link merges it into one elongated cluster
  // cheaply; complete-link pays the full diameter.  The final merge
  // distance must differ.
  Matrix chain(8, 1);
  for (std::size_t i = 0; i < 8; ++i) chain.at(i, 0) = static_cast<double>(i);
  const auto single = agglomerate(chain, Linkage::kSingle);
  const auto complete = agglomerate(chain, Linkage::kComplete);
  EXPECT_NEAR(single.merges.back().distance, 1.0, 1e-9);
  EXPECT_GT(complete.merges.back().distance, 3.0);
}

// ---- distributed wrapper ------------------------------------------------------

class HierarchicalProcsTest : public ::testing::TestWithParam<int> {};

TEST_P(HierarchicalProcsTest, DistributedRecoversBlobs) {
  const int nprocs = GetParam();
  const Matrix all = three_blobs();
  const auto truth = blob_truth();

  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    // Block-partition the 24 points across ranks.
    const auto per = static_cast<std::size_t>((24 + nprocs - 1) / nprocs);
    const std::size_t begin =
        std::min<std::size_t>(24, static_cast<std::size_t>(ctx.rank()) * per);
    const std::size_t end = std::min<std::size_t>(24, begin + per);
    Matrix local(end - begin, 2);
    for (std::size_t i = begin; i < end; ++i) {
      local.at(i - begin, 0) = all.at(i, 0);
      local.at(i - begin, 1) = all.at(i, 1);
    }

    HierarchicalConfig config;
    config.k = 3;
    const auto r = hierarchical_cluster(ctx, local, config);
    EXPECT_EQ(r.k, 3u);
    EXPECT_EQ(r.centroids.rows(), 3u);

    // Local points must be assigned to the blob their truth says.
    std::vector<std::int32_t> local_truth(truth.begin() + static_cast<std::ptrdiff_t>(begin),
                                          truth.begin() + static_cast<std::ptrdiff_t>(end));
    if (!local_truth.empty()) {
      EXPECT_NEAR(purity(r.assignment, local_truth), 1.0, 1e-12);
    }
    std::int64_t total = 0;
    for (const auto s : r.cluster_sizes) total += s;
    EXPECT_EQ(total, 24);
    ctx.barrier();
  });
}

TEST_P(HierarchicalProcsTest, AdaptiveKSelectsThree) {
  const int nprocs = GetParam();
  const Matrix all = three_blobs();
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const auto per = static_cast<std::size_t>((24 + nprocs - 1) / nprocs);
    const std::size_t begin =
        std::min<std::size_t>(24, static_cast<std::size_t>(ctx.rank()) * per);
    const std::size_t end = std::min<std::size_t>(24, begin + per);
    Matrix local(end - begin, 2);
    for (std::size_t i = begin; i < end; ++i) {
      local.at(i - begin, 0) = all.at(i, 0);
      local.at(i - begin, 1) = all.at(i, 1);
    }
    HierarchicalConfig config;
    config.k = 0;  // adaptive
    config.min_k = 2;
    config.max_k = 10;
    const auto r = hierarchical_cluster(ctx, local, config);
    EXPECT_EQ(r.k, 3u);
    ctx.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, HierarchicalProcsTest, ::testing::Values(1, 2, 3, 4));

// ---- quality metrics -----------------------------------------------------------

TEST(QualityTest, PerfectAssignmentScoresOne) {
  const std::vector<std::int32_t> truth = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(purity(truth, truth), 1.0, 1e-12);
  EXPECT_NEAR(normalized_mutual_information(truth, truth), 1.0, 1e-9);
}

TEST(QualityTest, LabelPermutationInvariant) {
  const std::vector<std::int32_t> truth = {0, 0, 1, 1, 2, 2};
  const std::vector<std::int32_t> permuted = {2, 2, 0, 0, 1, 1};
  EXPECT_NEAR(purity(permuted, truth), 1.0, 1e-12);
  EXPECT_NEAR(normalized_mutual_information(permuted, truth), 1.0, 1e-9);
}

TEST(QualityTest, SingleClusterAssignmentHasZeroNmi) {
  const std::vector<std::int32_t> truth = {0, 0, 1, 1, 2, 2};
  const std::vector<std::int32_t> lumped = {0, 0, 0, 0, 0, 0};
  EXPECT_NEAR(normalized_mutual_information(lumped, truth), 0.0, 1e-9);
  // Purity degenerates to the largest-class share.
  EXPECT_NEAR(purity(lumped, truth), 2.0 / 6.0, 1e-12);
}

TEST(QualityTest, PartialOverlapIsBetween) {
  const std::vector<std::int32_t> truth = {0, 0, 0, 1, 1, 1};
  const std::vector<std::int32_t> off_by_one = {0, 0, 1, 1, 1, 1};
  const double p = purity(off_by_one, truth);
  EXPECT_GT(p, 0.5);
  EXPECT_LT(p, 1.0);
  const double nmi = normalized_mutual_information(off_by_one, truth);
  EXPECT_GT(nmi, 0.0);
  EXPECT_LT(nmi, 1.0);
}

}  // namespace
}  // namespace sva::cluster
