// SocketTransport (Backend::kSocket) shard: the collectives, global
// array, hashmap and task queues under forked ranks exchanging over TCP,
// the wire-format fuzz surface (truncated / corrupted / oversized frames
// must raise named FormatError diagnostics, never a hang or a misparse),
// the injectable failure edges (ga.socket.connect/send/recv/heartbeat),
// and the multi-node rendezvous handshake over loopback.
//
// gtest EXPECTs inside a non-zero rank run in a forked child and vanish
// at its _exit, so every in-world check here throws (sva::require); the
// parent observes the failure as a world abort.  Result comparisons
// happen at rank 0, which runs on the parent's calling thread.
#include <gtest/gtest.h>

#include <csignal>
#if defined(__linux__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "backend_testutil.hpp"
#include "sva/fault/fault.hpp"
#include "sva/ga/dist_hashmap.hpp"
#include "sva/ga/global_array.hpp"
#include "sva/ga/runtime.hpp"
#include "sva/ga/task_queue.hpp"
#include "sva/util/error.hpp"
#include "sva/util/net.hpp"
#include "sva/util/wire.hpp"

namespace sva::ga {
namespace {

SpmdOptions socket_world(int nprocs) {
  SpmdOptions world;
  world.nprocs = nprocs;
  world.backend = Backend::kSocket;
  return world;
}

/// Arms the fault substrate for one test and guarantees disarm on every
/// exit path — a leaked rule would poison unrelated tests in this binary.
struct FaultGuard {
  explicit FaultGuard(const char* spec) { fault::configure(spec); }
  ~FaultGuard() { fault::reset(); }
};

/// The scripted sweep over every collective primitive from ga_shm_test,
/// factored so both the single-launcher digest and the multi-node body
/// can run it.  Returns the FNV digest of all result bytes on every rank;
/// a pure function of (P).
std::uint64_t collective_sweep(Context& ctx) {
  const int P = ctx.nprocs();
  const int rank = ctx.rank();
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const auto mix_f64 = [&](double v) { mix(std::bit_cast<std::uint64_t>(v)); };

  for (int round = 0; round < 6; ++round) {
    // Sizes sweep 1..4^5 doubles: the staged small path and the large
    // reduce-scatter + allgather wire path both get exercised.
    const std::size_t n = static_cast<std::size_t>(1) << (2 * round);
    const int root = round % P;

    std::vector<double> bcast(n, 0.0);
    if (rank == root) {
      for (std::size_t i = 0; i < n; ++i) {
        bcast[i] = 1.0 / static_cast<double>(round * 101 + i + 1);
      }
    }
    ctx.broadcast(bcast.data(), n, root);
    for (const double v : bcast) mix_f64(v);

    std::vector<double> acc(n);
    for (std::size_t i = 0; i < n; ++i) {
      acc[i] = std::sin(static_cast<double>(rank + 1)) /
               static_cast<double>(i + round + 1);
    }
    ctx.allreduce_sum(acc.data(), acc.size());
    for (const double v : acc) mix_f64(v);

    std::vector<std::int64_t> mine(static_cast<std::size_t>(rank + round + 1),
                                   static_cast<std::int64_t>(rank * 31 + round));
    const auto all = ctx.allgatherv(std::span<const std::int64_t>(mine));
    for (const auto v : all) mix(static_cast<std::uint64_t>(v));

    const auto gathered = ctx.gatherv(std::span<const std::int64_t>(mine), root);
    if (rank == root) {
      require(gathered.size() == all.size(), "gatherv size diverged from allgatherv");
    }

    const auto counts = ctx.allgather(static_cast<std::uint64_t>(mine.size()));
    require(counts.size() == static_cast<std::size_t>(P), "allgather arity");
    for (const auto c : counts) mix(c);

    mix(ctx.exscan_sum(static_cast<std::uint64_t>(rank + 1) *
                       static_cast<std::uint64_t>(round + 1)));
    ctx.barrier();
  }
  return h;
}

std::uint64_t collective_sweep_digest(Backend backend, int nprocs) {
  auto out = std::make_shared<std::uint64_t>(0);
  SpmdOptions world;
  world.nprocs = nprocs;
  world.backend = backend;
  spmd_run(world, [&](Context& ctx) {
    const std::uint64_t h = collective_sweep(ctx);
    if (ctx.rank() == 0) *out = h;
  });
  return *out;
}

TEST(GaSocketTest, BackendNameRoundTrips) {
  EXPECT_STREQ(backend_name(Backend::kSocket), "socket");
  const auto parsed = parse_backend("socket");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, Backend::kSocket);
}

TEST(GaSocketTest, CollectiveSweepMatchesThreadAndProcessBackendsBitIdentically) {
  SVA_REQUIRE_SOCKET_BACKEND();
  for (const int nprocs : {1, 2, 4}) {
    const std::uint64_t thread_digest =
        collective_sweep_digest(Backend::kThread, nprocs);
    const std::uint64_t socket_digest =
        collective_sweep_digest(Backend::kSocket, nprocs);
    EXPECT_EQ(socket_digest, thread_digest) << "nprocs=" << nprocs;
    const std::uint64_t process_digest =
        collective_sweep_digest(Backend::kProcess, nprocs);
    EXPECT_EQ(socket_digest, process_digest) << "nprocs=" << nprocs;
  }
}

TEST(GaSocketTest, GlobalArrayHashmapAndQueuesWorkUnderSocketBackend) {
  SVA_REQUIRE_SOCKET_BACKEND();
  for (const int P : {1, 2, 4}) {
    spmd_run(socket_world(P), [&](Context& ctx) {
      auto array = GlobalArray<std::int64_t>::create(ctx, 100);
      array.put_value(ctx, (ctx.rank() * 37) % 100, ctx.rank() + 1);
      ctx.barrier();
      (void)array.fetch_add(ctx, 5, 1);
      ctx.barrier();
      const auto vec = array.to_vector(ctx);
      require(vec[5] >= P, "fetch_add lost cross-rank updates");

      auto map = DistHashmap::create(ctx);
      const std::vector<std::string> terms = {"alpha", "beta",
                                              "rank" + std::to_string(ctx.rank())};
      const auto ids = map.insert_batch(ctx, terms);
      require(ids.size() == 3 && ids[0] >= 0, "insert_batch returned bad ids");
      ctx.barrier();
      const auto fin = map.finalize(ctx);
      require(fin.vocabulary->size() == static_cast<std::size_t>(2 + P),
              "replicated hashmap vocabulary diverged");

      for (const auto sched : {Scheduling::kAtomicCounter, Scheduling::kOwnerFirst,
                               Scheduling::kMasterWorker, Scheduling::kStatic}) {
        auto queue = make_task_queue(ctx, sched, 64, 4, {}, /*vtime_ordered=*/true);
        std::size_t got = 0;
        while (const auto chunk = queue->next(ctx)) got += chunk->size();
        const auto total = ctx.allreduce_sum(static_cast<std::int64_t>(got));
        require(total == 64, std::string("task queue dropped tasks under ") +
                                 scheduling_name(sched));
        ctx.barrier();
      }
    });
  }
}

TEST(GaSocketTest, MultiNodeRendezvousOverLoopbackMatchesThreadBackend) {
  SVA_REQUIRE_SOCKET_BACKEND();
#if defined(__linux__)
  // Two genuinely separate launcher processes — the forked child plays
  // the second "node" — meet at a loopback rendezvous and form one
  // 4-rank world: node 0 hosts ranks {0,1}, node 1 hosts ranks {2,3}.
  // Pick a free port by binding an ephemeral listener and releasing it.
  const int probe = net::listen_tcp("127.0.0.1", 0);
  const std::uint16_t port = net::local_port(probe);
  net::close_fd(probe);
  const std::string rendezvous = "127.0.0.1:" + std::to_string(port);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    int status = 0;
    try {
      SpmdOptions world = socket_world(4);
      world.socket_rendezvous = rendezvous;
      world.socket_node = 1;
      world.socket_nodes = 2;
      spmd_run(world, [](Context& ctx) { (void)collective_sweep(ctx); });
    } catch (...) {
      status = 1;
    }
    ::_exit(status);
  }

  auto digest = std::make_shared<std::uint64_t>(0);
  SpmdOptions world = socket_world(4);
  world.socket_rendezvous = rendezvous;
  world.socket_node = 0;
  world.socket_nodes = 2;
  spmd_run(world, [&](Context& ctx) {
    const std::uint64_t h = collective_sweep(ctx);
    if (ctx.rank() == 0) *digest = h;
  });

  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  EXPECT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0)
      << "node 1 launcher failed";
  EXPECT_EQ(*digest, collective_sweep_digest(Backend::kThread, 4));
#endif
}

TEST(GaSocketTest, InsertOrGetIsRejectedUnderSocketBackend) {
  SVA_REQUIRE_SOCKET_BACKEND();
  try {
    spmd_run(socket_world(2), [](Context& ctx) {
      auto map = DistHashmap::create(ctx);
      (void)map.insert_or_get(ctx, "term");
    });
    FAIL() << "insert_or_get succeeded under Backend::kSocket";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("insert_or_get"), std::string::npos)
        << e.what();
  }
}

TEST(GaSocketTest, AbortMidCollectiveFailsTheWholeWorld) {
  SVA_REQUIRE_SOCKET_BACKEND();
  try {
    spmd_run(socket_world(4), [](Context& ctx) {
      if (ctx.rank() == 2) throw Error("boom mid-collective");
      // The survivors sit in waits the thrower never completes; the
      // abort frame must wake and fail them rather than leave them
      // parked on the socket.
      for (int i = 0; i < 1000; ++i) ctx.barrier();
    });
    FAIL() << "world survived a mid-collective abort";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("boom mid-collective"), std::string::npos)
        << e.what();
  }
}

TEST(GaSocketTest, DeadRankFailsTheWorldWithADiagnosticInsteadOfHanging) {
  SVA_REQUIRE_SOCKET_BACKEND();
  try {
    spmd_run(socket_world(4), [](Context& ctx) {
      if (ctx.rank() == 2) ::kill(::getpid(), SIGKILL);
      for (int i = 0; i < 1000; ++i) ctx.barrier();
    });
    FAIL() << "world survived a killed rank";
  } catch (const ProtocolError& e) {
    // Either detector may win the race: the reaper ("killed by signal 9")
    // or the I/O thread seeing the half-closed socket ("connection
    // closed").  Both name the dead rank.
    EXPECT_NE(std::string(e.what()).find("rank 2 died"), std::string::npos)
        << e.what();
  }
}

TEST(GaSocketTest, OversizedContributionNamesTheFrameCap) {
  SVA_REQUIRE_SOCKET_BACKEND();
  SpmdOptions world = socket_world(2);
  world.socket_max_frame_bytes = 4096;
  try {
    spmd_run(world, [](Context& ctx) {
      std::vector<double> big(4096, 1.0);  // 32 KiB > the 4 KiB frame cap
      ctx.broadcast(big.data(), big.size(), 0);
    });
    FAIL() << "oversized contribution was accepted";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("socket_max_frame_bytes"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------
// Wire-format fuzz: the codec must reject every malformed prefix with a
// named FormatError — a misparse here would ask the transport to buffer
// garbage or deadlock a collective.

TEST(GaSocketTest, WireTruncatedHeaderIsRejectedAtEveryShorterLength) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto frame = wire::make_frame(9, 0, 3, 42, payload);
  for (std::size_t len = 0; len < wire::kFrameHeaderBytes; ++len) {
    try {
      (void)wire::decode_frame_header(
          std::span<const std::uint8_t>(frame.data(), len), 1 << 20);
      FAIL() << "truncated header of " << len << " bytes was accepted";
    } catch (const FormatError& e) {
      EXPECT_NE(std::string(e.what()).find("wire frame truncated"), std::string::npos)
          << e.what();
    }
  }
}

TEST(GaSocketTest, WireCorruptedMagicIsRejectedForEveryFlippedByte) {
  const auto frame = wire::make_frame(4, 0, 1, 7, {});
  for (std::size_t i = 0; i < 4; ++i) {
    auto bad = frame;
    bad[i] ^= 0xff;
    try {
      (void)wire::decode_frame_header(bad, 1 << 20);
      FAIL() << "corrupted magic byte " << i << " was accepted";
    } catch (const FormatError& e) {
      EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos)
          << e.what();
    }
  }
}

TEST(GaSocketTest, WireOversizedPayloadLengthIsRejected) {
  wire::FrameHeader h;
  h.type = 9;
  h.len = (1 << 20) + 1;
  std::uint8_t bytes[wire::kFrameHeaderBytes];
  wire::encode_frame_header(h, bytes);
  try {
    (void)wire::decode_frame_header(bytes, 1 << 20);
    FAIL() << "oversized payload length was accepted";
  } catch (const FormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("wire frame oversized"), std::string::npos) << what;
    EXPECT_NE(what.find("socket_max_frame_bytes"), std::string::npos) << what;
  }
}

TEST(GaSocketTest, WireFrameRoundTripsAllHeaderFields) {
  const std::vector<std::uint8_t> payload = {0xde, 0xad, 0xbe, 0xef};
  const auto frame = wire::make_frame(10, 1, 4095, 0x0102030405060708ull, payload);
  ASSERT_EQ(frame.size(), wire::kFrameHeaderBytes + payload.size());
  const auto h = wire::decode_frame_header(frame, 1 << 20);
  EXPECT_EQ(h.magic, wire::kFrameMagic);
  EXPECT_EQ(h.type, 10);
  EXPECT_EQ(h.flags, 1);
  EXPECT_EQ(h.src, 4095);
  EXPECT_EQ(h.seq, 0x0102030405060708ull);
  EXPECT_EQ(h.len, payload.size());
}

// ---------------------------------------------------------------------
// Injectable failure edges: each armed site must fail the world with a
// diagnostic naming the edge — never hang a collective.

TEST(GaSocketTest, ConnectFaultFailsTheWorldWithANamedDiagnostic) {
  SVA_REQUIRE_SOCKET_BACKEND();
  FaultGuard guard("ga.socket.connect:error:hit=1");
  try {
    spmd_run(socket_world(2), [](Context& ctx) { ctx.barrier(); });
    FAIL() << "world survived an injected connect failure";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("ga.socket.connect"), std::string::npos)
        << e.what();
  }
}

TEST(GaSocketTest, SendFaultFailsTheWorldWithANamedDiagnostic) {
  SVA_REQUIRE_SOCKET_BACKEND();
  FaultGuard guard("ga.socket.send:error:hit=1");
  try {
    spmd_run(socket_world(2), [](Context& ctx) {
      for (int i = 0; i < 100; ++i) ctx.barrier();
    });
    FAIL() << "world survived an injected send failure";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("ga.socket.send"), std::string::npos)
        << e.what();
  }
}

TEST(GaSocketTest, RecvFaultSurfacesAsAStreamCorruptionDiagnostic) {
  SVA_REQUIRE_SOCKET_BACKEND();
  FaultGuard guard("ga.socket.recv:format:hit=1");
  try {
    spmd_run(socket_world(2), [](Context& ctx) {
      for (int i = 0; i < 100; ++i) ctx.barrier();
    });
    FAIL() << "world survived an injected receive corruption";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("stream corrupt"), std::string::npos)
        << e.what();
  }
}

TEST(GaSocketTest, HeartbeatFaultFailsTheWorldWithANamedDiagnostic) {
  SVA_REQUIRE_SOCKET_BACKEND();
  FaultGuard guard("ga.socket.heartbeat:error:hit=1");
  SpmdOptions world = socket_world(2);
  world.socket_heartbeat_ms = 10;
  try {
    spmd_run(world, [](Context& ctx) {
      // Outlive the first heartbeat tick so the armed site traverses.
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      for (int i = 0; i < 1000; ++i) ctx.barrier();
    });
    FAIL() << "world survived an injected heartbeat failure";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("ga.socket.heartbeat"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace sva::ga
