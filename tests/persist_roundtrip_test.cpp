// Fuzz-style round-trip coverage for sig/persist and index/codec: many
// randomized shapes and payloads (including the edge cases the engine
// actually produces — empty corpus, single-document corpus, and
// unicode-heavy lexicons) must survive a write/read or encode/decode
// cycle bit-exactly, and malformed bytes must raise FormatError rather
// than crash or return garbage.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "sva/index/codec.hpp"
#include "sva/sig/persist.hpp"
#include "sva/util/error.hpp"

namespace sva {
namespace {

std::filesystem::path temp_file(const std::string& name) {
  return std::filesystem::temp_directory_path() / name;
}

// ---- sig/persist ------------------------------------------------------------

/// Splits `rows` rows across the world and returns this rank's shard.
sig::SignatureSet shard_rows(ga::Context& ctx, const std::vector<std::uint64_t>& doc_ids,
                             const std::vector<bool>& nulls, const Matrix& all,
                             std::size_t dim) {
  const auto nprocs = static_cast<std::size_t>(ctx.nprocs());
  const std::size_t rows = doc_ids.size();
  const std::size_t per = (rows + nprocs - 1) / nprocs;
  const std::size_t begin = std::min(rows, static_cast<std::size_t>(ctx.rank()) * per);
  const std::size_t end = std::min(rows, begin + per);

  sig::SignatureSet s;
  s.dimension = dim;
  s.docvecs = Matrix(end - begin, dim);
  for (std::size_t g = begin; g < end; ++g) {
    for (std::size_t d = 0; d < dim; ++d) s.docvecs.at(g - begin, d) = all.at(g, d);
    s.doc_ids.push_back(doc_ids[g]);
    s.is_null.push_back(nulls[g]);
  }
  return s;
}

/// Writes on a world of `nprocs` ranks, reads back serially, and checks
/// every field bit-exactly.
void roundtrip_signatures(int nprocs, std::size_t rows, std::size_t dim,
                          const std::vector<std::string>& names, std::mt19937_64& rng,
                          const std::string& tag) {
  std::vector<std::uint64_t> doc_ids(rows);
  std::vector<bool> nulls(rows);
  Matrix all(rows, dim);

  // Payload mixes ordinary values with the nasty corners of double.
  const double specials[] = {0.0, -0.0, 1.0, -1e300, 5e-324,
                             std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::denorm_min(),
                             std::numeric_limits<double>::max()};
  std::uniform_real_distribution<double> uniform(-1e6, 1e6);
  for (std::size_t i = 0; i < rows; ++i) {
    doc_ids[i] = rng();
    nulls[i] = (rng() & 1) != 0;
    for (std::size_t d = 0; d < dim; ++d) {
      all.at(i, d) = (rng() % 8 == 0) ? specials[rng() % std::size(specials)] : uniform(rng);
    }
  }

  const auto path = temp_file("sva_roundtrip_" + tag + ".bin");
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const auto s = shard_rows(ctx, doc_ids, nulls, all, dim);
    sig::write_signatures(ctx, path.string(), s, names);
  });

  const sig::PersistedSignatures store = sig::read_signatures(path.string());
  EXPECT_EQ(store.topic_terms, names);
  ASSERT_EQ(store.size(), rows);
  ASSERT_EQ(store.dimension(), dim);
  for (std::size_t i = 0; i < rows; ++i) {
    EXPECT_EQ(store.doc_ids[i], doc_ids[i]);
    EXPECT_EQ(store.is_null[i], nulls[i]);
    for (std::size_t d = 0; d < dim; ++d) {
      // Bit-exact comparison (survives NaN/-0.0, unlike operator==).
      EXPECT_EQ(std::bit_cast<std::uint64_t>(store.docvecs.at(i, d)),
                std::bit_cast<std::uint64_t>(all.at(i, d)))
          << "row " << i << " dim " << d;
    }
  }
  std::filesystem::remove(path);
}

std::vector<std::string> ascii_names(std::size_t dim) {
  std::vector<std::string> names;
  for (std::size_t j = 0; j < dim; ++j) names.push_back("term_" + std::to_string(j));
  return names;
}

TEST(PersistRoundtripTest, EmptyCorpus) {
  std::mt19937_64 rng(7);
  for (const int nprocs : {1, 2, 4}) {
    roundtrip_signatures(nprocs, 0, 3, ascii_names(3), rng, "empty");
  }
}

TEST(PersistRoundtripTest, SingleDocumentCorpus) {
  std::mt19937_64 rng(11);
  // One document, more ranks than rows: most ranks contribute nothing.
  for (const int nprocs : {1, 2, 4}) {
    roundtrip_signatures(nprocs, 1, 5, ascii_names(5), rng, "onedoc");
  }
}

TEST(PersistRoundtripTest, UnicodeHeavyLexicon) {
  std::mt19937_64 rng(13);
  // Multi-byte UTF-8, combining marks, an empty label, embedded spaces,
  // and a string of raw high bytes: the store must treat labels as bytes.
  const std::vector<std::string> names = {
      "κυτταρικός",            // Greek
      "信号伝達経路",           // CJK
      "ацетилхолин",           // Cyrillic
      "naïve-böhm",            // Latin + diacritics
      "🧬🔬",                  // astral-plane emoji
      "e\xCC\x81tude",         // combining acute accent
      "",                      // empty label
      "two words",             // embedded space
      std::string("\xFF\xFE\x80raw", 6),  // not valid UTF-8 at all
  };
  roundtrip_signatures(2, 17, names.size(), names, rng, "unicode");
}

TEST(PersistRoundtripTest, FuzzedShapes) {
  std::mt19937_64 rng(99);
  for (int iter = 0; iter < 24; ++iter) {
    const std::size_t rows = rng() % 40;
    const std::size_t dim = 1 + rng() % 12;
    std::vector<std::string> names;
    for (std::size_t j = 0; j < dim; ++j) {
      std::string name;
      const std::size_t len = rng() % 24;
      for (std::size_t c = 0; c < len; ++c) name.push_back(static_cast<char>(rng() % 256));
      names.push_back(std::move(name));
    }
    const int nprocs = 1 << (rng() % 3);
    roundtrip_signatures(nprocs, rows, dim, names, rng, "fuzz" + std::to_string(iter));
  }
}

TEST(PersistRoundtripTest, TruncatedFilesThrowFormatError) {
  std::mt19937_64 rng(21);
  const auto path = temp_file("sva_roundtrip_trunc.bin");
  roundtrip_signatures(1, 6, 4, ascii_names(4), rng, "trunc_src");

  // Rebuild a valid store, then replay every strict prefix of it.
  const auto full_path = temp_file("sva_roundtrip_full.bin");
  ga::spmd_run(1, [&](ga::Context& ctx) {
    std::vector<std::uint64_t> ids = {1, 2, 3};
    std::vector<bool> nulls = {false, true, false};
    Matrix m(3, 2);
    const auto s = shard_rows(ctx, ids, nulls, m, 2);
    sig::write_signatures(ctx, full_path.string(), s, ascii_names(2));
  });
  std::ifstream in(full_path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 8u);

  for (std::size_t cut = 0; cut < bytes.size(); cut += 3) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_THROW((void)sig::read_signatures(path.string()), Error) << "prefix " << cut;
  }
  std::filesystem::remove(path);
  std::filesystem::remove(full_path);
}

// ---- index/codec ------------------------------------------------------------

TEST(CodecRoundtripTest, FuzzedValueStreams) {
  std::mt19937_64 rng(31);
  const std::int64_t max64 = std::numeric_limits<std::int64_t>::max();
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::int64_t> values(rng() % 64);
    for (auto& v : values) {
      switch (rng() % 4) {
        case 0: v = static_cast<std::int64_t>(rng() % 2); break;        // 0/1
        case 1: v = static_cast<std::int64_t>(rng() % 128); break;      // 1 byte
        case 2: v = static_cast<std::int64_t>(rng() % 100000); break;   // mid
        default: v = max64 - static_cast<std::int64_t>(rng() % 1000);   // near max
      }
    }
    const auto bytes = index::varbyte_encode(values);
    EXPECT_EQ(index::varbyte_decode(bytes), values);
  }
}

TEST(CodecRoundtripTest, FuzzedPostingLists) {
  std::mt19937_64 rng(37);
  for (int iter = 0; iter < 200; ++iter) {
    // Strictly ascending list with random gap profile.
    std::vector<std::int64_t> postings;
    std::int64_t cur = static_cast<std::int64_t>(rng() % 1000);
    const std::size_t len = rng() % 80;
    for (std::size_t i = 0; i < len; ++i) {
      postings.push_back(cur);
      cur += 1 + static_cast<std::int64_t>(rng() % ((iter % 5 == 0) ? 1u : 1u << 20));
    }
    const auto bytes = index::encode_postings(postings);
    EXPECT_EQ(index::decode_postings(bytes), postings);
  }
}

TEST(CodecRoundtripTest, EmptyAndSingletonLists) {
  EXPECT_TRUE(index::varbyte_decode(index::varbyte_encode({})).empty());
  EXPECT_TRUE(index::decode_postings(index::encode_postings({})).empty());
  const std::vector<std::int64_t> one = {0};
  EXPECT_EQ(index::decode_postings(index::encode_postings(one)), one);
}

TEST(CodecRoundtripTest, TruncatedStreamsThrowFormatError) {
  std::mt19937_64 rng(41);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::int64_t> values(1 + rng() % 16);
    for (auto& v : values) v = static_cast<std::int64_t>(rng() % (1u << 28));
    auto bytes = index::varbyte_encode(values);
    // Chop inside the final value: its continuation bit is left dangling.
    ASSERT_FALSE(bytes.empty());
    if ((bytes.back() & 0x80) == 0 && bytes.size() >= 2) {
      bytes.pop_back();
      if ((bytes.back() & 0x80) != 0) {
        EXPECT_THROW((void)index::varbyte_decode(bytes), FormatError);
      }
    }
  }
  // Deterministic case: a lone continuation byte.
  const std::vector<std::uint8_t> dangling = {0x80};
  EXPECT_THROW((void)index::varbyte_decode(dangling), FormatError);
  // Overlong value: a 10th byte would shift payload past bit 63 (a valid
  // non-negative int64 encoding is at most 9 bytes).
  std::vector<std::uint8_t> overlong(9, 0x80);
  overlong.push_back(0x01);
  EXPECT_THROW((void)index::varbyte_decode(overlong), FormatError);
}

}  // namespace
}  // namespace sva
