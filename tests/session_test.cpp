// Tests for the sessionized query plane: the batched sweep against the
// classic one-shot path (bit-identical by construction), P-invariance of
// every query result — including the cohesion reduction, now a
// fixed-point bank — and a Session over an exported bundle against the
// free functions over the live products.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>
#include <vector>

#include "backend_testutil.hpp"
#include "sva/cluster/kmeans.hpp"
#include "sva/cluster/pca.hpp"
#include "sva/cluster/projection.hpp"
#include "sva/engine/bundle.hpp"
#include "sva/engine/engine.hpp"
#include "sva/query/session.hpp"

namespace sva::query {
namespace {

/// Deterministic block-distributed signature set (three angular groups),
/// the same construction query_test uses.
sig::SignatureSet make_signatures(ga::Context& ctx, std::size_t n, std::size_t dim) {
  const auto nprocs = static_cast<std::size_t>(ctx.nprocs());
  const std::size_t per = (n + nprocs - 1) / nprocs;
  const std::size_t begin = std::min(n, static_cast<std::size_t>(ctx.rank()) * per);
  const std::size_t end = std::min(n, begin + per);

  sig::SignatureSet s;
  s.dimension = dim;
  s.docvecs = Matrix(end - begin, dim);
  for (std::size_t g = begin; g < end; ++g) {
    const std::size_t i = g - begin;
    const std::size_t group = g % 3;
    for (std::size_t d = 0; d < dim; ++d) {
      const double base = (d % 3 == group) ? 1.0 : 0.05;
      s.docvecs.at(i, d) = base + 0.01 * static_cast<double>((g * 7 + d * 13) % 10);
    }
    s.doc_ids.push_back(static_cast<std::uint64_t>(g));
    s.is_null.push_back(false);
  }
  return s;
}

/// Bitwise double equality (the contract is byte-identity, not epsilon).
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_same_hits(const std::vector<SimilarDoc>& a, const std::vector<SimilarDoc>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].doc_id, b[i].doc_id) << "position " << i;
    EXPECT_TRUE(same_bits(a[i].similarity, b[i].similarity)) << "position " << i;
  }
}

void expect_same_summary(const ClusterSummary& a, const ClusterSummary& b) {
  EXPECT_EQ(a.cluster, b.cluster);
  EXPECT_EQ(a.size, b.size);
  EXPECT_EQ(a.top_terms, b.top_terms);
  EXPECT_EQ(a.representatives, b.representatives);
  EXPECT_TRUE(same_bits(a.cohesion, b.cohesion));
}

std::vector<Query> mixed_batch() {
  std::vector<Query> batch;
  batch.push_back(Query::similar_doc(5, 7));
  batch.push_back(Query::cluster_summary(0, 4));
  batch.push_back(Query::similar_doc(11, 5));
  batch.push_back(Query::similar_probe(std::vector<double>(9, 1.0), 6));
  batch.push_back(Query::cluster_summary(2, 3));
  return batch;
}

/// Runs the mixed batch at `nprocs` and returns rank 0's results.
std::vector<QueryResult> batch_at(int nprocs) {
  auto out = std::make_shared<std::vector<QueryResult>>();
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const auto s = make_signatures(ctx, 60, 9);
    cluster::KMeansConfig config;
    config.k = 3;
    const auto km = cluster::kmeans_cluster(ctx, s.docvecs, config);
    QueryInputs inputs{&s, &km.assignment, &km, nullptr};
    auto results = run_query_batch(ctx, inputs, mixed_batch());
    if (ctx.rank() == 0) *out = std::move(results);
  });
  return *out;
}

// ---- batched plane vs one-shot path ------------------------------------

TEST(BatchTest, BatchMatchesSingleQueriesBitIdentically) {
  ga::spmd_run(3, [](ga::Context& ctx) {
    const auto s = make_signatures(ctx, 60, 9);
    cluster::KMeansConfig config;
    config.k = 3;
    const auto km = cluster::kmeans_cluster(ctx, s.docvecs, config);

    const auto batch = mixed_batch();
    QueryInputs inputs{&s, &km.assignment, &km, nullptr};
    const auto results = run_query_batch(ctx, inputs, batch);
    ASSERT_EQ(results.size(), batch.size());

    expect_same_hits(results[0].hits, similar_to_document(ctx, s, 5, 7));
    expect_same_summary(results[1].summary,
                        summarize_cluster(ctx, s, km.assignment, km, {}, 0, 4));
    expect_same_hits(results[2].hits, similar_to_document(ctx, s, 11, 5));
    const std::vector<double> probe(9, 1.0);
    expect_same_hits(results[3].hits, similar_documents(ctx, s, probe, 6));
    expect_same_summary(results[4].summary,
                        summarize_cluster(ctx, s, km.assignment, km, {}, 2, 3));
  });
}

TEST(BatchTest, ResultsBitIdenticalAcrossProcessorCounts) {
  // Cohesion rides a fixed-point bank, so even the real-valued fields
  // must agree to the last bit for any P.
  const auto baseline = batch_at(1);
  for (const int nprocs : {2, 4}) {
    const auto other = batch_at(nprocs);
    ASSERT_EQ(baseline.size(), other.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      ASSERT_EQ(baseline[i].kind, other[i].kind);
      if (baseline[i].kind == Query::Kind::kClusterSummary) {
        expect_same_summary(baseline[i].summary, other[i].summary);
      } else {
        expect_same_hits(baseline[i].hits, other[i].hits);
      }
    }
  }
}

TEST(BatchTest, EmptyBatchReturnsEmpty) {
  ga::spmd_run(2, [](ga::Context& ctx) {
    const auto s = make_signatures(ctx, 12, 6);
    QueryInputs inputs{&s, nullptr, nullptr, nullptr};
    EXPECT_TRUE(run_query_batch(ctx, inputs, {}).empty());
  });
}

TEST(BatchTest, UnknownDocInBatchThrowsCollectively) {
  EXPECT_THROW(ga::spmd_run(2,
                            [](ga::Context& ctx) {
                              const auto s = make_signatures(ctx, 10, 6);
                              QueryInputs inputs{&s, nullptr, nullptr, nullptr};
                              const auto q = Query::similar_doc(999, 3);
                              (void)run_query_batch(ctx, inputs, {&q, 1});
                            }),
               Error);
}

TEST(BatchTest, SummaryWithoutClusteringThrows) {
  EXPECT_THROW(ga::spmd_run(1,
                            [](ga::Context& ctx) {
                              const auto s = make_signatures(ctx, 10, 6);
                              QueryInputs inputs{&s, nullptr, nullptr, nullptr};
                              const auto q = Query::cluster_summary(0);
                              (void)run_query_batch(ctx, inputs, {&q, 1});
                            }),
               Error);
}

TEST(BatchTest, DuplicateDocQueriesEachGetAnswers) {
  ga::spmd_run(2, [](ga::Context& ctx) {
    const auto s = make_signatures(ctx, 30, 6);
    QueryInputs inputs{&s, nullptr, nullptr, nullptr};
    std::vector<Query> batch = {Query::similar_doc(7, 4), Query::similar_doc(7, 4)};
    const auto results = run_query_batch(ctx, inputs, batch);
    expect_same_hits(results[0].hits, results[1].hits);
    EXPECT_EQ(results[0].hits.size(), 4u);
  });
}

// ---- Session over an exported bundle ------------------------------------

/// Builds a synthetic per-rank EngineResult whose products line up the
/// way the engine's do (signatures/assignment/projection row-aligned,
/// topic terms resolvable through the vocabulary).
engine::EngineResult make_result(ga::Context& ctx, std::size_t n, std::size_t dim,
                                 std::size_t k) {
  engine::EngineResult r;
  r.signatures = make_signatures(ctx, n, dim);
  r.dimension = dim;
  r.num_records = n;

  cluster::KMeansConfig config;
  config.k = k;
  r.clustering = cluster::kmeans_cluster(ctx, r.signatures.docvecs, config);

  const auto pca = cluster::pca_fit(r.clustering.centroids, 2);
  r.projection =
      cluster::project_documents(ctx, r.signatures.docvecs, r.signatures.doc_ids, pca);

  auto vocab = std::make_shared<ga::Vocabulary>();
  for (std::size_t d = 0; d < dim; ++d) {
    vocab->terms.push_back("term" + std::to_string(d));
    r.selection.topic_terms.push_back(static_cast<std::int64_t>(d));
  }
  r.num_terms = dim;
  r.vocabulary = std::move(vocab);
  for (std::size_t c = 0; c < r.clustering.centroids.rows(); ++c) {
    r.theme_labels.push_back({"label" + std::to_string(c)});
  }
  return r;
}

std::filesystem::path fresh_bundle(const std::string& name) {
  const auto path = std::filesystem::path(::testing::TempDir()) /
                    ("sva_session_" + name + "_" + std::to_string(::getpid()) + ".svab");
  std::filesystem::remove(path);
  return path;
}

class SessionProcsTest : public ::testing::TestWithParam<int> {};

TEST_P(SessionProcsTest, SessionMatchesFreeFunctionsAcrossWriteAndOpenP) {
  // Written at P=2, opened at P in {1, 2, 3, 4}: every Session answer
  // must be bit-identical to the free functions over the live products.
  const int open_procs = GetParam();
  const auto bundle = fresh_bundle("xp" + std::to_string(open_procs));

  struct Reference {
    std::vector<SimilarDoc> by_doc;
    std::vector<SimilarDoc> by_probe;
    std::vector<ClusterSummary> summaries;
    std::vector<double> all_xy;  // rank 0 drill projection
    Matrix drill_centroids;
    std::uint64_t drill_subset = 0;
  };
  auto ref = std::make_shared<Reference>();
  const std::vector<double> probe(9, 0.5);

  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto r = make_result(ctx, 72, 9, 3);
    engine::export_bundle(ctx, r, engine::EngineConfig{}, bundle);

    auto hits = similar_to_document(ctx, r.signatures, 4, 6);
    auto probe_hits = similar_documents(ctx, r.signatures, probe, 5);
    std::vector<ClusterSummary> summaries;
    for (int c = 0; c < 3; ++c) {
      summaries.push_back(summarize_cluster(ctx, r.signatures, r.clustering.assignment,
                                            r.clustering, r.theme_labels, c, 4));
    }
    cluster::KMeansConfig sub;
    sub.k = 2;
    auto drill = drill_down_cluster(ctx, r.signatures, r.clustering.assignment, 0, sub);
    if (ctx.rank() == 0) {
      ref->by_doc = std::move(hits);
      ref->by_probe = std::move(probe_hits);
      ref->summaries = std::move(summaries);
      ref->all_xy = std::move(drill.projection.all_xy);
      ref->drill_centroids = std::move(drill.clustering.centroids);
      ref->drill_subset = drill.subset_size;
    }
  });

  ga::spmd_run(open_procs, [&](ga::Context& ctx) {
    auto session = Session::open(ctx, bundle);
    EXPECT_EQ(session.num_documents(), 72u);
    EXPECT_EQ(session.dimension(), 9u);
    EXPECT_EQ(session.config_fingerprint(),
              engine::Engine::config_fingerprint(engine::EngineConfig{}));

    auto hits = session.similar(std::uint64_t{4}, 6);
    auto probe_hits = session.similar(probe, 5);
    cluster::KMeansConfig sub;
    sub.k = 2;
    auto drill = session.drill_down(0, sub);

    // Batched plane over the same session, interleaved kinds.
    std::vector<Query> batch;
    for (int c = 0; c < 3; ++c) batch.push_back(Query::cluster_summary(c, 4));
    batch.push_back(Query::similar_doc(4, 6));
    const auto results = session.run_batch(batch);

    if (ctx.rank() == 0) {
      expect_same_hits(hits, ref->by_doc);
      expect_same_hits(probe_hits, ref->by_probe);
      expect_same_hits(results[3].hits, ref->by_doc);
      for (int c = 0; c < 3; ++c) {
        expect_same_summary(results[static_cast<std::size_t>(c)].summary,
                            ref->summaries[static_cast<std::size_t>(c)]);
      }
      EXPECT_EQ(drill.subset_size, ref->drill_subset);
      ASSERT_EQ(drill.projection.all_xy.size(), ref->all_xy.size());
      for (std::size_t i = 0; i < ref->all_xy.size(); ++i) {
        EXPECT_TRUE(same_bits(drill.projection.all_xy[i], ref->all_xy[i])) << i;
      }
      ASSERT_EQ(drill.clustering.centroids.rows(), ref->drill_centroids.rows());
      for (std::size_t i = 0; i < ref->drill_centroids.flat().size(); ++i) {
        EXPECT_TRUE(
            same_bits(drill.clustering.centroids.flat()[i], ref->drill_centroids.flat()[i]))
            << i;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, SessionProcsTest, ::testing::Values(1, 2, 3, 4));

TEST(SessionTest, ProcessBackendAnswersMatchThreadBackendBitIdentically) {
  // Serving-plane acceptance bar for the transport seam: a Session over
  // the same bundle must hand back bit-identical answers whether the
  // world is threads or forked shm processes, at every processor count.
  SVA_REQUIRE_PROCESS_BACKEND();
  const auto bundle = fresh_bundle("backend_sweep");
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto r = make_result(ctx, 72, 9, 3);
    engine::export_bundle(ctx, r, engine::EngineConfig{}, bundle);
  });

  const auto answers = [&](ga::Backend backend, int nprocs) {
    auto out = std::make_shared<std::vector<QueryResult>>();
    ga::SpmdOptions world;
    world.nprocs = nprocs;
    world.backend = backend;
    ga::spmd_run(world, [&](ga::Context& ctx) {
      auto session = Session::open(ctx, bundle);
      std::vector<Query> batch;
      for (int c = 0; c < 3; ++c) batch.push_back(Query::cluster_summary(c, 4));
      batch.push_back(Query::similar_doc(4, 6));
      batch.push_back(Query::similar_probe(std::vector<double>(9, 0.5), 5));
      auto results = session.run_batch(batch);
      if (ctx.rank() == 0) *out = std::move(results);
    });
    return *out;
  };

  const auto baseline = answers(ga::Backend::kThread, 1);
  ASSERT_EQ(baseline.size(), 5u);
  for (const int nprocs : {1, 2, 4}) {
    const auto other = answers(ga::Backend::kProcess, nprocs);
    ASSERT_EQ(other.size(), baseline.size()) << "nprocs=" << nprocs;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      ASSERT_EQ(baseline[i].kind, other[i].kind) << "query " << i;
      if (baseline[i].kind == Query::Kind::kClusterSummary) {
        expect_same_summary(other[i].summary, baseline[i].summary);
      } else {
        expect_same_hits(other[i].hits, baseline[i].hits);
      }
    }
  }
}

TEST(SessionTest, SocketBackendAnswersMatchThreadBackendBitIdentically) {
  // The same serving-plane bar for the TCP transport: answers must be
  // bit-identical when the ranks are forked processes exchanging frames
  // over loopback sockets, at every processor count.
  SVA_REQUIRE_SOCKET_BACKEND();
  const auto bundle = fresh_bundle("socket_backend_sweep");
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto r = make_result(ctx, 72, 9, 3);
    engine::export_bundle(ctx, r, engine::EngineConfig{}, bundle);
  });

  const auto answers = [&](ga::Backend backend, int nprocs) {
    auto out = std::make_shared<std::vector<QueryResult>>();
    ga::SpmdOptions world;
    world.nprocs = nprocs;
    world.backend = backend;
    ga::spmd_run(world, [&](ga::Context& ctx) {
      auto session = Session::open(ctx, bundle);
      std::vector<Query> batch;
      for (int c = 0; c < 3; ++c) batch.push_back(Query::cluster_summary(c, 4));
      batch.push_back(Query::similar_doc(4, 6));
      batch.push_back(Query::similar_probe(std::vector<double>(9, 0.5), 5));
      auto results = session.run_batch(batch);
      if (ctx.rank() == 0) *out = std::move(results);
    });
    return *out;
  };

  const auto baseline = answers(ga::Backend::kThread, 1);
  ASSERT_EQ(baseline.size(), 5u);
  for (const int nprocs : {1, 2, 4}) {
    const auto other = answers(ga::Backend::kSocket, nprocs);
    ASSERT_EQ(other.size(), baseline.size()) << "nprocs=" << nprocs;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      ASSERT_EQ(baseline[i].kind, other[i].kind) << "query " << i;
      if (baseline[i].kind == Query::Kind::kClusterSummary) {
        expect_same_summary(other[i].summary, baseline[i].summary);
      } else {
        expect_same_hits(other[i].hits, baseline[i].hits);
      }
    }
  }
}

TEST(SessionTest, LandscapeIsReplicatedAndGlobal) {
  const auto bundle = fresh_bundle("landscape");
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto r = make_result(ctx, 40, 6, 2);
    engine::export_bundle(ctx, r, engine::EngineConfig{}, bundle);
  });
  const int nprocs = 3;
  auto per_rank = std::make_shared<std::vector<Landscape>>(static_cast<std::size_t>(nprocs));
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    auto session = Session::open(ctx, bundle);
    (*per_rank)[static_cast<std::size_t>(ctx.rank())] = session.landscape();
  });
  for (int r = 0; r < nprocs; ++r) {
    const auto& land = (*per_rank)[static_cast<std::size_t>(r)];
    ASSERT_EQ(land.doc_ids.size(), 40u);
    ASSERT_EQ(land.xy.size(), 80u);
    EXPECT_EQ(land.doc_ids, (*per_rank)[0].doc_ids);
    EXPECT_EQ(land.xy, (*per_rank)[0].xy);
    // Global document order.
    for (std::size_t i = 0; i < land.doc_ids.size(); ++i) {
      EXPECT_EQ(land.doc_ids[i], static_cast<std::uint64_t>(i));
    }
  }
}

TEST(SessionTest, SubThemeLabelsResolveThroughTheVocabularySlice) {
  const auto bundle = fresh_bundle("sublabels");
  ga::spmd_run(1, [&](ga::Context& ctx) {
    const auto r = make_result(ctx, 30, 6, 2);
    engine::export_bundle(ctx, r, engine::EngineConfig{}, bundle);
    auto session = Session::open(ctx, bundle);
    cluster::KMeansConfig sub;
    sub.k = 2;
    const auto drill = session.drill_down(0, sub);
    const auto labels = session.sub_theme_labels(drill.clustering, 2);
    ASSERT_EQ(labels.size(), drill.clustering.centroids.rows());
    for (const auto& cluster_labels : labels) {
      ASSERT_EQ(cluster_labels.size(), 2u);
      for (const auto& term : cluster_labels) {
        EXPECT_EQ(term.rfind("term", 0), 0u) << term;
      }
    }
  });
}

TEST(SessionTest, UnknownDocThrowsThroughTheSession) {
  const auto bundle = fresh_bundle("unknown");
  ga::spmd_run(1, [&](ga::Context& ctx) {
    const auto r = make_result(ctx, 20, 6, 2);
    engine::export_bundle(ctx, r, engine::EngineConfig{}, bundle);
  });
  EXPECT_THROW(ga::spmd_run(2,
                            [&](ga::Context& ctx) {
                              auto session = Session::open(ctx, bundle);
                              (void)session.similar(std::uint64_t{777}, 3);
                            }),
               Error);
}

}  // namespace
}  // namespace sva::query
