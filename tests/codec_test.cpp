// Tests for the posting-list codec: varbyte boundary values, d-gap
// round-trips over adversarial distributions, and whole-index compression
// agreeing with the uncompressed inverted index at every processor count.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "sva/corpus/generator.hpp"
#include "sva/index/codec.hpp"
#include "sva/text/scanner.hpp"

namespace sva::index {
namespace {

TEST(VarbyteTest, SingleByteValues) {
  for (std::int64_t v : {0L, 1L, 63L, 127L}) {
    std::vector<std::uint8_t> bytes;
    varbyte_append(v, bytes);
    EXPECT_EQ(bytes.size(), 1u) << v;
    EXPECT_EQ(varbyte_decode(bytes), std::vector<std::int64_t>{v});
  }
}

TEST(VarbyteTest, MultiByteBoundaries) {
  // 128 needs 2 bytes; 16384 needs 3; each boundary round-trips.
  const std::vector<std::int64_t> values = {128, 129, 16383, 16384, 2097151, 2097152,
                                            (1LL << 31), (1LL << 62)};
  const auto bytes = varbyte_encode(values);
  EXPECT_EQ(varbyte_decode(bytes), values);
}

TEST(VarbyteTest, EncodedSizeMatchesTheory) {
  std::vector<std::uint8_t> bytes;
  varbyte_append(127, bytes);     // 1 byte
  varbyte_append(128, bytes);     // 2 bytes
  varbyte_append(16384, bytes);   // 3 bytes
  EXPECT_EQ(bytes.size(), 6u);
}

TEST(VarbyteTest, NegativeValueThrows) {
  std::vector<std::uint8_t> bytes;
  EXPECT_THROW(varbyte_append(-1, bytes), Error);
}

TEST(VarbyteTest, TruncatedInputThrows) {
  std::vector<std::uint8_t> bytes;
  varbyte_append(1000, bytes);
  bytes.pop_back();  // drop the terminating byte
  EXPECT_THROW((void)varbyte_decode(bytes), Error);
}

TEST(VarbyteTest, EmptyInputDecodesEmpty) {
  EXPECT_TRUE(varbyte_decode({}).empty());
}

// ---- d-gap posting lists -------------------------------------------------------

class PostingsRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(PostingsRoundTripTest, RandomSortedListsRoundTrip) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_int_distribution<std::int64_t> gap_dist(1, 1 << (GetParam() % 20 + 1));
  std::vector<std::int64_t> postings;
  std::int64_t v = static_cast<std::int64_t>(rng() % 100);
  for (int i = 0; i < 500; ++i) {
    postings.push_back(v);
    v += gap_dist(rng);
  }
  const auto bytes = encode_postings(postings);
  EXPECT_EQ(decode_postings(bytes), postings);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PostingsRoundTripTest, ::testing::Values(1, 2, 7, 19, 40));

TEST(PostingsTest, DenseListsCompressEightfold) {
  // Gap-1 lists need one byte per posting: ratio ~ 8.
  std::vector<std::int64_t> postings(4096);
  for (std::size_t i = 0; i < postings.size(); ++i) postings[i] = static_cast<std::int64_t>(i);
  const auto bytes = encode_postings(postings);
  EXPECT_LE(bytes.size(), postings.size() + 1);
}

TEST(PostingsTest, EmptyListYieldsNoBytes) {
  EXPECT_TRUE(encode_postings({}).empty());
  EXPECT_TRUE(decode_postings({}).empty());
}

TEST(PostingsTest, SingleElementList) {
  const std::vector<std::int64_t> one = {42};
  EXPECT_EQ(decode_postings(encode_postings(one)), one);
}

TEST(PostingsTest, UnsortedThrows) {
  const std::vector<std::int64_t> bad = {5, 3};
  EXPECT_THROW((void)encode_postings(bad), Error);
}

TEST(PostingsTest, DuplicatesThrow) {
  const std::vector<std::int64_t> bad = {3, 3};
  EXPECT_THROW((void)encode_postings(bad), Error);
}

// ---- whole-index compression ----------------------------------------------------

class CompressIndexTest : public ::testing::TestWithParam<int> {};

TEST_P(CompressIndexTest, CompressedIndexMatchesUncompressed) {
  const int nprocs = GetParam();
  corpus::CorpusSpec spec;
  spec.target_bytes = 48 << 10;
  spec.core_vocabulary = 500;
  const auto sources = corpus::generate_corpus(spec);

  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    text::TokenizerConfig tok;
    tok.use_stopwords = false;
    const auto scan = text::scan_sources(ctx, sources, tok);
    const auto r = build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    const auto compressed = compress_record_index(ctx, r.index);

    ASSERT_EQ(compressed.num_terms, r.index.num_terms);
    ASSERT_EQ(compressed.total_postings, r.index.total_record_postings);

    // Every term's decompressed list must equal the global-array copy.
    const auto offsets = r.index.record_offsets.to_vector(ctx);
    const auto postings = r.index.record_postings.to_vector(ctx);
    for (std::size_t t = 0; t < compressed.num_terms; ++t) {
      const auto decoded = compressed.postings_of(t);
      const auto lo = static_cast<std::size_t>(offsets[t]);
      const auto hi = static_cast<std::size_t>(offsets[t + 1]);
      ASSERT_EQ(decoded.size(), hi - lo) << "term " << t;
      for (std::size_t i = lo; i < hi; ++i) {
        EXPECT_EQ(decoded[i - lo], postings[i]) << "term " << t;
      }
    }
    EXPECT_GT(compressed.compression_ratio(), 2.0)
        << "record ids fit in far fewer than 8 bytes";
    ctx.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, CompressIndexTest, ::testing::Values(1, 2, 4));

TEST(CompressIndexTest, AllRanksGetIdenticalBytes) {
  corpus::CorpusSpec spec;
  spec.target_bytes = 16 << 10;
  const auto sources = corpus::generate_corpus(spec);
  auto per_rank = std::make_shared<std::vector<std::vector<std::uint8_t>>>(3);
  ga::spmd_run(3, [&](ga::Context& ctx) {
    text::TokenizerConfig tok;
    tok.use_stopwords = false;
    const auto scan = text::scan_sources(ctx, sources, tok);
    const auto r = build_inverted_index(ctx, scan.forward, scan.vocabulary->size());
    const auto compressed = compress_record_index(ctx, r.index);
    (*per_rank)[static_cast<std::size_t>(ctx.rank())] = compressed.bytes;
  });
  EXPECT_EQ((*per_rank)[0], (*per_rank)[1]);
  EXPECT_EQ((*per_rank)[0], (*per_rank)[2]);
}

}  // namespace
}  // namespace sva::index
