// ShmTransport (Backend::kProcess) shard: the collectives, global array,
// hashmap and task queues under forked ranks over POSIX shm, plus the
// failure semantics the seam promises — an abort mid-collective or a
// killed child rank must fail the whole world with a diagnostic, never
// hang it.
//
// gtest EXPECTs inside a non-zero rank run in a forked child and vanish
// at its _exit, so every in-world check here throws (sva::require); the
// parent observes the failure as a world abort.  Result comparisons
// happen at rank 0, which runs on the parent's calling thread.
#include <gtest/gtest.h>

#include <csignal>
#include <unistd.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "backend_testutil.hpp"
#include "sva/ga/dist_hashmap.hpp"
#include "sva/ga/global_array.hpp"
#include "sva/ga/runtime.hpp"
#include "sva/ga/task_queue.hpp"
#include "sva/util/error.hpp"

namespace sva::ga {
namespace {

SpmdOptions process_world(int nprocs) {
  SpmdOptions world;
  world.nprocs = nprocs;
  world.backend = Backend::kProcess;
  return world;
}

/// Runs a scripted sweep over every collective primitive and returns a
/// rank-0 FNV digest of all result bytes.  Pure function of (P); running
/// it under both backends and comparing digests is the transport seam's
/// equivalence check at the substrate level.
std::uint64_t collective_sweep_digest(Backend backend, int nprocs) {
  auto out = std::make_shared<std::uint64_t>(0);
  SpmdOptions world;
  world.nprocs = nprocs;
  world.backend = backend;
  spmd_run(world, [&](Context& ctx) {
    const int P = ctx.nprocs();
    const int rank = ctx.rank();
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    const auto mix_f64 = [&](double v) { mix(std::bit_cast<std::uint64_t>(v)); };

    for (int round = 0; round < 6; ++round) {
      // Sizes sweep 1..4^5 doubles: both the staged small path and the
      // large partitioned-allreduce path get exercised.
      const std::size_t n = static_cast<std::size_t>(1) << (2 * round);
      const int root = round % P;

      std::vector<double> bcast(n, 0.0);
      if (rank == root) {
        for (std::size_t i = 0; i < n; ++i) {
          bcast[i] = 1.0 / static_cast<double>(round * 101 + i + 1);
        }
      }
      ctx.broadcast(bcast.data(), n, root);
      for (const double v : bcast) mix_f64(v);

      std::vector<double> acc(n);
      for (std::size_t i = 0; i < n; ++i) {
        acc[i] = std::sin(static_cast<double>(rank + 1)) /
                 static_cast<double>(i + round + 1);
      }
      ctx.allreduce_sum(acc.data(), acc.size());
      for (const double v : acc) mix_f64(v);

      std::vector<std::int64_t> mine(static_cast<std::size_t>(rank + round + 1),
                                     static_cast<std::int64_t>(rank * 31 + round));
      const auto all = ctx.allgatherv(std::span<const std::int64_t>(mine));
      for (const auto v : all) mix(static_cast<std::uint64_t>(v));

      const auto gathered = ctx.gatherv(std::span<const std::int64_t>(mine), root);
      if (rank == root) {
        require(gathered.size() == all.size(), "gatherv size diverged from allgatherv");
      }

      const auto counts = ctx.allgather(static_cast<std::uint64_t>(mine.size()));
      require(counts.size() == static_cast<std::size_t>(P), "allgather arity");
      for (const auto c : counts) mix(c);

      mix(ctx.exscan_sum(static_cast<std::uint64_t>(rank + 1) *
                         static_cast<std::uint64_t>(round + 1)));
      ctx.barrier();
    }
    if (rank == 0) *out = h;
  });
  return *out;
}

TEST(GaShmTest, CollectiveSweepMatchesThreadBackendBitIdentically) {
  SVA_REQUIRE_PROCESS_BACKEND();
  for (const int nprocs : {1, 2, 4}) {
    const std::uint64_t thread_digest =
        collective_sweep_digest(Backend::kThread, nprocs);
    const std::uint64_t process_digest =
        collective_sweep_digest(Backend::kProcess, nprocs);
    EXPECT_EQ(process_digest, thread_digest) << "nprocs=" << nprocs;
  }
}

TEST(GaShmTest, GlobalArrayHashmapAndQueuesWorkUnderProcessBackend) {
  SVA_REQUIRE_PROCESS_BACKEND();
  for (const int P : {1, 2, 4}) {
    spmd_run(process_world(P), [&](Context& ctx) {
      auto array = GlobalArray<std::int64_t>::create(ctx, 100);
      array.put_value(ctx, (ctx.rank() * 37) % 100, ctx.rank() + 1);
      ctx.barrier();
      (void)array.fetch_add(ctx, 5, 1);
      ctx.barrier();
      const auto vec = array.to_vector(ctx);
      require(vec[5] >= P, "fetch_add lost cross-process updates");

      auto map = DistHashmap::create(ctx);
      const std::vector<std::string> terms = {"alpha", "beta",
                                              "rank" + std::to_string(ctx.rank())};
      const auto ids = map.insert_batch(ctx, terms);
      require(ids.size() == 3 && ids[0] >= 0, "insert_batch returned bad ids");
      ctx.barrier();
      const auto fin = map.finalize(ctx);
      require(fin.vocabulary->size() == static_cast<std::size_t>(2 + P),
              "replicated hashmap vocabulary diverged");

      for (const auto sched : {Scheduling::kAtomicCounter, Scheduling::kOwnerFirst,
                               Scheduling::kMasterWorker, Scheduling::kStatic}) {
        auto queue = make_task_queue(ctx, sched, 64, 4, {}, /*vtime_ordered=*/true);
        std::size_t got = 0;
        while (const auto chunk = queue->next(ctx)) got += chunk->size();
        const auto total = ctx.allreduce_sum(static_cast<std::int64_t>(got));
        require(total == 64, std::string("task queue dropped tasks under ") +
                                 scheduling_name(sched));
        ctx.barrier();
      }
    });
  }
}

TEST(GaShmTest, InsertOrGetIsRejectedUnderProcessBackend) {
  SVA_REQUIRE_PROCESS_BACKEND();
  try {
    spmd_run(process_world(2), [](Context& ctx) {
      auto map = DistHashmap::create(ctx);
      (void)map.insert_or_get(ctx, "term");
    });
    FAIL() << "insert_or_get succeeded under Backend::kProcess";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("insert_or_get"), std::string::npos)
        << e.what();
  }
}

TEST(GaShmTest, AbortMidCollectiveFailsTheWholeWorld) {
  SVA_REQUIRE_PROCESS_BACKEND();
  try {
    spmd_run(process_world(4), [](Context& ctx) {
      if (ctx.rank() == 2) throw Error("boom mid-collective");
      // The survivors sit in barriers the thrower never reaches; the
      // abort must wake and fail them rather than leave them parked.
      for (int i = 0; i < 1000; ++i) ctx.barrier();
    });
    FAIL() << "world survived a mid-collective abort";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("boom mid-collective"), std::string::npos)
        << e.what();
  }
}

TEST(GaShmTest, DeadRankFailsTheWorldWithADiagnosticInsteadOfHanging) {
  SVA_REQUIRE_PROCESS_BACKEND();
  try {
    spmd_run(process_world(4), [](Context& ctx) {
      if (ctx.rank() == 2) ::kill(::getpid(), SIGKILL);
      for (int i = 0; i < 1000; ++i) ctx.barrier();
    });
    FAIL() << "world survived a killed rank";
  } catch (const ProtocolError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 2 died"), std::string::npos) << what;
    EXPECT_NE(what.find("signal 9"), std::string::npos) << what;
  }
}

TEST(GaShmTest, OversizedContributionNamesTheCapacityKnob) {
  SVA_REQUIRE_PROCESS_BACKEND();
  SpmdOptions world = process_world(2);
  world.shm_slot_bytes = 4096;
  try {
    spmd_run(world, [](Context& ctx) {
      std::vector<double> big(4096, 1.0);  // 32 KiB > the 4 KiB slot cap
      ctx.broadcast(big.data(), big.size(), 0);
    });
    FAIL() << "oversized contribution was accepted";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("shm_slot_bytes"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace sva::ga
