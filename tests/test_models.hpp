// Shared CommModel configurations for the GA runtime tests.
#pragma once

#include "sva/ga/comm_model.hpp"

namespace sva::testing {

/// Default model with compute_scale zeroed: virtual clocks advance only
/// by modeled communication, keeping measured host-CPU jitter (large
/// under sanitizers) out of modeled-cost comparisons.
inline ga::CommModel zero_compute_model() {
  ga::CommModel model;
  model.compute_scale = 0.0;
  return model;
}

}  // namespace sva::testing
