// Tests for the interaction layer: similarity search against a serial
// oracle, P-invariance of query results, cluster summaries, and the
// drill-down refinement loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "sva/cluster/kmeans.hpp"
#include "sva/query/explore.hpp"
#include "sva/query/similarity.hpp"

namespace sva::query {
namespace {

/// Builds a deterministic signature set of `n` docs in `dim` dimensions,
/// block-distributed across ranks the same way the scanner partitions
/// records.  Vectors form three angular groups so similarity structure is
/// known by construction.
sig::SignatureSet make_signatures(ga::Context& ctx, std::size_t n, std::size_t dim) {
  const auto nprocs = static_cast<std::size_t>(ctx.nprocs());
  const std::size_t per = (n + nprocs - 1) / nprocs;
  const std::size_t begin = std::min(n, static_cast<std::size_t>(ctx.rank()) * per);
  const std::size_t end = std::min(n, begin + per);

  sig::SignatureSet s;
  s.dimension = dim;
  s.docvecs = Matrix(end - begin, dim);
  for (std::size_t g = begin; g < end; ++g) {
    const std::size_t i = g - begin;
    const std::size_t group = g % 3;
    for (std::size_t d = 0; d < dim; ++d) {
      // Group base direction plus a small per-doc perturbation.
      const double base = (d % 3 == group) ? 1.0 : 0.05;
      s.docvecs.at(i, d) = base + 0.01 * static_cast<double>((g * 7 + d * 13) % 10);
    }
    s.doc_ids.push_back(static_cast<std::uint64_t>(g));
    s.is_null.push_back(false);
  }
  return s;
}

TEST(CosineTest, IdenticalVectorsScoreOne) {
  const std::vector<double> v = {0.3, 0.4, 0.5};
  EXPECT_NEAR(cosine_similarity(v, v), 1.0, 1e-12);
}

TEST(CosineTest, OrthogonalVectorsScoreZero) {
  const std::vector<double> a = {1.0, 0.0};
  const std::vector<double> b = {0.0, 1.0};
  EXPECT_NEAR(cosine_similarity(a, b), 0.0, 1e-12);
}

TEST(CosineTest, OppositeVectorsScoreMinusOne) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {-1.0, -2.0};
  EXPECT_NEAR(cosine_similarity(a, b), -1.0, 1e-12);
}

TEST(CosineTest, ZeroVectorScoresZero) {
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> b = {1.0, 1.0};
  EXPECT_EQ(cosine_similarity(a, b), 0.0);
}

TEST(CosineTest, DimensionMismatchThrows) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW((void)cosine_similarity(a, b), Error);
}

// ---- similarity queries ------------------------------------------------------

class SimilarityProcsTest : public ::testing::TestWithParam<int> {};

TEST_P(SimilarityProcsTest, MatchesSerialOracle) {
  const int nprocs = GetParam();
  constexpr std::size_t kDocs = 60;
  constexpr std::size_t kDim = 9;
  constexpr std::size_t kTopK = 8;

  // Serial oracle at P = 1.
  auto oracle = std::make_shared<std::vector<SimilarDoc>>();
  ga::spmd_run(1, [&](ga::Context& ctx) {
    const auto s = make_signatures(ctx, kDocs, kDim);
    *oracle = similar_to_document(ctx, s, 5, kTopK);
  });

  auto result = std::make_shared<std::vector<SimilarDoc>>();
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const auto s = make_signatures(ctx, kDocs, kDim);
    auto r = similar_to_document(ctx, s, 5, kTopK);
    if (ctx.rank() == 0) *result = std::move(r);
  });

  ASSERT_EQ(result->size(), oracle->size());
  for (std::size_t i = 0; i < oracle->size(); ++i) {
    EXPECT_EQ((*result)[i].doc_id, (*oracle)[i].doc_id) << "position " << i;
    EXPECT_NEAR((*result)[i].similarity, (*oracle)[i].similarity, 1e-12);
  }
}

TEST_P(SimilarityProcsTest, AllRanksReceiveIdenticalResults) {
  const int nprocs = GetParam();
  auto per_rank = std::make_shared<std::vector<std::vector<SimilarDoc>>>(
      static_cast<std::size_t>(nprocs));
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const auto s = make_signatures(ctx, 45, 6);
    (*per_rank)[static_cast<std::size_t>(ctx.rank())] = similar_to_document(ctx, s, 7, 5);
  });
  for (int r = 1; r < nprocs; ++r) {
    ASSERT_EQ((*per_rank)[0].size(), (*per_rank)[static_cast<std::size_t>(r)].size());
    for (std::size_t i = 0; i < (*per_rank)[0].size(); ++i) {
      EXPECT_EQ((*per_rank)[0][i].doc_id, (*per_rank)[static_cast<std::size_t>(r)][i].doc_id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, SimilarityProcsTest, ::testing::Values(1, 2, 3, 4));

TEST(SimilarityTest, SameGroupRanksAboveOtherGroups) {
  // Doc 6 is in group 0 (6 % 3 == 0); its top hits must also be group 0.
  ga::spmd_run(2, [](ga::Context& ctx) {
    const auto s = make_signatures(ctx, 60, 9);
    const auto hits = similar_to_document(ctx, s, 6, 5);
    for (const auto& h : hits) {
      EXPECT_EQ(h.doc_id % 3, 0u) << "doc " << h.doc_id << " is from another group";
    }
  });
}

TEST(SimilarityTest, ProbeExcludedFromOwnResults) {
  ga::spmd_run(2, [](ga::Context& ctx) {
    const auto s = make_signatures(ctx, 30, 6);
    const auto hits = similar_to_document(ctx, s, 4, 10);
    for (const auto& h : hits) EXPECT_NE(h.doc_id, 4u);
  });
}

TEST(SimilarityTest, UnknownDocThrows) {
  EXPECT_THROW(ga::spmd_run(2,
                            [](ga::Context& ctx) {
                              const auto s = make_signatures(ctx, 10, 4);
                              (void)similar_to_document(ctx, s, 999, 3);
                            }),
               Error);
}

TEST(SimilarityTest, NullSignaturesNeverMatch) {
  ga::spmd_run(1, [](ga::Context& ctx) {
    auto s = make_signatures(ctx, 12, 4);
    s.is_null[3] = true;
    const auto hits = similar_to_document(ctx, s, 0, 11);
    for (const auto& h : hits) EXPECT_NE(h.doc_id, s.doc_ids[3]);
  });
}

TEST(SimilarityTest, ProbeVectorQueryHonorsK) {
  ga::spmd_run(2, [](ga::Context& ctx) {
    const auto s = make_signatures(ctx, 40, 6);
    std::vector<double> probe(6, 1.0);
    const auto hits = similar_documents(ctx, s, probe, 4);
    EXPECT_EQ(hits.size(), 4u);
    for (std::size_t i = 1; i < hits.size(); ++i) {
      EXPECT_GE(hits[i - 1].similarity, hits[i].similarity);
    }
  });
}

// ---- cluster summaries --------------------------------------------------------

TEST(SummaryTest, SummarizesSizesCohesionAndRepresentatives) {
  ga::spmd_run(3, [](ga::Context& ctx) {
    const auto s = make_signatures(ctx, 90, 9);
    cluster::KMeansConfig config;
    config.k = 3;
    const auto km = cluster::kmeans_cluster(ctx, s.docvecs, config);

    for (int c = 0; c < 3; ++c) {
      const auto summary = summarize_cluster(ctx, s, km.assignment, km,
                                             {{"t0"}, {"t1"}, {"t2"}}, c, 4);
      EXPECT_EQ(summary.cluster, c);
      EXPECT_GT(summary.size, 0);
      EXPECT_LE(static_cast<std::size_t>(summary.representatives.size()), 4u);
      EXPECT_GT(summary.cohesion, 0.5) << "angular groups are tight";
      EXPECT_EQ(summary.top_terms.size(), 1u);
    }
  });
}

TEST(SummaryTest, RepresentativesBelongToTheCluster) {
  ga::spmd_run(2, [](ga::Context& ctx) {
    const auto s = make_signatures(ctx, 60, 9);
    cluster::KMeansConfig config;
    config.k = 3;
    const auto km = cluster::kmeans_cluster(ctx, s.docvecs, config);
    const auto summary = summarize_cluster(ctx, s, km.assignment, km, {}, 0, 6);

    // Gather the global assignment to check membership.
    std::vector<std::int64_t> local_pairs;
    for (std::size_t i = 0; i < s.doc_ids.size(); ++i) {
      local_pairs.push_back(static_cast<std::int64_t>(s.doc_ids[i]));
      local_pairs.push_back(km.assignment[i]);
    }
    const auto all_pairs = ctx.allgatherv(std::span<const std::int64_t>(local_pairs));
    for (const auto rep : summary.representatives) {
      bool found_in_cluster0 = false;
      for (std::size_t i = 0; i < all_pairs.size(); i += 2) {
        if (all_pairs[i] == static_cast<std::int64_t>(rep) && all_pairs[i + 1] == 0) {
          found_in_cluster0 = true;
        }
      }
      EXPECT_TRUE(found_in_cluster0) << "representative " << rep;
    }
  });
}

TEST(SummaryTest, BadClusterIdThrows) {
  EXPECT_THROW(ga::spmd_run(1,
                            [](ga::Context& ctx) {
                              const auto s = make_signatures(ctx, 12, 4);
                              cluster::KMeansConfig config;
                              config.k = 2;
                              const auto km = cluster::kmeans_cluster(ctx, s.docvecs, config);
                              (void)summarize_cluster(ctx, s, km.assignment, km, {}, 7);
                            }),
               Error);
}

// ---- drill-down ---------------------------------------------------------------

class DrillDownProcsTest : public ::testing::TestWithParam<int> {};

TEST_P(DrillDownProcsTest, SubsetLandscapeCoversTheCluster) {
  const int nprocs = GetParam();
  ga::spmd_run(nprocs, [](ga::Context& ctx) {
    const auto s = make_signatures(ctx, 72, 9);
    cluster::KMeansConfig config;
    config.k = 3;
    const auto km = cluster::kmeans_cluster(ctx, s.docvecs, config);

    cluster::KMeansConfig sub;
    sub.k = 2;
    const auto drill = drill_down_cluster(ctx, s, km.assignment, 0, sub);

    EXPECT_EQ(drill.subset_size,
              static_cast<std::uint64_t>(km.cluster_sizes[0]));
    if (ctx.rank() == 0) {
      EXPECT_EQ(drill.projection.all_doc_ids.size(), drill.subset_size);
      EXPECT_EQ(drill.projection.all_xy.size(), 2 * drill.subset_size);
    }
    EXPECT_LE(drill.clustering.centroids.rows(), 2u);
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, DrillDownProcsTest, ::testing::Values(1, 2, 3));

TEST(DrillDownTest, DocumentSubsetSelectsExactlyThoseDocs) {
  ga::spmd_run(2, [](ga::Context& ctx) {
    const auto s = make_signatures(ctx, 40, 6);
    const std::vector<std::uint64_t> wanted = {1, 3, 5, 7, 9, 11, 13, 15};
    cluster::KMeansConfig config;
    config.k = 2;
    const auto drill = drill_down_documents(ctx, s, wanted, config);
    EXPECT_EQ(drill.subset_size, wanted.size());
    if (ctx.rank() == 0) {
      auto ids = drill.projection.all_doc_ids;
      std::sort(ids.begin(), ids.end());
      EXPECT_EQ(ids, wanted);
    }
  });
}

TEST(DrillDownTest, KClampsToTinySubsets) {
  ga::spmd_run(2, [](ga::Context& ctx) {
    const auto s = make_signatures(ctx, 20, 4);
    const std::vector<std::uint64_t> wanted = {2, 4};
    cluster::KMeansConfig config;
    config.k = 16;  // far larger than the subset
    const auto drill = drill_down_documents(ctx, s, wanted, config);
    EXPECT_EQ(drill.subset_size, 2u);
    EXPECT_LE(drill.clustering.centroids.rows(), 2u);
  });
}

TEST(DrillDownTest, EmptySubsetThrows) {
  EXPECT_THROW(ga::spmd_run(2,
                            [](ga::Context& ctx) {
                              const auto s = make_signatures(ctx, 10, 4);
                              (void)drill_down_documents(ctx, s, {777}, {});
                            }),
               Error);
}

}  // namespace
}  // namespace sva::query
