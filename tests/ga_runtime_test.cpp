// Tests for the SPMD runtime: collectives against serial oracles under a
// processor-count sweep, virtual-time semantics, and failure handling.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "sva/ga/runtime.hpp"

namespace sva::ga {
namespace {

class RuntimeSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(RuntimeSweepTest, EveryRankRunsExactlyOnce) {
  const int nprocs = GetParam();
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(nprocs));
  spmd_run(nprocs, [&](Context& ctx) {
    hits[static_cast<std::size_t>(ctx.rank())].fetch_add(1);
    EXPECT_EQ(ctx.nprocs(), nprocs);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(RuntimeSweepTest, BroadcastValueFromEveryRoot) {
  const int nprocs = GetParam();
  for (int root = 0; root < nprocs; ++root) {
    spmd_run(nprocs, [&](Context& ctx) {
      int value = ctx.rank() == root ? 1234 + root : -1;
      ctx.broadcast_value(value, root);
      EXPECT_EQ(value, 1234 + root);
    });
  }
}

TEST_P(RuntimeSweepTest, BroadcastBuffer) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    std::vector<double> buf(64, ctx.rank() == 0 ? 0.0 : -1.0);
    if (ctx.rank() == 0) {
      for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<double>(i);
    }
    ctx.broadcast(buf.data(), buf.size(), 0);
    for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_DOUBLE_EQ(buf[i], i);
  });
}

TEST_P(RuntimeSweepTest, AllreduceSumScalar) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    const auto sum = ctx.allreduce_sum(static_cast<std::int64_t>(ctx.rank() + 1));
    EXPECT_EQ(sum, static_cast<std::int64_t>(nprocs) * (nprocs + 1) / 2);
  });
}

TEST_P(RuntimeSweepTest, AllreduceSumVector) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    std::vector<std::int64_t> v = {static_cast<std::int64_t>(ctx.rank()), 1, 100};
    ctx.allreduce_sum(v.data(), v.size());
    EXPECT_EQ(v[0], static_cast<std::int64_t>(nprocs) * (nprocs - 1) / 2);
    EXPECT_EQ(v[1], nprocs);
    EXPECT_EQ(v[2], 100 * nprocs);
  });
}

TEST_P(RuntimeSweepTest, AllreduceMinMax) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    EXPECT_EQ(ctx.allreduce_max(ctx.rank() * 10), (nprocs - 1) * 10);
    EXPECT_EQ(ctx.allreduce_min(ctx.rank() * 10), 0);
  });
}

TEST_P(RuntimeSweepTest, AllreduceDoubleIsDeterministicAcrossRanks) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    double v = 0.1 * (ctx.rank() + 1);
    ctx.allreduce_sum(&v, 1);
    // All ranks combine in rank order, so the bits must agree exactly.
    const auto everyone = ctx.allgather(v);
    for (double o : everyone) EXPECT_EQ(o, v);
  });
}

TEST_P(RuntimeSweepTest, AllgatherCollectsRankValues) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    const auto all = ctx.allgather(ctx.rank() * 3);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(nprocs));
    for (int r = 0; r < nprocs; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 3);
  });
}

TEST_P(RuntimeSweepTest, AllgathervVariableLengths) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    // Rank r contributes r copies of r.
    std::vector<std::int64_t> mine(static_cast<std::size_t>(ctx.rank()),
                                   static_cast<std::int64_t>(ctx.rank()));
    const auto all = ctx.allgatherv(std::span<const std::int64_t>(mine));
    std::size_t expected_size = 0;
    for (int r = 0; r < nprocs; ++r) expected_size += static_cast<std::size_t>(r);
    ASSERT_EQ(all.size(), expected_size);
    // Rank-ordered concatenation.
    std::size_t pos = 0;
    for (int r = 0; r < nprocs; ++r) {
      for (int i = 0; i < r; ++i) EXPECT_EQ(all[pos++], r);
    }
  });
}

TEST_P(RuntimeSweepTest, GathervOnlyRootReceives) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    std::vector<int> mine = {ctx.rank()};
    const auto got = ctx.gatherv(std::span<const int>(mine), 0);
    if (ctx.rank() == 0) {
      ASSERT_EQ(got.size(), static_cast<std::size_t>(nprocs));
      for (int r = 0; r < nprocs; ++r) EXPECT_EQ(got[static_cast<std::size_t>(r)], r);
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

TEST_P(RuntimeSweepTest, ExscanSum) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    const auto prefix = ctx.exscan_sum(static_cast<std::int64_t>(ctx.rank() + 1));
    // Exclusive prefix of 1,2,3,... is r(r+1)/2.
    EXPECT_EQ(prefix, static_cast<std::int64_t>(ctx.rank()) * (ctx.rank() + 1) / 2);
  });
}

TEST_P(RuntimeSweepTest, BarrierSynchronizesClocksToMax) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    // Give each rank a distinct artificial clock, then barrier.
    ctx.sample_compute();
    ctx.charge(static_cast<double>(ctx.rank()) * 0.5);
    ctx.barrier();
    const double t = ctx.vtime_raw();
    const auto clocks = ctx.allgather(t);
    for (double c : clocks) EXPECT_DOUBLE_EQ(c, clocks[0]);
    EXPECT_GE(t, 0.5 * (nprocs - 1));
  });
}

TEST_P(RuntimeSweepTest, CollectiveCreateSharesOneObject) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    auto obj = ctx.collective_create<std::vector<int>>(
        []() { return std::make_shared<std::vector<int>>(3, 7); });
    ASSERT_NE(obj, nullptr);
    // Everyone sees the same instance.
    const auto addrs = ctx.allgather(reinterpret_cast<std::uintptr_t>(obj.get()));
    for (auto a : addrs) EXPECT_EQ(a, addrs[0]);
  });
}

TEST_P(RuntimeSweepTest, SequentialCollectivesDoNotInterfere) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    for (int round = 0; round < 20; ++round) {
      const auto sum = ctx.allreduce_sum(static_cast<std::int64_t>(round));
      EXPECT_EQ(sum, static_cast<std::int64_t>(round) * nprocs);
    }
  });
}

TEST_P(RuntimeSweepTest, VtimeMonotonicAcrossOps) {
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    double last = ctx.vtime();
    for (int i = 0; i < 5; ++i) {
      ctx.barrier();
      (void)ctx.allreduce_sum(1);
      const double now = ctx.vtime();
      EXPECT_GE(now, last);
      last = now;
    }
  });
}

TEST_P(RuntimeSweepTest, RankExceptionPropagatesAndAbortsPeers) {
  const int nprocs = GetParam();
  if (nprocs == 1) GTEST_SKIP() << "needs peers to abort";
  EXPECT_THROW(
      spmd_run(nprocs,
               [&](Context& ctx) {
                 if (ctx.rank() == 1) throw InvalidArgument("rank 1 fails");
                 // Other ranks block on a barrier; the abort must wake them.
                 ctx.barrier();
                 ctx.barrier();
               }),
      Error);
}

INSTANTIATE_TEST_SUITE_P(Procs, RuntimeSweepTest, ::testing::Values(1, 2, 3, 4, 8));

// ---- non-parameterized ---------------------------------------------------

TEST(RuntimeTest, InvalidNprocsThrows) {
  EXPECT_THROW(spmd_run(0, [](Context&) {}), InvalidArgument);
  EXPECT_THROW(spmd_run(-3, [](Context&) {}), InvalidArgument);
}

TEST(RuntimeTest, ResultReportsPerRankVtimes) {
  const auto result = spmd_run(3, [](Context& ctx) {
    ctx.sample_compute();
    ctx.charge(1.0 + ctx.rank());
  });
  ASSERT_EQ(result.rank_vtimes.size(), 3u);
  EXPECT_GE(result.max_vtime, 3.0);
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST(RuntimeTest, ComputeScaleMultipliesMeasuredCpu) {
  CommModel slow;
  slow.compute_scale = 100.0;
  CommModel fast;
  fast.compute_scale = 1.0;
  auto burn = [](Context& ctx) {
    volatile double x = 0.0;
    for (int i = 0; i < 3000000; ++i) x = x + 1.0;
    ctx.sample_compute();
  };
  const auto a = spmd_run(1, slow, burn);
  const auto b = spmd_run(1, fast, burn);
  EXPECT_GT(a.max_vtime, b.max_vtime * 10.0);
}

TEST(RuntimeTest, ChargeAddsToClock) {
  spmd_run(1, [](Context& ctx) {
    const double before = ctx.vtime();
    ctx.charge(2.5);
    EXPECT_GE(ctx.vtime() - before, 2.5);
  });
}

TEST(RuntimeTest, ResetVtimeZeroesClock) {
  spmd_run(1, [](Context& ctx) {
    ctx.charge(5.0);
    ctx.reset_vtime();
    EXPECT_LT(ctx.vtime(), 0.1);
  });
}

// ---- comm model sanity -----------------------------------------------------

TEST(CommModelTest, TreeDepth) {
  CommModel m;
  EXPECT_EQ(m.tree_depth(1), 0);
  EXPECT_EQ(m.tree_depth(2), 1);
  EXPECT_EQ(m.tree_depth(3), 2);
  EXPECT_EQ(m.tree_depth(8), 3);
  EXPECT_EQ(m.tree_depth(9), 4);
}

TEST(CommModelTest, RemoteCostsExceedLocal) {
  CommModel m;
  EXPECT_GT(m.onesided(1024, true), m.onesided(1024, false));
  EXPECT_GT(m.atomic_rmw(true), m.atomic_rmw(false));
}

TEST(CommModelTest, CollectiveCostsGrowWithProcs) {
  CommModel m;
  EXPECT_GT(m.allreduce(32, 4096), m.allreduce(4, 4096));
  EXPECT_GT(m.broadcast(32, 4096), m.broadcast(2, 4096));
  EXPECT_GT(m.allgather(32, 4096), m.allgather(2, 4096));
  EXPECT_GT(m.barrier(32), m.barrier(2));
}

TEST(CommModelTest, IoReadScalesWithBytes) {
  CommModel m;
  EXPECT_DOUBLE_EQ(m.io_read(0), 0.0);
  EXPECT_GT(m.io_read(1 << 20), m.io_read(1 << 10));
}

TEST(CommModelTest, ItaniumPresetScalesCompute) {
  EXPECT_GT(itanium_cluster_model().compute_scale, 1.0);
}

}  // namespace
}  // namespace sva::ga
