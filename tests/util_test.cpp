// Unit tests for sva/util: tables, string helpers, RNG, timers, errors.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "sva/util/error.hpp"
#include "sva/util/parse.hpp"
#include "sva/util/rng.hpp"
#include "sva/util/stringutil.hpp"
#include "sva/util/table.hpp"
#include "sva/util/timer.hpp"

namespace sva {
namespace {

// ---- error -----------------------------------------------------------------

TEST(ErrorTest, RequireThrowsOnFalse) {
  EXPECT_THROW(require(false, "boom"), InvalidArgument);
}

TEST(ErrorTest, RequirePassesOnTrue) { EXPECT_NO_THROW(require(true, "fine")); }

TEST(ErrorTest, HierarchyIsCatchableAsError) {
  try {
    throw ProtocolError("p");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "p");
  }
}

// ---- parse ------------------------------------------------------------------

TEST(ParseU64Test, AcceptsPlainDigits) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_EQ(parse_u64("007"), 7u);
  // Exactly UINT64_MAX is the last representable value.
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ull);
}

TEST(ParseU64Test, RejectsSignsWhitespaceAndEmpty) {
  // strtoull accepted all of these (negation wraps, whitespace skips).
  EXPECT_FALSE(parse_u64("-1").has_value());
  EXPECT_FALSE(parse_u64("+1").has_value());
  EXPECT_FALSE(parse_u64(" 1").has_value());
  EXPECT_FALSE(parse_u64("1 ").has_value());
  EXPECT_FALSE(parse_u64("").has_value());
}

TEST(ParseU64Test, RejectsNonDigitsAndMixed) {
  EXPECT_FALSE(parse_u64("abc").has_value());
  EXPECT_FALSE(parse_u64("12a").has_value());
  EXPECT_FALSE(parse_u64("a12").has_value());
  EXPECT_FALSE(parse_u64("1.5").has_value());
  EXPECT_FALSE(parse_u64("0x10").has_value());
}

TEST(ParseU64Test, RejectsOverflow) {
  // One past UINT64_MAX — strtoull reported ERANGE, which was ignored.
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());
  EXPECT_FALSE(parse_u64("99999999999999999999").has_value());
  EXPECT_FALSE(parse_u64("184467440737095516150").has_value());
}

// ---- stringutil -------------------------------------------------------------

TEST(StringUtilTest, SplitAnyBasic) {
  const auto parts = split_any("a b,c", " ,");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitAnyDropsEmptyPieces) {
  const auto parts = split_any("  a   b  ", " ");
  ASSERT_EQ(parts.size(), 2u);
}

TEST(StringUtilTest, SplitAnyEmptyInput) { EXPECT_TRUE(split_any("", " ").empty()); }

TEST(StringUtilTest, SplitAnyNoDelimiters) {
  const auto parts = split_any("abc", " ");
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(StringUtilTest, IsAllDigits) {
  EXPECT_TRUE(is_all_digits("0123"));
  EXPECT_FALSE(is_all_digits("12a"));
  EXPECT_FALSE(is_all_digits(""));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KB");
  EXPECT_EQ(format_bytes(3u << 20), "3.00 MB");
}

// ---- rng --------------------------------------------------------------------

TEST(RngTest, SplitMixIsDeterministic) {
  std::uint64_t s1 = 7, s2 = 7;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(RngTest, Mix64ChangesValue) { EXPECT_NE(mix64(1), 1u); }

TEST(RngTest, SameSeedSameStream) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Xoshiro256 a(123), b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(RngTest, SubstreamsAreIndependent) {
  Xoshiro256 a(9, 0), b(9, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Xoshiro256 rng(6);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, BelowCoversAllValues) {
  Xoshiro256 rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Xoshiro256 rng(9);
  std::array<int, 10> hist{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hist[rng.below(10)];
  for (int count : hist) { EXPECT_NEAR(count, n / 10, n / 100); }
}

// ---- timers -----------------------------------------------------------------

TEST(TimerTest, WallTimerAdvances) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(t.elapsed(), 0.002);
}

TEST(TimerTest, WallTimerReset) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.reset();
  EXPECT_LT(t.elapsed(), 0.004);
}

TEST(TimerTest, ThreadCpuTimerCountsWork) {
  ThreadCpuTimer t;
  volatile double x = 0.0;
  for (int i = 0; i < 2000000; ++i) x = x + 1.0;
  EXPECT_GT(t.elapsed(), 0.0);
}

TEST(TimerTest, ThreadCpuTimerIgnoresSleep) {
  ThreadCpuTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_LT(t.elapsed(), 0.015);
}

TEST(TimerTest, ThreadCpuNowMonotonic) {
  const double a = ThreadCpuTimer::now();
  volatile long long x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  EXPECT_GE(ThreadCpuTimer::now(), a);
}

// ---- table ------------------------------------------------------------------

TEST(TableTest, HeaderRequired) { EXPECT_THROW(Table({}), InvalidArgument); }

TEST(TableTest, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), InvalidArgument);
}

TEST(TableTest, CsvRoundTrip) {
  Table t({"p", "time"});
  t.add_row({"1", "10.0"});
  t.add_row({"2", "5.2"});
  EXPECT_EQ(t.to_csv(), "p,time\n1,10.0\n2,5.2\n");
}

TEST(TableTest, AsciiContainsCellsAndRules) {
  Table t({"col"});
  t.add_row({"value"});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("col"), std::string::npos);
  EXPECT_NE(ascii.find("value"), std::string::npos);
  EXPECT_NE(ascii.find("+--"), std::string::npos);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(std::size_t{42}), "42");
  EXPECT_EQ(Table::num(static_cast<long long>(-7)), "-7");
}

TEST(TableTest, WriteCsvCreatesDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "sva_table_test";
  std::filesystem::remove_all(dir);
  Table t({"x"});
  t.add_row({"1"});
  const auto path = (dir / "deep" / "out.csv").string();
  t.write_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
  std::filesystem::remove_all(dir);
}

TEST(TableTest, DimensionsReported) {
  Table t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 3u);
}

}  // namespace
}  // namespace sva
