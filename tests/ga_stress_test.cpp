// Stress tests for the hand-rolled barrier/exchange fast path: randomized
// collective sequences at P up to 32 (heavily oversubscribing the host),
// abort-mid-collective from a throwing rank, the spin-vs-park crossover,
// and bit-identical allreduce results between the partitioned and
// leader-combine paths.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <vector>

#include "sva/ga/runtime.hpp"

namespace sva::ga {
namespace {

/// Runs `steps` randomly chosen collectives; every rank derives the same
/// sequence from the shared seed (the SPMD protocol), and every result is
/// checked against a closed-form expectation.
void run_random_sequence(int nprocs, unsigned seed, int steps, const CommModel& model) {
  spmd_run(nprocs, model, [&](Context& ctx) {
    std::mt19937 rng(seed);  // identical stream on every rank
    const auto np = static_cast<std::int64_t>(ctx.nprocs());
    const auto r = static_cast<std::int64_t>(ctx.rank());
    for (int step = 0; step < steps; ++step) {
      switch (rng() % 6U) {
        case 0: {
          ctx.barrier();
          break;
        }
        case 1: {  // allreduce, sized to land on either combine path
          const std::size_t n = 1 + rng() % 2000;
          std::vector<std::int64_t> v(n);
          for (std::size_t i = 0; i < n; ++i) {
            v[i] = r * 31 + static_cast<std::int64_t>(i);
          }
          ctx.allreduce_sum(v.data(), v.size());
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(v[i], 31 * np * (np - 1) / 2 + np * static_cast<std::int64_t>(i));
          }
          break;
        }
        case 2: {  // allgatherv with mixed staged/zero-copy contributions
          const std::size_t base = rng() % 5;
          const auto huge_rank = static_cast<std::int64_t>(
              rng() % static_cast<unsigned>(nprocs));  // shared draw
          auto size_of = [&](std::int64_t peer) {
            return peer == huge_rank ? std::size_t{1500}
                                     : base + static_cast<std::size_t>(peer) % 3;
          };
          std::vector<std::int64_t> mine(size_of(r), r * 1000 + step);
          const auto all = ctx.allgatherv(std::span<const std::int64_t>(mine));
          std::size_t pos = 0;
          for (std::int64_t peer = 0; peer < np; ++peer) {
            for (std::size_t i = 0; i < size_of(peer); ++i) {
              ASSERT_EQ(all[pos++], peer * 1000 + step);
            }
          }
          ASSERT_EQ(pos, all.size());
          break;
        }
        case 3: {  // broadcast
          const int root = static_cast<int>(rng() % static_cast<unsigned>(nprocs));
          const std::size_t n = 1 + rng() % 512;
          std::vector<std::int64_t> buf(n, ctx.rank() == root ? 0 : -1);
          if (ctx.rank() == root) {
            for (std::size_t i = 0; i < n; ++i) {
              buf[i] = static_cast<std::int64_t>(i) * 7 + step;
            }
          }
          ctx.broadcast(buf.data(), buf.size(), root);
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(buf[i], static_cast<std::int64_t>(i) * 7 + step);
          }
          break;
        }
        case 4: {  // exclusive scan
          const auto prefix = ctx.exscan_sum(r + 1);
          ASSERT_EQ(prefix, r * (r + 1) / 2);
          break;
        }
        case 5: {  // allgather
          const auto all = ctx.allgather(r * 3 + step);
          ASSERT_EQ(all.size(), static_cast<std::size_t>(np));
          for (std::int64_t peer = 0; peer < np; ++peer) {
            ASSERT_EQ(all[static_cast<std::size_t>(peer)], peer * 3 + step);
          }
          break;
        }
      }
    }
  });
}

class StressSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(StressSweepTest, RandomizedCollectiveSequences) {
  const int nprocs = GetParam();
  for (unsigned seed : {1U, 42U}) {
    run_random_sequence(nprocs, seed, 30, CommModel{});
  }
}

TEST_P(StressSweepTest, AllgathervMixedStagedAndRawContributions) {
  // One rank ships a contribution past the staging cap (zero-copy +
  // departure fence) while its peers stay staged — the concatenation must
  // still be exact and rank-ordered.
  const int nprocs = GetParam();
  spmd_run(nprocs, [&](Context& ctx) {
    for (int round = 0; round < 4; ++round) {
      const int big_rank = round % ctx.nprocs();
      const std::size_t n = ctx.rank() == big_rank ? 3000 : 2 + ctx.rank() % 3;
      std::vector<std::int64_t> mine(n, ctx.rank() * 100 + round);
      const auto all = ctx.allgatherv(std::span<const std::int64_t>(mine));
      std::size_t pos = 0;
      for (int peer = 0; peer < ctx.nprocs(); ++peer) {
        const std::size_t peer_n =
            peer == big_rank ? 3000 : 2 + static_cast<std::size_t>(peer) % 3;
        for (std::size_t i = 0; i < peer_n; ++i) {
          ASSERT_EQ(all[pos++], peer * 100 + round);
        }
      }
      ASSERT_EQ(pos, all.size());
    }
  });
}

TEST_P(StressSweepTest, AbortMidCollectiveWakesEveryRank) {
  const int nprocs = GetParam();
  if (nprocs < 2) GTEST_SKIP() << "needs peers to abort";
  for (const int fail_step : {0, 3, 9}) {
    EXPECT_THROW(
        spmd_run(nprocs,
                 [&](Context& ctx) {
                   for (int step = 0; step < 12; ++step) {
                     if (ctx.rank() == 1 && step == fail_step) {
                       throw InvalidArgument("rank 1 fails mid-sequence");
                     }
                     (void)ctx.allreduce_sum(static_cast<std::int64_t>(step));
                     ctx.barrier();
                   }
                 }),
        Error);
  }
}

TEST_P(StressSweepTest, ThrowInsideExchangeConsumeAbortsPeers) {
  // The consume callback runs between the arrival round and the departure
  // fence; a throw there must not strand peers inside the fence.
  const int nprocs = GetParam();
  if (nprocs < 2) GTEST_SKIP() << "needs peers to abort";
  EXPECT_THROW(
      spmd_run(nprocs,
               [&](Context& ctx) {
                 const int value = ctx.rank();
                 ctx.exchange(&value, 0.0, [&](const std::vector<const void*>&) {
                   if (ctx.rank() == 0) throw InvalidArgument("consume fails");
                 });
                 ctx.barrier();
               }),
      Error);
}

INSTANTIATE_TEST_SUITE_P(Procs, StressSweepTest, ::testing::Values(2, 4, 8, 16, 32));

// ---- spin-vs-park crossover ------------------------------------------------

TEST(StressTest, SpinAndParkPathsAgree) {
  // Force the pure-park path (spin budget 0) and a spin-first path; both
  // must produce identical collective results.
  for (const int spin : {0, 2000}) {
    CommModel model;
    model.host_spin_iters = spin;
    run_random_sequence(8, /*seed=*/7, /*steps=*/25, model);
  }
}

TEST(StressTest, OversubscribedAutoSpinDefaultsSafely) {
  // P far beyond the host's cores with the automatic spin policy: the
  // barrier must park rather than livelock.  Correctness is the assert;
  // completing promptly is the point.
  run_random_sequence(32, /*seed=*/11, /*steps=*/12, CommModel{});
}

// ---- partitioned vs leader-combine determinism -----------------------------

/// Runs an allreduce over "awkward" doubles (spanning magnitudes, so
/// summation order matters) with the given leader cutoff and returns the
/// result bits observed on rank 0.
std::vector<std::uint64_t> allreduce_bits(int nprocs, std::size_t leader_max_bytes) {
  std::vector<std::uint64_t> bits;
  CommModel model;
  model.host_leader_max_bytes = leader_max_bytes;
  spmd_run(nprocs, model, [&](Context& ctx) {
    const std::size_t n = 1536;  // 12 KiB of doubles
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = (0.1 + ctx.rank()) * (static_cast<double>(i) + 0.3) *
             (i % 3 == 0 ? 1.0e-9 : 1.0e6);
    }
    ctx.allreduce_sum(v.data(), v.size());
    if (ctx.rank() == 0) {
      bits.reserve(n);
      for (double x : v) bits.push_back(std::bit_cast<std::uint64_t>(x));
    }
  });
  return bits;
}

TEST(StressTest, PartitionedAndLeaderAllreduceAreBitIdentical) {
  for (const int nprocs : {2, 4, 8}) {
    const auto partitioned = allreduce_bits(nprocs, /*leader_max_bytes=*/0);
    const auto leader = allreduce_bits(nprocs, /*leader_max_bytes=*/1 << 20);
    ASSERT_EQ(partitioned.size(), leader.size());
    for (std::size_t i = 0; i < partitioned.size(); ++i) {
      ASSERT_EQ(partitioned[i], leader[i]) << "element " << i;
    }
  }
}

TEST(StressTest, StagedAndZeroCopyAllgathervAgree) {
  // The staging cap is a host knob: forcing everything through either
  // path must not change the gathered bytes.
  auto gather_with_cap = [](std::size_t cap) {
    std::vector<std::int64_t> result;
    CommModel model;
    model.host_vstage_max_bytes = cap;
    spmd_run(4, model, [&](Context& ctx) {
      std::vector<std::int64_t> mine(200 + static_cast<std::size_t>(ctx.rank()) * 13,
                                     ctx.rank() * 7 + 1);
      auto all = ctx.allgatherv(std::span<const std::int64_t>(mine));
      if (ctx.rank() == 0) result = std::move(all);
    });
    return result;
  };
  const auto staged = gather_with_cap(std::size_t{1} << 30);
  const auto raw = gather_with_cap(0);
  ASSERT_EQ(staged, raw);
}

}  // namespace
}  // namespace sva::ga
