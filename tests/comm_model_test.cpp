// Tests for the LogGP-style communication model: every figure's modeled
// time is built from these formulas, so their structural properties
// (monotonicity in P and bytes, locality discounts, collective tree
// depths, the serial-vs-parallel I/O distinction) are pinned here.
#include <gtest/gtest.h>

#include "sva/ga/comm_model.hpp"

namespace sva::ga {
namespace {

TEST(CommModelTest, TreeDepthIsCeilLog2) {
  CommModel m;
  EXPECT_EQ(m.tree_depth(1), 0);
  EXPECT_EQ(m.tree_depth(2), 1);
  EXPECT_EQ(m.tree_depth(3), 2);
  EXPECT_EQ(m.tree_depth(4), 2);
  EXPECT_EQ(m.tree_depth(5), 3);
  EXPECT_EQ(m.tree_depth(32), 5);
  EXPECT_EQ(m.tree_depth(33), 6);
}

TEST(CommModelTest, LocalOneSidedIsCheaperThanRemote) {
  CommModel m;
  for (std::size_t bytes : {8u, 1024u, 1u << 20}) {
    EXPECT_LT(m.onesided(bytes, false), m.onesided(bytes, true)) << bytes;
  }
  EXPECT_LT(m.atomic_rmw(false), m.atomic_rmw(true));
}

TEST(CommModelTest, CostsIncreaseWithBytes) {
  CommModel m;
  EXPECT_LT(m.onesided(8, true), m.onesided(1 << 20, true));
  EXPECT_LT(m.broadcast(8, 64), m.broadcast(8, 1 << 20));
  EXPECT_LT(m.allgather(8, 64), m.allgather(8, 1 << 20));
}

TEST(CommModelTest, CollectivesGrowWithProcessorCount) {
  CommModel m;
  EXPECT_LT(m.barrier(2), m.barrier(32));
  EXPECT_LT(m.broadcast(2, 1024), m.broadcast(32, 1024));
  EXPECT_LT(m.allreduce(2, 1024), m.allreduce(32, 1024));
  EXPECT_LT(m.allgather(2, 1024), m.allgather(32, 1024));
}

TEST(CommModelTest, AllreduceIsTwiceReduce) {
  CommModel m;
  EXPECT_DOUBLE_EQ(m.allreduce(16, 4096), 2.0 * m.reduce(16, 4096));
}

TEST(CommModelTest, SingleRankCollectivesAreFree) {
  CommModel m;
  EXPECT_DOUBLE_EQ(m.barrier(1), 0.0);
  EXPECT_DOUBLE_EQ(m.broadcast(1, 1 << 20), 0.0);
  EXPECT_DOUBLE_EQ(m.allreduce(1, 1 << 20), 0.0);
}

TEST(CommModelTest, ParallelFsChargesLocalSlice) {
  CommModel m;
  m.io_parallel = true;
  EXPECT_DOUBLE_EQ(m.io_read(1000, 32000), m.io_read(1000));
}

TEST(CommModelTest, SerialDiskChargesWholeCorpus) {
  CommModel m;
  m.io_parallel = false;
  EXPECT_DOUBLE_EQ(m.io_read(1000, 32000), m.io_read(32000));
  // Serial >= parallel always.
  CommModel p;
  p.io_parallel = true;
  EXPECT_GE(m.io_read(1000, 32000), p.io_read(1000, 32000));
}

TEST(CommModelTest, ItaniumPresetScalesComputeOnly) {
  const CommModel base;
  const CommModel preset = itanium_cluster_model();
  EXPECT_GT(preset.compute_scale, base.compute_scale);
  EXPECT_DOUBLE_EQ(preset.alpha, base.alpha);
  EXPECT_DOUBLE_EQ(preset.beta, base.beta);
}

}  // namespace
}  // namespace sva::ga
