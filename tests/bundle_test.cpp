// Model-bundle tests: an Engine run at one processor/shard count exports
// a bundle that a Session opened at ANY other processor count serves
// with answers bit-identical to the free functions over the live
// EngineResult; and the artifact rejects every corruption (truncation,
// bit flips anywhere) with FormatError, like the checkpoint files.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "sva/corpus/generator.hpp"
#include "sva/corpus/reader.hpp"
#include "sva/engine/bundle.hpp"
#include "sva/engine/delta.hpp"
#include "sva/engine/engine.hpp"
#include "sva/engine/section_file.hpp"
#include "sva/query/session.hpp"
#include "sva/util/error.hpp"

namespace sva::engine {
namespace {

corpus::CorpusSpec tiny_spec() {
  corpus::CorpusSpec spec;
  spec.kind = corpus::CorpusKind::kPubMedLike;
  spec.seed = 4242;
  spec.target_bytes = 48 << 10;
  spec.core_vocabulary = 700;
  spec.num_themes = 4;
  spec.theme_vocabulary = 50;
  spec.theme_token_fraction = 0.3;
  return spec;
}

EngineConfig tiny_config() {
  EngineConfig config;
  config.topicality.num_major_terms = 100;
  config.kmeans.k = 4;
  return config;
}

std::filesystem::path fresh_path(const std::string& name) {
  const auto path = std::filesystem::path(::testing::TempDir()) /
                    ("sva_bundle_" + name + "_" + std::to_string(::getpid()) + ".svab");
  std::filesystem::remove(path);
  return path;
}

std::vector<std::uint8_t> slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  in.seekg(0, std::ios::end);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

bool same_bits(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

/// Reference answers computed by the free functions over the live
/// EngineResult, plus the bundle exported by the same Engine::run.
struct Fixture {
  corpus::CorpusSpec spec = tiny_spec();
  corpus::GeneratedReader reader{spec};
  EngineConfig config = tiny_config();
  std::filesystem::path bundle = fresh_path("fixture");

  std::vector<query::SimilarDoc> by_doc;
  std::vector<query::ClusterSummary> summaries;
  std::uint64_t probe_doc = 0;
  std::uint64_t num_records = 0;

  Fixture() {
    // Written at P=4 over 5 ingestion shards — deliberately unlike every
    // processor count the Sessions below open it with.
    Engine engine(config);
    PipelineOptions options;
    options.sharding.num_shards = 5;
    options.export_bundle = bundle;
    ga::spmd_run(4, [&](ga::Context& ctx) {
      const auto result = engine.run(ctx, reader, options);
      ASSERT_TRUE(result.has_value());
      const std::uint64_t probe = result->num_records / 2;
      auto hits = query::similar_to_document(ctx, result->signatures, probe, 8);
      std::vector<query::ClusterSummary> sums;
      for (std::size_t c = 0; c < result->clustering.centroids.rows(); ++c) {
        sums.push_back(query::summarize_cluster(ctx, result->signatures,
                                                result->clustering.assignment,
                                                result->clustering, result->theme_labels,
                                                static_cast<int>(c)));
      }
      if (ctx.rank() == 0) {
        num_records = result->num_records;
        probe_doc = probe;
        by_doc = std::move(hits);
        summaries = std::move(sums);
      }
    });
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

// ---- cross-P serving equivalence ----------------------------------------

class BundleProcsTest : public ::testing::TestWithParam<int> {};

TEST_P(BundleProcsTest, SessionServesBitIdenticalAnswersAtAnyP) {
  const Fixture& f = fixture();
  const int nprocs = GetParam();

  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    auto session = query::Session::open(ctx, f.bundle);
    EXPECT_EQ(session.num_documents(), f.num_records);
    EXPECT_EQ(session.config_fingerprint(), Engine::config_fingerprint(f.config));

    const auto hits = session.similar(f.probe_doc, 8);
    std::vector<query::Query> batch;
    for (std::size_t c = 0; c < session.num_clusters(); ++c) {
      batch.push_back(query::Query::cluster_summary(static_cast<int>(c)));
    }
    const auto results = session.run_batch(batch);

    if (ctx.rank() != 0) return;
    ASSERT_EQ(hits.size(), f.by_doc.size());
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].doc_id, f.by_doc[i].doc_id) << i;
      EXPECT_TRUE(same_bits(hits[i].similarity, f.by_doc[i].similarity)) << i;
    }
    ASSERT_EQ(results.size(), f.summaries.size());
    for (std::size_t c = 0; c < results.size(); ++c) {
      const auto& got = results[c].summary;
      const auto& want = f.summaries[c];
      EXPECT_EQ(got.size, want.size);
      EXPECT_EQ(got.top_terms, want.top_terms);
      EXPECT_EQ(got.representatives, want.representatives);
      EXPECT_TRUE(same_bits(got.cohesion, want.cohesion)) << "cluster " << c;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, BundleProcsTest, ::testing::Values(1, 2, 8));

TEST(BundleTest, ResumedRunExportsTheSameBundle) {
  const Fixture& f = fixture();
  const auto ckpt_dir = std::filesystem::path(::testing::TempDir()) /
                        ("sva_bundle_resume_" + std::to_string(::getpid()));
  std::filesystem::remove_all(ckpt_dir);
  const auto resumed_bundle = fresh_path("resumed");

  Engine engine(f.config);
  PipelineOptions options;
  options.checkpoint_dir = ckpt_dir;
  options.stop_after = Stage::kCluster;
  ga::spmd_run(2, [&](ga::Context& ctx) {
    EXPECT_FALSE(engine.run(ctx, f.reader, options).has_value());
  });
  ga::spmd_run(3, [&](ga::Context& ctx) {
    (void)engine.resume(ctx, ckpt_dir, resumed_bundle);
  });

  // The resumed export serves the identical answers.
  ga::spmd_run(2, [&](ga::Context& ctx) {
    auto session = query::Session::open(ctx, resumed_bundle);
    const auto hits = session.similar(f.probe_doc, 8);
    if (ctx.rank() != 0) return;
    ASSERT_EQ(hits.size(), f.by_doc.size());
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].doc_id, f.by_doc[i].doc_id) << i;
      EXPECT_TRUE(same_bits(hits[i].similarity, f.by_doc[i].similarity)) << i;
    }
  });
}

TEST(BundleTest, StandaloneExportOfInMemoryResultRoundTrips) {
  // export_bundle(EngineResult) with no record sizes (uniform weights):
  // a run_text_engine result is servable without the Engine facade.
  const Fixture& f = fixture();
  const auto bundle = fresh_path("standalone");
  const auto sources = corpus::generate_corpus(f.spec);
  auto reference = std::make_shared<std::vector<query::SimilarDoc>>();
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const auto result = run_text_engine(ctx, sources, f.config);
    export_bundle(ctx, result, f.config, bundle);
    auto hits = query::similar_to_document(ctx, result.signatures, 3, 5);
    if (ctx.rank() == 0) *reference = std::move(hits);
  });
  ga::spmd_run(3, [&](ga::Context& ctx) {
    auto session = query::Session::open(ctx, bundle);
    const auto hits = session.similar(std::uint64_t{3}, 5);
    if (ctx.rank() != 0) return;
    ASSERT_EQ(hits.size(), reference->size());
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].doc_id, (*reference)[i].doc_id) << i;
      EXPECT_TRUE(same_bits(hits[i].similarity, (*reference)[i].similarity)) << i;
    }
  });
}

// ---- corruption fuzzing --------------------------------------------------

TEST(BundleFuzzTest, EveryTruncationRaisesFormatError) {
  const Fixture& f = fixture();
  const auto bytes = slurp(f.bundle);
  ASSERT_GT(bytes.size(), 0u);
  // Every prefix in the header region, then strided through the payload.
  for (std::size_t cut = 0; cut < bytes.size();
       cut += (cut < 256 ? 1 : bytes.size() / 97 + 1)) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW(
        (void)SectionedFile::parse(prefix, kBundleMagic, kBundleFormatVersion, "bundle"),
        FormatError)
        << "cut at " << cut;
  }
}

TEST(BundleFuzzTest, EveryBitFlipRaisesFormatError) {
  const Fixture& f = fixture();
  const auto original = slurp(f.bundle);
  // Strided sweep: header densely, payload sampled.
  for (std::size_t pos = 0; pos < original.size();
       pos += (pos < 256 ? 1 : original.size() / 131 + 1)) {
    auto bytes = original;
    bytes[pos] ^= 0x10;
    EXPECT_THROW(
        (void)SectionedFile::parse(bytes, kBundleMagic, kBundleFormatVersion, "bundle"),
        FormatError)
        << "flip at " << pos;
  }
}

TEST(BundleFuzzTest, GarbageAndEmptyInputsAreRejected) {
  EXPECT_THROW((void)SectionedFile::parse({}, kBundleMagic, kBundleFormatVersion, "bundle"),
               FormatError);
  const std::vector<std::uint8_t> garbage(64, 0xAB);
  EXPECT_THROW(
      (void)SectionedFile::parse(garbage, kBundleMagic, kBundleFormatVersion, "bundle"),
      FormatError);
  // A checkpoint file is not a bundle: the magic check must refuse it.
  std::vector<std::uint8_t> wrong_magic = {'S', 'V', 'A', 'C', 'K', 'P', 'T', '1'};
  wrong_magic.resize(64, 0);
  EXPECT_THROW(
      (void)SectionedFile::parse(wrong_magic, kBundleMagic, kBundleFormatVersion, "bundle"),
      FormatError);
}

TEST(BundleFuzzTest, TruncatedFileFailsCollectivelyThroughTheLoader) {
  const Fixture& f = fixture();
  auto bytes = slurp(f.bundle);
  bytes.resize(bytes.size() / 2);
  const auto path = fresh_path("truncated");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(ga::spmd_run(2,
                            [&](ga::Context& ctx) {
                              (void)query::Session::open(ctx, path);
                            }),
               FormatError);
  EXPECT_THROW(ga::spmd_run(1,
                            [&](ga::Context& ctx) { (void)load_bundle(ctx, path); }),
               FormatError);
}

// ---- generation-link fuzzing ---------------------------------------------

/// A generation-1 bundle delta-ingested over the fixture's base.
struct DeltaFixture {
  std::filesystem::path gen1 = fresh_path("gen1");
  corpus::SourceSet new_docs;

  DeltaFixture() {
    const Fixture& f = fixture();
    corpus::CorpusSpec spec = tiny_spec();
    spec.seed = 777;
    spec.target_bytes = 8 << 10;
    new_docs = corpus::generate_corpus(spec);
    const corpus::InMemoryReader reader(new_docs);
    ga::spmd_run(2, [&](ga::Context& ctx) {
      (void)ingest_delta(ctx, f.bundle, reader, gen1);
    });
  }
};

const DeltaFixture& delta_fixture() {
  static const DeltaFixture d;
  return d;
}

TEST(BundleGenerationFuzzTest, CorruptedParentFingerprintRaisesFormatError) {
  const DeltaFixture& d = delta_fixture();
  // Rewrite the bundle with one bit of the parent-lineage word flipped
  // (fixed offset 8 of the "generation" section), re-checksumming every
  // section so only the lineage self-check can catch it.
  auto file = SectionedFile::read(d.gen1, kBundleMagic, kBundleFormatVersion, "bundle");
  SectionedFile corrupted;
  corrupted.tag = file.tag;
  corrupted.fingerprint = file.fingerprint;
  for (const char* name : {"meta", "weights", "signatures", "cluster", "labels",
                           "topic_terms", "projection", "generation", "vocab", "model",
                           "config"}) {
    if (!file.has(name)) continue;
    std::vector<std::uint8_t> payload = file.section(name);
    if (std::string_view(name) == "generation") payload[8] ^= 0x01;
    corrupted.add(name, std::move(payload));
  }
  const auto path = fresh_path("bad_parent");
  corrupted.write(path, kBundleMagic, kBundleFormatVersion);
  try {
    ga::spmd_run(1, [&](ga::Context& ctx) { (void)load_bundle(ctx, path); });
    FAIL() << "corrupted parent fingerprint must not load";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("generation lineage mismatch"),
              std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
}

TEST(BundleGenerationFuzzTest, GenerationCounterRollbackRaisesFormatError) {
  const Fixture& f = fixture();
  const DeltaFixture& d = delta_fixture();
  BundleView base_view, gen1_view;
  ga::spmd_run(1, [&](ga::Context& ctx) {
    base_view = load_bundle(ctx, f.bundle);
    gen1_view = load_bundle(ctx, d.gen1);
  });
  // Forward link is fine...
  EXPECT_NO_THROW(require_extends(base_view, gen1_view));
  // ...but a counter that fails to advance by exactly one is a rollback.
  try {
    require_extends(gen1_view, base_view);
    FAIL() << "generation rollback must be rejected";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("generation counter rollback"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(require_extends(gen1_view, gen1_view), FormatError);
}

TEST(BundleGenerationFuzzTest, DeltaOpenedWithoutItsBaseRaisesFormatError) {
  const DeltaFixture& d = delta_fixture();
  // A different gen-0 build (other seed): right counter, wrong lineage.
  corpus::CorpusSpec alt = tiny_spec();
  alt.seed = 999;
  const corpus::GeneratedReader alt_reader(alt);
  const auto alt_path = fresh_path("alt_base");
  Engine engine(tiny_config());
  PipelineOptions options;
  options.export_bundle = alt_path;
  BundleView alt_view, gen1_view;
  ga::spmd_run(1, [&](ga::Context& ctx) {
    (void)engine.run(ctx, alt_reader, options);
    alt_view = load_bundle(ctx, alt_path);
    gen1_view = load_bundle(ctx, d.gen1);
  });
  try {
    require_extends(alt_view, gen1_view);
    FAIL() << "a delta must not open over a foreign base";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("delta bundle opened without its base"),
              std::string::npos)
        << e.what();
  }
  std::filesystem::remove(alt_path);
}

TEST(BundleTest, MissingFileThrows) {
  EXPECT_THROW(ga::spmd_run(1,
                            [](ga::Context& ctx) {
                              (void)load_bundle(ctx, "/nonexistent/nothing.svab");
                            }),
               Error);
}

}  // namespace
}  // namespace sva::engine
