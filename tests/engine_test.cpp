// End-to-end tests for the text engine: pipeline integrity, the central
// P-invariance property (same corpus => same products for any processor
// count), telemetry, and the single-call harness.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "sva/corpus/generator.hpp"
#include "sva/engine/pipeline.hpp"

namespace sva::engine {
namespace {

corpus::SourceSet small_corpus(corpus::CorpusKind kind = corpus::CorpusKind::kPubMedLike,
                               std::size_t bytes = 192 << 10) {
  corpus::CorpusSpec spec;
  spec.kind = kind;
  spec.target_bytes = bytes;
  spec.core_vocabulary = 1500;
  spec.num_themes = 6;
  spec.theme_vocabulary = 100;
  spec.theme_token_fraction = 0.3;
  return corpus::generate_corpus(spec);
}

EngineConfig small_config() {
  EngineConfig config;
  config.topicality.num_major_terms = 200;
  config.kmeans.k = 6;
  return config;
}

class EngineSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineSweepTest, PipelineProducesCoherentProducts) {
  const int nprocs = GetParam();
  const auto sources = small_corpus();
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const EngineResult r = run_text_engine(ctx, sources, small_config());

    EXPECT_EQ(r.num_records, sources.size());
    EXPECT_GT(r.num_terms, 100u);
    EXPECT_GT(r.selection.n(), 0u);
    EXPECT_EQ(r.dimension, r.selection.m());
    EXPECT_EQ(r.signatures.docvecs.cols(), r.dimension);
    EXPECT_EQ(r.clustering.centroids.cols(), r.dimension);

    // Rank 0 gathered every document's coordinates and assignment.
    if (ctx.rank() == 0) {
      EXPECT_EQ(r.projection.all_doc_ids.size(), sources.size());
      EXPECT_EQ(r.projection.all_xy.size(), sources.size() * 2);
      EXPECT_EQ(r.all_assignment.size(), sources.size());
      for (auto a : r.all_assignment) {
        EXPECT_GE(a, 0);
        EXPECT_LT(a, static_cast<std::int32_t>(r.clustering.centroids.rows()));
      }
    }

    // Theme labels exist for every cluster.
    EXPECT_EQ(r.theme_labels.size(), r.clustering.centroids.rows());
    for (const auto& labels : r.theme_labels) EXPECT_FALSE(labels.empty());
  });
}

TEST_P(EngineSweepTest, ComponentTimingsArePositiveAndConsistent) {
  const int nprocs = GetParam();
  const auto sources = small_corpus();
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const EngineResult r = run_text_engine(ctx, sources, small_config());
    EXPECT_GT(r.timings.scan, 0.0);
    EXPECT_GT(r.timings.index, 0.0);
    EXPECT_GT(r.timings.topic, 0.0);
    EXPECT_GT(r.timings.am, 0.0);
    EXPECT_GT(r.timings.docvec, 0.0);
    EXPECT_GT(r.timings.clusproj, 0.0);
    EXPECT_NEAR(r.timings.total(),
                r.timings.scan + r.timings.index + r.timings.signature_generation() +
                    r.timings.clusproj,
                1e-9);
    // Timings are identical on every rank (max-synchronized clocks).
    const auto totals = ctx.allgather(r.timings.total());
    for (double t : totals) EXPECT_DOUBLE_EQ(t, totals[0]);
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, EngineSweepTest, ::testing::Values(1, 2, 4));

TEST(EngineTest, ResultsAreIndependentOfProcessorCount) {
  // The headline invariant: vocabulary, topics, cluster sizes and final
  // coordinates agree across P (coordinates within FP tolerance).
  const auto sources = small_corpus();
  const auto config = small_config();

  struct Snapshot {
    std::vector<std::string> topics;
    std::vector<std::int64_t> cluster_sizes;
    std::map<std::uint64_t, std::pair<double, double>> coords;
    std::uint64_t num_terms = 0;
  };
  auto capture = [&](int nprocs) {
    auto snap = std::make_shared<Snapshot>();
    ga::spmd_run(nprocs, [&](ga::Context& ctx) {
      const EngineResult r = run_text_engine(ctx, sources, config);
      if (ctx.rank() != 0) return;
      snap->num_terms = r.num_terms;
      for (auto t : r.selection.topic_terms) {
        snap->topics.push_back(r.vocabulary->terms[static_cast<std::size_t>(t)]);
      }
      snap->cluster_sizes = r.clustering.cluster_sizes;
      for (std::size_t i = 0; i < r.projection.all_doc_ids.size(); ++i) {
        snap->coords[r.projection.all_doc_ids[i]] = {r.projection.all_xy[2 * i],
                                                     r.projection.all_xy[2 * i + 1]};
      }
    });
    return snap;
  };

  const auto s1 = capture(1);
  const auto s3 = capture(3);
  EXPECT_EQ(s1->num_terms, s3->num_terms);
  EXPECT_EQ(s1->topics, s3->topics);
  EXPECT_EQ(s1->cluster_sizes, s3->cluster_sizes);
  ASSERT_EQ(s1->coords.size(), s3->coords.size());
  for (const auto& [doc, xy1] : s1->coords) {
    const auto& xy3 = s3->coords.at(doc);
    EXPECT_NEAR(xy1.first, xy3.first, 1e-5) << "doc " << doc;
    EXPECT_NEAR(xy1.second, xy3.second, 1e-5) << "doc " << doc;
  }
}

TEST(EngineTest, DeterministicForSameInputs) {
  const auto sources = small_corpus(corpus::CorpusKind::kTrecLike, 128 << 10);
  const auto config = small_config();
  auto run_once = [&]() {
    auto coords = std::make_shared<std::vector<double>>();
    ga::spmd_run(2, [&](ga::Context& ctx) {
      const EngineResult r = run_text_engine(ctx, sources, config);
      if (ctx.rank() == 0) *coords = r.projection.all_xy;
    });
    return coords;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) EXPECT_EQ((*a)[i], (*b)[i]);
}

TEST(EngineTest, TrecPipelineRuns) {
  const auto sources = small_corpus(corpus::CorpusKind::kTrecLike, 128 << 10);
  ga::spmd_run(2, [&](ga::Context& ctx) {
    EngineConfig config = small_config();
    config.tokenizer.drop_numeric = true;
    const EngineResult r = run_text_engine(ctx, sources, config);
    EXPECT_EQ(r.num_records, sources.size());
    EXPECT_GT(r.dimension, 0u);
  });
}

TEST(EngineTest, EmptySourcesThrow) {
  corpus::SourceSet empty;
  EXPECT_THROW(ga::spmd_run(1, [&](ga::Context& ctx) {
    (void)run_text_engine(ctx, empty, {});
  }), Error);
}

TEST(EngineTest, RunPipelineHarnessReturnsRankZeroView) {
  const auto sources = small_corpus();
  const PipelineRun run = run_pipeline(2, ga::CommModel{}, sources, small_config());
  EXPECT_EQ(run.result.projection.all_doc_ids.size(), sources.size());
  EXPECT_GT(run.modeled_seconds, 0.0);
  EXPECT_GT(run.wall_seconds, 0.0);
  EXPECT_NEAR(run.modeled_seconds, run.result.timings.total(), 1e-9);
}

TEST(EngineTest, ThemeLabelsCanBeDisabled) {
  const auto sources = small_corpus();
  EngineConfig config = small_config();
  config.theme_label_terms = 0;
  ga::spmd_run(1, [&](ga::Context& ctx) {
    const EngineResult r = run_text_engine(ctx, sources, config);
    EXPECT_TRUE(r.theme_labels.empty());
  });
}

TEST(EngineTest, AdaptiveDimensionalityTriggersOnStarvedTopicSpace) {
  const auto sources = small_corpus();
  EngineConfig config = small_config();
  config.topicality.num_major_terms = 10;  // starved on purpose
  config.signature.adaptive = true;
  config.signature.max_null_fraction = 0.0;
  config.signature.max_rounds = 2;
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const EngineResult r = run_text_engine(ctx, sources, config);
    EXPECT_EQ(r.null_fraction_per_round.size(),
              static_cast<std::size_t>(r.signature_rounds));
    if (r.signature_rounds > 1) {
      EXPECT_GT(r.selection.n(), 10u);
    }
  });
}

TEST(EngineTest, ModeledTimeDecreasesWithMoreProcessors) {
  // The headline scaling claim at small scale: P=4 must be materially
  // faster than P=1 in modeled time.  The corpus is sized so the real
  // measured compute dominates host-contention noise, and the threshold
  // leaves margin for that noise (ideal would be ~3-4x).
  const auto sources = small_corpus(corpus::CorpusKind::kPubMedLike, 1 << 20);
  const auto config = small_config();
  const PipelineRun p1 = run_pipeline(1, ga::CommModel{}, sources, config);
  const PipelineRun p4 = run_pipeline(4, ga::CommModel{}, sources, config);
  EXPECT_LT(p4.modeled_seconds, p1.modeled_seconds);
  const double speedup = p1.modeled_seconds / p4.modeled_seconds;
  EXPECT_GT(speedup, 1.5) << "expected meaningful parallel speedup";
}

TEST(EngineTest, ComponentLabelLookup) {
  ComponentTimings t;
  t.scan = 1.0;
  t.clusproj = 2.0;
  EXPECT_DOUBLE_EQ(t.by_label("scan"), 1.0);
  EXPECT_DOUBLE_EQ(t.by_label("ClusProj"), 2.0);
  EXPECT_THROW((void)t.by_label("bogus"), InvalidArgument);
  EXPECT_EQ(ComponentTimings::labels().size(), 6u);
}

}  // namespace
}  // namespace sva::engine
