// Tests for the SectionedFile write path's durability/atomicity
// contract: temp-then-rename publication, PID-suffixed temp files so
// concurrent writers to one path never clobber each other, cleanup of
// the temp on a failed write, and corruption rejection on read.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "sva/engine/section_file.hpp"
#include "sva/util/error.hpp"

namespace sva::engine {
namespace {

constexpr char kMagic[8] = {'T', 'E', 'S', 'T', 'S', 'E', 'C', '1'};
constexpr std::uint64_t kVersion = 1;

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   ("sva_secfile_" + name + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// A file whose single section is `writer` repeated — each writer's
/// output is distinguishable and internally consistent.
SectionedFile make_variant(std::uint64_t writer) {
  SectionedFile f;
  f.tag = writer;
  f.fingerprint = 0xF00D + writer;
  std::vector<std::uint8_t> payload(1024, static_cast<std::uint8_t>(writer));
  f.add("payload", std::move(payload));
  return f;
}

TEST(SectionFileTest, WriteReadRoundTrip) {
  const auto dir = fresh_dir("roundtrip");
  const auto path = dir / "artifact.bin";
  make_variant(7).write(path, kMagic, kVersion);

  const auto loaded = SectionedFile::read(path, kMagic, kVersion, "test");
  EXPECT_EQ(loaded.tag, 7u);
  EXPECT_EQ(loaded.fingerprint, 0xF00Du + 7u);
  ASSERT_TRUE(loaded.has("payload"));
  EXPECT_EQ(loaded.section("payload").size(), 1024u);
  EXPECT_EQ(loaded.section("payload")[0], 7u);
}

TEST(SectionFileTest, WriteLeavesNoTempBehind) {
  const auto dir = fresh_dir("notemp");
  const auto path = dir / "artifact.bin";
  make_variant(1).write(path, kMagic, kVersion);
  make_variant(2).write(path, kMagic, kVersion);  // overwrite is fine

  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(e.path().filename(), "artifact.bin")
        << "stray file left behind: " << e.path();
  }
  EXPECT_EQ(entries, 1u);
}

TEST(SectionFileTest, ConcurrentWritersToOnePathNeverTearTheFile) {
  const auto dir = fresh_dir("concurrent");
  const auto path = dir / "artifact.bin";

  // Several threads publish different variants to the SAME final path.
  // The PID/temp discipline must guarantee the final file is always one
  // complete variant — never an interleaving — and every rename wins or
  // loses atomically.  (Same-PID writers stress the rename ordering; the
  // PID suffix itself guards cross-process writers, e.g. two daemons.)
  constexpr int kWriters = 4;
  constexpr int kRounds = 12;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int r = 0; r < kRounds; ++r) {
        make_variant(static_cast<std::uint64_t>(w)).write(path, kMagic, kVersion);
        // Interleave with readers: whatever is under the final name must
        // always parse as a complete artifact.
        const auto snap = SectionedFile::read(path, kMagic, kVersion, "test");
        const auto& payload = snap.section("payload");
        ASSERT_EQ(payload.size(), 1024u);
        for (const auto b : payload) {
          ASSERT_EQ(b, payload[0]) << "torn payload: mixed writers in one file";
        }
        ASSERT_EQ(snap.tag, payload[0]);
      }
    });
  }
  for (auto& t : writers) t.join();

  // Settled state: one coherent variant, no temp debris.
  const auto last = SectionedFile::read(path, kMagic, kVersion, "test");
  EXPECT_LT(last.tag, static_cast<std::uint64_t>(kWriters));
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(e.path().filename(), "artifact.bin") << "temp debris: " << e.path();
  }
  EXPECT_EQ(entries, 1u);
}

TEST(SectionFileTest, FailedWriteThrowsAndLeavesNothing) {
  const auto dir = fresh_dir("fail");
  // The "parent directory" is actually a file: creating the temp fails.
  const auto blocker = dir / "blocker";
  {
    std::ofstream out(blocker);
    out << "x";
  }
  const auto path = blocker / "artifact.bin";  // blocker is not a directory
  EXPECT_THROW(make_variant(1).write(path, kMagic, kVersion), Error);

  // Nothing new appeared next to the blocker.
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(e.path().filename(), "blocker");
  }
  EXPECT_EQ(entries, 1u);
}

TEST(SectionFileTest, RejectsCorruptedBytes) {
  const auto dir = fresh_dir("corrupt");
  const auto path = dir / "artifact.bin";
  make_variant(3).write(path, kMagic, kVersion);

  auto bytes = SectionedFile::read_file_bytes(path, "test");
  bytes[bytes.size() / 2] ^= 0x40;  // flip one bit mid-payload
  EXPECT_THROW(SectionedFile::parse(bytes, kMagic, kVersion, "test"), FormatError);

  bytes = SectionedFile::read_file_bytes(path, "test");
  bytes.resize(bytes.size() - 1);  // truncate
  EXPECT_THROW(SectionedFile::parse(bytes, kMagic, kVersion, "test"), FormatError);
}

}  // namespace
}  // namespace sva::engine
