// Tests for distributed k-means, PCA and projection/ThemeView.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>

#include "sva/cluster/kmeans.hpp"
#include "sva/cluster/pca.hpp"
#include "sva/cluster/projection.hpp"
#include "sva/util/rng.hpp"

namespace sva::cluster {
namespace {

/// Three well-separated Gaussian-ish blobs in 2-D, split across ranks.
Matrix make_blobs(int rank, int nprocs, std::size_t per_blob = 60) {
  static const double kCenters[3][2] = {{0.0, 0.0}, {10.0, 10.0}, {-10.0, 10.0}};
  std::vector<std::array<double, 2>> all;
  Xoshiro256 rng(99);
  for (int b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      all.push_back({kCenters[b][0] + rng.uniform() - 0.5,
                     kCenters[b][1] + rng.uniform() - 0.5});
    }
  }
  // Contiguous split.
  const std::size_t per_rank = (all.size() + static_cast<std::size_t>(nprocs) - 1) /
                               static_cast<std::size_t>(nprocs);
  const std::size_t begin = std::min(all.size(), static_cast<std::size_t>(rank) * per_rank);
  const std::size_t end = std::min(all.size(), begin + per_rank);
  Matrix out(end - begin, 2);
  for (std::size_t i = begin; i < end; ++i) {
    out.at(i - begin, 0) = all[i][0];
    out.at(i - begin, 1) = all[i][1];
  }
  return out;
}

// ---- kmeans++ ----------------------------------------------------------------

TEST(KMeansPPTest, Deterministic) {
  Matrix sample(10, 2);
  Xoshiro256 rng(1);
  for (double& v : sample.flat()) v = rng.uniform();
  const Matrix a = kmeanspp_seed(sample, 3, 42);
  const Matrix b = kmeanspp_seed(sample, 3, 42);
  for (std::size_t i = 0; i < a.flat().size(); ++i) EXPECT_EQ(a.flat()[i], b.flat()[i]);
}

TEST(KMeansPPTest, SeedsAreSamplePoints) {
  Matrix sample(5, 1);
  for (std::size_t i = 0; i < 5; ++i) sample.at(i, 0) = static_cast<double>(i) * 10.0;
  const Matrix seeds = kmeanspp_seed(sample, 3, 7);
  for (std::size_t c = 0; c < 3; ++c) {
    const double v = seeds.at(c, 0);
    EXPECT_TRUE(v == 0.0 || v == 10.0 || v == 20.0 || v == 30.0 || v == 40.0);
  }
}

TEST(KMeansPPTest, SpreadsAcrossSeparatedPoints) {
  // With k == #distinct far-apart points, k-means++ should pick all of
  // them (D^2 weighting makes duplicates essentially impossible).
  Matrix sample(3, 1);
  sample.at(0, 0) = 0.0;
  sample.at(1, 0) = 100.0;
  sample.at(2, 0) = 200.0;
  const Matrix seeds = kmeanspp_seed(sample, 3, 5);
  std::set<double> got = {seeds.at(0, 0), seeds.at(1, 0), seeds.at(2, 0)};
  EXPECT_EQ(got.size(), 3u);
}

TEST(KMeansPPTest, EmptySampleThrows) {
  Matrix empty(0, 2);
  EXPECT_THROW((void)kmeanspp_seed(empty, 2, 1), InvalidArgument);
}

// ---- distributed k-means --------------------------------------------------------

class KMeansSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(KMeansSweepTest, RecoversWellSeparatedBlobs) {
  const int nprocs = GetParam();
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const Matrix points = make_blobs(ctx.rank(), nprocs);
    KMeansConfig config;
    config.k = 3;
    const KMeansResult r = kmeans_cluster(ctx, points, config);

    ASSERT_EQ(r.centroids.rows(), 3u);
    // Each centroid lands near one blob center.
    const double kCenters[3][2] = {{0.0, 0.0}, {10.0, 10.0}, {-10.0, 10.0}};
    for (std::size_t c = 0; c < 3; ++c) {
      double best = 1e18;
      for (const auto& center : kCenters) {
        const std::vector<double> ctr = {center[0], center[1]};
        best = std::min(best, squared_distance(r.centroids.row(c), ctr));
      }
      EXPECT_LT(best, 1.0);
    }
    // All points assigned; sizes sum to the global count.
    std::int64_t total = 0;
    for (auto s : r.cluster_sizes) total += s;
    EXPECT_EQ(total, 180);
  });
}

TEST_P(KMeansSweepTest, CentroidsIdenticalAcrossRanks) {
  const int nprocs = GetParam();
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const Matrix points = make_blobs(ctx.rank(), nprocs);
    const KMeansResult r = kmeans_cluster(ctx, points, {});
    // Compare centroid bits across ranks via allgather of a checksum.
    double checksum = 0.0;
    for (double v : r.centroids.flat()) checksum += v;
    const auto sums = ctx.allgather(checksum);
    for (double s : sums) EXPECT_EQ(s, sums[0]);
  });
}

TEST_P(KMeansSweepTest, AssignmentIsNearestCentroid) {
  const int nprocs = GetParam();
  ga::spmd_run(nprocs, [&](ga::Context& ctx) {
    const Matrix points = make_blobs(ctx.rank(), nprocs);
    KMeansConfig config;
    config.k = 4;
    const KMeansResult r = kmeans_cluster(ctx, points, config);
    for (std::size_t i = 0; i < points.rows(); ++i) {
      const double assigned =
          squared_distance(points.row(i),
                           r.centroids.row(static_cast<std::size_t>(r.assignment[i])));
      for (std::size_t c = 0; c < r.centroids.rows(); ++c) {
        EXPECT_LE(assigned, squared_distance(points.row(i), r.centroids.row(c)) + 1e-9);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, KMeansSweepTest, ::testing::Values(1, 2, 3, 4));

TEST(KMeansTest, ResultIndependentOfProcessorCount) {
  std::vector<double> reference;
  for (int nprocs : {1, 2, 4}) {
    auto flat = std::make_shared<std::vector<double>>();
    ga::spmd_run(nprocs, [&](ga::Context& ctx) {
      const Matrix points = make_blobs(ctx.rank(), nprocs);
      KMeansConfig config;
      config.k = 3;
      const KMeansResult r = kmeans_cluster(ctx, points, config);
      if (ctx.rank() == 0) flat->assign(r.centroids.flat().begin(), r.centroids.flat().end());
    });
    if (reference.empty()) {
      reference = *flat;
    } else {
      ASSERT_EQ(reference.size(), flat->size());
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_NEAR(reference[i], (*flat)[i], 1e-6) << "P-variant centroid at " << i;
      }
    }
  }
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  ga::spmd_run(2, [&](ga::Context& ctx) {
    const Matrix points = make_blobs(ctx.rank(), 2);
    KMeansConfig c2, c6;
    c2.k = 2;
    c6.k = 6;
    const double i2 = kmeans_cluster(ctx, points, c2).inertia;
    const double i6 = kmeans_cluster(ctx, points, c6).inertia;
    EXPECT_LT(i6, i2);
  });
}

TEST(KMeansTest, KLargerThanPointsIsClamped) {
  ga::spmd_run(2, [&](ga::Context& ctx) {
    Matrix points(ctx.rank() == 0 ? 3u : 0u, 2);
    if (ctx.rank() == 0) {
      points.at(0, 0) = 1.0;
      points.at(1, 0) = 2.0;
      points.at(2, 0) = 3.0;
    }
    KMeansConfig config;
    config.k = 50;
    const KMeansResult r = kmeans_cluster(ctx, points, config);
    EXPECT_LE(r.centroids.rows(), 3u);
  });
}

TEST(KMeansTest, RanksWithNoPointsParticipate) {
  ga::spmd_run(3, [&](ga::Context& ctx) {
    // Only rank 0 has data.
    Matrix points(ctx.rank() == 0 ? 30u : 0u, 2);
    if (ctx.rank() == 0) {
      Xoshiro256 rng(4);
      for (double& v : points.flat()) v = rng.uniform();
    }
    KMeansConfig config;
    config.k = 2;
    const KMeansResult r = kmeans_cluster(ctx, points, config);
    std::int64_t total = 0;
    for (auto s : r.cluster_sizes) total += s;
    EXPECT_EQ(total, 30);
  });
}

// ---- PCA -------------------------------------------------------------------------

TEST(PcaTest, RecoversDominantAxis) {
  // Points along the x-axis with tiny y noise: PC1 ~ (1, 0).
  Matrix data(50, 2);
  Xoshiro256 rng(8);
  for (std::size_t i = 0; i < 50; ++i) {
    data.at(i, 0) = static_cast<double>(i);
    data.at(i, 1) = rng.uniform() * 0.01;
  }
  const PcaResult pca = pca_fit(data, 2);
  EXPECT_NEAR(std::abs(pca.components.at(0, 0)), 1.0, 1e-3);
  EXPECT_NEAR(pca.components.at(0, 1), 0.0, 1e-2);
  EXPECT_GT(pca.eigenvalues[0], pca.eigenvalues[1]);
}

TEST(PcaTest, ComponentsAreOrthonormal) {
  Matrix data(30, 5);
  Xoshiro256 rng(9);
  for (double& v : data.flat()) v = rng.uniform();
  const PcaResult pca = pca_fit(data, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(dot(pca.components.row(i), pca.components.row(j)), i == j ? 1.0 : 0.0,
                  1e-8);
    }
  }
}

TEST(PcaTest, ProjectionCentersTheMean) {
  Matrix data(10, 3);
  for (std::size_t i = 0; i < 10; ++i) {
    data.at(i, 0) = static_cast<double>(i);
    data.at(i, 1) = 5.0;
    data.at(i, 2) = -static_cast<double>(i);
  }
  const PcaResult pca = pca_fit(data, 2);
  const auto projected_mean = pca.project(pca.mean);
  EXPECT_NEAR(projected_mean[0], 0.0, 1e-12);
  EXPECT_NEAR(projected_mean[1], 0.0, 1e-12);
}

TEST(PcaTest, SignConventionIsDeterministic) {
  Matrix data(20, 4);
  Xoshiro256 rng(10);
  for (double& v : data.flat()) v = rng.uniform();
  const PcaResult a = pca_fit(data, 2);
  const PcaResult b = pca_fit(data, 2);
  for (std::size_t i = 0; i < a.components.flat().size(); ++i) {
    EXPECT_EQ(a.components.flat()[i], b.components.flat()[i]);
  }
}

TEST(PcaTest, InvalidArgsThrow) {
  Matrix empty(0, 3);
  EXPECT_THROW((void)pca_fit(empty, 1), InvalidArgument);
  Matrix small(3, 2);
  EXPECT_THROW((void)pca_fit(small, 3), InvalidArgument);
  const PcaResult pca = pca_fit(Matrix(3, 2), 1);
  std::vector<double> wrong_dim = {1.0, 2.0, 3.0};
  EXPECT_THROW((void)pca.project(wrong_dim), InvalidArgument);
}

// ---- projection + terrain ---------------------------------------------------------

TEST(ProjectionTest, GathersAllCoordinatesOnRankZero) {
  ga::spmd_run(3, [](ga::Context& ctx) {
    Matrix sigs(4, 3);
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 0; i < 4; ++i) {
      sigs.at(i, 0) = static_cast<double>(ctx.rank());
      sigs.at(i, 1) = static_cast<double>(i);
      sigs.at(i, 2) = 1.0;
      ids.push_back(static_cast<std::uint64_t>(ctx.rank()) * 100 + i);
    }
    Matrix centroids(3, 3);
    Xoshiro256 rng(2);
    for (double& v : centroids.flat()) v = rng.uniform();
    const PcaResult pca = pca_fit(centroids, 2);
    const ProjectionResult r = project_documents(ctx, sigs, ids, pca);

    EXPECT_EQ(r.local_xy.size(), 8u);
    if (ctx.rank() == 0) {
      EXPECT_EQ(r.all_xy.size(), 24u);
      EXPECT_EQ(r.all_doc_ids.size(), 12u);
    } else {
      EXPECT_TRUE(r.all_xy.empty());
    }
  });
}

TEST(ProjectionTest, WriteCoordinatesRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "sva_proj" / "coords.csv").string();
  write_coordinates(path, {7, 8}, {1.0, 2.0, 3.0, 4.0});
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "doc_id,x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "7,1,2");
  std::filesystem::remove_all(std::filesystem::temp_directory_path() / "sva_proj");
}

TEST(ProjectionTest, WriteCoordinatesValidatesSizes) {
  EXPECT_THROW(write_coordinates("/tmp/x.csv", {1}, {1.0}), InvalidArgument);
}

TEST(TerrainTest, EmptyPointsYieldFlatTerrain) {
  const auto t = ThemeViewTerrain::from_points({}, 8);
  EXPECT_DOUBLE_EQ(t.peak(), 0.0);
}

TEST(TerrainTest, DenseRegionFormsMountain) {
  std::vector<double> xy;
  // 100 points at (0,0), 1 point at (10,10).
  for (int i = 0; i < 100; ++i) {
    xy.push_back(0.0);
    xy.push_back(0.0);
  }
  xy.push_back(10.0);
  xy.push_back(10.0);
  const auto t = ThemeViewTerrain::from_points(xy, 16, 1.0);
  // Peak must be much higher than the median cell.
  EXPECT_GT(t.peak(), 50.0);
}

TEST(TerrainTest, AsciiHasGridLines) {
  std::vector<double> xy = {0.0, 0.0, 1.0, 1.0, 0.5, 0.5};
  const auto t = ThemeViewTerrain::from_points(xy, 8);
  const std::string ascii = t.to_ascii();
  EXPECT_EQ(std::count(ascii.begin(), ascii.end(), '\n'), 8);
  EXPECT_NE(ascii.find('@'), std::string::npos);  // the peak cell
}

TEST(TerrainTest, GridTooSmallThrows) {
  EXPECT_THROW((void)ThemeViewTerrain::from_points({0.0, 0.0}, 2), InvalidArgument);
}

}  // namespace
}  // namespace sva::cluster
