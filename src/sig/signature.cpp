#include "sva/sig/signature.hpp"

#include <algorithm>

#include "sva/util/error.hpp"
#include "sva/util/log.hpp"

namespace sva::sig {

SignatureSet compute_signatures(ga::Context& ctx,
                                const std::vector<text::ScannedRecord>& records,
                                const TopicSelection& selection,
                                const AssociationMatrix& association,
                                const SignatureConfig& config) {
  require(association.n() == selection.n(),
          "compute_signatures: selection/association mismatch");
  return compute_signatures(ctx, records, MajorRowMap(selection), association, config);
}

SignatureSet compute_signatures(ga::Context& ctx,
                                const std::vector<text::ScannedRecord>& records,
                                const MajorRowMap& row_map,
                                const AssociationMatrix& association,
                                const SignatureConfig& config) {
  const std::size_t m = association.m();
  require(m >= 1, "compute_signatures: zero-dimensional space");

  SignatureSet out;
  out.dimension = m;
  out.docvecs = Matrix(records.size(), m);
  out.doc_ids.reserve(records.size());
  out.is_null.assign(records.size(), false);

  // Dense scratch keyed by major row, applied in ascending-row order: the
  // combination order must be a function of the record alone (a reused
  // hash map's iteration order depends on how many records this rank
  // processed before, which would make the FP sum — and so the signature
  // — depend on the partitioning and break P-invariance).  The dense
  // MajorRowMap turns the per-occurrence selection probe into one load.
  std::vector<double> freq(association.n(), 0.0);
  std::vector<std::size_t> touched;
  std::int64_t local_nulls = 0;

  for (std::size_t rec_idx = 0; rec_idx < records.size(); ++rec_idx) {
    const auto& rec = records[rec_idx];
    out.doc_ids.push_back(rec.doc_id);

    // Term frequency of the record's major terms, across all fields.
    touched.clear();
    for (const auto& field : rec.fields) {
      for (std::int64_t t : field.terms) {
        const std::int32_t row = row_map.row_of(t);
        if (row >= 0) {
          const auto r = static_cast<std::size_t>(row);
          if (freq[r] == 0.0) touched.push_back(r);
          freq[r] += 1.0;
        }
      }
    }
    std::sort(touched.begin(), touched.end());

    // "each term vector is multiplied by the frequency of that term
    // within that record" — linear combination of association rows.
    auto sig = out.docvecs.row(rec_idx);
    for (const std::size_t row : touched) {
      axpy(freq[row], association.weights.row(row), sig);
      freq[row] = 0.0;
    }

    // "Each signature is normalized based on a L1 Norm."
    if (l1_norm(sig) <= config.null_threshold || !l1_normalize(sig)) {
      out.is_null[rec_idx] = true;
      ++local_nulls;
      std::fill(sig.begin(), sig.end(), 0.0);
    }
  }

  out.global_null_count = static_cast<std::uint64_t>(ctx.allreduce_sum(local_nulls));
  return out;
}

SignatureGenerationResult generate_signatures(ga::Context& ctx,
                                              const std::vector<text::ScannedRecord>& records,
                                              const index::TermStats& stats,
                                              TopicalityConfig topicality_config,
                                              const AssociationConfig& association_config,
                                              const SignatureConfig& signature_config) {
  SignatureGenerationResult result;
  const auto total_records =
      static_cast<std::uint64_t>(ctx.allreduce_sum(static_cast<std::int64_t>(records.size())));

  int round = 0;
  while (true) {
    ++round;
    result.selection = select_topics(ctx, stats, topicality_config);
    result.association = build_association_matrix(ctx, records, result.selection,
                                                  stats.num_records, association_config);
    result.signatures =
        compute_signatures(ctx, records, result.selection, result.association,
                           signature_config);

    const double null_fraction =
        total_records == 0
            ? 0.0
            : static_cast<double>(result.signatures.global_null_count) /
                  static_cast<double>(total_records);
    result.null_fraction_per_round.push_back(null_fraction);
    result.rounds_used = round;

    if (!signature_config.adaptive) break;
    if (null_fraction <= signature_config.max_null_fraction) break;
    if (round >= signature_config.max_rounds) break;
    // Selection already saturated the scored vocabulary: growing N cannot
    // recruit more terms.
    if (result.selection.n() < topicality_config.num_major_terms) break;

    const auto grown = static_cast<std::size_t>(
        signature_config.growth_factor *
        static_cast<double>(topicality_config.num_major_terms));
    topicality_config.num_major_terms = std::max(grown, topicality_config.num_major_terms + 1);
    log::debug("sig") << "adaptive dimensionality: null fraction " << null_fraction
                      << " too high; growing N to " << topicality_config.num_major_terms;
  }
  return result;
}

}  // namespace sva::sig
