// Knowledge-signature persistence (§2.1 step 7): "Persist the knowledge
// signatures ... These signatures comprise a valuable intermediate
// product of the text engine."
//
// The on-disk format is a small self-describing binary: a magic/version
// header, the topic-term vocabulary (the meaning of each dimension), then
// one row per record (doc id, null flag, M doubles).  Rank 0 gathers and
// writes; reading is serial and validates the header.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sva/ga/runtime.hpp"
#include "sva/sig/signature.hpp"

namespace sva::sig {

/// A deserialized signature store.
struct PersistedSignatures {
  std::vector<std::string> topic_terms;     ///< dimension labels
  std::vector<std::uint64_t> doc_ids;       ///< row-aligned
  std::vector<bool> is_null;                ///< row-aligned
  Matrix docvecs;                           ///< rows × M

  [[nodiscard]] std::size_t dimension() const { return docvecs.cols(); }
  [[nodiscard]] std::size_t size() const { return docvecs.rows(); }
};

/// Collective: gathers every rank's signatures to rank 0 and writes them
/// to `path` (rank 0 only touches the filesystem).  `topic_term_names`
/// are the string labels of the M dimensions.
void write_signatures(ga::Context& ctx, const std::string& path, const SignatureSet& sigs,
                      const std::vector<std::string>& topic_term_names);

/// Serial: loads a signature store written by write_signatures.
/// Throws sva::Error on malformed input.
PersistedSignatures read_signatures(const std::string& path);

}  // namespace sva::sig
