// Association matrix (§3.4): relating topic terms to major terms.
//
// "An N by M matrix is then computed, with the entries in the matrix
// being the conditional probabilities of occupance, modified by the
// independent probability of occurrence."  Row i corresponds to major
// term t_i, column j to topic term t_j; the entry combines the
// conditional document-level co-occurrence probability P(t_i | t_j) with
// t_i's independent probability P(t_i).  Each rank computes partial
// co-occurrence counts over its own records, and the partial matrices are
// merged with an Allreduce — exactly the paper's parallelization.
#pragma once

#include <cstdint>
#include <vector>

#include "sva/ga/runtime.hpp"
#include "sva/sig/topicality.hpp"
#include "sva/text/scanner.hpp"
#include "sva/util/mathutil.hpp"

namespace sva::sig {

enum class AssociationWeighting {
  kConditional,   ///< P(i|j)
  kLiftSubtract,  ///< max(0, P(i|j) - P(i))   (default: "modified by the
                  ///  independent probability of occurrence")
  kLiftRatio,     ///< P(i|j) * log(1 + 1/P(i)) (IDF-style modification)
};

struct AssociationConfig {
  AssociationWeighting weighting = AssociationWeighting::kLiftSubtract;
};

/// Replicated N×M association matrix over the current selection.
struct AssociationMatrix {
  Matrix weights;  ///< N rows (major terms) × M cols (topic terms)

  [[nodiscard]] std::size_t n() const { return weights.rows(); }
  [[nodiscard]] std::size_t m() const { return weights.cols(); }
};

const char* weighting_name(AssociationWeighting w);

/// Collective: builds the association matrix from this rank's records
/// (each rank passes its own slice; the merge is global).
AssociationMatrix build_association_matrix(ga::Context& ctx,
                                           const std::vector<text::ScannedRecord>& records,
                                           const TopicSelection& selection,
                                           std::uint64_t num_records,
                                           const AssociationConfig& config = {});

}  // namespace sva::sig
