// Topicality (§3.4): finding the discriminating vocabulary.
//
// "From the global term statistics, each process generates topicality for
// their sets of terms (N/P terms per process) ... based on Bookstein's
// serial clustering method."  Bookstein–Klein–Raita's insight: a
// content-bearing term *clumps* — its occurrences concentrate in few
// documents relative to a random scatter of the same number of tokens.
// Under random placement of tf tokens into R records, the expected number
// of distinct records hit is
//
//     E[df] = R * (1 - (1 - 1/R)^tf)
//
// and the condensation score  (E[df] - df) / sqrt(E[df])  is large and
// positive exactly for clumping (content-bearing) terms.  Each rank
// scores its block of the term-statistics arrays, selects local top
// candidates, and a global merge-sort (allgather + sort, matching the
// paper's "global merge-sort process ... broadcast to all processes")
// produces the top-N *major terms*; the top M ≈ 10 % of those are the
// *topic terms* — the anchoring dimensions of the signature space.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sva/ga/runtime.hpp"
#include "sva/index/inverted_index.hpp"

namespace sva::ga {
struct Vocabulary;  // dist_hashmap.hpp
}

namespace sva::sig {

struct TopicalityConfig {
  std::size_t num_major_terms = 1200;  ///< N
  double topic_fraction = 0.10;        ///< M = max(2, fraction * N)
  std::int64_t min_doc_frequency = 2;  ///< drop hapax/noise terms
  double max_df_fraction = 0.25;       ///< drop near-ubiquitous terms
};

/// Replicated selection result.
struct TopicSelection {
  /// Top-N term ids by topicality, descending (ties broken by id).
  std::vector<std::int64_t> major_terms;
  /// Topicality scores aligned with major_terms.
  std::vector<double> scores;
  /// Document frequency of each major term (needed downstream).
  std::vector<std::int64_t> major_df;
  /// The top-M prefix of major_terms: the anchoring dimensions.
  std::vector<std::int64_t> topic_terms;

  /// term id → row position within major_terms.
  std::unordered_map<std::int64_t, std::size_t> major_index;
  /// term id → column position within topic_terms.
  std::unordered_map<std::int64_t, std::size_t> topic_index;

  [[nodiscard]] std::size_t n() const { return major_terms.size(); }
  [[nodiscard]] std::size_t m() const { return topic_terms.size(); }
};

/// Dense term-id → major-row lookup for the per-token hot paths.  The
/// association and signature kernels probe the selection once per term
/// occurrence; a flat array indexed by canonical term id turns each probe
/// into one load instead of a hash lookup.  Terms outside the selection
/// map to -1.  Because topic_terms is the top-M prefix of major_terms,
/// a row i is also a topic column iff i < m() — the kernels rely on this
/// prefix invariant instead of a second (topic) lookup structure.
class MajorRowMap {
 public:
  explicit MajorRowMap(const TopicSelection& selection);

  /// Builds the map from major-term *strings* in row order against an
  /// arbitrary vocabulary: row r's term string is looked up in `vocab`
  /// and its canonical id mapped to r (absent terms simply never match).
  /// This is the delta-ingest path — new shards are scanned into their
  /// own vocabulary, but signatures must combine association rows in the
  /// frozen model's row order, keyed by term string.
  MajorRowMap(const std::vector<std::string>& major_terms_in_row_order,
              const ga::Vocabulary& vocabulary);

  [[nodiscard]] std::int32_t row_of(std::int64_t term) const {
    return term >= 0 && static_cast<std::size_t>(term) < map_.size()
               ? map_[static_cast<std::size_t>(term)]
               : -1;
  }

 private:
  std::vector<std::int32_t> map_;
};

/// The raw Bookstein condensation score for one term.
double bookstein_score(std::int64_t term_frequency, std::int64_t doc_frequency,
                       std::uint64_t num_records);

/// Collective: scores this rank's term block, merges globally, returns the
/// replicated selection.
TopicSelection select_topics(ga::Context& ctx, const index::TermStats& stats,
                             const TopicalityConfig& config);

}  // namespace sva::sig
