// Knowledge signatures (§3.4) and the adaptive-dimensionality remedy
// (§4.2).
//
// A record's signature is the frequency-weighted linear combination of
// the association-matrix rows of the major terms it contains, normalized
// to unit L1 norm: an M-dimensional point whose axes are the topic terms.
// Records containing no major terms produce *null signatures* — the
// pathology the paper hit on PubMed.  Their remedy, reproduced here, is
// to grow the dimensionality (N, and with it M) until the null fraction
// falls below a threshold: "increasing the dimensionality producing
// robust signatures".
#pragma once

#include <cstdint>
#include <vector>

#include "sva/ga/runtime.hpp"
#include "sva/sig/association.hpp"
#include "sva/sig/topicality.hpp"
#include "sva/text/scanner.hpp"
#include "sva/util/mathutil.hpp"

namespace sva::sig {

struct SignatureConfig {
  /// Signatures with pre-normalization L1 mass below this are null.
  double null_threshold = 1e-12;
  /// Adaptive dimensionality: re-run with a larger N when the global
  /// null/weak fraction exceeds this bound.
  bool adaptive = true;
  double max_null_fraction = 0.02;
  double growth_factor = 1.6;
  int max_rounds = 3;
};

/// This rank's signatures (rows align with its records).
struct SignatureSet {
  Matrix docvecs;                      ///< local records × M
  std::vector<std::uint64_t> doc_ids;  ///< global record ids, row-aligned
  std::vector<bool> is_null;           ///< row-aligned null flags
  std::size_t dimension = 0;           ///< M
  std::uint64_t global_null_count = 0;
};

/// Collective (only for the null-count reduction): computes signatures
/// for this rank's records against the association matrix.
SignatureSet compute_signatures(ga::Context& ctx,
                                const std::vector<text::ScannedRecord>& records,
                                const TopicSelection& selection,
                                const AssociationMatrix& association,
                                const SignatureConfig& config = {});

/// Mapped variant: combines association rows through an explicit term→row
/// map instead of a TopicSelection.  This is the delta-ingest kernel —
/// new shards are scanned into their own vocabulary, and `row_map` (built
/// from the frozen model's major-term *strings* against that vocabulary)
/// keys each occurrence to the model's row order.  Per record the result
/// is a pure function of (record, row_map, association, config), so a
/// document signature is byte-identical whether computed in a full run or
/// a delta ingest.
SignatureSet compute_signatures(ga::Context& ctx,
                                const std::vector<text::ScannedRecord>& records,
                                const MajorRowMap& row_map,
                                const AssociationMatrix& association,
                                const SignatureConfig& config = {});

/// Outcome of the adaptive driver: final artifacts plus round telemetry.
struct SignatureGenerationResult {
  TopicSelection selection;
  AssociationMatrix association;
  SignatureSet signatures;
  int rounds_used = 1;
  /// Null fraction observed after each round (diagnostics/EXPERIMENTS).
  std::vector<double> null_fraction_per_round;
};

/// Collective: the adaptive loop — topicality → association → signatures,
/// growing N until the null fraction is acceptable (§4.2's remedy) or the
/// vocabulary / round budget is exhausted.
SignatureGenerationResult generate_signatures(ga::Context& ctx,
                                              const std::vector<text::ScannedRecord>& records,
                                              const index::TermStats& stats,
                                              TopicalityConfig topicality_config,
                                              const AssociationConfig& association_config,
                                              const SignatureConfig& signature_config);

}  // namespace sva::sig
