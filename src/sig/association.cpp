#include "sva/sig/association.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "sva/util/error.hpp"

namespace sva::sig {

const char* weighting_name(AssociationWeighting w) {
  switch (w) {
    case AssociationWeighting::kConditional: return "conditional";
    case AssociationWeighting::kLiftSubtract: return "lift-subtract";
    case AssociationWeighting::kLiftRatio: return "lift-ratio";
  }
  return "?";
}

AssociationMatrix build_association_matrix(ga::Context& ctx,
                                           const std::vector<text::ScannedRecord>& records,
                                           const TopicSelection& selection,
                                           std::uint64_t num_records,
                                           const AssociationConfig& config) {
  const std::size_t n = selection.n();
  const std::size_t m = selection.m();
  require(n >= 1 && m >= 1, "build_association_matrix: empty selection");
  // The kernel exploits the prefix invariant (topic terms are the top-M
  // prefix of the major terms, so row j < m is also topic column j).
  require(m <= n, "build_association_matrix: more topic terms than major terms");
  for (std::size_t j = 0; j < m; ++j) {
    require(selection.topic_terms[j] == selection.major_terms[j],
            "build_association_matrix: topic_terms is not a prefix of major_terms");
  }

  // ---- partial co-occurrence counts over local records ----------------
  // co[i*m + j] = #records containing both major term i and topic term j.
  //
  // Records are processed in tiles: each record contributes its unique
  // (major row, topic col) cross product, and the tile's row hits are
  // sorted so the co rows are walked in ascending order with reuse across
  // the tile's records — frequent major terms appear in many records of a
  // tile, so their row slice stays cache-resident while every record that
  // contains them scatters into it.  The entries are exact counts
  // (+1.0 adds), so any accumulation order is byte-identical.
  std::vector<double> co(n * m, 0.0);
  const MajorRowMap row_map(selection);

  constexpr std::size_t kTileRecords = 64;
  std::vector<std::uint8_t> seen(n, 0);             // per-record presence scratch
  std::vector<std::uint32_t> rows_scratch;          // one record's unique rows
  std::vector<std::uint64_t> hits;                  // (row << 32 | record-in-tile)
  std::vector<std::uint32_t> cols_flat;             // tile's topic cols, per record
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cols_range;  // per record

  for (std::size_t tile = 0; tile < records.size(); tile += kTileRecords) {
    const std::size_t tile_end = std::min(records.size(), tile + kTileRecords);
    hits.clear();
    cols_flat.clear();
    cols_range.clear();

    for (std::size_t rec_idx = tile; rec_idx < tile_end; ++rec_idx) {
      const auto local = static_cast<std::uint32_t>(rec_idx - tile);
      rows_scratch.clear();
      for (const auto& field : records[rec_idx].fields) {
        for (const std::int64_t t : field.terms) {
          const std::int32_t r = row_map.row_of(t);
          if (r >= 0 && seen[static_cast<std::size_t>(r)] == 0) {
            seen[static_cast<std::size_t>(r)] = 1;
            rows_scratch.push_back(static_cast<std::uint32_t>(r));
          }
        }
      }
      for (const std::uint32_t r : rows_scratch) seen[r] = 0;
      std::sort(rows_scratch.begin(), rows_scratch.end());

      const auto cols_begin = static_cast<std::uint32_t>(cols_flat.size());
      for (const std::uint32_t r : rows_scratch) {
        if (r < m) cols_flat.push_back(r);  // prefix invariant: col == row
        hits.push_back((static_cast<std::uint64_t>(r) << 32) | local);
      }
      cols_range.emplace_back(cols_begin, static_cast<std::uint32_t>(cols_flat.size()));
    }

    std::sort(hits.begin(), hits.end());
    for (const std::uint64_t hit : hits) {
      const auto row = static_cast<std::size_t>(hit >> 32);
      const auto local = static_cast<std::size_t>(hit & 0xFFFFFFFFu);
      double* rowp = co.data() + row * m;
      const auto [cb, ce] = cols_range[local];
      for (std::uint32_t c = cb; c < ce; ++c) rowp[cols_flat[c]] += 1.0;
    }
  }

  // ---- merge partial matrices (the paper's MPI_Allreduce) -------------
  ctx.allreduce_sum(co.data(), co.size());

  // ---- weight entries ---------------------------------------------------
  AssociationMatrix out;
  out.weights = Matrix(n, m);
  const double r = static_cast<double>(std::max<std::uint64_t>(num_records, 1));

  for (std::size_t i = 0; i < n; ++i) {
    const double p_i = static_cast<double>(selection.major_df[i]) / r;
    for (std::size_t j = 0; j < m; ++j) {
      // topic term j is also a major term (topics are the top-M prefix),
      // so its df is available at the same index.
      const double df_j = static_cast<double>(selection.major_df[j]);
      if (df_j <= 0.0) continue;
      const double conditional = co[i * m + j] / df_j;
      double w = 0.0;
      switch (config.weighting) {
        case AssociationWeighting::kConditional:
          w = conditional;
          break;
        case AssociationWeighting::kLiftSubtract:
          w = std::max(0.0, conditional - p_i);
          break;
        case AssociationWeighting::kLiftRatio:
          w = conditional * std::log1p(1.0 / std::max(p_i, 1e-12));
          break;
      }
      out.weights.at(i, j) = w;
    }
  }
  return out;
}

}  // namespace sva::sig
