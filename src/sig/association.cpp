#include "sva/sig/association.hpp"

#include <algorithm>
#include <cmath>

#include "sva/util/error.hpp"

namespace sva::sig {

const char* weighting_name(AssociationWeighting w) {
  switch (w) {
    case AssociationWeighting::kConditional: return "conditional";
    case AssociationWeighting::kLiftSubtract: return "lift-subtract";
    case AssociationWeighting::kLiftRatio: return "lift-ratio";
  }
  return "?";
}

AssociationMatrix build_association_matrix(ga::Context& ctx,
                                           const std::vector<text::ScannedRecord>& records,
                                           const TopicSelection& selection,
                                           std::uint64_t num_records,
                                           const AssociationConfig& config) {
  const std::size_t n = selection.n();
  const std::size_t m = selection.m();
  require(n >= 1 && m >= 1, "build_association_matrix: empty selection");

  // ---- partial co-occurrence counts over local records ----------------
  // co[i*m + j] = #records containing both major term i and topic term j.
  std::vector<double> co(n * m, 0.0);
  std::vector<std::size_t> major_rows;
  std::vector<std::size_t> topic_cols;

  for (const auto& rec : records) {
    major_rows.clear();
    topic_cols.clear();
    for (const auto& field : rec.fields) {
      for (std::int64_t t : field.terms) {
        if (auto it = selection.major_index.find(t); it != selection.major_index.end()) {
          major_rows.push_back(it->second);
        }
        if (auto it = selection.topic_index.find(t); it != selection.topic_index.end()) {
          topic_cols.push_back(it->second);
        }
      }
    }
    // Document-level presence: dedup.
    std::sort(major_rows.begin(), major_rows.end());
    major_rows.erase(std::unique(major_rows.begin(), major_rows.end()), major_rows.end());
    std::sort(topic_cols.begin(), topic_cols.end());
    topic_cols.erase(std::unique(topic_cols.begin(), topic_cols.end()), topic_cols.end());

    for (std::size_t i : major_rows) {
      double* row = co.data() + i * m;
      for (std::size_t j : topic_cols) row[j] += 1.0;
    }
  }

  // ---- merge partial matrices (the paper's MPI_Allreduce) -------------
  ctx.allreduce_sum(co.data(), co.size());

  // ---- weight entries ---------------------------------------------------
  AssociationMatrix out;
  out.weights = Matrix(n, m);
  const double r = static_cast<double>(std::max<std::uint64_t>(num_records, 1));

  for (std::size_t i = 0; i < n; ++i) {
    const double p_i = static_cast<double>(selection.major_df[i]) / r;
    for (std::size_t j = 0; j < m; ++j) {
      // topic term j is also a major term (topics are the top-M prefix),
      // so its df is available at the same index.
      const double df_j = static_cast<double>(selection.major_df[j]);
      if (df_j <= 0.0) continue;
      const double conditional = co[i * m + j] / df_j;
      double w = 0.0;
      switch (config.weighting) {
        case AssociationWeighting::kConditional:
          w = conditional;
          break;
        case AssociationWeighting::kLiftSubtract:
          w = std::max(0.0, conditional - p_i);
          break;
        case AssociationWeighting::kLiftRatio:
          w = conditional * std::log1p(1.0 / std::max(p_i, 1e-12));
          break;
      }
      out.weights.at(i, j) = w;
    }
  }
  return out;
}

}  // namespace sva::sig
