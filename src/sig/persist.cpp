#include "sva/sig/persist.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "sva/util/error.hpp"

namespace sva::sig {

namespace {

constexpr char kMagic[8] = {'S', 'V', 'A', 'S', 'I', 'G', '0', '1'};

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  require_format(in.good(), "read_signatures: truncated file");
  return v;
}

void write_string(std::ofstream& out, const std::string& s) {
  write_pod(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::ifstream& in) {
  const auto len = read_pod<std::uint32_t>(in);
  require_format(len < (1u << 20), "read_signatures: implausible string length");
  std::string s(len, '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  require_format(in.good(), "read_signatures: truncated string");
  return s;
}

}  // namespace

void write_signatures(ga::Context& ctx, const std::string& path, const SignatureSet& sigs,
                      const std::vector<std::string>& topic_term_names) {
  require(topic_term_names.size() == sigs.dimension,
          "write_signatures: dimension/label mismatch");

  // Gather rows to rank 0: ids, null flags (as bytes), and the dense
  // signature block.
  std::vector<std::uint8_t> null_bytes(sigs.is_null.size());
  for (std::size_t i = 0; i < sigs.is_null.size(); ++i) null_bytes[i] = sigs.is_null[i] ? 1 : 0;

  const auto all_ids = ctx.gatherv(std::span<const std::uint64_t>(sigs.doc_ids), 0);
  const auto all_nulls = ctx.gatherv(std::span<const std::uint8_t>(null_bytes), 0);
  const auto all_vecs = ctx.gatherv(
      std::span<const double>(sigs.docvecs.flat().data(), sigs.docvecs.flat().size()), 0);

  if (ctx.rank() != 0) return;
  require(all_vecs.size() == all_ids.size() * sigs.dimension,
          "write_signatures: gathered size mismatch");

  std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::binary);
  require(out.good(), "write_signatures: cannot open " + path);

  out.write(kMagic, sizeof(kMagic));
  write_pod(out, static_cast<std::uint64_t>(all_ids.size()));
  write_pod(out, static_cast<std::uint64_t>(sigs.dimension));
  for (const auto& name : topic_term_names) write_string(out, name);
  for (std::size_t i = 0; i < all_ids.size(); ++i) {
    write_pod(out, all_ids[i]);
    write_pod(out, all_nulls[i]);
    out.write(reinterpret_cast<const char*>(all_vecs.data() + i * sigs.dimension),
              static_cast<std::streamsize>(sigs.dimension * sizeof(double)));
  }
  require(out.good(), "write_signatures: write failed for " + path);
}

PersistedSignatures read_signatures(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "read_signatures: cannot open " + path);

  char magic[8];
  in.read(magic, sizeof(magic));
  require_format(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                 "read_signatures: bad magic (not a SVA signature file)");

  const auto rows = read_pod<std::uint64_t>(in);
  const auto dim = read_pod<std::uint64_t>(in);
  require_format(dim >= 1 && dim < (1u << 20), "read_signatures: implausible dimension");

  PersistedSignatures out;
  out.topic_terms.reserve(dim);
  for (std::uint64_t j = 0; j < dim; ++j) out.topic_terms.push_back(read_string(in));

  // A corrupt header must fail as FormatError, not as a huge allocation:
  // each row occupies 8 (id) + 1 (null flag) + dim * 8 bytes, so bound
  // the declared count by what the rest of the file can actually hold.
  const auto row_start = in.tellg();
  in.seekg(0, std::ios::end);
  const auto file_end = in.tellg();
  in.seekg(row_start);
  const std::uint64_t row_bytes = 9 + dim * 8;
  require_format(row_start >= 0 && file_end >= row_start &&
                     rows <= static_cast<std::uint64_t>(file_end - row_start) / row_bytes,
                 "read_signatures: row count exceeds file size");

  out.doc_ids.reserve(rows);
  out.is_null.reserve(rows);
  out.docvecs = Matrix(rows, dim);
  for (std::uint64_t i = 0; i < rows; ++i) {
    out.doc_ids.push_back(read_pod<std::uint64_t>(in));
    out.is_null.push_back(read_pod<std::uint8_t>(in) != 0);
    in.read(reinterpret_cast<char*>(out.docvecs.row(i).data()),
            static_cast<std::streamsize>(dim * sizeof(double)));
    require_format(in.good(), "read_signatures: truncated rows");
  }
  return out;
}

}  // namespace sva::sig
