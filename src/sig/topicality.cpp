#include "sva/sig/topicality.hpp"

#include <algorithm>
#include <cmath>

#include "sva/ga/dist_hashmap.hpp"
#include "sva/util/error.hpp"

namespace sva::sig {

MajorRowMap::MajorRowMap(const TopicSelection& selection) {
  std::int64_t max_term = -1;
  for (const std::int64_t t : selection.major_terms) max_term = std::max(max_term, t);
  map_.assign(static_cast<std::size_t>(max_term + 1), -1);
  for (std::size_t i = 0; i < selection.major_terms.size(); ++i) {
    map_[static_cast<std::size_t>(selection.major_terms[i])] = static_cast<std::int32_t>(i);
  }
}

MajorRowMap::MajorRowMap(const std::vector<std::string>& major_terms_in_row_order,
                         const ga::Vocabulary& vocabulary) {
  map_.assign(vocabulary.size(), -1);
  for (std::size_t i = 0; i < major_terms_in_row_order.size(); ++i) {
    const std::int64_t id = vocabulary.id_of(major_terms_in_row_order[i]);
    if (id >= 0) map_[static_cast<std::size_t>(id)] = static_cast<std::int32_t>(i);
  }
}

double bookstein_score(std::int64_t term_frequency, std::int64_t doc_frequency,
                       std::uint64_t num_records) {
  if (num_records == 0 || term_frequency <= 0 || doc_frequency <= 0) return 0.0;
  const double r = static_cast<double>(num_records);
  const double tf = static_cast<double>(term_frequency);
  // E[df] under random scatter; use log1p/expm1 for numerical stability
  // with large R:  (1 - 1/R)^tf = exp(tf * log(1 - 1/R)).
  const double expected_df = r * (-std::expm1(tf * std::log1p(-1.0 / r)));
  if (expected_df <= 0.0) return 0.0;
  return (expected_df - static_cast<double>(doc_frequency)) / std::sqrt(expected_df);
}

TopicSelection select_topics(ga::Context& ctx, const index::TermStats& stats,
                             const TopicalityConfig& config) {
  require(config.num_major_terms >= 2, "select_topics: need at least 2 major terms");
  require(config.topic_fraction > 0.0 && config.topic_fraction <= 1.0,
          "select_topics: topic_fraction in (0, 1]");

  // ---- local scoring over this rank's term block ----------------------
  struct Scored {
    double score;
    std::int64_t term;
    std::int64_t df;
  };

  const auto [tb, te] = stats.term_frequency.local_row_range(ctx);
  std::vector<std::int64_t> tf;
  std::vector<std::int64_t> df;
  if (te > tb) {
    tf.resize(te - tb);
    df.resize(te - tb);
    stats.term_frequency.get(ctx, tb, tf);
    stats.doc_frequency.get(ctx, tb, df);
  }

  // Filter strictness levels: the strict pass keeps only positively
  // clumping (content-bearing) terms within the df window; if that leaves
  // nothing *globally* — tiny or adversarial corpora where no term clumps
  // — the df window is kept but the positivity requirement is dropped,
  // and as a last resort any present term qualifies.  The level decision
  // is collective (allreduce), so every rank selects identically, and the
  // engine never produces an empty topic space for a nonempty vocabulary.
  const auto max_df = static_cast<std::int64_t>(
      config.max_df_fraction * static_cast<double>(stats.num_records));
  std::vector<Scored> local;
  for (int level = 0; level < 3; ++level) {
    local.clear();
    for (std::size_t i = 0; i < tf.size(); ++i) {
      if (df[i] <= 0) continue;
      if (level < 2 && (df[i] < config.min_doc_frequency || df[i] > max_df)) continue;
      const double score = bookstein_score(tf[i], df[i], stats.num_records);
      if (level < 1 && score <= 0.0) continue;
      local.push_back({score, static_cast<std::int64_t>(tb + i), df[i]});
    }
    const auto survivors = ctx.allreduce_sum(static_cast<std::int64_t>(local.size()));
    if (survivors > 0) break;
  }

  // Local top-N: no rank can contribute more than N winners.
  auto better = [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.term < b.term;  // deterministic tie-break
  };
  const std::size_t keep = std::min(local.size(), config.num_major_terms);
  std::partial_sort(local.begin(), local.begin() + static_cast<std::ptrdiff_t>(keep),
                    local.end(), better);
  local.resize(keep);

  // ---- global merge-sort of candidates --------------------------------
  std::vector<Scored> merged = ctx.allgatherv(std::span<const Scored>(local));
  std::sort(merged.begin(), merged.end(), better);
  if (merged.size() > config.num_major_terms) merged.resize(config.num_major_terms);

  TopicSelection sel;
  sel.major_terms.reserve(merged.size());
  sel.scores.reserve(merged.size());
  sel.major_df.reserve(merged.size());
  for (const auto& s : merged) {
    sel.major_index.emplace(s.term, sel.major_terms.size());
    sel.major_terms.push_back(s.term);
    sel.scores.push_back(s.score);
    sel.major_df.push_back(s.df);
  }

  const std::size_t m = std::max<std::size_t>(
      2, static_cast<std::size_t>(config.topic_fraction * static_cast<double>(sel.n())));
  sel.topic_terms.assign(sel.major_terms.begin(),
                         sel.major_terms.begin() +
                             static_cast<std::ptrdiff_t>(std::min(m, sel.n())));
  for (std::size_t j = 0; j < sel.topic_terms.size(); ++j) {
    sel.topic_index.emplace(sel.topic_terms[j], j);
  }
  return sel;
}

}  // namespace sva::sig
