#include "sva/cluster/projection.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "sva/util/error.hpp"

namespace sva::cluster {

ProjectionResult project_documents(ga::Context& ctx, const Matrix& signatures,
                                   const std::vector<std::uint64_t>& doc_ids,
                                   const PcaResult& pca) {
  require(doc_ids.size() == signatures.rows(),
          "project_documents: ids/signatures mismatch");
  const std::size_t components = pca.components.rows();
  require(components >= 2 && components <= 3,
          "project_documents: need 2 or 3 components");

  ProjectionResult result;
  result.components = components;
  result.local_xy.reserve(signatures.rows() * components);
  result.local_doc_ids = doc_ids;

  for (std::size_t i = 0; i < signatures.rows(); ++i) {
    const auto p = pca.project(signatures.row(i));
    result.local_xy.insert(result.local_xy.end(), p.begin(), p.end());
  }

  result.all_xy = ctx.gatherv(std::span<const double>(result.local_xy), 0);
  result.all_doc_ids = ctx.gatherv(std::span<const std::uint64_t>(doc_ids), 0);
  return result;
}

void write_coordinates(const std::string& path, const std::vector<std::uint64_t>& doc_ids,
                       const std::vector<double>& xy, std::size_t components) {
  require(components == 2 || components == 3, "write_coordinates: 2 or 3 components");
  require(xy.size() == doc_ids.size() * components, "write_coordinates: size mismatch");
  std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  require(out.good(), "write_coordinates: cannot open " + path);
  out << (components == 2 ? "doc_id,x,y\n" : "doc_id,x,y,z\n");
  for (std::size_t i = 0; i < doc_ids.size(); ++i) {
    out << doc_ids[i];
    for (std::size_t c = 0; c < components; ++c) out << ',' << xy[components * i + c];
    out << '\n';
  }
}

ThemeViewTerrain ThemeViewTerrain::from_points(const std::vector<double>& xy,
                                               std::size_t grid, double sigma_cells) {
  require(grid >= 4, "ThemeViewTerrain: grid too small");
  require(xy.size() % 2 == 0, "ThemeViewTerrain: xy must be interleaved pairs");

  ThemeViewTerrain terrain;
  terrain.grid_ = grid;
  terrain.density_.assign(grid * grid, 0.0);
  if (xy.empty()) return terrain;

  // Robust extent: clip to the 2nd..98th percentile so a handful of
  // outlying documents cannot compress the landscape into one cell.
  std::vector<double> xs, ys;
  xs.reserve(xy.size() / 2);
  ys.reserve(xy.size() / 2);
  for (std::size_t i = 0; i < xy.size(); i += 2) {
    xs.push_back(xy[i]);
    ys.push_back(xy[i + 1]);
  }
  auto percentile = [](std::vector<double>& v, double p) {
    const auto idx = static_cast<std::ptrdiff_t>(p * static_cast<double>(v.size() - 1));
    std::nth_element(v.begin(), v.begin() + idx, v.end());
    return v[static_cast<std::size_t>(idx)];
  };
  const double min_x = percentile(xs, 0.02);
  const double max_x = percentile(xs, 0.98);
  const double min_y = percentile(ys, 0.02);
  const double max_y = percentile(ys, 0.98);
  const double span_x = std::max(max_x - min_x, 1e-12);
  const double span_y = std::max(max_y - min_y, 1e-12);
  terrain.extent_ = {min_x, min_x + span_x, min_y, min_y + span_y};

  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma_cells)));
  const double inv_two_sigma2 = 1.0 / (2.0 * sigma_cells * sigma_cells);
  const auto g = static_cast<double>(grid - 1);

  for (std::size_t i = 0; i < xy.size(); i += 2) {
    const double cx = (xy[i] - min_x) / span_x * g;
    const double cy = (xy[i + 1] - min_y) / span_y * g;
    const int ix = static_cast<int>(std::lround(cx));
    const int iy = static_cast<int>(std::lround(cy));
    for (int dy = -radius; dy <= radius; ++dy) {
      const int row = iy + dy;
      if (row < 0 || row >= static_cast<int>(grid)) continue;
      for (int dx = -radius; dx <= radius; ++dx) {
        const int col = ix + dx;
        if (col < 0 || col >= static_cast<int>(grid)) continue;
        const double ddx = cx - static_cast<double>(col);
        const double ddy = cy - static_cast<double>(row);
        terrain.density_[static_cast<std::size_t>(row) * grid +
                         static_cast<std::size_t>(col)] +=
            std::exp(-(ddx * ddx + ddy * ddy) * inv_two_sigma2);
      }
    }
  }
  return terrain;
}

std::pair<double, double> ThemeViewTerrain::to_grid(double x, double y) const {
  const auto g = static_cast<double>(grid_ - 1);
  return {(x - extent_.min_x) / (extent_.max_x - extent_.min_x) * g,
          (y - extent_.min_y) / (extent_.max_y - extent_.min_y) * g};
}

std::pair<double, double> ThemeViewTerrain::to_world(double col, double row) const {
  const auto g = static_cast<double>(grid_ - 1);
  return {extent_.min_x + col / g * (extent_.max_x - extent_.min_x),
          extent_.min_y + row / g * (extent_.max_y - extent_.min_y)};
}

double ThemeViewTerrain::peak() const {
  double m = 0.0;
  for (double d : density_) m = std::max(m, d);
  return m;
}

std::string ThemeViewTerrain::to_ascii() const {
  static const char kRamp[] = " .:-=+*#%@";
  const double max_d = peak();
  std::string out;
  out.reserve(grid_ * (grid_ + 1));
  for (std::size_t row = 0; row < grid_; ++row) {
    for (std::size_t col = 0; col < grid_; ++col) {
      const double v = max_d > 0.0 ? at(row, col) / max_d : 0.0;
      const auto idx = static_cast<std::size_t>(v * 9.0);
      out += kRamp[std::min<std::size_t>(idx, 9)];
    }
    out += '\n';
  }
  return out;
}

}  // namespace sva::cluster
