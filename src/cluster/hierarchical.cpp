#include "sva/cluster/hierarchical.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

#include "sva/cluster/sample.hpp"
#include "sva/util/error.hpp"

namespace sva::cluster {

const char* linkage_name(Linkage linkage) {
  switch (linkage) {
    case Linkage::kSingle: return "single";
    case Linkage::kComplete: return "complete";
    case Linkage::kAverage: return "average";
  }
  return "?";
}

std::vector<std::int32_t> Dendrogram::cut_to_clusters(std::size_t k) const {
  require(k >= 1 && k <= std::max<std::size_t>(num_leaves, 1),
          "cut_to_clusters: k out of range");
  // Union-find over leaves, applying merges in order until k components
  // remain.  Merges are stored ascending by distance, so stopping early
  // yields the k-cluster cut.
  std::vector<std::size_t> parent(num_leaves + merges.size());
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  const std::size_t merges_to_apply = num_leaves - k;
  for (std::size_t m = 0; m < merges_to_apply; ++m) {
    const auto& step = merges[m];
    const std::size_t a = find(step.left);
    const std::size_t b = find(step.right);
    parent[a] = step.parent;
    parent[b] = step.parent;
  }

  // Dense labels in first-leaf order (deterministic).
  std::vector<std::int32_t> labels(num_leaves, -1);
  std::vector<std::int64_t> root_label(parent.size(), -1);
  std::int32_t next = 0;
  for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
    const std::size_t root = find(leaf);
    if (root_label[root] < 0) root_label[root] = next++;
    labels[leaf] = static_cast<std::int32_t>(root_label[root]);
  }
  return labels;
}

std::size_t Dendrogram::adaptive_cut_k(std::size_t min_k, std::size_t max_k) const {
  require(min_k >= 1 && min_k <= max_k, "adaptive_cut_k: bad bounds");
  if (num_leaves <= min_k) return num_leaves;
  max_k = std::min(max_k, num_leaves);

  // Cutting before merge m leaves (num_leaves - m) clusters.  Find the
  // largest relative jump between consecutive merge distances within the
  // admissible k window; a big jump means the next merge glues together
  // genuinely separate groups.
  std::size_t best_k = min_k;
  double best_gap = -1.0;
  for (std::size_t k = min_k; k <= max_k; ++k) {
    const std::size_t m = num_leaves - k;  // first merge NOT applied
    if (m == 0 || m >= merges.size()) continue;
    const double before = merges[m - 1].distance;
    const double after = merges[m].distance;
    const double gap = (after - before) / (before + 1e-12);
    if (gap > best_gap) {
      best_gap = gap;
      best_k = k;
    }
  }
  return best_k;
}

Dendrogram agglomerate(const Matrix& points, Linkage linkage) {
  const std::size_t n = points.rows();
  require(n >= 1, "agglomerate: empty input");
  require(n <= 8192, "agglomerate: O(n^2) method limited to 8192 points");

  Dendrogram out;
  out.num_leaves = n;
  if (n == 1) return out;

  // Active cluster bookkeeping: distance matrix with Lance–Williams
  // updates.  node_id maps active slot -> dendrogram node; size[] powers
  // average linkage.
  std::vector<double> dist(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = std::sqrt(squared_distance(points.row(i), points.row(j)));
      dist[i * n + j] = d;
      dist[j * n + i] = d;
    }
  }
  std::vector<bool> active(n, true);
  std::vector<std::size_t> node_id(n);
  std::iota(node_id.begin(), node_id.end(), std::size_t{0});
  std::vector<double> size(n, 1.0);

  std::size_t next_node = n;
  for (std::size_t step = 0; step + 1 < n; ++step) {
    // Closest active pair (deterministic tie-break on indices).
    std::size_t best_i = 0, best_j = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (dist[i * n + j] < best_d) {
          best_d = dist[i * n + j];
          best_i = i;
          best_j = j;
        }
      }
    }

    out.merges.push_back({node_id[best_i], node_id[best_j], next_node, best_d});

    // Lance–Williams update into slot best_i; retire best_j.
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == best_i || k == best_j) continue;
      const double d_ik = dist[best_i * n + k];
      const double d_jk = dist[best_j * n + k];
      double d = 0.0;
      switch (linkage) {
        case Linkage::kSingle:
          d = std::min(d_ik, d_jk);
          break;
        case Linkage::kComplete:
          d = std::max(d_ik, d_jk);
          break;
        case Linkage::kAverage:
          d = (size[best_i] * d_ik + size[best_j] * d_jk) / (size[best_i] + size[best_j]);
          break;
      }
      dist[best_i * n + k] = d;
      dist[k * n + best_i] = d;
    }
    size[best_i] += size[best_j];
    node_id[best_i] = next_node++;
    active[best_j] = false;
  }
  return out;
}

HierarchicalResult hierarchical_cluster(ga::Context& ctx, const Matrix& points,
                                        const HierarchicalConfig& config) {
  const std::size_t dim_local = points.rows() > 0 ? points.cols() : 0;
  const auto dim = static_cast<std::size_t>(
      ctx.allreduce_max(static_cast<std::int64_t>(dim_local)));
  require(dim >= 1, "hierarchical_cluster: zero-dimensional points");

  // Replicated strided sample (same scheme as k-means seeding): selected
  // by global row index, so the dendrogram — and every product cut from
  // it — is byte-identical for any processor count.
  const Matrix sample = replicated_sample(ctx, points, dim, config.seed_sample_total);
  require(sample.rows() > 0, "hierarchical_cluster: no points anywhere");

  HierarchicalResult result;
  result.dendrogram = agglomerate(sample, config.linkage);

  std::size_t k = config.k;
  if (k == 0) k = result.dendrogram.adaptive_cut_k(config.min_k, config.max_k);
  k = std::min(k, sample.rows());
  result.k = k;
  const auto sample_labels = result.dendrogram.cut_to_clusters(k);

  // Cut-cluster centroids from the sample (identical on all ranks).
  result.centroids = Matrix(k, dim);
  std::vector<double> counts(k, 0.0);
  for (std::size_t i = 0; i < sample.rows(); ++i) {
    const auto c = static_cast<std::size_t>(sample_labels[i]);
    axpy(1.0, sample.row(i), result.centroids.row(c));
    counts[c] += 1.0;
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] > 0.0) {
      for (double& v : result.centroids.row(c)) v /= counts[c];
    }
  }

  // Assign local points to nearest cut-cluster centroid.
  result.assignment.assign(points.rows(), 0);
  std::vector<std::int64_t> local_sizes(k, 0);
  for (std::size_t i = 0; i < points.rows(); ++i) {
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      const double d = squared_distance(points.row(i), result.centroids.row(c));
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    result.assignment[i] = static_cast<std::int32_t>(best);
    ++local_sizes[best];
  }
  ctx.allreduce_sum(local_sizes.data(), local_sizes.size());
  result.cluster_sizes = std::move(local_sizes);
  return result;
}

}  // namespace sva::cluster
