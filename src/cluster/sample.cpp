#include "sva/cluster/sample.hpp"

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace sva::cluster {

Matrix replicated_sample(ga::Context& ctx, const Matrix& points, std::size_t dim,
                         std::size_t total_budget) {
  std::vector<double> local_sample;
  const auto local_rows = static_cast<std::int64_t>(points.rows());
  const std::int64_t row_offset = ctx.exscan_sum(local_rows);
  const std::int64_t total_rows = ctx.allreduce_sum(local_rows);
  const auto take = std::min<std::int64_t>(
      static_cast<std::int64_t>(std::max<std::size_t>(total_budget, 1)), total_rows);
  if (take > 0) {
    // The i-th selected global row is floor(i * total_rows / take),
    // i in [0, take): strictly increasing, exactly `take` rows, and
    // evenly spread over the whole index range.  (A floored fixed
    // stride would cluster the sample at the dataset prefix whenever
    // total_rows < 2 * take, starving the tail of seeding coverage.)
    // First i whose selected row falls at or after this rank's shard:
    std::int64_t i = (row_offset * take + total_rows - 1) / total_rows;
    for (; i < take; ++i) {
      const std::int64_t g = i * total_rows / take;
      if (g >= row_offset + local_rows) break;
      const auto row = points.row(static_cast<std::size_t>(g - row_offset));
      local_sample.insert(local_sample.end(), row.begin(), row.end());
    }
  }

  const std::vector<double> sample_flat =
      ctx.allgatherv(std::span<const double>(local_sample));
  Matrix sample(sample_flat.size() / dim, dim);
  std::copy(sample_flat.begin(), sample_flat.end(), sample.flat().begin());
  return sample;
}

}  // namespace sva::cluster
