#include "sva/cluster/quality.hpp"

#include <cmath>
#include <map>

#include "sva/util/error.hpp"

namespace sva::cluster {

double purity(const std::vector<std::int32_t>& assignment,
              const std::vector<std::int32_t>& truth) {
  require(assignment.size() == truth.size(), "purity: size mismatch");
  if (assignment.empty()) return 1.0;

  std::map<std::int32_t, std::map<std::int32_t, std::size_t>> cluster_truth_counts;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    ++cluster_truth_counts[assignment[i]][truth[i]];
  }
  std::size_t majority_total = 0;
  for (const auto& [cluster, counts] : cluster_truth_counts) {
    std::size_t best = 0;
    for (const auto& [label, count] : counts) best = std::max(best, count);
    majority_total += best;
  }
  return static_cast<double>(majority_total) / static_cast<double>(assignment.size());
}

double normalized_mutual_information(const std::vector<std::int32_t>& assignment,
                                     const std::vector<std::int32_t>& truth) {
  require(assignment.size() == truth.size(), "NMI: size mismatch");
  const auto n = static_cast<double>(assignment.size());
  if (assignment.empty()) return 1.0;

  std::map<std::int32_t, double> pa, pb;
  std::map<std::pair<std::int32_t, std::int32_t>, double> pab;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    pa[assignment[i]] += 1.0;
    pb[truth[i]] += 1.0;
    pab[{assignment[i], truth[i]}] += 1.0;
  }

  double mi = 0.0;
  for (const auto& [key, count] : pab) {
    const double p_joint = count / n;
    const double p_a = pa[key.first] / n;
    const double p_b = pb[key.second] / n;
    mi += p_joint * std::log(p_joint / (p_a * p_b));
  }
  auto entropy = [&](const std::map<std::int32_t, double>& p) {
    double h = 0.0;
    for (const auto& [label, count] : p) {
      const double q = count / n;
      h -= q * std::log(q);
    }
    return h;
  };
  const double ha = entropy(pa);
  const double hb = entropy(pb);
  if (ha <= 0.0 && hb <= 0.0) return 1.0;  // both single-cluster
  const double denom = 0.5 * (ha + hb);
  return denom > 0.0 ? std::max(0.0, mi / denom) : 0.0;
}

}  // namespace sva::cluster
