#include "sva/cluster/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sva/cluster/sample.hpp"
#include "sva/ga/repro_sum.hpp"
#include "sva/util/error.hpp"
#include "sva/util/rng.hpp"

namespace sva::cluster {

namespace {

/// Cache-blocked nearest-centroid assignment for a contiguous tile of
/// points: centroids are visited block by block (a block sized to stay
/// L1-resident) with the whole tile scanning each block before the next
/// is touched.  Per point, the comparison sequence is still ascending
/// centroid order with strict `<`, so best distance, winning centroid and
/// tie-breaking are bit-identical to the naive per-point loop — this is a
/// pure reordering across independent points.
void assign_tile_blocked(const Matrix& points, std::size_t tile_begin, std::size_t tile_end,
                         const Matrix& centroids, std::span<std::int32_t> best_c,
                         std::span<double> best_d) {
  const std::size_t k = centroids.rows();
  const std::size_t dim = centroids.cols();
  // Centroid block sized to ~half of a 32 KiB L1d, at least one row.
  const std::size_t block =
      std::max<std::size_t>(1, (16u << 10) / std::max<std::size_t>(1, dim * sizeof(double)));
  for (std::size_t i = tile_begin; i < tile_end; ++i) {
    best_d[i - tile_begin] = std::numeric_limits<double>::infinity();
    best_c[i - tile_begin] = 0;
  }
  for (std::size_t cb = 0; cb < k; cb += block) {
    const std::size_t ce = std::min(k, cb + block);
    for (std::size_t i = tile_begin; i < tile_end; ++i) {
      const auto row = points.row(i);
      double d_best = best_d[i - tile_begin];
      std::int32_t c_best = best_c[i - tile_begin];
      for (std::size_t c = cb; c < ce; ++c) {
        const double d = squared_distance(row, centroids.row(c));
        if (d < d_best) {
          d_best = d;
          c_best = static_cast<std::int32_t>(c);
        }
      }
      best_d[i - tile_begin] = d_best;
      best_c[i - tile_begin] = c_best;
    }
  }
}

constexpr std::size_t kAssignTilePoints = 128;

double nearest_distance(std::span<const double> point, const Matrix& centroids,
                        std::size_t upto) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < upto; ++c) {
    best = std::min(best, squared_distance(point, centroids.row(c)));
  }
  return best;
}

}  // namespace

Matrix kmeanspp_seed(const Matrix& sample, std::size_t k, std::uint64_t seed) {
  require(sample.rows() >= 1, "kmeanspp_seed: empty sample");
  const std::size_t dim = sample.cols();
  Matrix centroids(k, dim);
  Xoshiro256 rng(seed);

  // First centroid: uniform pick.
  {
    const std::size_t first = rng.below(sample.rows());
    auto dst = centroids.row(0);
    auto src = sample.row(first);
    std::copy(src.begin(), src.end(), dst.begin());
  }

  std::vector<double> d2(sample.rows());
  for (std::size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (std::size_t i = 0; i < sample.rows(); ++i) {
      d2[i] = nearest_distance(sample.row(i), centroids, c);
      total += d2[i];
    }
    std::size_t pick = 0;
    if (total > 0.0) {
      // D^2-weighted pick.
      double u = rng.uniform() * total;
      for (std::size_t i = 0; i < sample.rows(); ++i) {
        u -= d2[i];
        if (u <= 0.0) {
          pick = i;
          break;
        }
      }
    } else {
      pick = rng.below(sample.rows());
    }
    auto dst = centroids.row(c);
    auto src = sample.row(pick);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return centroids;
}

KMeansResult kmeans_cluster(ga::Context& ctx, const Matrix& points,
                            const KMeansConfig& config) {
  require(config.k >= 1, "kmeans_cluster: k must be >= 1");
  const std::size_t dim_local = points.rows() > 0 ? points.cols() : 0;
  // All ranks must agree on the dimension even if some hold no points.
  const auto dim = static_cast<std::size_t>(
      ctx.allreduce_max(static_cast<std::int64_t>(dim_local)));
  require(dim >= 1, "kmeans_cluster: zero-dimensional points");

  // ---- replicated seeding sample --------------------------------------
  // Global-index strided subsample: identical for every processor count,
  // so the k-means++ seeds (and with them the whole run) are a pure
  // function of the data, not of the partitioning.
  const Matrix sample = replicated_sample(ctx, points, dim, config.seed_sample_total);
  require(sample.rows() > 0, "kmeans_cluster: no points anywhere");

  const std::size_t k = std::min(config.k, sample.rows());
  KMeansResult result;
  result.centroids = kmeanspp_seed(sample, k, config.seed);
  result.assignment.assign(points.rows(), 0);
  result.cluster_sizes.assign(k, 0);

  // ---- Lloyd iterations with Allreduce merges --------------------------
  // Centroid sums and inertia accumulate through order-invariant
  // fixed-point banks so the merged totals — and hence the centroids and
  // every product downstream of them — are byte-identical for any
  // processor count.  The magnitude bounds are exact collectives (max is
  // order-invariant), so all ranks quantize at the same scale.
  double local_abs = 0.0;
  for (std::size_t i = 0; i < points.rows(); ++i) {
    for (const double v : points.row(i)) local_abs = std::max(local_abs, std::abs(v));
  }
  const double coord_bound = ctx.allreduce_max(local_abs);
  // squared_distance(point, centroid) <= dim * (2 * coord_bound)^2:
  // centroids are convex combinations of points (or sample rows), so
  // every coordinate stays within [-coord_bound, coord_bound].
  const double inertia_bound =
      4.0 * static_cast<double>(dim) * coord_bound * coord_bound + 1.0;

  std::vector<std::int64_t> counts(k);
  std::vector<std::int32_t> tile_c(kAssignTilePoints);
  std::vector<double> tile_d(kAssignTilePoints);

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    std::fill(counts.begin(), counts.end(), 0);
    ga::ReproducibleSum sum_acc(k * dim, coord_bound);
    ga::ReproducibleSum inertia_acc(1, inertia_bound);

    for (std::size_t tb = 0; tb < points.rows(); tb += kAssignTilePoints) {
      const std::size_t te = std::min(points.rows(), tb + kAssignTilePoints);
      assign_tile_blocked(points, tb, te, result.centroids, tile_c, tile_d);
      for (std::size_t i = tb; i < te; ++i) {
        const auto row = points.row(i);
        const auto c = static_cast<std::size_t>(tile_c[i - tb]);
        result.assignment[i] = tile_c[i - tb];
        inertia_acc.add(0, tile_d[i - tb]);
        for (std::size_t d = 0; d < dim; ++d) sum_acc.add(c * dim + d, row[d]);
        ++counts[c];
      }
    }

    const std::vector<double> sums = sum_acc.allreduce_sum(ctx);
    ctx.allreduce_sum(counts.data(), counts.size());
    result.inertia = inertia_acc.allreduce_sum(ctx)[0];

    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      auto centroid = result.centroids.row(c);
      if (counts[c] > 0) {
        for (std::size_t d = 0; d < dim; ++d) {
          const double updated = sums[c * dim + d] / static_cast<double>(counts[c]);
          const double delta = updated - centroid[d];
          movement += delta * delta;
          centroid[d] = updated;
        }
      } else {
        // Empty cluster: reseed from the replicated sample with the point
        // farthest from its nearest centroid (identical on all ranks).
        std::size_t far = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < sample.rows(); ++i) {
          const double d = nearest_distance(sample.row(i), result.centroids, k);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        const auto src = sample.row(far);
        for (std::size_t d = 0; d < dim; ++d) {
          const double delta = src[d] - centroid[d];
          movement += delta * delta;
          centroid[d] = src[d];
        }
      }
    }

    std::copy(counts.begin(), counts.end(), result.cluster_sizes.begin());
    if (movement < config.tolerance) break;
  }

  // Final assignment against the converged centroids.
  std::fill(counts.begin(), counts.end(), 0);
  ga::ReproducibleSum final_inertia(1, inertia_bound);
  for (std::size_t tb = 0; tb < points.rows(); tb += kAssignTilePoints) {
    const std::size_t te = std::min(points.rows(), tb + kAssignTilePoints);
    assign_tile_blocked(points, tb, te, result.centroids, tile_c, tile_d);
    for (std::size_t i = tb; i < te; ++i) {
      result.assignment[i] = tile_c[i - tb];
      final_inertia.add(0, tile_d[i - tb]);
      ++counts[static_cast<std::size_t>(tile_c[i - tb])];
    }
  }
  ctx.allreduce_sum(counts.data(), counts.size());
  result.inertia = final_inertia.allreduce_sum(ctx)[0];
  result.cluster_sizes.assign(counts.begin(), counts.end());
  return result;
}

AssignEval assign_to_centroids(ga::Context& ctx, const Matrix& points,
                               const Matrix& centroids) {
  const std::size_t k = centroids.rows();
  const std::size_t dim = centroids.cols();
  require(k >= 1 && dim >= 1, "assign_to_centroids: empty centroids");
  require(points.rows() == 0 || points.cols() == dim,
          "assign_to_centroids: point/centroid dimension mismatch");

  // Same quantization bound derivation as kmeans_cluster: max coordinate
  // magnitude over the global point set (centroids are convex
  // combinations of signatures, so they stay within the same bound).
  double local_abs = 0.0;
  for (std::size_t i = 0; i < points.rows(); ++i) {
    for (const double v : points.row(i)) local_abs = std::max(local_abs, std::abs(v));
  }
  const double coord_bound = ctx.allreduce_max(local_abs);
  const double inertia_bound =
      4.0 * static_cast<double>(dim) * coord_bound * coord_bound + 1.0;

  AssignEval out;
  out.assignment.assign(points.rows(), 0);
  std::vector<std::int64_t> counts(k, 0);
  std::vector<std::int32_t> tile_c(kAssignTilePoints);
  std::vector<double> tile_d(kAssignTilePoints);
  ga::ReproducibleSum inertia_acc(1, inertia_bound);
  for (std::size_t tb = 0; tb < points.rows(); tb += kAssignTilePoints) {
    const std::size_t te = std::min(points.rows(), tb + kAssignTilePoints);
    assign_tile_blocked(points, tb, te, centroids, tile_c, tile_d);
    for (std::size_t i = tb; i < te; ++i) {
      out.assignment[i] = tile_c[i - tb];
      inertia_acc.add(0, tile_d[i - tb]);
      ++counts[static_cast<std::size_t>(tile_c[i - tb])];
    }
  }
  ctx.allreduce_sum(counts.data(), counts.size());
  out.inertia = inertia_acc.allreduce_sum(ctx)[0];
  out.cluster_sizes = std::move(counts);
  return out;
}

}  // namespace sva::cluster
