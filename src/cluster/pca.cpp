#include "sva/cluster/pca.hpp"

#include <algorithm>
#include <cmath>

#include "sva/util/error.hpp"

namespace sva::cluster {

std::vector<double> PcaResult::project(std::span<const double> point) const {
  require(point.size() == mean.size(), "PcaResult::project: dimension mismatch");
  std::vector<double> out(components.rows(), 0.0);
  std::vector<double> centered(point.size());
  for (std::size_t d = 0; d < point.size(); ++d) centered[d] = point[d] - mean[d];
  for (std::size_t c = 0; c < components.rows(); ++c) {
    out[c] = dot(centered, components.row(c));
  }
  return out;
}

PcaResult pca_fit(const Matrix& data, std::size_t num_components) {
  require(data.rows() >= 1, "pca_fit: empty data");
  require(num_components >= 1 && num_components <= data.cols(),
          "pca_fit: invalid component count");

  PcaResult result;
  result.mean = column_mean(data);
  const Matrix cov = covariance(data, result.mean);
  const EigenResult eig = jacobi_eigen(cov);

  result.components = Matrix(num_components, data.cols());
  result.eigenvalues.resize(num_components);
  for (std::size_t c = 0; c < num_components; ++c) {
    result.eigenvalues[c] = eig.values[c];
    auto dst = result.components.row(c);
    auto src = eig.vectors.row(c);
    std::copy(src.begin(), src.end(), dst.begin());
    // Deterministic sign convention: make the largest-magnitude entry
    // positive so results are stable across eigensolver quirks.
    double max_abs = 0.0;
    double signed_val = 1.0;
    for (double v : dst) {
      if (std::abs(v) > max_abs) {
        max_abs = std::abs(v);
        signed_val = v;
      }
    }
    if (signed_val < 0.0) {
      for (double& v : dst) v = -v;
    }
  }
  return result;
}

}  // namespace sva::cluster
