// External clustering-quality metrics.
//
// The synthetic corpora carry ground-truth latent themes, so the
// reproduction can quantify what the paper only shows visually: that the
// signature space + clustering recover real thematic structure.  Used by
// tests and by the association-weighting ablation bench.
#pragma once

#include <cstdint>
#include <vector>

namespace sva::cluster {

/// Purity: fraction of points whose cluster's majority truth label
/// matches their own.  1.0 = perfect, ~1/k for random.
double purity(const std::vector<std::int32_t>& assignment,
              const std::vector<std::int32_t>& truth);

/// Normalized mutual information in [0, 1] (arithmetic-mean
/// normalization).  Robust to cluster-count mismatch, unlike purity.
double normalized_mutual_information(const std::vector<std::int32_t>& assignment,
                                     const std::vector<std::int32_t>& truth);

}  // namespace sva::cluster
