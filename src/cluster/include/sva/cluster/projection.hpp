// 2-D projection and the ThemeView terrain (§3.5, Figure 2).
//
// Every rank projects its own documents' signatures through the
// (replicated) PCA transformation; "the master process (rank 0) collects
// all the coordinates and writes them to a file, which is used to
// construct the ThemeView visualization."  The terrain itself — a
// density landscape where "mountains" are dominant themes — is computed
// by Gaussian splatting of the projected points onto a grid.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sva/cluster/pca.hpp"
#include "sva/ga/runtime.hpp"
#include "sva/util/mathutil.hpp"

namespace sva::cluster {

struct ProjectionResult {
  /// Number of projected components (2 for ThemeView, 3 supported).
  std::size_t components = 2;
  /// Local coordinates, interleaved (x0, y0[, z0], x1, ...).
  std::vector<double> local_xy;
  std::vector<std::uint64_t> local_doc_ids;

  /// Rank 0 only: the gathered coordinates of every document (the
  /// engine's "final primary product"), interleaved, plus aligned ids.
  std::vector<double> all_xy;
  std::vector<std::uint64_t> all_doc_ids;
};

/// Collective: projects local signature rows through `pca` (its component
/// count, 2 or 3, determines the output dimension) and gathers all
/// coordinates on rank 0.
ProjectionResult project_documents(ga::Context& ctx, const Matrix& signatures,
                                   const std::vector<std::uint64_t>& doc_ids,
                                   const PcaResult& pca);

/// Writes "doc_id,x,y[,z]" lines (rank 0's gathered output).
void write_coordinates(const std::string& path, const std::vector<std::uint64_t>& doc_ids,
                       const std::vector<double>& xy, std::size_t components = 2);

/// Scale-independent density landscape built from 2-D points.
class ThemeViewTerrain {
 public:
  /// World-coordinate window the grid covers (robust 2nd..98th
  /// percentile extent of the input points).
  struct Extent {
    double min_x = 0.0;
    double max_x = 1.0;
    double min_y = 0.0;
    double max_y = 1.0;
  };

  /// Splats `xy` (interleaved) onto a grid×grid landscape with a Gaussian
  /// kernel whose radius is `sigma_cells` grid cells.
  static ThemeViewTerrain from_points(const std::vector<double>& xy, std::size_t grid = 48,
                                      double sigma_cells = 1.5);

  [[nodiscard]] std::size_t grid() const { return grid_; }
  [[nodiscard]] double at(std::size_t row, std::size_t col) const {
    return density_[row * grid_ + col];
  }
  [[nodiscard]] double peak() const;
  [[nodiscard]] const std::vector<double>& densities() const { return density_; }
  [[nodiscard]] const Extent& extent() const { return extent_; }

  /// Maps a world coordinate into (col, row) grid space (fractional;
  /// points outside the robust extent land outside [0, grid-1]).
  [[nodiscard]] std::pair<double, double> to_grid(double x, double y) const;

  /// Maps a (col, row) grid coordinate back to world space.
  [[nodiscard]] std::pair<double, double> to_world(double col, double row) const;

  /// ASCII rendering (one char per cell, darker = denser) for examples
  /// and quick inspection.
  [[nodiscard]] std::string to_ascii() const;

 private:
  std::size_t grid_ = 0;
  std::vector<double> density_;
  Extent extent_;
};

}  // namespace sva::cluster
