// Replicated strided subsampling shared by the clustering backends.
#pragma once

#include <cstddef>

#include "sva/ga/runtime.hpp"
#include "sva/util/mathutil.hpp"

namespace sva::cluster {

/// Collective: deterministic strided subsample of the distributed point
/// set (`points` holds this rank's rows), replicated on every rank.
///
/// Rows are selected by *global* row index — rank shards are contiguous
/// and the gather concatenates in rank order, so every processor count
/// sees the same sample matrix and anything seeded from it is a pure
/// function of the data, not of the partitioning.  `total_budget` caps
/// the sample size globally, keeping the redundant per-rank work
/// constant as the world grows.
///
/// `dim` must be the agreed global column count (ranks may hold zero
/// rows).  The result may have zero rows iff no rank holds any points.
Matrix replicated_sample(ga::Context& ctx, const Matrix& points, std::size_t dim,
                         std::size_t total_budget);

}  // namespace sva::cluster
