// Principal component analysis over cluster centroids (§3.5).
//
// "Our approach for dimensionality reduction was to use the cluster
// centroids and employ principal component analysis, where we can use the
// first two principal components to project the M space onto those
// principal components."  Using the K centroids (a representative sample
// of the document space) instead of all documents makes the covariance
// problem tiny and identical on every rank, so each process computes the
// transformation matrix redundantly with zero communication.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sva/util/mathutil.hpp"

namespace sva::cluster {

struct PcaResult {
  std::vector<double> mean;         ///< dim
  Matrix components;                ///< num_components × dim, orthonormal
  std::vector<double> eigenvalues;  ///< descending, one per component

  /// Projects a dim-vector onto the principal components.
  [[nodiscard]] std::vector<double> project(std::span<const double> point) const;
};

/// Computes PCA of the rows of `data` (typically cluster centroids) and
/// keeps the top `num_components` components.  Purely local/deterministic.
PcaResult pca_fit(const Matrix& data, std::size_t num_components = 2);

}  // namespace sva::cluster
