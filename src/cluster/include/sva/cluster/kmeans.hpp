// Distributed k-means (§3.5), after Dhillon & Modha's distributed-memory
// formulation [9]: every rank assigns its own points to the replicated
// centroids, partial centroid sums are merged with an Allreduce, and all
// ranks recompute identical centroids.  Seeding is deterministic
// k-means++ over a replicated sample, so results are independent of the
// processor count.
//
// "The intent of clustering is to produce anchoring vectors (centroids)
// in the M-dimensional space that represent the major thematic
// groupings" — the centroids also feed the PCA projection.
#pragma once

#include <cstdint>
#include <vector>

#include "sva/ga/runtime.hpp"
#include "sva/util/mathutil.hpp"

namespace sva::cluster {

struct KMeansConfig {
  std::size_t k = 16;
  int max_iterations = 64;
  /// Convergence: stop when total squared centroid movement falls below
  /// this threshold.
  double tolerance = 1e-8;
  std::uint64_t seed = 0x5EEDFACE;
  /// Global size of the replicated seeding sample (split evenly across
  /// ranks).  A P-independent total keeps the redundant per-rank seeding
  /// work constant as the world grows — with a fixed per-rank quota the
  /// seeding pass would cost O(P) on every rank and the clustering stage
  /// would anti-scale.
  std::size_t seed_sample_total = 2048;
};

struct KMeansResult {
  Matrix centroids;                       ///< k × dim, replicated
  std::vector<std::int32_t> assignment;   ///< local points → cluster id
  std::vector<std::int64_t> cluster_sizes;  ///< global, length k
  int iterations = 0;
  double inertia = 0.0;  ///< global sum of squared point-centroid distances
};

/// Collective: clusters the rank-local `points` (rows) into k groups.
/// All ranks receive identical centroids/cluster_sizes; `assignment` is
/// row-aligned with the local points.
KMeansResult kmeans_cluster(ga::Context& ctx, const Matrix& points,
                            const KMeansConfig& config = {});

/// One nearest-centroid evaluation pass (no centroid update).
struct AssignEval {
  std::vector<std::int32_t> assignment;     ///< local points → cluster id
  std::vector<std::int64_t> cluster_sizes;  ///< global, length k
  double inertia = 0.0;                     ///< global, order-invariant
};

/// Collective: assigns the rank-local `points` to the replicated (frozen)
/// `centroids`, mirroring kmeans_cluster's final pass exactly — same tile
/// kernel, tie-breaking, and ReproducibleSum inertia bank, with the
/// quantization bound derived from an allreduce_max over the *global*
/// point set.  Given the same global points and centroids, the inertia is
/// byte-identical for any processor count and any local split of the
/// points — the foundation of the delta-vs-recompute equivalence gate.
AssignEval assign_to_centroids(ga::Context& ctx, const Matrix& points,
                               const Matrix& centroids);

/// Deterministic k-means++ seeding over a replicated sample (exposed for
/// tests).  Returns k × dim centroids.
Matrix kmeanspp_seed(const Matrix& sample, std::size_t k, std::uint64_t seed);

}  // namespace sva::cluster
