// Agglomerative hierarchical clustering (§3.5): "other types of
// clustering could be applied that would enable different means to
// explore the relationships of the data (e.g., hierarchical clustering:
// single-link, complete, and various adaptive cutting approaches)."
//
// We implement Lance–Williams agglomeration with single, complete and
// average linkage plus two cutting strategies (fixed cluster count and a
// merge-distance gap cut).  The dendrogram is built serially over a
// replicated sample — exactly how IN-SPIRE-style tools use hierarchies
// for exploration — and the distributed wrapper assigns every rank-local
// point to the nearest cut-cluster centroid, mirroring the k-means data
// flow so the engine can swap backends.
#pragma once

#include <cstdint>
#include <vector>

#include "sva/ga/runtime.hpp"
#include "sva/util/mathutil.hpp"

namespace sva::cluster {

enum class Linkage { kSingle, kComplete, kAverage };

const char* linkage_name(Linkage linkage);

/// One merge step of the dendrogram: nodes `left` and `right` join at
/// `distance` to form node `parent`.  Leaves are nodes [0, n); internal
/// nodes are numbered n, n+1, ... in merge order.
struct DendrogramMerge {
  std::size_t left = 0;
  std::size_t right = 0;
  std::size_t parent = 0;
  double distance = 0.0;
};

struct Dendrogram {
  std::size_t num_leaves = 0;
  std::vector<DendrogramMerge> merges;  ///< n-1 entries, ascending distance

  /// Leaf labels after cutting to exactly `k` clusters (k in [1, n]).
  /// Labels are dense in [0, k) and deterministic.
  [[nodiscard]] std::vector<std::int32_t> cut_to_clusters(std::size_t k) const;

  /// Adaptive cut: chooses k at the largest relative gap between
  /// consecutive merge distances (bounded to [min_k, max_k]).
  [[nodiscard]] std::size_t adaptive_cut_k(std::size_t min_k, std::size_t max_k) const;
};

/// Serial agglomeration over the rows of `points` (O(n^2) memory; intended
/// for samples/centroids, n up to a few thousand).
Dendrogram agglomerate(const Matrix& points, Linkage linkage);

struct HierarchicalConfig {
  Linkage linkage = Linkage::kAverage;
  std::size_t k = 16;        ///< clusters after cutting (0 => adaptive cut)
  std::size_t min_k = 4;     ///< adaptive-cut lower bound
  std::size_t max_k = 64;    ///< adaptive-cut upper bound
  /// Global size of the replicated sample (split across ranks); the
  /// O(n^2) agglomeration runs on this sample, so keeping it
  /// P-independent keeps the stage's cost P-independent too.
  std::size_t seed_sample_total = 1024;
};

/// Mirrors KMeansResult so the engine can treat backends uniformly.
struct HierarchicalResult {
  Matrix centroids;                         ///< k × dim (cut-cluster means)
  std::vector<std::int32_t> assignment;     ///< local points -> cluster
  std::vector<std::int64_t> cluster_sizes;  ///< global
  std::size_t k = 0;
  Dendrogram dendrogram;                    ///< over the replicated sample
};

/// Collective: builds the dendrogram on a replicated sample, cuts it, and
/// assigns every local point to the nearest cut-cluster centroid.
HierarchicalResult hierarchical_cluster(ga::Context& ctx, const Matrix& points,
                                        const HierarchicalConfig& config = {});

}  // namespace sva::cluster
