#include "sva/ga/task_queue.hpp"

#include <algorithm>
#include <chrono>

namespace sva::ga {

// ---- ClaimGate -------------------------------------------------------------

bool ClaimGate::may_grant(int rank) const {
  const auto r = static_cast<std::size_t>(rank);
  for (std::size_t s = 0; s < state_.size(); ++s) {
    if (s == r) continue;
    switch (state_[s]) {
      case State::kUnseen:
        // s has not reached the queue yet; its first claim could carry any
        // virtual time, so nobody may overtake it.
        return false;
      case State::kWaiting:
      case State::kProcessing:
        if (vtime_[s] < vtime_[r] || (vtime_[s] == vtime_[r] && s < r)) return false;
        break;
      case State::kDone:
        break;
    }
  }
  return true;
}

void ClaimGate::enter(Context& ctx) {
  const auto r = static_cast<std::size_t>(ctx.rank());
  const double now = ctx.vtime();  // samples compute before blocking
  std::unique_lock<std::mutex> lock(mutex_);
  if (state_[r] == State::kDone) return;  // post-drain probes skip the gate
  state_[r] = State::kWaiting;
  vtime_[r] = now;
  cv_.notify_all();
  while (!may_grant(ctx.rank())) {
    // Poll the abort flag so a peer's exception cannot strand us here.
    cv_.wait_for(lock, std::chrono::milliseconds(20));
    if (ctx.world().aborted_.load()) {
      throw ProtocolError("ClaimGate: world aborted while waiting for a claim");
    }
  }
  state_[r] = State::kProcessing;  // vtime_[r] stays as the lower bound
}

void ClaimGate::finish(Context& ctx) {
  const auto r = static_cast<std::size_t>(ctx.rank());
  std::lock_guard<std::mutex> lock(mutex_);
  state_[r] = State::kDone;
  cv_.notify_all();
}

// ---- TaskQueue base ----------------------------------------------------------

std::optional<TaskChunk> TaskQueue::next(Context& ctx) {
  if (!gate_) return claim(ctx);
  gate_->enter(ctx);
  auto chunk = claim(ctx);
  if (!chunk) gate_->finish(ctx);
  return chunk;
}

// ---- AtomicCounterQueue --------------------------------------------------

AtomicCounterQueue::AtomicCounterQueue(GlobalArray<std::int64_t> counter,
                                       std::size_t num_tasks, std::size_t chunk_size)
    : counter_(std::move(counter)), num_tasks_(num_tasks), chunk_size_(chunk_size) {
  require(chunk_size >= 1, "AtomicCounterQueue: chunk_size must be >= 1");
}

std::shared_ptr<AtomicCounterQueue> AtomicCounterQueue::create(Context& ctx,
                                                               std::size_t num_tasks,
                                                               std::size_t chunk_size,
                                                               bool vtime_ordered) {
  auto counter = GlobalArray<std::int64_t>::create(ctx, 1);
  return ctx.collective_create<AtomicCounterQueue>([&]() {
    auto q = std::make_shared<AtomicCounterQueue>(counter, num_tasks, chunk_size);
    if (vtime_ordered) q->enable_vtime_order(ctx.nprocs());
    return q;
  });
}

std::optional<TaskChunk> AtomicCounterQueue::claim(Context& ctx) {
  // GA NGA_Read_inc on the shared counter: one atomic RMW per claim.
  const auto begin = static_cast<std::size_t>(
      counter_.fetch_add(ctx, 0, static_cast<std::int64_t>(chunk_size_)));
  if (begin >= num_tasks_) return std::nullopt;
  return TaskChunk{begin, std::min(num_tasks_, begin + chunk_size_)};
}

// ---- MasterWorkerQueue -----------------------------------------------------

MasterWorkerQueue::MasterWorkerQueue(std::size_t num_tasks, std::size_t chunk_size)
    : num_tasks_(num_tasks), chunk_size_(chunk_size) {
  require(chunk_size >= 1, "MasterWorkerQueue: chunk_size must be >= 1");
}

std::shared_ptr<MasterWorkerQueue> MasterWorkerQueue::create(Context& ctx,
                                                             std::size_t num_tasks,
                                                             std::size_t chunk_size,
                                                             bool vtime_ordered) {
  return ctx.collective_create<MasterWorkerQueue>([&]() {
    auto q = std::make_shared<MasterWorkerQueue>(num_tasks, chunk_size);
    if (vtime_ordered) q->enable_vtime_order(ctx.nprocs());
    return q;
  });
}

std::optional<TaskChunk> MasterWorkerQueue::claim(Context& ctx) {
  const bool is_master = ctx.rank() == 0;
  const double request_latency = is_master ? ctx.model().alpha_local : ctx.model().alpha;

  // The request leaves the worker at its current virtual time and queues
  // at the master, which services requests one at a time.  The reply
  // arrives one message latency after service completes.  This serial
  // `master_busy_until_` clock is precisely the bottleneck of [20].
  const double request_arrives = ctx.vtime() + request_latency;

  std::lock_guard<std::mutex> lock(mutex_);
  const double service_start = std::max(master_busy_until_, request_arrives);
  const double service_end = service_start + ctx.model().rpc_service;
  master_busy_until_ = service_end;
  ctx.set_vtime(service_end + request_latency);

  if (next_task_ >= num_tasks_) return std::nullopt;
  const std::size_t begin = next_task_;
  next_task_ = std::min(num_tasks_, next_task_ + chunk_size_);
  return TaskChunk{begin, next_task_};
}

// ---- StaticPartitionQueue ---------------------------------------------------

StaticPartitionQueue::StaticPartitionQueue(std::size_t num_tasks, int nprocs)
    : num_tasks_(num_tasks),
      nprocs_(nprocs),
      claimed_(static_cast<std::size_t>(nprocs), 0) {}

std::shared_ptr<StaticPartitionQueue> StaticPartitionQueue::create(Context& ctx,
                                                                   std::size_t num_tasks,
                                                                   bool vtime_ordered) {
  return ctx.collective_create<StaticPartitionQueue>([&]() {
    auto q = std::make_shared<StaticPartitionQueue>(num_tasks, ctx.nprocs());
    if (vtime_ordered) q->enable_vtime_order(ctx.nprocs());
    return q;
  });
}

std::optional<TaskChunk> StaticPartitionQueue::claim(Context& ctx) {
  const auto rank = static_cast<std::size_t>(ctx.rank());
  if (claimed_[rank] != 0) return std::nullopt;
  claimed_[rank] = 1;
  const auto nprocs = static_cast<std::size_t>(nprocs_);
  const std::size_t per_rank = (num_tasks_ + nprocs - 1) / nprocs;
  const std::size_t begin = std::min(num_tasks_, rank * per_rank);
  const std::size_t end = std::min(num_tasks_, begin + per_rank);
  if (begin >= end) return std::nullopt;
  return TaskChunk{begin, end};
}

// ---- OwnerFirstChunkQueue ---------------------------------------------------

OwnerFirstChunkQueue::OwnerFirstChunkQueue(
    GlobalArray<std::int64_t> cursors,
    std::vector<std::pair<std::size_t, std::size_t>> ranges, std::size_t chunk_size)
    : cursors_(std::move(cursors)), ranges_(std::move(ranges)), chunk_size_(chunk_size) {
  require(chunk_size >= 1, "OwnerFirstChunkQueue: chunk_size must be >= 1");
  for (const auto& [begin, end] : ranges_) {
    require(begin <= end, "OwnerFirstChunkQueue: malformed range");
    num_tasks_ += end - begin;
  }
}

std::shared_ptr<OwnerFirstChunkQueue> OwnerFirstChunkQueue::create(
    Context& ctx, std::vector<std::pair<std::size_t, std::size_t>> ranges,
    std::size_t chunk_size, bool vtime_ordered) {
  require(ranges.size() == static_cast<std::size_t>(ctx.nprocs()),
          "OwnerFirstChunkQueue: need one range per rank");
  auto cursors = GlobalArray<std::int64_t>::create(ctx, ranges.size());
  // Each rank initializes its own cursor to its range start.
  cursors.put_value(
      ctx, static_cast<std::size_t>(ctx.rank()),
      static_cast<std::int64_t>(ranges[static_cast<std::size_t>(ctx.rank())].first));
  auto queue = ctx.collective_create<OwnerFirstChunkQueue>([&]() {
    auto q = std::make_shared<OwnerFirstChunkQueue>(cursors, ranges, chunk_size);
    if (vtime_ordered) q->enable_vtime_order(ctx.nprocs());
    return q;
  });
  ctx.barrier();  // cursors visible before anyone claims
  return queue;
}

std::optional<TaskChunk> OwnerFirstChunkQueue::claim_from(Context& ctx, int owner) {
  const auto& [begin, end] = ranges_[static_cast<std::size_t>(owner)];
  (void)begin;
  const auto claimed = static_cast<std::size_t>(cursors_.fetch_add(
      ctx, static_cast<std::size_t>(owner), static_cast<std::int64_t>(chunk_size_)));
  if (claimed >= end) return std::nullopt;
  return TaskChunk{claimed, std::min(end, claimed + chunk_size_)};
}

std::optional<TaskChunk> OwnerFirstChunkQueue::claim(Context& ctx) {
  // Own loads first...
  if (auto chunk = claim_from(ctx, ctx.rank())) return chunk;
  // ...then help peers, cycling from the next rank upward.
  for (int step = 1; step < ctx.nprocs(); ++step) {
    const int victim = (ctx.rank() + step) % ctx.nprocs();
    if (auto chunk = claim_from(ctx, victim)) return chunk;
  }
  return std::nullopt;
}

// ---- factory ---------------------------------------------------------------

std::shared_ptr<TaskQueue> make_task_queue(
    Context& ctx, Scheduling scheduling, std::size_t num_tasks, std::size_t chunk_size,
    const std::vector<std::pair<std::size_t, std::size_t>>& ranges, bool vtime_ordered) {
  switch (scheduling) {
    case Scheduling::kStatic:
      return StaticPartitionQueue::create(ctx, num_tasks, vtime_ordered);
    case Scheduling::kOwnerFirst: {
      auto owned = ranges;
      if (owned.empty()) {
        // Fall back to equal contiguous shares.
        const auto nprocs = static_cast<std::size_t>(ctx.nprocs());
        const std::size_t per_rank = (num_tasks + nprocs - 1) / nprocs;
        for (std::size_t r = 0; r < nprocs; ++r) {
          const std::size_t begin = std::min(num_tasks, r * per_rank);
          owned.emplace_back(begin, std::min(num_tasks, begin + per_rank));
        }
      }
      return OwnerFirstChunkQueue::create(ctx, std::move(owned), chunk_size, vtime_ordered);
    }
    case Scheduling::kAtomicCounter:
      return AtomicCounterQueue::create(ctx, num_tasks, chunk_size, vtime_ordered);
    case Scheduling::kMasterWorker:
      return MasterWorkerQueue::create(ctx, num_tasks, chunk_size, vtime_ordered);
  }
  throw InvalidArgument("make_task_queue: unknown scheduling strategy");
}

const char* scheduling_name(Scheduling s) {
  switch (s) {
    case Scheduling::kStatic: return "static";
    case Scheduling::kOwnerFirst: return "owner-first";
    case Scheduling::kAtomicCounter: return "atomic-counter";
    case Scheduling::kMasterWorker: return "master-worker";
  }
  return "?";
}

}  // namespace sva::ga
