#include "sva/ga/task_queue.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstring>
#include <thread>

namespace sva::ga {

namespace {

// Little-endian scalar codec for the windowed (socket) request payloads.
void wire_put_u64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t wire_get_u64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

void wire_put_f64(std::uint8_t* out, double v) { std::memcpy(out, &v, sizeof v); }

double wire_get_f64(const std::uint8_t* in) {
  double v;
  std::memcpy(&v, in, sizeof v);
  return v;
}

// ClaimGate window ops.
constexpr std::uint8_t kGateSet = 1;   // {op, u64 rank, u8 state, f64 vtime}
constexpr std::uint8_t kGateSnap = 2;  // {op} -> nprocs * {u8 state, f64 vtime}

}  // namespace

// ---- ClaimGate -------------------------------------------------------------

std::shared_ptr<ClaimGate> ClaimGate::create(Context& ctx) {
  Transport& tp = ctx.world().transport();
  if (!tp.shared_regions()) {
    return std::shared_ptr<ClaimGate>(new ClaimGate(tp, ctx.rank(), ctx.nprocs()));
  }
  const auto np = static_cast<std::size_t>(ctx.nprocs());
  // Layout: [generation word, padded to a line][Cell × nprocs].
  const std::size_t bytes = detail::kCacheLine + np * sizeof(Cell);
  auto region = ctx.create_shared_region(bytes);
  return std::shared_ptr<ClaimGate>(
      new ClaimGate(std::move(region), ctx.lock_env(), ctx.nprocs()));
}

ClaimGate::ClaimGate(std::shared_ptr<void> region, detail::LockEnv env, int nprocs)
    : region_(std::move(region)), env_(env), nprocs_(nprocs) {
  auto* base = static_cast<std::uint8_t*>(region_.get());
  generation_ = reinterpret_cast<std::uint32_t*>(base);
  cells_ = reinterpret_cast<Cell*>(base + detail::kCacheLine);
}

ClaimGate::ClaimGate(Transport& transport, int rank, int nprocs)
    : nprocs_(nprocs), transport_(&transport), my_rank_(rank) {
  host_cells_.assign(static_cast<std::size_t>(nprocs), {kUnseen, 0.0});
  // Registered on every rank in the same collective order, so the window
  // id is world-uniform; only rank 0's cell table is ever addressed.
  window_ = transport_->onesided_register(
      [this](const std::uint8_t* req, std::size_t len,
             std::vector<std::uint8_t>& reply) {
        require_format(len >= 1, "ClaimGate window: empty request");
        std::lock_guard<std::mutex> lock(host_mu_);
        if (req[0] == kGateSet) {
          require_format(len == 18, "ClaimGate window: malformed set request");
          const std::size_t r = wire_get_u64(req + 1);
          require(r < host_cells_.size(), "ClaimGate window: rank out of range");
          host_cells_[r] = {req[9], wire_get_f64(req + 10)};
          return;
        }
        require_format(req[0] == kGateSnap && len == 1,
                       "ClaimGate window: unknown request");
        reply.resize(host_cells_.size() * 9);
        for (std::size_t r = 0; r < host_cells_.size(); ++r) {
          reply[r * 9] = static_cast<std::uint8_t>(host_cells_[r].first);
          wire_put_f64(reply.data() + r * 9 + 1, host_cells_[r].second);
        }
      });
}

ClaimGate::~ClaimGate() {
  if (transport_ != nullptr) transport_->onesided_unregister(window_);
}

void ClaimGate::windowed_set(std::uint32_t state, double vtime) {
  std::uint8_t req[18];
  req[0] = kGateSet;
  wire_put_u64(req + 1, static_cast<std::uint64_t>(my_rank_));
  req[9] = static_cast<std::uint8_t>(state);
  wire_put_f64(req + 10, vtime);
  std::vector<std::uint8_t> reply;
  transport_->onesided_call(0, window_, req, sizeof req, reply);
}

bool ClaimGate::may_grant_snapshot(
    const std::vector<std::pair<std::uint32_t, double>>& cells, int rank,
    double my_vtime) {
  for (std::size_t s = 0; s < cells.size(); ++s) {
    if (s == static_cast<std::size_t>(rank)) continue;
    switch (cells[s].first) {
      case kUnseen:
        return false;
      case kWaiting:
      case kProcessing: {
        const double v = cells[s].second;
        if (v < my_vtime || (v == my_vtime && s < static_cast<std::size_t>(rank))) {
          return false;
        }
        break;
      }
      case kDone:
      default:
        break;
    }
  }
  return true;
}

void ClaimGate::bump_generation() {
  std::atomic_ref<std::uint32_t>(*generation_).fetch_add(1, std::memory_order_release);
  detail::futex_wake_all_u32(generation_, env_.process_shared);
}

bool ClaimGate::may_grant(int rank) const {
  const auto r = static_cast<std::size_t>(rank);
  const double my_vtime = std::bit_cast<double>(
      std::atomic_ref<std::uint64_t>(cells_[r].vtime_bits).load(std::memory_order_relaxed));
  for (std::size_t s = 0; s < static_cast<std::size_t>(nprocs_); ++s) {
    if (s == r) continue;
    // Acquire on the state pairs with the release store in enter(): once a
    // peer reads kWaiting/kProcessing, its vtime_bits are visible.
    const std::uint32_t st =
        std::atomic_ref<std::uint32_t>(cells_[s].state).load(std::memory_order_acquire);
    switch (st) {
      case kUnseen:
        // s has not reached the queue yet; its first claim could carry any
        // virtual time, so nobody may overtake it.
        return false;
      case kWaiting:
      case kProcessing: {
        const double v = std::bit_cast<double>(std::atomic_ref<std::uint64_t>(
                                                   cells_[s].vtime_bits)
                                                   .load(std::memory_order_relaxed));
        if (v < my_vtime || (v == my_vtime && s < r)) return false;
        break;
      }
      case kDone:
      default:
        break;
    }
  }
  return true;
}

void ClaimGate::enter(Context& ctx) {
  if (transport_ != nullptr) {
    // Windowed (socket) mode: publish our cell, then poll snapshots until
    // the identical (vtime, rank) grant rule holds.
    if (done_) return;  // post-drain probes skip the gate
    const double now = ctx.vtime();
    windowed_set(kWaiting, now);
    for (;;) {
      std::vector<std::uint8_t> snap;
      const std::uint8_t op = kGateSnap;
      transport_->onesided_call(0, window_, &op, 1, snap);
      require(snap.size() == static_cast<std::size_t>(nprocs_) * 9,
              "ClaimGate: malformed snapshot reply");
      std::vector<std::pair<std::uint32_t, double>> cells(
          static_cast<std::size_t>(nprocs_));
      for (std::size_t s = 0; s < cells.size(); ++s) {
        cells[s] = {snap[s * 9], wire_get_f64(snap.data() + s * 9 + 1)};
      }
      if (may_grant_snapshot(cells, my_rank_, now)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (ctx.world_aborted()) {
        throw ProtocolError("ClaimGate: world aborted while waiting for a claim");
      }
    }
    windowed_set(kProcessing, now);
    return;
  }
  const auto r = static_cast<std::size_t>(ctx.rank());
  Cell& me = cells_[r];
  std::atomic_ref<std::uint32_t> state(me.state);
  if (state.load(std::memory_order_relaxed) == kDone) {
    return;  // post-drain probes skip the gate
  }
  const double now = ctx.vtime();  // samples compute before blocking
  std::atomic_ref<std::uint64_t>(me.vtime_bits)
      .store(std::bit_cast<std::uint64_t>(now), std::memory_order_relaxed);
  state.store(kWaiting, std::memory_order_release);
  bump_generation();
  for (;;) {
    // Snapshot the generation before scanning, so a peer update between
    // the scan and the park turns the wait into an immediate retry.
    const std::uint32_t gen =
        std::atomic_ref<std::uint32_t>(*generation_).load(std::memory_order_acquire);
    if (may_grant(ctx.rank())) break;
    // The timeout doubles as the abort poll: a peer's exception must not
    // strand us here.
    detail::futex_wait_u32(generation_, gen, env_.process_shared, 20);
    if (ctx.world_aborted()) {
      throw ProtocolError("ClaimGate: world aborted while waiting for a claim");
    }
  }
  // Same (vtime, rank) key while processing, so no generation bump: this
  // transition cannot enable any peer's grant.
  state.store(kProcessing, std::memory_order_release);
}

void ClaimGate::finish(Context& ctx) {
  if (transport_ != nullptr) {
    done_ = true;
    windowed_set(kDone, 0.0);
    return;
  }
  const auto r = static_cast<std::size_t>(ctx.rank());
  std::atomic_ref<std::uint32_t>(cells_[r].state).store(kDone, std::memory_order_release);
  bump_generation();
}

// ---- TaskQueue base ----------------------------------------------------------

std::optional<TaskChunk> TaskQueue::next(Context& ctx) {
  if (!gate_) return claim(ctx);
  gate_->enter(ctx);
  auto chunk = claim(ctx);
  if (!chunk) gate_->finish(ctx);
  return chunk;
}

// ---- AtomicCounterQueue --------------------------------------------------

AtomicCounterQueue::AtomicCounterQueue(GlobalArray<std::int64_t> counter,
                                       std::size_t num_tasks, std::size_t chunk_size)
    : counter_(std::move(counter)), num_tasks_(num_tasks), chunk_size_(chunk_size) {
  require(chunk_size >= 1, "AtomicCounterQueue: chunk_size must be >= 1");
}

std::shared_ptr<AtomicCounterQueue> AtomicCounterQueue::create(Context& ctx,
                                                               std::size_t num_tasks,
                                                               std::size_t chunk_size,
                                                               bool vtime_ordered) {
  // Collective sub-steps run before the factory: under the process
  // backend every rank executes the factory, which therefore must not
  // issue collectives of its own.
  auto counter = GlobalArray<std::int64_t>::create(ctx, 1);
  std::shared_ptr<ClaimGate> gate;
  if (vtime_ordered) gate = ClaimGate::create(ctx);
  return ctx.collective_create<AtomicCounterQueue>([&]() {
    auto q = std::make_shared<AtomicCounterQueue>(counter, num_tasks, chunk_size);
    if (gate) q->enable_vtime_order(gate);
    return q;
  });
}

std::optional<TaskChunk> AtomicCounterQueue::claim(Context& ctx) {
  // GA NGA_Read_inc on the shared counter: one atomic RMW per claim.
  const auto begin = static_cast<std::size_t>(
      counter_.fetch_add(ctx, 0, static_cast<std::int64_t>(chunk_size_)));
  if (begin >= num_tasks_) return std::nullopt;
  return TaskChunk{begin, std::min(num_tasks_, begin + chunk_size_)};
}

// ---- MasterWorkerQueue -----------------------------------------------------

MasterWorkerQueue::MasterWorkerQueue(std::size_t num_tasks, std::size_t chunk_size,
                                     std::shared_ptr<void> state_region,
                                     detail::LockEnv env)
    : region_(std::move(state_region)),
      env_(env),
      state_(static_cast<SharedState*>(region_.get())),
      num_tasks_(num_tasks),
      chunk_size_(chunk_size) {
  require(chunk_size >= 1, "MasterWorkerQueue: chunk_size must be >= 1");
}

MasterWorkerQueue::MasterWorkerQueue(std::size_t num_tasks, std::size_t chunk_size,
                                     Transport& transport, double rpc_service)
    : num_tasks_(num_tasks),
      chunk_size_(chunk_size),
      transport_(&transport),
      rpc_service_(rpc_service) {
  require(chunk_size >= 1, "MasterWorkerQueue: chunk_size must be >= 1");
  // The claim request carries only the arrival time; the master replies
  // with {service_end, begin, end} computed under its serial clock —
  // byte-for-byte the arithmetic of the shared-region path.
  window_ = transport_->onesided_register(
      [this](const std::uint8_t* req, std::size_t len,
             std::vector<std::uint8_t>& reply) {
        require_format(len == 8, "MasterWorkerQueue window: malformed request");
        const double request_arrives = wire_get_f64(req);
        std::lock_guard<std::mutex> lock(host_mu_);
        const double service_start = std::max(host_busy_until_, request_arrives);
        const double service_end = service_start + rpc_service_;
        host_busy_until_ = service_end;
        std::uint64_t begin = host_next_task_;
        std::uint64_t end = begin;
        if (begin < num_tasks_) {
          end = std::min<std::uint64_t>(num_tasks_, begin + chunk_size_);
          host_next_task_ = end;
        }
        reply.resize(24);
        wire_put_f64(reply.data(), service_end);
        wire_put_u64(reply.data() + 8, begin);
        wire_put_u64(reply.data() + 16, end);
      });
}

MasterWorkerQueue::~MasterWorkerQueue() {
  if (transport_ != nullptr) transport_->onesided_unregister(window_);
}

std::shared_ptr<MasterWorkerQueue> MasterWorkerQueue::create(Context& ctx,
                                                             std::size_t num_tasks,
                                                             std::size_t chunk_size,
                                                             bool vtime_ordered) {
  Transport& tp = ctx.world().transport();
  if (!tp.shared_regions()) {
    std::shared_ptr<ClaimGate> gate;
    if (vtime_ordered) gate = ClaimGate::create(ctx);
    const double rpc_service = ctx.model().rpc_service;
    return ctx.collective_create<MasterWorkerQueue>([&]() {
      auto q = std::make_shared<MasterWorkerQueue>(num_tasks, chunk_size, tp, rpc_service);
      if (gate) q->enable_vtime_order(gate);
      return q;
    });
  }
  auto region = ctx.create_shared_region(sizeof(SharedState));
  std::shared_ptr<ClaimGate> gate;
  if (vtime_ordered) gate = ClaimGate::create(ctx);
  const detail::LockEnv env = ctx.lock_env();
  return ctx.collective_create<MasterWorkerQueue>([&]() {
    auto q = std::make_shared<MasterWorkerQueue>(num_tasks, chunk_size, region, env);
    if (gate) q->enable_vtime_order(gate);
    return q;
  });
}

std::optional<TaskChunk> MasterWorkerQueue::claim(Context& ctx) {
  const bool is_master = ctx.rank() == 0;
  const double request_latency = is_master ? ctx.model().alpha_local : ctx.model().alpha;

  // The request leaves the worker at its current virtual time and queues
  // at the master, which services requests one at a time.  The reply
  // arrives one message latency after service completes.  This serial
  // `busy_until` clock is precisely the bottleneck of [20].
  const double request_arrives = ctx.vtime() + request_latency;

  if (transport_ != nullptr) {
    std::uint8_t req[8];
    wire_put_f64(req, request_arrives);
    std::vector<std::uint8_t> reply;
    transport_->onesided_call(0, window_, req, sizeof req, reply);
    require(reply.size() == 24, "MasterWorkerQueue: malformed claim reply");
    const double service_end = wire_get_f64(reply.data());
    const auto begin = static_cast<std::size_t>(wire_get_u64(reply.data() + 8));
    const auto end = static_cast<std::size_t>(wire_get_u64(reply.data() + 16));
    ctx.set_vtime(service_end + request_latency);
    if (begin >= num_tasks_) return std::nullopt;
    return TaskChunk{begin, end};
  }

  detail::WorldLock lock(state_->mutex, env_);
  const double service_start = std::max(state_->busy_until, request_arrives);
  const double service_end = service_start + ctx.model().rpc_service;
  state_->busy_until = service_end;
  ctx.set_vtime(service_end + request_latency);

  if (state_->next_task >= num_tasks_) return std::nullopt;
  const auto begin = static_cast<std::size_t>(state_->next_task);
  const std::size_t end = std::min(num_tasks_, begin + chunk_size_);
  state_->next_task = end;
  return TaskChunk{begin, end};
}

// ---- StaticPartitionQueue ---------------------------------------------------

StaticPartitionQueue::StaticPartitionQueue(std::size_t num_tasks, int nprocs)
    : num_tasks_(num_tasks),
      nprocs_(nprocs),
      claimed_(static_cast<std::size_t>(nprocs), 0) {}

std::shared_ptr<StaticPartitionQueue> StaticPartitionQueue::create(Context& ctx,
                                                                   std::size_t num_tasks,
                                                                   bool vtime_ordered) {
  std::shared_ptr<ClaimGate> gate;
  if (vtime_ordered) gate = ClaimGate::create(ctx);
  return ctx.collective_create<StaticPartitionQueue>([&]() {
    auto q = std::make_shared<StaticPartitionQueue>(num_tasks, ctx.nprocs());
    if (gate) q->enable_vtime_order(gate);
    return q;
  });
}

std::optional<TaskChunk> StaticPartitionQueue::claim(Context& ctx) {
  const auto rank = static_cast<std::size_t>(ctx.rank());
  if (claimed_[rank] != 0) return std::nullopt;
  claimed_[rank] = 1;
  const auto nprocs = static_cast<std::size_t>(nprocs_);
  const std::size_t per_rank = (num_tasks_ + nprocs - 1) / nprocs;
  const std::size_t begin = std::min(num_tasks_, rank * per_rank);
  const std::size_t end = std::min(num_tasks_, begin + per_rank);
  if (begin >= end) return std::nullopt;
  return TaskChunk{begin, end};
}

// ---- OwnerFirstChunkQueue ---------------------------------------------------

OwnerFirstChunkQueue::OwnerFirstChunkQueue(
    GlobalArray<std::int64_t> cursors,
    std::vector<std::pair<std::size_t, std::size_t>> ranges, std::size_t chunk_size)
    : cursors_(std::move(cursors)), ranges_(std::move(ranges)), chunk_size_(chunk_size) {
  require(chunk_size >= 1, "OwnerFirstChunkQueue: chunk_size must be >= 1");
  for (const auto& [begin, end] : ranges_) {
    require(begin <= end, "OwnerFirstChunkQueue: malformed range");
    num_tasks_ += end - begin;
  }
}

std::shared_ptr<OwnerFirstChunkQueue> OwnerFirstChunkQueue::create(
    Context& ctx, std::vector<std::pair<std::size_t, std::size_t>> ranges,
    std::size_t chunk_size, bool vtime_ordered) {
  require(ranges.size() == static_cast<std::size_t>(ctx.nprocs()),
          "OwnerFirstChunkQueue: need one range per rank");
  auto cursors = GlobalArray<std::int64_t>::create(ctx, ranges.size());
  // Each rank initializes its own cursor to its range start.
  cursors.put_value(
      ctx, static_cast<std::size_t>(ctx.rank()),
      static_cast<std::int64_t>(ranges[static_cast<std::size_t>(ctx.rank())].first));
  std::shared_ptr<ClaimGate> gate;
  if (vtime_ordered) gate = ClaimGate::create(ctx);
  auto queue = ctx.collective_create<OwnerFirstChunkQueue>([&]() {
    auto q = std::make_shared<OwnerFirstChunkQueue>(cursors, ranges, chunk_size);
    if (gate) q->enable_vtime_order(gate);
    return q;
  });
  ctx.barrier();  // cursors visible before anyone claims
  return queue;
}

std::optional<TaskChunk> OwnerFirstChunkQueue::claim_from(Context& ctx, int owner) {
  const auto& [begin, end] = ranges_[static_cast<std::size_t>(owner)];
  (void)begin;
  const auto claimed = static_cast<std::size_t>(cursors_.fetch_add(
      ctx, static_cast<std::size_t>(owner), static_cast<std::int64_t>(chunk_size_)));
  if (claimed >= end) return std::nullopt;
  return TaskChunk{claimed, std::min(end, claimed + chunk_size_)};
}

std::optional<TaskChunk> OwnerFirstChunkQueue::claim(Context& ctx) {
  // Own loads first...
  if (auto chunk = claim_from(ctx, ctx.rank())) return chunk;
  // ...then help peers, cycling from the next rank upward.
  for (int step = 1; step < ctx.nprocs(); ++step) {
    const int victim = (ctx.rank() + step) % ctx.nprocs();
    if (auto chunk = claim_from(ctx, victim)) return chunk;
  }
  return std::nullopt;
}

// ---- factory ---------------------------------------------------------------

std::shared_ptr<TaskQueue> make_task_queue(
    Context& ctx, Scheduling scheduling, std::size_t num_tasks, std::size_t chunk_size,
    const std::vector<std::pair<std::size_t, std::size_t>>& ranges, bool vtime_ordered) {
  switch (scheduling) {
    case Scheduling::kStatic:
      return StaticPartitionQueue::create(ctx, num_tasks, vtime_ordered);
    case Scheduling::kOwnerFirst: {
      auto owned = ranges;
      if (owned.empty()) {
        // Fall back to equal contiguous shares.
        const auto nprocs = static_cast<std::size_t>(ctx.nprocs());
        const std::size_t per_rank = (num_tasks + nprocs - 1) / nprocs;
        for (std::size_t r = 0; r < nprocs; ++r) {
          const std::size_t begin = std::min(num_tasks, r * per_rank);
          owned.emplace_back(begin, std::min(num_tasks, begin + per_rank));
        }
      }
      return OwnerFirstChunkQueue::create(ctx, std::move(owned), chunk_size, vtime_ordered);
    }
    case Scheduling::kAtomicCounter:
      return AtomicCounterQueue::create(ctx, num_tasks, chunk_size, vtime_ordered);
    case Scheduling::kMasterWorker:
      return MasterWorkerQueue::create(ctx, num_tasks, chunk_size, vtime_ordered);
  }
  throw InvalidArgument("make_task_queue: unknown scheduling strategy");
}

const char* scheduling_name(Scheduling s) {
  switch (s) {
    case Scheduling::kStatic: return "static";
    case Scheduling::kOwnerFirst: return "owner-first";
    case Scheduling::kAtomicCounter: return "atomic-counter";
    case Scheduling::kMasterWorker: return "master-worker";
  }
  return "?";
}

}  // namespace sva::ga
