#include "sva/ga/dist_hashmap.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "sva/util/rng.hpp"

namespace sva::ga {

namespace {

// FNV-1a, stable across platforms, used to pick the owning partition.
std::uint64_t term_hash(std::string_view term) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : term) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return mix64(h);
}

}  // namespace

DistHashmap DistHashmap::create(Context& ctx) {
  auto storage = ctx.collective_create<Storage>([&]() -> std::shared_ptr<Storage> {
    auto s = std::make_shared<Storage>();
    s->nprocs = ctx.nprocs();
    s->partitions = std::vector<Partition>(static_cast<std::size_t>(ctx.nprocs()));
    return s;
  });
  return DistHashmap(std::move(storage));
}

int DistHashmap::owner_of(std::string_view term) const {
  return static_cast<int>(term_hash(term) % static_cast<std::uint64_t>(storage_->nprocs));
}

std::int64_t DistHashmap::insert_or_get(Context& ctx, std::string_view term) {
  if (!ctx.world().transport().shared_address()) {
    throw ProtocolError(
        "DistHashmap::insert_or_get requires a shared address space (thread "
        "backend): under the process and socket backends the map is "
        "replicated per rank and a one-sided insert cannot keep the "
        "replicas coherent; use the collective insert_batch instead");
  }
  const int part = owner_of(term);
  auto& p = storage_->partitions[static_cast<std::size_t>(part)];
  const bool remote = part != ctx.rank();
  ctx.charge(ctx.model().onesided(term.size() + sizeof(std::int64_t), remote) +
             ctx.model().rpc_service);

  std::lock_guard<std::mutex> lock(p.mutex);
  if (auto it = p.ids.find(term); it != p.ids.end()) return encode(it->second, part);
  const auto it =
      p.ids.emplace(std::string(term), static_cast<std::int64_t>(p.insertion_order.size()))
          .first;
  p.insertion_order.push_back(it->first);
  return encode(it->second, part);
}

namespace {

/// Reusable per-rank (per-thread) request grouping for insert_batch: a
/// counting sort by owning partition, so the hot path allocates nothing
/// once the high-water mark is reached.
struct BatchScratch {
  std::vector<int> owner;              // position -> owning partition
  std::vector<std::size_t> begin;      // partition -> first slot in positions
  std::vector<std::size_t> fill;       // partition -> next free slot
  std::vector<std::size_t> positions;  // positions grouped by partition
  std::vector<std::size_t> bytes;      // partition -> request payload bytes
};

}  // namespace

std::int64_t DistHashmap::apply_insert(std::string_view term) {
  const int part = owner_of(term);
  auto& p = storage_->partitions[static_cast<std::size_t>(part)];
  std::lock_guard<std::mutex> lock(p.mutex);
  if (auto it = p.ids.find(term); it != p.ids.end()) return encode(it->second, part);
  const auto it =
      p.ids.emplace(std::string(term), static_cast<std::int64_t>(p.insertion_order.size()))
          .first;
  p.insertion_order.push_back(it->first);
  return encode(it->second, part);
}

std::vector<std::int64_t> DistHashmap::insert_batch_replicated(
    Context& ctx, std::span<const std::string_view> terms) {
  // Every rank serializes its batch (u32 length prefix + bytes per term),
  // the batches are allgathered, and every rank applies every batch in
  // rank order.  Replicas stay identical because application order is
  // deterministic; the requester reads its own IDs while applying its own
  // section.  Charge the same per-partition RPC accounting as the thread
  // path (the allgather charges its own collective cost on top).
  {
    static thread_local std::vector<std::size_t> bytes_per_part;
    static thread_local std::vector<std::size_t> count_per_part;
    const auto nprocs = static_cast<std::size_t>(storage_->nprocs);
    bytes_per_part.assign(nprocs, 0);
    count_per_part.assign(nprocs, 0);
    for (const auto& term : terms) {
      const auto o = static_cast<std::size_t>(owner_of(term));
      bytes_per_part[o] += term.size() + sizeof(std::int64_t);
      ++count_per_part[o];
    }
    double cost = 0.0;
    for (std::size_t part = 0; part < nprocs; ++part) {
      if (count_per_part[part] == 0) continue;
      const bool remote = static_cast<int>(part) != ctx.rank();
      cost += ctx.model().onesided(bytes_per_part[part], remote) +
              ctx.model().rpc_service * static_cast<double>(count_per_part[part]);
    }
    ctx.charge(cost);
  }

  std::vector<char> payload;
  {
    std::size_t total = 0;
    for (const auto& term : terms) total += sizeof(std::uint32_t) + term.size();
    payload.reserve(total);
  }
  for (const auto& term : terms) {
    require(term.size() <= UINT32_MAX, "DistHashmap::insert_batch: term too long");
    const auto len = static_cast<std::uint32_t>(term.size());
    const char* lp = reinterpret_cast<const char*>(&len);
    payload.insert(payload.end(), lp, lp + sizeof(len));
    payload.insert(payload.end(), term.begin(), term.end());
  }

  const std::vector<std::uint64_t> sizes =
      ctx.allgather(static_cast<std::uint64_t>(payload.size()));
  const std::vector<char> all =
      ctx.allgatherv(std::span<const char>(payload.data(), payload.size()));

  std::vector<std::int64_t> out(terms.size(), -1);
  std::size_t cursor = 0;
  for (int r = 0; r < ctx.nprocs(); ++r) {
    const std::size_t end =
        cursor + static_cast<std::size_t>(sizes[static_cast<std::size_t>(r)]);
    require(end <= all.size(), "DistHashmap::insert_batch: corrupt replicated payload");
    std::size_t i = 0;
    while (cursor < end) {
      std::uint32_t len = 0;
      require(cursor + sizeof(len) <= end, "DistHashmap::insert_batch: corrupt length prefix");
      std::memcpy(&len, all.data() + cursor, sizeof(len));
      cursor += sizeof(len);
      require(cursor + len <= end, "DistHashmap::insert_batch: corrupt term payload");
      const std::string_view term(all.data() + cursor, len);
      cursor += len;
      const std::int64_t id = apply_insert(term);
      if (r == ctx.rank()) out[i] = id;
      ++i;
    }
  }
  return out;
}

std::vector<std::int64_t> DistHashmap::insert_batch(Context& ctx,
                                                    std::span<const std::string_view> terms) {
  if (!ctx.world().transport().shared_address()) {
    // Disjoint address spaces (process, socket): replicate via allgather.
    return insert_batch_replicated(ctx, terms);
  }
  // Group requests by partition so each RPC channel — and each partition
  // lock — is used exactly once per call; this is the aggregation ARMCI
  // encourages and what makes insertion scale.
  const auto nprocs = static_cast<std::size_t>(storage_->nprocs);
  static thread_local BatchScratch scratch;
  scratch.owner.resize(terms.size());
  scratch.positions.resize(terms.size());
  scratch.begin.assign(nprocs + 1, 0);
  scratch.bytes.assign(nprocs, 0);
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const int o = owner_of(terms[i]);
    scratch.owner[i] = o;
    ++scratch.begin[static_cast<std::size_t>(o) + 1];
    scratch.bytes[static_cast<std::size_t>(o)] += terms[i].size() + sizeof(std::int64_t);
  }
  for (std::size_t part = 0; part < nprocs; ++part) {
    scratch.begin[part + 1] += scratch.begin[part];
  }
  scratch.fill.assign(scratch.begin.begin(), scratch.begin.end() - 1);
  for (std::size_t i = 0; i < terms.size(); ++i) {
    scratch.positions[scratch.fill[static_cast<std::size_t>(scratch.owner[i])]++] = i;
  }

  std::vector<std::int64_t> out(terms.size(), -1);
  for (std::size_t part = 0; part < nprocs; ++part) {
    const std::size_t first = scratch.begin[part];
    const std::size_t last = scratch.begin[part + 1];
    if (first == last) continue;
    auto& p = storage_->partitions[part];
    const bool remote = static_cast<int>(part) != ctx.rank();

    ctx.charge(ctx.model().onesided(scratch.bytes[part], remote) +
               ctx.model().rpc_service * static_cast<double>(last - first));

    std::lock_guard<std::mutex> lock(p.mutex);
    for (std::size_t slot = first; slot < last; ++slot) {
      const std::size_t i = scratch.positions[slot];
      if (auto it = p.ids.find(terms[i]); it != p.ids.end()) {
        out[i] = encode(it->second, static_cast<int>(part));
        continue;
      }
      const auto it = p.ids
                          .emplace(std::string(terms[i]),
                                   static_cast<std::int64_t>(p.insertion_order.size()))
                          .first;
      p.insertion_order.push_back(it->first);
      out[i] = encode(it->second, static_cast<int>(part));
    }
  }
  return out;
}

std::vector<std::int64_t> DistHashmap::insert_batch(Context& ctx,
                                                    const std::vector<std::string>& terms) {
  std::vector<std::string_view> views(terms.begin(), terms.end());
  return insert_batch(ctx, std::span<const std::string_view>(views));
}

std::optional<std::int64_t> DistHashmap::find(Context& ctx, std::string_view term) const {
  const int part = owner_of(term);
  auto& p = storage_->partitions[static_cast<std::size_t>(part)];
  ctx.charge(ctx.model().onesided(term.size() + sizeof(std::int64_t), part != ctx.rank()) +
             ctx.model().rpc_service);
  std::lock_guard<std::mutex> lock(p.mutex);
  auto it = p.ids.find(term);
  if (it == p.ids.end()) return std::nullopt;
  return encode(it->second, part);
}

std::size_t DistHashmap::size_estimate() const {
  std::size_t total = 0;
  for (auto& p : storage_->partitions) {
    std::lock_guard<std::mutex> lock(p.mutex);
    total += p.insertion_order.size();
  }
  return total;
}

DistHashmap::Finalized DistHashmap::finalize(Context& ctx) {
  // Charge a gather of every partition's contents to rank 0 plus a
  // broadcast of the canonical vocabulary; the heavy lifting (sort, map
  // construction) happens once and is shared, so we account its compute
  // on rank 0's clock via the collective_create factory running there.
  std::size_t local_bytes = 0;
  {
    auto& p = storage_->partitions[static_cast<std::size_t>(ctx.rank())];
    std::lock_guard<std::mutex> lock(p.mutex);
    for (const auto& term : p.insertion_order) {
      local_bytes += term.size() + sizeof(std::int64_t);
    }
  }
  ctx.charge(ctx.model().reduce(ctx.nprocs(), std::max<std::size_t>(local_bytes, 1)) +
             ctx.model().broadcast(ctx.nprocs(), std::max<std::size_t>(local_bytes, 1)));

  struct Built {
    std::shared_ptr<Vocabulary> vocab;
    std::vector<std::int64_t> remap;
  };
  auto built = ctx.collective_create<Built>([&]() -> std::shared_ptr<Built> {
    auto b = std::make_shared<Built>();
    b->vocab = std::make_shared<Vocabulary>();

    // Collect (term, provisional id) from all partitions.
    std::vector<std::pair<std::string, std::int64_t>> entries;
    std::int64_t max_provisional = -1;
    for (std::size_t part = 0; part < storage_->partitions.size(); ++part) {
      auto& p = storage_->partitions[part];
      std::lock_guard<std::mutex> lock(p.mutex);
      for (std::size_t i = 0; i < p.insertion_order.size(); ++i) {
        const std::int64_t provisional = encode(static_cast<std::int64_t>(i),
                                                static_cast<int>(part));
        entries.emplace_back(p.insertion_order[i], provisional);
        max_provisional = std::max(max_provisional, provisional);
      }
    }

    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b2) { return a.first < b2.first; });

    b->remap.assign(static_cast<std::size_t>(max_provisional + 1), -1);
    b->vocab->terms.reserve(entries.size());
    b->vocab->term_to_id.reserve(entries.size());
    for (std::size_t canonical = 0; canonical < entries.size(); ++canonical) {
      b->vocab->terms.push_back(entries[canonical].first);
      b->vocab->term_to_id.emplace(entries[canonical].first,
                                   static_cast<std::int64_t>(canonical));
      b->remap[static_cast<std::size_t>(entries[canonical].second)] =
          static_cast<std::int64_t>(canonical);
    }
    return b;
  });

  Finalized out;
  out.vocabulary = built->vocab;
  out.remap = built->remap;  // copy: each rank owns its remap table
  return out;
}

}  // namespace sva::ga
