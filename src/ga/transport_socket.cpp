// Socket backend: ranks are processes connected over TCP — loopback for
// single-node worlds, different hosts when launchers share a rendezvous
// address.  The staged-exchange protocol of the shared-memory backends is
// re-expressed as framed send/recv (see sva/util/wire.hpp):
//
//   * Rendezvous/rank assignment — every rank binds an ephemeral data
//     listener, dials the rendezvous address, and sends a HELLO claiming
//     its rank; rank 0 (which owns the rendezvous listener) validates the
//     claims and answers each member with the WELCOME peer table
//     (host:port per rank).  The mesh then forms deterministically: rank i
//     connects to every j < i and accepts from every j > i.
//   * Collectives — publish() stages the contribution locally; sync/fence
//     send one framed message per peer carrying {vtime, parity, payload}
//     and wait until every peer's frame for the same sequence number has
//     arrived.  Received payloads are deposited as that parity's PeerSlot
//     (the two-data-round slot lifetime survives because a peer can run at
//     most one round ahead: completing round N+1 needs our round-N+1 frame,
//     which we only send after finishing round N).  The last-arriver
//     callback runs on *every* rank over the replicated slots — existing
//     callbacks only fold transport-local state, so results are identical.
//   * Partitioned allreduce — Context switches to reduce-scatter +
//     allgather on the wire (publish_to ships each peer only its element
//     block; a second framed round allgathers the folded blocks).
//   * Collective objects — no shared regions exist, so GlobalArray and the
//     task queues route through the one-sided window protocol: a request
//     frame to the owning rank is serviced by that rank's I/O thread
//     against rank-local state and answered with a reply frame.
//
// Concurrency: per rank, ONE I/O thread owns every socket.  It polls all
// peers (plus a self-pipe for wakeups), parses inbound frames, services
// one-sided requests, and drains per-peer outbound queues with
// non-blocking writes — the rank thread only ever enqueues frames and
// waits on condition variables, so no send/recv cycle can deadlock.
//
// Failure semantics: any rank's exception is recorded first-wins, the
// abort flag trips, and a best-effort ABORT frame carries the diagnostic
// to every peer (waiters poll the flag and throw).  Death is detected two
// ways: EOF/reset on a peer socket ("rank N died (connection closed)")
// and heartbeat silence ("rank N heartbeat lost") — both feed the same
// post_error machinery the serve supervisor already consumes.  Local
// children are additionally reaped like the process backend, so a
// SIGKILLed local rank reports its signal.
#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <thread>
#include <unordered_map>

#include "sva/fault/fault.hpp"
#include "sva/util/error.hpp"
#include "sva/util/net.hpp"
#include "sva/util/timer.hpp"
#include "sva/util/wire.hpp"
#include "transport_impl.hpp"

#if defined(__linux__)
#include <fcntl.h>
#include <poll.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>

namespace sva::ga::detail {

namespace {

// Frame types on a rank-to-rank (or rendezvous) connection.
enum : std::uint8_t {
  kHello = 1,      // rank -> rendezvous: {proto, world_size, data_port}
  kWelcome = 2,    // rendezvous -> rank: peer table
  kPeerHello = 3,  // mesh: connecting rank identifies itself
  kSync = 4,       // arrival round with clock (+ optional payload)
  kFence = 5,      // arrival-only departure fence
  kFinal = 6,      // post-fn exchange of final virtual clocks
  kAbort = 7,      // world failure broadcast (payload = diagnostic text)
  kHeartbeat = 8,  // liveness
  kReq = 9,        // one-sided window request {window, body}
  kReply = 10,     // one-sided window reply (kFlagError => payload = text)
};

constexpr std::uint8_t kFlagError = 1;
constexpr std::uint64_t kProtoVersion = 1;

// kSync/kFence payload prefix: f64 vtime, u8 parity, u8 has_payload.
constexpr std::size_t kRoundPrefix = 10;

void put_u64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t get_u64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

void put_f64(std::uint8_t* out, double v) { std::memcpy(out, &v, sizeof v); }

double get_f64(const std::uint8_t* in) {
  double v;
  std::memcpy(&v, in, sizeof v);
  return v;
}

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string errno_text(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

/// TCP mesh transport.  Constructed *unconnected* pre-fork (node 0 binds
/// the rendezvous listener so forked ranks inherit a live backlog); each
/// rank process then calls connect_as(rank) to perform the rendezvous and
/// build its mesh.  All state is rank-process-local.
class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(const SpmdOptions& options)
      : Transport(options.nprocs), options_(options) {
    require(options_.socket_nodes >= 1,
            "socket backend: socket_nodes must be >= 1");
    require(options_.socket_node >= 0 &&
                options_.socket_node < options_.socket_nodes,
            "socket backend: socket_node out of range [0, socket_nodes)");
    require(options_.nprocs >= options_.socket_nodes,
            "socket backend: nprocs must be >= socket_nodes");
    require(options_.socket_nodes == 1 || !options_.socket_rendezvous.empty(),
            "socket backend: multi-node worlds need an explicit "
            "rendezvous host:port");
    const auto np = static_cast<std::size_t>(nprocs_);
    for (auto& s : slots_) s.assign(np, PeerSlot{});
    for (auto& s : recv_store_) s.resize(np);
    round_vtimes_.resize(np);
    final_vtimes_.assign(np, 0.0);
    final_seen_.assign(np, 0);
    fds_.assign(np, -1);
    rbuf_.resize(np);
    rbuf_off_.assign(np, 0);
    out_q_.resize(np);
    out_off_.assign(np, 0);
    if (nprocs_ > 1) {
      if (options_.socket_node == 0) {
        if (options_.socket_rendezvous.empty()) {
          rdv_fd_ = net::listen_tcp("127.0.0.1", 0);
          rdv_host_ = "127.0.0.1";
          rdv_port_ = net::local_port(rdv_fd_);
        } else {
          const auto hp =
              net::parse_hostport(options_.socket_rendezvous, true);
          rdv_fd_ = net::listen_tcp(hp.host, hp.port);
          rdv_port_ = hp.port != 0 ? hp.port : net::local_port(rdv_fd_);
          rdv_host_ = (hp.host == "0.0.0.0" || hp.host == "*")
                          ? std::string("127.0.0.1")
                          : hp.host;
        }
      } else {
        const auto hp = net::parse_hostport(options_.socket_rendezvous);
        rdv_host_ = hp.host;
        rdv_port_ = hp.port;
      }
    }
  }

  ~SocketTransport() override {
    disconnect();
    net::close_fd(rdv_fd_);
  }

  [[nodiscard]] const SpmdOptions& options() const { return options_; }

  // ---- Transport seam --------------------------------------------------

  [[nodiscard]] Backend backend() const override { return Backend::kSocket; }
  [[nodiscard]] bool shared_regions() const override { return false; }
  [[nodiscard]] bool shared_combine() const override { return false; }

  void publish(std::uint32_t parity, int rank, const void* data,
               std::size_t bytes, bool /*copy*/) override {
    check_frame_size(bytes);
    const std::uint32_t p = parity & 1u;
    auto& st = out_stage_[p];
    st.resize(bytes);
    if (bytes > 0) std::memcpy(st.data(), data, bytes);
    slots_[p][static_cast<std::size_t>(rank)] = PeerSlot{st.data(), bytes, true};
    pending_ = Pending::kBroadcast;
    pending_parity_ = p;
  }

  void publish_to(std::uint32_t parity, int rank, int dst, const void* data,
                  std::size_t bytes) override {
    check_frame_size(bytes);
    const std::uint32_t p = parity & 1u;
    if (dst == rank) {
      auto& st = self_slice_[p];
      st.resize(bytes);
      if (bytes > 0) std::memcpy(st.data(), data, bytes);
      slots_[p][static_cast<std::size_t>(rank)] =
          PeerSlot{st.data(), bytes, true};
    } else {
      auto& st = out_slices_[static_cast<std::size_t>(dst)];
      st.resize(bytes);
      if (bytes > 0) std::memcpy(st.data(), data, bytes);
    }
    pending_ = Pending::kSliced;
    pending_parity_ = p;
  }

  [[nodiscard]] const PeerSlot* peers(std::uint32_t parity) const override {
    return slots_[parity & 1u].data();
  }

  double sync(int rank, double vtime, RoundFn on_last, void* arg) override {
    const double mx = round_trip(kSync, rank, vtime);
    if (on_last != nullptr) on_last(arg);  // every rank; slots are replicated
    throw_if_aborted();
    return mx;
  }

  void fence(int rank) override {
    round_trip(kFence, rank, 0.0);
    throw_if_aborted();
  }

  void ensure_reduce_capacity(std::size_t bytes) override {
    if (reduce_buf_.size() < bytes) reduce_buf_.resize(bytes);
  }
  [[nodiscard]] void* reduce_base() override { return reduce_buf_.data(); }

  bool post_error(const char* what) override {
    bool first = false;
    {
      std::lock_guard<std::mutex> g(error_mutex_);
      if (!error_posted_) {
        error_posted_ = true;
        error_text_ = what;
        first = true;
      }
    }
    // Text is recorded before the flag trips, so a rank that observes the
    // abort always finds the *first* diagnostic, never its own secondary
    // "aborted by a peer" message.
    aborted_.store(1, std::memory_order_release);
    cv_.notify_all();
    if (first && connected_ && !shutting_down_.load(std::memory_order_acquire)) {
      std::vector<std::uint8_t> text;
      {
        std::lock_guard<std::mutex> g(error_mutex_);
        text.assign(error_text_.begin(), error_text_.end());
      }
      for (int q = 0; q < nprocs_; ++q) {
        if (q == my_rank_) continue;
        enqueue_frame(q, wire::make_frame(kAbort, 0,
                                          static_cast<std::uint16_t>(my_rank_),
                                          0, text));
      }
      wake_io();
    }
    return first;
  }

  [[nodiscard]] bool aborted() const override {
    return aborted_.load(std::memory_order_acquire) != 0;
  }

  [[nodiscard]] std::string error_text() const override {
    std::lock_guard<std::mutex> g(error_mutex_);
    return error_posted_ ? error_text_ : std::string("unknown failure");
  }

  [[nodiscard]] const std::atomic<std::uint32_t>* abort_word() const override {
    return &aborted_;
  }

  std::shared_ptr<void> create_region(int /*rank*/, std::size_t /*bytes*/) override {
    throw ProtocolError(
        "SocketTransport has no shared memory: collective objects must use "
        "the one-sided window protocol (GlobalArray and the task queues do "
        "this automatically)");
  }

  std::uint64_t onesided_register(OneSidedHandler handler) override {
    std::lock_guard<std::mutex> g(windows_mu_);
    const std::uint64_t id = next_window_++;
    if (handler) windows_[id] = std::move(handler);
    return id;
  }

  void onesided_unregister(std::uint64_t window) override {
    // Blocks until no handler is mid-run (the I/O thread services requests
    // while holding windows_mu_), so destroying a collective object cannot
    // free state under a live handler.
    std::lock_guard<std::mutex> g(windows_mu_);
    windows_.erase(window);
  }

  void onesided_call(int owner, std::uint64_t window, const void* req,
                     std::size_t len, std::vector<std::uint8_t>& reply) override {
    if (owner == my_rank_ || nprocs_ == 1) {
      OneSidedHandler handler;
      {
        std::lock_guard<std::mutex> g(windows_mu_);
        const auto it = windows_.find(window);
        require(it != windows_.end(),
                "onesided_call: unregistered local window");
        handler = it->second;
      }
      handler(static_cast<const std::uint8_t*>(req), len, reply);
      return;
    }
    check_frame_size(len + 8);
    const std::uint64_t id = ++req_seq_;
    std::vector<std::uint8_t> payload(8 + len);
    put_u64(payload.data(), window);
    if (len > 0) std::memcpy(payload.data() + 8, req, len);
    enqueue_frame(owner, wire::make_frame(kReq, 0,
                                          static_cast<std::uint16_t>(my_rank_),
                                          id, payload));
    wake_io();
    std::unique_lock<std::mutex> lk(mu_);
    while (replies_.find(id) == replies_.end()) {
      throw_if_aborted();
      cv_.wait_for(lk, std::chrono::milliseconds(50));
    }
    Reply r = std::move(replies_[id]);
    replies_.erase(id);
    lk.unlock();
    if (r.error) {
      throw ProtocolError("one-sided request to rank " + std::to_string(owner) +
                          " failed: " +
                          std::string(r.bytes.begin(), r.bytes.end()));
    }
    reply = std::move(r.bytes);
  }

  // ---- runner hooks ----------------------------------------------------

  /// Performs the rendezvous handshake and builds the peer mesh for
  /// `rank`, then starts the I/O thread.  Called once per rank process.
  void connect_as(int rank) {
    my_rank_ = rank;
    if (nprocs_ == 1) {
      connected_ = true;
      return;
    }
    fault::point(fault::sites::kSocketConnect);
    const int tmo = options_.socket_connect_timeout_ms;
    if (rank != 0 && rdv_fd_ >= 0) {
      // The inherited rendezvous listener belongs to rank 0.
      net::close_fd(rdv_fd_);
      rdv_fd_ = -1;
    }
    const int lfd = net::listen_tcp("0.0.0.0", 0);
    const std::uint16_t data_port = net::local_port(lfd);

    // HELLO: claim our rank and advertise the data listener.  The
    // rendezvous listener was bound (and listening) before the fork, so
    // connections queue in its backlog even before rank 0 starts
    // accepting — no startup race.
    const int rfd = net::connect_tcp(rdv_host_, rdv_port_, tmo);
    std::array<std::uint8_t, 24> hello{};
    put_u64(hello.data(), kProtoVersion);
    put_u64(hello.data() + 8, static_cast<std::uint64_t>(nprocs_));
    put_u64(hello.data() + 16, data_port);
    send_frame_blocking(rfd, wire::make_frame(
                                 kHello, 0, static_cast<std::uint16_t>(rank),
                                 0, hello));
    if (rank == 0) rendezvous_serve();

    // WELCOME: the peer table.
    auto [wh, wpay] = recv_frame_blocking(rfd, tmo);
    net::close_fd(rfd);
    if (wh.type != kWelcome ||
        wpay.size() < 8 + static_cast<std::size_t>(nprocs_) * 16)
      throw Error("rendezvous: malformed welcome");
    if (get_u64(wpay.data()) != static_cast<std::uint64_t>(nprocs_))
      throw Error("rendezvous: world size mismatch in welcome");
    std::vector<std::string> hosts(static_cast<std::size_t>(nprocs_));
    std::vector<std::uint16_t> ports(static_cast<std::size_t>(nprocs_));
    std::size_t off = 8;
    for (int r = 0; r < nprocs_; ++r) {
      if (off + 16 > wpay.size()) throw Error("rendezvous: truncated welcome");
      const std::uint64_t hlen = get_u64(wpay.data() + off);
      const std::uint64_t port = get_u64(wpay.data() + off + 8);
      off += 16;
      if (off + hlen > wpay.size() || port == 0 || port > 65535)
        throw Error("rendezvous: truncated welcome");
      hosts[static_cast<std::size_t>(r)].assign(
          reinterpret_cast<const char*>(wpay.data() + off),
          static_cast<std::size_t>(hlen));
      ports[static_cast<std::size_t>(r)] = static_cast<std::uint16_t>(port);
      off += hlen;
    }

    // Mesh: connect downward, accept upward.
    for (int j = 0; j < rank; ++j) {
      const int fd = net::connect_tcp(hosts[static_cast<std::size_t>(j)],
                                      ports[static_cast<std::size_t>(j)], tmo);
      send_frame_blocking(
          fd, wire::make_frame(kPeerHello, 0,
                               static_cast<std::uint16_t>(rank), 0, {}));
      fds_[static_cast<std::size_t>(j)] = fd;
    }
    for (int a = rank + 1; a < nprocs_; ++a) {
      const int fd = net::accept_tcp(lfd, tmo, nullptr);
      auto [ph, ppay] = recv_frame_blocking(fd, tmo);
      if (ph.type != kPeerHello || ph.src >= nprocs_ ||
          fds_[ph.src] >= 0 || ph.src == static_cast<std::uint16_t>(rank))
        throw Error("mesh: unexpected peer hello");
      fds_[ph.src] = fd;
    }
    net::close_fd(lfd);
    if (rank == 0 && rdv_fd_ >= 0) {
      net::close_fd(rdv_fd_);
      rdv_fd_ = -1;
    }
    for (int q = 0; q < nprocs_; ++q) {
      if (fds_[static_cast<std::size_t>(q)] >= 0)
        net::set_nonblocking(fds_[static_cast<std::size_t>(q)], true);
    }
    if (::pipe2(wake_pipe_, O_NONBLOCK) != 0)
      throw Error(errno_text("socket transport: pipe2"));
    io_stop_.store(false, std::memory_order_release);
    io_thread_ = std::thread([this] { io_loop(); });
    connected_ = true;
  }

  /// Post-fn teardown: exchanges final virtual clocks (kFinal round),
  /// marks the shutdown so peer EOFs stop counting as death, and runs a
  /// farewell fence so every rank holds every frame before sockets close.
  /// Never throws — an abort mid-teardown just means the world already
  /// failed.  Returns the per-rank final clocks (valid when !aborted()).
  std::vector<double> finish_world(int rank, double final_vtime) {
    std::vector<double> out(static_cast<std::size_t>(nprocs_), final_vtime);
    if (nprocs_ == 1 || !connected_ || aborted()) return out;
    try {
      const std::uint64_t seq = ++seq_;
      std::array<std::uint8_t, 8> v{};
      put_f64(v.data(), final_vtime);
      for (int q = 0; q < nprocs_; ++q) {
        if (q == my_rank_) continue;
        enqueue_frame(q, wire::make_frame(kFinal, 0,
                                          static_cast<std::uint16_t>(my_rank_),
                                          seq, v));
      }
      wake_io();
      {
        std::unique_lock<std::mutex> lk(mu_);
        for (;;) {
          bool all = true;
          for (int q = 0; q < nprocs_; ++q) {
            if (q != my_rank_ && final_seen_[static_cast<std::size_t>(q)] == 0)
              all = false;
          }
          if (all) break;
          throw_if_aborted();
          cv_.wait_for(lk, std::chrono::milliseconds(50));
        }
        for (int q = 0; q < nprocs_; ++q) {
          if (q != my_rank_)
            out[static_cast<std::size_t>(q)] =
                final_vtimes_[static_cast<std::size_t>(q)];
        }
      }
      shutting_down_.store(true, std::memory_order_release);
      fence(rank);
    } catch (...) {
      // World aborted mid-teardown; the caller checks aborted().
    }
    return out;
  }

  /// Stops the I/O thread (after draining pending outbound frames) and
  /// closes every socket.  Safe to call repeatedly.
  void disconnect() {
    shutting_down_.store(true, std::memory_order_release);
    if (io_thread_.joinable()) {
      // Let the farewell frames reach the wire before closing.
      const std::int64_t deadline = now_ms() + 2000;
      while (now_ms() < deadline) {
        std::unique_lock<std::mutex> lk(out_mu_);
        bool empty = true;
        for (const auto& dq : out_q_) empty = empty && dq.empty();
        lk.unlock();
        if (empty) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      io_stop_.store(true, std::memory_order_release);
      wake_io();
      io_thread_.join();
    }
    for (auto& fd : fds_) {
      net::close_fd(fd);
      fd = -1;
    }
    net::close_fd(wake_pipe_[0]);
    net::close_fd(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
    connected_ = false;
  }

 private:
  enum class Pending { kNone, kBroadcast, kSliced };

  struct Reply {
    bool error = false;
    std::vector<std::uint8_t> bytes;
  };

  void check_frame_size(std::size_t bytes) const {
    if (bytes > options_.socket_max_frame_bytes) {
      throw ProtocolError(
          "SocketTransport: contribution of " + std::to_string(bytes) +
          " bytes exceeds the frame limit of " +
          std::to_string(options_.socket_max_frame_bytes) +
          " bytes; raise SpmdOptions::socket_max_frame_bytes");
    }
  }

  void throw_if_aborted() const {
    if (aborted()) throw ProtocolError("SPMD world aborted by a peer rank");
  }

  // One arrival round: frame every peer, wait for every peer's frame of
  // the same sequence number, fold the clock max.  kFence sends vtime 0
  // and ignores the fold.  The staged payload (if any) rides along on
  // kSync frames; kSliced payloads differ per destination.
  double round_trip(std::uint8_t type, int rank, double vtime) {
    fault::point(fault::sites::kSocketSend);
    const Pending pending = pending_;
    const std::uint32_t p = pending_parity_;
    pending_ = Pending::kNone;
    if (nprocs_ == 1) return vtime;
    const std::uint64_t seq = ++seq_;
    std::vector<std::uint8_t> payload;
    for (int q = 0; q < nprocs_; ++q) {
      if (q == my_rank_) continue;
      payload.clear();
      payload.resize(kRoundPrefix);
      put_f64(payload.data(), vtime);
      payload[8] = static_cast<std::uint8_t>(p);
      const std::vector<std::uint8_t>* body = nullptr;
      if (type == kSync && pending == Pending::kBroadcast) {
        body = &out_stage_[p];
      } else if (type == kSync && pending == Pending::kSliced) {
        body = &out_slices_[static_cast<std::size_t>(q)];
      }
      payload[9] = body != nullptr ? 1 : 0;
      if (body != nullptr)
        payload.insert(payload.end(), body->begin(), body->end());
      enqueue_frame(q, wire::make_frame(type, 0,
                                        static_cast<std::uint16_t>(rank), seq,
                                        payload));
    }
    wake_io();
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      bool all = true;
      for (int q = 0; q < nprocs_; ++q) {
        if (q == my_rank_) continue;
        if (round_vtimes_[static_cast<std::size_t>(q)].count(seq) == 0) {
          all = false;
          break;
        }
      }
      if (all) break;
      throw_if_aborted();
      cv_.wait_for(lk, std::chrono::milliseconds(50));
    }
    double mx = vtime;
    for (int q = 0; q < nprocs_; ++q) {
      if (q == my_rank_) continue;
      auto& m = round_vtimes_[static_cast<std::size_t>(q)];
      const auto it = m.find(seq);
      mx = std::max(mx, it->second);
      m.erase(it);
    }
    return mx;
  }

  void enqueue_frame(int dst, std::vector<std::uint8_t> frame) {
    std::lock_guard<std::mutex> g(out_mu_);
    // A closed peer can never drain its queue; dropping the frame keeps
    // disconnect()'s farewell drain from waiting out its full deadline.
    if (fds_[static_cast<std::size_t>(dst)] < 0) return;
    out_q_[static_cast<std::size_t>(dst)].push_back(std::move(frame));
  }

  void wake_io() {
    if (wake_pipe_[1] >= 0) {
      const char b = 1;
      [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &b, 1);
    }
  }

  // ---- handshake helpers (blocking; setup only) ------------------------

  void send_frame_blocking(int fd, const std::vector<std::uint8_t>& frame) {
    net::send_all(fd, frame.data(), frame.size());
  }

  std::pair<wire::FrameHeader, std::vector<std::uint8_t>> recv_frame_blocking(
      int fd, int timeout_ms) {
    std::array<std::uint8_t, wire::kFrameHeaderBytes> hdr{};
    net::recv_all(fd, hdr.data(), hdr.size(), timeout_ms);
    const auto h =
        wire::decode_frame_header({hdr.data(), hdr.size()},
                                  options_.socket_max_frame_bytes);
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(h.len));
    if (h.len > 0) net::recv_all(fd, payload.data(), payload.size(), timeout_ms);
    return {h, std::move(payload)};
  }

  /// Rank 0: accepts one HELLO per rank, validates the claims, and
  /// answers every member with the peer table.  Hosts come from
  /// getpeername at accept time, so single-node worlds advertise
  /// 127.0.0.1 and multi-host worlds advertise each rank's routable
  /// source address with no extra configuration.
  void rendezvous_serve() {
    const int tmo = options_.socket_connect_timeout_ms;
    struct Member {
      int fd = -1;
      std::string host;
      std::uint16_t data_port = 0;
      bool seen = false;
    };
    std::vector<Member> members(static_cast<std::size_t>(nprocs_));
    for (int i = 0; i < nprocs_; ++i) {
      std::string peer_host;
      const int cfd = net::accept_tcp(rdv_fd_, tmo, &peer_host);
      auto [h, pay] = recv_frame_blocking(cfd, tmo);
      if (h.type != kHello || pay.size() != 24 ||
          get_u64(pay.data()) != kProtoVersion)
        throw Error("rendezvous: malformed hello");
      if (get_u64(pay.data() + 8) != static_cast<std::uint64_t>(nprocs_))
        throw Error("rendezvous: world size mismatch (peer claims " +
                    std::to_string(get_u64(pay.data() + 8)) + ", expected " +
                    std::to_string(nprocs_) + ")");
      if (h.src >= nprocs_ || members[h.src].seen)
        throw Error("rendezvous: duplicate or out-of-range rank " +
                    std::to_string(h.src));
      auto& m = members[h.src];
      m.fd = cfd;
      m.host = peer_host;
      m.data_port = static_cast<std::uint16_t>(get_u64(pay.data() + 16));
      m.seen = true;
    }
    std::vector<std::uint8_t> table;
    table.resize(8);
    put_u64(table.data(), static_cast<std::uint64_t>(nprocs_));
    for (const auto& m : members) {
      std::array<std::uint8_t, 16> ent{};
      put_u64(ent.data(), m.host.size());
      put_u64(ent.data() + 8, m.data_port);
      table.insert(table.end(), ent.begin(), ent.end());
      table.insert(table.end(), m.host.begin(), m.host.end());
    }
    for (const auto& m : members) {
      send_frame_blocking(m.fd, wire::make_frame(kWelcome, 0, 0, 0, table));
      net::close_fd(m.fd);
    }
  }

  // ---- I/O thread ------------------------------------------------------

  void io_loop() {
    const int hb_ms = std::max(options_.socket_heartbeat_ms, 1);
    const std::int64_t hb_timeout =
        std::max<std::int64_t>(options_.socket_heartbeat_timeout_ms, 2 * hb_ms);
    std::vector<std::int64_t> last_seen(static_cast<std::size_t>(nprocs_),
                                        now_ms());
    std::int64_t last_beat = now_ms();
    std::vector<pollfd> pfds;
    std::vector<int> pranks;
    std::vector<std::uint8_t> chunk(1 << 16);
    while (!io_stop_.load(std::memory_order_acquire)) {
      pfds.clear();
      pranks.clear();
      pfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
      pranks.push_back(-1);
      {
        std::lock_guard<std::mutex> g(out_mu_);
        for (int q = 0; q < nprocs_; ++q) {
          const auto uq = static_cast<std::size_t>(q);
          if (q == my_rank_ || fds_[uq] < 0) continue;
          short ev = POLLIN;
          if (!out_q_[uq].empty()) ev = static_cast<short>(ev | POLLOUT);
          pfds.push_back(pollfd{fds_[uq], ev, 0});
          pranks.push_back(q);
        }
      }
      ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
             std::min(hb_ms, 100));
      if ((pfds[0].revents & POLLIN) != 0) {
        char buf[256];
        while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
        }
      }
      for (std::size_t i = 1; i < pfds.size(); ++i) {
        const int q = pranks[i];
        if (fds_[static_cast<std::size_t>(q)] < 0) continue;
        if ((pfds[i].revents & POLLOUT) != 0) flush_out(q);
        if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          if (!drain_in(q, chunk, last_seen)) continue;
        }
      }
      // Opportunistic flush for frames enqueued while handling input
      // (one-sided replies); anything left rides the next POLLOUT.
      for (int q = 0; q < nprocs_; ++q) {
        if (q != my_rank_ && fds_[static_cast<std::size_t>(q)] >= 0)
          flush_out(q);
      }
      const std::int64_t now = now_ms();
      if (now - last_beat >= hb_ms) {
        last_beat = now;
        try {
          fault::point(fault::sites::kSocketHeartbeat);
        } catch (const Error& e) {
          post_error(e.what());
        }
        for (int q = 0; q < nprocs_; ++q) {
          if (q != my_rank_ && fds_[static_cast<std::size_t>(q)] >= 0) {
            enqueue_frame(q, wire::make_frame(
                                 kHeartbeat, 0,
                                 static_cast<std::uint16_t>(my_rank_), 0, {}));
          }
        }
      }
      if (!shutting_down_.load(std::memory_order_acquire) && !aborted()) {
        for (int q = 0; q < nprocs_; ++q) {
          const auto uq = static_cast<std::size_t>(q);
          if (q == my_rank_ || fds_[uq] < 0) continue;
          if (now - last_seen[uq] > hb_timeout) {
            post_error(("rank " + std::to_string(q) +
                        " heartbeat lost after " + std::to_string(hb_timeout) +
                        " ms (socket_heartbeat_timeout_ms)")
                           .c_str());
          }
        }
      }
    }
  }

  void flush_out(int q) {
    const auto uq = static_cast<std::size_t>(q);
    bool dead = false;
    std::string why;
    {
      std::lock_guard<std::mutex> g(out_mu_);
      auto& dq = out_q_[uq];
      while (!dq.empty() && fds_[uq] >= 0) {
        const auto& f = dq.front();
        while (out_off_[uq] < f.size()) {
          const ssize_t n =
              ::send(fds_[uq], f.data() + out_off_[uq],
                     f.size() - out_off_[uq], MSG_NOSIGNAL | MSG_DONTWAIT);
          if (n > 0) {
            out_off_[uq] += static_cast<std::size_t>(n);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
          if (n < 0 && errno == EINTR) continue;
          dead = true;
          why = errno_text("send failed");
          break;
        }
        if (dead) break;
        dq.pop_front();
        out_off_[uq] = 0;
      }
    }
    if (dead) peer_down(q, why.c_str());
  }

  /// Non-blocking read of everything available from peer `q`, then frame
  /// parsing.  Returns false when the peer is gone (frames already
  /// buffered are still parsed first, so a farewell racing an EOF never
  /// loses data).
  bool drain_in(int q, std::vector<std::uint8_t>& chunk,
                std::vector<std::int64_t>& last_seen) {
    const auto uq = static_cast<std::size_t>(q);
    bool eof = false;
    std::string why = "connection closed";
    for (;;) {
      const ssize_t n =
          ::recv(fds_[uq], chunk.data(), chunk.size(), MSG_DONTWAIT);
      if (n > 0) {
        rbuf_[uq].insert(rbuf_[uq].end(), chunk.data(), chunk.data() + n);
        last_seen[uq] = now_ms();
        if (static_cast<std::size_t>(n) < chunk.size()) break;
        continue;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      eof = true;
      why = errno_text("connection error");
      break;
    }
    if (!parse_frames(q)) return false;
    if (eof) {
      peer_down(q, why.c_str());
      return false;
    }
    return true;
  }

  bool parse_frames(int q) {
    const auto uq = static_cast<std::size_t>(q);
    auto& buf = rbuf_[uq];
    auto& off = rbuf_off_[uq];
    while (buf.size() - off >= wire::kFrameHeaderBytes) {
      wire::FrameHeader h;
      try {
        fault::point(fault::sites::kSocketRecv);
        h = wire::decode_frame_header({buf.data() + off, buf.size() - off},
                                      options_.socket_max_frame_bytes);
        if (h.src != static_cast<std::uint16_t>(q))
          throw FormatError("frame claims src rank " + std::to_string(h.src));
      } catch (const Error& e) {
        post_error(("rank " + std::to_string(q) + " stream corrupt: " +
                    e.what())
                       .c_str());
        flush_out(q);  // let the kAbort outrun the close (see corrupt())
        close_peer(q);
        return false;
      }
      const std::size_t need =
          wire::kFrameHeaderBytes + static_cast<std::size_t>(h.len);
      if (buf.size() - off < need) break;
      std::vector<std::uint8_t> payload(
          buf.begin() + static_cast<std::ptrdiff_t>(off + wire::kFrameHeaderBytes),
          buf.begin() + static_cast<std::ptrdiff_t>(off + need));
      off += need;
      if (!handle_frame(q, h, std::move(payload))) return false;
      if (fds_[uq] < 0) return false;
    }
    if (off > 0 && (off == buf.size() || off > (1u << 20))) {
      buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(off));
      off = 0;
    }
    return true;
  }

  bool handle_frame(int q, const wire::FrameHeader& h,
                    std::vector<std::uint8_t> payload) {
    const auto uq = static_cast<std::size_t>(q);
    switch (h.type) {
      case kSync:
      case kFence: {
        if (payload.size() < kRoundPrefix) return corrupt(q, "short round frame");
        {
          std::lock_guard<std::mutex> g(mu_);
          const double v = get_f64(payload.data());
          const std::uint32_t p = payload[8] & 1u;
          if (payload[9] != 0) {
            auto& store = recv_store_[p][uq];
            store = std::move(payload);
            slots_[p][uq] = PeerSlot{store.data() + kRoundPrefix,
                                     store.size() - kRoundPrefix, true};
          }
          round_vtimes_[uq][h.seq] = v;
        }
        cv_.notify_all();
        return true;
      }
      case kFinal: {
        if (payload.size() != 8) return corrupt(q, "short final frame");
        {
          std::lock_guard<std::mutex> g(mu_);
          final_vtimes_[uq] = get_f64(payload.data());
          final_seen_[uq] = 1;
        }
        cv_.notify_all();
        return true;
      }
      case kAbort: {
        {
          std::lock_guard<std::mutex> g(error_mutex_);
          if (!error_posted_) {
            error_posted_ = true;
            error_text_ = payload.empty()
                              ? "rank " + std::to_string(q) + " aborted"
                              : std::string(payload.begin(), payload.end());
          }
        }
        aborted_.store(1, std::memory_order_release);
        cv_.notify_all();
        return true;
      }
      case kHeartbeat:
        return true;
      case kReq:
        return handle_req(q, h, payload);
      case kReply: {
        {
          std::lock_guard<std::mutex> g(mu_);
          Reply r;
          r.error = (h.flags & kFlagError) != 0;
          r.bytes = std::move(payload);
          replies_[h.seq] = std::move(r);
        }
        cv_.notify_all();
        return true;
      }
      default:
        return corrupt(q, "unknown frame type");
    }
  }

  bool handle_req(int q, const wire::FrameHeader& h,
                  const std::vector<std::uint8_t>& payload) {
    if (payload.size() < 8) return corrupt(q, "short one-sided request");
    const std::uint64_t window = get_u64(payload.data());
    std::vector<std::uint8_t> rep;
    std::uint8_t flags = 0;
    {
      std::lock_guard<std::mutex> g(windows_mu_);
      const auto it = windows_.find(window);
      if (it == windows_.end()) {
        flags = kFlagError;
        const std::string msg =
            "one-sided request to unregistered window " +
            std::to_string(window) + " (destroyed collective object?)";
        rep.assign(msg.begin(), msg.end());
      } else {
        try {
          it->second(payload.data() + 8, payload.size() - 8, rep);
        } catch (const std::exception& e) {
          flags = kFlagError;
          const std::string msg = e.what();
          rep.assign(msg.begin(), msg.end());
        }
      }
    }
    enqueue_frame(q, wire::make_frame(kReply, flags,
                                      static_cast<std::uint16_t>(my_rank_),
                                      h.seq, rep));
    return true;
  }

  bool corrupt(int q, const char* what) {
    post_error(("rank " + std::to_string(q) + " stream corrupt: " + what)
                   .c_str());
    // Best-effort flush so the kAbort just enqueued for q outruns the
    // close — at P=2 this connection is the only path the diagnostic has.
    flush_out(q);
    close_peer(q);
    return false;
  }

  void close_peer(int q) {
    const auto uq = static_cast<std::size_t>(q);
    {
      std::lock_guard<std::mutex> g(out_mu_);
      net::close_fd(fds_[uq]);
      fds_[uq] = -1;
      out_q_[uq].clear();
      out_off_[uq] = 0;
    }
    cv_.notify_all();
  }

  void peer_down(int q, const char* why) {
    close_peer(q);
    if (shutting_down_.load(std::memory_order_acquire) ||
        io_stop_.load(std::memory_order_acquire) || aborted()) {
      cv_.notify_all();
      return;
    }
    post_error(("rank " + std::to_string(q) + " died (" + why + ")").c_str());
  }

  // ---- state -----------------------------------------------------------

  SpmdOptions options_;

  // Rendezvous (bound pre-fork on node 0 so ranks inherit the backlog).
  int rdv_fd_ = -1;
  std::string rdv_host_;
  std::uint16_t rdv_port_ = 0;

  // Rank-process connection state.
  int my_rank_ = -1;
  bool connected_ = false;
  std::vector<int> fds_;  // per peer; -1 = self or closed
  int wake_pipe_[2] = {-1, -1};
  std::thread io_thread_;
  std::atomic<bool> io_stop_{false};
  std::atomic<bool> shutting_down_{false};

  // Inbound reassembly (I/O thread only).
  std::vector<std::vector<std::uint8_t>> rbuf_;
  std::vector<std::size_t> rbuf_off_;

  // Outbound queues: every write funnels through the I/O thread.
  std::mutex out_mu_;
  std::vector<std::deque<std::vector<std::uint8_t>>> out_q_;
  std::vector<std::size_t> out_off_;

  // Round/reply rendezvous between the rank thread and the I/O thread.
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t seq_ = 0;      // rank thread only
  std::uint64_t req_seq_ = 0;  // rank thread only
  std::vector<std::map<std::uint64_t, double>> round_vtimes_;  // per peer
  std::array<std::vector<std::vector<std::uint8_t>>, 2> recv_store_;
  std::array<std::vector<PeerSlot>, 2> slots_;
  std::vector<double> final_vtimes_;
  std::vector<char> final_seen_;
  std::unordered_map<std::uint64_t, Reply> replies_;

  // Staged outbound payloads (rank thread only).  The broadcast stage and
  // the self slice back this rank's own PeerSlot, so they are parity
  // double-buffered like every other slot store; per-destination slices
  // are consumed by the very next round and need no parity.
  std::array<std::vector<std::uint8_t>, 2> out_stage_;
  std::array<std::vector<std::uint8_t>, 2> self_slice_;
  std::vector<std::vector<std::uint8_t>> out_slices_{
      static_cast<std::size_t>(nprocs_)};
  Pending pending_ = Pending::kNone;
  std::uint32_t pending_parity_ = 0;

  // One-sided windows.
  std::mutex windows_mu_;
  std::uint64_t next_window_ = 1;
  std::unordered_map<std::uint64_t, OneSidedHandler> windows_;

  // Rank-local allreduce combine buffer.
  std::vector<std::uint8_t> reduce_buf_;

  // Failure plane.
  std::atomic<std::uint32_t> aborted_{0};
  mutable std::mutex error_mutex_;
  bool error_posted_ = false;
  std::string error_text_;
};

std::unique_ptr<Transport> make_socket_transport(const SpmdOptions& options) {
  return std::make_unique<SocketTransport>(options);
}

SpmdResult run_socket_world(World& world, const std::function<void(Context&)>& fn) {
  auto& tp = static_cast<SocketTransport&>(world.transport());
  const int nprocs = world.nprocs();
  const int node = tp.options().socket_node;
  const int nodes = tp.options().socket_nodes;
  SpmdResult result;
  result.rank_vtimes.assign(static_cast<std::size_t>(nprocs), 0.0);
  WallTimer wall;

  // This node's contiguous block of ranks (node 0 owns rank 0).
  const int per = nprocs / nodes;
  const int rem = nprocs % nodes;
  const int first = node * per + std::min(node, rem);
  const int last = first + per + (node < rem ? 1 : 0);

  std::fflush(nullptr);
  const pid_t parent_pid = ::getpid();
  std::vector<pid_t> pids;
  std::vector<int> pid_rank;
  pids.reserve(static_cast<std::size_t>(last - first));

  const auto rank_body = [&](int r) {
    tp.connect_as(r);
    Context ctx(world, r);
    fn(ctx);
    ctx.sample_compute();
    return ctx.vtime_raw();
  };

  for (int r = first + 1; r < last; ++r) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::prctl(PR_SET_PDEATHSIG, SIGKILL);
      if (::getppid() != parent_pid) ::_exit(3);  // parent died pre-prctl
      int code = 0;
      try {
        const double v = rank_body(r);
        tp.finish_world(r, v);
        if (tp.aborted()) code = 1;
      } catch (...) {
        tp.post_error(describe_current_exception().c_str());
        code = 1;
      }
      tp.disconnect();
      std::fflush(nullptr);
      ::_exit(code);
    }
    if (pid < 0) {
      tp.post_error(errno_text("spmd_run: fork failed").c_str());
      break;
    }
    pids.push_back(pid);
    pid_rank.push_back(r);
  }

  // Reaper for this node's children: an abnormal death becomes a world
  // abort ("rank N died (killed by signal S)"); remote or already-aborted
  // deaths surface through the transport's EOF/heartbeat detection.
  std::thread reaper([&] {
    std::vector<char> done(pids.size(), 0);
    std::size_t reaped = 0;
    while (reaped < pids.size()) {
      bool progress = false;
      for (std::size_t i = 0; i < pids.size(); ++i) {
        if (done[i] != 0) continue;
        int status = 0;
        const pid_t got = ::waitpid(pids[i], &status, WNOHANG);
        if (got == 0) continue;
        done[i] = 1;
        ++reaped;
        progress = true;
        if (got < 0) continue;
        const int rank = pid_rank[i];
        if (WIFSIGNALED(status)) {
          tp.post_error(("rank " + std::to_string(rank) +
                         " died (killed by signal " +
                         std::to_string(WTERMSIG(status)) + ")")
                            .c_str());
        } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
          // Exit status 1 means the rank failed *after* posting its
          // diagnostic, which travels to us as an abort frame.  Give
          // that frame a moment to land so the specific text is never
          // outraced by this generic death notice.
          if (WEXITSTATUS(status) == 1) {
            const auto give_up =
                std::chrono::steady_clock::now() + std::chrono::seconds(2);
            while (!tp.aborted() && std::chrono::steady_clock::now() < give_up) {
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
            if (tp.aborted()) continue;
          }
          tp.post_error(("rank " + std::to_string(rank) +
                         " died (exit status " +
                         std::to_string(WEXITSTATUS(status)) + ")")
                            .c_str());
        }
      }
      if (!progress) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // The first local rank runs on the calling thread (on node 0 that is
  // rank 0, preserving tool/serve result-capture semantics).
  std::exception_ptr local_error;
  bool local_first = false;
  std::vector<double> finals(static_cast<std::size_t>(nprocs), 0.0);
  try {
    const double v = rank_body(first);
    finals = tp.finish_world(first, v);
  } catch (...) {
    local_error = std::current_exception();
    local_first = tp.post_error(describe_current_exception().c_str());
  }
  tp.disconnect();
  reaper.join();
  result.wall_seconds = wall.elapsed();
  if (tp.aborted()) {
    if (local_first && local_error) std::rethrow_exception(local_error);
    throw ProtocolError("SPMD world failed: " + tp.error_text());
  }
  for (int r = 0; r < nprocs; ++r) {
    result.rank_vtimes[static_cast<std::size_t>(r)] =
        finals[static_cast<std::size_t>(r)];
  }
  result.max_vtime =
      *std::max_element(result.rank_vtimes.begin(), result.rank_vtimes.end());
  return result;
}

}  // namespace sva::ga::detail

#else  // !__linux__

namespace sva::ga::detail {

std::unique_ptr<Transport> make_socket_transport(const SpmdOptions&) {
  throw InvalidArgument(
      "Backend::kSocket (SocketTransport) requires Linux; use Backend::kThread");
}

SpmdResult run_socket_world(World&, const std::function<void(Context&)>&) {
  throw InvalidArgument(
      "Backend::kSocket (SocketTransport) requires Linux; use Backend::kThread");
}

}  // namespace sva::ga::detail

#endif
