// Communication / performance model for the SPMD runtime.
//
// The paper measured wall-clock on a 48-CPU Itanium cluster with an
// Infiniband interconnect.  This reproduction executes the same SPMD
// algorithms with one thread per simulated process, and layers a
// LogGP-style analytic cost model on top of *real measured compute*:
//
//   * compute  — each rank's thread-CPU time (accurate under core
//                oversubscription) scaled by `compute_scale` to map the
//                host's per-core speed onto the paper's 1.5 GHz Itanium2;
//   * comm    — explicit charges per operation, parameterized below.
//
// A stage's modeled duration is the maximum over ranks of per-rank virtual
// time, which is exactly how a barrier-synchronized SPMD program behaves.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace sva::ga {

/// Cost parameters (seconds, seconds/byte).  Defaults approximate a
/// 2007-era Infiniband SDR cluster.
struct CommModel {
  double alpha = 5.0e-6;        ///< point-to-point / one-sided latency
  double beta = 1.25e-9;        ///< per-byte network cost (~800 MB/s)
  double alpha_rmw = 8.0e-6;    ///< remote atomic (fetch-and-increment)
  double beta_local = 2.5e-10;  ///< per-byte local-memory copy (~4 GB/s)
  double alpha_local = 1.0e-7;  ///< local one-sided call overhead
  double rpc_service = 2.0e-6;  ///< per-request service time at an RPC host
  double io_bandwidth = 250.0e6;  ///< scan bandwidth per rank (parallel FS)
  /// Parallel filesystem (the paper's Lustre remark): every rank streams
  /// its slice at io_bandwidth concurrently.  When false, storage is one
  /// shared serial device — ranks contend, and the scan stage stops
  /// scaling no matter how well the compute partitions.
  bool io_parallel = true;
  double compute_scale = 1.0;     ///< multiplier applied to thread-CPU time

  // ---- host execution tuning -------------------------------------------
  // These knobs steer the *host* fast path of the runtime (see
  // runtime.hpp) and never enter a modeled cost.  Exposed so tests can
  // force each path deterministically.
  /// Barrier spin iterations before parking on the epoch futex; -1 picks
  /// a default (0 when ranks oversubscribe the host's cores).
  int host_spin_iters = -1;
  /// Largest broadcast payload staged into World scratch (one-round
  /// broadcast; only the root copies in).  Bigger payloads stay zero-copy
  /// behind a departure fence.
  std::size_t host_copy_max_bytes = std::size_t{64} << 10;
  /// Largest per-rank contribution staged by allgatherv/gatherv.  Every
  /// rank pays its own copy-in here, so the crossover against the saved
  /// departure fence sits much lower than for broadcast.
  std::size_t host_vstage_max_bytes = std::size_t{8} << 10;
  /// Allreduce payloads up to this size are folded by the round's last
  /// arriver (leader combines); larger ones use partitioned combining.
  std::size_t host_leader_max_bytes = 4096;

  [[nodiscard]] int tree_depth(int nprocs) const {
    int depth = 0;
    int span = 1;
    while (span < nprocs) {
      span <<= 1;
      ++depth;
    }
    return depth;
  }

  /// One-sided get/put of `bytes` between `from` and `to` ranks.
  [[nodiscard]] double onesided(std::size_t bytes, bool remote) const {
    return remote ? alpha + beta * static_cast<double>(bytes)
                  : alpha_local + beta_local * static_cast<double>(bytes);
  }

  /// Remote atomic read-modify-write.
  [[nodiscard]] double atomic_rmw(bool remote) const {
    return remote ? alpha_rmw : alpha_local;
  }

  /// Barrier among `nprocs` ranks (dissemination barrier).
  [[nodiscard]] double barrier(int nprocs) const {
    return static_cast<double>(tree_depth(nprocs)) * alpha;
  }

  /// Binomial-tree broadcast of `bytes`.
  [[nodiscard]] double broadcast(int nprocs, std::size_t bytes) const {
    return static_cast<double>(tree_depth(nprocs)) *
           (alpha + beta * static_cast<double>(bytes));
  }

  /// Binomial-tree reduction of `bytes`.
  [[nodiscard]] double reduce(int nprocs, std::size_t bytes) const {
    return broadcast(nprocs, bytes);
  }

  /// Binomial-tree gather of `total_bytes` (summed over every rank's
  /// contribution) to one root: the latency term scales with the tree
  /// depth, the bandwidth term with the full payload funneled into the
  /// root.
  [[nodiscard]] double gather(int nprocs, std::size_t total_bytes) const {
    return static_cast<double>(tree_depth(nprocs)) * alpha +
           beta * static_cast<double>(total_bytes);
  }

  /// Allreduce = reduce + broadcast (the classic implementation the paper's
  /// MPI_Allreduce would use for these message sizes).
  [[nodiscard]] double allreduce(int nprocs, std::size_t bytes) const {
    return 2.0 * reduce(nprocs, bytes);
  }

  /// Ring allgather where every rank contributes ~`chunk_bytes`.
  [[nodiscard]] double allgather(int nprocs, std::size_t chunk_bytes) const {
    return static_cast<double>(nprocs - 1) *
           (alpha + beta * static_cast<double>(chunk_bytes));
  }

  /// Scan-stage I/O charge for reading `bytes` from the (simulated)
  /// parallel filesystem.
  [[nodiscard]] double io_read(std::size_t bytes) const {
    return static_cast<double>(bytes) / io_bandwidth;
  }

  /// Locality-aware scan charge: with a parallel FS each rank pays for
  /// its own slice; with a serial shared disk every rank's read completes
  /// only after the device has streamed the whole corpus.
  [[nodiscard]] double io_read(std::uint64_t local_bytes, std::uint64_t total_bytes) const {
    return io_read(static_cast<std::size_t>(io_parallel ? local_bytes : total_bytes));
  }
};

/// Preset approximating the paper's testbed: dual 1.5 GHz Itanium2 nodes.
/// The compute scale maps a modern core's thread-CPU seconds onto the
/// (slower) 2007 processor so the modeled minutes land in the paper's
/// ballpark; relative shapes are unaffected by this constant.
inline CommModel itanium_cluster_model() {
  CommModel m;
  m.compute_scale = 6.0;
  return m;
}

}  // namespace sva::ga
