// GlobalArray<T>: a block-distributed dense array with one-sided access,
// modeled after the Global Arrays toolkit the paper builds on.
//
// Semantics mirrored from GA:
//   * collective creation/destruction;
//   * one-sided get / put / accumulate on arbitrary element ranges — no
//     cooperation from the owner rank is required;
//   * atomic fetch-and-add (GA's NGA_Read_inc), the primitive behind the
//     paper's dynamic load-balancing task queue;
//   * locality introspection (row_range / local_span) so algorithms can
//     exploit data locality, as §3.1 of the paper emphasizes.
//
// Storage is one contiguous block per rank (block row distribution).  Two
// physical modes sit behind the same API:
//
//   * Shared-region mode (thread and process backends): all blocks live in
//     a single transport-shared region (Context::create_shared_region) — a
//     per-rank WorldMutex lock table followed by the cache-line-aligned
//     block payloads.  One in-process allocation for threads; a POSIX shm
//     segment mapped by every rank for processes.  Physical access goes
//     through the per-block lock.
//   * Windowed mode (socket backend): no shared memory exists, so each
//     rank keeps only its own block and registers a one-sided window with
//     the transport.  Remote get/put/accumulate and the element-list ops
//     become request/reply messages serviced by the owner's I/O thread
//     against that rank-local block (raw T bytes on the wire — multi-host
//     worlds are assumed architecture-homogeneous, like the little-endian
//     frame format itself).  The API stays genuinely one-sided: the owner
//     rank's *compute* thread never cooperates.
//
// Communication costs are charged to the calling rank's virtual clock by
// the same locality-dependent formulas in both modes (see comm_model.hpp),
// so modeled results are backend-independent.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "sva/ga/runtime.hpp"

namespace sva::ga {

template <typename T>
class GlobalArray {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// Empty handle; using it before assignment from create() is undefined.
  /// Exists so aggregate results (e.g. ForwardIndex) can be declared
  /// before their arrays are created collectively.
  GlobalArray() = default;

  /// Collective: creates a rows×cols array block-distributed by rows.
  static GlobalArray create(Context& ctx, std::size_t rows, std::size_t cols = 1) {
    require(cols >= 1, "GlobalArray: cols must be >= 1");
    const int nprocs = ctx.nprocs();
    const auto np = static_cast<std::size_t>(nprocs);
    const std::size_t per_rank = (rows + np - 1) / np;

    // Region layout: the per-rank lock table, then every block payload at
    // cache-line alignment.  Computed identically on every rank.
    std::size_t offset = align_up(np * sizeof(detail::WorldMutex));
    std::vector<std::size_t> data_offset(np);
    std::vector<std::pair<std::size_t, std::size_t>> ranges(np);
    for (std::size_t r = 0; r < np; ++r) {
      const std::size_t begin = std::min(rows, r * per_rank);
      const std::size_t end = std::min(rows, begin + per_rank);
      ranges[r] = {begin, end};
      data_offset[r] = offset;
      offset += align_up((end - begin) * cols * sizeof(T));
    }

    Transport& tp = ctx.world().transport();
    if (!tp.shared_regions()) {
      // Windowed mode: keep only our block and publish it through a
      // one-sided window.  Window ids are lockstep counters, so every
      // rank's id for this (collectively created) array is identical and
      // doubles as the remote address.  Same two charged barriers as the
      // shared-region path, so modeled time stays backend-independent.
      auto s = std::make_shared<Storage>();
      s->rows = rows;
      s->cols = cols;
      s->windowed = true;
      s->transport = &tp;
      s->blocks.resize(np);
      for (std::size_t r = 0; r < np; ++r) {
        Block& b = s->blocks[r];
        b.owner = static_cast<int>(r);
        b.row_begin = ranges[r].first;
        b.row_end = ranges[r].second;
        b.count = (b.row_end - b.row_begin) * cols;
      }
      Block& mine = s->blocks[static_cast<std::size_t>(ctx.rank())];
      s->local_store.assign(mine.count, T{});
      mine.data = s->local_store.data();
      Storage* raw = s.get();  // ~Storage unregisters before members die
      s->window = tp.onesided_register(
          [raw](const std::uint8_t* req, std::size_t len,
                std::vector<std::uint8_t>& reply) { raw->serve(req, len, reply); });
      ctx.barrier();
      ctx.barrier();
      return GlobalArray(std::move(s));
    }

    auto region = ctx.create_shared_region(offset);
    auto s = std::make_shared<Storage>();
    s->rows = rows;
    s->cols = cols;
    s->lock_env = ctx.lock_env();
    s->region = std::move(region);
    auto* base = static_cast<std::uint8_t*>(s->region.get());
    s->blocks.resize(np);
    for (std::size_t r = 0; r < np; ++r) {
      Block& b = s->blocks[r];
      b.owner = static_cast<int>(r);
      b.row_begin = ranges[r].first;
      b.row_end = ranges[r].second;
      b.count = (b.row_end - b.row_begin) * cols;
      b.data = reinterpret_cast<T*>(base + data_offset[r]);
      b.mutex = reinterpret_cast<detail::WorldMutex*>(
          base + static_cast<std::size_t>(r) * sizeof(detail::WorldMutex));
    }
    // Each rank brings its own cells to life (the region is zero-filled,
    // but T{} need not be all-zero-bytes, and the lock wants a formal
    // lifetime); the barriers publish them — two rounds, same modeled
    // cost as the historical collective_create path.
    {
      Block& mine = s->blocks[static_cast<std::size_t>(ctx.rank())];
      new (mine.mutex) detail::WorldMutex();
      std::uninitialized_fill_n(mine.data, mine.count, T{});
    }
    ctx.barrier();
    ctx.barrier();
    return GlobalArray(std::move(s));
  }

  [[nodiscard]] std::size_t rows() const { return storage_->rows; }
  [[nodiscard]] std::size_t cols() const { return storage_->cols; }
  [[nodiscard]] std::size_t size() const { return storage_->rows * storage_->cols; }

  /// Row interval [begin, end) owned by `rank`.
  [[nodiscard]] std::pair<std::size_t, std::size_t> row_range(int rank) const {
    const auto& b = storage_->blocks[static_cast<std::size_t>(rank)];
    return {b.row_begin, b.row_end};
  }

  /// Rank owning flat element `index`.
  [[nodiscard]] int owner_of(std::size_t index) const {
    const std::size_t row = index / storage_->cols;
    // Blocks are equal-sized except possibly the tail, so direct division
    // finds the owner without a search.
    const std::size_t per_rank = storage_->blocks[0].row_end - storage_->blocks[0].row_begin;
    if (per_rank == 0) return 0;
    const auto rank = static_cast<int>(row / per_rank);
    return std::min(rank, static_cast<int>(storage_->blocks.size()) - 1);
  }

  /// Direct (zero-copy, zero-cost) access to the calling rank's block.
  /// The caller must not race with one-sided writes from peers to the same
  /// elements; pipeline phases are barrier-separated so this holds.
  [[nodiscard]] std::span<T> local_span(Context& ctx) {
    auto& b = storage_->blocks[static_cast<std::size_t>(ctx.rank())];
    return {b.data, b.count};
  }

  [[nodiscard]] std::pair<std::size_t, std::size_t> local_row_range(Context& ctx) const {
    return row_range(ctx.rank());
  }

  /// One-sided read of `out.size()` elements starting at flat `offset`.
  void get(Context& ctx, std::size_t offset, std::span<T> out) const {
    traverse(ctx, offset, out.size(), [&](Block& b, std::size_t block_off,
                                          std::size_t count, std::size_t cursor) {
      if (storage_->windowed) {
        if (b.data != nullptr) {
          std::lock_guard<std::mutex> lock(storage_->local_mutex);
          std::copy_n(b.data + block_off, count, out.data() + cursor);
        } else {
          remote_range(b, kOpGet, block_off, count, out.data() + cursor, nullptr);
        }
        return;
      }
      detail::WorldLock lock(*b.mutex, storage_->lock_env);
      std::copy_n(b.data + block_off, count, out.data() + cursor);
    });
  }

  /// One-sided write of `data` starting at flat `offset`.
  void put(Context& ctx, std::size_t offset, std::span<const T> data) {
    traverse(ctx, offset, data.size(), [&](Block& b, std::size_t block_off,
                                           std::size_t count, std::size_t cursor) {
      if (storage_->windowed) {
        if (b.data != nullptr) {
          std::lock_guard<std::mutex> lock(storage_->local_mutex);
          std::copy_n(data.data() + cursor, count, b.data + block_off);
        } else {
          remote_range(b, kOpPut, block_off, count, nullptr, data.data() + cursor);
        }
        return;
      }
      detail::WorldLock lock(*b.mutex, storage_->lock_env);
      std::copy_n(data.data() + cursor, count, b.data + block_off);
    });
  }

  /// One-sided atomic accumulate: element-wise += (GA's NGA_Acc).
  void accumulate(Context& ctx, std::size_t offset, std::span<const T> data) {
    traverse(ctx, offset, data.size(), [&](Block& b, std::size_t block_off,
                                           std::size_t count, std::size_t cursor) {
      if (storage_->windowed) {
        if (b.data != nullptr) {
          std::lock_guard<std::mutex> lock(storage_->local_mutex);
          for (std::size_t i = 0; i < count; ++i) b.data[block_off + i] += data[cursor + i];
        } else {
          remote_range(b, kOpAcc, block_off, count, nullptr, data.data() + cursor);
        }
        return;
      }
      detail::WorldLock lock(*b.mutex, storage_->lock_env);
      for (std::size_t i = 0; i < count; ++i) b.data[block_off + i] += data[cursor + i];
    });
  }

  /// Element-list read (GA's NGA_Gather): out[i] = array[indices[i]].
  /// Communication is aggregated per owner rank — one modeled message per
  /// distinct owner, not one per element — matching how GA/ARMCI batch
  /// element-list operations.
  void gather(Context& ctx, std::span<const std::size_t> indices, std::span<T> out) const {
    require(indices.size() == out.size(), "GlobalArray::gather: size mismatch");
    for_each_owner_batch(ctx, indices, /*rmw=*/false, kOpGather, nullptr, out.data(),
                         [&](Block& b, std::size_t i, std::size_t element) {
                           out[i] = b.data[element];
                         });
  }

  /// Element-list write (GA's NGA_Scatter): array[indices[i]] = values[i].
  /// Duplicate indices within one call are applied in position order.
  void scatter(Context& ctx, std::span<const std::size_t> indices,
               std::span<const T> values) {
    require(indices.size() == values.size(), "GlobalArray::scatter: size mismatch");
    for_each_owner_batch(ctx, indices, /*rmw=*/false, kOpScatter, values.data(), nullptr,
                         [&](Block& b, std::size_t i, std::size_t element) {
                           b.data[element] = values[i];
                         });
  }

  /// Element-list accumulate (GA's NGA_Scatter_acc): array[indices[i]] +=
  /// values[i], atomically with respect to other accesses of the block.
  void scatter_acc(Context& ctx, std::span<const std::size_t> indices,
                   std::span<const T> values) {
    require(indices.size() == values.size(), "GlobalArray::scatter_acc: size mismatch");
    for_each_owner_batch(ctx, indices, /*rmw=*/true, kOpScatterAcc, values.data(), nullptr,
                         [&](Block& b, std::size_t i, std::size_t element) {
                           b.data[element] += values[i];
                         });
  }

  /// Batched atomic fetch-and-add: out[i] = old array[indices[i]], then
  /// array[indices[i]] += deltas[i].  Aggregated like GA element-list ops:
  /// one modeled RMW message per distinct owner.  Duplicate indices observe
  /// each other in position order.
  std::vector<T> fetch_add_batch(Context& ctx, std::span<const std::size_t> indices,
                                 std::span<const T> deltas) {
    require(indices.size() == deltas.size(), "GlobalArray::fetch_add_batch: size mismatch");
    std::vector<T> out(indices.size());
    for_each_owner_batch(ctx, indices, /*rmw=*/true, kOpFetchAdd, deltas.data(), out.data(),
                         [&](Block& b, std::size_t i, std::size_t element) {
                           out[i] = b.data[element];
                           b.data[element] += deltas[i];
                         });
    return out;
  }

  /// Atomic fetch-and-add on one element (GA's NGA_Read_inc).  Returns the
  /// previous value.
  T fetch_add(Context& ctx, std::size_t index, T delta) {
    require(index < size(), "GlobalArray::fetch_add: index out of range");
    const int owner = owner_of(index);
    auto& b = storage_->blocks[static_cast<std::size_t>(owner)];
    const std::size_t block_off = index - b.row_begin * storage_->cols;
    ctx.charge(ctx.model().atomic_rmw(owner != ctx.rank()));
    if (storage_->windowed) {
      if (b.data != nullptr) {
        std::lock_guard<std::mutex> lock(storage_->local_mutex);
        const T prev = b.data[block_off];
        b.data[block_off] = prev + delta;
        return prev;
      }
      T prev{};
      remote_list(b, kOpFetchAdd, std::span<const std::size_t>(&block_off, 1),
                  &delta, &prev);
      return prev;
    }
    detail::WorldLock lock(*b.mutex, storage_->lock_env);
    const T prev = b.data[block_off];
    b.data[block_off] = prev + delta;
    return prev;
  }

  /// Convenience: one-sided read of a single element.
  [[nodiscard]] T get_value(Context& ctx, std::size_t index) const {
    T v{};
    get(ctx, index, std::span<T>(&v, 1));
    return v;
  }

  /// Convenience: one-sided write of a single element.
  void put_value(Context& ctx, std::size_t index, T value) {
    put(ctx, index, std::span<const T>(&value, 1));
  }

  /// Reads the entire array into a local vector (charged as a get of the
  /// remote portion).  Useful for replicating small arrays after a phase.
  [[nodiscard]] std::vector<T> to_vector(Context& ctx) const {
    std::vector<T> out(size());
    if (!out.empty()) get(ctx, 0, std::span<T>(out.data(), out.size()));
    return out;
  }

  /// Collective: zero-fills the array (each rank clears its own block).
  void fill_local(Context& ctx, T value) {
    auto span = local_span(ctx);
    std::fill(span.begin(), span.end(), value);
  }

 private:
  /// Wire op codes of the windowed one-sided protocol.  Range requests are
  /// {op, u64 block_off, u64 count, [count*T]}; list requests are {op,
  /// u64 n, n*u64 block_offs, [n*T]}; counts/offsets little-endian,
  /// element payloads raw T bytes.  Replies carry count*T for kOpGet /
  /// kOpGather / kOpFetchAdd and nothing otherwise.
  enum : std::uint8_t {
    kOpGet = 1,
    kOpPut = 2,
    kOpAcc = 3,
    kOpGather = 4,
    kOpScatter = 5,
    kOpScatterAcc = 6,
    kOpFetchAdd = 7,
  };

  /// Per-rank view of one block.  Shared-region mode: pointers into this
  /// rank's mapping of the region (never shipped across ranks).  Windowed
  /// mode: `data` points at local_store for the calling rank's own block
  /// and is null for every peer block (mutex stays null throughout).
  struct Block {
    int owner = 0;
    std::size_t row_begin = 0;
    std::size_t row_end = 0;
    std::size_t count = 0;  ///< elements, (row_end - row_begin) * cols
    T* data = nullptr;
    detail::WorldMutex* mutex = nullptr;
  };
  struct Storage {
    std::size_t rows = 0;
    std::size_t cols = 0;
    detail::LockEnv lock_env{};
    std::shared_ptr<void> region;
    std::vector<Block> blocks;

    // Windowed (socket) mode: this rank's block payload and the window
    // peers send their requests to.  local_mutex orders the owner's I/O
    // thread (serving peers) against this rank's own direct accesses.
    bool windowed = false;
    Transport* transport = nullptr;
    std::uint64_t window = 0;
    std::vector<T> local_store;
    std::mutex local_mutex;

    ~Storage() {
      // Blocks until no handler is mid-request, so local_store cannot be
      // freed under the I/O thread.
      if (windowed && transport != nullptr) transport->onesided_unregister(window);
    }

    /// Owner-side service of one windowed request (runs on the owner's
    /// I/O thread).  Throws FormatError on a malformed request and
    /// InvalidArgument on out-of-range offsets; the transport turns the
    /// exception into an error reply for the requester.
    void serve(const std::uint8_t* req, std::size_t len, std::vector<std::uint8_t>& reply) {
      require_format(len >= 1, "GlobalArray window: empty request");
      const std::uint8_t op = req[0];
      const auto u64_at = [&](std::size_t off) { return read_u64(req + off); };
      std::lock_guard<std::mutex> lock(local_mutex);
      T* base = local_store.data();
      const std::size_t limit = local_store.size();
      if (op == kOpGet || op == kOpPut || op == kOpAcc) {
        require_format(len >= 17, "GlobalArray window: truncated range request");
        const std::size_t off = u64_at(1);
        const std::size_t n = u64_at(9);
        require(off <= limit && n <= limit - off,
                "GlobalArray window: range request out of block bounds");
        const std::size_t body = 17;
        if (op == kOpGet) {
          require_format(len == body, "GlobalArray window: oversized get request");
          reply.resize(n * sizeof(T));
          std::memcpy(reply.data(), base + off, reply.size());
        } else {
          require_format(len == body + n * sizeof(T),
                         "GlobalArray window: range payload size mismatch");
          if (op == kOpPut) {
            std::memcpy(base + off, req + body, n * sizeof(T));
          } else {
            for (std::size_t i = 0; i < n; ++i) {
              T v;
              std::memcpy(&v, req + body + i * sizeof(T), sizeof(T));
              base[off + i] += v;
            }
          }
        }
        return;
      }
      require_format(op == kOpGather || op == kOpScatter || op == kOpScatterAcc ||
                         op == kOpFetchAdd,
                     "GlobalArray window: unknown op");
      require_format(len >= 9, "GlobalArray window: truncated list request");
      const std::size_t n = u64_at(1);
      const bool has_values = op != kOpGather;
      const std::size_t want = 9 + n * 8 + (has_values ? n * sizeof(T) : 0);
      require_format(len == want, "GlobalArray window: list request size mismatch");
      const std::uint8_t* offs = req + 9;
      const std::uint8_t* vals = offs + n * 8;
      if (op == kOpGather || op == kOpFetchAdd) reply.resize(n * sizeof(T));
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t off = read_u64(offs + i * 8);
        require(off < limit, "GlobalArray window: list offset out of block bounds");
        T v{};
        if (has_values) std::memcpy(&v, vals + i * sizeof(T), sizeof(T));
        switch (op) {
          case kOpGather:
            std::memcpy(reply.data() + i * sizeof(T), base + off, sizeof(T));
            break;
          case kOpScatter:
            base[off] = v;
            break;
          case kOpScatterAcc:
            base[off] += v;
            break;
          default:  // kOpFetchAdd
            std::memcpy(reply.data() + i * sizeof(T), base + off, sizeof(T));
            base[off] += v;
            break;
        }
      }
    }
  };

  static void append_u64(std::vector<std::uint8_t>& v, std::uint64_t x) {
    for (int i = 0; i < 8; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
  }

  static std::uint64_t read_u64(const std::uint8_t* p) {
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return x;
  }

  /// Windowed remote range op against peer block `b`: one request/reply.
  /// `out` receives count elements (kOpGet); `in` supplies them
  /// (kOpPut/kOpAcc).
  void remote_range(const Block& b, std::uint8_t op, std::size_t block_off,
                    std::size_t count, T* out, const T* in) const {
    std::vector<std::uint8_t> req;
    req.reserve(17 + (in != nullptr ? count * sizeof(T) : 0));
    req.push_back(op);
    append_u64(req, block_off);
    append_u64(req, count);
    if (in != nullptr) {
      const auto* bytes = reinterpret_cast<const std::uint8_t*>(in);
      req.insert(req.end(), bytes, bytes + count * sizeof(T));
    }
    std::vector<std::uint8_t> reply;
    storage_->transport->onesided_call(b.owner, storage_->window, req.data(), req.size(),
                                       reply);
    if (out != nullptr) {
      require(reply.size() == count * sizeof(T), "GlobalArray: short one-sided reply");
      std::memcpy(out, reply.data(), reply.size());
    }
  }

  /// Windowed remote element-list op: block-local `offsets` with optional
  /// per-element `values`; `results` (if any) filled in the same order.
  void remote_list(const Block& b, std::uint8_t op, std::span<const std::size_t> offsets,
                   const T* values, T* results) const {
    const std::size_t n = offsets.size();
    std::vector<std::uint8_t> req;
    req.reserve(9 + n * 8 + (values != nullptr ? n * sizeof(T) : 0));
    req.push_back(op);
    append_u64(req, n);
    for (const std::size_t off : offsets) append_u64(req, off);
    if (values != nullptr) {
      const auto* bytes = reinterpret_cast<const std::uint8_t*>(values);
      req.insert(req.end(), bytes, bytes + n * sizeof(T));
    }
    std::vector<std::uint8_t> reply;
    storage_->transport->onesided_call(b.owner, storage_->window, req.data(), req.size(),
                                       reply);
    if (results != nullptr) {
      require(reply.size() == n * sizeof(T), "GlobalArray: short one-sided reply");
      std::memcpy(results, reply.data(), reply.size());
    }
  }

  static constexpr std::size_t align_up(std::size_t n) {
    return (n + detail::kCacheLine - 1) / detail::kCacheLine * detail::kCacheLine;
  }

  explicit GlobalArray(std::shared_ptr<Storage> storage) : storage_(std::move(storage)) {}

  /// Shared machinery of the element-list operations: visits every
  /// (position, element) pair grouped by owner block, holding each owner's
  /// lock once per call, and charges one modeled message per distinct
  /// owner (α or α_rmw plus β per index+value pair).  `fn(block, i,
  /// element_offset)` applies the element op; positions within one owner
  /// are visited in ascending position order so duplicate indices behave
  /// deterministically.
  /// Reusable per-rank (per-thread) grouping scratch shared by every
  /// element-list call: steady-state batches allocate nothing.
  struct BatchScratch {
    std::vector<int> owner_of_pos;
    std::vector<std::size_t> owner_begin;
    std::vector<std::size_t> fill;
    std::vector<std::size_t> positions;
  };

  /// `wire_op`, `values` and `results` describe the same operation for the
  /// windowed remote path: one batched request per remote owner, `results`
  /// (if any) scattered back by position.  Local owners (and the whole
  /// world in shared-region mode) apply `fn` element-wise as before.
  template <typename Fn>
  void for_each_owner_batch(Context& ctx, std::span<const std::size_t> indices, bool rmw,
                            std::uint8_t wire_op, const T* values, T* results,
                            Fn&& fn) const {
    if (indices.empty()) return;
    // Group positions by owner without allocating per-owner vectors:
    // count, prefix, fill — positions stay in ascending order per owner.
    const auto nprocs = storage_->blocks.size();
    static thread_local BatchScratch s;
    s.owner_begin.assign(nprocs + 1, 0);
    s.owner_of_pos.resize(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
      require(indices[i] < size(), "GlobalArray: element-list index out of range");
      const int o = owner_of(indices[i]);
      s.owner_of_pos[i] = o;
      ++s.owner_begin[static_cast<std::size_t>(o) + 1];
    }
    for (std::size_t o = 0; o < nprocs; ++o) {
      s.owner_begin[o + 1] += s.owner_begin[o];
    }
    s.positions.resize(indices.size());
    s.fill.assign(s.owner_begin.begin(), s.owner_begin.end() - 1);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      s.positions[s.fill[static_cast<std::size_t>(s.owner_of_pos[i])]++] = i;
    }
    const auto& owner_begin = s.owner_begin;
    const auto& positions = s.positions;

    for (std::size_t o = 0; o < nprocs; ++o) {
      const std::size_t n = owner_begin[o + 1] - owner_begin[o];
      if (n == 0) continue;
      auto& b = storage_->blocks[o];
      const bool remote = static_cast<int>(o) != ctx.rank();
      const std::size_t bytes = n * (sizeof(T) + sizeof(std::int64_t));
      if (rmw) {
        ctx.charge(ctx.model().atomic_rmw(remote) +
                   (remote ? ctx.model().beta : ctx.model().beta_local) *
                       static_cast<double>(bytes));
      } else {
        ctx.charge(ctx.model().onesided(bytes, remote));
      }
      const std::size_t block_first = b.row_begin * storage_->cols;
      if (storage_->windowed) {
        if (b.data != nullptr) {
          std::lock_guard<std::mutex> lock(storage_->local_mutex);
          for (std::size_t p = owner_begin[o]; p < owner_begin[o + 1]; ++p) {
            const std::size_t i = positions[p];
            fn(b, i, indices[i] - block_first);
          }
        } else {
          std::vector<std::size_t> offs;
          std::vector<T> vals;
          offs.reserve(n);
          if (values != nullptr) vals.reserve(n);
          for (std::size_t p = owner_begin[o]; p < owner_begin[o + 1]; ++p) {
            const std::size_t i = positions[p];
            offs.push_back(indices[i] - block_first);
            if (values != nullptr) vals.push_back(values[i]);
          }
          std::vector<T> got(results != nullptr ? n : 0);
          remote_list(b, wire_op, offs, values != nullptr ? vals.data() : nullptr,
                      results != nullptr ? got.data() : nullptr);
          if (results != nullptr) {
            for (std::size_t p = owner_begin[o]; p < owner_begin[o + 1]; ++p) {
              results[positions[p]] = got[p - owner_begin[o]];
            }
          }
        }
        continue;
      }
      detail::WorldLock lock(*b.mutex, storage_->lock_env);
      for (std::size_t p = owner_begin[o]; p < owner_begin[o + 1]; ++p) {
        const std::size_t i = positions[p];
        fn(b, i, indices[i] - block_first);
      }
    }
  }

  /// Splits [offset, offset+count) across blocks, invoking `fn(block,
  /// block_offset, n, cursor)` per piece and charging locality-dependent
  /// transfer costs.
  template <typename Fn>
  void traverse(Context& ctx, std::size_t offset, std::size_t count, Fn&& fn) const {
    require(offset + count <= size(), "GlobalArray: access out of range");
    std::size_t cursor = 0;
    while (cursor < count) {
      const std::size_t index = offset + cursor;
      const int owner = owner_of(index);
      auto& b = storage_->blocks[static_cast<std::size_t>(owner)];
      const std::size_t block_first = b.row_begin * storage_->cols;
      const std::size_t block_last = b.row_end * storage_->cols;
      const std::size_t take = std::min(count - cursor, block_last - index);
      require(take > 0, "GlobalArray: internal traversal error");
      ctx.charge(ctx.model().onesided(take * sizeof(T), owner != ctx.rank()));
      fn(b, index - block_first, take, cursor);
      cursor += take;
    }
  }

  std::shared_ptr<Storage> storage_;
};

}  // namespace sva::ga
