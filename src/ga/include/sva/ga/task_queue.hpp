// Dynamic load balancing by fixed-size chunking (§3.3).
//
// The paper's shared task queue is a counter in a global array advanced
// with GA's atomic fetch-and-increment; any idle process grabs the next
// chunk of inversion "loads" without involving a coordinator.  For the
// ablation study we also provide the master–worker strategy the paper
// argues against ([20]): every chunk request is serviced serially by a
// master rank, which becomes a bottleneck as P grows.  Both queues expose
// the same interface so the indexing code is strategy-agnostic.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sva/ga/global_array.hpp"
#include "sva/ga/runtime.hpp"

namespace sva::ga {

/// Half-open range of task indices handed to a worker.
struct TaskChunk {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
};

/// Orders queue claims by *virtual* time.  Simulated ranks are host
/// threads that the OS may schedule arbitrarily — on an oversubscribed
/// host one thread can drain an entire dynamic queue before its peers run
/// at all, which would make any load-balance measurement meaningless.
/// The gate grants claims in (vtime, rank) order: a rank may claim only
/// when no other active rank could still issue an earlier-in-virtual-time
/// claim.  This is a conservative parallel-discrete-event rule; it can
/// serialize claim *processing* in real time, but virtual-time results
/// are then exactly those of a cluster whose ranks run concurrently.
///
/// Protocol: every rank of the world must call next() until it returns
/// nullopt (the standard drain loop); a rank that abandons the queue
/// early would stall peers with larger virtual times.
///
/// The per-rank claim cells live in a transport-shared region under the
/// thread and process backends: ranks publish their (state, vtime) cell
/// lock-free and park on a generation futex word until the grant
/// condition holds.  Under the socket backend no shared memory exists, so
/// rank 0 hosts the cells behind a one-sided window: ranks publish and
/// snapshot them by request/reply and poll the grant condition (the
/// ordering rule — and therefore every virtual-time result — is
/// identical).
class ClaimGate {
 public:
  /// Collective: allocates the claim cells in a shared region (or, on the
  /// socket backend, registers the rank-0-hosted window).  The cells are
  /// zero-init-valid, so no construction round is needed; every rank gets
  /// its own (cheap) handle onto the same cell table.
  static std::shared_ptr<ClaimGate> create(Context& ctx);

  ~ClaimGate();

  /// Blocks until this rank holds the minimal (vtime, rank) key among
  /// active ranks.  Throws ProtocolError if the world aborts.
  void enter(Context& ctx);

  /// Marks this rank done with the queue (its claim returned nullopt).
  void finish(Context& ctx);

 private:
  // One cache line per rank; zero bytes == {kUnseen, vtime 0}.  Accessed
  // only through std::atomic_ref.
  struct alignas(64) Cell {
    std::uint32_t state;       // kUnseen / kWaiting / kProcessing / kDone
    std::uint32_t pad;
    std::uint64_t vtime_bits;  // bit pattern of the rank's claim vtime
  };
  enum : std::uint32_t { kUnseen = 0, kWaiting = 1, kProcessing = 2, kDone = 3 };

  ClaimGate(std::shared_ptr<void> region, detail::LockEnv env, int nprocs);
  ClaimGate(Transport& transport, int rank, int nprocs);  // windowed (socket)

  [[nodiscard]] bool may_grant(int rank) const;
  void bump_generation();

  // Windowed-mode plumbing: publish this rank's cell / snapshot all cells
  // through the rank-0 window, and the grant rule over a snapshot.
  void windowed_set(std::uint32_t state, double vtime);
  static bool may_grant_snapshot(const std::vector<std::pair<std::uint32_t, double>>& cells,
                                 int rank, double my_vtime);

  std::shared_ptr<void> region_;
  detail::LockEnv env_;
  int nprocs_;
  std::uint32_t* generation_ = nullptr;  ///< futex word waiters park on
  Cell* cells_ = nullptr;

  // Windowed (socket) mode.
  Transport* transport_ = nullptr;
  std::uint64_t window_ = 0;
  int my_rank_ = 0;
  bool done_ = false;  ///< post-drain probes skip the gate
  std::mutex host_mu_;  ///< rank 0: orders the I/O thread against itself
  std::vector<std::pair<std::uint32_t, double>> host_cells_;  ///< rank 0 hosts
};

/// Interface for chunk schedulers.  next() claims the next chunk or
/// returns nullopt when the queue is drained; when the queue was created
/// with vtime ordering, claims are funneled through a ClaimGate first.
class TaskQueue {
 public:
  virtual ~TaskQueue() = default;

  /// Claims the next chunk, or nullopt when the queue is drained.
  std::optional<TaskChunk> next(Context& ctx);

  [[nodiscard]] virtual std::size_t num_tasks() const = 0;

 protected:
  /// Strategy-specific claim, called with gate ordering already applied.
  virtual std::optional<TaskChunk> claim(Context& ctx) = 0;

  /// Attaches a gate created collectively (ClaimGate::create) *before*
  /// the queue's collective_create factory ran — the factory itself must
  /// not issue collectives (see Context::collective_create).
  void enable_vtime_order(std::shared_ptr<ClaimGate> gate) { gate_ = std::move(gate); }

 private:
  std::shared_ptr<ClaimGate> gate_;
};

/// Shared-counter queue: one atomic fetch-and-add per claim, hosted in a
/// GlobalArray exactly like the paper's GA-based implementation.  The
/// queue is "prioritized" by construction: callers seed their scan cursor
/// with rank-local chunks first via the owner_first option in the indexing
/// layer; the counter itself is strictly global.
class AtomicCounterQueue : public TaskQueue {
 public:
  /// Collective: creates a queue over `num_tasks` tasks with the given
  /// chunk size.
  static std::shared_ptr<AtomicCounterQueue> create(Context& ctx, std::size_t num_tasks,
                                                    std::size_t chunk_size,
                                                    bool vtime_ordered = false);

  [[nodiscard]] std::size_t num_tasks() const override { return num_tasks_; }
  [[nodiscard]] std::size_t chunk_size() const { return chunk_size_; }

  AtomicCounterQueue(GlobalArray<std::int64_t> counter, std::size_t num_tasks,
                     std::size_t chunk_size);

 protected:
  std::optional<TaskChunk> claim(Context& ctx) override;

 private:
  GlobalArray<std::int64_t> counter_;
  std::size_t num_tasks_;
  std::size_t chunk_size_;
};

/// Master–worker queue: rank 0 "services" every chunk request serially.
/// The modeled request/response latencies plus the master's serial service
/// time reproduce the scalability bottleneck the paper describes.  (The
/// master also performs its own work; its requests are serviced locally.)
/// Under the socket backend the master's serial state lives only on rank
/// 0 and claims become genuine request/reply messages through a one-sided
/// window — the same arithmetic, so modeled results are unchanged.
class MasterWorkerQueue : public TaskQueue {
 public:
  static std::shared_ptr<MasterWorkerQueue> create(Context& ctx, std::size_t num_tasks,
                                                   std::size_t chunk_size,
                                                   bool vtime_ordered = false);

  [[nodiscard]] std::size_t num_tasks() const override { return num_tasks_; }

  MasterWorkerQueue(std::size_t num_tasks, std::size_t chunk_size,
                    std::shared_ptr<void> state_region, detail::LockEnv env);
  /// Windowed (socket) construction: rank 0 hosts the serial state.
  MasterWorkerQueue(std::size_t num_tasks, std::size_t chunk_size, Transport& transport,
                    double rpc_service);
  ~MasterWorkerQueue() override;

 protected:
  std::optional<TaskChunk> claim(Context& ctx) override;

 private:
  /// The master's serial service state, in a transport-shared region so
  /// the bottleneck clock is one value under either backend.  Zero bytes
  /// are the valid initial state (implicit-lifetime aggregate).
  struct SharedState {
    detail::WorldMutex mutex;
    std::uint64_t next_task;
    double busy_until;  ///< master's virtual clock for queue service
  };

  std::shared_ptr<void> region_;
  detail::LockEnv env_;
  SharedState* state_ = nullptr;
  std::size_t num_tasks_;
  std::size_t chunk_size_;

  // Windowed (socket) mode: rank 0's replica hosts the state; every
  // rank's claim is one request/reply.
  Transport* transport_ = nullptr;
  std::uint64_t window_ = 0;
  double rpc_service_ = 0.0;
  std::mutex host_mu_;
  std::uint64_t host_next_task_ = 0;
  double host_busy_until_ = 0.0;
};

/// Static pre-partitioned "queue": rank r receives exactly its contiguous
/// 1/P share, mimicking no load balancing at all (the Figure 9 baseline).
class StaticPartitionQueue : public TaskQueue {
 public:
  static std::shared_ptr<StaticPartitionQueue> create(Context& ctx, std::size_t num_tasks,
                                                      bool vtime_ordered = false);

  [[nodiscard]] std::size_t num_tasks() const override { return num_tasks_; }

  StaticPartitionQueue(std::size_t num_tasks, int nprocs);

 protected:
  std::optional<TaskChunk> claim(Context& ctx) override;

 private:
  std::size_t num_tasks_;
  int nprocs_;
  // Per-rank single-shot flags; index = rank.  Each rank touches only its
  // own byte (distinct memory locations), so no lock is needed.
  std::vector<unsigned char> claimed_;
};

/// The paper's queue (§3.3): per-rank cursors in a global array, advanced
/// with GA fetch-and-increment.  "The task queue is prioritized in such a
/// way that each process completes its inversion loads first, and then
/// works on loads owned by other processes" — next() drains the caller's
/// own range, then steals from peers in round-robin order.
class OwnerFirstChunkQueue : public TaskQueue {
 public:
  /// Collective: `ranges[r]` is the contiguous task interval owned by rank
  /// r; interval union must cover the queue's task space.
  static std::shared_ptr<OwnerFirstChunkQueue> create(
      Context& ctx, std::vector<std::pair<std::size_t, std::size_t>> ranges,
      std::size_t chunk_size, bool vtime_ordered = false);

  [[nodiscard]] std::size_t num_tasks() const override { return num_tasks_; }

  OwnerFirstChunkQueue(GlobalArray<std::int64_t> cursors,
                       std::vector<std::pair<std::size_t, std::size_t>> ranges,
                       std::size_t chunk_size);

 protected:
  std::optional<TaskChunk> claim(Context& ctx) override;

 private:
  std::optional<TaskChunk> claim_from(Context& ctx, int owner);

  GlobalArray<std::int64_t> cursors_;
  std::vector<std::pair<std::size_t, std::size_t>> ranges_;
  std::size_t chunk_size_;
  std::size_t num_tasks_ = 0;
};

/// Scheduling strategies selectable in the indexing configuration.
enum class Scheduling {
  kStatic,         ///< contiguous 1/P shares, no balancing
  kOwnerFirst,     ///< the paper's prioritized GA-atomic queue
  kAtomicCounter,  ///< single global GA fetch-and-increment counter
  kMasterWorker,   ///< message-passing master–worker baseline
};

/// Factory used by the indexing component.  `ranges` (per-rank ownership)
/// is required by kOwnerFirst; other strategies ignore it.  With
/// `vtime_ordered` true, claims are granted in virtual-time order via a
/// ClaimGate (see its protocol note: every rank must drain to nullopt).
std::shared_ptr<TaskQueue> make_task_queue(
    Context& ctx, Scheduling scheduling, std::size_t num_tasks, std::size_t chunk_size,
    const std::vector<std::pair<std::size_t, std::size_t>>& ranges = {},
    bool vtime_ordered = false);

const char* scheduling_name(Scheduling s);

}  // namespace sva::ga
