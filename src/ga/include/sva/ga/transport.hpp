// Transport seam for the SPMD runtime: the narrow interface the
// collectives in runtime.hpp are written against, so backends can be
// swapped without touching algorithm code (the DIY communicator idiom).
//
// Three backends ship today:
//
//   * ThreadTransport (Backend::kThread, the default) — ranks are threads
//     in one address space; publication slots, staging scratch and the
//     epoch-counting spin-park barrier are the PR 4 fast path, unchanged.
//   * ShmTransport (Backend::kProcess) — ranks are forked processes over a
//     shared-memory segment: the same parity-double-buffered slot+scratch
//     staging layout lives in an anonymous MAP_SHARED mapping created
//     before the fork (so it is inherited at the same address by every
//     rank), arrival is a futex-parked epoch barrier, and collective
//     object regions are POSIX shm_open segments.  Linux-only.
//   * SocketTransport (Backend::kSocket) — ranks are processes connected
//     over TCP (loopback or different hosts): a rendezvous handshake
//     assigns ranks and distributes the peer table, PeerSlot publication
//     becomes length-prefixed frames, the partitioned allreduce becomes
//     reduce-scatter + allgather on the wire, collective objects route
//     through a one-sided request/reply window protocol, and failure is
//     detected by heartbeat + half-closed-socket EOF feeding post_error.
//     Linux-only (launcher forks local ranks like the process backend).
//
// The seam is intentionally small: publish a contribution for a data
// round, read every peer's slot, synchronize (with a clock fold and an
// optional last-arriver callback), fence, and a shared combine buffer for
// the partitioned allreduce.  Everything else — staging decisions, parity
// bookkeeping, modeled costs — stays in Context and is backend-agnostic.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sva/ga/comm_model.hpp"
#include "sva/util/error.hpp"

namespace sva::ga {

/// Which engine carries the ranks of an SPMD world.
enum class Backend {
  kThread,   ///< ranks are threads in this process (default)
  kProcess,  ///< ranks are forked processes over POSIX shared memory
  kSocket,   ///< ranks are processes connected over TCP (multi-host capable)
};

/// Stable lowercase name ("thread" / "process" / "socket") for CLI and logs.
[[nodiscard]] const char* backend_name(Backend backend);

/// Parses "thread" / "process" / "socket"; nullopt on anything else.
[[nodiscard]] std::optional<Backend> parse_backend(std::string_view name);

/// Launch options for spmd_run(SpmdOptions, fn) — the redesigned entry
/// point that subsumes the historical spmd_run(nprocs, model, fn)
/// overloads.  Aggregate-initializable: SpmdOptions{.nprocs = 4,
/// .backend = Backend::kProcess}.
struct SpmdOptions {
  int nprocs = 1;
  CommModel comm_model{};
  Backend backend = Backend::kThread;

  /// Name prefix for the POSIX shm segments the process backend creates
  /// for collective objects (GlobalArray storage et al.).  Segments are
  /// unlinked as soon as every rank has mapped them.
  std::string shm_prefix = "/sva";

  /// Process backend: per-rank, per-parity staging capacity.  Every
  /// collective contribution is staged (cross-process payloads cannot be
  /// zero-copy), so the largest single broadcast/allgatherv contribution
  /// must fit.  The mapping is reserved lazily — untouched capacity
  /// costs no physical memory.
  std::size_t shm_slot_bytes = 64ull << 20;

  /// Process backend: capacity of the shared allreduce combine buffer.
  std::size_t shm_reduce_bytes = 64ull << 20;

  /// Socket backend: rendezvous listener address as "host:port".  Every
  /// rank connects here once at startup to claim its rank and receive the
  /// peer table.  Empty means single-node: the launcher binds an ephemeral
  /// loopback listener before forking the local ranks.  For multi-host
  /// worlds, pass the same address to every launcher; the launcher whose
  /// socket_node is 0 binds it.
  std::string socket_rendezvous;

  /// Socket backend: index of this launcher among socket_nodes cooperating
  /// launchers.  Ranks are block-partitioned over nodes in node order, so
  /// node 0 always owns rank 0 (and captures the SpmdResult).
  int socket_node = 0;
  int socket_nodes = 1;

  /// Socket backend: heartbeat cadence and the silence threshold past
  /// which a peer is declared dead ("rank N heartbeat lost").  Any frame
  /// counts as liveness, so only a truly wedged or partitioned peer trips
  /// the timeout; abrupt death is usually caught earlier by EOF.
  int socket_heartbeat_ms = 500;
  int socket_heartbeat_timeout_ms = 10000;

  /// Socket backend: deadline for each step of the rendezvous/mesh
  /// handshake (connect, hello, welcome, peer accept).
  int socket_connect_timeout_ms = 10000;

  /// Socket backend: hard bound on a single frame's payload.  Oversized
  /// contributions are rejected at publish time with a ProtocolError
  /// naming this knob; a larger length on the wire marks the stream
  /// corrupt (FormatError).
  std::size_t socket_max_frame_bytes = 256ull << 20;
};

namespace detail {

inline constexpr std::size_t kCacheLine = 64;

/// Publication slot for one rank's collective contribution.  Padded so
/// concurrent publishes never share a cache line.  Under the process
/// backend `ptr` points into the pre-fork world mapping, which every rank
/// inherits at the same address, so peer pointers stay valid across
/// address spaces.
struct alignas(kCacheLine) PeerSlot {
  const void* ptr = nullptr;
  std::size_t bytes = 0;
  /// Payload was staged into transport-owned storage: readers need no
  /// departure fence before the contributor reuses its own buffer.
  bool copied = false;
};

/// Waits on a 32-bit word until it changes from `expected`, a wake
/// arrives, or ~`timeout_ms` elapses (spurious returns are fine: callers
/// always re-check).  `process_shared` selects a cross-process futex —
/// std::atomic::wait uses FUTEX_PRIVATE and never crosses processes.
void futex_wait_u32(const void* addr, std::uint32_t expected, bool process_shared,
                    int timeout_ms);
void futex_wake_all_u32(const void* addr, bool process_shared);
void futex_wake_one_u32(const void* addr, bool process_shared);

/// How WorldMutex parks and polls: filled in by Context::lock_env() so
/// shared containers (GlobalArray blocks, task-queue cells) need no
/// backend branches of their own.
struct LockEnv {
  bool process_shared = false;
  /// World abort flag; a blocked lock() rechecks it every ~50ms so a rank
  /// waiting on a lock whose holder died observes the abort instead of
  /// hanging.  May be null (no abort polling).
  const std::atomic<std::uint32_t>* abort_word = nullptr;
};

/// A futex-parked mutex usable from memory shared between processes.
/// Zero-filled storage is a valid unlocked mutex — regions returned by
/// Context::create_shared_region need no construction step.  All access
/// goes through std::atomic_ref, so placing one over raw mapped bytes is
/// well-defined.
class alignas(kCacheLine) WorldMutex {
 public:
  // Trivial default constructor (deliberately no initializer): the class
  // stays implicit-lifetime, so one materializes over the zero-filled
  // bytes of a shared region with no construction step.  Stack instances
  // must be value-initialized: `WorldMutex m{};`.
  WorldMutex() = default;

  /// Throws ProtocolError when env.abort_word trips while waiting.
  void lock(const LockEnv& env);
  void unlock(const LockEnv& env);

 private:
  std::uint32_t word_;  // 0 free / 1 locked / 2 locked-contended; zero = free
};

/// RAII guard over WorldMutex.
class WorldLock {
 public:
  WorldLock(WorldMutex& mutex, const LockEnv& env) : mutex_(mutex), env_(env) {
    mutex_.lock(env_);
  }
  ~WorldLock() { mutex_.unlock(env_); }
  WorldLock(const WorldLock&) = delete;
  WorldLock& operator=(const WorldLock&) = delete;

 private:
  WorldMutex& mutex_;
  LockEnv env_;
};

}  // namespace detail

/// The backend seam.  One Transport is owned by a World; all methods are
/// called by Context's round engine (one call per rank per round, in the
/// lockstep order the SPMD protocol already guarantees).
class Transport {
 public:
  /// Last-arriver callback trampoline: Context type-erases its templated
  /// on_last lambdas through this.
  using RoundFn = void (*)(void*);

  explicit Transport(int nprocs) : nprocs_(nprocs) {}
  virtual ~Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  [[nodiscard]] int nprocs() const { return nprocs_; }
  [[nodiscard]] virtual Backend backend() const = 0;

  /// True when all ranks live in one address space (thread backend): raw
  /// pointers published by one rank may be dereferenced by another, and
  /// collective objects can be shared by reference instead of replicated.
  [[nodiscard]] virtual bool shared_address() const { return false; }

  /// True when create_region can hand every rank a view of the same
  /// physical bytes (thread, process).  When false (socket), collective
  /// objects must route through the one-sided window protocol below and
  /// create_region throws.
  [[nodiscard]] virtual bool shared_regions() const { return true; }

  /// True when reduce_base() is one combine buffer shared by every rank
  /// (thread, process), so the partitioned allreduce can fold in place.
  /// When false (socket), Context switches to reduce-scatter + allgather
  /// on the wire.
  [[nodiscard]] virtual bool shared_combine() const { return true; }

  /// Publishes `bytes` of `data` as `rank`'s contribution for the data
  /// round of `parity`.  `copy` requests staging into transport-owned
  /// scratch; a transport may stage even when `copy` is false (the process
  /// backend always stages) and reports what it did via PeerSlot::copied.
  virtual void publish(std::uint32_t parity, int rank, const void* data,
                       std::size_t bytes, bool copy) = 0;

  /// The nprocs() publication slots of `parity`; valid to read between the
  /// parity's arrival round and its reuse two data rounds later.
  [[nodiscard]] virtual const detail::PeerSlot* peers(std::uint32_t parity) const = 0;

  /// Arrival round: records `vtime` as this rank's clock, the round's last
  /// arriver folds the max over all clocks and runs `on_last(arg)` (if
  /// non-null) while it exclusively owns the round.  Returns the folded
  /// max.  Throws ProtocolError once the world is aborted.
  virtual double sync(int rank, double vtime, RoundFn on_last, void* arg) = 0;

  /// Arrival-only departure fence: no clock publication, no fold.
  virtual void fence(int rank) = 0;

  /// Grows (thread) or capacity-checks (process) the shared allreduce
  /// combine buffer.  Call only while owning a round (from on_last).
  virtual void ensure_reduce_capacity(std::size_t bytes) = 0;
  [[nodiscard]] virtual void* reduce_base() = 0;

  /// Records `what` as the world's failure (first caller wins), sets the
  /// abort flag and wakes every parked rank.  Returns true when this call
  /// recorded the first error.
  virtual bool post_error(const char* what) = 0;
  [[nodiscard]] virtual bool aborted() const = 0;
  /// The recorded failure text (meaningful once aborted()).
  [[nodiscard]] virtual std::string error_text() const = 0;
  /// Abort flag for WorldMutex/ClaimGate parking loops.
  [[nodiscard]] virtual const std::atomic<std::uint32_t>* abort_word() const = 0;

  /// Collective: returns zero-filled memory of `bytes` shared by all
  /// ranks.  Every rank must call in lockstep with identical `bytes`; the
  /// call synchronizes internally (arrival fences, no modeled charge).
  /// Thread backend: one cache-line-aligned allocation shared by
  /// reference.  Process backend: a named shm segment mapped per rank
  /// (base addresses differ — store offsets or rank-local pointers, never
  /// absolute pointers, inside a region).
  virtual std::shared_ptr<void> create_region(int rank, std::size_t bytes) = 0;

  /// Generic-pointer exchange mirror for Context::exchange; null when the
  /// transport cannot share raw pointers across ranks (process backend).
  [[nodiscard]] virtual std::vector<const void*>* ptr_slots(std::uint32_t /*parity*/) {
    return nullptr;
  }

  /// Per-destination publication for the wire reduce-scatter: stages the
  /// slice of this round's contribution that only rank `dst` should
  /// receive.  Used by Context::allreduce when !shared_combine(); other
  /// transports never see it.
  virtual void publish_to(std::uint32_t /*parity*/, int /*rank*/, int /*dst*/,
                          const void* /*data*/, std::size_t /*bytes*/) {
    throw ProtocolError(
        "publish_to: per-destination publication requires the socket "
        "backend");
  }

  /// One-sided window protocol (socket backend): a collective object
  /// registers a handler on every rank in lockstep (ids are assigned from
  /// a per-transport counter, so identical registration order yields
  /// identical ids world-wide); onesided_call ships `req` to `owner`,
  /// whose I/O thread runs the handler against rank-local state and
  /// returns `reply`.  Handlers run concurrently with the owner's rank
  /// thread — they must only touch state guarded by their own mutex, and
  /// must never block on a collective.  A handler that throws is
  /// propagated to the caller as a ProtocolError.
  using OneSidedHandler = std::function<void(
      const std::uint8_t* req, std::size_t len, std::vector<std::uint8_t>& reply)>;

  virtual std::uint64_t onesided_register(OneSidedHandler /*handler*/) {
    throw ProtocolError(
        "onesided_register: one-sided windows require the socket backend");
  }
  virtual void onesided_unregister(std::uint64_t /*window*/) {}
  virtual void onesided_call(int /*owner*/, std::uint64_t /*window*/,
                             const void* /*req*/, std::size_t /*len*/,
                             std::vector<std::uint8_t>& /*reply*/) {
    throw ProtocolError(
        "onesided_call: one-sided windows require the socket backend");
  }

 protected:
  int nprocs_;
};

/// Builds the transport selected by `options` (throws InvalidArgument for
/// an unsupported backend, e.g. Backend::kProcess off Linux).
std::unique_ptr<Transport> make_transport(const SpmdOptions& options);

}  // namespace sva::ga
