// Collective stage timing in virtual time.
//
// The engine brackets each pipeline component (scan, index, topic, AM,
// DocVec, ClusProj) with StageTimer::mark().  mark() performs a barrier —
// after which every rank's virtual clock equals the stage maximum — and
// records the delta since the previous mark.  Because clocks are
// max-synchronized, every rank records identical stage durations, which is
// what the paper's per-component figures (6b, 7b, 8) report.
#pragma once

#include <string>
#include <vector>

#include "sva/ga/runtime.hpp"

namespace sva::ga {

class StageTimer {
 public:
  /// Collective: aligns all ranks and starts the first stage interval.
  explicit StageTimer(Context& ctx) : ctx_(ctx) {
    ctx_.barrier();
    last_ = ctx_.vtime_raw();
  }

  /// Collective: closes the current interval under `name`.
  void mark(const std::string& name) {
    ctx_.barrier();
    const double now = ctx_.vtime_raw();
    stages_.emplace_back(name, now - last_);
    last_ = now;
  }

  /// Stage durations in the order marked (identical on all ranks).
  [[nodiscard]] const std::vector<std::pair<std::string, double>>& stages() const {
    return stages_;
  }

  /// Total across recorded stages.
  [[nodiscard]] double total() const {
    double t = 0.0;
    for (const auto& [name, dur] : stages_) t += dur;
    return t;
  }

  /// Duration of a stage by name (0.0 when absent; stages are unique in
  /// the engine).
  [[nodiscard]] double stage(const std::string& name) const {
    for (const auto& [n, dur] : stages_) {
      if (n == name) return dur;
    }
    return 0.0;
  }

 private:
  Context& ctx_;
  double last_ = 0.0;
  std::vector<std::pair<std::string, double>> stages_;
};

}  // namespace sva::ga
