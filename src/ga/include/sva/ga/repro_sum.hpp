// Order-invariant distributed summation.
//
// Floating-point addition is not associative, so a sum whose grouping
// follows the rank partitioning — each rank reduces its shard, then the
// partials merge — drifts in the last bits as the processor count
// changes.  That breaks the engine's P-invariance contract (identical
// products regardless of processor count), which holds by construction
// for the integer statistics the pipeline mostly reduces, but not for
// real-valued accumulations like k-means centroid sums.
//
// ReproducibleSum restores exactness by quantizing each addend once to
// fixed-point ticks (round-to-nearest, at a scale derived from a
// caller-supplied magnitude bound) and accumulating in 128-bit
// integers.  Integer addition is associative, so the result is exactly
// independent of addend order, rank count, and reduction topology.
// Quantization costs one rounding of ~2^-52 relative per addend — the
// same order as the FP rounding it replaces.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "sva/ga/runtime.hpp"
#include "sva/util/error.hpp"

namespace sva::ga {

/// A bank of `slots` independent order-invariant accumulators.
class ReproducibleSum {
 public:
  /// `max_abs_addend` must bound |x| for every addend on every rank and
  /// be identical across ranks — derive it from the data with an exact
  /// collective (allreduce_max) or from an a-priori bound.
  ReproducibleSum(std::size_t slots, double max_abs_addend)
      : scale_(choose_scale(max_abs_addend)), cells_(slots) {}

  void add(std::size_t slot, double x) {
    const double scaled = x * scale_;
    if (std::fabs(scaled) < kMaxTick) {
      cells_[slot].ticks += static_cast<Ticks>(std::llrint(scaled));
    } else {
      // Addend violates the caller's bound or is inf/NaN: llrint would be
      // UB.  Route it through a plain FP side-channel so the slot reports
      // an honest inf/NaN/huge value instead of silent garbage.  (The FP
      // side sum is order-dependent, but only fires on garbage input.)
      cells_[slot].overflow += x;
    }
  }

  /// Collective: one exact integer allreduce of the tick counts (the
  /// overflow side-channel rides in the same cells, so the common path
  /// pays a single collective), then one final rounding per slot.
  /// Consumes the accumulator.
  std::vector<double> allreduce_sum(Context& ctx) {
    ctx.allreduce(cells_.data(), cells_.size(), [](Cell a, Cell b) {
      return Cell{a.ticks + b.ticks, a.overflow + b.overflow};
    });
    std::vector<double> out(cells_.size());
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      out[i] = static_cast<double>(cells_[i].ticks) / scale_ + cells_[i].overflow;
    }
    return out;
  }

 private:
  // 128-bit ticks: per-addend magnitude is < 2^53, so even 2^70 addends
  // cannot overflow.  (GCC/Clang builtin; this library targets both.)
  using Ticks = __int128;

  struct Cell {
    Ticks ticks = 0;
    double overflow = 0.0;
  };

  static constexpr double kMaxTick = 9007199254740992.0;  // 2^53

  static double choose_scale(double max_abs_addend) {
    if (!std::isfinite(max_abs_addend)) return 1.0;  // bound is garbage anyway
    int exp = 0;
    std::frexp(std::max(max_abs_addend, std::numeric_limits<double>::min()), &exp);
    // |x| < 2^exp  =>  |x * scale| < 2^52: exactly representable ticks.
    // Clamp so scale stays finite for zero/subnormal bounds (an all-zero
    // dataset must sum to exactly 0, not NaN via 0 * inf).
    return std::ldexp(1.0, std::min(52 - exp, 1023));
  }

  double scale_;
  std::vector<Cell> cells_;
};

}  // namespace sva::ga
