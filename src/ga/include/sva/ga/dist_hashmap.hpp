// Distributed hashmap: the ARMCI-RPC-backed global vocabulary map of §3.2.
//
// Terms are partitioned by hash across ranks; inserting a term issues an
// RPC to the owning partition, which assigns a *provisional* global term
// ID unique across the world.  Because provisional IDs depend on arrival
// order (exactly as in the paper's implementation), a collective
// finalize() pass canonicalizes the vocabulary — sorting terms
// lexicographically and producing a provisional→canonical remap — so that
// every downstream product is bit-reproducible for any processor count.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sva/ga/runtime.hpp"

namespace sva::ga {

/// Transparent string hashing so string_view probes never materialize a
/// std::string.
struct StringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// Canonicalized global vocabulary (replicated; immutable after finalize).
struct Vocabulary {
  /// All unique terms, lexicographically sorted; canonical ID = position.
  std::vector<std::string> terms;
  /// term → canonical ID.
  std::unordered_map<std::string, std::int64_t, StringHash, std::equal_to<>> term_to_id;

  [[nodiscard]] std::size_t size() const { return terms.size(); }

  [[nodiscard]] std::int64_t id_of(std::string_view term) const {
    auto it = term_to_id.find(term);
    return it == term_to_id.end() ? -1 : it->second;
  }
};

class DistHashmap {
 public:
  /// Collective: creates an empty map with one partition per rank.
  static DistHashmap create(Context& ctx);

  /// Inserts `term` (or looks it up) and returns its provisional global
  /// ID.  One-sided: no cooperation from the owner rank.  Thread-safe.
  ///
  /// Thread backend only.  Under the process and socket backends the map
  /// is replicated per rank and a one-sided insert cannot keep the
  /// replicas coherent; this throws ProtocolError there — use the
  /// collective insert_batch.
  std::int64_t insert_or_get(Context& ctx, std::string_view term);

  /// Batched insert: groups terms by owning partition so each partition's
  /// lock and RPC channel is visited once.  Returns provisional IDs
  /// aligned with `terms`.  The string_view overload is the scanner's
  /// fast path: callers keep their spellings in a TokenArena and never
  /// materialize per-term std::strings on the requesting side.
  ///
  /// Under the process and socket backends this is a *collective*: every
  /// rank must call it the same number of times.  The batches are allgathered and applied
  /// by every rank in rank order, keeping the per-rank replicas identical;
  /// provisional IDs then differ from the thread backend's
  /// arrival-order IDs, but finalize() canonicalizes both to the same
  /// vocabulary, so downstream products stay bit-identical.
  std::vector<std::int64_t> insert_batch(Context& ctx, std::span<const std::string_view> terms);
  std::vector<std::int64_t> insert_batch(Context& ctx,
                                         const std::vector<std::string>& terms);

  /// Looks a term up without inserting.  Returns nullopt when absent.
  std::optional<std::int64_t> find(Context& ctx, std::string_view term) const;

  /// Total number of unique terms across all partitions (one-sided scan;
  /// call after scanning completes or expect a racy snapshot).
  [[nodiscard]] std::size_t size_estimate() const;

  /// Collective: freezes the map, sorts the global vocabulary, and
  /// returns (replicated) the canonical vocabulary plus a provisional→
  /// canonical remap usable via remap_id().
  struct Finalized {
    std::shared_ptr<const Vocabulary> vocabulary;
    /// provisional ID → canonical ID (dense vector; see provisional
    /// encoding below).
    std::vector<std::int64_t> remap;

    [[nodiscard]] std::int64_t remap_id(std::int64_t provisional) const {
      return remap[static_cast<std::size_t>(provisional)];
    }
  };
  Finalized finalize(Context& ctx);

  /// Owning partition (== rank) of a term.
  [[nodiscard]] int owner_of(std::string_view term) const;

 private:
  struct Partition {
    std::mutex mutex;
    // term -> local index; transparent hashing so request-side
    // string_views probe without materializing std::strings.
    std::unordered_map<std::string, std::int64_t, StringHash, std::equal_to<>> ids;
    std::vector<std::string> insertion_order;  // local index -> term
  };
  struct Storage {
    int nprocs = 1;
    std::vector<Partition> partitions;
  };

  explicit DistHashmap(std::shared_ptr<Storage> storage) : storage_(std::move(storage)) {}

  /// Process-backend insert_batch: collective, replica-synchronizing.
  std::vector<std::int64_t> insert_batch_replicated(
      Context& ctx, std::span<const std::string_view> terms);

  /// Applies one insert to the local partitions (no charge, no RPC); used
  /// by the replicated path where every rank applies every rank's batch.
  std::int64_t apply_insert(std::string_view term);

  // Provisional ID encoding: local_index * nprocs + partition.  Unique
  // world-wide without any cross-partition coordination.
  [[nodiscard]] std::int64_t encode(std::int64_t local_index, int partition) const {
    return local_index * storage_->nprocs + partition;
  }

  std::shared_ptr<Storage> storage_;
};

}  // namespace sva::ga
