// SPMD runtime: the Global-Arrays-style substrate the paper's engine runs
// on.  `spmd_run(SpmdOptions{...}, fn)` launches P ranks, every rank
// executes `fn(Context&)`, and the runtime provides:
//
//   * collectives — barrier, broadcast, reduce/allreduce, gather(v),
//     allgather(v), exclusive scan — with LogGP-modeled costs;
//   * virtual time — per-rank clocks combining measured thread-CPU compute
//     with modeled communication (see comm_model.hpp);
//   * collective object creation — the hook GlobalArray / DistHashmap /
//     task queues use to materialize shared state;
//   * pluggable transports — SpmdOptions::backend selects threads in one
//     address space (default) or forked processes over POSIX shared
//     memory (see transport.hpp); Context::backend() lets shared
//     containers adapt without engine code caring.
//
// Protocol: like MPI/GA, all ranks must issue collectives in the same
// order.  If any rank throws, the runtime aborts the remaining ranks at
// their next synchronization point and rethrows the first exception from
// spmd_run (under the process backend, peer failures surface as a
// ProtocolError carrying the first rank's diagnostic; a killed rank is
// detected and reported as "rank N died" instead of hanging the world).
//
// Host fast path (see README "GA substrate performance"): synchronization
// is an epoch-counting sense-reversing barrier — one atomic arrival per
// rank, the last arriver folds the virtual clocks and releases the epoch;
// waiters spin briefly, then park on the epoch word (futex).  Collectives
// that can stage their payload in transport-owned scratch complete in a
// single arrival round; zero-copy paths add one departure fence so caller
// buffers stay readable until every peer is done.  Allreduce combines
// partitioned: each rank reduces only its contiguous element block (in
// rank order per element, so results are bit-identical to a serial
// rank-order fold), with a leader-combines fallback for small payloads.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sva/ga/comm_model.hpp"
#include "sva/ga/transport.hpp"
#include "sva/util/error.hpp"
#include "sva/util/timer.hpp"

namespace sva::ga {

class Context;

/// Shared state of one SPMD world.  Users never construct this directly;
/// it is owned by spmd_run and surfaced through Context.
class World {
 public:
  explicit World(const SpmdOptions& options);

  [[nodiscard]] int nprocs() const { return nprocs_; }
  [[nodiscard]] const CommModel& model() const { return model_; }
  [[nodiscard]] Transport& transport() { return *transport_; }
  [[nodiscard]] const Transport& transport() const { return *transport_; }

  // Internal state below: accessed by Context and the spmd_run launchers.
  // Not part of the public API surface.
  int nprocs_;
  CommModel model_;
  std::unique_ptr<Transport> transport_;

  // Collective object transfer (thread backend): rank 0 parks a
  // shared_ptr here between the two barriers of collective_create.
  std::shared_ptr<void> create_slot_;

  // First exception thrown by any rank (thread backend; the process
  // backend propagates error text through the transport).
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

/// Per-rank handle: rank id, collectives, and the virtual clock.
class Context {
 public:
  Context(World& world, int rank);

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int nprocs() const { return world_.nprocs(); }
  [[nodiscard]] const CommModel& model() const { return world_.model(); }
  [[nodiscard]] World& world() { return world_; }

  /// Which transport carries this world — lets shared containers pick a
  /// strategy (e.g. replicated vs shared-pointer state) while engine code
  /// stays transport-agnostic.
  [[nodiscard]] Backend backend() const { return world_.transport().backend(); }

  /// True once any rank has failed the world; pollable from wait loops.
  [[nodiscard]] bool world_aborted() const { return world_.transport().aborted(); }

  /// Parking/abort parameters for WorldMutex-protected shared state.
  [[nodiscard]] detail::LockEnv lock_env() const {
    return detail::LockEnv{backend() == Backend::kProcess,
                           world_.transport().abort_word()};
  }

  // ---- virtual time ------------------------------------------------------

  /// Folds thread-CPU time accrued since the last call into the virtual
  /// clock (scaled by model().compute_scale).  Called automatically by
  /// every communication op; call manually before reading vtime().
  void sample_compute();

  /// Adds a modeled communication/IO charge to this rank's clock.
  void charge(double seconds) { vtime_ += seconds; }

  /// Current virtual time in seconds (samples compute first).
  [[nodiscard]] double vtime();

  /// Virtual time without sampling (value as of the last sync point).
  [[nodiscard]] double vtime_raw() const { return vtime_; }

  /// Overwrites the clock; used by barriers (max-synchronization) and by
  /// harnesses that reset between repetitions.
  void set_vtime(double t) { vtime_ = t; }

  /// Resets the clock and the CPU baseline to zero; collective callers
  /// should barrier first so ranks stay aligned.
  void reset_vtime();

  // ---- collectives ---------------------------------------------------

  /// Barrier: synchronizes all ranks; every clock advances to the maximum
  /// plus the modeled barrier cost.  One arrival round.
  void barrier();

  /// Generic exchange: publish `mine`, run `consume(slots)` with every
  /// rank's pointer visible, then resynchronize.  `consume` runs on every
  /// rank between the arrival round and the departure fence.  `comm_cost`
  /// is added to each clock after max-synchronization.  Thread backend
  /// only: raw pointers cannot cross address spaces, so the process
  /// backend throws ProtocolError (use the typed collectives instead).
  void exchange(const void* mine, double comm_cost,
                const std::function<void(const std::vector<const void*>&)>& consume);

  /// Broadcast `count` elements from `root`'s buffer into every rank's.
  template <typename T>
  void broadcast(T* data, std::size_t count, int root);

  template <typename T>
  void broadcast_value(T& value, int root) {
    broadcast(&value, 1, root);
  }

  /// Element-wise allreduce over equal-length buffers.  `op` must be
  /// associative and commutative; contributions are combined in rank order
  /// so floating-point results are deterministic — the partitioned and
  /// leader paths fold per element in the same order and are bit-identical.
  template <typename T, typename Op>
  void allreduce(T* data, std::size_t count, Op op);

  template <typename T>
  void allreduce_sum(T* data, std::size_t count) {
    allreduce(data, count, [](T a, T b) { return a + b; });
  }

  template <typename T>
  [[nodiscard]] T allreduce_sum(T value) {
    allreduce_sum(&value, 1);
    return value;
  }

  template <typename T>
  [[nodiscard]] T allreduce_max(T value) {
    allreduce(&value, 1, [](T a, T b) { return a > b ? a : b; });
    return value;
  }

  template <typename T>
  [[nodiscard]] T allreduce_min(T value) {
    allreduce(&value, 1, [](T a, T b) { return a < b ? a : b; });
    return value;
  }

  /// Gathers one value per rank; result on every rank (allgather).
  template <typename T>
  [[nodiscard]] std::vector<T> allgather(const T& value);

  /// Gathers variable-length contributions; result (rank-ordered
  /// concatenation) on every rank.  The modeled charge is computed from
  /// the summed contribution sizes observed inside the exchange.
  template <typename T>
  [[nodiscard]] std::vector<T> allgatherv(std::span<const T> mine);

  /// Gathers variable-length contributions to `root`; other ranks receive
  /// an empty vector.  Charged as a tree gather of the summed sizes.
  template <typename T>
  [[nodiscard]] std::vector<T> gatherv(std::span<const T> mine, int root);

  /// Exclusive prefix sum of one value per rank (rank 0 gets T{}).
  template <typename T>
  [[nodiscard]] T exscan_sum(const T& value);

  // ---- collective object creation -------------------------------------

  /// All ranks call this with the same factory.  Thread backend: rank 0
  /// runs it and everyone returns the same shared_ptr.  Process and
  /// socket backends: every rank runs the factory and keeps its own
  /// replica (a shared_ptr cannot cross address spaces), so the factory
  /// must be deterministic
  /// and must not itself issue collectives — hoist collective sub-steps
  /// (GlobalArray::create, create_shared_region, ...) before the call, as
  /// the task-queue factories do.
  template <typename T>
  std::shared_ptr<T> collective_create(const std::function<std::shared_ptr<T>()>& factory);

  /// Collective: zero-filled memory of `bytes` shared by every rank (one
  /// allocation for threads, a shm segment mapped per rank for
  /// processes).  Synchronizes internally without a modeled charge.
  /// Store offsets or rank-local pointers inside the region, never
  /// absolute pointers.
  [[nodiscard]] std::shared_ptr<void> create_shared_region(std::size_t bytes) {
    return world_.transport().create_region(rank_, bytes);
  }

 private:
  // ---- round engine ----------------------------------------------------
  // Every collective is built from at most two arrival rounds on the
  // transport.  sync_round publishes this rank's clock and lets the
  // round's last arriver fold the max (plus run `on_last` while it owns
  // the round); fence_round is an arrival-only departure fence for
  // zero-copy payloads.  finish_round applies the post-round clock:
  // vtime = folded max + modeled cost, and restarts the CPU baseline so
  // in-window combine work is not double-charged.

  template <typename OnLast>
  void sync_round(OnLast&& on_last) {
    using Fn = std::remove_reference_t<OnLast>;
    synced_clock_ = world_.transport().sync(
        rank_, vtime_, [](void* arg) { (*static_cast<Fn*>(arg))(); },
        const_cast<void*>(static_cast<const void*>(&on_last)));
  }
  void sync_round() {
    synced_clock_ = world_.transport().sync(rank_, vtime_, nullptr, nullptr);
  }
  void fence_round() { world_.transport().fence(rank_); }
  void finish_round(double extra_cost);

  /// Flips the slot/scratch parity; every rank executes the same
  /// collective sequence, so the per-rank counters stay in lockstep.
  std::uint32_t next_parity() { return static_cast<std::uint32_t>(data_round_++ & 1U); }

  /// Publishes this rank's contribution for the current data round,
  /// staging it into transport scratch when `copy` is set (the scratch
  /// only ever grows: steady-state collectives allocate nothing).
  void publish(std::uint32_t parity, const void* ptr, std::size_t bytes, bool copy) {
    world_.transport().publish(parity, rank_, ptr, bytes, copy);
  }

  /// Contiguous element block [begin, end) combined by `rank` in the
  /// partitioned allreduce; identical on every rank.
  static std::pair<std::size_t, std::size_t> element_block(std::size_t count, int rank,
                                                           int nprocs) {
    const auto p = static_cast<std::size_t>(nprocs);
    const auto r = static_cast<std::size_t>(rank);
    const std::size_t per = count / p;
    const std::size_t rem = count % p;
    const std::size_t begin = r * per + std::min(r, rem);
    return {begin, begin + per + (r < rem ? 1 : 0)};
  }

  World& world_;
  int rank_;
  double vtime_ = 0.0;
  double cpu_mark_;
  double synced_clock_ = 0.0;
  std::uint64_t data_round_ = 0;
};

/// Result of one SPMD run.
struct SpmdResult {
  double max_vtime = 0.0;              ///< modeled duration of the run
  std::vector<double> rank_vtimes;     ///< per-rank final clocks
  double wall_seconds = 0.0;           ///< actual host wall-clock
};

/// Launches `options.nprocs` ranks executing `fn` on the selected
/// transport backend.  Rethrows the first rank exception.  `nprocs` may
/// exceed the hardware concurrency; the virtual-time model keeps timing
/// meaningful.
SpmdResult spmd_run(const SpmdOptions& options, const std::function<void(Context&)>& fn);

/// \deprecated Classic entry point; prefer
/// `spmd_run(SpmdOptions{.nprocs = P, .comm_model = model}, fn)`.  Kept
/// as a thin wrapper (thread backend) so existing call sites compile
/// unmodified; see the README migration table.
SpmdResult spmd_run(int nprocs, const CommModel& model,
                    const std::function<void(Context&)>& fn);

/// \deprecated Classic entry point with the default cluster model; prefer
/// `spmd_run(SpmdOptions{.nprocs = P}, fn)`.
SpmdResult spmd_run(int nprocs, const std::function<void(Context&)>& fn);

/// Broadcasts a variable-length byte buffer from `root`: the size first,
/// then the payload (non-root buffers are resized to fit).  The shard
/// merger and the checkpoint loader ship their serialized blobs this way.
inline void broadcast_bytes(Context& ctx, std::vector<std::uint8_t>& bytes, int root) {
  auto size = static_cast<std::uint64_t>(bytes.size());
  ctx.broadcast_value(size, root);
  if (ctx.rank() != root) bytes.resize(static_cast<std::size_t>(size));
  if (size > 0) ctx.broadcast(bytes.data(), bytes.size(), root);
}

// ===== template implementations =========================================

template <typename T>
void Context::broadcast(T* data, std::size_t count, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  require(root >= 0 && root < nprocs(), "broadcast: bad root");
  sample_compute();
  const std::size_t bytes = count * sizeof(T);
  const double cost = model().broadcast(nprocs(), bytes);
  const std::uint32_t par = next_parity();
  // `bytes` is identical on every rank, so the path choice is collective.
  const bool staged = bytes <= model().host_copy_max_bytes;
  if (rank_ == root) publish(par, data, bytes, staged);
  sync_round();
  if (rank_ != root) {
    const T* src = static_cast<const T*>(
        world_.transport().peers(par)[static_cast<std::size_t>(root)].ptr);
    std::copy(src, src + count, data);
  }
  if (!staged) fence_round();  // root's buffer may be reused after return
  finish_round(cost);
}

template <typename T, typename Op>
void Context::allreduce(T* data, std::size_t count, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  sample_compute();
  const std::size_t bytes = count * sizeof(T);
  const double cost = model().allreduce(nprocs(), bytes);
  const int np = nprocs();
  const std::uint32_t par = next_parity();
  Transport& tp = world_.transport();
  const detail::PeerSlot* slots = tp.peers(par);
  if (bytes <= model().host_leader_max_bytes || np == 1) {
    // Leader combines: the round's last arriver folds every contribution
    // (rank order per element) into the shared combine buffer; one round,
    // and the staged copies make the contributions outlive the fold.
    publish(par, data, bytes, /*copy=*/true);
    sync_round([&] {
      tp.ensure_reduce_capacity(bytes);
      T* acc = static_cast<T*>(tp.reduce_base());
      const T* first = static_cast<const T*>(slots[0].ptr);
      std::copy(first, first + count, acc);
      for (int r = 1; r < np; ++r) {
        const T* src = static_cast<const T*>(slots[static_cast<std::size_t>(r)].ptr);
        for (std::size_t i = 0; i < count; ++i) acc[i] = op(acc[i], src[i]);
      }
    });
    const T* acc = static_cast<const T*>(tp.reduce_base());
    std::copy(acc, acc + count, data);
  } else if (!tp.shared_combine()) {
    // Wire partitioned combining (reduce-scatter + allgather as two framed
    // rounds, socket backend): each rank ships every peer only that peer's
    // contiguous element block, folds the received slices in rank order —
    // the same per-element fold order as the shared-memory paths, so
    // results stay bit-identical — then a second round allgathers the
    // folded blocks.  Both rounds publish the same unchanged clock, so the
    // folded max (and therefore vtime) matches the one-round backends.
    for (int q = 0; q < np; ++q) {
      const auto [qb, qe] = element_block(count, q, np);
      tp.publish_to(par, rank_, q, data + qb, (qe - qb) * sizeof(T));
    }
    sync_round([&] { tp.ensure_reduce_capacity(bytes); });
    const auto [eb, ee] = element_block(count, rank_, np);
    const std::size_t mine = ee - eb;
    T* acc = static_cast<T*>(tp.reduce_base());
    for (std::size_t i = 0; i < mine; ++i) {
      T v = static_cast<const T*>(slots[0].ptr)[i];
      for (int r = 1; r < np; ++r) {
        v = op(v, static_cast<const T*>(slots[static_cast<std::size_t>(r)].ptr)[i]);
      }
      acc[i] = v;
    }
    const std::uint32_t par2 = next_parity();
    publish(par2, acc, mine * sizeof(T), /*copy=*/true);
    sync_round();
    const detail::PeerSlot* blocks = tp.peers(par2);
    std::size_t cursor = 0;
    for (int r = 0; r < np; ++r) {
      const auto& s = blocks[static_cast<std::size_t>(r)];
      const T* src = static_cast<const T*>(s.ptr);
      std::copy(src, src + s.bytes / sizeof(T), data + cursor);
      cursor += s.bytes / sizeof(T);
    }
  } else {
    // Partitioned combining (reduce-scatter + allgather): contributions
    // stay zero-copy in the callers' buffers (the process backend stages
    // them in the shared mapping instead); each rank folds only its
    // contiguous element block — same rank order per element, so results
    // are bit-identical to the leader path — then a departure fence
    // protects the source buffers and everyone copies the assembled
    // result out.
    publish(par, data, bytes, /*copy=*/false);
    sync_round([&] { tp.ensure_reduce_capacity(bytes); });
    const auto [eb, ee] = element_block(count, rank_, np);
    T* acc = static_cast<T*>(tp.reduce_base());
    const T* first = static_cast<const T*>(slots[0].ptr);
    for (std::size_t i = eb; i < ee; ++i) {
      T v = first[i];
      for (int r = 1; r < np; ++r) {
        v = op(v, static_cast<const T*>(slots[static_cast<std::size_t>(r)].ptr)[i]);
      }
      acc[i] = v;
    }
    fence_round();  // every block folded, every source read complete
    std::copy(acc, acc + count, data);
  }
  finish_round(cost);
}

template <typename T>
std::vector<T> Context::allgather(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  sample_compute();
  const double cost = model().allgather(nprocs(), sizeof(T));
  std::vector<T> out(static_cast<std::size_t>(nprocs()));
  const std::uint32_t par = next_parity();
  publish(par, &value, sizeof(T), /*copy=*/true);
  sync_round();
  const detail::PeerSlot* slots = world_.transport().peers(par);
  for (int r = 0; r < nprocs(); ++r) {
    out[static_cast<std::size_t>(r)] =
        *static_cast<const T*>(slots[static_cast<std::size_t>(r)].ptr);
  }
  finish_round(cost);
  return out;
}

template <typename T>
std::vector<T> Context::allgatherv(std::span<const T> mine) {
  static_assert(std::is_trivially_copyable_v<T>);
  sample_compute();
  const std::size_t my_bytes = mine.size_bytes();
  const std::uint32_t par = next_parity();
  // Small contributions are staged (one round); oversized ones stay
  // zero-copy and force a departure fence, which every rank detects from
  // the published `copied` flags — the decision needs no extra round.
  publish(par, mine.data(), my_bytes, my_bytes <= model().host_vstage_max_bytes);
  sync_round();
  const detail::PeerSlot* slots = world_.transport().peers(par);
  std::size_t total = 0;
  bool any_raw = false;
  for (int r = 0; r < nprocs(); ++r) {
    const auto& s = slots[static_cast<std::size_t>(r)];
    total += s.bytes;
    any_raw = any_raw || !s.copied;
  }
  std::vector<T> out;
  out.reserve(total / sizeof(T));
  for (int r = 0; r < nprocs(); ++r) {
    const auto& s = slots[static_cast<std::size_t>(r)];
    if (s.bytes == 0) continue;
    const T* src = static_cast<const T*>(s.ptr);
    out.insert(out.end(), src, src + s.bytes / sizeof(T));
  }
  if (any_raw) fence_round();
  // Ring allgather of the true moved volume: average chunk over the
  // summed sizes (uniform across ranks — vtime stays synchronized).
  const std::size_t avg =
      (total + static_cast<std::size_t>(nprocs()) - 1) / static_cast<std::size_t>(nprocs());
  finish_round(model().allgather(nprocs(), std::max<std::size_t>(avg, sizeof(T))));
  return out;
}

template <typename T>
std::vector<T> Context::gatherv(std::span<const T> mine, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  require(root >= 0 && root < nprocs(), "gatherv: bad root");
  sample_compute();
  const std::size_t my_bytes = mine.size_bytes();
  const std::uint32_t par = next_parity();
  publish(par, mine.data(), my_bytes, my_bytes <= model().host_vstage_max_bytes);
  sync_round();
  const detail::PeerSlot* slots = world_.transport().peers(par);
  std::size_t total = 0;
  bool any_raw = false;
  for (int r = 0; r < nprocs(); ++r) {
    const auto& s = slots[static_cast<std::size_t>(r)];
    total += s.bytes;
    any_raw = any_raw || !s.copied;
  }
  std::vector<T> out;
  if (rank_ == root) {
    out.reserve(total / sizeof(T));
    for (int r = 0; r < nprocs(); ++r) {
      const auto& s = slots[static_cast<std::size_t>(r)];
      if (s.bytes == 0) continue;
      const T* src = static_cast<const T*>(s.ptr);
      out.insert(out.end(), src, src + s.bytes / sizeof(T));
    }
  }
  if (any_raw) fence_round();
  // Tree gather of the true total payload (previously this under-charged
  // by modeling only the local contribution).
  finish_round(model().gather(nprocs(), std::max<std::size_t>(total, sizeof(T))));
  return out;
}

template <typename T>
T Context::exscan_sum(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  sample_compute();
  const double cost = model().reduce(nprocs(), sizeof(T));
  const std::uint32_t par = next_parity();
  publish(par, &value, sizeof(T), /*copy=*/true);
  sync_round();
  const detail::PeerSlot* slots = world_.transport().peers(par);
  T acc{};
  for (int r = 0; r < rank_; ++r) {
    acc = acc + *static_cast<const T*>(slots[static_cast<std::size_t>(r)].ptr);
  }
  finish_round(cost);
  return acc;
}

template <typename T>
std::shared_ptr<T> Context::collective_create(
    const std::function<std::shared_ptr<T>()>& factory) {
  if (!world_.transport().shared_address()) {
    // Disjoint address spaces (process, socket): every rank materializes
    // its own replica from the (deterministic) factory.  Same two rounds
    // as the thread path so modeled time stays aligned across backends.
    std::shared_ptr<T> result = factory();
    barrier();
    barrier();
    return result;
  }
  std::shared_ptr<T> result;
  if (rank_ == 0) {
    result = factory();
    world_.create_slot_ = result;
  }
  barrier();
  result = std::static_pointer_cast<T>(world_.create_slot_);
  barrier();
  if (rank_ == 0) world_.create_slot_.reset();
  return result;
}

}  // namespace sva::ga
