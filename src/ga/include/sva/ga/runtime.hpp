// SPMD runtime: the Global-Arrays-style substrate the paper's engine runs
// on.  `spmd_run(P, model, fn)` launches P ranks (one thread each), every
// rank executes `fn(Context&)`, and the runtime provides:
//
//   * collectives — barrier, broadcast, reduce/allreduce, gather(v),
//     allgather(v), exclusive scan — with LogGP-modeled costs;
//   * virtual time — per-rank clocks combining measured thread-CPU compute
//     with modeled communication (see comm_model.hpp);
//   * collective object creation — the hook GlobalArray / DistHashmap /
//     task queues use to materialize shared state.
//
// Protocol: like MPI/GA, all ranks must issue collectives in the same
// order.  If any rank throws, the runtime aborts the remaining ranks at
// their next synchronization point and rethrows the first exception from
// spmd_run.
//
// Host fast path (see README "GA substrate performance"): synchronization
// is an epoch-counting sense-reversing barrier — one atomic arrival per
// rank, the last arriver folds the virtual clocks and releases the epoch;
// waiters spin briefly, then park on the epoch word (futex).  Collectives
// that can stage their payload in World-owned scratch complete in a
// single arrival round; zero-copy paths add one departure fence so caller
// buffers stay readable until every peer is done.  Allreduce combines
// partitioned: each rank reduces only its contiguous element block (in
// rank order per element, so results are bit-identical to a serial
// rank-order fold), with a leader-combines fallback for small payloads.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "sva/ga/comm_model.hpp"
#include "sva/util/error.hpp"
#include "sva/util/timer.hpp"

namespace sva::ga {

class Context;

namespace detail {

inline constexpr std::size_t kCacheLine = 64;

/// Spin budget before parking: on an oversubscribed host (more ranks than
/// cores) spinning only steals cycles from the rank being waited for, so
/// the barrier parks immediately.
int default_spin_iters(int nprocs);

/// Central epoch-counting (sense-reversing) barrier with abort support.
/// One `fetch_add` per arrival; the last arriver runs a callback while it
/// exclusively owns the round, then releases everyone by bumping the
/// epoch word and waking parked waiters.  Counter and epoch live on
/// separate cache lines so arrivals don't bounce the waiters' line.
class SpinBarrier {
 public:
  SpinBarrier(int nprocs, int spin_iters) : nprocs_(nprocs), spin_iters_(spin_iters) {}

  /// Arrives at the current round; the last rank runs `on_last()` before
  /// any waiter is released.  Throws ProtocolError if the world has been
  /// aborted (some rank threw).
  template <typename OnLast>
  void arrive(const std::atomic<bool>& aborted, OnLast&& on_last) {
    // Pre-abort this load is exact under coherence: the epoch cannot
    // advance without this rank's arrival, and this rank already observed
    // the value released by the previous round.  The acquire matters for
    // the abort race: if this load sees an abort_wakeup bump, it
    // synchronizes with that release, making the aborted flag (stored
    // before the bump) visible to the re-check below — without it a rank
    // could capture the post-abort epoch yet read a stale aborted=false,
    // then park on a futex nobody will ever notify again.
    const std::uint32_t epoch = epoch_.value.load(std::memory_order_acquire);
    throw_if_aborted(aborted);
    if (arrived_.value.fetch_add(1, std::memory_order_acq_rel) == nprocs_ - 1) {
      arrived_.value.store(0, std::memory_order_relaxed);
      on_last();
      // fetch_add, not store: an abort_wakeup bump racing with the round's
      // release must never be overwritten, or parked peers sleep forever.
      epoch_.value.fetch_add(1, std::memory_order_release);
      epoch_.value.notify_all();
    } else {
      wait_for_epoch(epoch, aborted);
    }
    throw_if_aborted(aborted);
  }

  void arrive(const std::atomic<bool>& aborted) {
    arrive(aborted, [] {});
  }

  /// Wakes all waiters (parked or spinning) so they can observe the abort
  /// flag.  Call only after setting the flag.
  void abort_wakeup();

 private:
  static void throw_if_aborted(const std::atomic<bool>& aborted);
  void wait_for_epoch(std::uint32_t epoch, const std::atomic<bool>& aborted) const;

  struct alignas(kCacheLine) PaddedEpoch {
    std::atomic<std::uint32_t> value{0};
  };
  struct alignas(kCacheLine) PaddedCount {
    std::atomic<int> value{0};
  };
  PaddedEpoch epoch_;
  PaddedCount arrived_;
  int nprocs_;
  int spin_iters_;
};

/// Publication slot for one rank's collective contribution.  Padded so
/// concurrent publishes never share a cache line.
struct alignas(kCacheLine) ExSlot {
  const void* ptr = nullptr;
  std::size_t bytes = 0;
  /// Payload was staged into World scratch (stable storage): readers need
  /// no departure fence before the contributor reuses its own buffer.
  bool copied = false;
};

/// Reusable per-rank payload staging buffer (padded vector header).
struct alignas(kCacheLine) Scratch {
  std::vector<std::uint8_t> buf;
};

/// Per-rank virtual clock slot, folded to a max by each round's last
/// arriver.
struct alignas(kCacheLine) ClockSlot {
  double v = 0.0;
};

}  // namespace detail

/// Shared state of one SPMD world.  Users never construct this directly;
/// it is owned by spmd_run and surfaced through Context.
class World {
 public:
  World(int nprocs, CommModel model);

  [[nodiscard]] int nprocs() const { return nprocs_; }
  [[nodiscard]] const CommModel& model() const { return model_; }

  // Internal state below: accessed by Context and the spmd_run launcher.
  // Not part of the public API surface.
  int nprocs_;
  CommModel model_;
  detail::SpinBarrier barrier_;
  std::atomic<bool> aborted_{false};

  // Publication slots and staging scratch for collectives, double-buffered
  // by data-round parity: a one-round collective's readers of parity p are
  // provably done before parity p is written again (the next arrival round
  // sits in between), so no departure fence is needed on the copy path.
  std::array<std::vector<detail::ExSlot>, 2> slots_;
  std::array<std::vector<detail::Scratch>, 2> scratch_;
  // Generic exchange keeps the historical consume(vector<const void*>)
  // signature; these mirror slots_[par][r].ptr for that path only.
  std::array<std::vector<const void*>, 2> ptrs_;

  // Virtual clocks: each rank publishes before arriving; the round's last
  // arriver folds the max into synced_clock_.
  std::vector<detail::ClockSlot> clocks_;
  double synced_clock_ = 0.0;

  // Shared combine target for allreduce (partitioned blocks or the
  // leader's fold); grows to the high-water payload and is reused.
  std::vector<std::uint8_t> reduce_buf_;

  // Collective object transfer: rank 0 parks a shared_ptr here between the
  // two barriers of collective_create.
  std::shared_ptr<void> create_slot_;

  // First exception thrown by any rank.
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

/// Per-rank handle: rank id, collectives, and the virtual clock.
class Context {
 public:
  Context(World& world, int rank);

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int nprocs() const { return world_.nprocs(); }
  [[nodiscard]] const CommModel& model() const { return world_.model(); }
  [[nodiscard]] World& world() { return world_; }

  // ---- virtual time ------------------------------------------------------

  /// Folds thread-CPU time accrued since the last call into the virtual
  /// clock (scaled by model().compute_scale).  Called automatically by
  /// every communication op; call manually before reading vtime().
  void sample_compute();

  /// Adds a modeled communication/IO charge to this rank's clock.
  void charge(double seconds) { vtime_ += seconds; }

  /// Current virtual time in seconds (samples compute first).
  [[nodiscard]] double vtime();

  /// Virtual time without sampling (value as of the last sync point).
  [[nodiscard]] double vtime_raw() const { return vtime_; }

  /// Overwrites the clock; used by barriers (max-synchronization) and by
  /// harnesses that reset between repetitions.
  void set_vtime(double t) { vtime_ = t; }

  /// Resets the clock and the CPU baseline to zero; collective callers
  /// should barrier first so ranks stay aligned.
  void reset_vtime();

  // ---- collectives ---------------------------------------------------

  /// Barrier: synchronizes all ranks; every clock advances to the maximum
  /// plus the modeled barrier cost.  One arrival round.
  void barrier();

  /// Generic exchange: publish `mine`, run `consume(slots)` with every
  /// rank's pointer visible, then resynchronize.  `consume` runs on every
  /// rank between the arrival round and the departure fence.  `comm_cost`
  /// is added to each clock after max-synchronization.
  void exchange(const void* mine, double comm_cost,
                const std::function<void(const std::vector<const void*>&)>& consume);

  /// Broadcast `count` elements from `root`'s buffer into every rank's.
  template <typename T>
  void broadcast(T* data, std::size_t count, int root);

  template <typename T>
  void broadcast_value(T& value, int root) {
    broadcast(&value, 1, root);
  }

  /// Element-wise allreduce over equal-length buffers.  `op` must be
  /// associative and commutative; contributions are combined in rank order
  /// so floating-point results are deterministic — the partitioned and
  /// leader paths fold per element in the same order and are bit-identical.
  template <typename T, typename Op>
  void allreduce(T* data, std::size_t count, Op op);

  template <typename T>
  void allreduce_sum(T* data, std::size_t count) {
    allreduce(data, count, [](T a, T b) { return a + b; });
  }

  template <typename T>
  [[nodiscard]] T allreduce_sum(T value) {
    allreduce_sum(&value, 1);
    return value;
  }

  template <typename T>
  [[nodiscard]] T allreduce_max(T value) {
    allreduce(&value, 1, [](T a, T b) { return a > b ? a : b; });
    return value;
  }

  template <typename T>
  [[nodiscard]] T allreduce_min(T value) {
    allreduce(&value, 1, [](T a, T b) { return a < b ? a : b; });
    return value;
  }

  /// Gathers one value per rank; result on every rank (allgather).
  template <typename T>
  [[nodiscard]] std::vector<T> allgather(const T& value);

  /// Gathers variable-length contributions; result (rank-ordered
  /// concatenation) on every rank.  The modeled charge is computed from
  /// the summed contribution sizes observed inside the exchange.
  template <typename T>
  [[nodiscard]] std::vector<T> allgatherv(std::span<const T> mine);

  /// Gathers variable-length contributions to `root`; other ranks receive
  /// an empty vector.  Charged as a tree gather of the summed sizes.
  template <typename T>
  [[nodiscard]] std::vector<T> gatherv(std::span<const T> mine, int root);

  /// Exclusive prefix sum of one value per rank (rank 0 gets T{}).
  template <typename T>
  [[nodiscard]] T exscan_sum(const T& value);

  // ---- collective object creation -------------------------------------

  /// All ranks call this with the same factory; rank 0 runs it, everyone
  /// returns the same shared_ptr.  Used by GlobalArray et al.
  template <typename T>
  std::shared_ptr<T> collective_create(const std::function<std::shared_ptr<T>()>& factory);

 private:
  // ---- round engine ----------------------------------------------------
  // Every collective is built from at most two arrival rounds on the
  // world barrier.  sync_round publishes this rank's clock and lets the
  // round's last arriver fold the max (plus run `on_last` while it owns
  // the round); fence_round is an arrival-only departure fence for
  // zero-copy payloads.  finish_round applies the post-round clock:
  // vtime = folded max + modeled cost, and restarts the CPU baseline so
  // in-window combine work is not double-charged.

  template <typename OnLast>
  void sync_round(OnLast&& on_last) {
    world_.clocks_[static_cast<std::size_t>(rank_)].v = vtime_;
    world_.barrier_.arrive(world_.aborted_, [&] {
      double mx = 0.0;
      for (const auto& c : world_.clocks_) mx = std::max(mx, c.v);
      world_.synced_clock_ = mx;
      on_last();
    });
  }
  void sync_round() {
    sync_round([] {});
  }
  void fence_round() { world_.barrier_.arrive(world_.aborted_); }
  void finish_round(double extra_cost);

  /// Flips the slot/scratch parity; every rank executes the same
  /// collective sequence, so the per-rank counters stay in lockstep.
  std::uint32_t next_parity() { return static_cast<std::uint32_t>(data_round_++ & 1U); }

  /// Publishes this rank's contribution for the current data round,
  /// staging it into World scratch when `copy` is set (the scratch only
  /// ever grows: steady-state collectives allocate nothing).
  detail::ExSlot& publish(std::uint32_t parity, const void* ptr, std::size_t bytes,
                          bool copy) {
    auto& slot = world_.slots_[parity][static_cast<std::size_t>(rank_)];
    if (copy && bytes > 0) {
      auto& buf = world_.scratch_[parity][static_cast<std::size_t>(rank_)].buf;
      if (buf.size() < bytes) buf.resize(bytes);
      std::memcpy(buf.data(), ptr, bytes);
      slot.ptr = buf.data();
    } else {
      slot.ptr = ptr;
    }
    slot.bytes = bytes;
    slot.copied = copy || bytes == 0;
    return slot;
  }

  /// Contiguous element block [begin, end) combined by `rank` in the
  /// partitioned allreduce; identical on every rank.
  static std::pair<std::size_t, std::size_t> element_block(std::size_t count, int rank,
                                                           int nprocs) {
    const auto p = static_cast<std::size_t>(nprocs);
    const auto r = static_cast<std::size_t>(rank);
    const std::size_t per = count / p;
    const std::size_t rem = count % p;
    const std::size_t begin = r * per + std::min(r, rem);
    return {begin, begin + per + (r < rem ? 1 : 0)};
  }

  World& world_;
  int rank_;
  double vtime_ = 0.0;
  double cpu_mark_;
  std::uint64_t data_round_ = 0;
};

/// Result of one SPMD run.
struct SpmdResult {
  double max_vtime = 0.0;              ///< modeled duration of the run
  std::vector<double> rank_vtimes;     ///< per-rank final clocks
  double wall_seconds = 0.0;           ///< actual host wall-clock
};

/// Launches `nprocs` ranks executing `fn`.  Rethrows the first rank
/// exception.  `nprocs` may exceed the hardware concurrency; ranks are
/// plain threads and the virtual-time model keeps timing meaningful.
SpmdResult spmd_run(int nprocs, const CommModel& model,
                    const std::function<void(Context&)>& fn);

/// Convenience overload with the default cluster model.
SpmdResult spmd_run(int nprocs, const std::function<void(Context&)>& fn);

/// Broadcasts a variable-length byte buffer from `root`: the size first,
/// then the payload (non-root buffers are resized to fit).  The shard
/// merger and the checkpoint loader ship their serialized blobs this way.
inline void broadcast_bytes(Context& ctx, std::vector<std::uint8_t>& bytes, int root) {
  auto size = static_cast<std::uint64_t>(bytes.size());
  ctx.broadcast_value(size, root);
  if (ctx.rank() != root) bytes.resize(static_cast<std::size_t>(size));
  if (size > 0) ctx.broadcast(bytes.data(), bytes.size(), root);
}

// ===== template implementations =========================================

template <typename T>
void Context::broadcast(T* data, std::size_t count, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  require(root >= 0 && root < nprocs(), "broadcast: bad root");
  sample_compute();
  const std::size_t bytes = count * sizeof(T);
  const double cost = model().broadcast(nprocs(), bytes);
  const std::uint32_t par = next_parity();
  // `bytes` is identical on every rank, so the path choice is collective.
  const bool staged = bytes <= model().host_copy_max_bytes;
  if (rank_ == root) publish(par, data, bytes, staged);
  sync_round();
  if (rank_ != root) {
    const T* src =
        static_cast<const T*>(world_.slots_[par][static_cast<std::size_t>(root)].ptr);
    std::copy(src, src + count, data);
  }
  if (!staged) fence_round();  // root's buffer may be reused after return
  finish_round(cost);
}

template <typename T, typename Op>
void Context::allreduce(T* data, std::size_t count, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  sample_compute();
  const std::size_t bytes = count * sizeof(T);
  const double cost = model().allreduce(nprocs(), bytes);
  const int np = nprocs();
  const std::uint32_t par = next_parity();
  auto& slots = world_.slots_[par];
  if (bytes <= model().host_leader_max_bytes || np == 1) {
    // Leader combines: the round's last arriver folds every contribution
    // (rank order per element) into reduce_buf_; one round, and the
    // staged copies make the contributions outlive the fold.
    publish(par, data, bytes, /*copy=*/true);
    sync_round([&] {
      if (world_.reduce_buf_.size() < bytes) world_.reduce_buf_.resize(bytes);
      T* acc = reinterpret_cast<T*>(world_.reduce_buf_.data());
      const T* first = static_cast<const T*>(slots[0].ptr);
      std::copy(first, first + count, acc);
      for (int r = 1; r < np; ++r) {
        const T* src = static_cast<const T*>(slots[static_cast<std::size_t>(r)].ptr);
        for (std::size_t i = 0; i < count; ++i) acc[i] = op(acc[i], src[i]);
      }
    });
    const T* acc = reinterpret_cast<const T*>(world_.reduce_buf_.data());
    std::copy(acc, acc + count, data);
  } else {
    // Partitioned combining (reduce-scatter + allgather): contributions
    // stay zero-copy in the callers' buffers; each rank folds only its
    // contiguous element block — same rank order per element, so results
    // are bit-identical to the leader path — then a departure fence
    // protects the source buffers and everyone copies the assembled
    // result out.
    publish(par, data, bytes, /*copy=*/false);
    sync_round([&] {
      if (world_.reduce_buf_.size() < bytes) world_.reduce_buf_.resize(bytes);
    });
    const auto [eb, ee] = element_block(count, rank_, np);
    T* acc = reinterpret_cast<T*>(world_.reduce_buf_.data());
    const T* first = static_cast<const T*>(slots[0].ptr);
    for (std::size_t i = eb; i < ee; ++i) {
      T v = first[i];
      for (int r = 1; r < np; ++r) {
        v = op(v, static_cast<const T*>(slots[static_cast<std::size_t>(r)].ptr)[i]);
      }
      acc[i] = v;
    }
    fence_round();  // every block folded, every source read complete
    std::copy(acc, acc + count, data);
  }
  finish_round(cost);
}

template <typename T>
std::vector<T> Context::allgather(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  sample_compute();
  const double cost = model().allgather(nprocs(), sizeof(T));
  std::vector<T> out(static_cast<std::size_t>(nprocs()));
  const std::uint32_t par = next_parity();
  publish(par, &value, sizeof(T), /*copy=*/true);
  sync_round();
  const auto& slots = world_.slots_[par];
  for (int r = 0; r < nprocs(); ++r) {
    out[static_cast<std::size_t>(r)] =
        *static_cast<const T*>(slots[static_cast<std::size_t>(r)].ptr);
  }
  finish_round(cost);
  return out;
}

template <typename T>
std::vector<T> Context::allgatherv(std::span<const T> mine) {
  static_assert(std::is_trivially_copyable_v<T>);
  sample_compute();
  const std::size_t my_bytes = mine.size_bytes();
  const std::uint32_t par = next_parity();
  // Small contributions are staged (one round); oversized ones stay
  // zero-copy and force a departure fence, which every rank detects from
  // the published `copied` flags — the decision needs no extra round.
  publish(par, mine.data(), my_bytes, my_bytes <= model().host_vstage_max_bytes);
  sync_round();
  const auto& slots = world_.slots_[par];
  std::size_t total = 0;
  bool any_raw = false;
  for (int r = 0; r < nprocs(); ++r) {
    const auto& s = slots[static_cast<std::size_t>(r)];
    total += s.bytes;
    any_raw = any_raw || !s.copied;
  }
  std::vector<T> out;
  out.reserve(total / sizeof(T));
  for (int r = 0; r < nprocs(); ++r) {
    const auto& s = slots[static_cast<std::size_t>(r)];
    if (s.bytes == 0) continue;
    const T* src = static_cast<const T*>(s.ptr);
    out.insert(out.end(), src, src + s.bytes / sizeof(T));
  }
  if (any_raw) fence_round();
  // Ring allgather of the true moved volume: average chunk over the
  // summed sizes (uniform across ranks — vtime stays synchronized).
  const std::size_t avg =
      (total + static_cast<std::size_t>(nprocs()) - 1) / static_cast<std::size_t>(nprocs());
  finish_round(model().allgather(nprocs(), std::max<std::size_t>(avg, sizeof(T))));
  return out;
}

template <typename T>
std::vector<T> Context::gatherv(std::span<const T> mine, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  require(root >= 0 && root < nprocs(), "gatherv: bad root");
  sample_compute();
  const std::size_t my_bytes = mine.size_bytes();
  const std::uint32_t par = next_parity();
  publish(par, mine.data(), my_bytes, my_bytes <= model().host_vstage_max_bytes);
  sync_round();
  const auto& slots = world_.slots_[par];
  std::size_t total = 0;
  bool any_raw = false;
  for (int r = 0; r < nprocs(); ++r) {
    const auto& s = slots[static_cast<std::size_t>(r)];
    total += s.bytes;
    any_raw = any_raw || !s.copied;
  }
  std::vector<T> out;
  if (rank_ == root) {
    out.reserve(total / sizeof(T));
    for (int r = 0; r < nprocs(); ++r) {
      const auto& s = slots[static_cast<std::size_t>(r)];
      if (s.bytes == 0) continue;
      const T* src = static_cast<const T*>(s.ptr);
      out.insert(out.end(), src, src + s.bytes / sizeof(T));
    }
  }
  if (any_raw) fence_round();
  // Tree gather of the true total payload (previously this under-charged
  // by modeling only the local contribution).
  finish_round(model().gather(nprocs(), std::max<std::size_t>(total, sizeof(T))));
  return out;
}

template <typename T>
T Context::exscan_sum(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  sample_compute();
  const double cost = model().reduce(nprocs(), sizeof(T));
  const std::uint32_t par = next_parity();
  publish(par, &value, sizeof(T), /*copy=*/true);
  sync_round();
  const auto& slots = world_.slots_[par];
  T acc{};
  for (int r = 0; r < rank_; ++r) {
    acc = acc + *static_cast<const T*>(slots[static_cast<std::size_t>(r)].ptr);
  }
  finish_round(cost);
  return acc;
}

template <typename T>
std::shared_ptr<T> Context::collective_create(
    const std::function<std::shared_ptr<T>()>& factory) {
  std::shared_ptr<T> result;
  if (rank_ == 0) {
    result = factory();
    world_.create_slot_ = result;
  }
  barrier();
  result = std::static_pointer_cast<T>(world_.create_slot_);
  barrier();
  if (rank_ == 0) world_.create_slot_.reset();
  return result;
}

}  // namespace sva::ga
