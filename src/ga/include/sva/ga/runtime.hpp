// SPMD runtime: the Global-Arrays-style substrate the paper's engine runs
// on.  `spmd_run(P, model, fn)` launches P ranks (one thread each), every
// rank executes `fn(Context&)`, and the runtime provides:
//
//   * collectives — barrier, broadcast, reduce/allreduce, gather(v),
//     allgather(v), exclusive scan — with LogGP-modeled costs;
//   * virtual time — per-rank clocks combining measured thread-CPU compute
//     with modeled communication (see comm_model.hpp);
//   * collective object creation — the hook GlobalArray / DistHashmap /
//     task queues use to materialize shared state.
//
// Protocol: like MPI/GA, all ranks must issue collectives in the same
// order.  If any rank throws, the runtime aborts the remaining ranks at
// their next synchronization point and rethrows the first exception from
// spmd_run.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "sva/ga/comm_model.hpp"
#include "sva/util/error.hpp"
#include "sva/util/timer.hpp"

namespace sva::ga {

class Context;

namespace detail {

/// Central sense-counting barrier with abort support.
class RawBarrier {
 public:
  explicit RawBarrier(int nprocs) : nprocs_(nprocs) {}

  /// Blocks until all ranks arrive.  Throws ProtocolError if the world has
  /// been aborted (some rank threw).
  void wait(const std::atomic<bool>& aborted);

  /// Wakes all waiters so they can observe the abort flag.
  void abort_wakeup();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int nprocs_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace detail

/// Shared state of one SPMD world.  Users never construct this directly;
/// it is owned by spmd_run and surfaced through Context.
class World {
 public:
  World(int nprocs, CommModel model);

  [[nodiscard]] int nprocs() const { return nprocs_; }
  [[nodiscard]] const CommModel& model() const { return model_; }

  // Internal state below: accessed by Context and the spmd_run launcher.
  // Not part of the public API surface.
  int nprocs_;
  CommModel model_;
  detail::RawBarrier barrier_;
  std::atomic<bool> aborted_{false};

  // Publication slots for the generic exchange primitive: each rank posts a
  // pointer to its contribution, synchronizes, reads peers, synchronizes.
  std::vector<const void*> slots_;
  std::vector<double> clock_slots_;

  // Collective object transfer: rank 0 parks a shared_ptr here between the
  // two barriers of collective_create.
  std::shared_ptr<void> create_slot_;

  // First exception thrown by any rank.
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

/// Per-rank handle: rank id, collectives, and the virtual clock.
class Context {
 public:
  Context(World& world, int rank);

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int nprocs() const { return world_.nprocs(); }
  [[nodiscard]] const CommModel& model() const { return world_.model(); }
  [[nodiscard]] World& world() { return world_; }

  // ---- virtual time ------------------------------------------------------

  /// Folds thread-CPU time accrued since the last call into the virtual
  /// clock (scaled by model().compute_scale).  Called automatically by
  /// every communication op; call manually before reading vtime().
  void sample_compute();

  /// Adds a modeled communication/IO charge to this rank's clock.
  void charge(double seconds) { vtime_ += seconds; }

  /// Current virtual time in seconds (samples compute first).
  [[nodiscard]] double vtime();

  /// Virtual time without sampling (value as of the last sync point).
  [[nodiscard]] double vtime_raw() const { return vtime_; }

  /// Overwrites the clock; used by barriers (max-synchronization) and by
  /// harnesses that reset between repetitions.
  void set_vtime(double t) { vtime_ = t; }

  /// Resets the clock and the CPU baseline to zero; collective callers
  /// should barrier first so ranks stay aligned.
  void reset_vtime();

  // ---- collectives ---------------------------------------------------

  /// Barrier: synchronizes all ranks; every clock advances to the maximum
  /// plus the modeled barrier cost.
  void barrier();

  /// Generic exchange: publish `mine`, run `consume(slots)` with every
  /// rank's pointer visible, then resynchronize.  `consume` runs on every
  /// rank between the two internal barriers.  `comm_cost` is added to each
  /// clock after max-synchronization.
  void exchange(const void* mine, double comm_cost,
                const std::function<void(const std::vector<const void*>&)>& consume);

  /// Broadcast `count` elements from `root`'s buffer into every rank's.
  template <typename T>
  void broadcast(T* data, std::size_t count, int root);

  template <typename T>
  void broadcast_value(T& value, int root) {
    broadcast(&value, 1, root);
  }

  /// Element-wise allreduce over equal-length buffers.  `op` must be
  /// associative and commutative; contributions are combined in rank order
  /// so floating-point results are deterministic.
  template <typename T, typename Op>
  void allreduce(T* data, std::size_t count, Op op);

  template <typename T>
  void allreduce_sum(T* data, std::size_t count) {
    allreduce(data, count, [](T a, T b) { return a + b; });
  }

  template <typename T>
  [[nodiscard]] T allreduce_sum(T value) {
    allreduce_sum(&value, 1);
    return value;
  }

  template <typename T>
  [[nodiscard]] T allreduce_max(T value) {
    allreduce(&value, 1, [](T a, T b) { return a > b ? a : b; });
    return value;
  }

  template <typename T>
  [[nodiscard]] T allreduce_min(T value) {
    allreduce(&value, 1, [](T a, T b) { return a < b ? a : b; });
    return value;
  }

  /// Gathers one value per rank; result on every rank (allgather).
  template <typename T>
  [[nodiscard]] std::vector<T> allgather(const T& value);

  /// Gathers variable-length contributions; result (rank-ordered
  /// concatenation) on every rank.
  template <typename T>
  [[nodiscard]] std::vector<T> allgatherv(std::span<const T> mine);

  /// Gathers variable-length contributions to `root`; other ranks receive
  /// an empty vector.
  template <typename T>
  [[nodiscard]] std::vector<T> gatherv(std::span<const T> mine, int root);

  /// Exclusive prefix sum of one value per rank (rank 0 gets T{}).
  template <typename T>
  [[nodiscard]] T exscan_sum(const T& value);

  // ---- collective object creation -------------------------------------

  /// All ranks call this with the same factory; rank 0 runs it, everyone
  /// returns the same shared_ptr.  Used by GlobalArray et al.
  template <typename T>
  std::shared_ptr<T> collective_create(const std::function<std::shared_ptr<T>()>& factory);

 private:
  void sync_clocks_max(double extra_cost);

  World& world_;
  int rank_;
  double vtime_ = 0.0;
  double cpu_mark_;
};

/// Result of one SPMD run.
struct SpmdResult {
  double max_vtime = 0.0;              ///< modeled duration of the run
  std::vector<double> rank_vtimes;     ///< per-rank final clocks
  double wall_seconds = 0.0;           ///< actual host wall-clock
};

/// Launches `nprocs` ranks executing `fn`.  Rethrows the first rank
/// exception.  `nprocs` may exceed the hardware concurrency; ranks are
/// plain threads and the virtual-time model keeps timing meaningful.
SpmdResult spmd_run(int nprocs, const CommModel& model,
                    const std::function<void(Context&)>& fn);

/// Convenience overload with the default cluster model.
SpmdResult spmd_run(int nprocs, const std::function<void(Context&)>& fn);

/// Broadcasts a variable-length byte buffer from `root`: the size first,
/// then the payload (non-root buffers are resized to fit).  The shard
/// merger and the checkpoint loader ship their serialized blobs this way.
inline void broadcast_bytes(Context& ctx, std::vector<std::uint8_t>& bytes, int root) {
  auto size = static_cast<std::uint64_t>(bytes.size());
  ctx.broadcast_value(size, root);
  if (ctx.rank() != root) bytes.resize(static_cast<std::size_t>(size));
  if (size > 0) ctx.broadcast(bytes.data(), bytes.size(), root);
}

// ===== template implementations =========================================

template <typename T>
void Context::broadcast(T* data, std::size_t count, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  require(root >= 0 && root < nprocs(), "broadcast: bad root");
  const double cost = model().broadcast(nprocs(), count * sizeof(T));
  exchange(data, cost, [&](const std::vector<const void*>& slots) {
    if (rank_ != root) {
      const T* src = static_cast<const T*>(slots[static_cast<std::size_t>(root)]);
      std::copy(src, src + count, data);
    }
  });
}

template <typename T, typename Op>
void Context::allreduce(T* data, std::size_t count, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  const double cost = model().allreduce(nprocs(), count * sizeof(T));
  std::vector<T> mine(data, data + count);
  exchange(mine.data(), cost, [&](const std::vector<const void*>& slots) {
    // Combine in rank order for determinism.
    const T* first = static_cast<const T*>(slots[0]);
    std::copy(first, first + count, data);
    for (int r = 1; r < nprocs(); ++r) {
      const T* src = static_cast<const T*>(slots[static_cast<std::size_t>(r)]);
      for (std::size_t i = 0; i < count; ++i) data[i] = op(data[i], src[i]);
    }
  });
}

template <typename T>
std::vector<T> Context::allgather(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<T> out(static_cast<std::size_t>(nprocs()));
  const double cost = model().allgather(nprocs(), sizeof(T));
  exchange(&value, cost, [&](const std::vector<const void*>& slots) {
    for (int r = 0; r < nprocs(); ++r) out[static_cast<std::size_t>(r)] =
        *static_cast<const T*>(slots[static_cast<std::size_t>(r)]);
  });
  return out;
}

template <typename T>
std::vector<T> Context::allgatherv(std::span<const T> mine) {
  static_assert(std::is_trivially_copyable_v<T>);
  struct Posting {
    const T* data;
    std::size_t count;
  };
  Posting posting{mine.data(), mine.size()};
  std::vector<T> out;
  // Cost: ring allgather with average chunk; sizes are exchanged first in
  // the same round-trip (modeled within the same charge).
  const std::size_t my_bytes = mine.size() * sizeof(T);
  const double cost = model().allgather(nprocs(), std::max<std::size_t>(my_bytes, sizeof(T)));
  exchange(&posting, cost, [&](const std::vector<const void*>& slots) {
    std::size_t total = 0;
    for (int r = 0; r < nprocs(); ++r) {
      total += static_cast<const Posting*>(slots[static_cast<std::size_t>(r)])->count;
    }
    out.reserve(total);
    for (int r = 0; r < nprocs(); ++r) {
      const auto* p = static_cast<const Posting*>(slots[static_cast<std::size_t>(r)]);
      out.insert(out.end(), p->data, p->data + p->count);
    }
  });
  return out;
}

template <typename T>
std::vector<T> Context::gatherv(std::span<const T> mine, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  require(root >= 0 && root < nprocs(), "gatherv: bad root");
  struct Posting {
    const T* data;
    std::size_t count;
  };
  Posting posting{mine.data(), mine.size()};
  std::vector<T> out;
  const double cost =
      model().reduce(nprocs(), std::max<std::size_t>(mine.size() * sizeof(T), sizeof(T)));
  exchange(&posting, cost, [&](const std::vector<const void*>& slots) {
    if (rank_ != root) return;
    std::size_t total = 0;
    for (int r = 0; r < nprocs(); ++r) {
      total += static_cast<const Posting*>(slots[static_cast<std::size_t>(r)])->count;
    }
    out.reserve(total);
    for (int r = 0; r < nprocs(); ++r) {
      const auto* p = static_cast<const Posting*>(slots[static_cast<std::size_t>(r)]);
      out.insert(out.end(), p->data, p->data + p->count);
    }
  });
  return out;
}

template <typename T>
T Context::exscan_sum(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  T out{};
  const double cost = model().reduce(nprocs(), sizeof(T));
  exchange(&value, cost, [&](const std::vector<const void*>& slots) {
    T acc{};
    for (int r = 0; r < rank_; ++r) {
      acc = acc + *static_cast<const T*>(slots[static_cast<std::size_t>(r)]);
    }
    out = acc;
  });
  return out;
}

template <typename T>
std::shared_ptr<T> Context::collective_create(
    const std::function<std::shared_ptr<T>()>& factory) {
  std::shared_ptr<T> result;
  if (rank_ == 0) {
    result = factory();
    world_.create_slot_ = result;
  }
  barrier();
  result = std::static_pointer_cast<T>(world_.create_slot_);
  barrier();
  if (rank_ == 0) world_.create_slot_.reset();
  return result;
}

}  // namespace sva::ga
