// Internal transport implementations (not installed): the thread backend
// (the historical in-process fast path, moved verbatim out of World) and
// the shared-memory multi-process backend.  runtime.cpp dispatches here
// from spmd_run; only transport.hpp is public API.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sva/ga/runtime.hpp"
#include "sva/ga/transport.hpp"

namespace sva::ga::detail {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Spin budget before parking: on an oversubscribed host (more ranks than
/// cores) spinning only steals cycles from the rank being waited for, so
/// the barrier parks immediately.
int default_spin_iters(int nprocs);

/// Central epoch-counting (sense-reversing) barrier with abort support —
/// the thread backend's arrival engine.  One `fetch_add` per arrival; the
/// last arriver runs a callback while it exclusively owns the round, then
/// releases everyone by bumping the epoch word and waking parked waiters.
/// Counter and epoch live on separate cache lines so arrivals don't
/// bounce the waiters' line.
class SpinBarrier {
 public:
  SpinBarrier(int nprocs, int spin_iters) : nprocs_(nprocs), spin_iters_(spin_iters) {}

  /// Arrives at the current round; the last rank runs `on_last()` before
  /// any waiter is released.  Throws ProtocolError if the world has been
  /// aborted (some rank threw).
  template <typename OnLast>
  void arrive(const std::atomic<std::uint32_t>& aborted, OnLast&& on_last) {
    // Pre-abort this load is exact under coherence: the epoch cannot
    // advance without this rank's arrival, and this rank already observed
    // the value released by the previous round.  The acquire matters for
    // the abort race: if this load sees an abort_wakeup bump, it
    // synchronizes with that release, making the aborted flag (stored
    // before the bump) visible to the re-check below — without it a rank
    // could capture the post-abort epoch yet read a stale aborted=false,
    // then park on a futex nobody will ever notify again.
    const std::uint32_t epoch = epoch_.value.load(std::memory_order_acquire);
    throw_if_aborted(aborted);
    if (arrived_.value.fetch_add(1, std::memory_order_acq_rel) == nprocs_ - 1) {
      arrived_.value.store(0, std::memory_order_relaxed);
      on_last();
      // fetch_add, not store: an abort_wakeup bump racing with the round's
      // release must never be overwritten, or parked peers sleep forever.
      epoch_.value.fetch_add(1, std::memory_order_release);
      epoch_.value.notify_all();
    } else {
      wait_for_epoch(epoch, aborted);
    }
    throw_if_aborted(aborted);
  }

  void arrive(const std::atomic<std::uint32_t>& aborted) {
    arrive(aborted, [] {});
  }

  /// Wakes all waiters (parked or spinning) so they can observe the abort
  /// flag.  Call only after setting the flag.
  void abort_wakeup();

 private:
  static void throw_if_aborted(const std::atomic<std::uint32_t>& aborted);
  void wait_for_epoch(std::uint32_t epoch, const std::atomic<std::uint32_t>& aborted) const;

  struct alignas(kCacheLine) PaddedEpoch {
    std::atomic<std::uint32_t> value{0};
  };
  struct alignas(kCacheLine) PaddedCount {
    std::atomic<int> value{0};
  };
  PaddedEpoch epoch_;
  PaddedCount arrived_;
  int nprocs_;
  int spin_iters_;
};

/// Reusable per-rank payload staging buffer (padded vector header).
struct alignas(kCacheLine) Scratch {
  std::vector<std::uint8_t> buf;
};

/// Per-rank virtual clock slot, folded to a max by each round's last
/// arriver.
struct alignas(kCacheLine) ClockSlot {
  double v = 0.0;
};

/// In-process backend: ranks are threads, publication slots and staging
/// scratch live in this object, arrival is the SpinBarrier — the PR 4
/// fast path re-expressed behind the Transport seam, byte-for-byte
/// unchanged behavior.
class ThreadTransport final : public Transport {
 public:
  explicit ThreadTransport(const SpmdOptions& options);

  [[nodiscard]] Backend backend() const override { return Backend::kThread; }
  [[nodiscard]] bool shared_address() const override { return true; }
  void publish(std::uint32_t parity, int rank, const void* data, std::size_t bytes,
               bool copy) override;
  [[nodiscard]] const PeerSlot* peers(std::uint32_t parity) const override {
    return slots_[parity].data();
  }
  double sync(int rank, double vtime, RoundFn on_last, void* arg) override;
  void fence(int rank) override;
  void ensure_reduce_capacity(std::size_t bytes) override {
    if (reduce_buf_.size() < bytes) reduce_buf_.resize(bytes);
  }
  [[nodiscard]] void* reduce_base() override { return reduce_buf_.data(); }
  bool post_error(const char* what) override;
  [[nodiscard]] bool aborted() const override {
    return aborted_.load(std::memory_order_acquire) != 0;
  }
  [[nodiscard]] std::string error_text() const override;
  [[nodiscard]] const std::atomic<std::uint32_t>* abort_word() const override {
    return &aborted_;
  }
  std::shared_ptr<void> create_region(int rank, std::size_t bytes) override;
  [[nodiscard]] std::vector<const void*>* ptr_slots(std::uint32_t parity) override {
    return &ptrs_[parity];
  }

 private:
  SpinBarrier barrier_;
  std::atomic<std::uint32_t> aborted_{0};

  // Publication slots and staging scratch for collectives, double-buffered
  // by data-round parity: a one-round collective's readers of parity p are
  // provably done before parity p is written again (the next arrival round
  // sits in between), so no departure fence is needed on the copy path.
  std::array<std::vector<PeerSlot>, 2> slots_;
  std::array<std::vector<Scratch>, 2> scratch_;
  // Generic exchange keeps the historical consume(vector<const void*>)
  // signature; these mirror slots_[par][r].ptr for that path only.
  std::array<std::vector<const void*>, 2> ptrs_;

  // Virtual clocks: each rank publishes before arriving; the round's last
  // arriver folds the max into synced_clock_.
  std::vector<ClockSlot> clocks_;
  double synced_clock_ = 0.0;

  // Shared combine target for allreduce (partitioned blocks or the
  // leader's fold); grows to the high-water payload and is reused.
  std::vector<std::uint8_t> reduce_buf_;

  // create_region hand-off (rank 0 parks the allocation between fences).
  std::shared_ptr<void> region_slot_;

  mutable std::mutex error_mutex_;
  bool error_posted_ = false;
  std::string error_text_;
};

std::unique_ptr<Transport> make_thread_transport(const SpmdOptions& options);

/// Builds the shared-memory process transport (throws InvalidArgument off
/// Linux).
std::unique_ptr<Transport> make_shm_transport(const SpmdOptions& options);

/// Launches `world` (which must own a ShmTransport) as forked rank
/// processes — rank 0 runs on the calling thread of the parent so tool
/// and serve captures keep working — and reaps children, turning an
/// abnormal exit into a world abort with a "rank N died" diagnostic.
SpmdResult run_process_world(World& world, const std::function<void(Context&)>& fn);

/// Builds the TCP socket transport (throws InvalidArgument off Linux).
/// The returned transport is *unconnected*: run_socket_world forks the
/// local ranks and each rank dials the rendezvous and builds its peer
/// mesh post-fork.
std::unique_ptr<Transport> make_socket_transport(const SpmdOptions& options);

/// Launches `world` (which must own a SocketTransport): forks this node's
/// block of ranks (the first local rank runs on the calling thread, so on
/// node 0 that is rank 0 and result capture keeps working), each rank
/// performs the rendezvous + mesh handshake, runs `fn`, exchanges final
/// virtual clocks, and tears the mesh down gracefully.  Local child death
/// is reaped like the process backend; remote death surfaces via EOF or
/// heartbeat loss.
SpmdResult run_socket_world(World& world, const std::function<void(Context&)>& fn);

}  // namespace sva::ga::detail
