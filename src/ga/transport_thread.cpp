// Thread backend of the transport seam plus the cross-backend shared
// primitives: raw futex wrappers (std::atomic::wait is FUTEX_PRIVATE and
// cannot cross processes) and the WorldMutex that GlobalArray blocks and
// task-queue cells park on under either backend.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>

#include "sva/util/error.hpp"
#include "transport_impl.hpp"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>
#endif

namespace sva::ga {

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kThread:
      return "thread";
    case Backend::kProcess:
      return "process";
    case Backend::kSocket:
      return "socket";
  }
  return "unknown";
}

std::optional<Backend> parse_backend(std::string_view name) {
  if (name == "thread") return Backend::kThread;
  if (name == "process") return Backend::kProcess;
  if (name == "socket") return Backend::kSocket;
  return std::nullopt;
}

std::unique_ptr<Transport> make_transport(const SpmdOptions& options) {
  switch (options.backend) {
    case Backend::kThread:
      return detail::make_thread_transport(options);
    case Backend::kProcess:
      return detail::make_shm_transport(options);
    case Backend::kSocket:
      return detail::make_socket_transport(options);
  }
  throw InvalidArgument("make_transport: unknown backend");
}

namespace detail {

// ---- futex wrappers ----------------------------------------------------

#if defined(__linux__)

void futex_wait_u32(const void* addr, std::uint32_t expected, bool process_shared,
                    int timeout_ms) {
  timespec ts{};
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = static_cast<long>(timeout_ms % 1000) * 1000000L;
  const int op = process_shared ? FUTEX_WAIT : FUTEX_WAIT_PRIVATE;
  // Spurious wakeups, EAGAIN (word already changed) and ETIMEDOUT are all
  // fine: every caller loops re-checking the word and the abort flag.
  syscall(SYS_futex, addr, op, expected, timeout_ms > 0 ? &ts : nullptr, nullptr, 0);
}

namespace {
void futex_wake(const void* addr, bool process_shared, int count) {
  const int op = process_shared ? FUTEX_WAKE : FUTEX_WAKE_PRIVATE;
  syscall(SYS_futex, addr, op, count, nullptr, nullptr, 0);
}
}  // namespace

void futex_wake_all_u32(const void* addr, bool process_shared) {
  futex_wake(addr, process_shared, INT32_MAX);
}

void futex_wake_one_u32(const void* addr, bool process_shared) {
  futex_wake(addr, process_shared, 1);
}

#else  // portable fallback: timed-sleep polling (no cross-process wakes)

void futex_wait_u32(const void* addr, std::uint32_t expected, bool /*process_shared*/,
                    int timeout_ms) {
  const auto* word = static_cast<const volatile std::uint32_t*>(addr);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(std::max(timeout_ms, 1));
  while (std::chrono::steady_clock::now() < deadline) {
    if (*word != expected) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::atomic_thread_fence(std::memory_order_acquire);
  }
}

void futex_wake_all_u32(const void* /*addr*/, bool /*process_shared*/) {}
void futex_wake_one_u32(const void* /*addr*/, bool /*process_shared*/) {}

#endif

// ---- WorldMutex --------------------------------------------------------

void WorldMutex::lock(const LockEnv& env) {
  std::atomic_ref<std::uint32_t> word(word_);
  std::uint32_t c = 0;
  if (word.compare_exchange_strong(c, 1, std::memory_order_acquire,
                                   std::memory_order_relaxed)) {
    return;
  }
  // Brief spin: block locks are short (a memcpy or a few map probes).
  for (int i = 0; i < 128; ++i) {
    cpu_relax();
    c = word.load(std::memory_order_relaxed);
    if (c == 0 && word.compare_exchange_weak(c, 1, std::memory_order_acquire,
                                             std::memory_order_relaxed)) {
      return;
    }
  }
  // Park.  The timeout doubles as the abort poll: a rank waiting on a
  // lock whose holder died must observe the world abort, not hang.
  for (;;) {
    c = word.exchange(2, std::memory_order_acquire);
    if (c == 0) return;
    futex_wait_u32(&word_, 2, env.process_shared, 50);
    if (env.abort_word != nullptr &&
        env.abort_word->load(std::memory_order_acquire) != 0) {
      throw ProtocolError("SPMD world aborted while waiting for a shared lock");
    }
  }
}

void WorldMutex::unlock(const LockEnv& env) {
  std::atomic_ref<std::uint32_t> word(word_);
  if (word.exchange(0, std::memory_order_release) == 2) {
    futex_wake_one_u32(&word_, env.process_shared);
  }
}

// ---- SpinBarrier -------------------------------------------------------

int default_spin_iters(int nprocs) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw != 0 && static_cast<unsigned>(nprocs) > hw) return 0;
  return 4096;
}

void SpinBarrier::throw_if_aborted(const std::atomic<std::uint32_t>& aborted) {
  if (aborted.load(std::memory_order_acquire) != 0) {
    throw ProtocolError("SPMD world aborted by a peer rank");
  }
}

void SpinBarrier::wait_for_epoch(std::uint32_t epoch,
                                 const std::atomic<std::uint32_t>& aborted) const {
  // Fast path: spin on the epoch word (read-only until it changes, so the
  // line stays shared); bail to the caller on abort.
  for (int i = 0; i < spin_iters_; ++i) {
    if (epoch_.value.load(std::memory_order_acquire) != epoch) return;
    if ((i & 63) == 0 && aborted.load(std::memory_order_acquire) != 0) return;
    cpu_relax();
  }
  // Park: futex wait on the epoch word.  abort_wakeup bumps the epoch, so
  // an abort always wakes parked waiters.
  while (epoch_.value.load(std::memory_order_acquire) == epoch) {
    epoch_.value.wait(epoch, std::memory_order_acquire);
  }
}

void SpinBarrier::abort_wakeup() {
  epoch_.value.fetch_add(1, std::memory_order_release);
  epoch_.value.notify_all();
}

// ---- ThreadTransport ---------------------------------------------------

ThreadTransport::ThreadTransport(const SpmdOptions& options)
    : Transport(options.nprocs),
      barrier_(options.nprocs, options.comm_model.host_spin_iters >= 0
                                   ? options.comm_model.host_spin_iters
                                   : default_spin_iters(options.nprocs)),
      clocks_(static_cast<std::size_t>(options.nprocs)) {
  const auto np = static_cast<std::size_t>(options.nprocs);
  for (auto& parity : slots_) parity.resize(np);
  for (auto& parity : scratch_) parity.resize(np);
  for (auto& parity : ptrs_) parity.assign(np, nullptr);
}

void ThreadTransport::publish(std::uint32_t parity, int rank, const void* data,
                              std::size_t bytes, bool copy) {
  auto& slot = slots_[parity][static_cast<std::size_t>(rank)];
  if (copy && bytes > 0) {
    auto& buf = scratch_[parity][static_cast<std::size_t>(rank)].buf;
    if (buf.size() < bytes) buf.resize(bytes);
    std::memcpy(buf.data(), data, bytes);
    slot.ptr = buf.data();
  } else {
    slot.ptr = data;
  }
  slot.bytes = bytes;
  slot.copied = copy || bytes == 0;
}

double ThreadTransport::sync(int rank, double vtime, RoundFn on_last, void* arg) {
  clocks_[static_cast<std::size_t>(rank)].v = vtime;
  barrier_.arrive(aborted_, [&] {
    double mx = 0.0;
    for (const auto& c : clocks_) mx = std::max(mx, c.v);
    synced_clock_ = mx;
    if (on_last != nullptr) on_last(arg);
  });
  return synced_clock_;
}

void ThreadTransport::fence(int /*rank*/) { barrier_.arrive(aborted_); }

bool ThreadTransport::post_error(const char* what) {
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!error_posted_) {
      error_posted_ = true;
      error_text_ = what;
      first = true;
    }
  }
  aborted_.store(1, std::memory_order_release);
  barrier_.abort_wakeup();
  return first;
}

std::string ThreadTransport::error_text() const {
  std::lock_guard<std::mutex> lock(error_mutex_);
  return error_text_;
}

std::shared_ptr<void> ThreadTransport::create_region(int rank, std::size_t bytes) {
  if (rank == 0) {
    const std::size_t rounded =
        (std::max<std::size_t>(bytes, 1) + kCacheLine - 1) / kCacheLine * kCacheLine;
    void* mem = std::aligned_alloc(kCacheLine, rounded);
    if (mem == nullptr) throw std::bad_alloc();
    std::memset(mem, 0, rounded);
    region_slot_ = std::shared_ptr<void>(mem, std::free);
  }
  fence(rank);  // allocation published
  std::shared_ptr<void> out = region_slot_;
  fence(rank);  // every rank holds a reference
  if (rank == 0) region_slot_.reset();
  return out;
}

std::unique_ptr<Transport> make_thread_transport(const SpmdOptions& options) {
  return std::make_unique<ThreadTransport>(options);
}

}  // namespace detail

}  // namespace sva::ga
