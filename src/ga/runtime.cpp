#include "sva/ga/runtime.hpp"

#include <algorithm>
#include <thread>

#include "sva/util/log.hpp"

namespace sva::ga {

namespace detail {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace

int default_spin_iters(int nprocs) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw != 0 && static_cast<unsigned>(nprocs) > hw) return 0;
  return 4096;
}

void SpinBarrier::throw_if_aborted(const std::atomic<bool>& aborted) {
  if (aborted.load(std::memory_order_acquire)) {
    throw ProtocolError("SPMD world aborted by a peer rank");
  }
}

void SpinBarrier::wait_for_epoch(std::uint32_t epoch,
                                 const std::atomic<bool>& aborted) const {
  // Fast path: spin on the epoch word (read-only until it changes, so the
  // line stays shared); bail to the caller on abort.
  for (int i = 0; i < spin_iters_; ++i) {
    if (epoch_.value.load(std::memory_order_acquire) != epoch) return;
    if ((i & 63) == 0 && aborted.load(std::memory_order_acquire)) return;
    cpu_relax();
  }
  // Park: futex wait on the epoch word.  abort_wakeup bumps the epoch, so
  // an abort always wakes parked waiters.
  while (epoch_.value.load(std::memory_order_acquire) == epoch) {
    epoch_.value.wait(epoch, std::memory_order_acquire);
  }
}

void SpinBarrier::abort_wakeup() {
  epoch_.value.fetch_add(1, std::memory_order_release);
  epoch_.value.notify_all();
}

}  // namespace detail

World::World(int nprocs, CommModel model)
    : nprocs_(nprocs),
      model_(model),
      barrier_(nprocs, model.host_spin_iters >= 0 ? model.host_spin_iters
                                                  : detail::default_spin_iters(nprocs)),
      clocks_(static_cast<std::size_t>(nprocs)) {
  require(nprocs >= 1, "World: nprocs must be >= 1");
  for (auto& parity : slots_) parity.resize(static_cast<std::size_t>(nprocs));
  for (auto& parity : scratch_) parity.resize(static_cast<std::size_t>(nprocs));
  for (auto& parity : ptrs_) parity.assign(static_cast<std::size_t>(nprocs), nullptr);
}

Context::Context(World& world, int rank)
    : world_(world), rank_(rank), cpu_mark_(ThreadCpuTimer::now()) {}

void Context::sample_compute() {
  const double now = ThreadCpuTimer::now();
  vtime_ += (now - cpu_mark_) * world_.model().compute_scale;
  cpu_mark_ = now;
}

double Context::vtime() {
  sample_compute();
  return vtime_;
}

void Context::reset_vtime() {
  vtime_ = 0.0;
  cpu_mark_ = ThreadCpuTimer::now();
}

void Context::finish_round(double extra_cost) {
  vtime_ = world_.synced_clock_ + extra_cost;
  // Compute done inside the exchange window (e.g. local combine work)
  // belongs to the next interval; reset the CPU baseline.
  cpu_mark_ = ThreadCpuTimer::now();
}

void Context::barrier() {
  sample_compute();
  sync_round();
  finish_round(world_.model().barrier(nprocs()));
}

void Context::exchange(const void* mine, double comm_cost,
                       const std::function<void(const std::vector<const void*>&)>& consume) {
  sample_compute();
  // The generic path publishes through the ptrs_ mirror only (the typed
  // slots_ of this parity stay untouched); the parity still advances so
  // ptrs_ reuse follows the same two-rounds-apart rule as slots_.
  const std::uint32_t par = next_parity();
  world_.ptrs_[par][static_cast<std::size_t>(rank_)] = mine;
  sync_round();
  consume(world_.ptrs_[par]);
  fence_round();  // caller buffers stay readable until every consume is done
  finish_round(comm_cost);
}

SpmdResult spmd_run(int nprocs, const CommModel& model,
                    const std::function<void(Context&)>& fn) {
  require(nprocs >= 1 && nprocs <= 4096, "spmd_run: nprocs out of range [1, 4096]");
  World world(nprocs, model);
  SpmdResult result;
  result.rank_vtimes.assign(static_cast<std::size_t>(nprocs), 0.0);

  WallTimer wall;

  auto body = [&](int rank) {
    Context ctx(world, rank);
    try {
      fn(ctx);
      ctx.sample_compute();
      result.rank_vtimes[static_cast<std::size_t>(rank)] = ctx.vtime_raw();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(world.error_mutex_);
        if (!world.first_error_) world.first_error_ = std::current_exception();
      }
      world.aborted_.store(true, std::memory_order_release);
      world.barrier_.abort_wakeup();
    }
  };

  if (nprocs == 1) {
    body(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nprocs));
    for (int r = 0; r < nprocs; ++r) threads.emplace_back(body, r);
    for (auto& t : threads) t.join();
  }

  result.wall_seconds = wall.elapsed();
  if (world.first_error_) std::rethrow_exception(world.first_error_);
  result.max_vtime = *std::max_element(result.rank_vtimes.begin(), result.rank_vtimes.end());
  return result;
}

SpmdResult spmd_run(int nprocs, const std::function<void(Context&)>& fn) {
  return spmd_run(nprocs, CommModel{}, fn);
}

}  // namespace sva::ga
