#include "sva/ga/runtime.hpp"

#include <algorithm>
#include <thread>

#include "sva/fault/fault.hpp"
#include "sva/util/log.hpp"
#include "transport_impl.hpp"

namespace sva::ga {

World::World(const SpmdOptions& options)
    : nprocs_(options.nprocs),
      model_(options.comm_model),
      transport_(make_transport(options)) {
  require(options.nprocs >= 1, "World: nprocs must be >= 1");
}

Context::Context(World& world, int rank)
    : world_(world), rank_(rank), cpu_mark_(ThreadCpuTimer::now()) {
  // A Context is constructed on its rank's own thread (or forked process),
  // so this is where the fault substrate learns which rank a `rank=` rule
  // filter should match on.
  fault::set_thread_rank(rank);
}

void Context::sample_compute() {
  const double now = ThreadCpuTimer::now();
  vtime_ += (now - cpu_mark_) * world_.model().compute_scale;
  cpu_mark_ = now;
}

double Context::vtime() {
  sample_compute();
  return vtime_;
}

void Context::reset_vtime() {
  vtime_ = 0.0;
  cpu_mark_ = ThreadCpuTimer::now();
}

void Context::finish_round(double extra_cost) {
  vtime_ = synced_clock_ + extra_cost;
  // Compute done inside the exchange window (e.g. local combine work)
  // belongs to the next interval; reset the CPU baseline.
  cpu_mark_ = ThreadCpuTimer::now();
}

void Context::barrier() {
  sample_compute();
  sync_round();
  finish_round(world_.model().barrier(nprocs()));
}

void Context::exchange(const void* mine, double comm_cost,
                       const std::function<void(const std::vector<const void*>&)>& consume) {
  sample_compute();
  // The generic path publishes through the ptrs mirror only (the typed
  // slots of this parity stay untouched); the parity still advances so
  // ptr reuse follows the same two-rounds-apart rule as the slots.
  const std::uint32_t par = next_parity();
  std::vector<const void*>* ptrs = world_.transport().ptr_slots(par);
  if (ptrs == nullptr) {
    throw ProtocolError(
        "Context::exchange requires the thread backend: raw pointers cannot "
        "cross rank address spaces (use the typed collectives instead)");
  }
  (*ptrs)[static_cast<std::size_t>(rank_)] = mine;
  sync_round();
  consume(*ptrs);
  fence_round();  // caller buffers stay readable until every consume is done
  finish_round(comm_cost);
}

namespace {

/// what() of the in-flight exception, for the transport error channel.
std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

SpmdResult run_thread_world(World& world, const std::function<void(Context&)>& fn) {
  const int nprocs = world.nprocs();
  SpmdResult result;
  result.rank_vtimes.assign(static_cast<std::size_t>(nprocs), 0.0);

  WallTimer wall;

  auto body = [&](int rank) {
    Context ctx(world, rank);
    try {
      fn(ctx);
      ctx.sample_compute();
      result.rank_vtimes[static_cast<std::size_t>(rank)] = ctx.vtime_raw();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(world.error_mutex_);
        if (!world.first_error_) world.first_error_ = std::current_exception();
      }
      world.transport().post_error(describe_current_exception().c_str());
    }
  };

  if (nprocs == 1) {
    body(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nprocs));
    for (int r = 0; r < nprocs; ++r) threads.emplace_back(body, r);
    for (auto& t : threads) t.join();
  }

  result.wall_seconds = wall.elapsed();
  if (world.first_error_) std::rethrow_exception(world.first_error_);
  result.max_vtime = *std::max_element(result.rank_vtimes.begin(), result.rank_vtimes.end());
  return result;
}

}  // namespace

SpmdResult spmd_run(const SpmdOptions& options, const std::function<void(Context&)>& fn) {
  require(options.nprocs >= 1 && options.nprocs <= 4096,
          "spmd_run: nprocs out of range [1, 4096]");
  World world(options);
  if (options.backend == Backend::kProcess) {
    return detail::run_process_world(world, fn);
  }
  if (options.backend == Backend::kSocket) {
    return detail::run_socket_world(world, fn);
  }
  return run_thread_world(world, fn);
}

SpmdResult spmd_run(int nprocs, const CommModel& model,
                    const std::function<void(Context&)>& fn) {
  SpmdOptions options;
  options.nprocs = nprocs;
  options.comm_model = model;
  return spmd_run(options, fn);
}

SpmdResult spmd_run(int nprocs, const std::function<void(Context&)>& fn) {
  SpmdOptions options;
  options.nprocs = nprocs;
  return spmd_run(options, fn);
}

}  // namespace sva::ga
