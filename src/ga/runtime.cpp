#include "sva/ga/runtime.hpp"

#include <algorithm>
#include <thread>

#include "sva/util/log.hpp"

namespace sva::ga {

namespace detail {

void RawBarrier::wait(const std::atomic<bool>& aborted) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (aborted.load(std::memory_order_acquire)) {
    throw ProtocolError("SPMD world aborted by a peer rank");
  }
  if (++arrived_ == nprocs_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  const std::uint64_t my_generation = generation_;
  cv_.wait(lock, [&] {
    return generation_ != my_generation || aborted.load(std::memory_order_acquire);
  });
  if (generation_ == my_generation && aborted.load(std::memory_order_acquire)) {
    throw ProtocolError("SPMD world aborted by a peer rank");
  }
}

void RawBarrier::abort_wakeup() {
  std::lock_guard<std::mutex> lock(mutex_);
  cv_.notify_all();
}

}  // namespace detail

World::World(int nprocs, CommModel model)
    : nprocs_(nprocs),
      model_(model),
      barrier_(nprocs),
      slots_(static_cast<std::size_t>(nprocs), nullptr),
      clock_slots_(static_cast<std::size_t>(nprocs), 0.0) {
  require(nprocs >= 1, "World: nprocs must be >= 1");
}

Context::Context(World& world, int rank)
    : world_(world), rank_(rank), cpu_mark_(ThreadCpuTimer::now()) {}

void Context::sample_compute() {
  const double now = ThreadCpuTimer::now();
  vtime_ += (now - cpu_mark_) * world_.model().compute_scale;
  cpu_mark_ = now;
}

double Context::vtime() {
  sample_compute();
  return vtime_;
}

void Context::reset_vtime() {
  vtime_ = 0.0;
  cpu_mark_ = ThreadCpuTimer::now();
}

void Context::sync_clocks_max(double extra_cost) {
  // Publish clocks, synchronize, advance everyone to the max.
  world_.clock_slots_[static_cast<std::size_t>(rank_)] = vtime_;
  world_.barrier_.wait(world_.aborted_);
  double max_clock = 0.0;
  for (double t : world_.clock_slots_) max_clock = std::max(max_clock, t);
  world_.barrier_.wait(world_.aborted_);
  vtime_ = max_clock + extra_cost;
  // Compute done inside the exchange window (e.g. local reduction work)
  // belongs to the next interval; reset the CPU baseline.
  cpu_mark_ = ThreadCpuTimer::now();
}

void Context::barrier() {
  sample_compute();
  sync_clocks_max(world_.model().barrier(nprocs()));
}

void Context::exchange(const void* mine, double comm_cost,
                       const std::function<void(const std::vector<const void*>&)>& consume) {
  sample_compute();
  world_.slots_[static_cast<std::size_t>(rank_)] = mine;
  world_.clock_slots_[static_cast<std::size_t>(rank_)] = vtime_;
  world_.barrier_.wait(world_.aborted_);

  consume(world_.slots_);
  double max_clock = 0.0;
  for (double t : world_.clock_slots_) max_clock = std::max(max_clock, t);

  world_.barrier_.wait(world_.aborted_);
  vtime_ = max_clock + comm_cost;
  cpu_mark_ = ThreadCpuTimer::now();
}

SpmdResult spmd_run(int nprocs, const CommModel& model,
                    const std::function<void(Context&)>& fn) {
  require(nprocs >= 1 && nprocs <= 4096, "spmd_run: nprocs out of range [1, 4096]");
  World world(nprocs, model);
  SpmdResult result;
  result.rank_vtimes.assign(static_cast<std::size_t>(nprocs), 0.0);

  WallTimer wall;

  auto body = [&](int rank) {
    Context ctx(world, rank);
    try {
      fn(ctx);
      ctx.sample_compute();
      result.rank_vtimes[static_cast<std::size_t>(rank)] = ctx.vtime_raw();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(world.error_mutex_);
        if (!world.first_error_) world.first_error_ = std::current_exception();
      }
      world.aborted_.store(true, std::memory_order_release);
      world.barrier_.abort_wakeup();
    }
  };

  if (nprocs == 1) {
    body(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nprocs));
    for (int r = 0; r < nprocs; ++r) threads.emplace_back(body, r);
    for (auto& t : threads) t.join();
  }

  result.wall_seconds = wall.elapsed();
  if (world.first_error_) std::rethrow_exception(world.first_error_);
  result.max_vtime = *std::max_element(result.rank_vtimes.begin(), result.rank_vtimes.end());
  return result;
}

SpmdResult spmd_run(int nprocs, const std::function<void(Context&)>& fn) {
  return spmd_run(nprocs, CommModel{}, fn);
}

}  // namespace sva::ga
