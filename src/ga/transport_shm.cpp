// Process backend: ranks are forked processes synchronizing over shared
// memory.  The design mirrors the thread fast path exactly — the same
// parity-double-buffered slot+staging layout and the same epoch-counting
// barrier — but every structure lives in one anonymous MAP_SHARED mapping
// created *before* the fork, so all ranks inherit it at the same virtual
// address and publication slots can hold absolute pointers into the
// staging area.  Arrival parks on raw futexes (FUTEX_WAIT without the
// PRIVATE flag: std::atomic::wait is process-local), and collective
// object regions (GlobalArray storage et al.) are named POSIX shm
// segments mapped per rank and unlinked as soon as everyone holds them.
//
// Failure semantics: any rank's exception is recorded first-wins in the
// control block, the abort flag trips, and the epoch word is bumped so
// every parked rank wakes and throws at its next synchronization point.
// A reaper thread in the parent waitpid()s each child; an abnormal exit
// (a SIGKILLed rank, an exit() from foreign code) is converted into the
// same abort with a "rank N died" diagnostic instead of hanging the
// world.  Children are armed with PR_SET_PDEATHSIG so a dying parent
// never leaks rank processes.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <new>
#include <thread>

#include "sva/fault/fault.hpp"
#include "sva/util/error.hpp"
#include "sva/util/timer.hpp"
#include "transport_impl.hpp"

#if defined(__linux__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>

namespace sva::ga::detail {

namespace {

std::string errno_text(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

/// Distinguishes concurrently-live worlds created by the same parent
/// (e.g. sequential spmd_run calls, or a serve world next to a bench
/// world) in shm segment names.
std::uint64_t next_world_salt() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

/// Shared-memory multi-process transport.  Constructed pre-fork by the
/// parent; every member pointer targets the inherited anonymous mapping
/// and is therefore valid verbatim in every rank process.
class ShmTransport final : public Transport {
 public:
  explicit ShmTransport(const SpmdOptions& options)
      : Transport(options.nprocs),
        slot_cap_(round_up(std::max<std::size_t>(options.shm_slot_bytes, kCacheLine),
                           kCacheLine)),
        reduce_cap_(round_up(std::max<std::size_t>(options.shm_reduce_bytes, kCacheLine),
                             kCacheLine)),
        spin_iters_(options.comm_model.host_spin_iters >= 0
                        ? options.comm_model.host_spin_iters
                        : default_spin_iters(options.nprocs)),
        prefix_(options.shm_prefix.empty() || options.shm_prefix[0] != '/'
                    ? "/" + options.shm_prefix
                    : options.shm_prefix),
        parent_pid_(::getpid()),
        world_salt_(next_world_salt()) {
    const auto np = static_cast<std::size_t>(nprocs_);
    const std::size_t ctl_bytes = round_up(sizeof(Control), kCacheLine);
    const std::size_t clock_bytes = round_up(np * sizeof(ClockSlot), kCacheLine);
    const std::size_t vtime_bytes = round_up(np * sizeof(double), kCacheLine);
    const std::size_t slot_bytes = round_up(2 * np * sizeof(PeerSlot), kCacheLine);
    total_bytes_ =
        ctl_bytes + clock_bytes + vtime_bytes + slot_bytes + 2 * np * slot_cap_ + reduce_cap_;
    void* base = ::mmap(nullptr, total_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (base == MAP_FAILED) {
      throw Error(errno_text("ShmTransport: mmap of the world segment failed"));
    }
    base_ = static_cast<std::uint8_t*>(base);
    // The mapping is zero-filled; placement-new gives the atomics defined
    // lifetimes.  std::atomic over lock-free types is address-free, so the
    // objects constructed here are valid in every forked rank.
    std::uint8_t* cursor = base_;
    ctl_ = new (cursor) Control();
    cursor += ctl_bytes;
    clocks_ = reinterpret_cast<ClockSlot*>(cursor);
    for (std::size_t r = 0; r < np; ++r) new (clocks_ + r) ClockSlot();
    cursor += clock_bytes;
    final_vtimes_ = reinterpret_cast<double*>(cursor);
    cursor += vtime_bytes;
    auto* slot_base = reinterpret_cast<PeerSlot*>(cursor);
    for (std::size_t i = 0; i < 2 * np; ++i) new (slot_base + i) PeerSlot();
    slots_[0] = slot_base;
    slots_[1] = slot_base + np;
    cursor += slot_bytes;
    staging_ = cursor;
    cursor += 2 * np * slot_cap_;
    reduce_ = cursor;
  }

  ~ShmTransport() override { ::munmap(base_, total_bytes_); }

  [[nodiscard]] Backend backend() const override { return Backend::kProcess; }

  void publish(std::uint32_t parity, int rank, const void* data, std::size_t bytes,
               bool /*copy*/) override {
    fault::point(fault::sites::kShmPublish);
    // Always staged: a peer cannot read this rank's private heap, so the
    // zero-copy hint from the collective layer is ignored and `copied`
    // reports staging (sparing the departure fence on the v-paths).
    if (bytes > slot_cap_) {
      throw ProtocolError(
          "ShmTransport: a collective contribution of " + std::to_string(bytes) +
          " bytes exceeds the per-rank staging capacity of " + std::to_string(slot_cap_) +
          " bytes; raise SpmdOptions::shm_slot_bytes");
    }
    std::uint8_t* dst = staging_slot(parity, rank);
    if (bytes > 0) std::memcpy(dst, data, bytes);
    PeerSlot& slot = slots_[parity][rank];
    slot.ptr = dst;
    slot.bytes = bytes;
    slot.copied = true;
  }

  [[nodiscard]] const PeerSlot* peers(std::uint32_t parity) const override {
    return slots_[parity];
  }

  double sync(int rank, double vtime, RoundFn on_last, void* arg) override {
    fault::point(fault::sites::kShmSync);
    clocks_[rank].v = vtime;
    const std::uint32_t epoch = ctl_->epoch.load(std::memory_order_acquire);
    throw_if_aborted();
    if (ctl_->arrived.fetch_add(1, std::memory_order_acq_rel) == nprocs_ - 1) {
      ctl_->arrived.store(0, std::memory_order_relaxed);
      double mx = 0.0;
      for (int r = 0; r < nprocs_; ++r) mx = std::max(mx, clocks_[r].v);
      ctl_->synced_clock = mx;
      if (on_last != nullptr) on_last(arg);
      ctl_->epoch.fetch_add(1, std::memory_order_release);
      futex_wake_all_u32(&ctl_->epoch, /*process_shared=*/true);
    } else {
      wait_for_epoch(epoch);
    }
    throw_if_aborted();
    return ctl_->synced_clock;
  }

  void fence(int /*rank*/) override {
    const std::uint32_t epoch = ctl_->epoch.load(std::memory_order_acquire);
    throw_if_aborted();
    if (ctl_->arrived.fetch_add(1, std::memory_order_acq_rel) == nprocs_ - 1) {
      ctl_->arrived.store(0, std::memory_order_relaxed);
      ctl_->epoch.fetch_add(1, std::memory_order_release);
      futex_wake_all_u32(&ctl_->epoch, /*process_shared=*/true);
    } else {
      wait_for_epoch(epoch);
    }
    throw_if_aborted();
  }

  void ensure_reduce_capacity(std::size_t bytes) override {
    if (bytes > reduce_cap_) {
      throw ProtocolError(
          "ShmTransport: an allreduce payload of " + std::to_string(bytes) +
          " bytes exceeds the shared combine capacity of " + std::to_string(reduce_cap_) +
          " bytes; raise SpmdOptions::shm_reduce_bytes");
    }
  }

  [[nodiscard]] void* reduce_base() override { return reduce_; }

  bool post_error(const char* what) override {
    std::uint32_t expected = 0;
    const bool first = ctl_->error_state.compare_exchange_strong(
        expected, 1, std::memory_order_acq_rel, std::memory_order_acquire);
    if (first) {
      std::snprintf(ctl_->error_text, sizeof(ctl_->error_text), "%s", what);
      ctl_->error_state.store(2, std::memory_order_release);
    }
    ctl_->aborted.store(1, std::memory_order_release);
    ctl_->epoch.fetch_add(1, std::memory_order_release);
    futex_wake_all_u32(&ctl_->epoch, /*process_shared=*/true);
    return first;
  }

  [[nodiscard]] bool aborted() const override {
    return ctl_->aborted.load(std::memory_order_acquire) != 0;
  }

  [[nodiscard]] std::string error_text() const override {
    // A claimant may still be mid-snprintf; the zero-filled mapping keeps
    // the text NUL-terminated either way, so cap the wait.
    for (int i = 0; i < 1000 && ctl_->error_state.load(std::memory_order_acquire) == 1;
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return {ctl_->error_text,
            ::strnlen(ctl_->error_text, sizeof(ctl_->error_text) - 1)};
  }

  [[nodiscard]] const std::atomic<std::uint32_t>* abort_word() const override {
    return &ctl_->aborted;
  }

  std::shared_ptr<void> create_region(int rank, std::size_t bytes) override {
    // Lockstep protocol, no rendezvous payload needed: the segment name is
    // a pure function of pre-fork state and a per-rank sequence counter
    // that every rank advances identically.
    const std::uint64_t seq = region_seq_++;
    const std::size_t map_bytes = std::max<std::size_t>(bytes, 1);
    const std::string name = prefix_ + "." + std::to_string(parent_pid_) + "." +
                             std::to_string(world_salt_) + "." + std::to_string(seq);
    int fd = -1;
    if (rank == 0) {
      fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
      if (fd < 0 && errno == EEXIST) {
        // Stale leftover from a crashed earlier run that recycled our pid.
        ::shm_unlink(name.c_str());
        fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
      }
      if (fd < 0) throw Error(errno_text("create_region: shm_open(" + name + ") failed"));
      if (::ftruncate(fd, static_cast<off_t>(map_bytes)) != 0) {
        ::close(fd);
        ::shm_unlink(name.c_str());
        throw Error(errno_text("create_region: ftruncate(" + name + ") failed"));
      }
    }
    fence(rank);  // segment created and sized
    if (rank != 0) {
      fd = ::shm_open(name.c_str(), O_RDWR, 0600);
      if (fd < 0) throw Error(errno_text("create_region: shm_open(" + name + ") failed"));
    }
    void* mem = ::mmap(nullptr, map_bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    if (mem == MAP_FAILED) {
      throw Error(errno_text("create_region: mmap(" + name + ") failed"));
    }
    fence(rank);  // every rank mapped — safe to drop the name
    if (rank == 0) ::shm_unlink(name.c_str());
    return {mem, [map_bytes](void* p) { ::munmap(p, map_bytes); }};
  }

  // ---- process-runner hooks (not part of the Transport seam) -----------

  void set_final_vtime(int rank, double v) { final_vtimes_[rank] = v; }
  [[nodiscard]] double final_vtime(int rank) const { return final_vtimes_[rank]; }

 private:
  struct alignas(kCacheLine) Control {
    alignas(kCacheLine) std::atomic<std::uint32_t> epoch{0};
    alignas(kCacheLine) std::atomic<int> arrived{0};
    alignas(kCacheLine) std::atomic<std::uint32_t> aborted{0};
    alignas(kCacheLine) std::atomic<std::uint32_t> error_state{0};  // 0/1 claiming/2 set
    char error_text[2048] = {};
    alignas(kCacheLine) double synced_clock = 0.0;
  };

  void throw_if_aborted() const {
    if (aborted()) throw ProtocolError("SPMD world aborted by a peer rank");
  }

  void wait_for_epoch(std::uint32_t epoch) const {
    for (int i = 0; i < spin_iters_; ++i) {
      if (ctl_->epoch.load(std::memory_order_acquire) != epoch) return;
      if ((i & 63) == 0 && aborted()) return;
      cpu_relax();
    }
    // Park on the epoch word.  post_error bumps the epoch, so aborts wake
    // parked ranks; the timeout is a belt-and-suspenders re-check should a
    // wake ever be lost across processes.
    while (ctl_->epoch.load(std::memory_order_acquire) == epoch) {
      if (aborted()) return;
      futex_wait_u32(&ctl_->epoch, epoch, /*process_shared=*/true, 200);
    }
  }

  [[nodiscard]] std::uint8_t* staging_slot(std::uint32_t parity, int rank) const {
    return staging_ +
           (static_cast<std::size_t>(parity) * static_cast<std::size_t>(nprocs_) +
            static_cast<std::size_t>(rank)) *
               slot_cap_;
  }

  std::size_t slot_cap_;
  std::size_t reduce_cap_;
  int spin_iters_;
  std::string prefix_;
  pid_t parent_pid_;
  std::uint64_t world_salt_;
  std::uint64_t region_seq_ = 0;

  std::uint8_t* base_ = nullptr;
  std::size_t total_bytes_ = 0;
  Control* ctl_ = nullptr;
  ClockSlot* clocks_ = nullptr;
  double* final_vtimes_ = nullptr;
  PeerSlot* slots_[2] = {nullptr, nullptr};
  std::uint8_t* staging_ = nullptr;
  std::uint8_t* reduce_ = nullptr;
};

std::unique_ptr<Transport> make_shm_transport(const SpmdOptions& options) {
  return std::make_unique<ShmTransport>(options);
}

namespace {

/// what() of the in-flight exception, for cross-process error transport.
std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

SpmdResult run_process_world(World& world, const std::function<void(Context&)>& fn) {
  auto& tp = static_cast<ShmTransport&>(world.transport());
  const int nprocs = world.nprocs();
  SpmdResult result;
  result.rank_vtimes.assign(static_cast<std::size_t>(nprocs), 0.0);
  WallTimer wall;

  // Flush inherited stdio buffers once, pre-fork, so children never
  // re-flush the parent's pending output.
  std::fflush(nullptr);

  const pid_t parent_pid = ::getpid();
  std::vector<pid_t> pids;
  pids.reserve(static_cast<std::size_t>(nprocs - 1));
  for (int r = 1; r < nprocs; ++r) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: run rank r to completion, report failure through the
      // shared control block, and _exit without parent atexit handlers.
      ::prctl(PR_SET_PDEATHSIG, SIGKILL);
      if (::getppid() != parent_pid) ::_exit(3);  // parent died pre-prctl
      int code = 0;
      try {
        Context ctx(world, r);
        fn(ctx);
        ctx.sample_compute();
        tp.set_final_vtime(r, ctx.vtime_raw());
      } catch (...) {
        tp.post_error(describe_current_exception().c_str());
        code = 1;
      }
      std::fflush(nullptr);
      ::_exit(code);
    }
    if (pid < 0) {
      tp.post_error(errno_text("spmd_run: fork failed").c_str());
      break;  // abort the ranks already forked; rank 0 below fails fast
    }
    pids.push_back(pid);
  }

  // Reaper: every child is waited on individually; an abnormal death is
  // converted into a world abort so surviving ranks throw instead of
  // parking forever on a barrier the dead rank will never reach.
  std::thread reaper([&] {
    std::vector<char> done(pids.size(), 0);
    std::size_t reaped = 0;
    while (reaped < pids.size()) {
      try {
        fault::point(fault::sites::kShmReap);
      } catch (const Error& e) {
        // A thrown injection cannot unwind a detached-duty thread; convert
        // it into the same world abort a real reaper failure would cause.
        tp.post_error(e.what());
      }
      bool progress = false;
      for (std::size_t i = 0; i < pids.size(); ++i) {
        if (done[i] != 0) continue;
        int status = 0;
        const pid_t got = ::waitpid(pids[i], &status, WNOHANG);
        if (got == 0) continue;
        done[i] = 1;
        ++reaped;
        progress = true;
        if (got < 0) continue;  // reparented/lost — nothing more to learn
        const int rank = static_cast<int>(i) + 1;
        if (WIFSIGNALED(status)) {
          tp.post_error(("rank " + std::to_string(rank) + " died (killed by signal " +
                         std::to_string(WTERMSIG(status)) + ")")
                            .c_str());
        } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0 &&
                   !(WEXITSTATUS(status) == 1 && tp.aborted())) {
          // Exit 1 is our own posted-an-error path; anything else is a
          // foreign exit() from inside fn.
          tp.post_error(("rank " + std::to_string(rank) + " died (exit status " +
                         std::to_string(WEXITSTATUS(status)) + ")")
                            .c_str());
        }
      }
      if (!progress) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Rank 0 runs on the calling thread so tool/serve lambdas capturing
  // rank-0 results keep their historical semantics.
  std::exception_ptr local_error;
  bool local_first = false;
  try {
    Context ctx(world, 0);
    fn(ctx);
    ctx.sample_compute();
    tp.set_final_vtime(0, ctx.vtime_raw());
  } catch (...) {
    local_error = std::current_exception();
    local_first = tp.post_error(describe_current_exception().c_str());
  }

  reaper.join();
  result.wall_seconds = wall.elapsed();
  if (tp.aborted()) {
    // Rethrow rank 0's own exception when it was the first failure (exact
    // type preserved); peer failures arrive as text and surface uniformly.
    if (local_first && local_error) std::rethrow_exception(local_error);
    throw ProtocolError("SPMD world failed: " + tp.error_text());
  }
  for (int r = 0; r < nprocs; ++r) {
    result.rank_vtimes[static_cast<std::size_t>(r)] = tp.final_vtime(r);
  }
  result.max_vtime =
      *std::max_element(result.rank_vtimes.begin(), result.rank_vtimes.end());
  return result;
}

}  // namespace sva::ga::detail

#else  // !__linux__

namespace sva::ga::detail {

std::unique_ptr<Transport> make_shm_transport(const SpmdOptions&) {
  throw InvalidArgument(
      "Backend::kProcess (ShmTransport) requires Linux; use Backend::kThread");
}

SpmdResult run_process_world(World&, const std::function<void(Context&)>&) {
  throw InvalidArgument(
      "Backend::kProcess (ShmTransport) requires Linux; use Backend::kThread");
}

}  // namespace sva::ga::detail

#endif
