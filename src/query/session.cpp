#include "sva/query/session.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "sva/cluster/pca.hpp"
#include "sva/cluster/projection.hpp"
#include "sva/fault/fault.hpp"
#include "sva/ga/repro_sum.hpp"
#include "sva/util/error.hpp"

namespace sva::query {

namespace {

/// One candidate of the merged exchange, tagged with its batch slot.
/// `score` is the cosine similarity for similarity queries and the
/// squared centroid distance for summary representatives.
struct TaggedCandidate {
  std::uint32_t query = 0;
  std::uint32_t pad = 0;
  std::uint64_t doc_id = 0;
  double score = 0.0;
};

/// Similarity ordering: descending cosine, ascending doc id on ties —
/// a total order, so merged results are partition-independent.
bool better_hit(const TaggedCandidate& a, const TaggedCandidate& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc_id < b.doc_id;
}

/// Representative ordering: ascending distance, ascending doc id.
bool closer_rep(const TaggedCandidate& a, const TaggedCandidate& b) {
  if (a.score != b.score) return a.score < b.score;
  return a.doc_id < b.doc_id;
}

bool is_similarity(Query::Kind kind) { return kind != Query::Kind::kClusterSummary; }

/// Collective cancellation poll: every rank folds its local view of the
/// cancel flag / deadline through an allreduce, so all ranks take the
/// same branch — a rank abandoning a sweep alone would wedge the world.
bool sweep_abandoned(ga::Context& ctx, const BatchControl& control) {
  int flag = 0;
  if (control.cancel != nullptr && control.cancel->load(std::memory_order_acquire)) {
    flag = 1;
  }
  if (control.deadline != std::chrono::steady_clock::time_point{} &&
      std::chrono::steady_clock::now() >= control.deadline) {
    flag = 1;
  }
  flag = ctx.allreduce_max(flag);
  if (flag != 0 && control.cancelled != nullptr) {
    control.cancelled->store(true, std::memory_order_release);
  }
  return flag != 0;
}

}  // namespace

std::vector<QueryResult> run_query_batch(ga::Context& ctx, const QueryInputs& inputs,
                                         std::span<const Query> queries) {
  return run_query_batch(ctx, inputs, queries, BatchControl{});
}

std::vector<QueryResult> run_query_batch(ga::Context& ctx, const QueryInputs& in,
                                         std::span<const Query> queries,
                                         const BatchControl& control) {
  require(in.signatures != nullptr, "run_query_batch: signatures are required");
  const sig::SignatureSet& sigs = *in.signatures;
  const std::size_t dim = sigs.dimension;

  // ---- validation (queries are replicated, so every rank agrees) -------
  bool any_doc_probe = false;
  std::size_t num_summaries = 0;
  for (const Query& q : queries) {
    switch (q.kind) {
      case Query::Kind::kSimilarByProbe:
        require(q.k >= 1, "query: k must be >= 1");
        require(q.probe.size() == dim, "query: probe dimension mismatch");
        break;
      case Query::Kind::kSimilarByDoc:
        require(q.k >= 1, "query: k must be >= 1");
        any_doc_probe = true;
        break;
      case Query::Kind::kClusterSummary:
        require(in.assignment != nullptr && in.clustering != nullptr,
                "query: cluster summaries need clustering products");
        require(in.assignment->size() == sigs.doc_ids.size(),
                "query: assignment/signatures mismatch");
        require(q.cluster >= 0 && static_cast<std::size_t>(q.cluster) <
                                      in.clustering->centroids.rows(),
                "query: cluster id out of range");
        ++num_summaries;
        break;
    }
  }
  if (queries.empty()) return {};
  if (!control.inert() && sweep_abandoned(ctx, control)) return {};

  // ---- one exchange resolves every document probe ----------------------
  // Each rank contributes the signature rows it owns as (slot, row...)
  // runs; after the allgatherv every rank holds every probe.  A doc id
  // nobody owns surfaces as an unresolved slot on every rank, so the
  // throw is collective.
  std::vector<std::vector<double>> probes(queries.size());
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    if (queries[qi].kind == Query::Kind::kSimilarByProbe) probes[qi] = queries[qi].probe;
  }
  if (any_doc_probe) {
    std::unordered_map<std::uint64_t, std::size_t> local_index;
    const std::unordered_map<std::uint64_t, std::size_t>* row_of = in.doc_index;
    if (row_of == nullptr) {
      local_index.reserve(sigs.doc_ids.size());
      for (std::size_t i = 0; i < sigs.doc_ids.size(); ++i) {
        local_index.emplace(sigs.doc_ids[i], i);
      }
      row_of = &local_index;
    }

    std::vector<double> contrib;
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      if (queries[qi].kind != Query::Kind::kSimilarByDoc) continue;
      const auto it = row_of->find(queries[qi].doc_id);
      if (it == row_of->end()) continue;
      contrib.push_back(static_cast<double>(qi));
      const auto row = sigs.docvecs.row(it->second);
      contrib.insert(contrib.end(), row.begin(), row.end());
    }
    const auto merged = ctx.allgatherv(std::span<const double>(contrib));
    const std::size_t stride = 1 + dim;
    require(merged.size() % stride == 0, "query: malformed probe exchange");
    for (std::size_t pos = 0; pos < merged.size(); pos += stride) {
      const auto qi = static_cast<std::size_t>(merged[pos]);
      require(qi < queries.size(), "query: malformed probe exchange");
      probes[qi].assign(merged.begin() + static_cast<std::ptrdiff_t>(pos + 1),
                        merged.begin() + static_cast<std::ptrdiff_t>(pos + stride));
    }
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      if (queries[qi].kind == Query::Kind::kSimilarByDoc && probes[qi].empty()) {
        throw InvalidArgument("query: unknown doc id " + std::to_string(queries[qi].doc_id));
      }
    }
  }
  if (!control.inert() && sweep_abandoned(ctx, control)) return {};

  // ---- one fused per-rank scan ------------------------------------------
  // Probe norms are hoisted (accumulated in the same element order as
  // cosine_similarity, so each score is bit-identical to the classic
  // one-query path); each signature row is read once for the whole batch.
  struct ProbeRef {
    std::size_t query = 0;
    const double* vec = nullptr;
    double norm2 = 0.0;
    bool exclude = false;
    std::uint64_t exclude_doc = 0;
  };
  std::vector<ProbeRef> probe_list;
  struct SummaryRef {
    std::size_t query = 0;
    std::size_t slot = 0;  ///< index into the summary-only accumulators
    int cluster = -1;
  };
  std::vector<SummaryRef> summary_list;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& q = queries[qi];
    if (is_similarity(q.kind)) {
      ProbeRef ref;
      ref.query = qi;
      ref.vec = probes[qi].data();
      for (std::size_t d = 0; d < dim; ++d) ref.norm2 += ref.vec[d] * ref.vec[d];
      ref.exclude = q.kind == Query::Kind::kSimilarByDoc;
      ref.exclude_doc = q.doc_id;
      probe_list.push_back(ref);
    } else {
      summary_list.push_back({qi, summary_list.size(), q.cluster});
    }
  }

  std::vector<std::vector<TaggedCandidate>> local(queries.size());
  std::vector<std::int64_t> members(num_summaries, 0);
  // Cosines lie in [-1, 1]: the fixed-point bank makes the cohesion sum
  // independent of the row partition, the keystone of the Session-vs-
  // free-function bit-identity contract.
  ga::ReproducibleSum cohesion(std::max<std::size_t>(num_summaries, 1), 1.0);

  for (std::size_t i = 0; i < sigs.doc_ids.size(); ++i) {
    const auto row = sigs.docvecs.row(i);
    if (!probe_list.empty() && !sigs.is_null[i]) {
      double na = 0.0;
      for (std::size_t d = 0; d < dim; ++d) na += row[d] * row[d];
      for (const ProbeRef& pr : probe_list) {
        if (pr.exclude && sigs.doc_ids[i] == pr.exclude_doc) continue;
        double dot = 0.0;
        for (std::size_t d = 0; d < dim; ++d) dot += row[d] * pr.vec[d];
        const double sim =
            (na <= 0.0 || pr.norm2 <= 0.0) ? 0.0 : dot / std::sqrt(na * pr.norm2);
        local[pr.query].push_back(
            {static_cast<std::uint32_t>(pr.query), 0, sigs.doc_ids[i], sim});
      }
    }
    for (const SummaryRef& sr : summary_list) {
      if ((*in.assignment)[i] != sr.cluster) continue;
      ++members[sr.slot];
      const auto centroid =
          in.clustering->centroids.row(static_cast<std::size_t>(sr.cluster));
      cohesion.add(sr.slot, cosine_similarity(row, centroid));
      double d2 = 0.0;
      for (std::size_t d = 0; d < row.size(); ++d) {
        const double diff = row[d] - centroid[d];
        d2 += diff * diff;
      }
      local[sr.query].push_back(
          {static_cast<std::uint32_t>(sr.query), 0, sigs.doc_ids[i], d2});
    }
  }

  if (!control.inert() && sweep_abandoned(ctx, control)) return {};

  // ---- one merge of every query's local top-k ---------------------------
  std::vector<TaggedCandidate> packed;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    auto& cands = local[qi];
    const auto cmp = is_similarity(queries[qi].kind) ? better_hit : closer_rep;
    const std::size_t keep = std::min(cands.size(), queries[qi].k);
    std::partial_sort(cands.begin(), cands.begin() + static_cast<std::ptrdiff_t>(keep),
                      cands.end(), cmp);
    packed.insert(packed.end(), cands.begin(),
                  cands.begin() + static_cast<std::ptrdiff_t>(keep));
    cands.clear();
  }
  const auto merged = ctx.allgatherv(std::span<const TaggedCandidate>(packed));
  std::vector<std::vector<TaggedCandidate>> buckets(queries.size());
  for (const TaggedCandidate& c : merged) buckets[c.query].push_back(c);

  // ---- summary reductions (one integer + one fixed-point allreduce) ----
  std::vector<double> cohesion_sums;
  if (num_summaries > 0) {
    ctx.allreduce_sum(members.data(), members.size());
    cohesion_sums = cohesion.allreduce_sum(ctx);
  }

  // ---- assemble ---------------------------------------------------------
  std::vector<QueryResult> results(queries.size());
  std::size_t slot = 0;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& q = queries[qi];
    auto& bucket = buckets[qi];
    QueryResult& out = results[qi];
    out.kind = q.kind;
    if (is_similarity(q.kind)) {
      std::sort(bucket.begin(), bucket.end(), better_hit);
      if (bucket.size() > q.k) bucket.resize(q.k);
      out.hits.reserve(bucket.size());
      for (const auto& c : bucket) out.hits.push_back({c.doc_id, c.score});
    } else {
      std::sort(bucket.begin(), bucket.end(), closer_rep);
      if (bucket.size() > q.k) bucket.resize(q.k);
      ClusterSummary& s = out.summary;
      s.cluster = q.cluster;
      s.size = in.clustering->cluster_sizes[static_cast<std::size_t>(q.cluster)];
      if (in.theme_labels != nullptr &&
          static_cast<std::size_t>(q.cluster) < in.theme_labels->size()) {
        s.top_terms = (*in.theme_labels)[static_cast<std::size_t>(q.cluster)];
      }
      s.cohesion = members[slot] > 0
                       ? cohesion_sums[slot] / static_cast<double>(members[slot])
                       : 0.0;
      s.representatives.reserve(bucket.size());
      for (const auto& c : bucket) s.representatives.push_back(c.doc_id);
      ++slot;
    }
  }
  return results;
}

namespace detail {

DrillDownResult drill_down_subset(ga::Context& ctx, const sig::SignatureSet& subset,
                                  cluster::KMeansConfig config) {
  DrillDownResult result;
  result.subset_size = static_cast<std::uint64_t>(
      ctx.allreduce_sum(static_cast<std::int64_t>(subset.doc_ids.size())));
  require(result.subset_size >= 1, "drill_down: empty subset");

  // Clamp k to the subset size so tiny selections still work.
  config.k = std::max<std::size_t>(
      1, std::min<std::size_t>(config.k, static_cast<std::size_t>(result.subset_size)));

  result.clustering = cluster::kmeans_cluster(ctx, subset.docvecs, config);

  // Fresh axes for the subset: PCA over its own centroids.
  const auto pca = cluster::pca_fit(result.clustering.centroids, 2);
  result.projection = cluster::project_documents(ctx, subset.docvecs, subset.doc_ids, pca);
  return result;
}

}  // namespace detail

// ===== Session ==========================================================

Session Session::open(ga::Context& ctx, const std::filesystem::path& bundle_path) {
  fault::point(fault::sites::kSessionOpen);
  return Session(ctx, engine::load_bundle(ctx, bundle_path));
}

Session::Session(ga::Context& ctx, engine::BundleView data)
    : ctx_(&ctx), data_(std::move(data)) {
  doc_index_.reserve(data_.signatures.doc_ids.size());
  for (std::size_t i = 0; i < data_.signatures.doc_ids.size(); ++i) {
    doc_index_.emplace(data_.signatures.doc_ids[i], i);
  }
}

QueryInputs Session::inputs() const {
  return {&data_.signatures, &data_.clustering.assignment, &data_.clustering,
          &data_.theme_labels, &doc_index_};
}

// The single-query methods run one-element batches through inputs() so
// they reuse the Session's prebuilt doc index (the free functions build
// theirs per call) — same core, identical bits either way.

std::vector<SimilarDoc> Session::similar(std::span<const double> probe, std::size_t k) {
  const Query query = Query::similar_probe({probe.begin(), probe.end()}, k);
  auto results = run_query_batch(*ctx_, inputs(), {&query, 1});
  return std::move(results.front().hits);
}

std::vector<SimilarDoc> Session::similar(std::uint64_t doc_id, std::size_t k) {
  const Query query = Query::similar_doc(doc_id, k);
  auto results = run_query_batch(*ctx_, inputs(), {&query, 1});
  return std::move(results.front().hits);
}

ClusterSummary Session::cluster_summary(int cluster, std::size_t num_representatives) {
  const Query query = Query::cluster_summary(cluster, num_representatives);
  auto results = run_query_batch(*ctx_, inputs(), {&query, 1});
  return std::move(results.front().summary);
}

DrillDownResult Session::drill_down(int cluster, const cluster::KMeansConfig& config) {
  return drill_down_cluster(*ctx_, data_.signatures, data_.clustering.assignment, cluster,
                            config);
}

Landscape Session::landscape() {
  Landscape out;
  out.components = data_.projection_components;
  out.doc_ids = ctx_->allgatherv(std::span<const std::uint64_t>(data_.projection_doc_ids));
  out.xy = ctx_->allgatherv(std::span<const double>(data_.projection_xy));
  return out;
}

std::vector<QueryResult> Session::run_batch(std::span<const Query> queries) {
  return run_query_batch(*ctx_, inputs(), queries);
}

std::vector<QueryResult> Session::run_batch(std::span<const Query> queries,
                                            const BatchControl& control) {
  return run_query_batch(*ctx_, inputs(), queries, control);
}

std::vector<std::vector<std::string>> Session::sub_theme_labels(
    const cluster::KMeansResult& clustering, std::size_t terms_per_cluster) const {
  const std::size_t k = clustering.centroids.rows();
  const std::size_t m = clustering.centroids.cols();
  require(m <= data_.topic_term_names.size(),
          "sub_theme_labels: clustering dimension exceeds the bundle's topic terms");
  std::vector<std::vector<std::string>> labels(k);
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<std::size_t> dims(m);
    for (std::size_t j = 0; j < m; ++j) dims[j] = j;
    const auto centroid = clustering.centroids.row(c);
    std::sort(dims.begin(), dims.end(), [&](std::size_t a, std::size_t b) {
      if (centroid[a] != centroid[b]) return centroid[a] > centroid[b];
      return a < b;
    });
    const std::size_t take = std::min(terms_per_cluster, m);
    for (std::size_t j = 0; j < take; ++j) {
      labels[c].push_back(data_.topic_term_names[dims[j]]);
    }
  }
  return labels;
}

}  // namespace sva::query
