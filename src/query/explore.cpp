#include "sva/query/explore.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "sva/query/similarity.hpp"
#include "sva/util/error.hpp"

namespace sva::query {

namespace {

/// (distance, doc id) candidate for representative selection.
struct Candidate {
  double distance = 0.0;
  std::uint64_t doc_id = 0;
};

/// Extracts the subset of local signature rows selected by `take(i)`.
template <typename Pred>
sig::SignatureSet subset_signatures(const sig::SignatureSet& signatures, Pred&& take) {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < signatures.doc_ids.size(); ++i) {
    if (take(i)) rows.push_back(i);
  }
  sig::SignatureSet out;
  out.dimension = signatures.dimension;
  out.docvecs = Matrix(rows.size(), signatures.dimension);
  out.doc_ids.reserve(rows.size());
  out.is_null.reserve(rows.size());
  for (std::size_t j = 0; j < rows.size(); ++j) {
    const auto src = signatures.docvecs.row(rows[j]);
    std::copy(src.begin(), src.end(), out.docvecs.row(j).begin());
    out.doc_ids.push_back(signatures.doc_ids[rows[j]]);
    out.is_null.push_back(signatures.is_null[rows[j]]);
  }
  return out;
}

DrillDownResult drill_down_impl(ga::Context& ctx, const sig::SignatureSet& subset,
                                cluster::KMeansConfig config) {
  DrillDownResult result;
  result.subset_size =
      static_cast<std::uint64_t>(ctx.allreduce_sum(static_cast<std::int64_t>(
          subset.doc_ids.size())));
  require(result.subset_size >= 1, "drill_down: empty subset");

  // Clamp k to the subset size so tiny selections still work.
  config.k = std::max<std::size_t>(
      1, std::min<std::size_t>(config.k, static_cast<std::size_t>(result.subset_size)));

  result.clustering = cluster::kmeans_cluster(ctx, subset.docvecs, config);

  // Fresh axes for the subset: PCA over its own centroids.
  const auto pca = cluster::pca_fit(result.clustering.centroids, 2);
  result.projection = cluster::project_documents(ctx, subset.docvecs, subset.doc_ids, pca);
  return result;
}

}  // namespace

ClusterSummary summarize_cluster(ga::Context& ctx, const sig::SignatureSet& signatures,
                                 const std::vector<std::int32_t>& assignment,
                                 const cluster::KMeansResult& clustering,
                                 const std::vector<std::vector<std::string>>& theme_labels,
                                 int cluster, std::size_t num_representatives) {
  require(assignment.size() == signatures.doc_ids.size(),
          "summarize_cluster: assignment/signatures mismatch");
  require(cluster >= 0 &&
              static_cast<std::size_t>(cluster) < clustering.centroids.rows(),
          "summarize_cluster: cluster id out of range");

  ClusterSummary summary;
  summary.cluster = cluster;
  summary.size = clustering.cluster_sizes[static_cast<std::size_t>(cluster)];
  if (static_cast<std::size_t>(cluster) < theme_labels.size()) {
    summary.top_terms = theme_labels[static_cast<std::size_t>(cluster)];
  }

  const auto centroid = clustering.centroids.row(static_cast<std::size_t>(cluster));

  // Local pass: cohesion contribution and representative candidates.
  double cos_sum = 0.0;
  std::int64_t members = 0;
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] != cluster) continue;
    ++members;
    cos_sum += cosine_similarity(signatures.docvecs.row(i), centroid);
    double d2 = 0.0;
    const auto row = signatures.docvecs.row(i);
    for (std::size_t d = 0; d < row.size(); ++d) {
      const double diff = row[d] - centroid[d];
      d2 += diff * diff;
    }
    candidates.push_back({d2, signatures.doc_ids[i]});
  }

  // Global cohesion.
  const double global_cos = ctx.allreduce_sum(cos_sum);
  const auto global_members = ctx.allreduce_sum(members);
  summary.cohesion =
      global_members > 0 ? global_cos / static_cast<double>(global_members) : 0.0;

  // Global representatives: local top-n, merged and re-cut.
  auto closer = [](const Candidate& a, const Candidate& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.doc_id < b.doc_id;
  };
  const std::size_t keep = std::min(candidates.size(), num_representatives);
  std::partial_sort(candidates.begin(), candidates.begin() + static_cast<std::ptrdiff_t>(keep),
                    candidates.end(), closer);
  candidates.resize(keep);
  auto merged = ctx.allgatherv(std::span<const Candidate>(candidates));
  std::sort(merged.begin(), merged.end(), closer);
  if (merged.size() > num_representatives) merged.resize(num_representatives);
  summary.representatives.reserve(merged.size());
  for (const auto& c : merged) summary.representatives.push_back(c.doc_id);
  return summary;
}

DrillDownResult drill_down_cluster(ga::Context& ctx, const sig::SignatureSet& signatures,
                                   const std::vector<std::int32_t>& assignment, int cluster,
                                   const cluster::KMeansConfig& config) {
  require(assignment.size() == signatures.doc_ids.size(),
          "drill_down_cluster: assignment/signatures mismatch");
  const auto subset =
      subset_signatures(signatures, [&](std::size_t i) { return assignment[i] == cluster; });
  return drill_down_impl(ctx, subset, config);
}

DrillDownResult drill_down_documents(ga::Context& ctx, const sig::SignatureSet& signatures,
                                     const std::vector<std::uint64_t>& doc_ids,
                                     const cluster::KMeansConfig& config) {
  const std::unordered_set<std::uint64_t> wanted(doc_ids.begin(), doc_ids.end());
  const auto subset = subset_signatures(
      signatures, [&](std::size_t i) { return wanted.count(signatures.doc_ids[i]) != 0; });
  return drill_down_impl(ctx, subset, config);
}

}  // namespace sva::query
