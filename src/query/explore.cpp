#include "sva/query/explore.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "sva/query/session.hpp"
#include "sva/query/similarity.hpp"
#include "sva/util/error.hpp"

namespace sva::query {

namespace {

/// Extracts the subset of local signature rows selected by `take(i)`.
template <typename Pred>
sig::SignatureSet subset_signatures(const sig::SignatureSet& signatures, Pred&& take) {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < signatures.doc_ids.size(); ++i) {
    if (take(i)) rows.push_back(i);
  }
  sig::SignatureSet out;
  out.dimension = signatures.dimension;
  out.docvecs = Matrix(rows.size(), signatures.dimension);
  out.doc_ids.reserve(rows.size());
  out.is_null.reserve(rows.size());
  for (std::size_t j = 0; j < rows.size(); ++j) {
    const auto src = signatures.docvecs.row(rows[j]);
    std::copy(src.begin(), src.end(), out.docvecs.row(j).begin());
    out.doc_ids.push_back(signatures.doc_ids[rows[j]]);
    out.is_null.push_back(signatures.is_null[rows[j]]);
  }
  return out;
}

}  // namespace

// summarize_cluster and the drill-downs are thin wrappers over the
// batched query plane / drill-down core in session.cpp — the same code a
// Session serves from a persisted bundle, so both surfaces stay
// bit-identical by construction.

ClusterSummary summarize_cluster(ga::Context& ctx, const sig::SignatureSet& signatures,
                                 const std::vector<std::int32_t>& assignment,
                                 const cluster::KMeansResult& clustering,
                                 const std::vector<std::vector<std::string>>& theme_labels,
                                 int cluster, std::size_t num_representatives) {
  require(assignment.size() == signatures.doc_ids.size(),
          "summarize_cluster: assignment/signatures mismatch");
  require(cluster >= 0 &&
              static_cast<std::size_t>(cluster) < clustering.centroids.rows(),
          "summarize_cluster: cluster id out of range");
  QueryInputs inputs{&signatures, &assignment, &clustering, &theme_labels};
  const Query query = Query::cluster_summary(cluster, num_representatives);
  auto results = run_query_batch(ctx, inputs, {&query, 1});
  return std::move(results.front().summary);
}

DrillDownResult drill_down_cluster(ga::Context& ctx, const sig::SignatureSet& signatures,
                                   const std::vector<std::int32_t>& assignment, int cluster,
                                   const cluster::KMeansConfig& config) {
  require(assignment.size() == signatures.doc_ids.size(),
          "drill_down_cluster: assignment/signatures mismatch");
  const auto subset =
      subset_signatures(signatures, [&](std::size_t i) { return assignment[i] == cluster; });
  return detail::drill_down_subset(ctx, subset, config);
}

DrillDownResult drill_down_documents(ga::Context& ctx, const sig::SignatureSet& signatures,
                                     const std::vector<std::uint64_t>& doc_ids,
                                     const cluster::KMeansConfig& config) {
  const std::unordered_set<std::uint64_t> wanted(doc_ids.begin(), doc_ids.end());
  const auto subset = subset_signatures(
      signatures, [&](std::size_t i) { return wanted.count(signatures.doc_ids[i]) != 0; });
  return detail::drill_down_subset(ctx, subset, config);
}

}  // namespace sva::query
