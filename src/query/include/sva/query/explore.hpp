// Exploratory interactions: cluster summaries and drill-down.
//
// After one engine pass, the analyst reads the landscape, picks a theme
// mountain and *drills in*: the documents of one cluster (or any ad-hoc
// subset) are re-clustered and re-projected in isolation, producing a
// fresh, higher-resolution landscape of just that theme — the successive
// refinement loop that §2's query-refinement critique argues should
// happen visually rather than by re-querying.  All operations are
// collective and leave the original engine products untouched.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sva/cluster/kmeans.hpp"
#include "sva/cluster/pca.hpp"
#include "sva/cluster/projection.hpp"
#include "sva/ga/runtime.hpp"
#include "sva/sig/signature.hpp"

namespace sva::query {

/// Analyst-facing digest of one cluster.
struct ClusterSummary {
  int cluster = -1;
  std::int64_t size = 0;               ///< global member count
  std::vector<std::string> top_terms;  ///< theme label terms
  /// Global ids of the documents nearest the centroid — the ones to read.
  std::vector<std::uint64_t> representatives;
  /// Mean cosine of members to the centroid (1 = perfectly tight).
  double cohesion = 0.0;
};

/// Collective: summarizes cluster `cluster` of a k-means run.
/// `assignment` is the rank-local assignment aligned with
/// `signatures.doc_ids`; `theme_labels` (usually EngineResult::
/// theme_labels) provides the label terms and may be empty.
[[nodiscard]] ClusterSummary summarize_cluster(
    ga::Context& ctx, const sig::SignatureSet& signatures,
    const std::vector<std::int32_t>& assignment, const cluster::KMeansResult& clustering,
    const std::vector<std::vector<std::string>>& theme_labels, int cluster,
    std::size_t num_representatives = 5);

/// Products of one drill-down: the subset's own clustering and landscape.
struct DrillDownResult {
  cluster::KMeansResult clustering;        ///< over the subset
  cluster::ProjectionResult projection;    ///< rank 0 gathers all_xy
  std::uint64_t subset_size = 0;           ///< global subset cardinality
};

/// Collective: re-clusters and re-projects the members of `cluster`.
/// `k` buckets the subset (clamped to the subset size); the projection is
/// a fresh PCA over the subset's centroids, so the new landscape spreads
/// the theme's internal structure instead of inheriting the global axes.
[[nodiscard]] DrillDownResult drill_down_cluster(ga::Context& ctx,
                                                 const sig::SignatureSet& signatures,
                                                 const std::vector<std::int32_t>& assignment,
                                                 int cluster,
                                                 const cluster::KMeansConfig& config);

/// Collective: drill-down on an arbitrary document subset (global ids,
/// identical on every rank).
[[nodiscard]] DrillDownResult drill_down_documents(ga::Context& ctx,
                                                   const sig::SignatureSet& signatures,
                                                   const std::vector<std::uint64_t>& doc_ids,
                                                   const cluster::KMeansConfig& config);

}  // namespace sva::query
