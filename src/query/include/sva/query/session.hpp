// Sessionized serving API over a persisted model bundle.
//
// The paper's conclusion names interactive exploration of massive
// datasets as the frontier past the batch pipeline; the classic query::
// free functions answered that inside the SPMD world that had just run
// the engine.  A Session decouples the two: the engine exports a model
// bundle once (engine/bundle.hpp), and any later world — at ANY
// processor count — opens it and serves queries off the single handle:
//
//   auto session = query::Session::open(ctx, "corpus.svab");
//   auto hits    = session.similar(doc_id, 10);
//   auto theme   = session.cluster_summary(3);
//   auto drill   = session.drill_down(3, sub_config);
//
// Every query reduction is order-invariant, so the answers are
// bit-identical to the free-function path over the live EngineResult,
// for any write-P/open-P combination.
//
// The batched query plane is the serving fast path: run_batch() executes
// many heterogeneous queries in one collective sweep — one exchange
// resolving every document probe, one fused per-rank scan over the
// signature rows, one merge of all tagged candidates — instead of
// paying the per-query collective latency N times.  The classic free
// functions (similar_documents, summarize_cluster, ...) are thin
// wrappers over the same plane with a one-element batch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "sva/cluster/kmeans.hpp"
#include "sva/engine/bundle.hpp"
#include "sva/ga/runtime.hpp"
#include "sva/query/explore.hpp"
#include "sva/query/similarity.hpp"

namespace sva::query {

/// One query of a (possibly heterogeneous) batch.  Queries passed to the
/// collective entry points must be identical on every rank.
struct Query {
  enum class Kind {
    kSimilarByProbe,   ///< top-k cosine neighbours of an M-vector
    kSimilarByDoc,     ///< top-k neighbours of a document (itself excluded)
    kClusterSummary,   ///< size/cohesion/labels/representatives of a cluster
  };

  Kind kind = Kind::kSimilarByProbe;
  std::vector<double> probe;  ///< kSimilarByProbe: M-vector
  std::uint64_t doc_id = 0;   ///< kSimilarByDoc
  int cluster = -1;           ///< kClusterSummary
  /// Top-k for similarity queries; representative count for summaries.
  std::size_t k = 10;

  static Query similar_probe(std::vector<double> probe_vec, std::size_t top_k) {
    Query q;
    q.kind = Kind::kSimilarByProbe;
    q.probe = std::move(probe_vec);
    q.k = top_k;
    return q;
  }
  static Query similar_doc(std::uint64_t doc, std::size_t top_k) {
    Query q;
    q.kind = Kind::kSimilarByDoc;
    q.doc_id = doc;
    q.k = top_k;
    return q;
  }
  static Query cluster_summary(int cluster_id, std::size_t num_representatives = 5) {
    Query q;
    q.kind = Kind::kClusterSummary;
    q.cluster = cluster_id;
    q.k = num_representatives;
    return q;
  }
};

/// Result slot aligned with the query batch; `kind` selects the live
/// member (`hits` for similarity queries, `summary` for summaries).
struct QueryResult {
  Query::Kind kind = Query::Kind::kSimilarByProbe;
  std::vector<SimilarDoc> hits;
  ClusterSummary summary;
};

/// Non-owning view of the analysis products one query sweep runs over —
/// a Session points this at its bundle; the classic free functions point
/// it at the caller's live engine products.  `assignment`, `clustering`
/// and `theme_labels` may be null when the batch contains no summaries.
struct QueryInputs {
  const sig::SignatureSet* signatures = nullptr;
  const std::vector<std::int32_t>* assignment = nullptr;
  const cluster::KMeansResult* clustering = nullptr;
  const std::vector<std::vector<std::string>>* theme_labels = nullptr;
  /// Optional doc id → local row index over `signatures` (a Session
  /// builds it once at open; the one-shot wrappers leave it null and the
  /// sweep indexes on demand).
  const std::unordered_map<std::uint64_t, std::size_t>* doc_index = nullptr;
};

/// Cooperative control of one batched sweep — the serving daemon's
/// shutdown and overload paths.  The sweep polls collectively at its
/// phase boundaries (entry, post-probe-exchange, post-scan): when any
/// rank observes `cancel` set or its steady clock past `deadline`, every
/// rank abandons the sweep, sets `*cancelled` (if given) and returns an
/// empty result vector — the world stays healthy for the next sweep.
/// A default-constructed control is inert and adds no collectives.
struct BatchControl {
  /// Cancellation flag shared with the caller (e.g. a shutdown handler).
  const std::atomic<bool>* cancel = nullptr;
  /// Abandon the sweep once any rank's steady clock passes this;
  /// time_point{} (the default) means no deadline.
  std::chrono::steady_clock::time_point deadline{};
  /// Set to true on every rank when the sweep stopped early.
  std::atomic<bool>* cancelled = nullptr;

  [[nodiscard]] bool inert() const {
    return cancel == nullptr && deadline == std::chrono::steady_clock::time_point{};
  }
};

/// Collective: executes the whole batch in one sweep (one probe exchange,
/// one fused scan, one candidate merge, one summary reduction).  Results
/// are identical on every rank, bit-identical for any processor count or
/// row partition.  Throws InvalidArgument (collectively) on malformed
/// queries or an unknown doc id.
std::vector<QueryResult> run_query_batch(ga::Context& ctx, const QueryInputs& inputs,
                                         std::span<const Query> queries);

/// Cancellable/deadline-aware variant: identical results when the sweep
/// completes; empty results (with `*control.cancelled` set) when it was
/// abandoned at a phase boundary.
std::vector<QueryResult> run_query_batch(ga::Context& ctx, const QueryInputs& inputs,
                                         std::span<const Query> queries,
                                         const BatchControl& control);

namespace detail {
/// Collective drill-down core shared by the free functions and Session:
/// re-clusters and re-projects an already-extracted local subset.
DrillDownResult drill_down_subset(ga::Context& ctx, const sig::SignatureSet& subset,
                                  cluster::KMeansConfig config);
}  // namespace detail

/// The gathered 2-D document landscape, replicated on every rank.
struct Landscape {
  std::size_t components = 2;
  std::vector<std::uint64_t> doc_ids;  ///< global document order
  std::vector<double> xy;              ///< interleaved, aligned with doc_ids
};

/// The serving handle: an opened model bundle plus the SPMD context all
/// queries run in.  All query methods are collective across the world
/// that opened the bundle and return identical results on every rank.
class Session {
 public:
  /// Collective: opens `bundle_path` under this world's processor count
  /// (rows are re-partitioned like checkpoint resume).  Throws
  /// FormatError on a corrupt bundle.
  static Session open(ga::Context& ctx, const std::filesystem::path& bundle_path);

  // ---- single queries --------------------------------------------------

  /// Top-k cosine neighbours of an M-vector probe.
  [[nodiscard]] std::vector<SimilarDoc> similar(std::span<const double> probe, std::size_t k);
  /// Top-k neighbours of document `doc_id` (itself excluded).  Throws
  /// InvalidArgument when the bundle holds no such document.
  [[nodiscard]] std::vector<SimilarDoc> similar(std::uint64_t doc_id, std::size_t k);
  /// Digest of one theme cluster.
  [[nodiscard]] ClusterSummary cluster_summary(int cluster,
                                               std::size_t num_representatives = 5);
  /// Re-clusters and re-projects one theme in isolation.
  [[nodiscard]] DrillDownResult drill_down(int cluster, const cluster::KMeansConfig& config);
  /// The full 2-D landscape, replicated on every rank.
  [[nodiscard]] Landscape landscape();

  // ---- the batched query plane ----------------------------------------

  /// Executes many heterogeneous queries in one collective sweep — the
  /// serving fast path (see run_query_batch).
  [[nodiscard]] std::vector<QueryResult> run_batch(std::span<const Query> queries);

  /// Cancellable/deadline-aware sweep (see BatchControl): empty results
  /// when the sweep was abandoned.
  [[nodiscard]] std::vector<QueryResult> run_batch(std::span<const Query> queries,
                                                   const BatchControl& control);

  /// Labels a drill-down's sub-clusters by their strongest signature
  /// dimensions, resolved through the bundle's topic-term vocabulary
  /// slice (the same rule the engine uses for the global theme labels).
  [[nodiscard]] std::vector<std::vector<std::string>> sub_theme_labels(
      const cluster::KMeansResult& clustering, std::size_t terms_per_cluster = 5) const;

  // ---- bundle accessors -------------------------------------------------

  [[nodiscard]] const engine::BundleView& bundle() const { return data_; }
  [[nodiscard]] std::uint64_t config_fingerprint() const { return data_.config_fingerprint; }
  [[nodiscard]] std::uint64_t num_documents() const { return data_.num_records; }
  /// Bundle generation counter (0 = full build, n+1 = delta over gen n).
  [[nodiscard]] std::uint64_t generation() const { return data_.generation.generation; }
  /// This bundle's lineage fingerprint (see engine::bundle_lineage).
  [[nodiscard]] std::uint64_t lineage() const { return data_.generation.lineage; }
  /// True when the last delta's drift crossed a configured threshold.
  [[nodiscard]] bool recluster_recommended() const {
    return data_.generation.recluster_recommended;
  }
  [[nodiscard]] std::size_t dimension() const { return data_.signatures.dimension; }
  [[nodiscard]] std::size_t num_clusters() const { return data_.clustering.centroids.rows(); }
  [[nodiscard]] const std::vector<std::vector<std::string>>& theme_labels() const {
    return data_.theme_labels;
  }
  [[nodiscard]] const std::vector<std::string>& topic_term_names() const {
    return data_.topic_term_names;
  }

 private:
  Session(ga::Context& ctx, engine::BundleView data);

  [[nodiscard]] QueryInputs inputs() const;

  ga::Context* ctx_;
  engine::BundleView data_;
  /// doc id → local signature row, built once: the batched plane's probe
  /// resolution must not rescan the rows per call.
  std::unordered_map<std::uint64_t, std::size_t> doc_index_;
};

}  // namespace sva::query
