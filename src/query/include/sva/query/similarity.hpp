// Interactive similarity queries over distributed knowledge signatures.
//
// The paper's conclusion names "the interactions associated with massive
// datasets within a visual analytics environment" as the next frontier;
// this module provides the first interaction an analyst reaches for:
// "more like this".  Signatures stay distributed (each rank holds its own
// records' rows); a query broadcasts the probe vector, every rank scans
// its block, and the per-rank top-k candidates are merged globally — the
// same owner-computes pattern as the engine itself, so query latency
// scales with P.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sva/ga/runtime.hpp"
#include "sva/sig/signature.hpp"

namespace sva::query {

struct SimilarDoc {
  std::uint64_t doc_id = 0;
  double similarity = 0.0;  ///< cosine in [-1, 1]
};

/// Cosine similarity between two equal-length vectors; 0 when either is
/// the zero vector (null signatures never match anything).
[[nodiscard]] double cosine_similarity(std::span<const double> a, std::span<const double> b);

/// Collective: the k most similar documents to `probe` (an M-vector in
/// signature space).  All ranks receive the same result, ordered by
/// descending similarity with doc-id tie-break.
///
/// \deprecated Classic free-function plane, kept for callers that hold a
/// live in-engine SignatureSet.  New code should open a persisted bundle
/// through query::Session and use Session::similar /
/// Session::run_batch — the Session plane answers the same query against
/// a bundle, batches sweeps, and is what the serving daemon speaks.  See
/// the README migration table.
[[nodiscard]] std::vector<SimilarDoc> similar_documents(ga::Context& ctx,
                                                        const sig::SignatureSet& signatures,
                                                        std::span<const double> probe,
                                                        std::size_t k);

/// Collective: the k documents most similar to document `doc_id`
/// (excluded from its own result).  Throws InvalidArgument when no rank
/// owns `doc_id`.
///
/// \deprecated Like similar_documents: prefer query::Session::similar /
/// Session::run_batch over a persisted bundle.  See the README migration
/// table.
[[nodiscard]] std::vector<SimilarDoc> similar_to_document(ga::Context& ctx,
                                                          const sig::SignatureSet& signatures,
                                                          std::uint64_t doc_id, std::size_t k);

}  // namespace sva::query
