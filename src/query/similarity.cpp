#include "sva/query/similarity.hpp"

#include <algorithm>
#include <cmath>

#include "sva/util/error.hpp"

namespace sva::query {

double cosine_similarity(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "cosine_similarity: dimension mismatch");
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

namespace {

/// Merges rank-local candidates into the global top-k (descending
/// similarity, ascending doc id on ties — deterministic across P).
std::vector<SimilarDoc> merge_top_k(ga::Context& ctx, std::vector<SimilarDoc> local,
                                    std::size_t k) {
  auto better = [](const SimilarDoc& a, const SimilarDoc& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.doc_id < b.doc_id;
  };
  const std::size_t keep = std::min(local.size(), k);
  std::partial_sort(local.begin(), local.begin() + static_cast<std::ptrdiff_t>(keep),
                    local.end(), better);
  local.resize(keep);
  auto merged = ctx.allgatherv(std::span<const SimilarDoc>(local));
  std::sort(merged.begin(), merged.end(), better);
  if (merged.size() > k) merged.resize(k);
  return merged;
}

}  // namespace

std::vector<SimilarDoc> similar_documents(ga::Context& ctx,
                                          const sig::SignatureSet& signatures,
                                          std::span<const double> probe, std::size_t k) {
  require(k >= 1, "similar_documents: k must be >= 1");
  require(probe.size() == signatures.dimension,
          "similar_documents: probe dimension mismatch");
  std::vector<SimilarDoc> local;
  local.reserve(signatures.doc_ids.size());
  for (std::size_t i = 0; i < signatures.doc_ids.size(); ++i) {
    if (signatures.is_null[i]) continue;
    local.push_back(
        {signatures.doc_ids[i], cosine_similarity(signatures.docvecs.row(i), probe)});
  }
  return merge_top_k(ctx, std::move(local), k);
}

std::vector<SimilarDoc> similar_to_document(ga::Context& ctx,
                                            const sig::SignatureSet& signatures,
                                            std::uint64_t doc_id, std::size_t k) {
  require(k >= 1, "similar_to_document: k must be >= 1");

  // Locate the probe row's owner; ranks that do not own it contribute -1.
  int my_claim = -1;
  std::size_t my_row = 0;
  for (std::size_t i = 0; i < signatures.doc_ids.size(); ++i) {
    if (signatures.doc_ids[i] == doc_id) {
      my_claim = ctx.rank();
      my_row = i;
      break;
    }
  }
  const int owner = ctx.allreduce_max(my_claim);
  require(owner >= 0, "similar_to_document: unknown doc id");

  // Owner broadcasts the probe signature.
  std::vector<double> probe(signatures.dimension, 0.0);
  if (ctx.rank() == owner) {
    const auto row = signatures.docvecs.row(my_row);
    std::copy(row.begin(), row.end(), probe.begin());
  }
  ctx.broadcast(probe.data(), probe.size(), owner);

  std::vector<SimilarDoc> local;
  local.reserve(signatures.doc_ids.size());
  for (std::size_t i = 0; i < signatures.doc_ids.size(); ++i) {
    if (signatures.is_null[i] || signatures.doc_ids[i] == doc_id) continue;
    local.push_back(
        {signatures.doc_ids[i], cosine_similarity(signatures.docvecs.row(i), probe)});
  }
  return merge_top_k(ctx, std::move(local), k);
}

}  // namespace sva::query
