#include "sva/query/similarity.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "sva/query/session.hpp"
#include "sva/util/error.hpp"

namespace sva::query {

double cosine_similarity(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "cosine_similarity: dimension mismatch");
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

// The classic one-shot entry points are thin wrappers over the batched
// query plane (session.cpp): a one-element batch runs the identical
// fused-scan/merge code path a Session serves, so the two surfaces can
// never drift apart.

std::vector<SimilarDoc> similar_documents(ga::Context& ctx,
                                          const sig::SignatureSet& signatures,
                                          std::span<const double> probe, std::size_t k) {
  require(k >= 1, "similar_documents: k must be >= 1");
  require(probe.size() == signatures.dimension,
          "similar_documents: probe dimension mismatch");
  QueryInputs inputs;
  inputs.signatures = &signatures;
  const Query query = Query::similar_probe({probe.begin(), probe.end()}, k);
  auto results = run_query_batch(ctx, inputs, {&query, 1});
  return std::move(results.front().hits);
}

std::vector<SimilarDoc> similar_to_document(ga::Context& ctx,
                                            const sig::SignatureSet& signatures,
                                            std::uint64_t doc_id, std::size_t k) {
  require(k >= 1, "similar_to_document: k must be >= 1");
  QueryInputs inputs;
  inputs.signatures = &signatures;
  const Query query = Query::similar_doc(doc_id, k);
  auto results = run_query_batch(ctx, inputs, {&query, 1});
  return std::move(results.front().hits);
}

}  // namespace sva::query
