#include "sva/engine/bundle.hpp"

#include <algorithm>

#include "sva/corpus/document.hpp"
#include "sva/engine/engine.hpp"
#include "sva/engine/section_file.hpp"
#include "sva/util/bytes.hpp"
#include "sva/util/error.hpp"

namespace sva::engine {

namespace {

/// This rank's row range under the stored partition weights.
std::pair<std::size_t, std::size_t> my_range(ga::Context& ctx,
                                             const std::vector<std::size_t>& weights) {
  const auto parts = corpus::partition_sizes_by_bytes(weights, ctx.nprocs());
  return parts[static_cast<std::size_t>(ctx.rank())];
}

}  // namespace

void export_bundle(ga::Context& ctx, const EngineResult& result,
                   std::uint64_t config_fingerprint, const std::filesystem::path& path,
                   std::span<const std::size_t> record_sizes) {
  const auto& sigs = result.signatures;
  require(result.clustering.assignment.size() == sigs.doc_ids.size(),
          "export_bundle: assignment/signature row mismatch");
  require(result.projection.local_doc_ids.size() == sigs.doc_ids.size(),
          "export_bundle: projection/signature row mismatch");

  // Gather every per-rank slice; rank order == global doc order.
  std::vector<std::uint8_t> null_bytes(sigs.is_null.size());
  for (std::size_t i = 0; i < sigs.is_null.size(); ++i) {
    null_bytes[i] = sigs.is_null[i] ? 1 : 0;
  }
  const auto all_ids = ctx.gatherv(std::span<const std::uint64_t>(sigs.doc_ids), 0);
  const auto all_nulls = ctx.gatherv(std::span<const std::uint8_t>(null_bytes), 0);
  const auto all_vecs = ctx.gatherv(
      std::span<const double>(sigs.docvecs.flat().data(), sigs.docvecs.flat().size()), 0);
  const auto all_assignment =
      ctx.gatherv(std::span<const std::int32_t>(result.clustering.assignment), 0);
  const auto all_proj_ids =
      ctx.gatherv(std::span<const std::uint64_t>(result.projection.local_doc_ids), 0);
  const auto all_xy = ctx.gatherv(std::span<const double>(result.projection.local_xy), 0);

  if (ctx.rank() == 0) {
    require(all_ids.size() == result.num_records,
            "export_bundle: gathered row count disagrees with num_records");
    require(record_sizes.empty() || record_sizes.size() == all_ids.size(),
            "export_bundle: record_sizes must cover every document");

    SectionedFile file;
    file.fingerprint = config_fingerprint;

    ByteWriter meta;
    meta.u64(result.num_records);
    meta.u64(result.num_terms);
    meta.u64(result.total_term_occurrences);
    meta.u64(sigs.dimension);
    meta.u64(static_cast<std::uint64_t>(result.signature_rounds));
    meta.u64(sigs.global_null_count);
    file.add("meta", std::move(meta.bytes));

    // Row-partition weights: raw document bytes when the caller has them
    // (Engine::run does), else one unit per row.
    ByteWriter weights;
    weights.u64(all_ids.size());
    for (std::size_t i = 0; i < all_ids.size(); ++i) {
      weights.u64(record_sizes.empty() ? 1 : record_sizes[i]);
    }
    file.add("weights", std::move(weights.bytes));

    ByteWriter rows;
    rows.u64(all_ids.size());
    rows.u64(sigs.dimension);
    for (const auto id : all_ids) rows.u64(id);
    rows.raw(all_nulls.data(), all_nulls.size());
    rows.raw(all_vecs.data(), all_vecs.size() * sizeof(double));
    file.add("signatures", std::move(rows.bytes));

    const auto& c = result.clustering;
    require(c.cluster_sizes.size() == c.centroids.rows(),
            "export_bundle: cluster_sizes/centroid shape mismatch");
    ByteWriter clu;
    clu.u64(static_cast<std::uint64_t>(c.iterations));
    clu.f64(c.inertia);
    clu.u64(c.centroids.rows());
    clu.u64(c.centroids.cols());
    clu.raw(c.centroids.flat().data(), c.centroids.flat().size() * sizeof(double));
    for (const auto s : c.cluster_sizes) clu.u64(static_cast<std::uint64_t>(s));
    clu.u64(all_assignment.size());
    for (const auto a : all_assignment) clu.u64(static_cast<std::uint64_t>(a));
    file.add("cluster", std::move(clu.bytes));

    ByteWriter labels;
    labels.u64(result.theme_labels.size());
    for (const auto& cluster_labels : result.theme_labels) {
      labels.u64(cluster_labels.size());
      for (const auto& l : cluster_labels) labels.str(l);
    }
    file.add("labels", std::move(labels.bytes));

    // Vocabulary slice: only the topic terms (the M dimension labels)
    // travel with the bundle — queries never need the full vocabulary.
    ByteWriter topics;
    const auto& topic_terms = result.selection.topic_terms;
    topics.u64(topic_terms.size());
    for (const auto t : topic_terms) {
      require(result.vocabulary != nullptr && t >= 0 &&
                  static_cast<std::size_t>(t) < result.vocabulary->terms.size(),
              "export_bundle: topic term outside the vocabulary");
      topics.str(result.vocabulary->terms[static_cast<std::size_t>(t)]);
    }
    file.add("topic_terms", std::move(topics.bytes));

    ByteWriter proj;
    proj.u64(result.projection.components);
    proj.u64(all_proj_ids.size());
    for (const auto id : all_proj_ids) proj.u64(id);
    proj.raw(all_xy.data(), all_xy.size() * sizeof(double));
    file.add("projection", std::move(proj.bytes));

    file.write(path, kBundleMagic, kBundleFormatVersion);
  }
  ctx.barrier();
}

void export_bundle(ga::Context& ctx, const EngineResult& result, const EngineConfig& config,
                   const std::filesystem::path& path,
                   std::span<const std::size_t> record_sizes) {
  export_bundle(ctx, result, Engine::config_fingerprint(config), path, record_sizes);
}

BundleView load_bundle(ga::Context& ctx, const std::filesystem::path& path) {
  std::vector<std::uint8_t> bytes;
  if (ctx.rank() == 0) bytes = SectionedFile::read_file_bytes(path, "bundle");
  ga::broadcast_bytes(ctx, bytes, 0);
  const SectionedFile file =
      SectionedFile::parse(bytes, kBundleMagic, kBundleFormatVersion, "bundle");

  BundleView out;
  out.config_fingerprint = file.fingerprint;
  {
    ByteReader meta(file.section("meta"));
    out.num_records = meta.u64();
    out.num_terms = meta.u64();
    out.total_term_occurrences = meta.u64();
    out.signatures.dimension = static_cast<std::size_t>(meta.u64());
    out.signature_rounds = static_cast<int>(meta.u64());
    out.signatures.global_null_count = meta.u64();
    meta.expect_done();
  }

  std::vector<std::size_t> weights;
  {
    ByteReader w(file.section("weights"));
    const std::uint64_t n = w.u64();
    require_format(n == out.num_records, "bundle: weight count mismatch");
    weights.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      weights.push_back(static_cast<std::size_t>(w.u64()));
    }
    w.expect_done();
  }
  const auto [begin, end] = my_range(ctx, weights);
  out.row_range = {begin, end};
  const std::size_t mine = end > begin ? end - begin : 0;

  {
    ByteReader rows(file.section("signatures"));
    const std::uint64_t n = rows.u64();
    const std::uint64_t dim = rows.u64();
    require_format(n == out.num_records, "bundle: signature row count mismatch");
    require_format(dim == out.signatures.dimension, "bundle: signature dimension mismatch");
    std::vector<std::uint64_t> ids(static_cast<std::size_t>(n));
    for (auto& id : ids) id = rows.u64();
    std::vector<std::uint8_t> nulls(static_cast<std::size_t>(n));
    rows.raw(nulls.data(), nulls.size());
    const std::size_t row_bytes = static_cast<std::size_t>(dim) * sizeof(double);
    require_format(rows.remaining() == static_cast<std::size_t>(n) * row_bytes,
                   "bundle: signature matrix size mismatch");

    auto& sigs = out.signatures;
    sigs.docvecs = Matrix(mine, static_cast<std::size_t>(dim));
    sigs.doc_ids.assign(ids.begin() + static_cast<std::ptrdiff_t>(begin),
                        ids.begin() + static_cast<std::ptrdiff_t>(end));
    sigs.is_null.resize(mine);
    for (std::size_t i = 0; i < mine; ++i) sigs.is_null[i] = nulls[begin + i] != 0;
    // Fixed-stride rows: jump straight to this rank's slice.
    rows.skip(begin * row_bytes);
    if (mine > 0) rows.raw(sigs.docvecs.flat().data(), mine * row_bytes);
    rows.skip((static_cast<std::size_t>(n) - end) * row_bytes);
    rows.expect_done();
  }

  {
    ByteReader clu(file.section("cluster"));
    auto& c = out.clustering;
    c.iterations = static_cast<int>(clu.u64());
    c.inertia = clu.f64();
    const std::uint64_t k = clu.u64();
    const std::uint64_t dim = clu.u64();
    require_format(k <= (1u << 24) && dim <= (1u << 24), "bundle: implausible centroid shape");
    c.centroids = Matrix(static_cast<std::size_t>(k), static_cast<std::size_t>(dim));
    clu.raw(c.centroids.flat().data(), c.centroids.flat().size() * sizeof(double));
    c.cluster_sizes.resize(static_cast<std::size_t>(k));
    for (auto& s : c.cluster_sizes) s = static_cast<std::int64_t>(clu.u64());
    const std::uint64_t n = clu.u64();
    require_format(n == out.num_records, "bundle: assignment count mismatch");
    c.assignment.resize(mine);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t v = clu.u64();
      require_format(v < k, "bundle: assignment outside cluster range");
      if (i >= begin && i < end) c.assignment[i - begin] = static_cast<std::int32_t>(v);
    }
    clu.expect_done();
  }

  {
    ByteReader labels(file.section("labels"));
    const std::uint64_t k = labels.u64();
    require_format(k <= (1u << 24), "bundle: implausible label count");
    out.theme_labels.resize(static_cast<std::size_t>(k));
    for (auto& cluster_labels : out.theme_labels) {
      const std::uint64_t n = labels.u64();
      require_format(n <= (1u << 16), "bundle: implausible label list");
      for (std::uint64_t i = 0; i < n; ++i) cluster_labels.push_back(labels.str());
    }
    labels.expect_done();
  }

  {
    ByteReader topics(file.section("topic_terms"));
    const std::uint64_t m = topics.u64();
    require_format(m == out.signatures.dimension,
                   "bundle: topic-term count disagrees with the signature dimension");
    out.topic_term_names.reserve(static_cast<std::size_t>(m));
    for (std::uint64_t i = 0; i < m; ++i) out.topic_term_names.push_back(topics.str());
    topics.expect_done();
  }

  {
    ByteReader proj(file.section("projection"));
    out.projection_components = static_cast<std::size_t>(proj.u64());
    require_format(out.projection_components >= 2 && out.projection_components <= 3,
                   "bundle: implausible projection components");
    const std::uint64_t n = proj.u64();
    require_format(n == out.num_records, "bundle: projection row count mismatch");
    std::vector<std::uint64_t> ids(static_cast<std::size_t>(n));
    for (auto& id : ids) id = proj.u64();
    const std::size_t comps = out.projection_components;
    const std::size_t row_bytes = comps * sizeof(double);
    require_format(proj.remaining() == static_cast<std::size_t>(n) * row_bytes,
                   "bundle: projection coordinate size mismatch");
    out.projection_doc_ids.assign(ids.begin() + static_cast<std::ptrdiff_t>(begin),
                                  ids.begin() + static_cast<std::ptrdiff_t>(end));
    out.projection_xy.resize(mine * comps);
    proj.skip(begin * row_bytes);
    if (mine > 0) proj.raw(out.projection_xy.data(), mine * row_bytes);
    proj.skip((static_cast<std::size_t>(n) - end) * row_bytes);
    proj.expect_done();
  }
  return out;
}

}  // namespace sva::engine
