#include "sva/engine/bundle.hpp"

#include <algorithm>
#include <cstring>

#include "sva/corpus/document.hpp"
#include "sva/engine/digest.hpp"
#include "sva/engine/engine.hpp"
#include "sva/engine/section_file.hpp"
#include "sva/util/bytes.hpp"
#include "sva/util/error.hpp"

namespace sva::engine {

namespace {

/// This rank's row range under the stored partition weights.
std::pair<std::size_t, std::size_t> my_range(ga::Context& ctx,
                                             const std::vector<std::size_t>& weights) {
  const auto parts = corpus::partition_sizes_by_bytes(weights, ctx.nprocs());
  return parts[static_cast<std::size_t>(ctx.rank())];
}

/// Fixed-width 8-byte little-endian word (the generation section uses a
/// fixed layout so the parent link sits at a stable offset).
void put_word(ByteWriter& w, std::uint64_t v) { w.raw(&v, sizeof(v)); }

std::uint64_t get_word(ByteReader& r) {
  std::uint64_t v = 0;
  r.raw(&v, sizeof(v));
  return v;
}

}  // namespace

std::uint64_t bundle_lineage(const GenerationInfo& generation, std::uint64_t num_records,
                             std::uint64_t num_terms, std::uint64_t total_term_occurrences,
                             std::uint64_t global_null_count, double inertia) {
  ByteWriter w;
  w.u64(generation.parent_lineage);
  w.u64(generation.generation);
  w.u64(generation.base_records);
  w.u64(generation.new_records);
  w.u64(num_records);
  w.u64(num_terms);
  w.u64(total_term_occurrences);
  w.u64(global_null_count);
  w.f64(inertia);
  return fnv1a64(w.bytes.data(), w.bytes.size());
}

void require_extends(const BundleView& base, const BundleView& next) {
  if (next.generation.generation != base.generation.generation + 1) {
    throw FormatError(
        "bundle: generation counter rollback — bundle at generation " +
        std::to_string(next.generation.generation) + " cannot extend generation " +
        std::to_string(base.generation.generation) + " (expected generation " +
        std::to_string(base.generation.generation + 1) + ")");
  }
  if (next.generation.parent_lineage != base.generation.lineage) {
    throw FormatError(
        "bundle: delta bundle opened without its base — parent lineage " +
        checksum_hex(next.generation.parent_lineage) + " does not match the base lineage " +
        checksum_hex(base.generation.lineage));
  }
}

void write_bundle_data(BundleData& data, const std::filesystem::path& path) {
  require(data.doc_ids.size() == data.num_records,
          "write_bundle_data: doc id count disagrees with num_records");
  require(data.weights.empty() || data.weights.size() == data.num_records,
          "write_bundle_data: weights must cover every document");

  data.generation.lineage =
      bundle_lineage(data.generation, data.num_records, data.num_terms,
                     data.total_term_occurrences, data.global_null_count, data.inertia);

  SectionedFile file;
  file.fingerprint = data.config_fingerprint;

  ByteWriter meta;
  meta.u64(data.num_records);
  meta.u64(data.num_terms);
  meta.u64(data.total_term_occurrences);
  meta.u64(data.dimension);
  meta.u64(static_cast<std::uint64_t>(data.signature_rounds));
  meta.u64(data.global_null_count);
  file.add("meta", std::move(meta.bytes));

  // Row-partition weights: raw document bytes when the caller has them
  // (Engine::run does), else one unit per row.
  ByteWriter weights;
  weights.u64(data.num_records);
  for (std::size_t i = 0; i < data.num_records; ++i) {
    weights.u64(data.weights.empty() ? 1 : data.weights[i]);
  }
  file.add("weights", std::move(weights.bytes));

  ByteWriter rows;
  rows.u64(data.doc_ids.size());
  rows.u64(data.dimension);
  for (const auto id : data.doc_ids) rows.u64(id);
  rows.raw(data.null_flags.data(), data.null_flags.size());
  rows.raw(data.signature_rows.data(), data.signature_rows.size() * sizeof(double));
  file.add("signatures", std::move(rows.bytes));

  require(data.cluster_sizes.size() == data.centroids.rows(),
          "write_bundle_data: cluster_sizes/centroid shape mismatch");
  ByteWriter clu;
  clu.u64(static_cast<std::uint64_t>(data.iterations));
  clu.f64(data.inertia);
  clu.u64(data.centroids.rows());
  clu.u64(data.centroids.cols());
  clu.raw(data.centroids.flat().data(), data.centroids.flat().size() * sizeof(double));
  for (const auto s : data.cluster_sizes) clu.u64(static_cast<std::uint64_t>(s));
  clu.u64(data.assignment.size());
  for (const auto a : data.assignment) clu.u64(static_cast<std::uint64_t>(a));
  file.add("cluster", std::move(clu.bytes));

  ByteWriter labels;
  labels.u64(data.theme_labels.size());
  for (const auto& cluster_labels : data.theme_labels) {
    labels.u64(cluster_labels.size());
    for (const auto& l : cluster_labels) labels.str(l);
  }
  file.add("labels", std::move(labels.bytes));

  ByteWriter topics;
  topics.u64(data.topic_term_names.size());
  for (const auto& t : data.topic_term_names) topics.str(t);
  file.add("topic_terms", std::move(topics.bytes));

  ByteWriter proj;
  proj.u64(data.projection_components);
  proj.u64(data.projection_doc_ids.size());
  for (const auto id : data.projection_doc_ids) proj.u64(id);
  proj.raw(data.projection_xy.data(), data.projection_xy.size() * sizeof(double));
  file.add("projection", std::move(proj.bytes));

  // Fixed-width layout: generation @0, parent lineage @8, lineage @16.
  ByteWriter gen;
  put_word(gen, data.generation.generation);
  put_word(gen, data.generation.parent_lineage);
  put_word(gen, data.generation.lineage);
  put_word(gen, data.generation.base_records);
  put_word(gen, data.generation.new_records);
  gen.f64(data.generation.inertia_rise);
  gen.f64(data.generation.size_skew);
  gen.f64(data.generation.size_skew_rise);
  gen.f64(data.generation.max_inertia_rise);
  gen.f64(data.generation.max_size_skew_rise);
  put_word(gen, data.generation.recluster_recommended ? 1 : 0);
  file.add("generation", std::move(gen.bytes));

  if (!data.vocabulary.empty()) {
    ByteWriter vocab;
    vocab.u64(data.vocabulary.size());
    for (const auto& t : data.vocabulary) vocab.str(t);
    file.add("vocab", std::move(vocab.bytes));
  }

  if (!data.model.major_terms.empty()) {
    require(data.model.association.rows() == data.model.major_terms.size(),
            "write_bundle_data: association rows disagree with the major terms");
    ByteWriter model;
    model.u64(data.model.major_terms.size());
    for (const auto& t : data.model.major_terms) model.str(t);
    model.u64(data.model.association.rows());
    model.u64(data.model.association.cols());
    model.raw(data.model.association.flat().data(),
              data.model.association.flat().size() * sizeof(double));
    const auto& pca = data.model.pca;
    model.u64(pca.mean.size());
    model.raw(pca.mean.data(), pca.mean.size() * sizeof(double));
    model.u64(pca.components.rows());
    model.u64(pca.components.cols());
    model.raw(pca.components.flat().data(), pca.components.flat().size() * sizeof(double));
    model.u64(pca.eigenvalues.size());
    model.raw(pca.eigenvalues.data(), pca.eigenvalues.size() * sizeof(double));
    file.add("model", std::move(model.bytes));
  }

  if (!data.config_bytes.empty()) {
    file.add("config", std::vector<std::uint8_t>(data.config_bytes));
  }

  file.write(path, kBundleMagic, kBundleFormatVersion);
}

namespace {

void export_bundle_impl(ga::Context& ctx, const EngineResult& result,
                        std::uint64_t config_fingerprint, const std::filesystem::path& path,
                        std::span<const std::size_t> record_sizes,
                        std::vector<std::uint8_t> config_bytes) {
  const auto& sigs = result.signatures;
  require(result.clustering.assignment.size() == sigs.doc_ids.size(),
          "export_bundle: assignment/signature row mismatch");
  require(result.projection.local_doc_ids.size() == sigs.doc_ids.size(),
          "export_bundle: projection/signature row mismatch");

  // Gather every per-rank slice; rank order == global doc order.
  std::vector<std::uint8_t> null_bytes(sigs.is_null.size());
  for (std::size_t i = 0; i < sigs.is_null.size(); ++i) {
    null_bytes[i] = sigs.is_null[i] ? 1 : 0;
  }
  auto all_ids = ctx.gatherv(std::span<const std::uint64_t>(sigs.doc_ids), 0);
  auto all_nulls = ctx.gatherv(std::span<const std::uint8_t>(null_bytes), 0);
  auto all_vecs = ctx.gatherv(
      std::span<const double>(sigs.docvecs.flat().data(), sigs.docvecs.flat().size()), 0);
  auto all_assignment =
      ctx.gatherv(std::span<const std::int32_t>(result.clustering.assignment), 0);
  auto all_proj_ids =
      ctx.gatherv(std::span<const std::uint64_t>(result.projection.local_doc_ids), 0);
  auto all_xy = ctx.gatherv(std::span<const double>(result.projection.local_xy), 0);

  if (ctx.rank() == 0) {
    require(all_ids.size() == result.num_records,
            "export_bundle: gathered row count disagrees with num_records");
    require(record_sizes.empty() || record_sizes.size() == all_ids.size(),
            "export_bundle: record_sizes must cover every document");

    BundleData data;
    data.config_fingerprint = config_fingerprint;
    data.num_records = result.num_records;
    data.num_terms = result.num_terms;
    data.total_term_occurrences = result.total_term_occurrences;
    data.dimension = sigs.dimension;
    data.signature_rounds = result.signature_rounds;
    data.global_null_count = sigs.global_null_count;
    data.weights.assign(record_sizes.begin(), record_sizes.end());
    data.doc_ids = std::move(all_ids);
    data.null_flags = std::move(all_nulls);
    data.signature_rows = std::move(all_vecs);
    data.iterations = result.clustering.iterations;
    data.inertia = result.clustering.inertia;
    data.centroids = result.clustering.centroids;
    data.cluster_sizes = result.clustering.cluster_sizes;
    data.assignment = std::move(all_assignment);
    data.theme_labels = result.theme_labels;

    // Vocabulary slice: only the topic terms (the M dimension labels)
    // travel in the query-facing section — queries never need the full
    // vocabulary (the optional "vocab" section carries it for deltas).
    const auto resolve = [&result](std::int64_t t) -> const std::string& {
      require(result.vocabulary != nullptr && t >= 0 &&
                  static_cast<std::size_t>(t) < result.vocabulary->terms.size(),
              "export_bundle: term outside the vocabulary");
      return result.vocabulary->terms[static_cast<std::size_t>(t)];
    };
    data.topic_term_names.reserve(result.selection.topic_terms.size());
    for (const auto t : result.selection.topic_terms) {
      data.topic_term_names.push_back(resolve(t));
    }

    data.projection_components = result.projection.components;
    data.projection_doc_ids = std::move(all_proj_ids);
    data.projection_xy = std::move(all_xy);

    // A full build is generation 0 of a fresh lineage.
    data.generation.new_records = result.num_records;

    if (result.vocabulary != nullptr) data.vocabulary = result.vocabulary->terms;
    // The frozen model rides along whenever the result carries one
    // (synthetic results assembled without an association matrix or PCA
    // basis still export a servable bundle, just not a delta-extensible
    // one).
    if (!result.selection.major_terms.empty() &&
        result.association.n() == result.selection.major_terms.size() &&
        result.pca.components.rows() > 0) {
      data.model.major_terms.reserve(result.selection.major_terms.size());
      for (const auto t : result.selection.major_terms) {
        data.model.major_terms.push_back(resolve(t));
      }
      data.model.association = result.association.weights;
      data.model.pca = result.pca;
    }
    data.config_bytes = std::move(config_bytes);

    write_bundle_data(data, path);
  }
  ctx.barrier();
}

}  // namespace

void export_bundle(ga::Context& ctx, const EngineResult& result,
                   std::uint64_t config_fingerprint, const std::filesystem::path& path,
                   std::span<const std::size_t> record_sizes) {
  export_bundle_impl(ctx, result, config_fingerprint, path, record_sizes, {});
}

void export_bundle(ga::Context& ctx, const EngineResult& result, const EngineConfig& config,
                   const std::filesystem::path& path,
                   std::span<const std::size_t> record_sizes) {
  export_bundle_impl(ctx, result, Engine::config_fingerprint(config), path, record_sizes,
                     encode_engine_config(config));
}

BundleView load_bundle(ga::Context& ctx, const std::filesystem::path& path) {
  std::vector<std::uint8_t> bytes;
  if (ctx.rank() == 0) bytes = SectionedFile::read_file_bytes(path, "bundle");
  ga::broadcast_bytes(ctx, bytes, 0);
  const SectionedFile file =
      SectionedFile::parse(bytes, kBundleMagic, kBundleFormatVersion, "bundle");

  BundleView out;
  out.config_fingerprint = file.fingerprint;
  {
    ByteReader meta(file.section("meta"));
    out.num_records = meta.u64();
    out.num_terms = meta.u64();
    out.total_term_occurrences = meta.u64();
    out.signatures.dimension = static_cast<std::size_t>(meta.u64());
    out.signature_rounds = static_cast<int>(meta.u64());
    out.signatures.global_null_count = meta.u64();
    meta.expect_done();
  }

  {
    ByteReader w(file.section("weights"));
    const std::uint64_t n = w.u64();
    require_format(n == out.num_records, "bundle: weight count mismatch");
    out.weights.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      out.weights.push_back(static_cast<std::size_t>(w.u64()));
    }
    w.expect_done();
  }
  const auto [begin, end] = my_range(ctx, out.weights);
  out.row_range = {begin, end};
  const std::size_t mine = end > begin ? end - begin : 0;

  {
    ByteReader rows(file.section("signatures"));
    const std::uint64_t n = rows.u64();
    const std::uint64_t dim = rows.u64();
    require_format(n == out.num_records, "bundle: signature row count mismatch");
    require_format(dim == out.signatures.dimension, "bundle: signature dimension mismatch");
    std::vector<std::uint64_t> ids(static_cast<std::size_t>(n));
    for (auto& id : ids) id = rows.u64();
    std::vector<std::uint8_t> nulls(static_cast<std::size_t>(n));
    rows.raw(nulls.data(), nulls.size());
    const std::size_t row_bytes = static_cast<std::size_t>(dim) * sizeof(double);
    require_format(rows.remaining() == static_cast<std::size_t>(n) * row_bytes,
                   "bundle: signature matrix size mismatch");

    auto& sigs = out.signatures;
    sigs.docvecs = Matrix(mine, static_cast<std::size_t>(dim));
    sigs.doc_ids.assign(ids.begin() + static_cast<std::ptrdiff_t>(begin),
                        ids.begin() + static_cast<std::ptrdiff_t>(end));
    sigs.is_null.resize(mine);
    for (std::size_t i = 0; i < mine; ++i) sigs.is_null[i] = nulls[begin + i] != 0;
    // Fixed-stride rows: jump straight to this rank's slice.
    rows.skip(begin * row_bytes);
    if (mine > 0) rows.raw(sigs.docvecs.flat().data(), mine * row_bytes);
    rows.skip((static_cast<std::size_t>(n) - end) * row_bytes);
    rows.expect_done();
  }

  {
    ByteReader clu(file.section("cluster"));
    auto& c = out.clustering;
    c.iterations = static_cast<int>(clu.u64());
    c.inertia = clu.f64();
    const std::uint64_t k = clu.u64();
    const std::uint64_t dim = clu.u64();
    require_format(k <= (1u << 24) && dim <= (1u << 24), "bundle: implausible centroid shape");
    c.centroids = Matrix(static_cast<std::size_t>(k), static_cast<std::size_t>(dim));
    clu.raw(c.centroids.flat().data(), c.centroids.flat().size() * sizeof(double));
    c.cluster_sizes.resize(static_cast<std::size_t>(k));
    for (auto& s : c.cluster_sizes) s = static_cast<std::int64_t>(clu.u64());
    const std::uint64_t n = clu.u64();
    require_format(n == out.num_records, "bundle: assignment count mismatch");
    c.assignment.resize(mine);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t v = clu.u64();
      require_format(v < k, "bundle: assignment outside cluster range");
      if (i >= begin && i < end) c.assignment[i - begin] = static_cast<std::int32_t>(v);
    }
    clu.expect_done();
  }

  {
    ByteReader labels(file.section("labels"));
    const std::uint64_t k = labels.u64();
    require_format(k <= (1u << 24), "bundle: implausible label count");
    out.theme_labels.resize(static_cast<std::size_t>(k));
    for (auto& cluster_labels : out.theme_labels) {
      const std::uint64_t n = labels.u64();
      require_format(n <= (1u << 16), "bundle: implausible label list");
      for (std::uint64_t i = 0; i < n; ++i) cluster_labels.push_back(labels.str());
    }
    labels.expect_done();
  }

  {
    ByteReader topics(file.section("topic_terms"));
    const std::uint64_t m = topics.u64();
    require_format(m == out.signatures.dimension,
                   "bundle: topic-term count disagrees with the signature dimension");
    out.topic_term_names.reserve(static_cast<std::size_t>(m));
    for (std::uint64_t i = 0; i < m; ++i) out.topic_term_names.push_back(topics.str());
    topics.expect_done();
  }

  {
    ByteReader proj(file.section("projection"));
    out.projection_components = static_cast<std::size_t>(proj.u64());
    require_format(out.projection_components >= 2 && out.projection_components <= 3,
                   "bundle: implausible projection components");
    const std::uint64_t n = proj.u64();
    require_format(n == out.num_records, "bundle: projection row count mismatch");
    std::vector<std::uint64_t> ids(static_cast<std::size_t>(n));
    for (auto& id : ids) id = proj.u64();
    const std::size_t comps = out.projection_components;
    const std::size_t row_bytes = comps * sizeof(double);
    require_format(proj.remaining() == static_cast<std::size_t>(n) * row_bytes,
                   "bundle: projection coordinate size mismatch");
    out.projection_doc_ids.assign(ids.begin() + static_cast<std::ptrdiff_t>(begin),
                                  ids.begin() + static_cast<std::ptrdiff_t>(end));
    out.projection_xy.resize(mine * comps);
    proj.skip(begin * row_bytes);
    if (mine > 0) proj.raw(out.projection_xy.data(), mine * row_bytes);
    proj.skip((static_cast<std::size_t>(n) - end) * row_bytes);
    proj.expect_done();
  }

  {
    ByteReader gen(file.section("generation"));
    auto& g = out.generation;
    g.generation = get_word(gen);
    g.parent_lineage = get_word(gen);
    g.lineage = get_word(gen);
    g.base_records = get_word(gen);
    g.new_records = get_word(gen);
    g.inertia_rise = gen.f64();
    g.size_skew = gen.f64();
    g.size_skew_rise = gen.f64();
    g.max_inertia_rise = gen.f64();
    g.max_size_skew_rise = gen.f64();
    g.recluster_recommended = get_word(gen) != 0;
    gen.expect_done();
    const std::uint64_t expected =
        bundle_lineage(g, out.num_records, out.num_terms, out.total_term_occurrences,
                       out.signatures.global_null_count, out.clustering.inertia);
    require_format(g.lineage == expected,
                   "bundle: generation lineage mismatch — parent fingerprint or "
                   "generation metadata corrupted");
  }

  if (file.has("vocab")) {
    ByteReader vocab(file.section("vocab"));
    const std::uint64_t n = vocab.u64();
    require_format(n <= (1u << 30), "bundle: implausible vocabulary size");
    out.vocabulary.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) out.vocabulary.push_back(vocab.str());
    vocab.expect_done();
  }

  if (file.has("model")) {
    ByteReader model(file.section("model"));
    const std::uint64_t n_major = model.u64();
    require_format(n_major <= (1u << 24), "bundle: implausible major-term count");
    out.model.major_terms.reserve(static_cast<std::size_t>(n_major));
    for (std::uint64_t i = 0; i < n_major; ++i) {
      out.model.major_terms.push_back(model.str());
    }
    const std::uint64_t am_rows = model.u64();
    const std::uint64_t am_cols = model.u64();
    require_format(am_rows == n_major, "bundle: association rows disagree with major terms");
    require_format(am_cols == out.signatures.dimension,
                   "bundle: association columns disagree with the signature dimension");
    out.model.association =
        Matrix(static_cast<std::size_t>(am_rows), static_cast<std::size_t>(am_cols));
    model.raw(out.model.association.flat().data(),
              out.model.association.flat().size() * sizeof(double));
    auto& pca = out.model.pca;
    const std::uint64_t mean_n = model.u64();
    require_format(mean_n <= (1u << 24), "bundle: implausible PCA mean size");
    pca.mean.resize(static_cast<std::size_t>(mean_n));
    model.raw(pca.mean.data(), pca.mean.size() * sizeof(double));
    const std::uint64_t comp_rows = model.u64();
    const std::uint64_t comp_cols = model.u64();
    require_format(comp_rows <= 3 && comp_cols <= (1u << 24),
                   "bundle: implausible PCA component shape");
    pca.components =
        Matrix(static_cast<std::size_t>(comp_rows), static_cast<std::size_t>(comp_cols));
    model.raw(pca.components.flat().data(), pca.components.flat().size() * sizeof(double));
    const std::uint64_t n_eigen = model.u64();
    require_format(n_eigen == comp_rows, "bundle: eigenvalue count disagrees with components");
    pca.eigenvalues.resize(static_cast<std::size_t>(n_eigen));
    model.raw(pca.eigenvalues.data(), pca.eigenvalues.size() * sizeof(double));
    model.expect_done();
    out.has_model = true;
  }

  if (file.has("config")) {
    out.config_bytes = file.section("config");
  }
  return out;
}

}  // namespace sva::engine
