#include "sva/engine/pipeline.hpp"

#include <algorithm>

#include "sva/ga/repro_sum.hpp"
#include "sva/ga/stage_timer.hpp"
#include "sva/util/error.hpp"
#include "sva/util/log.hpp"

namespace sva::engine {

const std::vector<std::string>& ComponentTimings::labels() {
  static const std::vector<std::string> kLabels = {"scan",   "index",  "topic",
                                                   "AM",     "DocVec", "ClusProj"};
  return kLabels;
}

double ComponentTimings::by_label(const std::string& label) const {
  if (label == "scan") return scan;
  if (label == "index") return index;
  if (label == "topic") return topic;
  if (label == "AM") return am;
  if (label == "DocVec") return docvec;
  if (label == "ClusProj") return clusproj;
  throw InvalidArgument("ComponentTimings: unknown label " + label);
}

EngineResult run_text_engine(ga::Context& ctx, const corpus::SourceSet& sources,
                             const EngineConfig& config) {
  require(sources.size() > 0, "run_text_engine: empty source set");

  EngineResult result;
  ga::StageTimer timer(ctx);

  // ---- 1. Scan & Map + forward indexing --------------------------------
  text::ScanResult scan = text::scan_sources(ctx, sources, config.tokenizer);
  result.vocabulary = scan.vocabulary;
  result.num_records = scan.forward.num_records;
  result.num_terms = scan.vocabulary->size();
  result.total_term_occurrences = scan.forward.total_terms;
  timer.mark("scan");

  require(result.num_terms > 0, "run_text_engine: empty vocabulary after scanning");

  // ---- 2. Inverted file indexing + global term statistics --------------
  index::IndexingResult indexing = index::build_inverted_index(
      ctx, scan.forward, result.num_terms, config.indexing);
  result.index_load_balance = indexing.load_balance;
  timer.mark("index");

  // ---- 3-5. Signature generation with adaptive dimensionality ----------
  // The adaptive loop is unrolled here (rather than calling
  // sig::generate_signatures) so each sub-stage lands in its own timing
  // bucket even across rounds.
  {
    sig::TopicalityConfig topicality = config.topicality;
    const auto total_records = result.num_records;
    int round = 0;
    while (true) {
      ++round;
      result.selection = sig::select_topics(ctx, indexing.stats, topicality);
      timer.mark("topic");

      sig::AssociationMatrix association = sig::build_association_matrix(
          ctx, scan.records, result.selection, indexing.stats.num_records,
          config.association);
      timer.mark("AM");

      result.signatures = sig::compute_signatures(ctx, scan.records, result.selection,
                                                  association, config.signature);
      timer.mark("DocVec");

      const double null_fraction =
          total_records == 0 ? 0.0
                             : static_cast<double>(result.signatures.global_null_count) /
                                   static_cast<double>(total_records);
      result.null_fraction_per_round.push_back(null_fraction);
      result.signature_rounds = round;

      if (!config.signature.adaptive) break;
      if (null_fraction <= config.signature.max_null_fraction) break;
      if (round >= config.signature.max_rounds) break;
      if (result.selection.n() < topicality.num_major_terms) break;

      const auto grown = static_cast<std::size_t>(
          config.signature.growth_factor * static_cast<double>(topicality.num_major_terms));
      topicality.num_major_terms = std::max(grown, topicality.num_major_terms + 1);
      log::debug("engine") << "adaptive dimensionality round " << round << ": null fraction "
                           << null_fraction << ", growing N to "
                           << topicality.num_major_terms;
    }
  }
  result.dimension = result.signatures.dimension;

  // ---- 6-7. Clustering and projection -----------------------------------
  if (config.clustering == ClusteringBackend::kKMeans) {
    result.clustering =
        cluster::kmeans_cluster(ctx, result.signatures.docvecs, config.kmeans);
  } else {
    const cluster::HierarchicalResult h =
        cluster::hierarchical_cluster(ctx, result.signatures.docvecs, config.hierarchical);
    result.clustering.centroids = h.centroids;
    result.clustering.assignment = h.assignment;
    result.clustering.cluster_sizes = h.cluster_sizes;
    result.clustering.iterations = 1;
    // Order-invariant accumulation keeps the inertia byte-identical
    // across processor counts.  Signatures and centroids are
    // L1-normalized (or zero), so each squared Euclidean distance is at
    // most (||a||_2 + ||c||_2)^2 <= (||a||_1 + ||c||_1)^2 <= 4.
    ga::ReproducibleSum inertia_acc(1, 4.0);
    for (std::size_t i = 0; i < result.signatures.docvecs.rows(); ++i) {
      inertia_acc.add(0, squared_distance(
                            result.signatures.docvecs.row(i),
                            h.centroids.row(static_cast<std::size_t>(h.assignment[i]))));
    }
    result.clustering.inertia = inertia_acc.allreduce_sum(ctx)[0];
  }

  require(config.projection_components >= 2 && config.projection_components <= 3,
          "run_text_engine: projection_components must be 2 or 3");
  // Degenerate topic spaces (M smaller than the view dimension, e.g. a
  // one-term vocabulary) still produce a valid view: PCA keeps whatever
  // components exist and the missing view axes are zero-padded.
  const std::size_t pca_components =
      std::min(config.projection_components, result.clustering.centroids.cols());
  cluster::PcaResult pca = cluster::pca_fit(result.clustering.centroids, pca_components);
  if (pca.components.rows() < config.projection_components) {
    Matrix padded(config.projection_components, pca.components.cols());
    for (std::size_t r = 0; r < pca.components.rows(); ++r) {
      const auto src = pca.components.row(r);
      std::copy(src.begin(), src.end(), padded.row(r).begin());
    }
    pca.components = std::move(padded);
    pca.eigenvalues.resize(config.projection_components, 0.0);
  }
  result.projection =
      cluster::project_documents(ctx, result.signatures.docvecs,
                                 result.signatures.doc_ids, pca);
  result.all_assignment =
      ctx.gatherv(std::span<const std::int32_t>(result.clustering.assignment), 0);

  // Theme labels: strongest topic dimensions of each centroid.
  if (config.theme_label_terms > 0) {
    const std::size_t k = result.clustering.centroids.rows();
    const std::size_t m = result.clustering.centroids.cols();
    result.theme_labels.resize(k);
    for (std::size_t c = 0; c < k; ++c) {
      std::vector<std::size_t> dims(m);
      for (std::size_t j = 0; j < m; ++j) dims[j] = j;
      const auto centroid = result.clustering.centroids.row(c);
      std::sort(dims.begin(), dims.end(), [&](std::size_t a, std::size_t b) {
        if (centroid[a] != centroid[b]) return centroid[a] > centroid[b];
        return a < b;
      });
      const std::size_t take = std::min(config.theme_label_terms, m);
      for (std::size_t j = 0; j < take; ++j) {
        const auto term_id = static_cast<std::size_t>(result.selection.topic_terms[dims[j]]);
        result.theme_labels[c].push_back(result.vocabulary->terms[term_id]);
      }
    }
  }
  timer.mark("ClusProj");

  // ---- aggregate timings by label ---------------------------------------
  for (const auto& [name, seconds] : timer.stages()) {
    if (name == "scan") result.timings.scan += seconds;
    else if (name == "index") result.timings.index += seconds;
    else if (name == "topic") result.timings.topic += seconds;
    else if (name == "AM") result.timings.am += seconds;
    else if (name == "DocVec") result.timings.docvec += seconds;
    else if (name == "ClusProj") result.timings.clusproj += seconds;
  }
  return result;
}

PipelineRun run_pipeline(int nprocs, const ga::CommModel& model,
                         const corpus::SourceSet& sources, const EngineConfig& config) {
  PipelineRun run;
  auto rank0_result = std::make_shared<EngineResult>();
  const ga::SpmdResult spmd = ga::spmd_run(nprocs, model, [&](ga::Context& ctx) {
    EngineResult r = run_text_engine(ctx, sources, config);
    if (ctx.rank() == 0) *rank0_result = std::move(r);
  });
  run.result = std::move(*rank0_result);
  run.modeled_seconds = run.result.timings.total();
  run.wall_seconds = spmd.wall_seconds;
  return run;
}

}  // namespace sva::engine
