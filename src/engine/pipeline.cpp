#include "sva/engine/pipeline.hpp"

#include "sva/engine/stages.hpp"
#include "sva/util/error.hpp"

namespace sva::engine {

const std::vector<std::string>& ComponentTimings::labels() {
  static const std::vector<std::string> kLabels = {"scan",   "index",  "topic",
                                                   "AM",     "DocVec", "ClusProj"};
  return kLabels;
}

double ComponentTimings::by_label(const std::string& label) const {
  if (label == "scan") return scan;
  if (label == "index") return index;
  if (label == "topic") return topic;
  if (label == "AM") return am;
  if (label == "DocVec") return docvec;
  if (label == "ClusProj") return clusproj;
  throw InvalidArgument("ComponentTimings: unknown label " + label);
}

EngineResult run_text_engine(ga::Context& ctx, const corpus::SourceSet& sources,
                             const EngineConfig& config) {
  require(sources.size() > 0, "run_text_engine: empty source set");

  ga::StageTimer timer(ctx);

  // ---- 1-2. Scan & Map + inverted indexing -----------------------------
  IngestState ingest =
      ingest_single_pass(ctx, sources, config.tokenizer, config.indexing, timer);

  // ---- 3-5. Signature generation with adaptive dimensionality ----------
  SignatureStageState sig_state = run_signature_stage(ctx, ingest, config, timer);

  // ---- 6-7. Clustering and projection -----------------------------------
  ClusterStageState cluster_state = run_cluster_stage(ctx, sig_state, config, timer);
  ProjectionStageState projection_state =
      run_projection_stage(ctx, ingest, sig_state, cluster_state, config, timer);

  return assemble_result(std::move(ingest), std::move(sig_state), std::move(cluster_state),
                         std::move(projection_state), fold_timings(timer));
}

PipelineRun run_pipeline(const ga::SpmdOptions& options, const corpus::SourceSet& sources,
                         const EngineConfig& config) {
  PipelineRun run;
  auto rank0_result = std::make_shared<EngineResult>();
  const ga::SpmdResult spmd = ga::spmd_run(options, [&](ga::Context& ctx) {
    EngineResult r = run_text_engine(ctx, sources, config);
    if (ctx.rank() == 0) *rank0_result = std::move(r);
  });
  run.result = std::move(*rank0_result);
  run.modeled_seconds = run.result.timings.total();
  run.wall_seconds = spmd.wall_seconds;
  return run;
}

PipelineRun run_pipeline(int nprocs, const ga::CommModel& model,
                         const corpus::SourceSet& sources, const EngineConfig& config) {
  ga::SpmdOptions options;
  options.nprocs = nprocs;
  options.comm_model = model;
  return run_pipeline(options, sources, config);
}

}  // namespace sva::engine
