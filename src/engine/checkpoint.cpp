#include "sva/engine/checkpoint.hpp"

#include <algorithm>
#include <utility>

#include "sva/util/bytes.hpp"
#include "sva/util/error.hpp"

namespace sva::engine {

namespace {

constexpr char kMagic[8] = {'S', 'V', 'A', 'C', 'K', 'P', 'T', '1'};
// v2: the signature checkpoint carries the association matrix and the
// final checkpoint the padded PCA basis, so a resumed run exports
// bundles carrying the same frozen model as the original run.
constexpr std::uint64_t kFormatVersion = 2;

const char* kStageFiles[] = {"ingest.svack", "signatures.svack", "cluster.svack",
                             "final.svack"};
const char* kStageNames[] = {"ingest", "signatures", "cluster", "final"};

void write_timings(ByteWriter& out, const ComponentTimings& t) {
  out.f64(t.scan);
  out.f64(t.index);
  out.f64(t.topic);
  out.f64(t.am);
  out.f64(t.docvec);
  out.f64(t.clusproj);
}

ComponentTimings read_timings(ByteReader& in) {
  ComponentTimings t;
  t.scan = in.f64();
  t.index = in.f64();
  t.topic = in.f64();
  t.am = in.f64();
  t.docvec = in.f64();
  t.clusproj = in.f64();
  return t;
}

/// Rank 0 reads the stage file; every rank parses the broadcast bytes, so
/// validation failures surface identically (and collectively) everywhere.
CheckpointFile load_stage_file(ga::Context& ctx, const std::filesystem::path& dir,
                               Stage stage, std::uint64_t config_fingerprint) {
  std::vector<std::uint8_t> bytes;
  if (ctx.rank() == 0) {
    bytes = SectionedFile::read_file_bytes(stage_path(dir, stage), "checkpoint");
  }
  ga::broadcast_bytes(ctx, bytes, 0);
  CheckpointFile file = CheckpointFile::parse(bytes);
  require_format(file.stage == stage, "checkpoint: file holds the wrong stage");
  require(file.config_fingerprint == config_fingerprint,
          "checkpoint: written under a different engine configuration; refusing to resume");
  return file;
}

/// This rank's record range under the stored per-document byte sizes.
std::pair<std::size_t, std::size_t> my_range(ga::Context& ctx,
                                             const std::vector<std::size_t>& record_sizes) {
  const auto parts = corpus::partition_sizes_by_bytes(record_sizes, ctx.nprocs());
  return parts[static_cast<std::size_t>(ctx.rank())];
}

}  // namespace

const char* stage_name(Stage stage) { return kStageNames[static_cast<int>(stage)]; }

std::optional<Stage> parse_stage(std::string_view name) {
  for (int s = 0; s < 4; ++s) {
    if (name == kStageNames[s]) return static_cast<Stage>(s);
  }
  return std::nullopt;
}

std::filesystem::path stage_path(const std::filesystem::path& dir, Stage stage) {
  return dir / kStageFiles[static_cast<int>(stage)];
}

void CheckpointFile::write(const std::filesystem::path& path) {
  sections_.tag = static_cast<std::uint64_t>(stage);
  sections_.fingerprint = config_fingerprint;
  sections_.write(path, kMagic, kFormatVersion);
}

CheckpointFile CheckpointFile::parse(std::span<const std::uint8_t> bytes) {
  CheckpointFile file;
  file.sections_ = SectionedFile::parse(bytes, kMagic, kFormatVersion, "checkpoint");
  require_format(file.sections_.tag < 4, "checkpoint: bad stage id");
  file.stage = static_cast<Stage>(file.sections_.tag);
  file.config_fingerprint = file.sections_.fingerprint;
  return file;
}

CheckpointFile CheckpointFile::read(const std::filesystem::path& path) {
  return parse(SectionedFile::read_file_bytes(path, "checkpoint"));
}

std::optional<Stage> last_completed_stage(const std::filesystem::path& dir) {
  std::optional<Stage> last;
  for (int s = 0; s < 4; ++s) {
    const auto stage = static_cast<Stage>(s);
    const auto path = stage_path(dir, stage);
    if (!std::filesystem::exists(path)) break;
    try {
      const CheckpointFile file = CheckpointFile::read(path);
      if (file.stage != stage) break;
    } catch (const Error&) {
      break;  // corrupt file ends the completed chain
    }
    last = stage;
  }
  return last;
}

// ======================= ingest stage ====================================

void save_ingest_checkpoint(ga::Context& ctx, const std::filesystem::path& dir,
                            const IngestState& state, const ComponentTimings& timings,
                            std::uint64_t config_fingerprint) {
  // Gather the per-rank record streams; rank order == global doc order.
  ByteWriter my_records;
  std::vector<std::uint64_t> my_sizes;
  my_sizes.reserve(state.records.size());
  for (const auto& rec : state.records) {
    my_records.u64(rec.doc_id);
    my_records.u64(rec.raw_bytes);
    my_records.u64(rec.fields.size());
    for (const auto& f : rec.fields) {
      my_records.u64(static_cast<std::uint64_t>(f.type));
      my_records.u64(f.terms.size());
      for (const auto t : f.terms) my_records.u64(static_cast<std::uint64_t>(t));
    }
    my_sizes.push_back(rec.raw_bytes);
  }
  // Not const: the gathered stream is moved into the checkpoint section
  // so rank 0 never holds two copies of the tokenized corpus.
  auto all_records = ctx.gatherv(std::span<const std::uint8_t>(my_records.bytes), 0);
  my_records.bytes.clear();
  my_records.bytes.shrink_to_fit();
  const auto all_sizes = ctx.gatherv(std::span<const std::uint64_t>(my_sizes), 0);

  // Statistics are replicated reads of the global arrays (collective-free
  // one-sided gets; identical on every rank).
  const auto tf = state.stats.term_frequency.to_vector(ctx);
  const auto df = state.stats.doc_frequency.to_vector(ctx);

  if (ctx.rank() == 0) {
    CheckpointFile file;
    file.stage = Stage::kIngest;
    file.config_fingerprint = config_fingerprint;

    ByteWriter meta;
    meta.u64(state.num_records);
    meta.u64(state.num_terms);
    meta.u64(state.total_term_occurrences);
    meta.u64(state.shards_used);
    write_timings(meta, timings);
    file.add("meta", std::move(meta.bytes));

    ByteWriter vocab;
    vocab.u64(state.vocabulary->terms.size());
    for (const auto& t : state.vocabulary->terms) vocab.str(t);
    file.add("vocab", std::move(vocab.bytes));

    ByteWriter fields;
    fields.u64(state.field_type_names.size());
    for (const auto& f : state.field_type_names) fields.str(f);
    file.add("field_types", std::move(fields.bytes));

    ByteWriter sizes;
    sizes.u64(all_sizes.size());
    for (const auto s : all_sizes) sizes.u64(s);
    file.add("record_sizes", std::move(sizes.bytes));

    file.add("records", std::move(all_records));

    ByteWriter stats;
    stats.u64(tf.size());
    for (const auto v : tf) stats.u64(static_cast<std::uint64_t>(v));
    for (const auto v : df) stats.u64(static_cast<std::uint64_t>(v));
    file.add("stats", std::move(stats.bytes));

    ByteWriter lb;
    lb.u64(state.load_balance.busy_seconds.size());
    for (const auto b : state.load_balance.busy_seconds) lb.f64(b);
    for (const auto l : state.load_balance.loads_claimed) {
      lb.u64(static_cast<std::uint64_t>(l));
    }
    file.add("load_balance", std::move(lb.bytes));

    file.write(stage_path(dir, Stage::kIngest));
  }
  ctx.barrier();
}

IngestCheckpoint load_ingest_checkpoint(ga::Context& ctx, const std::filesystem::path& dir,
                                        std::uint64_t config_fingerprint,
                                        bool for_recompute) {
  const CheckpointFile file =
      load_stage_file(ctx, dir, Stage::kIngest, config_fingerprint);
  IngestCheckpoint out;

  {
    ByteReader meta(file.section("meta"));
    out.state.num_records = meta.u64();
    out.state.num_terms = meta.u64();
    out.state.total_term_occurrences = meta.u64();
    out.state.shards_used = static_cast<std::size_t>(meta.u64());
    out.timings = read_timings(meta);
    meta.expect_done();
  }
  {
    ByteReader vocab(file.section("vocab"));
    const std::uint64_t n = vocab.u64();
    require_format(n == out.state.num_terms, "checkpoint: vocabulary size mismatch");
    auto v = std::make_shared<ga::Vocabulary>();
    v->terms.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v->terms.push_back(vocab.str());
    vocab.expect_done();
    v->term_to_id.reserve(v->terms.size());
    for (std::size_t i = 0; i < v->terms.size(); ++i) {
      v->term_to_id.emplace(v->terms[i], static_cast<std::int64_t>(i));
    }
    out.state.vocabulary = std::move(v);
  }
  {
    ByteReader fields(file.section("field_types"));
    const std::uint64_t n = fields.u64();
    require_format(n <= (1u << 20), "checkpoint: implausible field-type count");
    for (std::uint64_t i = 0; i < n; ++i) out.state.field_type_names.push_back(fields.str());
    fields.expect_done();
  }
  {
    ByteReader sizes(file.section("record_sizes"));
    const std::uint64_t n = sizes.u64();
    require_format(n == out.state.num_records, "checkpoint: record size count mismatch");
    out.record_sizes.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      out.record_sizes.push_back(static_cast<std::size_t>(sizes.u64()));
    }
    sizes.expect_done();
  }
  {
    ByteReader lb(file.section("load_balance"));
    const std::uint64_t n = lb.u64();
    require_format(n <= (1u << 16), "checkpoint: implausible rank count");
    out.state.load_balance.busy_seconds.resize(static_cast<std::size_t>(n));
    for (auto& b : out.state.load_balance.busy_seconds) b = lb.f64();
    out.state.load_balance.loads_claimed.resize(static_cast<std::size_t>(n));
    for (auto& l : out.state.load_balance.loads_claimed) {
      l = static_cast<std::int64_t>(lb.u64());
    }
    lb.expect_done();
  }

  if (!for_recompute) return out;

  // ---- records: parse the global stream, keep this rank's slice -------
  const auto [begin, end] = my_range(ctx, out.record_sizes);
  {
    ByteReader records(file.section("records"));
    for (std::uint64_t i = 0; i < out.state.num_records; ++i) {
      text::ScannedRecord rec;
      rec.doc_id = records.u64();
      rec.raw_bytes = records.u64();
      const std::uint64_t nfields = records.u64();
      require_format(nfields <= (1u << 24), "checkpoint: implausible field count");
      rec.fields.resize(static_cast<std::size_t>(nfields));
      for (auto& f : rec.fields) {
        f.type = static_cast<std::int32_t>(records.u64());
        const std::uint64_t nterms = records.u64();
        require_format(nterms <= records.remaining() + 1,
                       "checkpoint: implausible term count");
        f.terms.resize(static_cast<std::size_t>(nterms));
        for (auto& t : f.terms) {
          t = static_cast<std::int64_t>(records.u64());
          require_format(t >= 0 && static_cast<std::uint64_t>(t) < out.state.num_terms,
                         "checkpoint: term id out of vocabulary range");
        }
      }
      if (i >= begin && i < end) out.state.records.push_back(std::move(rec));
    }
    records.expect_done();
  }

  // ---- term statistics back into global arrays -------------------------
  {
    ByteReader stats(file.section("stats"));
    const std::uint64_t n = stats.u64();
    require_format(n == out.state.num_terms, "checkpoint: statistics size mismatch");
    std::vector<std::int64_t> tf(static_cast<std::size_t>(n));
    for (auto& v : tf) v = static_cast<std::int64_t>(stats.u64());
    std::vector<std::int64_t> df(static_cast<std::size_t>(n));
    for (auto& v : df) v = static_cast<std::int64_t>(stats.u64());
    stats.expect_done();

    out.state.stats.num_terms = out.state.num_terms;
    out.state.stats.num_records = out.state.num_records;
    out.state.stats.total_occurrences = out.state.total_term_occurrences;
    out.state.stats.term_frequency = ga::GlobalArray<std::int64_t>::create(
        ctx, std::max<std::size_t>(static_cast<std::size_t>(n), 1));
    out.state.stats.doc_frequency = ga::GlobalArray<std::int64_t>::create(
        ctx, std::max<std::size_t>(static_cast<std::size_t>(n), 1));
    const auto block = out.state.stats.term_frequency.local_row_range(ctx);
    const std::size_t tb = std::min(block.first, static_cast<std::size_t>(n));
    const std::size_t te = std::min(block.second, static_cast<std::size_t>(n));
    if (te > tb) {
      out.state.stats.term_frequency.put(
          ctx, tb, std::span<const std::int64_t>(tf.data() + tb, te - tb));
      out.state.stats.doc_frequency.put(
          ctx, tb, std::span<const std::int64_t>(df.data() + tb, te - tb));
    }
    ctx.barrier();
  }
  return out;
}

// ======================= signature stage =================================

void save_signature_checkpoint(ga::Context& ctx, const std::filesystem::path& dir,
                               const SignatureStageState& state,
                               const ComponentTimings& timings,
                               std::uint64_t config_fingerprint) {
  const auto& sigs = state.signatures;
  std::vector<std::uint8_t> null_bytes(sigs.is_null.size());
  for (std::size_t i = 0; i < sigs.is_null.size(); ++i) {
    null_bytes[i] = sigs.is_null[i] ? 1 : 0;
  }
  const auto all_ids = ctx.gatherv(std::span<const std::uint64_t>(sigs.doc_ids), 0);
  const auto all_nulls = ctx.gatherv(std::span<const std::uint8_t>(null_bytes), 0);
  const auto all_vecs = ctx.gatherv(
      std::span<const double>(sigs.docvecs.flat().data(), sigs.docvecs.flat().size()), 0);

  if (ctx.rank() == 0) {
    CheckpointFile file;
    file.stage = Stage::kSignatures;
    file.config_fingerprint = config_fingerprint;

    ByteWriter meta;
    meta.u64(sigs.dimension);
    meta.u64(static_cast<std::uint64_t>(state.signature_rounds));
    meta.u64(sigs.global_null_count);
    write_timings(meta, timings);
    meta.u64(state.null_fraction_per_round.size());
    for (const auto f : state.null_fraction_per_round) meta.f64(f);
    file.add("meta", std::move(meta.bytes));

    ByteWriter sel;
    const auto& s = state.selection;
    sel.u64(s.major_terms.size());
    for (const auto t : s.major_terms) sel.u64(static_cast<std::uint64_t>(t));
    for (const auto v : s.scores) sel.f64(v);
    for (const auto d : s.major_df) sel.u64(static_cast<std::uint64_t>(d));
    sel.u64(s.topic_terms.size());
    for (const auto t : s.topic_terms) sel.u64(static_cast<std::uint64_t>(t));
    file.add("selection", std::move(sel.bytes));

    ByteWriter am;
    am.u64(state.association.weights.rows());
    am.u64(state.association.weights.cols());
    am.raw(state.association.weights.flat().data(),
           state.association.weights.flat().size() * sizeof(double));
    file.add("association", std::move(am.bytes));

    ByteWriter rows;
    rows.u64(all_ids.size());
    rows.u64(sigs.dimension);
    for (const auto id : all_ids) rows.u64(id);
    rows.raw(all_nulls.data(), all_nulls.size());
    rows.raw(all_vecs.data(), all_vecs.size() * sizeof(double));
    file.add("signatures", std::move(rows.bytes));

    file.write(stage_path(dir, Stage::kSignatures));
  }
  ctx.barrier();
}

SignatureCheckpoint load_signature_checkpoint(ga::Context& ctx,
                                              const std::filesystem::path& dir,
                                              std::uint64_t config_fingerprint,
                                              const std::vector<std::size_t>& record_sizes) {
  const CheckpointFile file =
      load_stage_file(ctx, dir, Stage::kSignatures, config_fingerprint);
  SignatureCheckpoint out;

  {
    ByteReader meta(file.section("meta"));
    out.state.signatures.dimension = static_cast<std::size_t>(meta.u64());
    out.state.signature_rounds = static_cast<int>(meta.u64());
    out.state.signatures.global_null_count = meta.u64();
    out.timings = read_timings(meta);
    const std::uint64_t rounds = meta.u64();
    require_format(rounds <= (1u << 16), "checkpoint: implausible round count");
    for (std::uint64_t i = 0; i < rounds; ++i) {
      out.state.null_fraction_per_round.push_back(meta.f64());
    }
    meta.expect_done();
  }
  {
    ByteReader sel(file.section("selection"));
    auto& s = out.state.selection;
    const std::uint64_t n = sel.u64();
    require_format(n <= (1u << 28), "checkpoint: implausible selection size");
    s.major_terms.resize(static_cast<std::size_t>(n));
    for (auto& t : s.major_terms) t = static_cast<std::int64_t>(sel.u64());
    s.scores.resize(static_cast<std::size_t>(n));
    for (auto& v : s.scores) v = sel.f64();
    s.major_df.resize(static_cast<std::size_t>(n));
    for (auto& d : s.major_df) d = static_cast<std::int64_t>(sel.u64());
    const std::uint64_t m = sel.u64();
    require_format(m <= n, "checkpoint: topic terms exceed major terms");
    s.topic_terms.resize(static_cast<std::size_t>(m));
    for (auto& t : s.topic_terms) t = static_cast<std::int64_t>(sel.u64());
    sel.expect_done();
    for (std::size_t i = 0; i < s.major_terms.size(); ++i) s.major_index[s.major_terms[i]] = i;
    for (std::size_t i = 0; i < s.topic_terms.size(); ++i) s.topic_index[s.topic_terms[i]] = i;
  }
  {
    ByteReader am(file.section("association"));
    const std::uint64_t rows = am.u64();
    const std::uint64_t cols = am.u64();
    require_format(rows == out.state.selection.major_terms.size(),
                   "checkpoint: association rows disagree with the selection");
    require_format(cols == out.state.signatures.dimension,
                   "checkpoint: association columns disagree with the dimension");
    out.state.association.weights =
        Matrix(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
    am.raw(out.state.association.weights.flat().data(),
           out.state.association.weights.flat().size() * sizeof(double));
    am.expect_done();
  }
  {
    ByteReader rows(file.section("signatures"));
    const std::uint64_t n = rows.u64();
    const std::uint64_t dim = rows.u64();
    require_format(n == record_sizes.size(), "checkpoint: signature row count mismatch");
    require_format(dim == out.state.signatures.dimension,
                   "checkpoint: signature dimension mismatch");
    std::vector<std::uint64_t> ids(static_cast<std::size_t>(n));
    for (auto& id : ids) id = rows.u64();
    std::vector<std::uint8_t> nulls(static_cast<std::size_t>(n));
    rows.raw(nulls.data(), nulls.size());
    require_format(rows.remaining() ==
                       static_cast<std::size_t>(n) * static_cast<std::size_t>(dim) *
                           sizeof(double),
                   "checkpoint: signature matrix size mismatch");

    const auto [begin, end] = my_range(ctx, record_sizes);
    const std::size_t mine = end > begin ? end - begin : 0;
    auto& sigs = out.state.signatures;
    sigs.docvecs = Matrix(mine, static_cast<std::size_t>(dim));
    sigs.doc_ids.assign(ids.begin() + static_cast<std::ptrdiff_t>(begin),
                        ids.begin() + static_cast<std::ptrdiff_t>(end));
    sigs.is_null.resize(mine);
    for (std::size_t i = 0; i < mine; ++i) sigs.is_null[i] = nulls[begin + i] != 0;
    // Fixed-stride rows: jump straight to this rank's slice.
    const std::size_t row_bytes = static_cast<std::size_t>(dim) * sizeof(double);
    rows.skip(begin * row_bytes);
    if (mine > 0) rows.raw(sigs.docvecs.flat().data(), mine * row_bytes);
    rows.skip((static_cast<std::size_t>(n) - end) * row_bytes);
    rows.expect_done();
  }
  return out;
}

// ======================= cluster stage ===================================

void save_cluster_checkpoint(ga::Context& ctx, const std::filesystem::path& dir,
                             const ClusterStageState& state, const ComponentTimings& timings,
                             std::uint64_t config_fingerprint) {
  const auto all_assignment =
      ctx.gatherv(std::span<const std::int32_t>(state.clustering.assignment), 0);

  if (ctx.rank() == 0) {
    CheckpointFile file;
    file.stage = Stage::kCluster;
    file.config_fingerprint = config_fingerprint;

    const auto& c = state.clustering;
    ByteWriter meta;
    meta.u64(static_cast<std::uint64_t>(c.iterations));
    meta.f64(c.inertia);
    meta.u64(c.centroids.rows());
    meta.u64(c.centroids.cols());
    write_timings(meta, timings);
    file.add("meta", std::move(meta.bytes));

    ByteWriter centroids;
    centroids.raw(c.centroids.flat().data(), c.centroids.flat().size() * sizeof(double));
    file.add("centroids", std::move(centroids.bytes));

    ByteWriter sizes;
    sizes.u64(c.cluster_sizes.size());
    for (const auto s : c.cluster_sizes) sizes.u64(static_cast<std::uint64_t>(s));
    file.add("sizes", std::move(sizes.bytes));

    ByteWriter assignment;
    assignment.u64(all_assignment.size());
    for (const auto a : all_assignment) assignment.u64(static_cast<std::uint64_t>(a));
    file.add("assignment", std::move(assignment.bytes));

    file.write(stage_path(dir, Stage::kCluster));
  }
  ctx.barrier();
}

ClusterCheckpoint load_cluster_checkpoint(ga::Context& ctx, const std::filesystem::path& dir,
                                          std::uint64_t config_fingerprint,
                                          const std::vector<std::size_t>& record_sizes) {
  const CheckpointFile file =
      load_stage_file(ctx, dir, Stage::kCluster, config_fingerprint);
  ClusterCheckpoint out;
  auto& c = out.state.clustering;

  std::uint64_t k = 0;
  std::uint64_t dim = 0;
  {
    ByteReader meta(file.section("meta"));
    c.iterations = static_cast<int>(meta.u64());
    c.inertia = meta.f64();
    k = meta.u64();
    dim = meta.u64();
    out.timings = read_timings(meta);
    meta.expect_done();
    require_format(k <= (1u << 24) && dim <= (1u << 24),
                   "checkpoint: implausible centroid shape");
  }
  {
    ByteReader centroids(file.section("centroids"));
    c.centroids = Matrix(static_cast<std::size_t>(k), static_cast<std::size_t>(dim));
    require_format(centroids.remaining() ==
                       c.centroids.flat().size() * sizeof(double),
                   "checkpoint: centroid matrix size mismatch");
    centroids.raw(c.centroids.flat().data(), c.centroids.flat().size() * sizeof(double));
    centroids.expect_done();
  }
  {
    ByteReader sizes(file.section("sizes"));
    const std::uint64_t n = sizes.u64();
    require_format(n == k, "checkpoint: cluster size count mismatch");
    c.cluster_sizes.resize(static_cast<std::size_t>(n));
    for (auto& s : c.cluster_sizes) s = static_cast<std::int64_t>(sizes.u64());
    sizes.expect_done();
  }
  {
    ByteReader assignment(file.section("assignment"));
    const std::uint64_t n = assignment.u64();
    require_format(n == record_sizes.size(), "checkpoint: assignment count mismatch");
    std::vector<std::int32_t> all(static_cast<std::size_t>(n));
    for (auto& a : all) {
      const std::uint64_t v = assignment.u64();
      require_format(v < k, "checkpoint: assignment outside cluster range");
      a = static_cast<std::int32_t>(v);
    }
    assignment.expect_done();
    const auto [begin, end] = my_range(ctx, record_sizes);
    c.assignment.assign(all.begin() + static_cast<std::ptrdiff_t>(begin),
                        all.begin() + static_cast<std::ptrdiff_t>(end));
    if (ctx.rank() == 0) out.all_assignment = std::move(all);
  }
  return out;
}

// ======================= final stage =====================================

void save_final_checkpoint(ga::Context& ctx, const std::filesystem::path& dir,
                           const ProjectionStageState& state, const ComponentTimings& timings,
                           std::uint64_t config_fingerprint) {
  if (ctx.rank() == 0) {
    CheckpointFile file;
    file.stage = Stage::kFinal;
    file.config_fingerprint = config_fingerprint;

    ByteWriter meta;
    meta.u64(state.projection.components);
    write_timings(meta, timings);
    file.add("meta", std::move(meta.bytes));

    ByteWriter labels;
    labels.u64(state.theme_labels.size());
    for (const auto& cluster_labels : state.theme_labels) {
      labels.u64(cluster_labels.size());
      for (const auto& l : cluster_labels) labels.str(l);
    }
    file.add("labels", std::move(labels.bytes));

    ByteWriter proj;
    proj.u64(state.projection.all_doc_ids.size());
    for (const auto id : state.projection.all_doc_ids) proj.u64(id);
    proj.raw(state.projection.all_xy.data(), state.projection.all_xy.size() * sizeof(double));
    file.add("projection", std::move(proj.bytes));

    ByteWriter pca;
    pca.u64(state.pca.mean.size());
    pca.raw(state.pca.mean.data(), state.pca.mean.size() * sizeof(double));
    pca.u64(state.pca.components.rows());
    pca.u64(state.pca.components.cols());
    pca.raw(state.pca.components.flat().data(),
            state.pca.components.flat().size() * sizeof(double));
    pca.u64(state.pca.eigenvalues.size());
    pca.raw(state.pca.eigenvalues.data(), state.pca.eigenvalues.size() * sizeof(double));
    file.add("pca", std::move(pca.bytes));

    file.write(stage_path(dir, Stage::kFinal));
  }
  ctx.barrier();
}

FinalCheckpoint load_final_checkpoint(ga::Context& ctx, const std::filesystem::path& dir,
                                      std::uint64_t config_fingerprint,
                                      const std::vector<std::size_t>& record_sizes) {
  const CheckpointFile file =
      load_stage_file(ctx, dir, Stage::kFinal, config_fingerprint);
  FinalCheckpoint out;

  {
    ByteReader meta(file.section("meta"));
    out.state.projection.components = static_cast<std::size_t>(meta.u64());
    out.timings = read_timings(meta);
    meta.expect_done();
    require_format(out.state.projection.components >= 2 &&
                       out.state.projection.components <= 3,
                   "checkpoint: implausible projection components");
  }
  {
    ByteReader labels(file.section("labels"));
    const std::uint64_t k = labels.u64();
    require_format(k <= (1u << 24), "checkpoint: implausible label count");
    out.state.theme_labels.resize(static_cast<std::size_t>(k));
    for (auto& cluster_labels : out.state.theme_labels) {
      const std::uint64_t n = labels.u64();
      require_format(n <= (1u << 16), "checkpoint: implausible label list");
      for (std::uint64_t i = 0; i < n; ++i) cluster_labels.push_back(labels.str());
    }
    labels.expect_done();
  }
  {
    ByteReader proj(file.section("projection"));
    const std::uint64_t n = proj.u64();
    require_format(n == record_sizes.size(), "checkpoint: projection row count mismatch");
    const std::size_t comps = out.state.projection.components;
    std::vector<std::uint64_t> ids(static_cast<std::size_t>(n));
    for (auto& id : ids) id = proj.u64();
    std::vector<double> xy(static_cast<std::size_t>(n) * comps);
    require_format(proj.remaining() == xy.size() * sizeof(double),
                   "checkpoint: projection coordinate size mismatch");
    proj.raw(xy.data(), xy.size() * sizeof(double));
    proj.expect_done();

    const auto [begin, end] = my_range(ctx, record_sizes);
    out.state.projection.local_doc_ids.assign(
        ids.begin() + static_cast<std::ptrdiff_t>(begin),
        ids.begin() + static_cast<std::ptrdiff_t>(end));
    out.state.projection.local_xy.assign(
        xy.begin() + static_cast<std::ptrdiff_t>(begin * comps),
        xy.begin() + static_cast<std::ptrdiff_t>(end * comps));
    if (ctx.rank() == 0) {
      out.state.projection.all_doc_ids = std::move(ids);
      out.state.projection.all_xy = std::move(xy);
    }
  }
  {
    ByteReader pca(file.section("pca"));
    auto& p = out.state.pca;
    const std::uint64_t mean_n = pca.u64();
    require_format(mean_n <= (1u << 24), "checkpoint: implausible PCA mean size");
    p.mean.resize(static_cast<std::size_t>(mean_n));
    pca.raw(p.mean.data(), p.mean.size() * sizeof(double));
    const std::uint64_t comp_rows = pca.u64();
    const std::uint64_t comp_cols = pca.u64();
    require_format(comp_rows <= 3 && comp_cols <= (1u << 24),
                   "checkpoint: implausible PCA component shape");
    p.components =
        Matrix(static_cast<std::size_t>(comp_rows), static_cast<std::size_t>(comp_cols));
    pca.raw(p.components.flat().data(), p.components.flat().size() * sizeof(double));
    const std::uint64_t n_eigen = pca.u64();
    require_format(n_eigen == comp_rows,
                   "checkpoint: eigenvalue count disagrees with components");
    p.eigenvalues.resize(static_cast<std::size_t>(n_eigen));
    pca.raw(p.eigenvalues.data(), p.eigenvalues.size() * sizeof(double));
    pca.expect_done();
  }
  return out;
}

}  // namespace sva::engine
