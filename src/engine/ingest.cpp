#include "sva/engine/ingest.hpp"

#include <algorithm>
#include <utility>

#include "sva/index/shard_merge.hpp"
#include "sva/util/error.hpp"
#include "sva/util/log.hpp"

namespace sva::engine {

IngestState ingest_single_pass(ga::Context& ctx, const corpus::SourceSet& sources,
                               const text::TokenizerConfig& tokenizer_config,
                               const index::IndexingConfig& indexing_config,
                               ga::StageTimer& timer) {
  require(sources.size() > 0, "ingest: empty source set");

  IngestState state;
  text::ScanResult scan = text::scan_sources(ctx, sources, tokenizer_config);
  state.vocabulary = scan.vocabulary;
  state.field_type_names = std::move(scan.field_type_names);
  state.records = std::move(scan.records);
  state.forward = std::move(scan.forward);
  state.num_records = state.forward.num_records;
  state.num_terms = state.vocabulary->size();
  state.total_term_occurrences = state.forward.total_terms;
  timer.mark("scan");

  require(state.num_terms > 0, "ingest: empty vocabulary after scanning");

  index::IndexingResult indexing =
      index::build_inverted_index(ctx, state.forward, state.num_terms, indexing_config);
  state.index = std::move(indexing.index);
  state.stats = std::move(indexing.stats);
  state.load_balance = std::move(indexing.load_balance);
  timer.mark("index");
  return state;
}

IngestState ingest_sharded(ga::Context& ctx, const corpus::CorpusReader& reader,
                           const text::TokenizerConfig& tokenizer_config,
                           const index::IndexingConfig& indexing_config,
                           const corpus::ShardingConfig& sharding, ga::StageTimer& timer) {
  require(reader.size() > 0, "ingest: empty source set");

  // Ownership is fixed by the full-corpus byte partition; the shard plan
  // only bounds how much raw text is resident at once.
  const auto rank_ranges =
      corpus::partition_sizes_by_bytes(reader.doc_sizes(), ctx.nprocs());
  const auto shards = corpus::plan_shards(reader, sharding);
  const std::size_t num_shards = shards.size();

  std::vector<index::ShardBlobs> blobs(ctx.rank() == 0 ? num_shards : 0);
  std::vector<std::vector<text::ScannedRecord>> shard_records(num_shards);
  index::LoadBalanceReport load_balance;
  load_balance.busy_seconds.assign(static_cast<std::size_t>(ctx.nprocs()), 0.0);
  load_balance.loads_claimed.assign(static_cast<std::size_t>(ctx.nprocs()), 0);

  for (std::size_t s = 0; s < num_shards; ++s) {
    // Scope holds the shard's global arrays; everything survives the
    // scope as a compact extract + this rank's records.
    text::ScanResult scan =
        text::scan_shard(ctx, reader, shards[s], rank_ranges, tokenizer_config);
    timer.mark("scan");

    index::ShardExtract extract;
    if (scan.vocabulary->size() > 0) {
      index::IndexingResult indexing = index::build_inverted_index(
          ctx, scan.forward, scan.vocabulary->size(), indexing_config);
      for (std::size_t r = 0; r < indexing.load_balance.busy_seconds.size(); ++r) {
        load_balance.busy_seconds[r] += indexing.load_balance.busy_seconds[r];
        load_balance.loads_claimed[r] += indexing.load_balance.loads_claimed[r];
      }
      extract = index::extract_shard(ctx, scan, indexing);
    } else {
      // A shard of token-free documents still contributes its records.
      extract.num_records = shards[s].second - shards[s].first;
    }
    timer.mark("index");

    if (ctx.rank() == 0) {
      blobs[s] = {extract.serialize_vocab(), extract.serialize_data()};
    }
    shard_records[s] = std::move(scan.records);
    log::debug("engine") << "shard " << (s + 1) << "/" << num_shards << ": "
                         << extract.num_records << " records, " << extract.terms.size()
                         << " terms";
  }

  index::MergedShards merged = index::merge_shards(ctx, blobs, num_shards);
  blobs.clear();

  IngestState state;
  state.vocabulary = merged.vocabulary;
  state.field_type_names = std::move(merged.field_type_names);
  state.stats = std::move(merged.stats);
  state.index = std::move(merged.index);
  state.load_balance = std::move(load_balance);
  state.num_records = merged.num_records;
  state.num_terms = state.vocabulary->size();
  state.total_term_occurrences = merged.total_occurrences;
  state.shards_used = num_shards;
  require(state.num_records == reader.size(),
          "ingest_sharded: merged record count disagrees with the reader");
  require(state.num_terms > 0, "ingest: empty vocabulary after scanning");

  // Rewrite this rank's records from shard-canonical into final canonical
  // ids.  Shard slices are ascending and shards are processed in order,
  // so the concatenation preserves global document order.
  std::size_t total_records = 0;
  for (const auto& recs : shard_records) total_records += recs.size();
  state.records.reserve(total_records);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const auto& term_remap = merged.term_remap[s];
    const auto& type_remap = merged.field_type_remap[s];
    for (auto& rec : shard_records[s]) {
      for (auto& f : rec.fields) {
        f.type = type_remap[static_cast<std::size_t>(f.type)];
        for (auto& t : f.terms) t = term_remap[static_cast<std::size_t>(t)];
      }
      state.records.push_back(std::move(rec));
    }
    shard_records[s].clear();
    shard_records[s].shrink_to_fit();
  }

  // The merged forward product: the same CSR a single-pass scan publishes.
  state.forward = text::build_forward_index(ctx, state.records, state.num_records);
  timer.mark("index");
  return state;
}

}  // namespace sva::engine
