// The IN-SPIRE text processing engine (§2.1, Figure 3/4): the paper's
// core contribution, assembled from the substrate modules.
//
// Stages (parallel across all ranks):
//   1. Scan & Map + forward indexing            -> text::scan_sources
//   2. Inverted file indexing + term statistics -> index::build_inverted_index
//   3. Topicality (Bookstein) + global topics   -> sig::select_topics
//   4. Association matrix (Allreduce merge)     -> sig::build_association_matrix
//   5. Knowledge signatures (+ adaptive dim.)   -> sig::compute_signatures
//   6. Clustering (distributed k-means)         -> cluster::kmeans_cluster
//   7. Projection (PCA on centroids, 2-D)       -> cluster::project_documents
//
// Component timings use the paper's six labels (scan, index, topic, AM,
// DocVec, ClusProj) so the Figure 6b/7b/8 harnesses can report the same
// series.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sva/cluster/hierarchical.hpp"
#include "sva/cluster/kmeans.hpp"
#include "sva/cluster/projection.hpp"
#include "sva/corpus/document.hpp"
#include "sva/ga/comm_model.hpp"
#include "sva/ga/runtime.hpp"
#include "sva/index/inverted_index.hpp"
#include "sva/sig/signature.hpp"
#include "sva/text/scanner.hpp"

namespace sva::engine {

/// Clustering backend (§3.5 notes "other types of clustering could be
/// applied"; both are implemented).
enum class ClusteringBackend {
  kKMeans,        ///< the paper's distributed k-means
  kHierarchical,  ///< agglomerative over a replicated sample
};

struct EngineConfig {
  text::TokenizerConfig tokenizer;
  index::IndexingConfig indexing;
  sig::TopicalityConfig topicality;
  sig::AssociationConfig association;
  sig::SignatureConfig signature;
  ClusteringBackend clustering = ClusteringBackend::kKMeans;
  cluster::KMeansConfig kmeans;
  cluster::HierarchicalConfig hierarchical;
  /// 2 for ThemeView; 3 is also supported ("2-d or 3-d", §3.5).
  std::size_t projection_components = 2;
  /// Theme labels: top topic terms per cluster (0 disables).
  std::size_t theme_label_terms = 5;
};

/// Modeled seconds per component, using the paper's labels.
struct ComponentTimings {
  double scan = 0.0;
  double index = 0.0;
  double topic = 0.0;
  double am = 0.0;
  double docvec = 0.0;
  double clusproj = 0.0;

  [[nodiscard]] double total() const { return scan + index + topic + am + docvec + clusproj; }

  /// The four coarse groups of Figure 8 (signature generation combines
  /// topic + AM + DocVec).
  [[nodiscard]] double signature_generation() const { return topic + am + docvec; }

  static const std::vector<std::string>& labels();
  [[nodiscard]] double by_label(const std::string& label) const;
};

/// Everything one rank sees after a pipeline run.  Replicated members are
/// identical on all ranks; "local" members cover the rank's records;
/// rank 0 additionally holds the gathered global outputs.
struct EngineResult {
  // Replicated products.
  std::shared_ptr<const ga::Vocabulary> vocabulary;
  sig::TopicSelection selection;
  sig::AssociationMatrix association;  ///< final round's N×M matrix
  std::size_t dimension = 0;
  cluster::KMeansResult clustering;  ///< centroids/sizes replicated
  cluster::PcaResult pca;            ///< padded projection basis
  std::vector<std::vector<std::string>> theme_labels;  ///< k × top terms

  // Local products.
  sig::SignatureSet signatures;
  cluster::ProjectionResult projection;  ///< rank 0: all_xy/all_doc_ids
  std::vector<std::int32_t> all_assignment;  ///< rank 0 only

  // Telemetry.
  ComponentTimings timings;
  index::LoadBalanceReport index_load_balance;
  std::uint64_t num_records = 0;
  std::uint64_t num_terms = 0;
  std::uint64_t total_term_occurrences = 0;
  int signature_rounds = 1;
  std::vector<double> null_fraction_per_round;
};

/// Collective: runs the full engine on `sources`.
EngineResult run_text_engine(ga::Context& ctx, const corpus::SourceSet& sources,
                             const EngineConfig& config = {});

/// Single-call harness: spawns an SPMD world per `options` (rank count,
/// communication model, transport backend), runs the engine, and returns
/// rank 0's result plus the modeled/wall durations.
struct PipelineRun {
  EngineResult result;  ///< rank 0's view (includes gathered outputs)
  double modeled_seconds = 0.0;
  double wall_seconds = 0.0;
};
PipelineRun run_pipeline(const ga::SpmdOptions& options, const corpus::SourceSet& sources,
                         const EngineConfig& config = {});

/// \deprecated Classic harness entry point; prefer
/// `run_pipeline(ga::SpmdOptions{.nprocs = P, .comm_model = model}, ...)`.
/// Kept as a thin wrapper (thread backend) for existing call sites.
PipelineRun run_pipeline(int nprocs, const ga::CommModel& model,
                         const corpus::SourceSet& sources, const EngineConfig& config = {});

}  // namespace sva::engine
