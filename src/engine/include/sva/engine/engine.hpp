// Engine facade: the checkpointing, shard-aware entry point to the full
// pipeline.
//
//   Engine eng(config);
//   auto result = eng.run(ctx, reader, {.sharding = {.num_shards = 8},
//                                       .checkpoint_dir = "ckpt/"});
//   // ... killed? restart:
//   EngineResult r = eng.resume(ctx, "ckpt/");
//
// run() ingests shard by shard under the configured memory budget and
// persists a checkpoint after every completed stage group; resume()
// restarts at the last completed stage and recomputes the remainder to a
// byte-identical EngineResult.  The classic run_text_engine /
// run_pipeline single-pass entry points are unchanged — the facade adds
// scale-out and durability on top of the same stage functions.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <vector>

#include "sva/engine/checkpoint.hpp"
#include "sva/engine/pipeline.hpp"

namespace sva::engine {

/// Canonical byte serialization of an EngineConfig — the stream the
/// configuration fingerprint hashes, and (embedded in version-2 bundles)
/// what lets `engine::ingest_delta` rebuild the exact scan/indexing
/// configuration a bundle was produced under.
std::vector<std::uint8_t> encode_engine_config(const EngineConfig& config);

/// Inverse of encode_engine_config; throws FormatError on malformed or
/// truncated input.
EngineConfig decode_engine_config(std::span<const std::uint8_t> bytes);

struct PipelineOptions {
  /// Shard plan for out-of-core ingestion (defaults to one shard).
  corpus::ShardingConfig sharding;
  /// When set, a checkpoint is persisted after each completed stage.
  std::filesystem::path checkpoint_dir;
  /// Testing hook: halt (like a kill) after this stage's checkpoint is
  /// written.  Requires checkpoint_dir.  Stage::kFinal runs to completion.
  std::optional<Stage> stop_after;
  /// When set, the completed run additionally exports a serving model
  /// bundle (see bundle.hpp) to this path, with the per-document raw byte
  /// sizes as row-partition weights.  Ignored when stop_after halts the
  /// run before the final stage.
  std::filesystem::path export_bundle;
};

class Engine {
 public:
  explicit Engine(EngineConfig config) : config_(std::move(config)) {}

  [[nodiscard]] const EngineConfig& config() const { return config_; }

  /// Collective: runs the full pipeline over `reader`.  Returns nullopt
  /// iff `stop_after` halted the run before the final stage.
  std::optional<EngineResult> run(ga::Context& ctx, const corpus::CorpusReader& reader,
                                  const PipelineOptions& options = {});

  /// Collective: resumes from the last completed stage checkpoint in
  /// `checkpoint_dir`, writing the remaining stage checkpoints as it
  /// goes.  Throws InvalidArgument when no usable checkpoint exists or
  /// the directory was written under a different configuration.  When
  /// `export_bundle` is non-empty, the completed result is additionally
  /// exported as a serving model bundle to that path.
  EngineResult resume(ga::Context& ctx, const std::filesystem::path& checkpoint_dir,
                      const std::filesystem::path& export_bundle = {});

  /// Deterministic fingerprint of an engine configuration; stored in
  /// every checkpoint header and verified on resume.
  static std::uint64_t config_fingerprint(const EngineConfig& config);

 private:
  EngineConfig config_;
};

}  // namespace sva::engine
