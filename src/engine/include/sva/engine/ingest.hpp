// Ingestion (pipeline stages 1–2): scan & map + inverted indexing, in
// two interchangeable flavours that produce byte-identical downstream
// products:
//
//   * ingest_single_pass — the paper's one-shot path: the whole corpus
//     is scanned at once (wraps text::scan_sources +
//     index::build_inverted_index);
//
//   * ingest_sharded — out-of-core: the corpus is cut into contiguous,
//     byte-balanced document shards; each shard is scanned and inverted
//     under a bounded-memory budget, reduced to a compact extract, and
//     its global arrays dropped; the extracts are merged into the exact
//     global vocabulary, term statistics and term→record index the
//     single-pass path computes.  Record ownership follows the
//     full-corpus byte partition, so every gathered product (and hence
//     the EngineResult checksum) is byte-identical for any shard count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sva/corpus/document.hpp"
#include "sva/corpus/reader.hpp"
#include "sva/ga/dist_hashmap.hpp"
#include "sva/ga/runtime.hpp"
#include "sva/ga/stage_timer.hpp"
#include "sva/index/inverted_index.hpp"
#include "sva/text/scanner.hpp"

namespace sva::engine {

/// Everything stages 3–7 (and the checkpoint layer) need from ingestion.
struct IngestState {
  // Replicated products.
  std::shared_ptr<const ga::Vocabulary> vocabulary;
  std::vector<std::string> field_type_names;

  // This rank's records in canonical ids (contiguous ascending slice of
  // the corpus).
  std::vector<text::ScannedRecord> records;

  // Global-array products.
  text::ForwardIndex forward;
  index::InvertedIndex index;  ///< sharded path: record-level product only
  index::TermStats stats;
  index::LoadBalanceReport load_balance;

  // Counts.
  std::uint64_t num_records = 0;
  std::uint64_t num_terms = 0;
  std::uint64_t total_term_occurrences = 0;
  std::size_t shards_used = 1;
};

/// Collective: one-shot stage 1–2 over a resident source set.  Marks
/// "scan" / "index" on `timer`.
IngestState ingest_single_pass(ga::Context& ctx, const corpus::SourceSet& sources,
                               const text::TokenizerConfig& tokenizer_config,
                               const index::IndexingConfig& indexing_config,
                               ga::StageTimer& timer);

/// Collective: sharded out-of-core stage 1–2 over a reader.  Marks
/// "scan" / "index" per shard plus the merge on `timer`.
IngestState ingest_sharded(ga::Context& ctx, const corpus::CorpusReader& reader,
                           const text::TokenizerConfig& tokenizer_config,
                           const index::IndexingConfig& indexing_config,
                           const corpus::ShardingConfig& sharding, ga::StageTimer& timer);

}  // namespace sva::engine
