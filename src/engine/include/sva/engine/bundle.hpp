// Model bundle: one versioned on-disk artifact (SVABNDL1) holding
// everything the query layer needs to serve an analyzed corpus without
// the engine that produced it — knowledge signatures with doc ids and
// null flags, the k-means centroids/assignment, the 2-D projection
// coordinates, theme labels, the topic-term vocabulary slice (the string
// meaning of each signature dimension) and the engine-configuration
// fingerprint the products were computed under.
//
// The paper's pipeline ends when rank 0 writes the projected coordinates;
// the ROADMAP's serving workload starts after that: build once, persist,
// answer many queries later.  The bundle is the handoff point.  It reuses
// the checkpoint's SectionedFile machinery (per-section + header FNV-1a
// checksums, temp-then-rename writes), so truncation or a bit flip
// anywhere raises FormatError instead of serving garbage.
//
// Both ends are collective and P-independent: export_bundle gathers every
// rank's row slices (rank 0 touches the disk); load_bundle broadcasts the
// image and re-partitions the rows for the *opening* world's processor
// count — a bundle written at P=4 serves at P=1 or P=8, and because every
// query reduction is order-invariant, the answers are bit-identical.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sva/engine/pipeline.hpp"

namespace sva::engine {

inline constexpr char kBundleMagic[8] = {'S', 'V', 'A', 'B', 'N', 'D', 'L', '1'};
inline constexpr std::uint64_t kBundleFormatVersion = 1;

/// One rank's view of an opened bundle: row-sliced local products plus
/// the replicated analysis artifacts.  This is exactly what a
/// query::Session hangs its queries off.
struct BundleView {
  std::uint64_t config_fingerprint = 0;
  std::uint64_t num_records = 0;
  std::uint64_t num_terms = 0;
  std::uint64_t total_term_occurrences = 0;
  int signature_rounds = 1;

  /// This rank's contiguous global row range [begin, end) under the
  /// bundle's stored partition weights.
  std::pair<std::size_t, std::size_t> row_range{0, 0};

  sig::SignatureSet signatures;      ///< local rows
  cluster::KMeansResult clustering;  ///< centroids/sizes replicated; assignment local
  std::vector<std::vector<std::string>> theme_labels;
  /// Vocabulary slice: the string label of each of the M signature
  /// dimensions (selection.topic_terms resolved through the vocabulary).
  std::vector<std::string> topic_term_names;

  std::size_t projection_components = 2;
  std::vector<std::uint64_t> projection_doc_ids;  ///< local slice
  std::vector<double> projection_xy;              ///< local slice, interleaved
};

/// Collective: gathers the per-rank slices of `result` and writes the
/// bundle (rank 0 touches the disk).  `record_sizes` are the global
/// per-document raw byte sizes used as row-partition weights when the
/// bundle is reopened (read on rank 0; pass empty for uniform weights —
/// results are identical either way, only the load balance differs).
void export_bundle(ga::Context& ctx, const EngineResult& result,
                   std::uint64_t config_fingerprint, const std::filesystem::path& path,
                   std::span<const std::size_t> record_sizes = {});

/// Convenience overload: fingerprints `config` itself.
void export_bundle(ga::Context& ctx, const EngineResult& result, const EngineConfig& config,
                   const std::filesystem::path& path,
                   std::span<const std::size_t> record_sizes = {});

/// Collective: rank 0 reads `path`, every rank parses the broadcast image
/// and keeps its slice of the rows under this world's processor count.
/// Throws FormatError on any corruption, sva::Error when the file cannot
/// be opened.
BundleView load_bundle(ga::Context& ctx, const std::filesystem::path& path);

}  // namespace sva::engine
