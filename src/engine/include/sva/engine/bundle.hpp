// Model bundle: one versioned on-disk artifact (SVABNDL1) holding
// everything the query layer needs to serve an analyzed corpus without
// the engine that produced it — knowledge signatures with doc ids and
// null flags, the k-means centroids/assignment, the 2-D projection
// coordinates, theme labels, the topic-term vocabulary slice (the string
// meaning of each signature dimension) and the engine-configuration
// fingerprint the products were computed under.
//
// Format version 2 adds bundle *generations*: every bundle carries a
// generation counter, the lineage fingerprint of the base generation it
// extends (0 for a gen-0 full build), its own lineage fingerprint (a
// self-check over the generation metadata — corruption of the parent
// link raises FormatError instead of silently re-rooting a chain), and
// the drift metrics the delta-ingest path measured against its base
// (inertia rise, cluster-size skew).  Version 2 also carries the frozen
// model itself — the major-term strings, the association matrix and the
// padded PCA basis, plus the full sorted vocabulary and the serialized
// engine configuration — so a later `engine::ingest_delta` can extend
// the bundle without the run that produced it.
//
// The paper's pipeline ends when rank 0 writes the projected coordinates;
// the ROADMAP's serving workload starts after that: build once, persist,
// answer many queries later.  The bundle is the handoff point.  It reuses
// the checkpoint's SectionedFile machinery (per-section + header FNV-1a
// checksums, temp-then-rename writes), so truncation or a bit flip
// anywhere raises FormatError instead of serving garbage.
//
// Both ends are collective and P-independent: export_bundle gathers every
// rank's row slices (rank 0 touches the disk); load_bundle broadcasts the
// image and re-partitions the rows for the *opening* world's processor
// count — a bundle written at P=4 serves at P=1 or P=8, and because every
// query reduction is order-invariant, the answers are bit-identical.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sva/engine/pipeline.hpp"

namespace sva::engine {

inline constexpr char kBundleMagic[8] = {'S', 'V', 'A', 'B', 'N', 'D', 'L', '1'};
inline constexpr std::uint64_t kBundleFormatVersion = 2;

/// Generation metadata carried by every version-2 bundle.  The
/// "generation" section stores these as fixed-width 8-byte words (not
/// varbyte), so the parent link lives at a stable offset.
struct GenerationInfo {
  std::uint64_t generation = 0;      ///< 0 = full build, n+1 = delta over gen n
  std::uint64_t parent_lineage = 0;  ///< lineage of the base generation (0 for gen 0)
  std::uint64_t lineage = 0;         ///< this bundle's lineage fingerprint
  std::uint64_t base_records = 0;    ///< records inherited from the base
  std::uint64_t new_records = 0;     ///< records this generation added
  // Drift vs the base generation (all 0 for gen 0).
  double inertia_rise = 0.0;    ///< per-doc inertia rise fraction
  double size_skew = 0.0;       ///< max(cluster size) / mean(cluster size)
  double size_skew_rise = 0.0;  ///< skew rise fraction vs the base
  // The thresholds the drift was judged against (recorded so the verdict
  // is reproducible from the artifact alone).
  double max_inertia_rise = 0.0;
  double max_size_skew_rise = 0.0;
  bool recluster_recommended = false;
};

/// The frozen analysis model a delta ingest reuses: major-term strings in
/// association-row order, the N×M association matrix, and the (padded)
/// PCA basis the projection coordinates were computed under.
struct BundleModel {
  std::vector<std::string> major_terms;
  Matrix association;  ///< N rows (major terms) × M cols (topic terms)
  cluster::PcaResult pca;
};

/// One rank's view of an opened bundle: row-sliced local products plus
/// the replicated analysis artifacts.  This is exactly what a
/// query::Session hangs its queries off.
struct BundleView {
  std::uint64_t config_fingerprint = 0;
  std::uint64_t num_records = 0;
  std::uint64_t num_terms = 0;
  std::uint64_t total_term_occurrences = 0;
  int signature_rounds = 1;

  GenerationInfo generation;

  /// This rank's contiguous global row range [begin, end) under the
  /// bundle's stored partition weights.
  std::pair<std::size_t, std::size_t> row_range{0, 0};
  /// The stored global partition weights (per-document raw byte sizes).
  std::vector<std::size_t> weights;

  sig::SignatureSet signatures;      ///< local rows
  cluster::KMeansResult clustering;  ///< centroids/sizes replicated; assignment local
  std::vector<std::vector<std::string>> theme_labels;
  /// Vocabulary slice: the string label of each of the M signature
  /// dimensions (selection.topic_terms resolved through the vocabulary).
  std::vector<std::string> topic_term_names;

  std::size_t projection_components = 2;
  std::vector<std::uint64_t> projection_doc_ids;  ///< local slice
  std::vector<double> projection_xy;              ///< local slice, interleaved

  // Optional sections (absent from bundles exported out of synthetic
  // results that never held a model; `ingest_delta` requires them).
  bool has_model = false;
  BundleModel model;
  std::vector<std::string> vocabulary;     ///< full sorted term list (may be empty)
  std::vector<std::uint8_t> config_bytes;  ///< serialized EngineConfig (may be empty)
};

/// The full (rank-0, global) image a bundle file is written from.  Both
/// `export_bundle` and the delta-ingest path assemble one of these; the
/// shared writer keeps the two byte-identical for identical contents.
struct BundleData {
  std::uint64_t config_fingerprint = 0;
  std::uint64_t num_records = 0;
  std::uint64_t num_terms = 0;
  std::uint64_t total_term_occurrences = 0;
  std::size_t dimension = 0;
  int signature_rounds = 1;
  std::uint64_t global_null_count = 0;

  std::vector<std::size_t> weights;  ///< empty → one unit per row

  std::vector<std::uint64_t> doc_ids;
  std::vector<std::uint8_t> null_flags;
  std::vector<double> signature_rows;  ///< num_records × dimension

  int iterations = 0;
  double inertia = 0.0;
  Matrix centroids;
  std::vector<std::int64_t> cluster_sizes;
  std::vector<std::int32_t> assignment;

  std::vector<std::vector<std::string>> theme_labels;
  std::vector<std::string> topic_term_names;

  std::size_t projection_components = 2;
  std::vector<std::uint64_t> projection_doc_ids;
  std::vector<double> projection_xy;

  GenerationInfo generation;  ///< lineage is computed by the writer

  std::vector<std::string> vocabulary;     ///< empty → section absent
  BundleModel model;                       ///< empty major_terms → section absent
  std::vector<std::uint8_t> config_bytes;  ///< empty → section absent
};

/// Lineage fingerprint of a generation: an FNV-1a chain over the parent
/// link, the generation counter and the merged corpus statistics.  Stored
/// in the bundle and recomputed on load — a mismatch (e.g. a corrupted
/// parent fingerprint) raises FormatError.
std::uint64_t bundle_lineage(const GenerationInfo& generation, std::uint64_t num_records,
                             std::uint64_t num_terms, std::uint64_t total_term_occurrences,
                             std::uint64_t global_null_count, double inertia);

/// Validates that `next` is the generation directly extending `base`:
/// the counter must advance by exactly one (anything else is a
/// generation counter rollback or gap) and `next`'s parent lineage must
/// equal `base`'s lineage (a delta bundle presented without its true
/// base fails here).  Throws FormatError with a named diagnostic.
void require_extends(const BundleView& base, const BundleView& next);

/// Serial (call on rank 0): computes `data.generation.lineage` and writes
/// the bundle file temp-then-rename.
void write_bundle_data(BundleData& data, const std::filesystem::path& path);

/// Collective: gathers the per-rank slices of `result` and writes the
/// bundle (rank 0 touches the disk).  `record_sizes` are the global
/// per-document raw byte sizes used as row-partition weights when the
/// bundle is reopened (read on rank 0; pass empty for uniform weights —
/// results are identical either way, only the load balance differs).
void export_bundle(ga::Context& ctx, const EngineResult& result,
                   std::uint64_t config_fingerprint, const std::filesystem::path& path,
                   std::span<const std::size_t> record_sizes = {});

/// Convenience overload: fingerprints `config` itself and embeds its
/// serialized form so the bundle can later be extended by
/// `engine::ingest_delta` without the original run.
void export_bundle(ga::Context& ctx, const EngineResult& result, const EngineConfig& config,
                   const std::filesystem::path& path,
                   std::span<const std::size_t> record_sizes = {});

/// Collective: rank 0 reads `path`, every rank parses the broadcast image
/// and keeps its slice of the rows under this world's processor count.
/// Throws FormatError on any corruption, sva::Error when the file cannot
/// be opened.
BundleView load_bundle(ga::Context& ctx, const std::filesystem::path& path);

}  // namespace sva::engine
